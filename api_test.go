package arrayflow_test

import (
	"strings"
	"testing"

	arrayflow "repro"
)

// TestPublicAPIQuickstart exercises the doc-comment workflow end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	prog, err := arrayflow.Parse(`
do i = 1, 1000
  A[i+2] := A[i] + X
enddo
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arrayflow.Check(prog); err != nil {
		t.Fatal(err)
	}
	loop := prog.Body[0].(*arrayflow.Loop)
	g, err := arrayflow.BuildGraph(loop)
	if err != nil {
		t.Fatal(err)
	}
	res := arrayflow.Analyze(g, arrayflow.MustReachingDefs())
	reuses := arrayflow.Reuses(res)
	if len(reuses) != 1 || reuses[0].Distance != 2 {
		t.Fatalf("reuses = %v, want one at distance 2", reuses)
	}
}

func TestPublicAPIPipelineFlow(t *testing.T) {
	prog := arrayflow.MustParse(`
do i = 1, 100
  A[i+1] := A[i] + X
enddo
`)
	loop := prog.Body[0].(*arrayflow.Loop)
	g, err := arrayflow.BuildGraph(loop)
	if err != nil {
		t.Fatal(err)
	}
	alloc := arrayflow.AllocateRegisters(g, 8)
	hooks, err := alloc.GenOptions()
	if err != nil {
		t.Fatal(err)
	}
	conv, err := arrayflow.Compile(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := arrayflow.Compile(prog, hooks)
	if err != nil {
		t.Fatal(err)
	}
	memA, memB := arrayflow.NewMemory(), arrayflow.NewMemory()
	memA.Set("A", 1, 11)
	memB.Set("A", 1, 11)
	resA, err := arrayflow.Execute(conv, memA, map[string]int64{"X": 1})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := arrayflow.Execute(pipe, memB, map[string]int64{"X": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !memA.Equal(memB) {
		t.Fatal("semantics diverge")
	}
	if resB.Loads["A"] >= resA.Loads["A"] {
		t.Fatalf("loads not reduced: %d vs %d", resB.Loads["A"], resA.Loads["A"])
	}
}

func TestPublicAPIOptimizations(t *testing.T) {
	prog := arrayflow.MustParse(`
do i = 1, 200
  A[i] := c
  if c > 0 then
    A[i+1] := c * 2
  endif
enddo
`)
	st, err := arrayflow.EliminateStores(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Removed) != 1 {
		t.Fatalf("removed = %d", len(st.Removed))
	}

	le, err := arrayflow.EliminateLoads(arrayflow.MustParse(`
do i = 1, 200
  B[i+1] := B[i] + 1
enddo
`), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(le.Replaced) != 1 {
		t.Fatalf("replaced = %d", len(le.Replaced))
	}

	un, err := arrayflow.ControlledUnroll(arrayflow.MustParse(`
do i = 1, 200
  D[i+2] := D[i] + 1
enddo
`), 0, 1.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if un.Factor < 2 {
		t.Fatalf("factor = %d", un.Factor)
	}
}

func TestPublicAPIInterpreterAndNormalize(t *testing.T) {
	prog := arrayflow.MustParse(`
do i = 2, 20, 2
  A[i] := i
enddo
`)
	norm, err := arrayflow.Normalize(prog)
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := arrayflow.Interpret(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := arrayflow.Interpret(norm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !arrayflow.ArraysEqual(s1, s2) {
		t.Fatal("normalization changed semantics")
	}
}

func TestPublicAPIWholeProgram(t *testing.T) {
	prog := arrayflow.MustParse(`
do j = 1, UB
  do i = 1, UB1
    Z[i+1, j] := Z[i, j-1]
  enddo
enddo
`)
	pa, err := arrayflow.AnalyzeProgram(prog, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pa.Loops) != 2 {
		t.Fatalf("loops = %d", len(pa.Loops))
	}
	if !strings.Contains(pa.Report(), "(1, 1)") {
		t.Errorf("Z vector missing from report:\n%s", pa.Report())
	}
}

func TestPublicAPIBaselineAndTACOpt(t *testing.T) {
	prog := arrayflow.MustParse(`
do i = 1, 50
  A[i+4] := A[i] + 1
  A[i] := 2
enddo
`)
	loop := prog.Body[0].(*arrayflow.Loop)
	g, err := arrayflow.BuildGraph(loop)
	if err != nil {
		t.Fatal(err)
	}
	bl := arrayflow.BaselineMustReachingDefs(g, 16)
	if !bl.Converged {
		t.Fatal("baseline did not converge")
	}
	code, err := arrayflow.Compile(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, stats := arrayflow.OptimizeTAC(code)
	if len(opt.Instrs) > len(code.Instrs) {
		t.Errorf("optimizer grew the program: %d -> %d (%s)",
			len(code.Instrs), len(opt.Instrs), stats)
	}
}

func TestPublicAPIDependences(t *testing.T) {
	prog := arrayflow.MustParse(`
do i = 1, 100
  A[i+1] := A[i] + 1
enddo
`)
	loop := prog.Body[0].(*arrayflow.Loop)
	g, err := arrayflow.BuildGraph(loop)
	if err != nil {
		t.Fatal(err)
	}
	res := arrayflow.Analyze(g, arrayflow.ReachingRefs())
	deps := arrayflow.Dependences(res, 10)
	if len(deps) == 0 {
		t.Fatal("no dependences")
	}
	dg := arrayflow.BuildDependenceGraph(g, 10)
	if dg.CriticalPath() != 1 {
		t.Errorf("critical path = %d", dg.CriticalPath())
	}
}
