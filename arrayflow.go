// Package arrayflow is a reproduction of Duesterwald, Gupta & Soffa,
// "A Practical Data Flow Framework for Array Reference Analysis and its Use
// in Optimizations" (PLDI 1993).
//
// The package exposes the full pipeline: a Fortran-like DO-loop
// mini-language front end, the loop flow graph, the iteration-distance data
// flow framework with its four canned problem instances, and the paper's
// optimizations (register pipelining, redundant load/store elimination,
// controlled loop unrolling), plus the tight-loop-nest distance-vector
// extension sketched in the paper's §6.
//
// Quick start:
//
//	prog := arrayflow.MustParse(`
//	do i = 1, 1000
//	  A[i+2] := A[i] + X
//	enddo
//	`)
//	g, _ := arrayflow.BuildGraph(prog.Body[0].(*arrayflow.Loop))
//	res := arrayflow.Analyze(g, arrayflow.MustReachingDefs())
//	for _, r := range arrayflow.Reuses(res) {
//	    fmt.Println(r) // use A[i]@n1 reuses A[i + 2] @ distance 2
//	}
package arrayflow

import (
	"io"
	"net/http"

	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/dataflow"
	"repro/internal/depend"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lint"
	"repro/internal/machine"
	"repro/internal/nest"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/problems"
	"repro/internal/regalloc"
	"repro/internal/sema"
	"repro/internal/service"
	"repro/internal/tac"
	"repro/internal/tacopt"
)

// Re-exported core types. The aliases keep example and client code inside
// one import while the implementation stays modular.
type (
	// Program is a parsed program.
	Program = ast.Program
	// Loop is a DO loop.
	Loop = ast.DoLoop
	// Graph is the loop flow graph of paper §3 (statement, summary and
	// exit nodes plus the back edge).
	Graph = ir.Graph
	// Spec is a data flow problem: the (G, K) pair with direction and
	// polarity.
	Spec = dataflow.Spec
	// Result is a fixed point solution.
	Result = dataflow.Result
	// Class is a tracked reference class (array + affine subscript form).
	Class = dataflow.Class
	// Reuse is a guaranteed cross- or same-iteration value reuse.
	Reuse = problems.Reuse
	// RedundantStore marks a store overwritten unread within δ iterations.
	RedundantStore = problems.RedundantStore
	// Dependence is a (possibly loop-carried) data dependence.
	Dependence = problems.Dependence
	// Allocation is a register-pipeline allocation (paper §4.1).
	Allocation = regalloc.Allocation
	// DependenceGraph supports the §4.3 critical path predictions.
	DependenceGraph = depend.Graph
	// State is an interpreter state (scalars + arrays).
	State = interp.State
	// Machine types for compiled execution.
	MachineProg   = tac.Prog
	MachineMemory = machine.Memory
	MachineResult = machine.Result
	// NestRecurrence is a distance-vector recurrence in a tight nest.
	NestRecurrence = nest.Recurrence
	// ProgramAnalysis is the whole-program result of AnalyzeProgram: every
	// loop's fixed points in innermost-first order plus solver metrics.
	ProgramAnalysis = driver.ProgramAnalysis
	// LoopAnalysis is one loop's bundle inside a ProgramAnalysis.
	LoopAnalysis = driver.LoopAnalysis
	// AnalyzeOptions tunes the whole-program driver: the specs to solve,
	// the §6 extension, the worker-pool width (Parallelism; 0 =
	// GOMAXPROCS, 1 = serial), the memo cache escape hatch (DisableCache),
	// and the persistent solve cache directory (CacheDir — lets a cold
	// process warm-start previously analyzed loops from disk at memo-hit
	// speed). Results are byte-for-byte identical at every Parallelism
	// setting, with the cache on or off, and cold or disk-warm.
	AnalyzeOptions = driver.Options
	// AnalysisMetrics instruments one AnalyzeProgram call: per-loop solver
	// work, cache hits/misses, the empirical pass-bound check, wall times.
	AnalysisMetrics = driver.Metrics
	// BatchResult is one program's outcome in an AnalyzeProgramBatch call.
	BatchResult = driver.BatchResult
	// SolverMetrics is the per-solve counter bundle of the dataflow core.
	SolverMetrics = dataflow.Metrics
	// DiskCacheStats snapshots the process-wide persistent-cache counters
	// (AnalyzeOptions.CacheDir): hits, misses, stores, errors, byte and
	// nanosecond volumes.
	DiskCacheStats = driver.DiskStats
	// DiffResult is the outcome of DiffPrograms: the new version's loops
	// labeled changed/unchanged, removed-loop count, and both passes'
	// metrics.
	DiffResult = driver.DiffResult
	// DiffLoop is one loop of the new version inside a DiffResult.
	DiffLoop = driver.DiffLoop
)

// Parse parses mini-language source.
func Parse(src string) (*Program, error) { return parser.Parse(src) }

// MustParse parses and panics on error (for literals in examples/tests).
func MustParse(src string) *Program { return parser.MustParse(src) }

// Check validates the framework's structural preconditions and collects
// program information.
func Check(prog *Program) (*sema.Info, error) { return sema.Check(prog) }

// Normalize rewrites all loops to run from 1 with step 1 (paper §1).
func Normalize(prog *Program) (*Program, error) { return sema.Normalize(prog) }

// RemoveDerivedIVs eliminates non-basic induction variables from the loop
// at prog.Body[idx], replacing them with closed forms in the basic
// induction variable — the preprocessing the paper assumes (§1, citing the
// Dragon Book). Returns the transformed program and the variables removed.
func RemoveDerivedIVs(prog *Program, idx int) (*Program, []sema.RemovedIV, error) {
	return sema.RemoveDerivedIVs(prog, idx)
}

// BuildGraph constructs the loop flow graph for one loop; nested loops
// become summary nodes (paper §3.2).
func BuildGraph(loop *Loop) (*Graph, error) { return ir.Build(loop, nil) }

// The four problem instances of the paper.

// MustReachingDefs is §3.5's instance (G = defs, K = defs).
func MustReachingDefs() *Spec { return problems.MustReachingDefs() }

// AvailableValues is §4.1.1's δ-available instance (G = defs ∪ uses,
// K = defs).
func AvailableValues() *Spec { return problems.AvailableValues() }

// BusyStores is §4.2.1's backward δ-busy instance (G = stores, K = uses).
func BusyStores() *Spec { return problems.BusyStores() }

// ReachingRefs is §4.3's may instance for dependence detection.
func ReachingRefs() *Spec { return problems.ReachingRefs() }

// Analyze solves a problem on a graph (init pass + ≤ 2 iteration passes for
// must-problems; ≤ 2 passes for may-problems).
func Analyze(g *Graph, spec *Spec) *Result { return dataflow.Solve(g, spec, nil) }

// AnalyzeTraced additionally records the per-pass tuple snapshots used to
// regenerate the paper's Table 1.
func AnalyzeTraced(g *Graph, spec *Spec) *Result {
	return dataflow.Solve(g, spec, &dataflow.Options{CollectTrace: true})
}

// Reuses extracts guaranteed value reuses from a must-solution.
func Reuses(res *Result) []Reuse { return problems.FindReuses(res) }

// RedundantStores extracts δ-redundant stores from a δ-busy solution.
func RedundantStores(res *Result) []RedundantStore { return problems.FindRedundantStores(res) }

// Dependences extracts data dependences (distance ≤ maxDist) from a
// δ-reaching solution.
func Dependences(res *Result, maxDist int64) []Dependence {
	return problems.FindDependences(res, maxDist)
}

// AllocateRegisters runs the §4.1 register-pipelining allocation with k
// registers.
func AllocateRegisters(g *Graph, k int) *Allocation {
	return regalloc.Allocate(g, &regalloc.Options{K: k})
}

// BuildDependenceGraph builds the §4.3 dependence graph with distances up
// to maxDist.
func BuildDependenceGraph(g *Graph, maxDist int64) *DependenceGraph {
	return depend.BuildFromLoop(g, maxDist)
}

// Optimizations (all return fresh programs; inputs are never mutated).

// EliminateStores removes δ-redundant stores from the loop at
// prog.Body[idx] and unpeels the final δ iterations (Figure 6).
func EliminateStores(prog *Program, idx int) (*opt.StoreElimResult, error) {
	return opt.EliminateStores(prog, idx)
}

// EliminateLoads replaces redundant loads with scalar temporaries
// (Figure 7 / §4.2.2).
func EliminateLoads(prog *Program, idx int) (*opt.LoadElimResult, error) {
	return opt.EliminateLoads(prog, idx)
}

// ControlledUnroll applies the §4.3 prediction-driven unrolling.
func ControlledUnroll(prog *Program, idx int, threshold float64, maxFactor int) (*opt.UnrollResult, error) {
	return opt.ControlledUnroll(prog, idx, &opt.UnrollOptions{Threshold: threshold, MaxFactor: maxFactor})
}

// Unroll mechanically unrolls a normalized loop.
func Unroll(prog *Program, idx int, factor int) (*Program, error) {
	return opt.Unroll(prog, idx, factor)
}

// NestRecurrences finds distance-vector recurrences in a tight two-level
// nest (§6 extension).
func NestRecurrences(outer *Loop, maxDist int64) ([]NestRecurrence, error) {
	return nest.FindRecurrences(outer, maxDist)
}

// AnalyzeProgram runs the paper's §3.2 whole-program protocol: every loop
// analyzed innermost-first on its own graph (nested loops summarized), the
// §3.6 re-analyses with respect to enclosing induction variables on tight
// nests, and — when nestVectors is set — the §6 distance-vector extension.
// specs may be nil for must-reaching definitions only.
//
// Loops of one nesting depth are independent, so the driver schedules each
// depth wave across a GOMAXPROCS-wide worker pool and memoizes identical
// loop bodies in a process-global content-addressed cache; the result
// (including Report output) is byte-for-byte identical to a serial,
// uncached run. Use AnalyzeProgramOpts for the scheduling and caching
// knobs, and ProgramAnalysis.Metrics for the solver instrumentation.
func AnalyzeProgram(prog *Program, specs []*Spec, nestVectors bool) (*ProgramAnalysis, error) {
	return driver.Analyze(prog, &driver.Options{Specs: specs, NestVectors: nestVectors})
}

// AnalyzeProgramOpts is AnalyzeProgram with the full option set: spec list,
// §6 vectors and their distance bound, worker-pool width (Parallelism: 0 =
// GOMAXPROCS, 1 = serial), and DisableCache to bypass the memo cache —
// required when passing hand-built Specs that reuse a canned problem name
// with different Gen/Kill semantics, since the cache keys solves by spec
// name and canonical loop text.
func AnalyzeProgramOpts(prog *Program, opts *AnalyzeOptions) (*ProgramAnalysis, error) {
	return driver.Analyze(prog, opts)
}

// AnalyzeProgramBatch analyzes many programs through one shared worker
// pool, per-worker solver scratch, and the shared memo cache, amortizing
// startup and allocation costs across the batch. Parallelism in opts fans
// out across programs (each analyzed serially by its worker); results come
// back in input order with per-program errors isolated per item, each
// byte-identical to a standalone AnalyzeProgramOpts call.
func AnalyzeProgramBatch(progs []*Program, opts *AnalyzeOptions) []BatchResult {
	return driver.AnalyzeBatch(progs, opts)
}

// DiffPrograms runs incremental re-analysis between two versions of a
// program set: the old version's analysis warms the memo (and, with
// opts.CacheDir, the persistent) cache, both versions are fingerprinted
// with the cache's 128-bit content address, and the new version re-solves
// only the loops whose fingerprints changed. The returned
// DiffResult.NewMetrics.CacheMisses is the number of solves the edit
// actually cost.
func DiffPrograms(oldProgs, newProgs []*Program, opts *AnalyzeOptions) (*DiffResult, error) {
	return driver.DiffPrograms(oldProgs, newProgs, opts)
}

// AnalysisDiskCacheStats reports the process-wide persistent solve cache
// counters accumulated by every AnalyzeOptions.CacheDir run.
func AnalysisDiskCacheStats() DiskCacheStats { return driver.DiskCacheStats() }

// AnalysisCacheStats reports the process-global solve cache: resident
// entries and lifetime hit/miss tallies across all AnalyzeProgram calls.
func AnalysisCacheStats() (entries, hits, misses int) { return driver.CacheStats() }

// ResetAnalysisCache drops every memoized loop solve. Long-running hosts
// that stream unbounded distinct programs can call it to release memory at
// a known point; the cache also self-bounds by flushing when full.
func ResetAnalysisCache() { driver.ResetCache() }

// Execution substrates.

// Interpret runs a program on an initial state (nil = empty), returning the
// final state and source-level load/store statistics.
func Interpret(prog *Program, init *State) (*State, *interp.Stats, error) {
	return interp.Run(prog, init, nil)
}

// NewState returns an empty interpreter state.
func NewState() *State { return interp.NewState() }

// ArraysEqual compares the array contents of two states (missing elements
// count as zero) — the differential-testing check for optimizations, which
// may introduce scalar temporaries but must preserve memory.
func ArraysEqual(a, b *State) bool { return interp.ArraysEqual(a, b) }

// Compile lowers a program to three-address code; hooks (may be nil) carry
// register-pipelining rewrites from Allocation.GenOptions.
func Compile(prog *Program, hooks *tac.GenOptions) (*MachineProg, error) {
	return tac.Gen(prog, hooks)
}

// OptimizeTAC applies classical local optimization (constant folding, copy
// propagation, local redundant-load elimination, liveness-based dead code
// elimination) to compiled code, returning a new program. It realizes the
// competent flow-insensitive baseline the paper's comparisons assume.
func OptimizeTAC(p *MachineProg) (*MachineProg, tacopt.Stats) {
	return tacopt.Optimize(p)
}

// Execute runs compiled code on the abstract machine, counting loads,
// stores and cycles under the default early-90s cost model.
func Execute(p *MachineProg, mem *MachineMemory, initRegs map[string]int64) (*MachineResult, error) {
	return machine.Run(p, mem, &machine.Options{InitRegs: initRegs})
}

// NewMemory returns empty machine memory.
func NewMemory() *MachineMemory { return machine.NewMemory() }

// BaselineMustReachingDefs runs the Rau-style name-propagation baseline
// (related work, paper §5) with the given instance-distance limit.
func BaselineMustReachingDefs(g *Graph, limit int64) *baseline.Result {
	return baseline.MustReachingDefs(g, &baseline.Options{Limit: limit})
}

// Static analysis (internal/diag + internal/lint).

type (
	// Finding is one static-analysis diagnostic: analyzer ID, source
	// position range, severity, message, related positions, and
	// structured detail.
	Finding = diag.Finding
	// FindingSeverity grades a Finding (info, warning, error).
	FindingSeverity = diag.Severity
	// VetResult bundles the findings of a full source-to-diagnostics run.
	VetResult = lint.VetResult
	// LintOptions tunes a lint/vet run (parallelism, cache, analyzer
	// selection).
	LintOptions = lint.Options
)

// Vet runs the complete static-analysis pipeline over source text: parse,
// check, normalize, solve the four array data flow problems on every loop,
// and apply every analyzer. Front-end errors become findings with analyzer
// IDs "parse" and "sema". opts may be nil. The finding list is sorted
// deterministically and identical at every parallelism setting.
func Vet(file, src string, opts *LintOptions) *VetResult { return lint.Vet(file, src, opts) }

// LintProgram applies the analyzers to a checked, normalized program.
func LintProgram(file string, prog *Program, opts *LintOptions) ([]Finding, *ProgramAnalysis, error) {
	return lint.Run(file, prog, opts)
}

// WriteFindingsText renders findings as "file:line:col: severity: analyzer:
// message" lines; WriteFindingsJSON as an indented JSON document.
func WriteFindingsText(w io.Writer, file string, fs []Finding) error {
	return diag.WriteText(w, file, fs)
}

// WriteFindingsJSON renders findings as a deterministic JSON document.
func WriteFindingsJSON(w io.Writer, file string, fs []Finding) error {
	return diag.WriteJSON(w, file, fs)
}

// Analysis service (internal/service) — the HTTP/JSON daemon behind
// `arrayflow serve`. docs/API.md is the wire reference, docs/OPERATIONS.md
// the runbook.

type (
	// Service is the analysis daemon: admission control, per-request
	// deadlines, and handlers whose responses are byte-identical to the
	// CLI's output. Mount Handler() on an http.Server.
	Service = service.Server
	// ServiceOptions configures a Service (workers, queue depth, deadline,
	// body cap, cache, engine). The zero value is usable.
	ServiceOptions = service.Options
	// ServiceStats is the /v1/stats snapshot document.
	ServiceStats = service.Stats
	// ServiceClient is an HTTP client for the /v1 API.
	ServiceClient = service.Client
	// ServiceStatusError is the typed error ServiceClient returns for
	// non-200 responses (status, machine-readable code, body, Retry-After).
	ServiceStatusError = service.StatusError
	// ServiceBatchRequest is the /v1/batch request document.
	ServiceBatchRequest = service.BatchRequest
	// ServiceBatchProgram is one named program inside a ServiceBatchRequest.
	ServiceBatchProgram = service.BatchProgram
	// ServiceBatchItem is one program's outcome in a batch NDJSON stream.
	ServiceBatchItem = service.BatchItem
	// ServiceVetResponse is a ServiceClient.Vet outcome: the rendered body
	// plus the CLI exit-contract value from X-Arrayflow-Exit.
	ServiceVetResponse = service.VetResponse
)

// NewService returns an analysis daemon with opts resolved to documented
// defaults (nil = all defaults): GOMAXPROCS workers, a 256-deep queue, a
// 10-second per-request deadline, a 1 MiB body cap, the packed engine, and
// the process-global sharded memo cache.
func NewService(opts *ServiceOptions) *Service { return service.New(opts) }

// NewServiceHandler is NewService(opts).Handler() — the one-liner for
// embedding the /v1 API into an existing mux or httptest server.
func NewServiceHandler(opts *ServiceOptions) http.Handler { return service.New(opts).Handler() }

// NewServiceClient returns a client for a running service (e.g.
// "http://127.0.0.1:8377"). Its Analyze/Vet bodies are byte-identical to
// the corresponding CLI stdout.
func NewServiceClient(baseURL string) *ServiceClient { return service.NewClient(baseURL) }

// Render helpers.

// ProgramString renders a program in source syntax.
func ProgramString(p *Program) string { return ast.ProgramString(p) }
