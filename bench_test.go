// Benchmarks regenerating every table and figure of the paper (experiment
// IDs E1–E12 per DESIGN.md). Each benchmark measures the cost of the
// corresponding reproduction and asserts its shape once before timing, so
// `go test -bench=. -benchmem` doubles as the full reproduction run.
// cmd/benchrepro prints the same rows as human-readable reports.
package arrayflow_test

import (
	"fmt"
	"strings"
	"testing"

	arrayflow "repro"
	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/dataflow"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/lattice"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/problems"
	"repro/internal/sema"
	"repro/internal/synth"
	"repro/internal/token"
)

func mustGraph(b *testing.B, src string) *ir.Graph {
	b.Helper()
	prog := arrayflow.MustParse(src)
	loop := prog.Body[0].(*ast.DoLoop)
	g, err := ir.Build(loop, nil)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// --- E1: Table 1 (i), the initialization pass --------------------------------

func BenchmarkTable1InitPass(b *testing.B) {
	g := mustGraph(b, experiments.Fig1Source)
	// Shape check: init pass rows match the paper.
	res := dataflow.Solve(g, problems.MustReachingDefs(), &dataflow.Options{CollectTrace: true})
	if got := res.InitOut()[1].String(); got != "(T,_,_,_)" {
		b.Fatalf("Table 1 (i) OUT[1] = %s, want (T,_,_,_)", got)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dataflow.Solve(g, problems.MustReachingDefs(), &dataflow.Options{MaxPasses: 1})
	}
}

// --- E2: Table 1 (ii), fixed point in two iteration passes -------------------

func BenchmarkTable1FixedPoint(b *testing.B) {
	g := mustGraph(b, experiments.Fig1Source)
	res := dataflow.Solve(g, problems.MustReachingDefs(), nil)
	if res.ChangedPasses > 2 {
		b.Fatalf("changed passes = %d, want ≤ 2", res.ChangedPasses)
	}
	if got := res.In[1].String(); got != "(2,1,_,T)" {
		b.Fatalf("fixed point IN[1] = %s, want (2,1,_,T)", got)
	}
	spec := problems.MustReachingDefs()
	for _, eng := range []dataflow.Engine{dataflow.EnginePacked, dataflow.EngineReference} {
		b.Run(string(eng), func(b *testing.B) {
			opts := &dataflow.Options{Engine: eng}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dataflow.Solve(g, spec, opts)
			}
		})
	}
}

// BenchmarkTable1FusedSolve solves all four standard problems on the
// Figure 1 graph through one SolveAll call, sharing class discovery, node
// orderings, and the precedes bitsets across the specs.
func BenchmarkTable1FusedSolve(b *testing.B) {
	g := mustGraph(b, experiments.Fig1Source)
	specs := problems.StandardSpecs()
	for _, eng := range []dataflow.Engine{dataflow.EnginePacked, dataflow.EngineReference} {
		b.Run(string(eng), func(b *testing.B) {
			opts := &dataflow.Options{Engine: eng}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dataflow.SolveAll(g, specs, opts)
			}
		})
	}
}

// --- E3: Figure 1/3, flow graph construction + reuse conclusions -------------

func BenchmarkFig3ReuseDetection(b *testing.B) {
	r := experiments.Fig3()
	if len(r.Reuses) != 5 {
		b.Fatalf("reuses = %d, want 5", len(r.Reuses))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := mustGraphQuiet(experiments.Fig1Source)
		res := dataflow.Solve(g, problems.MustReachingDefs(), nil)
		if len(problems.FindReuses(res)) != 5 {
			b.Fatal("reuse count changed")
		}
	}
}

func mustGraphQuiet(src string) *ir.Graph {
	prog := arrayflow.MustParse(src)
	loop := prog.Body[0].(*ast.DoLoop)
	g, err := ir.Build(loop, nil)
	if err != nil {
		panic(err)
	}
	return g
}

// --- E4: Figure 2, the chain lattice -----------------------------------------

func BenchmarkFig2LatticeOps(b *testing.B) {
	xs := []lattice.Dist{lattice.None(), lattice.D(0), lattice.D(3), lattice.D(17), lattice.All()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc lattice.Dist = lattice.All()
		for _, x := range xs {
			acc = lattice.Min(acc, lattice.Max(x, lattice.D(0)).Inc())
		}
		if acc.IsNone() {
			b.Fatal("unexpected bottom")
		}
	}
}

// --- E5: Figure 4, multi-dimensional recurrences ------------------------------

func BenchmarkFig4MultiDim(b *testing.B) {
	r, err := experiments.Fig4()
	if err != nil {
		b.Fatal(err)
	}
	exclusive := 0
	for _, rec := range r.Recurrences {
		if !rec.FoundBySingleLoop {
			exclusive++
		}
	}
	if exclusive != 1 {
		b.Fatalf("extension-exclusive recurrences = %d, want 1 (Z)", exclusive)
	}
	prog := arrayflow.MustParse(experiments.Fig4Source)
	outer := prog.Body[0].(*ast.DoLoop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arrayflow.NestRecurrences(outer, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Figure 5, register pipelining ----------------------------------------

func BenchmarkFig5RegisterPipeline(b *testing.B) {
	r, err := experiments.Fig5()
	if err != nil {
		b.Fatal(err)
	}
	if !r.Equal || r.Pipelined.Loads["A"] != 2 || r.Conventional.Loads["A"] != 1000 {
		b.Fatalf("Figure 5 shape wrong: equal=%v loads=%d/%d",
			r.Equal, r.Conventional.Loads["A"], r.Pipelined.Loads["A"])
	}
	b.ReportMetric(float64(r.Conventional.Cycles), "cycles-conventional")
	b.ReportMetric(float64(r.Pipelined.Cycles), "cycles-pipelined")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6b: §4.1.4 unroll-by-depth removes pipeline shifts -----------------------

func BenchmarkFig5UnrollByDepth(b *testing.B) {
	r, err := experiments.Fig5Unrolled()
	if err != nil {
		b.Fatal(err)
	}
	if !r.Equal {
		b.Fatal("semantics diverge")
	}
	b.ReportMetric(r.MovesPerIterPipelined, "moves/iter-pipelined")
	b.ReportMetric(r.MovesPerIterUnrolled, "moves/iter-unrolled")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5Unrolled(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: Figure 6, redundant store elimination ---------------------------------

func BenchmarkFig6StoreElimination(b *testing.B) {
	r, err := experiments.Fig6()
	if err != nil {
		b.Fatal(err)
	}
	if !r.SemanticsOK || r.StoresBefore != 2000 || r.StoresAfter != 1001 {
		b.Fatalf("Figure 6 shape wrong: %+v", r)
	}
	b.ReportMetric(float64(r.StoresBefore), "stores-before")
	b.ReportMetric(float64(r.StoresAfter), "stores-after")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: Figure 7, redundant load elimination ----------------------------------

func BenchmarkFig7LoadElimination(b *testing.B) {
	r, err := experiments.Fig7()
	if err != nil {
		b.Fatal(err)
	}
	if !r.SemanticsOK || r.LoadsAfter > 2 || r.LoadsBefore < 900 {
		b.Fatalf("Figure 7 shape wrong: %+v", r)
	}
	b.ReportMetric(float64(r.LoadsBefore), "loads-before")
	b.ReportMetric(float64(r.LoadsAfter), "loads-after")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: convergence within 3 passes (must) / 2 passes (may) -------------------

func BenchmarkConvergencePasses(b *testing.B) {
	for _, n := range []int{10, 50, 250, 1000} {
		b.Run(fmt.Sprintf("stmts=%d", n), func(b *testing.B) {
			prog := synth.Loop(synth.Params{Seed: int64(n), Stmts: n, Arrays: 4, MaxDist: 5, CondProb: 0.3})
			loop := prog.Body[0].(*ast.DoLoop)
			g, err := ir.Build(loop, nil)
			if err != nil {
				b.Fatal(err)
			}
			res := dataflow.Solve(g, problems.MustReachingDefs(), nil)
			if res.ChangedPasses > 2 {
				b.Fatalf("changed passes = %d > 2", res.ChangedPasses)
			}
			b.ReportMetric(float64(res.ChangedPasses), "changing-passes")
			b.ReportMetric(float64(res.NodeVisits)/float64(len(g.Nodes)), "visits/node")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dataflow.Solve(g, problems.MustReachingDefs(), nil)
			}
		})
	}
}

// --- E10: framework vs. Rau-style baseline --------------------------------------

func BenchmarkVsRauBaseline(b *testing.B) {
	for _, d := range []int64{4, 16, 64} {
		prog := synth.KilledRecurrenceLoop(d, 0)
		loop := prog.Body[0].(*ast.DoLoop)
		g, err := ir.Build(loop, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("framework/d=%d", d), func(b *testing.B) {
			res := dataflow.Solve(g, problems.MustReachingDefs(), nil)
			b.ReportMetric(float64(res.ChangedPasses), "passes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dataflow.Solve(g, problems.MustReachingDefs(), nil)
			}
		})
		b.Run(fmt.Sprintf("baseline/d=%d", d), func(b *testing.B) {
			res := baseline.MustReachingDefs(g, &baseline.Options{Limit: 2 * d})
			if !res.Converged {
				b.Fatal("baseline did not converge")
			}
			b.ReportMetric(float64(res.Passes), "passes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				baseline.MustReachingDefs(g, &baseline.Options{Limit: 2 * d})
			}
		})
	}
}

// --- E11: linear scaling in loop size --------------------------------------------

func BenchmarkScalingLinear(b *testing.B) {
	// Fixed number of tracked classes (4 arrays × bounded offsets): solver
	// time grows linearly with the statement count, matching the paper's
	// 3·N node-visit bound.
	for _, n := range []int{32, 128, 512, 2048} {
		prog := synth.Loop(synth.Params{Seed: 1, Stmts: n, Arrays: 4, MaxDist: 5, CondProb: 0.2})
		loop := prog.Body[0].(*ast.DoLoop)
		g, err := ir.Build(loop, nil)
		if err != nil {
			b.Fatal(err)
		}
		spec := problems.MustReachingDefs()
		for _, eng := range []dataflow.Engine{dataflow.EnginePacked, dataflow.EngineReference} {
			b.Run(fmt.Sprintf("bounded-classes/stmts=%d/%s", n, eng), func(b *testing.B) {
				opts := &dataflow.Options{Engine: eng}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dataflow.Solve(g, spec, opts)
				}
			})
		}
	}
	// Classes growing with N (every statement its own array): total work is
	// O(N·m) = O(N²), matching the paper's O(N²) space statement for the
	// IN/OUT sets.
	for _, n := range []int{32, 128, 512, 2048} {
		prog := synth.WideLoop(n, 0)
		loop := prog.Body[0].(*ast.DoLoop)
		g, err := ir.Build(loop, nil)
		if err != nil {
			b.Fatal(err)
		}
		spec := problems.MustReachingDefs()
		for _, eng := range []dataflow.Engine{dataflow.EnginePacked, dataflow.EngineReference} {
			b.Run(fmt.Sprintf("growing-classes/stmts=%d/%s", n, eng), func(b *testing.B) {
				opts := &dataflow.Options{Engine: eng}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dataflow.Solve(g, spec, opts)
				}
			})
		}
	}
}

// --- E12: controlled unrolling predictions ----------------------------------------

func BenchmarkControlledUnrolling(b *testing.B) {
	rows := experiments.Unrolling()
	for _, r := range rows {
		if r.L2 < r.L || r.L2 > 2*r.L {
			b.Fatalf("paper bound violated: %+v", r)
		}
	}
	progs := []*ast.Program{
		arrayflow.MustParse("do i = 1, 100\n A[i+2] := A[i] + x\nenddo"),
		arrayflow.MustParse("do i = 1, 100\n A[i+1] := A[i] + x\nenddo"),
		synth.ChainLoop(4, 1, 100),
		synth.WideLoop(6, 100),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := arrayflow.ControlledUnroll(p, 0, 1.2, 4); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E13: parallel memoizing whole-program driver ------------------------------
//
// The driver schedules loops of equal nesting depth across a worker pool
// (wave-by-wave, innermost first) and memoizes identical loop bodies in a
// content-addressed cache. On a ≥ 4-core machine the parallel schedule is
// expected to finish the 32-loop program ≥ 2× faster than the serial one;
// both produce byte-identical output (asserted before timing).

func driverBenchProgram() *ast.Program {
	return synth.MultiLoopProgram(synth.MultiParams{Seed: 13, Loops: 32, StmtsPer: 48, NestEvery: 4})
}

func BenchmarkDriverSerialVsParallel(b *testing.B) {
	prog := driverBenchProgram()
	serialOpts := &driver.Options{Parallelism: 1, DisableCache: true}
	parallelOpts := &driver.Options{DisableCache: true}
	s, err := driver.Analyze(prog, serialOpts)
	if err != nil {
		b.Fatal(err)
	}
	p, err := driver.Analyze(prog, parallelOpts)
	if err != nil {
		b.Fatal(err)
	}
	if s.Report() != p.Report() {
		b.Fatal("serial and parallel schedules diverged")
	}
	b.ReportMetric(float64(p.Metrics.Parallelism), "workers")
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := driver.Analyze(prog, serialOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := driver.Analyze(prog, parallelOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDriverMemoization(b *testing.B) {
	// 32 loops drawn from 4 distinct bodies: the warm cache serves 28+ of
	// the solves per call without touching the solver.
	prog := synth.MultiLoopProgram(synth.MultiParams{Seed: 29, Loops: 32, StmtsPer: 48, DistinctBodies: 4})
	cold := &driver.Options{DisableCache: true}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := driver.Analyze(prog, cold); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memoized", func(b *testing.B) {
		driver.ResetCache()
		pa, err := driver.Analyze(prog, nil) // warm the cache
		if err != nil {
			b.Fatal(err)
		}
		if pa.Metrics.CacheHits == 0 {
			b.Fatal("expected warm-up hits on repeated bodies")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := driver.Analyze(prog, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Front end: lex + parse + sema in isolation -------------------------------

// BenchmarkFrontEnd isolates the zero-copy front end (lexer, parser,
// semantic checks) from the solver: the cost of getting a large program
// from source bytes to a checked AST. The shared-interner variant models
// the batch pipeline, where one intern table serves many programs.
func BenchmarkFrontEnd(b *testing.B) {
	src := []byte(ast.ProgramString(driverBenchProgram()))
	prog, err := parser.ParseBytes(src, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sema.Check(prog); err != nil {
		b.Fatal(err)
	}
	b.Run("fresh-interner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := parser.ParseBytes(src, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sema.Check(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared-interner", func(b *testing.B) {
		in := token.NewInterner()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := parser.ParseBytes(src, in)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sema.Check(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Batch: many programs through one worker pool ------------------------------

// BenchmarkAnalyzeBatch measures the cold path over N distinct programs:
// the batched API (one worker pool, per-worker scratch, shared cache
// machinery) against a loop of standalone Analyze calls.
func BenchmarkAnalyzeBatch(b *testing.B) {
	progs := make([]*ast.Program, 16)
	for i := range progs {
		progs[i] = synth.MultiLoopProgram(synth.MultiParams{
			Seed: int64(100 + i), Loops: 8, StmtsPer: 24, NestEvery: 3})
	}
	cold := &driver.Options{DisableCache: true}
	for _, r := range driver.AnalyzeBatch(progs, cold) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range driver.AnalyzeBatch(progs, cold) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	b.Run("analyze-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range progs {
				if _, err := driver.Analyze(p, cold); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkWarmStart measures the same 16-program AnalyzeBatch workload at
// the three cache temperatures a deployment sees: cold (fresh process, no
// persistent cache), disk-warm (fresh process, persistent cache populated
// by a previous run — the warm-restart path), and memory-warm (long-lived
// process, memo cache resident). Disk-warm analysis decodes only the
// checksummed containers and solver counters, deferring graph rebuilds and
// row decodes until a loop's facts are read; the -report variants force
// that restore by rendering every report, so they bound the warm-start win
// for callers that consume everything. scripts/bench.sh gates disk-warm at
// ≤ 0.5× cold.
func BenchmarkWarmStart(b *testing.B) {
	progs := make([]*ast.Program, 16)
	for i := range progs {
		progs[i] = synth.MultiLoopProgram(synth.MultiParams{
			Seed: int64(100 + i), Loops: 8, StmtsPer: 24, NestEvery: 3})
	}
	run := func(b *testing.B, opts *driver.Options, restart, report bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if restart {
				driver.ResetCache()
			}
			for _, r := range driver.AnalyzeBatch(progs, opts) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				if report && len(r.Analysis.Report()) == 0 {
					b.Fatal("empty report")
				}
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		run(b, &driver.Options{}, true, false)
	})
	warm := func(report bool) func(b *testing.B) {
		return func(b *testing.B) {
			opts := &driver.Options{CacheDir: b.TempDir()}
			driver.ResetCache()
			for _, r := range driver.AnalyzeBatch(progs, opts) { // populate the disk cache
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			b.ResetTimer()
			run(b, opts, true, report)
		}
	}
	b.Run("disk-warm", warm(false))
	// The forced variants render every report, so the disk-warm point also
	// pays the deferred restore (graph rebuild + row decode) instead of
	// stopping at the lazily-loaded counters. Compare against cold-report
	// for the honest speedup when the caller consumes every loop's facts.
	b.Run("cold-report", func(b *testing.B) {
		run(b, &driver.Options{}, true, true)
	})
	b.Run("disk-warm-report", warm(true))
	b.Run("memory-warm", func(b *testing.B) {
		opts := &driver.Options{}
		driver.ResetCache()
		for _, r := range driver.AnalyzeBatch(progs, opts) { // populate the memo
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		b.ResetTimer()
		run(b, opts, false, false)
	})
}

// BenchmarkDiff measures incremental re-analysis after a 1-of-16-loops
// edit. Each timed iteration starts from a memo warmed only by the old
// version (the untimed prologue simulates the previous run), so
// DiffPrograms pays fingerprinting plus exactly one solve — asserted on
// driver.Metrics every iteration. The full-reanalysis point is the
// non-incremental comparator: the same edit paid as 16 cold solves.
func BenchmarkDiff(b *testing.B) {
	diffSrc := func(n, edited int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			v := string(rune('a' + i))
			sb.WriteString("do " + v + " = 1, 100\n")
			if i == edited {
				sb.WriteString("  A" + v + "[" + v + "+2] := A" + v + "[" + v + "] + A" + v + "[" + v + "-1]\n")
			} else {
				sb.WriteString("  A" + v + "[" + v + "+1] := A" + v + "[" + v + "] + " + v + "\n")
			}
			sb.WriteString("enddo\n")
		}
		return sb.String()
	}
	const n = 16
	oldProg := parser.MustParse(diffSrc(n, -1))
	newProg := parser.MustParse(diffSrc(n, 7))
	opts := &driver.Options{Parallelism: 1}

	b.Run("1-of-16-edited", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			driver.ResetCache()
			if _, err := driver.Analyze(oldProg, opts); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			d, err := driver.DiffPrograms(
				[]*ast.Program{oldProg}, []*ast.Program{newProg}, opts)
			if err != nil {
				b.Fatal(err)
			}
			if d.Changed != 1 || d.NewMetrics.CacheMisses != 1 {
				b.Fatalf("changed %d, re-solved %d loops, want 1 and 1", d.Changed, d.NewMetrics.CacheMisses)
			}
		}
	})
	b.Run("full-reanalysis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			driver.ResetCache()
			b.StartTimer()
			if _, err := driver.Analyze(newProg, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Vet: the static analysis layer over the memoizing driver ----------------

func BenchmarkVet(b *testing.B) {
	// 24 loops drawn from 4 distinct bodies: the memoized run serves most
	// solves from the cache, isolating the analyzers' own cost; the
	// uncached run measures the full solve-plus-analyze pipeline. The
	// driver metrics embedded in the result expose the split.
	prog := synth.MultiLoopProgram(synth.MultiParams{Seed: 41, Loops: 24, StmtsPer: 32, DistinctBodies: 4})
	src := ast.ProgramString(prog)
	run := func(b *testing.B, disableCache bool) {
		var hits, misses, analysisNS int64
		for i := 0; i < b.N; i++ {
			res := arrayflow.Vet("bench.loop", src, &arrayflow.LintOptions{DisableCache: disableCache})
			if res.Analysis == nil {
				b.Fatalf("front end rejected the synthetic program: %v", res.Findings)
			}
			m := res.Analysis.Metrics
			hits += int64(m.CacheHits)
			misses += int64(m.CacheMisses)
			analysisNS += int64(m.Elapsed)
		}
		b.ReportMetric(float64(hits)/float64(b.N), "cachehits/op")
		b.ReportMetric(float64(misses)/float64(b.N), "cachemisses/op")
		b.ReportMetric(float64(analysisNS)/float64(b.N)/1e6, "analysis-ms/op")
	}
	b.Run("uncached", func(b *testing.B) { run(b, true) })
	b.Run("memoized", func(b *testing.B) {
		driver.ResetCache()
		if res := arrayflow.Vet("bench.loop", src, nil); res.Analysis == nil {
			b.Fatal("warm-up vet failed")
		}
		b.ResetTimer()
		run(b, false)
	})
}

// --- Ablation: initialization pass (DESIGN.md §5.2) -------------------------------

func BenchmarkAblationInitPass(b *testing.B) {
	g := mustGraph(b, experiments.Fig1Source)
	b.Run("with-init", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dataflow.Solve(g, problems.MustReachingDefs(), nil)
		}
	})
	b.Run("without-init-unsound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dataflow.Solve(g, problems.MustReachingDefs(), &dataflow.Options{SkipInitPass: true})
		}
	})
}

// --- Ablation: §4.1.4 hardware pipeline progression ----------------------------
//
// The Cydra 5's iteration control pointer performs the pipeline shift as a
// register-window update at no per-iteration instruction cost. Model it by
// zeroing the move cost on the pipelined code and compare.

func BenchmarkAblationHardwareShifts(b *testing.B) {
	prog := arrayflow.MustParse(experiments.Fig5Source)
	loop := prog.Body[0].(*ast.DoLoop)
	g, err := ir.Build(loop, nil)
	if err != nil {
		b.Fatal(err)
	}
	alloc := arrayflow.AllocateRegisters(g, 16)
	hooks, err := alloc.GenOptions()
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := arrayflow.Compile(prog, hooks)
	if err != nil {
		b.Fatal(err)
	}
	run := func(moveCost int64) int64 {
		mem := machine.NewMemory()
		res, err := machine.Run(pipe, mem, &machine.Options{
			Costs:    machine.Costs{Load: 4, Store: 4, ALU: 1, Mul: 4, Move: moveCost, Branch: 1},
			InitRegs: map[string]int64{"X": 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Cycles
	}
	soft := run(1)
	hard := run(0)
	if hard >= soft {
		b.Fatalf("hardware shifts must be cheaper: %d vs %d", hard, soft)
	}
	b.ReportMetric(float64(soft), "cycles-software-shift")
	b.ReportMetric(float64(hard), "cycles-hardware-shift")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(0)
	}
}

// --- Ablation: UB clamping ---------------------------------------------------------

func BenchmarkAblationUBClamp(b *testing.B) {
	known := mustGraph(b, "do i = 1, 1000\n A[i+2] := A[i] + x\nenddo")
	symbolic := mustGraph(b, "do i = 1, N\n A[i+2] := A[i] + x\nenddo")
	b.Run("constant-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dataflow.Solve(known, problems.MustReachingDefs(), nil)
		}
	})
	b.Run("symbolic-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dataflow.Solve(symbolic, problems.MustReachingDefs(), nil)
		}
	})
}
