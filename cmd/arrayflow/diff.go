package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/goimport"
	"repro/internal/parser"
	"repro/internal/sema"
)

// runDiff implements the `arrayflow diff` subcommand: incremental
// re-analysis between two versions of a program. Both versions are
// fingerprinted with the memo cache's 128-bit content address; unchanged
// loops are answered from the cache warmed by the old version's analysis
// (and, with -cache-dir, from the persistent cache across restarts), so an
// edit to one loop of an N-loop program costs one solve, not N.
//
// With -lang loop (default) the arguments are two .loop files. With
// -lang go they are two package patterns (a directory, dir/..., or a .go
// file); every lowered loop nest of each tree becomes one program, and the
// fingerprint match is global, so a loop moved between files still counts
// as unchanged.
//
// Exit status: 0 when no loop changed and none was removed, 1 when changed
// or removed loops exist, 2 when either version fails the front end (or on
// usage errors).
func runDiff(args []string) {
	fs := flag.NewFlagSet("arrayflow diff", flag.ExitOnError)
	lang := fs.String("lang", "loop", "input language: loop (two .loop files) or go (two package patterns)")
	includeTests := fs.Bool("include-tests", false, "with -lang go, also analyze _test.go files")
	workers := fs.Int("workers", 0, "worker goroutines per analysis pass (0 = GOMAXPROCS, 1 = serial)")
	cacheDir := fs.String("cache-dir", "", "persistent solve cache directory: lets the old version's solves come from an earlier process")
	metrics := fs.Bool("metrics", false, "print both passes' analysis metrics to stderr")
	engineFlag := fs.String("engine", "packed", "solver engine: packed or reference (ablation baseline)")
	fuel := fs.Int64("fuel", 0, "per-solve fuel budget in flow-application units (0 = derived default)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: arrayflow diff [-lang loop|go] [-include-tests] [-workers n] [-cache-dir dir] [-metrics] [-engine packed|reference] [-fuel n] old new")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	if *lang != "loop" && *lang != "go" {
		fmt.Fprintf(os.Stderr, "arrayflow diff: unknown -lang %q (want loop or go)\n", *lang)
		os.Exit(2)
	}
	engine := parseEngine(*engineFlag)

	var oldProgs, newProgs []*ast.Program
	var newNames []string
	if *lang == "go" {
		oldProgs, _ = diffImportGo(fs.Arg(0), *includeTests)
		newProgs, newNames = diffImportGo(fs.Arg(1), *includeTests)
	} else {
		oldProgs = []*ast.Program{diffLoadLoop(fs.Arg(0))}
		newProgs = []*ast.Program{diffLoadLoop(fs.Arg(1))}
		newNames = []string{fs.Arg(1)}
	}

	d, err := driver.DiffPrograms(oldProgs, newProgs, &driver.Options{
		Parallelism: *workers, CacheDir: *cacheDir, Engine: engine, Fuel: *fuel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow diff:", err)
		os.Exit(2)
	}

	for _, dl := range d.Loops {
		status := "unchanged"
		if dl.Changed {
			status = "changed"
		}
		fmt.Printf("%s:%s: loop %s (depth %d): %s\n", newNames[dl.Prog], dl.Pos, dl.Var, dl.Depth, status)
	}
	fmt.Printf("%d changed, %d unchanged, %d removed; re-solved %d of %d loop solves\n",
		d.Changed, d.Unchanged, d.Removed, d.NewMetrics.CacheMisses, d.NewMetrics.Solves)

	if *metrics {
		fmt.Fprintln(os.Stderr, "-- old version metrics --")
		fmt.Fprint(os.Stderr, d.OldMetrics.Report())
		fmt.Fprintln(os.Stderr, "-- new version metrics --")
		fmt.Fprint(os.Stderr, d.NewMetrics.Report())
	}
	if *cacheDir != "" {
		reportDiskStats("arrayflow diff")
	}
	if d.Changed > 0 || d.Removed > 0 {
		os.Exit(1)
	}
}

// diffLoadLoop reads and front-ends one .loop file for diff, exiting 2 on
// any failure (an unanalyzable version has no meaningful fingerprints).
func diffLoadLoop(path string) *ast.Program {
	src, file, err := readSource(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow diff:", err)
		os.Exit(2)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		reportErrors(file, "parse", err)
		os.Exit(2)
	}
	if _, errs := sema.CheckAll(prog); len(errs) > 0 {
		for _, e := range errs {
			reportErrors(file, "check", e)
		}
		os.Exit(2)
	}
	prog, err = sema.Normalize(prog)
	if err != nil {
		reportErrors(file, "normalize", err)
		os.Exit(2)
	}
	return prog
}

// diffImportGo lowers one Go package tree into per-loop-nest programs for
// diff, with a display name per program. A pattern that cannot resolve, a
// file that cannot parse, or a unit that cannot normalize exits 2: a
// partially lowered tree would misreport its missing loops as removed.
func diffImportGo(pattern string, includeTests bool) ([]*ast.Program, []string) {
	res, err := goimport.ImportTree(pattern, includeTests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow diff:", err)
		os.Exit(2)
	}
	for _, f := range res.Findings() {
		if f.Severity == diag.Error {
			fmt.Fprintf(os.Stderr, "arrayflow diff: %s:%s: %s\n", f.File, f.Pos, f.Message)
			os.Exit(2)
		}
	}
	var progs []*ast.Program
	var names []string
	for _, u := range res.Units() {
		norm, err := sema.Normalize(u.Program)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arrayflow diff: %s:%s: lowered loop failed to normalize: %v\n", u.File, u.Pos, err)
			os.Exit(2)
		}
		progs = append(progs, norm)
		names = append(names, u.File)
	}
	return progs, names
}
