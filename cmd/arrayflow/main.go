// Command arrayflow parses a loop program and runs the array data flow
// analyses over it.
//
// The default mode prints one analysis in the style of the paper's
// Table 1 — the loop flow graph, the IN/OUT tuple tables, and the derived
// facts (reuses, redundant stores, or dependences):
//
//	arrayflow [-analysis reach|avail|busy|deps] [-trace] [-metrics] [-loop n] [file]
//
// The vet mode runs every static analyzer (internal/lint) over every loop
// and prints source-positioned findings:
//
//	arrayflow vet [-format text|json|sarif] [-fix] [-werror] [-baseline file]
//	              [-updatebaseline] [-workers n] [-nocache] [-metrics] [file]
//
// Vet's exit status contract: 0 when the analysis ran and no (unsuppressed)
// error finding remains, 1 when error findings exist (warnings too under
// -werror), and 2 when the front end or the analysis itself failed.
// -format sarif emits a SARIF 2.1.0 log for code-scanning upload; -fix
// applies the analyzers' suggested fixes to the file in place, re-analyzing
// until none apply, so a second -fix run is a no-op; //lint:ignore
// directives and -baseline files suppress accepted findings.
//
// The batch mode analyzes many programs — files and/or directories of
// .loop files — through one shared worker pool, one identifier intern
// table, and the shared memoizing solve cache, printing each program's
// whole-program report in input order:
//
//	arrayflow batch [-workers n] [-nocache] [-cachecap n] [-vectors] [-metrics] path...
//
// The diff mode fingerprints two versions of a program (or two Go package
// trees with -lang go), reports which loops changed, and re-solves only
// those — unchanged loops are served from the memo cache warmed by the old
// version (and, with -cache-dir, from the persistent cache across process
// restarts). Exit status: 0 when nothing changed, 1 when changed or removed
// loops exist, 2 when either version fails the front end:
//
//	arrayflow diff [-lang loop|go] [-include-tests] [-workers n] [-metrics]
//	               [-cache-dir dir] [-engine packed|reference] [-fuel n] old new
//
// The serve mode runs the analyses as a long-lived HTTP/JSON daemon —
// /v1/analyze, /v1/vet, /v1/batch, and /v1/stats over the shared sharded
// memo cache, with queue-depth admission control (429 + Retry-After on
// overload), per-request deadlines, and a graceful SIGTERM drain that
// exits 0. Responses are byte-identical to the corresponding CLI output;
// the wire reference lives in docs/API.md and the runbook in
// docs/OPERATIONS.md:
//
//	arrayflow serve [-addr host:port] [-workers n] [-max-queue n]
//	                [-deadline d] [-cache-cap n] [-max-body n] [-nocache]
//	                [-cache-dir dir] [-drain-timeout d]
//	                [-engine packed|reference]
//
// Every analyzing mode accepts -cache-dir: a persistent, content-addressed
// solve cache shared across processes, letting a cold process warm-start
// previously analyzed loops at memo-hit speed. Its counters print to stderr
// only — stdout stays byte-identical between cold and warm runs.
//
// With no file the program is read from stdin. With no file and no piped
// input, the paper's Figure 1 loop is analyzed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/goimport"
	"repro/internal/ir"
	"repro/internal/lint"
	"repro/internal/parser"
	"repro/internal/problems"
	"repro/internal/rangefacts"
	"repro/internal/sema"
	"repro/internal/token"
)

// stopProfiles flushes any active profiles; it must run before every exit
// path once startProfiles has been called (os.Exit skips deferred calls).
var stopProfiles = func() {}

// startProfiles starts CPU profiling and arranges the heap profile write,
// installing the combined flush as stopProfiles.
func startProfiles(cpu, mem string) {
	var stops []func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if mem != "" {
		stops = append(stops, func() {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "arrayflow: memprofile:", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "arrayflow: memprofile:", err)
			}
			f.Close()
		})
	}
	stopProfiles = func() {
		for _, s := range stops {
			s()
		}
		stopProfiles = func() {}
	}
}

// parseEngine validates a -engine flag value.
func parseEngine(s string) dataflow.Engine {
	switch s {
	case "packed":
		return dataflow.EnginePacked
	case "reference":
		return dataflow.EngineReference
	}
	fatal(fmt.Errorf("unknown -engine %q (want packed or reference)", s))
	panic("unreachable")
}

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "vet" {
		runVet(os.Args[2:])
		return
	}
	if len(os.Args) >= 2 && os.Args[1] == "batch" {
		runBatch(os.Args[2:])
		return
	}
	if len(os.Args) >= 2 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) >= 2 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}

	analysis := flag.String("analysis", "reach",
		"analysis to run: reach (must-reaching defs), avail (δ-available), busy (δ-busy stores), deps (δ-reaching refs)")
	trace := flag.Bool("trace", false, "print initialization and per-pass tuple tables (Table 1 style)")
	metrics := flag.Bool("metrics", false, "print solver metrics: passes, node visits, flow applications, cache hits, wall time")
	loopIdx := flag.Int("loop", 0, "index of the top-level loop to analyze")
	whole := flag.Bool("program", false, "run the whole-program hierarchical analysis (§3.2) instead of a single loop")
	workers := flag.Int("workers", 0, "worker goroutines for -program (0 = GOMAXPROCS, 1 = serial)")
	nocache := flag.Bool("nocache", false, "disable the memoizing solve cache for -program")
	cacheDir := flag.String("cache-dir", "", "persistent solve cache directory for -program (empty = memory-only)")
	engineFlag := flag.String("engine", "packed", "solver engine: packed or reference (ablation baseline)")
	fuel := flag.Int64("fuel", 0, "per-solve fuel budget in flow-application units (0 = derived default; exhausted solves degrade to claim-nothing facts)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	engine := parseEngine(*engineFlag)
	startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()

	_, prog := loadProgram(flag.Arg(0))

	if *whole {
		pa, err := driver.Analyze(prog, &driver.Options{
			NestVectors: true, Parallelism: *workers, DisableCache: *nocache,
			CacheDir: *cacheDir, Engine: engine, Fuel: *fuel})
		if err != nil {
			fatal(err)
		}
		fmt.Print(pa.Report())
		if *metrics {
			fmt.Println("-- solver metrics --")
			fmt.Print(pa.Metrics.Report())
		}
		if *cacheDir != "" {
			reportDiskStats("arrayflow")
		}
		return
	}

	loop, err := pickLoop(prog, *loopIdx)
	if err != nil {
		fatal(err)
	}
	g, err := ir.Build(loop, nil)
	if err != nil {
		fatal(fmt.Errorf("graph: %w", err))
	}

	var spec *dataflow.Spec
	switch *analysis {
	case "reach":
		spec = problems.MustReachingDefs()
	case "avail":
		spec = problems.AvailableValues()
	case "busy":
		spec = problems.BusyStores()
	case "deps":
		spec = problems.ReachingRefs()
	default:
		fatal(fmt.Errorf("unknown analysis %q", *analysis))
	}

	res := dataflow.Solve(g, spec, &dataflow.Options{CollectTrace: *trace, Engine: engine, Fuel: *fuel})
	if res.FuelExhausted {
		fmt.Printf("-- fuel budget %d exhausted: facts degraded to claim nothing --\n", res.FuelBudget)
	}

	fmt.Println(g.Dump())
	if *trace {
		fmt.Println("-- initialization pass --")
		fmt.Println(res.TupleTable(0))
		for p := 1; p <= len(res.Trace); p++ {
			fmt.Printf("-- iteration pass %d --\n", p)
			fmt.Println(res.TupleTable(p))
		}
	}
	fmt.Printf("-- fixed point (%s, %d changing passes) --\n", spec.Name, res.ChangedPasses)
	fmt.Println(res.TupleTable(-1))
	if *metrics {
		m := res.Metrics()
		fmt.Printf("-- solver metrics --\n")
		fmt.Printf("  nodes %d, classes %d, passes %d (%d changing), node visits %d, flow applications %d, wall %s\n",
			m.Nodes, m.Classes, m.Passes, m.ChangedPasses, m.NodeVisits, m.FlowApps, m.Elapsed)
	}

	switch *analysis {
	case "reach", "avail":
		fmt.Println("-- guaranteed reuses --")
		for _, r := range problems.FindReuses(res) {
			fmt.Println("  " + r.String())
		}
	case "busy":
		fmt.Println("-- redundant stores --")
		for _, r := range problems.FindRedundantStores(res) {
			fmt.Println("  " + r.String())
		}
	case "deps":
		fmt.Println("-- dependences (distance ≤ 8) --")
		for _, d := range problems.FindDependences(res, 8) {
			fmt.Println("  " + d.String())
		}
	}
}

// runBatch implements the `arrayflow batch` subcommand: many programs
// analyzed through driver.AnalyzeBatch with a shared intern table and
// worker pool. Exit status: 0 when every program analyzed cleanly, 1 when
// any failed, 2 on usage or I/O failure.
func runBatch(args []string) {
	fs := flag.NewFlagSet("arrayflow batch", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker goroutines across programs (0 = GOMAXPROCS, 1 = serial)")
	nocache := fs.Bool("nocache", false, "disable the memoizing solve cache")
	cachecap := fs.Int("cachecap", 0, "memo cache capacity in entries (0 = default 4096, negative = unlimited)")
	cacheDir := fs.String("cache-dir", "", "persistent solve cache directory shared across runs (empty = memory-only)")
	vectors := fs.Bool("vectors", false, "run the §6 distance-vector extension on tight nests")
	metrics := fs.Bool("metrics", false, "print batch totals and cache stats to stderr")
	engineFlag := fs.String("engine", "packed", "solver engine: packed or reference (ablation baseline)")
	fuel := fs.Int64("fuel", 0, "per-solve fuel budget in flow-application units (0 = derived default)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: arrayflow batch [-workers n] [-nocache] [-cachecap n] [-cache-dir dir] [-vectors] [-metrics] [-engine packed|reference] [-fuel n] path...")
		fmt.Fprintln(os.Stderr, "each path is a .loop file or a directory of .loop files")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	engine := parseEngine(*engineFlag)
	files, err := expandBatchPaths(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow batch:", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	// Front end: one intern table across every file, so an identifier read
	// in program 1 is the same symbol in program 100. Parsing is serial
	// (the interner is not synchronized); the analysis fans out below.
	in := token.NewInterner()
	progs := make([]*ast.Program, len(files))
	frontErr := make([]bool, len(files))
	for i, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arrayflow batch:", err)
			os.Exit(2)
		}
		prog, err := parser.ParseBytes(src, in)
		if err != nil {
			reportErrors(f, "parse", err)
			frontErr[i] = true
			continue
		}
		if _, errs := sema.CheckAll(prog); len(errs) > 0 {
			for _, e := range errs {
				reportErrors(f, "check", e)
			}
			frontErr[i] = true
			continue
		}
		prog, err = sema.Normalize(prog)
		if err != nil {
			reportErrors(f, "normalize", err)
			frontErr[i] = true
			continue
		}
		progs[i] = prog
	}

	startProfiles(*cpuprofile, *memprofile)
	results := driver.AnalyzeBatch(progs, &driver.Options{
		NestVectors: *vectors, Parallelism: *workers,
		DisableCache: *nocache, CacheCap: *cachecap, CacheDir: *cacheDir,
		Engine: engine, Fuel: *fuel})

	exit := 0
	var totalLoops, totalSolves, totalHits, totalMisses int
	for i, r := range results {
		fmt.Printf("== %s ==\n", files[i])
		switch {
		case frontErr[i]:
			fmt.Println("skipped: front-end errors (see stderr)")
			exit = 1
		case r.Err != nil:
			fmt.Println("error:", r.Err)
			exit = 1
		default:
			fmt.Print(r.Analysis.Report())
			m := r.Analysis.Metrics
			totalLoops += m.Loops
			totalSolves += m.Solves
			totalHits += m.CacheHits
			totalMisses += m.CacheMisses
		}
	}
	if *metrics {
		entries, hits, misses := driver.CacheStats()
		fmt.Fprintf(os.Stderr, "-- batch metrics --\n")
		fmt.Fprintf(os.Stderr, "  programs %d, loops %d, solves %d, batch cache hits/misses %d/%d\n",
			len(files), totalLoops, totalSolves, totalHits, totalMisses)
		fmt.Fprintf(os.Stderr, "  global cache: %d entries, lifetime hits/misses %d/%d\n",
			entries, hits, misses)
	}
	if *cacheDir != "" {
		reportDiskStats("arrayflow batch")
	}
	stopProfiles()
	os.Exit(exit)
}

// reportDiskStats prints the process-wide persistent-cache counters to
// stderr — never stdout, which must stay byte-identical between cold and
// disk-warm runs (the CI warm-start smoke depends on that).
func reportDiskStats(prefix string) {
	ds := driver.DiskCacheStats()
	fmt.Fprintf(os.Stderr, "%s: disk cache: %d hits, %d misses, %d stores, %d errors, %d bytes loaded, %d bytes stored\n",
		prefix, ds.Hits, ds.Misses, ds.Stores, ds.Errors, ds.LoadBytes, ds.StoreBytes)
}

// expandBatchPaths resolves each argument to .loop files: directories
// contribute their *.loop entries sorted by name, files pass through.
func expandBatchPaths(args []string) ([]string, error) {
	var files []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			files = append(files, a)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(a, "*.loop"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	return files, nil
}

// runVet implements the `arrayflow vet` subcommand. Exit status contract:
// 0 when the analysis ran and reported no unsuppressed error findings
// (warnings too count under -werror), 1 when such findings exist, and 2
// when the front end or the analysis itself failed (including usage and
// I/O errors) — findings are then incomplete and must not be trusted as
// "clean".
func runVet(args []string) {
	fs := flag.NewFlagSet("arrayflow vet", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text, json, or sarif (SARIF 2.1.0)")
	lang := fs.String("lang", "loop", "input language: loop (mini-language file) or go (package pattern, e.g. ./...)")
	includeTests := fs.Bool("include-tests", false, "with -lang go, also analyze _test.go files")
	fix := fs.Bool("fix", false, "apply suggested fixes to the file in place, re-analyzing until none apply")
	werror := fs.Bool("werror", false, "treat warning findings as errors for the exit status")
	baselinePath := fs.String("baseline", "", "suppress the findings accepted by this baseline file")
	updateBaseline := fs.Bool("updatebaseline", false, "rewrite the -baseline file from the current findings and report none")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	nocache := fs.Bool("nocache", false, "disable the memoizing solve cache")
	cacheDir := fs.String("cache-dir", "", "persistent solve cache directory shared across runs (empty = memory-only)")
	metrics := fs.Bool("metrics", false, "print analysis metrics to stderr")
	engineFlag := fs.String("engine", "packed", "solver engine: packed or reference (ablation baseline)")
	fuel := fs.Int64("fuel", 0, "per-solve fuel budget in flow-application units (0 = derived default; exhausted loops report unknown verdicts)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	var assume []rangefacts.Fact
	fs.Func("assume", "inject a range-fact assumption in mini-language condition syntax, e.g. 'k >= 64' (repeatable; 'and' conjoins). Unknown-verdict why-certificates name the missing fact this flag supplies", func(s string) error {
		facts, err := rangefacts.ParseAssumption(s)
		if err != nil {
			return err
		}
		assume = append(assume, facts...)
		return nil
	})
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: arrayflow vet [-lang loop|go] [-format text|json|sarif] [-assume cond] [-fix] [-werror] [-baseline file] [-updatebaseline] [-include-tests] [-workers n] [-nocache] [-cache-dir dir] [-metrics] [-engine packed|reference] [-fuel n] [-cpuprofile file] [-memprofile file] [file|pattern]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "arrayflow vet: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	if *lang != "loop" && *lang != "go" {
		fmt.Fprintf(os.Stderr, "arrayflow vet: unknown -lang %q (want loop or go)\n", *lang)
		os.Exit(2)
	}
	engine := parseEngine(*engineFlag)
	opts := &lint.Options{Parallelism: *workers, DisableCache: *nocache, CacheDir: *cacheDir, Engine: engine, Werror: *werror, Fuel: *fuel, Assume: assume}
	if *baselinePath != "" && !*updateBaseline {
		b, err := lint.ReadBaselineFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arrayflow vet:", err)
			os.Exit(2)
		}
		opts.Baseline = b
	}

	if *lang == "go" {
		runVetGo(fs.Arg(0), opts, *format, *fix, *includeTests, *baselinePath, *updateBaseline, *metrics, *cpuprofile, *memprofile)
		return
	}

	src, file, err := readSource(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow vet:", err)
		os.Exit(2)
	}
	// Profiles start here so they cover the analysis, and are flushed
	// explicitly on every exit path (os.Exit skips defers).
	startProfiles(*cpuprofile, *memprofile)

	var res *lint.VetResult
	if *fix {
		if fs.Arg(0) == "" {
			fmt.Fprintln(os.Stderr, "arrayflow vet: -fix needs a named file to rewrite")
			stopProfiles()
			os.Exit(2)
		}
		out, err := lint.Fix(file, src, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arrayflow vet:", err)
			stopProfiles()
			os.Exit(2)
		}
		if out.Src != src {
			if err := os.WriteFile(file, []byte(out.Src), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "arrayflow vet:", err)
				stopProfiles()
				os.Exit(2)
			}
		}
		if out.Applied > 0 {
			fmt.Fprintf(os.Stderr, "arrayflow vet: applied %d fix(es) in %d round(s)\n", out.Applied, out.Rounds)
		}
		res = out.Result
	} else {
		res = lint.Vet(file, src, opts)
	}

	if *updateBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "arrayflow vet: -updatebaseline needs -baseline file")
			stopProfiles()
			os.Exit(2)
		}
		if res.FrontEndFailed {
			fmt.Fprintln(os.Stderr, "arrayflow vet: refusing to baseline a source that does not analyze")
			stopProfiles()
			os.Exit(2)
		}
		b := lint.NewBaseline(res.Findings)
		if err := b.WriteBaselineFile(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "arrayflow vet:", err)
			stopProfiles()
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "arrayflow vet: wrote %d baseline entrie(s) to %s\n", len(b.Entries), *baselinePath)
		stopProfiles()
		os.Exit(0)
	}

	switch *format {
	case "json":
		err = diag.WriteJSON(os.Stdout, file, res.Findings)
	case "sarif":
		err = diag.WriteSARIF(os.Stdout, file, lint.RuleMetas(), res.Findings)
	default:
		err = diag.WriteText(os.Stdout, file, res.Findings)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow vet:", err)
		stopProfiles()
		os.Exit(2)
	}
	if *metrics && res.Analysis != nil {
		fmt.Fprintln(os.Stderr, "-- analysis metrics --")
		fmt.Fprint(os.Stderr, res.Analysis.Metrics.Report())
	}
	if *cacheDir != "" {
		reportDiskStats("arrayflow vet")
	}
	stopProfiles()
	os.Exit(res.ExitCode())
}

// runVetGo implements `arrayflow vet -lang go`: the pattern (a package
// directory, dir/..., or a single .go file; default ./...) is imported
// through internal/goimport, every lowered loop nest is analyzed with the
// full analyzer set, and findings — including the importer's positioned
// blocker findings — print against the real .go files. The exit contract
// matches the mini-language path; -fix is rejected (suggested fixes splice
// mini-language text, not Go).
func runVetGo(pattern string, opts *lint.Options, format string, fix, includeTests bool, baselinePath string, updateBaseline, metrics bool, cpuprofile, memprofile string) {
	if fix {
		fmt.Fprintln(os.Stderr, "arrayflow vet: -fix is not supported with -lang go")
		os.Exit(2)
	}
	if pattern == "" {
		pattern = "./..."
	}
	startProfiles(cpuprofile, memprofile)
	res, err := goimport.Vet(pattern, includeTests, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow vet:", err)
		stopProfiles()
		os.Exit(2)
	}

	if updateBaseline {
		if baselinePath == "" {
			fmt.Fprintln(os.Stderr, "arrayflow vet: -updatebaseline needs -baseline file")
			stopProfiles()
			os.Exit(2)
		}
		if res.FrontEndFailed {
			fmt.Fprintln(os.Stderr, "arrayflow vet: refusing to baseline a source that does not analyze")
			stopProfiles()
			os.Exit(2)
		}
		b := lint.NewBaseline(res.Findings)
		if err := b.WriteBaselineFile(baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "arrayflow vet:", err)
			stopProfiles()
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "arrayflow vet: wrote %d baseline entrie(s) to %s\n", len(b.Entries), baselinePath)
		stopProfiles()
		os.Exit(0)
	}

	switch format {
	case "json":
		err = diag.WriteJSON(os.Stdout, pattern, res.Findings)
	case "sarif":
		err = diag.WriteSARIF(os.Stdout, pattern, goimport.RuleMetas(), res.Findings)
	default:
		err = diag.WriteText(os.Stdout, pattern, res.Findings)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow vet:", err)
		stopProfiles()
		os.Exit(2)
	}
	if metrics {
		entries, hits, misses := driver.CacheStats()
		fmt.Fprintln(os.Stderr, "-- analysis metrics --")
		fmt.Fprintf(os.Stderr, "  cache: %d entries, hits/misses %d/%d\n", entries, hits, misses)
	}
	if opts.CacheDir != "" {
		reportDiskStats("arrayflow vet")
	}
	stopProfiles()
	os.Exit(res.ExitCode())
}

// loadProgram reads, parses, checks, and normalizes the input. Every
// front-end error is printed with a file:line:col prefix before exiting
// nonzero — not just the first.
func loadProgram(path string) (string, *ast.Program) {
	src, file, err := readSource(path)
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		reportErrors(file, "parse", err)
		os.Exit(1)
	}
	if _, errs := sema.CheckAll(prog); len(errs) > 0 {
		for _, e := range errs {
			reportErrors(file, "check", e)
		}
		os.Exit(1)
	}
	prog, err = sema.Normalize(prog)
	if err != nil {
		reportErrors(file, "normalize", err)
		os.Exit(1)
	}
	return file, prog
}

// reportErrors prints every positioned error inside err as
// "file:line:col: stage: message".
func reportErrors(file, stage string, err error) {
	line := func(pos fmt.Stringer, msg string) {
		fmt.Fprintf(os.Stderr, "%s:%s: %s: %s\n", file, pos, stage, msg)
	}
	var pl parser.ErrorList
	var pe *parser.Error
	var se *sema.Error
	switch {
	case errors.As(err, &pl):
		for _, e := range pl {
			line(e.Pos, e.Msg)
		}
	case errors.As(err, &pe):
		line(pe.Pos, pe.Msg)
	case errors.As(err, &se):
		line(se.Pos, se.Msg)
	default:
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", file, stage, err)
	}
}

// readSource returns the program text and a display name for diagnostics.
func readSource(path string) (src, file string, err error) {
	if path != "" {
		b, err := os.ReadFile(path)
		return string(b), path, err
	}
	st, err := os.Stdin.Stat()
	if err == nil && (st.Mode()&os.ModeCharDevice) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), "<stdin>", err
	}
	fmt.Fprintln(os.Stderr, "(no input: analyzing the paper's Figure 1 loop)")
	return experiments.Fig1Source, "<figure1>", nil
}

func pickLoop(prog *ast.Program, idx int) (*ast.DoLoop, error) {
	var loops []*ast.DoLoop
	for _, s := range prog.Body {
		if dl, ok := s.(*ast.DoLoop); ok {
			loops = append(loops, dl)
		}
	}
	if len(loops) == 0 {
		return nil, fmt.Errorf("program contains no loop")
	}
	if idx < 0 || idx >= len(loops) {
		return nil, fmt.Errorf("loop index %d out of range (have %d)", idx, len(loops))
	}
	return loops[idx], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arrayflow:", err)
	stopProfiles()
	os.Exit(1)
}
