// Command arrayflow parses a loop program and runs one of the four data
// flow analyses, printing the loop flow graph, the IN/OUT tuple tables in
// the style of the paper's Table 1, and the derived facts (reuses,
// redundant stores, or dependences).
//
// Usage:
//
//	arrayflow [-analysis reach|avail|busy|deps] [-trace] [-metrics] [-loop n] [file]
//
// With no file the program is read from stdin. With no file and no piped
// input, the paper's Figure 1 loop is analyzed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/problems"
	"repro/internal/sema"
)

func main() {
	analysis := flag.String("analysis", "reach",
		"analysis to run: reach (must-reaching defs), avail (δ-available), busy (δ-busy stores), deps (δ-reaching refs)")
	trace := flag.Bool("trace", false, "print initialization and per-pass tuple tables (Table 1 style)")
	metrics := flag.Bool("metrics", false, "print solver metrics: passes, node visits, flow applications, cache hits, wall time")
	loopIdx := flag.Int("loop", 0, "index of the top-level loop to analyze")
	whole := flag.Bool("program", false, "run the whole-program hierarchical analysis (§3.2) instead of a single loop")
	workers := flag.Int("workers", 0, "worker goroutines for -program (0 = GOMAXPROCS, 1 = serial)")
	nocache := flag.Bool("nocache", false, "disable the memoizing solve cache for -program")
	flag.Parse()

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	prog, err := parser.Parse(src)
	if err != nil {
		fatal(fmt.Errorf("parse: %w", err))
	}
	if _, err := sema.Check(prog); err != nil {
		fatal(fmt.Errorf("check: %w", err))
	}
	prog, err = sema.Normalize(prog)
	if err != nil {
		fatal(fmt.Errorf("normalize: %w", err))
	}

	if *whole {
		pa, err := driver.Analyze(prog, &driver.Options{
			NestVectors: true, Parallelism: *workers, DisableCache: *nocache})
		if err != nil {
			fatal(err)
		}
		fmt.Print(pa.Report())
		if *metrics {
			fmt.Println("-- solver metrics --")
			fmt.Print(pa.Metrics.Report())
		}
		return
	}

	loop, err := pickLoop(prog, *loopIdx)
	if err != nil {
		fatal(err)
	}
	g, err := ir.Build(loop, nil)
	if err != nil {
		fatal(fmt.Errorf("graph: %w", err))
	}

	var spec *dataflow.Spec
	switch *analysis {
	case "reach":
		spec = problems.MustReachingDefs()
	case "avail":
		spec = problems.AvailableValues()
	case "busy":
		spec = problems.BusyStores()
	case "deps":
		spec = problems.ReachingRefs()
	default:
		fatal(fmt.Errorf("unknown analysis %q", *analysis))
	}

	res := dataflow.Solve(g, spec, &dataflow.Options{CollectTrace: *trace})

	fmt.Println(g.Dump())
	if *trace {
		fmt.Println("-- initialization pass --")
		fmt.Println(res.TupleTable(0))
		for p := 1; p <= len(res.Trace); p++ {
			fmt.Printf("-- iteration pass %d --\n", p)
			fmt.Println(res.TupleTable(p))
		}
	}
	fmt.Printf("-- fixed point (%s, %d changing passes) --\n", spec.Name, res.ChangedPasses)
	fmt.Println(res.TupleTable(-1))
	if *metrics {
		m := res.Metrics()
		fmt.Printf("-- solver metrics --\n")
		fmt.Printf("  nodes %d, classes %d, passes %d (%d changing), node visits %d, flow applications %d, wall %s\n",
			m.Nodes, m.Classes, m.Passes, m.ChangedPasses, m.NodeVisits, m.FlowApps, m.Elapsed)
	}

	switch *analysis {
	case "reach", "avail":
		fmt.Println("-- guaranteed reuses --")
		for _, r := range problems.FindReuses(res) {
			fmt.Println("  " + r.String())
		}
	case "busy":
		fmt.Println("-- redundant stores --")
		for _, r := range problems.FindRedundantStores(res) {
			fmt.Println("  " + r.String())
		}
	case "deps":
		fmt.Println("-- dependences (distance ≤ 8) --")
		for _, d := range problems.FindDependences(res, 8) {
			fmt.Println("  " + d.String())
		}
	}
}

func readSource(path string) (string, error) {
	if path != "" {
		b, err := os.ReadFile(path)
		return string(b), err
	}
	st, err := os.Stdin.Stat()
	if err == nil && (st.Mode()&os.ModeCharDevice) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	fmt.Fprintln(os.Stderr, "(no input: analyzing the paper's Figure 1 loop)")
	return experiments.Fig1Source, nil
}

func pickLoop(prog *ast.Program, idx int) (*ast.DoLoop, error) {
	var loops []*ast.DoLoop
	for _, s := range prog.Body {
		if dl, ok := s.(*ast.DoLoop); ok {
			loops = append(loops, dl)
		}
	}
	if len(loops) == 0 {
		return nil, fmt.Errorf("program contains no loop")
	}
	if idx < 0 || idx >= len(loops) {
		return nil, fmt.Errorf("loop index %d out of range (have %d)", idx, len(loops))
	}
	return loops[idx], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arrayflow:", err)
	os.Exit(1)
}
