package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

// runServe implements the `arrayflow serve` subcommand: a long-lived
// HTTP/JSON analysis daemon over the shared interner, sharded memo cache,
// and pooled solver arenas (internal/service; wire reference in
// docs/API.md, runbook in docs/OPERATIONS.md).
//
// Exit status: 0 after a graceful drain (SIGTERM/SIGINT received, listener
// closed, in-flight requests completed), 1 when the listener cannot be
// opened or the server fails, 2 on usage errors.
func runServe(args []string) {
	fs := flag.NewFlagSet("arrayflow serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address (host:port; :0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent analysis requests (0 = GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 256, "requests allowed to wait for a worker before 429 (negative = no waiting)")
	deadline := fs.Duration("deadline", 10*time.Second, "per-request deadline, queueing included")
	cacheCap := fs.Int("cache-cap", 0, "memo cache capacity in entries (0 = keep default 4096, negative = unlimited)")
	maxBody := fs.Int64("max-body", 1<<20, "request body cap in bytes (larger bodies get 413)")
	nocache := fs.Bool("nocache", false, "disable the memoizing solve cache")
	cacheDir := fs.String("cache-dir", "", "persistent solve cache directory: a restarted daemon warm-starts from it at memo-hit speed (empty = memory-only)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	engineFlag := fs.String("engine", "packed", "solver engine: packed or reference (ablation baseline)")
	fuel := fs.Int64("fuel", 0, "per-solve fuel budget in flow-application units (0 = derived default; exhausted solves degrade to claim-nothing facts instead of blowing the deadline)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: arrayflow serve [-addr host:port] [-workers n] [-max-queue n] [-deadline d] [-cache-cap n] [-max-body n] [-nocache] [-cache-dir dir] [-drain-timeout d] [-engine packed|reference] [-fuel n]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}
	engine := parseEngine(*engineFlag)

	srv := service.New(&service.Options{
		Workers:      *workers,
		MaxQueue:     *maxQueue,
		Deadline:     *deadline,
		MaxBody:      *maxBody,
		CacheCap:     *cacheCap,
		DisableCache: *nocache,
		CacheDir:     *cacheDir,
		Engine:       engine,
		Fuel:         *fuel,
	})
	hs := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow serve:", err)
		os.Exit(1)
	}
	// The resolved address goes to stderr so scripts using :0 can scrape
	// the port without parsing stdout.
	fmt.Fprintf(os.Stderr, "arrayflow serve: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "arrayflow serve: %s received, draining\n", got)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "arrayflow serve:", err)
		os.Exit(1)
	}

	// Graceful drain: refuse new work on still-open keep-alive connections
	// (503 + Connection: close), stop the listener, and wait for in-flight
	// requests up to the drain timeout.
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "arrayflow serve: drain:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "arrayflow serve: drained, exiting")
}
