// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping benchmark name → {ns_per_op, b_per_op, allocs_per_op}.
// It reads the benchmark output on stdin and writes JSON to stdout (or to
// the file named by -o). scripts/bench.sh uses it to record the repo's
// perf trajectory snapshots (BENCH_PR3.json).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Row is the recorded measurement of one benchmark.
type Row struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// cpuSuffix strips the trailing GOMAXPROCS marker (e.g. "-8") go test
// appends to benchmark names, so keys stay stable across machines.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rows := map[string]Row{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then "value unit" pairs.
		if len(fields) < 4 {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		row := rows[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				row.NsPerOp = v
			case "B/op":
				row.BytesPerOp = v
			case "allocs/op":
				row.AllocsPerOp = v
			}
		}
		rows[name] = row
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// Deterministic rendering: sorted keys, stable indentation.
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(rows[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "  %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.WriteString(b.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
