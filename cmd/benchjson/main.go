// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping benchmark name → {ns_per_op, b_per_op, allocs_per_op}.
// It reads the benchmark output on stdin (or a prior JSON snapshot named as
// the sole positional argument) and writes JSON to stdout (or to the file
// named by -o). scripts/bench.sh uses it to record the repo's perf
// trajectory snapshots (BENCH_PR3.json, BENCH_PR4.json).
//
// With -diff BASELINE.json it additionally compares the new measurements
// against the baseline snapshot and exits 1 if any benchmark present in
// both regressed by more than -tol percent ns/op (default 10). Benchmarks
// only one side knows about are reported but never fail the run.
//
// With -gate BASELINE.json:PATTERN:FACTOR (repeatable) it enforces a hard
// per-benchmark ceiling: every baseline benchmark whose name matches the
// regexp PATTERN must be present in the new measurements at no more than
// FACTOR × its baseline ns/op. Unlike -diff, a gated benchmark that is
// missing from the new run fails the gate — a gate names benchmarks that
// must exist. scripts/bench.sh uses it to hold the packed-engine
// ScalingLinear points to within 1.25× of BENCH_PR4.json.
//
// With -ratio NUM:DEN:FACTOR (repeatable) it enforces a relationship inside
// the new snapshot itself: benchmark NUM (exact name) must run at no more
// than FACTOR × benchmark DEN's ns/op, and both must exist. scripts/bench.sh
// uses it to hold disk-warm whole-program analysis to ≤ 0.5× the cold run.
//
// With -corpus REPORT.json it merges a cmd/corpus self-analysis report into
// the snapshot as pseudo-rows (value carried in the ns_per_op slot):
// CorpusVerdicts/{parallel,racy,unknown} carry the per-verdict unit counts,
// CorpusVerdicts/provablyClassified the percentage of verdict-bearing units
// classified provably (parallel or racy), and CorpusDifferential/mismatch
// the differential-execution mismatch count. -floor NAME:MIN and
// -ceiling NAME:MAX (repeatable) then gate those rows: the named row must
// exist with value ≥ MIN (floor) or ≤ MAX (ceiling). scripts/bench.sh uses
// the trio to record the symbolic-bound sweep into BENCH_PR10.json and hold
// the provably-classified fraction at its floor with zero mismatches.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Row is the recorded measurement of one benchmark.
type Row struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// cpuSuffix strips the trailing GOMAXPROCS marker (e.g. "-8") go test
// appends to benchmark names, so keys stay stable across machines.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// gateSpec is one parsed -gate flag: every baseline benchmark matching
// pattern must appear in the current run at ≤ factor × baseline ns/op.
type gateSpec struct {
	baseline string
	pattern  *regexp.Regexp
	factor   float64
}

// ratioSpec is one parsed -ratio flag: within the current snapshot, the NUM
// benchmark's ns/op must be ≤ factor × the DEN benchmark's ns/op. Unlike
// -gate it needs no baseline file, so it can assert relationships the run
// itself must exhibit (disk-warm analysis ≤ 0.5× cold).
type ratioSpec struct {
	num, den string
	factor   float64
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	diff := flag.String("diff", "", "baseline JSON snapshot to compare against")
	tol := flag.Float64("tol", 10, "ns/op regression tolerance in percent for -diff")
	var gates []gateSpec
	flag.Func("gate", "repeatable BASELINE.json:PATTERN:FACTOR — fail unless every baseline benchmark matching PATTERN is measured at ≤ FACTOR × its baseline ns/op", func(s string) error {
		parts := strings.SplitN(s, ":", 3)
		if len(parts) != 3 {
			return fmt.Errorf("want BASELINE.json:PATTERN:FACTOR, got %q", s)
		}
		re, err := regexp.Compile(parts[1])
		if err != nil {
			return fmt.Errorf("pattern %q: %v", parts[1], err)
		}
		factor, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || factor <= 0 {
			return fmt.Errorf("factor %q: want a positive number", parts[2])
		}
		gates = append(gates, gateSpec{baseline: parts[0], pattern: re, factor: factor})
		return nil
	})
	corpus := flag.String("corpus", "", "cmd/corpus report JSON to merge as CorpusVerdicts/CorpusDifferential pseudo-rows")
	var bounds []boundSpec
	flag.Func("floor", "repeatable NAME:MIN — fail unless row NAME exists with value ≥ MIN", func(s string) error {
		b, err := parseBound(s, true)
		if err != nil {
			return err
		}
		bounds = append(bounds, b)
		return nil
	})
	flag.Func("ceiling", "repeatable NAME:MAX — fail unless row NAME exists with value ≤ MAX", func(s string) error {
		b, err := parseBound(s, false)
		if err != nil {
			return err
		}
		bounds = append(bounds, b)
		return nil
	})
	var ratios []ratioSpec
	flag.Func("ratio", "repeatable NUM:DEN:FACTOR — fail unless benchmark NUM runs at ≤ FACTOR × benchmark DEN within this snapshot (exact names, no baseline file)", func(s string) error {
		parts := strings.SplitN(s, ":", 3)
		if len(parts) != 3 {
			return fmt.Errorf("want NUM:DEN:FACTOR, got %q", s)
		}
		factor, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || factor <= 0 {
			return fmt.Errorf("factor %q: want a positive number", parts[2])
		}
		ratios = append(ratios, ratioSpec{num: parts[0], den: parts[1], factor: factor})
		return nil
	})
	flag.Parse()

	var rows map[string]Row
	var err error
	switch flag.NArg() {
	case 0:
		rows, err = parseBenchOutput(os.Stdin)
	case 1:
		rows, err = loadSnapshot(flag.Arg(0))
	default:
		err = fmt.Errorf("at most one input snapshot, got %d args", flag.NArg())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *corpus != "" {
		if err := mergeCorpus(*corpus, rows); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark rows in input")
		os.Exit(1)
	}

	// Deterministic rendering: sorted keys, stable indentation.
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(rows[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "  %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.WriteString(b.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	exit := 0
	if *diff != "" {
		base, err := loadSnapshot(*diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !compare(base, rows, *tol) {
			exit = 1
		}
	}
	for _, g := range gates {
		base, err := loadSnapshot(g.baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !gate(g, base, rows) {
			exit = 1
		}
	}
	for _, r := range ratios {
		if !ratio(r, rows) {
			exit = 1
		}
	}
	for _, b := range bounds {
		if !bound(b, rows) {
			exit = 1
		}
	}
	os.Exit(exit)
}

// boundSpec is one parsed -floor/-ceiling flag: the named row must exist
// with its value on the right side of the limit.
type boundSpec struct {
	name  string
	limit float64
	// floor true means value ≥ limit must hold; false means value ≤ limit.
	floor bool
}

func parseBound(s string, floor bool) (boundSpec, error) {
	i := strings.LastIndex(s, ":")
	if i < 1 || i == len(s)-1 {
		return boundSpec{}, fmt.Errorf("want NAME:LIMIT, got %q", s)
	}
	limit, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil {
		return boundSpec{}, fmt.Errorf("limit %q: %v", s[i+1:], err)
	}
	return boundSpec{name: s[:i], limit: limit, floor: floor}, nil
}

// bound enforces one -floor/-ceiling spec. A missing row fails: a bound
// names a measurement that must exist.
func bound(b boundSpec, cur map[string]Row) bool {
	kind, cmp := "FLOOR", "≥"
	if !b.floor {
		kind, cmp = "CEILING", "≤"
	}
	row, ok := cur[b.name]
	switch {
	case !ok:
		fmt.Fprintf(os.Stderr, "  %s MISSING %s (not measured)\n", kind, b.name)
	case b.floor && row.NsPerOp < b.limit, !b.floor && row.NsPerOp > b.limit:
		fmt.Fprintf(os.Stderr, "  %s FAILED  %s: %.2f violates %s %.2f\n", kind, b.name, row.NsPerOp, cmp, b.limit)
	default:
		fmt.Fprintf(os.Stderr, "  %s ok      %s: %.2f %s %.2f\n", strings.ToLower(kind), b.name, row.NsPerOp, cmp, b.limit)
		return true
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s %s:%.2f failed\n", strings.ToLower(kind), b.name, b.limit)
	return false
}

// mergeCorpus folds a cmd/corpus report into the snapshot as pseudo-rows,
// carrying each value in the ns_per_op slot: per-verdict unit counts, the
// provably-classified percentage, and the differential mismatch count.
func mergeCorpus(path string, rows map[string]Row) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		Verdicts     map[string]int `json:"verdicts"`
		Differential struct {
			Mismatch int `json:"mismatch"`
		} `json:"differential"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	total := 0
	for v, n := range rep.Verdicts {
		rows["CorpusVerdicts/"+v] = Row{NsPerOp: float64(n)}
		total += n
	}
	if total > 0 {
		proved := rep.Verdicts["parallel"] + rep.Verdicts["racy"]
		rows["CorpusVerdicts/provablyClassified"] = Row{NsPerOp: 100 * float64(proved) / float64(total)}
	}
	rows["CorpusDifferential/mismatch"] = Row{NsPerOp: float64(rep.Differential.Mismatch)}
	return nil
}

// ratio enforces one -ratio spec against the current snapshot. Either
// benchmark missing fails: a ratio names measurements that must exist.
func ratio(r ratioSpec, cur map[string]Row) bool {
	num, okN := cur[r.num]
	den, okD := cur[r.den]
	switch {
	case !okN || !okD:
		for name, ok := range map[string]bool{r.num: okN, r.den: okD} {
			if !ok {
				fmt.Fprintf(os.Stderr, "  RATIO MISSING %s (not measured)\n", name)
			}
		}
	case den.NsPerOp <= 0:
		fmt.Fprintf(os.Stderr, "  RATIO FAILED  %s: denominator measured at %.0f ns/op\n", r.den, den.NsPerOp)
	case num.NsPerOp > den.NsPerOp*r.factor:
		fmt.Fprintf(os.Stderr, "  RATIO FAILED  %s: %.0f ns/op exceeds %.2fx %s (%.0f ns/op, limit %.0f)\n",
			r.num, num.NsPerOp, r.factor, r.den, den.NsPerOp, den.NsPerOp*r.factor)
	default:
		fmt.Fprintf(os.Stderr, "  ratio ok      %s: %.0f ns/op ≤ %.2fx %s (%.0f ns/op)\n",
			r.num, num.NsPerOp, r.factor, r.den, den.NsPerOp)
		return true
	}
	fmt.Fprintf(os.Stderr, "benchjson: ratio %s:%s:%.2f failed\n", r.num, r.den, r.factor)
	return false
}

// gate enforces one -gate spec: every baseline benchmark matching the
// pattern must be measured at ≤ factor × its baseline ns/op. A matching
// benchmark missing from the current run fails, as does a pattern that
// matches nothing in the baseline (a misspelled gate must not pass
// silently).
func gate(g gateSpec, base, cur map[string]Row) bool {
	names := make([]string, 0, len(base))
	for n := range base {
		if g.pattern.MatchString(n) {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate %s: pattern %q matches no baseline benchmark\n",
			g.baseline, g.pattern)
		return false
	}
	sort.Strings(names)
	ok := true
	for _, n := range names {
		b := base[n]
		c, shared := cur[n]
		limit := b.NsPerOp * g.factor
		switch {
		case !shared:
			fmt.Fprintf(os.Stderr, "  GATE MISSING %s (baseline %.0f ns/op, not measured)\n", n, b.NsPerOp)
			ok = false
		case c.NsPerOp > limit:
			fmt.Fprintf(os.Stderr, "  GATE FAILED  %s: %.0f ns/op exceeds %.2fx baseline %.0f (limit %.0f)\n",
				n, c.NsPerOp, g.factor, b.NsPerOp, limit)
			ok = false
		default:
			fmt.Fprintf(os.Stderr, "  gate ok      %s: %.0f ns/op ≤ %.2fx baseline %.0f\n",
				n, c.NsPerOp, g.factor, b.NsPerOp)
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: gate against %s failed (factor %.2f)\n", g.baseline, g.factor)
	}
	return ok
}

// parseBenchOutput scans `go test -bench` text and collects one Row per
// benchmark name (GOMAXPROCS suffix stripped).
func parseBenchOutput(r io.Reader) (map[string]Row, error) {
	rows := map[string]Row{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then "value unit" pairs.
		if len(fields) < 4 {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		row := rows[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				row.NsPerOp = v
			case "B/op":
				row.BytesPerOp = v
			case "allocs/op":
				row.AllocsPerOp = v
			}
		}
		rows[name] = row
	}
	return rows, sc.Err()
}

// loadSnapshot reads a JSON document previously written by this tool.
func loadSnapshot(path string) (map[string]Row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rows := map[string]Row{}
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rows, nil
}

// compare reports each benchmark shared between baseline and current on
// stderr and returns false if any regressed by more than tol percent
// ns/op. Benchmarks present in only one snapshot are listed but cannot
// fail the comparison: new benchmarks have no baseline, and retired ones
// have no measurement.
func compare(base, cur map[string]Row, tol float64) bool {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	ok := true
	for _, n := range names {
		b := base[n]
		c, shared := cur[n]
		if !shared {
			fmt.Fprintf(os.Stderr, "  gone     %s (baseline %.0f ns/op)\n", n, b.NsPerOp)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		verdict := "ok"
		if delta > tol {
			verdict = "REGRESSED"
			ok = false
		}
		fmt.Fprintf(os.Stderr, "  %-9s %s: %.0f -> %.0f ns/op (%+.1f%%)\n", verdict, n, b.NsPerOp, c.NsPerOp, delta)
	}
	newNames := make([]string, 0, 4)
	for n := range cur {
		if _, inBase := base[n]; !inBase {
			newNames = append(newNames, n)
		}
	}
	sort.Strings(newNames)
	for _, n := range newNames {
		fmt.Fprintf(os.Stderr, "  new      %s (%.0f ns/op)\n", n, cur[n].NsPerOp)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %.0f%% tolerance\n", tol)
	}
	return ok
}
