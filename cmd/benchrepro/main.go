// Command benchrepro regenerates every table and figure of the paper in
// one run, printing the per-experiment reports indexed in DESIGN.md and
// summarized in EXPERIMENTS.md.
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	rep, err := experiments.FullReport()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrepro:", err)
		os.Exit(1)
	}
	fmt.Print(rep)
}
