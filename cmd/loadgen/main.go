// Command loadgen replays concurrent mixed analyze/vet/batch traffic
// against a running `arrayflow serve` and records latency quantiles and
// throughput as JSON — the service-layer counterpart of scripts/bench.sh's
// solver benchmarks, and the regression gate for BENCH_PR6.json.
//
//	loadgen -url http://127.0.0.1:8377 [-concurrency n] [-duration d]
//	        [-corpus dir] [-synth n] [-mix analyze:vet:batch]
//	        [-out BENCH_PR6.json] [-baseline BENCH_PR6.json] [-maxregress f]
//
// Each worker loops until the duration elapses: it draws a request kind
// from the mix and a program from the corpus (examples/*.loop plus
// synth.MultiLoopProgram renderings), sends it, and records the latency.
// Responses with status 200 or 422 count as completed (422 is the
// analyzable-failure contract: the service answered); 429 counts as
// rejected — the overload posture working as designed, reported but never
// a failure; anything else (5xx, transport errors) is a failure and fails
// the run.
//
// With -baseline, the snapshot is diffed against a previous one: the run
// fails when p99 latency grew beyond maxregress× the baseline or
// throughput fell below 1/maxregress of it. Latency gates are looser than
// the solver's 10% ns/op gate because wall-clock service latency is noisy
// across machines; tighten -maxregress on dedicated hardware.
//
// With -cache-dir, loadgen instead runs the warm-restart scenario against
// an embedded in-process server (no -url): a cold phase against an empty
// persistent cache, then driver.ResetCache() to drop the in-memory memo
// exactly as a redeploy would, then a warm phase replaying the same
// request stream against the now-populated disk cache. The run fails
// unless the warm phase actually hit disk (the counter delta comes from
// /v1/stats), and -bench-rows merges the two phases' p50/p99 into a
// benchjson snapshot as ServeWarmRestart/{cold,warm}/{p50,p99} pseudo-rows
// so the perf trajectory records service-level warm-start behaviour next
// to the solver benchmarks. -duration applies per phase.
//
// Exit status: 0 on success, 1 on request failures or a regression, 2 on
// usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/driver"
	"repro/internal/service"
	"repro/internal/synth"
)

// program is one corpus entry.
type program struct {
	name string
	src  string
}

// result is one worker's tally.
type result struct {
	latencies []time.Duration
	completed int64
	rejected  int64
	failed    int64
	frontEnd  int64
	byKind    [3]int64
}

// request kinds, indexed by the mix draw.
const (
	kindAnalyze = iota
	kindVet
	kindBatch
)

// snapshot is the JSON document written to -out and read by -baseline.
type snapshot struct {
	Loadgen struct {
		URL         string  `json:"url"`
		Concurrency int     `json:"concurrency"`
		DurationS   float64 `json:"duration_s"`
		Corpus      int     `json:"corpus_programs"`

		Requests   int64   `json:"requests"`
		Completed  int64   `json:"completed"`
		Rejected   int64   `json:"rejected_429"`
		Failed     int64   `json:"failed"`
		FrontEnd   int64   `json:"front_end_422"`
		Throughput float64 `json:"throughput_rps"`

		Mix struct {
			Analyze int64 `json:"analyze"`
			Vet     int64 `json:"vet"`
			Batch   int64 `json:"batch"`
		} `json:"mix"`

		LatencyMS struct {
			P50 float64 `json:"p50"`
			P90 float64 `json:"p90"`
			P99 float64 `json:"p99"`
			Max float64 `json:"max"`
		} `json:"latency_ms"`
	} `json:"loadgen"`
}

func main() {
	urlFlag := flag.String("url", "", "base URL of a running arrayflow serve (required)")
	concurrency := flag.Int("concurrency", 64, "concurrent request workers")
	duration := flag.Duration("duration", 10*time.Second, "how long to send traffic")
	corpusDir := flag.String("corpus", "examples", "directory of .loop programs to replay")
	synthN := flag.Int("synth", 8, "synthetic multi-loop programs to add to the corpus")
	mixFlag := flag.String("mix", "5:3:2", "request mix weights analyze:vet:batch")
	out := flag.String("out", "", "write the JSON snapshot to this file")
	baseline := flag.String("baseline", "", "diff the snapshot against this previous one")
	maxRegress := flag.Float64("maxregress", 2.0, "fail when p99 exceeds (or throughput falls below 1/) this factor vs the baseline")
	cacheDir := flag.String("cache-dir", "", "run the embedded warm-restart scenario against this persistent cache dir instead of a remote server")
	benchRows := flag.String("bench-rows", "", "with -cache-dir: merge ServeWarmRestart pseudo-rows into this benchjson snapshot")
	flag.Parse()
	if *urlFlag == "" && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url is required (or -cache-dir for the embedded warm-restart mode)")
		flag.Usage()
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	corpus, err := loadCorpus(*corpusDir, *synthN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	if len(corpus) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: empty corpus")
		os.Exit(2)
	}
	if *cacheDir != "" {
		os.Exit(warmRestart(*cacheDir, *benchRows, *concurrency, *duration, corpus, mix))
	}

	client := service.NewClient(*urlFlag)
	ctx := context.Background()
	if err := client.WaitReady(ctx, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "loadgen: %d workers, %s, %d corpus programs, mix %s against %s\n",
		*concurrency, *duration, len(corpus), *mixFlag, *urlFlag)
	results := make([]result, *concurrency)
	start := time.Now()
	stop := start.Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(ctx, client, corpus, mix, stop, int64(w), &results[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := summarize(*urlFlag, *concurrency, elapsed, len(corpus), results)
	report(os.Stderr, &snap)
	if *out != "" {
		raw, _ := json.MarshalIndent(&snap, "", "  ")
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *out)
	}

	exit := 0
	if snap.Loadgen.Failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d request failures\n", snap.Loadgen.Failed)
		exit = 1
	}
	if snap.Loadgen.Completed == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL: no request completed")
		exit = 1
	}
	if *baseline != "" {
		if err := diffBaseline(&snap, *baseline, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: FAIL:", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// worker sends requests until the stop time, recording into res. The mix
// and corpus draws come from a per-worker seeded generator so the overall
// request distribution is reproducible run to run.
func worker(ctx context.Context, client *service.Client, corpus []program, mix [3]int, stop time.Time, seed int64, res *result) {
	rng := rand.New(rand.NewSource(1_000_003*seed + 17))
	total := mix[0] + mix[1] + mix[2]
	for time.Now().Before(stop) {
		kind := kindAnalyze
		switch d := rng.Intn(total); {
		case d < mix[0]:
			kind = kindAnalyze
		case d < mix[0]+mix[1]:
			kind = kindVet
		default:
			kind = kindBatch
		}
		res.byKind[kind]++
		p := corpus[rng.Intn(len(corpus))]
		t0 := time.Now()
		var err error
		switch kind {
		case kindAnalyze:
			_, err = client.Analyze(ctx, p.name, p.src)
		case kindVet:
			format := [...]string{"text", "json", "sarif"}[rng.Intn(3)]
			_, err = client.Vet(ctx, p.name, p.src, format, false)
		case kindBatch:
			req := &service.BatchRequest{}
			for n := 2 + rng.Intn(4); n > 0; n-- {
				q := corpus[rng.Intn(len(corpus))]
				req.Programs = append(req.Programs, service.BatchProgram{Name: q.name, Src: q.src})
			}
			_, err = client.Batch(ctx, req)
		}
		lat := time.Since(t0)
		switch se := err.(type) {
		case nil:
			res.completed++
			res.latencies = append(res.latencies, lat)
		case *service.StatusError:
			switch se.Status {
			case 422:
				// The service analyzed and answered: an intentionally
				// invalid corpus program, not a service failure.
				res.completed++
				res.frontEnd++
				res.latencies = append(res.latencies, lat)
			case 429:
				res.rejected++
				if se.RetryAfter > 0 {
					// Back off a fraction of the hint so the run keeps
					// pressure on without hammering a refusing server.
					time.Sleep(time.Duration(se.RetryAfter) * time.Millisecond * 10)
				}
			default:
				res.failed++
			}
		default:
			res.failed++
		}
	}
}

// summarize folds the per-worker results into the JSON snapshot.
func summarize(url string, concurrency int, elapsed time.Duration, corpus int, results []result) snapshot {
	var snap snapshot
	l := &snap.Loadgen
	l.URL = url
	l.Concurrency = concurrency
	l.DurationS = elapsed.Seconds()
	l.Corpus = corpus
	var all []time.Duration
	for i := range results {
		r := &results[i]
		l.Completed += r.completed
		l.Rejected += r.rejected
		l.Failed += r.failed
		l.FrontEnd += r.frontEnd
		l.Mix.Analyze += r.byKind[kindAnalyze]
		l.Mix.Vet += r.byKind[kindVet]
		l.Mix.Batch += r.byKind[kindBatch]
		all = append(all, r.latencies...)
	}
	l.Requests = l.Completed + l.Rejected + l.Failed
	if elapsed > 0 {
		l.Throughput = float64(l.Completed) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i].Microseconds()) / 1000.0
	}
	l.LatencyMS.P50 = q(0.50)
	l.LatencyMS.P90 = q(0.90)
	l.LatencyMS.P99 = q(0.99)
	if len(all) > 0 {
		l.LatencyMS.Max = float64(all[len(all)-1].Microseconds()) / 1000.0
	}
	return snap
}

// report prints the human-readable summary.
func report(w *os.File, snap *snapshot) {
	l := &snap.Loadgen
	fmt.Fprintf(w, "loadgen: %d requests in %.1fs — %.0f req/s, %d completed (%d front-end 422), %d rejected (429), %d failed\n",
		l.Requests, l.DurationS, l.Throughput, l.Completed, l.FrontEnd, l.Rejected, l.Failed)
	fmt.Fprintf(w, "loadgen: latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f; mix analyze/vet/batch %d/%d/%d\n",
		l.LatencyMS.P50, l.LatencyMS.P90, l.LatencyMS.P99, l.LatencyMS.Max,
		l.Mix.Analyze, l.Mix.Vet, l.Mix.Batch)
}

// diffBaseline compares the snapshot against a previous one under the
// regression factor.
func diffBaseline(snap *snapshot, path string, factor float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	b, l := &base.Loadgen, &snap.Loadgen
	fmt.Fprintf(os.Stderr, "loadgen: baseline %s: p99 %.2fms -> %.2fms, throughput %.0f -> %.0f req/s\n",
		path, b.LatencyMS.P99, l.LatencyMS.P99, b.Throughput, l.Throughput)
	if b.LatencyMS.P99 > 0 && l.LatencyMS.P99 > factor*b.LatencyMS.P99 {
		return fmt.Errorf("p99 latency regressed %.2fms -> %.2fms (limit %.1fx)",
			b.LatencyMS.P99, l.LatencyMS.P99, factor)
	}
	if b.Throughput > 0 && l.Throughput < b.Throughput/factor {
		return fmt.Errorf("throughput regressed %.0f -> %.0f req/s (limit 1/%.1fx)",
			b.Throughput, l.Throughput, factor)
	}
	return nil
}

// parseMix parses "a:v:b" integer weights.
func parseMix(s string) ([3]int, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("bad -mix %q (want analyze:vet:batch weights)", s)
	}
	var mix [3]int
	sum := 0
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return mix, fmt.Errorf("bad -mix weight %q", p)
		}
		mix[i] = n
		sum += n
	}
	if sum == 0 {
		return mix, fmt.Errorf("-mix weights sum to zero")
	}
	return mix, nil
}

// warmRestart runs the embedded warm-restart scenario: cold phase against
// an empty (or pre-seeded) persistent cache, an in-process "redeploy" that
// drops the memory memo, then a warm phase that must be answered from disk.
// Returns the process exit code.
func warmRestart(cacheDir, benchRows string, concurrency int, duration time.Duration, corpus []program, mix [3]int) int {
	srv := service.New(&service.Options{CacheDir: cacheDir})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String()
	client := service.NewClient(url)
	ctx := context.Background()
	if err := client.WaitReady(ctx, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}

	// Each phase replays the identical seeded request stream, so the only
	// difference between them is where the answers come from.
	phase := func(name string) snapshot {
		fmt.Fprintf(os.Stderr, "loadgen: warm-restart %s phase: %d workers, %s, %d corpus programs, cache %s\n",
			name, concurrency, duration, len(corpus), cacheDir)
		results := make([]result, concurrency)
		start := time.Now()
		stop := start.Add(duration)
		var wg sync.WaitGroup
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker(ctx, client, corpus, mix, stop, int64(w), &results[w])
			}(w)
		}
		wg.Wait()
		snap := summarize(url, concurrency, time.Since(start), len(corpus), results)
		report(os.Stderr, &snap)
		return snap
	}
	diskHits := func() int64 {
		st, err := client.Stats(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return -1
		}
		return st.DiskCache.Hits
	}

	cold := phase("cold")
	hitsAfterCold := diskHits()
	// The redeploy: the process keeps running but every in-memory memo
	// entry is gone, exactly what a restarted daemon faces.
	driver.ResetCache()
	warm := phase("warm")
	hitsAfterWarm := diskHits()

	exit := 0
	for _, p := range []struct {
		name string
		snap *snapshot
	}{{"cold", &cold}, {"warm", &warm}} {
		if p.snap.Loadgen.Failed > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d request failures in %s phase\n", p.snap.Loadgen.Failed, p.name)
			exit = 1
		}
		if p.snap.Loadgen.Completed == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: no request completed in %s phase\n", p.name)
			exit = 1
		}
	}
	if hitsAfterCold < 0 || hitsAfterWarm < 0 {
		exit = 1
	} else if delta := hitsAfterWarm - hitsAfterCold; delta == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL: warm phase never hit the persistent cache (disk hit delta 0)")
		exit = 1
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: warm restart: disk hits +%d; p50 %.2f -> %.2f ms, p99 %.2f -> %.2f ms\n",
			delta, cold.Loadgen.LatencyMS.P50, warm.Loadgen.LatencyMS.P50,
			cold.Loadgen.LatencyMS.P99, warm.Loadgen.LatencyMS.P99)
	}
	if benchRows != "" {
		rows := map[string]float64{
			"ServeWarmRestart/cold/p50": cold.Loadgen.LatencyMS.P50 * 1e6,
			"ServeWarmRestart/cold/p99": cold.Loadgen.LatencyMS.P99 * 1e6,
			"ServeWarmRestart/warm/p50": warm.Loadgen.LatencyMS.P50 * 1e6,
			"ServeWarmRestart/warm/p99": warm.Loadgen.LatencyMS.P99 * 1e6,
		}
		if err := mergeBenchRows(benchRows, rows); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			exit = 1
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: merged warm-restart rows into %s\n", benchRows)
		}
	}
	return exit
}

// mergeBenchRows inserts ns/op pseudo-rows into a benchjson snapshot,
// preserving every existing row and benchjson's deterministic rendering
// (sorted keys, one row per line) so the snapshot stays diff-friendly.
func mergeBenchRows(path string, add map[string]float64) error {
	type row struct {
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  float64 `json:"b_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	}
	rows := map[string]row{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rows); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for name, ns := range add {
		rows[name] = row{NsPerOp: ns}
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(rows[n])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// loadCorpus reads every .loop file under dir and appends synthN rendered
// synth.MultiLoopProgram programs, so the replay mixes real examples
// (including intentionally-invalid ones) with cache-hostile synthetic
// many-loop programs.
func loadCorpus(dir string, synthN int) ([]program, error) {
	var corpus []program
	files, err := filepath.Glob(filepath.Join(dir, "*.loop"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		corpus = append(corpus, program{name: f, src: string(src)})
	}
	for i := 0; i < synthN; i++ {
		prog := synth.MultiLoopProgram(synth.MultiParams{
			Seed: int64(100 + i), Loops: 6, StmtsPer: 4,
			NestEvery: i%3 + 1, DistinctBodies: i%4 + 1, UB: 64,
		})
		corpus = append(corpus, program{
			name: fmt.Sprintf("<synth-%d>", i),
			src:  ast.ProgramString(prog),
		})
	}
	return corpus, nil
}
