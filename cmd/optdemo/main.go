// Command optdemo applies one of the paper's optimizations to a loop
// program, prints the transformed source, and measures the effect with the
// reference interpreter (dynamic array loads/stores) and, for register
// pipelining, the abstract machine (cycles).
//
// Usage:
//
//	optdemo -opt pipeline|stores|loads|unroll [-k 16] [-ub 1000] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/ast"
	"repro/internal/experiments"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/regalloc"
	"repro/internal/sema"
	"repro/internal/tac"
)

func main() {
	optName := flag.String("opt", "pipeline",
		"optimization: pipeline (§4.1), stores (§4.2.1), loads (§4.2.2), unroll (§4.3)")
	k := flag.Int("k", 16, "register budget for pipeline allocation")
	flag.Parse()

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		fatal(fmt.Errorf("parse: %w", err))
	}
	prog, err = sema.Normalize(prog)
	if err != nil {
		fatal(err)
	}
	idx := firstLoop(prog)
	if idx < 0 {
		fatal(fmt.Errorf("no loop in program"))
	}

	fmt.Println("== original ==")
	fmt.Print(ast.ProgramString(prog))

	switch *optName {
	case "pipeline":
		runPipeline(prog, idx, *k)
	case "stores":
		res, err := opt.EliminateStores(prog, idx)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\n== after redundant store elimination ==")
		fmt.Print(ast.ProgramString(res.Prog))
		for _, r := range res.Removed {
			fmt.Println("removed:", r)
		}
		measure(prog, res.Prog)
	case "loads":
		res, err := opt.EliminateLoads(prog, idx)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\n== after redundant load elimination ==")
		fmt.Print(ast.ProgramString(res.Prog))
		fmt.Printf("replaced %d reuse points with %d temporaries\n", len(res.Replaced), res.Temps)
		measure(prog, res.Prog)
	case "unroll":
		res, err := opt.ControlledUnroll(prog, idx, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ncritical path l = %d, predictions %v, chosen factor %d\n",
			res.CriticalPath, res.Predicted[1:], res.Factor)
		fmt.Println("== after controlled unrolling ==")
		fmt.Print(ast.ProgramString(res.Prog))
		measure(prog, res.Prog)
	default:
		fatal(fmt.Errorf("unknown optimization %q", *optName))
	}
}

func runPipeline(prog *ast.Program, idx, k int) {
	loop := prog.Body[idx].(*ast.DoLoop)
	g, err := ir.Build(loop, nil)
	if err != nil {
		fatal(err)
	}
	alloc := regalloc.Allocate(g, &regalloc.Options{K: k})
	fmt.Println("\n" + alloc.Report())
	hooks, err := alloc.GenOptions()
	if err != nil {
		fatal(err)
	}
	conv, err := tac.Gen(prog, nil)
	if err != nil {
		fatal(err)
	}
	pipe, err := tac.Gen(prog, hooks)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== pipelined three-address code ==")
	fmt.Print(pipe.String())

	memA, memB := machine.NewMemory(), machine.NewMemory()
	resA, err := machine.Run(conv, memA, nil)
	if err != nil {
		fatal(err)
	}
	resB, err := machine.Run(pipe, memB, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%-14s %10s %10s %12s\n", "", "loads", "stores", "cycles")
	fmt.Printf("%-14s %10d %10d %12d\n", "conventional", resA.TotalLoads(), resA.TotalStores(), resA.Cycles)
	fmt.Printf("%-14s %10d %10d %12d\n", "pipelined", resB.TotalLoads(), resB.TotalStores(), resB.Cycles)
	fmt.Printf("semantics equal: %v\n", memA.Equal(memB))
}

// measure interprets both programs on a deterministic initial state and
// prints dynamic load/store counts per array.
func measure(before, after *ast.Program) {
	init := interp.NewState()
	// Give every scalar a nonzero value so conditions exercise both arms
	// across iterations; arrays get a simple ramp.
	info, err := sema.Check(before)
	if err == nil {
		for s := range info.Scalars {
			init.Scalars[s] = 3
		}
		for a := range info.Arrays {
			for i := int64(-4); i <= 1100; i++ {
				init.SetArray(a, i, i%17)
			}
		}
	}
	s1, st1, err := interp.Run(before, init, nil)
	if err != nil {
		fatal(err)
	}
	s2, st2, err := interp.Run(after, init, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%-10s %12s %12s %12s %12s\n", "array", "loads", "loads'", "stores", "stores'")
	names := map[string]bool{}
	for a := range st1.ArrayLoads {
		names[a] = true
	}
	for a := range st1.ArrayStores {
		names[a] = true
	}
	sorted := make([]string, 0, len(names))
	for a := range names {
		sorted = append(sorted, a)
	}
	sort.Strings(sorted)
	for _, a := range sorted {
		fmt.Printf("%-10s %12d %12d %12d %12d\n", a,
			st1.ArrayLoads[a], st2.ArrayLoads[a], st1.ArrayStores[a], st2.ArrayStores[a])
	}
	fmt.Printf("semantics equal: %v\n", interp.ArraysEqual(s1, s2))
}

func firstLoop(prog *ast.Program) int {
	for i, s := range prog.Body {
		if _, ok := s.(*ast.DoLoop); ok {
			return i
		}
	}
	return -1
}

func readSource(path string) (string, error) {
	if path != "" {
		b, err := os.ReadFile(path)
		return string(b), err
	}
	st, err := os.Stdin.Stat()
	if err == nil && (st.Mode()&os.ModeCharDevice) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	fmt.Fprintln(os.Stderr, "(no input: optimizing the paper's Figure 5 loop)")
	return experiments.Fig5Source, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optdemo:", err)
	os.Exit(1)
}
