package arrayflow_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	arrayflow "repro"
)

// manyLoopSource builds a program of n sibling loops (every third one a
// tight two-level nest) with bodies that differ per loop.
func manyLoopSource(n int) string {
	var b strings.Builder
	for k := 0; k < n; k++ {
		nested := k%3 == 2
		if nested {
			b.WriteString("do j = 1, N\n")
		}
		fmt.Fprintf(&b, "do i = 1, N\n")
		fmt.Fprintf(&b, "  A%d[i+%d] := A%d[i] + x\n", k%5, 1+k%4, k%5)
		fmt.Fprintf(&b, "  B[i] := A%d[i-%d] + B[i-1]\n", k%5, k%3)
		b.WriteString("enddo\n")
		if nested {
			b.WriteString("enddo\n")
		}
	}
	return b.String()
}

// TestConcurrentAnalyzeProgram drives the public API from many goroutines
// over one shared parsed program — the shape a multi-tenant analysis
// service has. Run under -race it checks the driver's shared state (the
// memo cache, the precomputed graphs) is safely published; it also checks
// every goroutine renders identical bytes.
func TestConcurrentAnalyzeProgram(t *testing.T) {
	prog := arrayflow.MustParse(manyLoopSource(16))
	const goroutines = 8
	reports := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for k := 0; k < goroutines; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				pa, err := arrayflow.AnalyzeProgram(prog, nil, true)
				if err != nil {
					errs[k] = err
					return
				}
				reports[k] = pa.Report()
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", k, err)
		}
	}
	for k := 1; k < goroutines; k++ {
		if reports[k] != reports[0] {
			t.Fatalf("goroutine %d diverged:\n%s\nvs\n%s", k, reports[k], reports[0])
		}
	}
}

// TestAnalyzeProgramOptsDeterminism re-runs the whole-program analysis 50×
// through the public API across scheduling modes and asserts byte-identical
// rendering — the contract that makes the parallel driver a drop-in.
func TestAnalyzeProgramOptsDeterminism(t *testing.T) {
	prog := arrayflow.MustParse(manyLoopSource(18))
	var want string
	for run := 0; run < 50; run++ {
		pa, err := arrayflow.AnalyzeProgramOpts(prog, &arrayflow.AnalyzeOptions{
			NestVectors:  true,
			Parallelism:  []int{1, 2, 4, 0}[run%4],
			DisableCache: run%2 == 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := pa.Report(); run == 0 {
			want = got
		} else if got != want {
			t.Fatalf("run %d diverged", run)
		}
	}
}

// TestAnalysisCacheSurface exercises the cache control surface exported for
// long-running hosts.
func TestAnalysisCacheSurface(t *testing.T) {
	arrayflow.ResetAnalysisCache()
	prog := arrayflow.MustParse(manyLoopSource(6))
	if _, err := arrayflow.AnalyzeProgram(prog, nil, false); err != nil {
		t.Fatal(err)
	}
	entries, _, misses := arrayflow.AnalysisCacheStats()
	if entries == 0 || misses == 0 {
		t.Fatalf("cache untouched after analysis: entries=%d misses=%d", entries, misses)
	}
	pa, err := arrayflow.AnalyzeProgram(prog, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Metrics.CacheHits == 0 {
		t.Fatal("re-analysis did not hit the cache")
	}
	arrayflow.ResetAnalysisCache()
	if entries, hits, misses := arrayflow.AnalysisCacheStats(); entries != 0 || hits != 0 || misses != 0 {
		t.Fatalf("reset left state: %d/%d/%d", entries, hits, misses)
	}
}
