// Engine equivalence over the example corpus: the packed solver must be
// observationally indistinguishable from the reference implementation on
// every checked-in program, for every one of the paper's four problems, at
// every reporting surface (tuple tables, solver metrics, whole-program
// reports, vet findings).
package arrayflow_test

import (
	"os"
	"path/filepath"
	"testing"

	arrayflow "repro"
	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/driver"
	"repro/internal/ir"
	"repro/internal/lint"
	"repro/internal/problems"
)

// exampleLoops loads every examples/*.loop source.
func exampleLoops(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob("examples/*.loop")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	srcs := make(map[string]string, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(p)] = string(b)
	}
	return srcs
}

// TestEngineEquivalenceExamples solves all four problems on every loop of
// every example program with both engines and compares the rendered tuple
// tables and the work counters byte for byte.
func TestEngineEquivalenceExamples(t *testing.T) {
	for name, src := range exampleLoops(t) {
		prog := arrayflow.MustParse(src)
		var loops []*ast.DoLoop
		ast.Inspect(prog.Body, func(n ast.Node) bool {
			if dl, ok := n.(*ast.DoLoop); ok {
				loops = append(loops, dl)
			}
			return true
		})
		for li, loop := range loops {
			g, err := ir.Build(loop, nil)
			if err != nil {
				t.Fatalf("%s loop %d: %v", name, li, err)
			}
			specs := problems.StandardSpecs()
			packed := dataflow.SolveAll(g, specs, &dataflow.Options{CollectTrace: true, Engine: dataflow.EnginePacked})
			ref := dataflow.SolveAll(g, specs, &dataflow.Options{CollectTrace: true, Engine: dataflow.EngineReference})
			for i, spec := range specs {
				p, r := packed[i], ref[i]
				if got, want := p.TupleTable(-1), r.TupleTable(-1); got != want {
					t.Errorf("%s loop %d %s: fixed point differs\npacked:\n%s\nreference:\n%s",
						name, li, spec.Name, got, want)
				}
				if got, want := p.TupleTable(0), r.TupleTable(0); got != want {
					t.Errorf("%s loop %d %s: init snapshot differs", name, li, spec.Name)
				}
				for pass := 1; pass <= len(r.Trace); pass++ {
					if p.TupleTable(pass) != r.TupleTable(pass) {
						t.Errorf("%s loop %d %s: pass %d differs", name, li, spec.Name, pass)
					}
				}
				pm, rm := p.Metrics(), r.Metrics()
				pm.Elapsed, rm.Elapsed = 0, 0
				if pm != rm {
					t.Errorf("%s loop %d %s: metrics %+v, want %+v", name, li, spec.Name, pm, rm)
				}
			}
		}
	}
}

// TestEngineEquivalenceReports pins byte-identical driver Report output
// between the engines on every example program (cache disabled so both
// engines genuinely solve).
func TestEngineEquivalenceReports(t *testing.T) {
	for name, src := range exampleLoops(t) {
		prog := arrayflow.MustParse(src)
		var reports [2]string
		for i, eng := range []dataflow.Engine{dataflow.EnginePacked, dataflow.EngineReference} {
			pa, err := driver.Analyze(prog, &driver.Options{
				Specs:        problems.StandardSpecs(),
				NestVectors:  true,
				DisableCache: true,
				Engine:       eng,
			})
			if err != nil {
				t.Fatalf("%s (%s): %v", name, eng, err)
			}
			reports[i] = pa.Report()
		}
		if reports[0] != reports[1] {
			t.Errorf("%s: driver reports differ\npacked:\n%s\nreference:\n%s", name, reports[0], reports[1])
		}
	}
}

// TestEngineEquivalenceVet pins identical lint findings between engines on
// every example program.
func TestEngineEquivalenceVet(t *testing.T) {
	for name, src := range exampleLoops(t) {
		var got [2][]string
		for i, eng := range []dataflow.Engine{dataflow.EnginePacked, dataflow.EngineReference} {
			res := lint.Vet(name, src, &lint.Options{DisableCache: true, Engine: eng})
			for _, f := range res.Findings {
				got[i] = append(got[i], f.Analyzer+" "+f.Pos.String()+" "+f.Message)
			}
		}
		if len(got[0]) != len(got[1]) {
			t.Fatalf("%s: finding counts differ: packed %d, reference %d", name, len(got[0]), len(got[1]))
		}
		for i := range got[0] {
			if got[0][i] != got[1][i] {
				t.Errorf("%s: finding %d differs:\npacked:    %s\nreference: %s", name, i, got[0][i], got[1][i])
			}
		}
	}
}
