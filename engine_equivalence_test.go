// Engine equivalence over the example corpus: the packed solver must be
// observationally indistinguishable from the reference implementation on
// every checked-in program, for every one of the paper's four problems, at
// every reporting surface (tuple tables, solver metrics, whole-program
// reports, vet findings).
package arrayflow_test

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	arrayflow "repro"
	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/goimport"
	"repro/internal/ir"
	"repro/internal/lint"
	"repro/internal/problems"
)

// exampleLoops loads every examples/*.loop source.
func exampleLoops(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob("examples/*.loop")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	srcs := make(map[string]string, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(p)] = string(b)
	}
	return srcs
}

// TestEngineEquivalenceExamples solves all four problems on every loop of
// every example program with both engines and compares the rendered tuple
// tables and the work counters byte for byte.
func TestEngineEquivalenceExamples(t *testing.T) {
	for name, src := range exampleLoops(t) {
		prog := arrayflow.MustParse(src)
		var loops []*ast.DoLoop
		ast.Inspect(prog.Body, func(n ast.Node) bool {
			if dl, ok := n.(*ast.DoLoop); ok {
				loops = append(loops, dl)
			}
			return true
		})
		for li, loop := range loops {
			g, err := ir.Build(loop, nil)
			if err != nil {
				t.Fatalf("%s loop %d: %v", name, li, err)
			}
			specs := problems.StandardSpecs()
			packed := dataflow.SolveAll(g, specs, &dataflow.Options{CollectTrace: true, Engine: dataflow.EnginePacked})
			ref := dataflow.SolveAll(g, specs, &dataflow.Options{CollectTrace: true, Engine: dataflow.EngineReference})
			for i, spec := range specs {
				p, r := packed[i], ref[i]
				if got, want := p.TupleTable(-1), r.TupleTable(-1); got != want {
					t.Errorf("%s loop %d %s: fixed point differs\npacked:\n%s\nreference:\n%s",
						name, li, spec.Name, got, want)
				}
				if got, want := p.TupleTable(0), r.TupleTable(0); got != want {
					t.Errorf("%s loop %d %s: init snapshot differs", name, li, spec.Name)
				}
				for pass := 1; pass <= len(r.Trace); pass++ {
					if p.TupleTable(pass) != r.TupleTable(pass) {
						t.Errorf("%s loop %d %s: pass %d differs", name, li, spec.Name, pass)
					}
				}
				pm, rm := p.Metrics(), r.Metrics()
				pm.Elapsed, rm.Elapsed = 0, 0
				if pm != rm {
					t.Errorf("%s loop %d %s: metrics %+v, want %+v", name, li, spec.Name, pm, rm)
				}
			}
		}
	}
}

// TestEngineEquivalenceReports pins byte-identical driver Report output
// between the engines on every example program (cache disabled so both
// engines genuinely solve).
func TestEngineEquivalenceReports(t *testing.T) {
	for name, src := range exampleLoops(t) {
		prog := arrayflow.MustParse(src)
		var reports [2]string
		for i, eng := range []dataflow.Engine{dataflow.EnginePacked, dataflow.EngineReference} {
			pa, err := driver.Analyze(prog, &driver.Options{
				Specs:        problems.StandardSpecs(),
				NestVectors:  true,
				DisableCache: true,
				Engine:       eng,
			})
			if err != nil {
				t.Fatalf("%s (%s): %v", name, eng, err)
			}
			reports[i] = pa.Report()
		}
		if reports[0] != reports[1] {
			t.Errorf("%s: driver reports differ\npacked:\n%s\nreference:\n%s", name, reports[0], reports[1])
		}
	}
}

// TestEngineEquivalenceVet pins identical lint findings between engines on
// every example program.
func TestEngineEquivalenceVet(t *testing.T) {
	for name, src := range exampleLoops(t) {
		var got [2][]string
		for i, eng := range []dataflow.Engine{dataflow.EnginePacked, dataflow.EngineReference} {
			res := lint.Vet(name, src, &lint.Options{DisableCache: true, Engine: eng})
			for _, f := range res.Findings {
				got[i] = append(got[i], f.Analyzer+" "+f.Pos.String()+" "+f.Message)
			}
		}
		if len(got[0]) != len(got[1]) {
			t.Fatalf("%s: finding counts differ: packed %d, reference %d", name, len(got[0]), len(got[1]))
		}
		for i := range got[0] {
			if got[0][i] != got[1][i] {
				t.Errorf("%s: finding %d differs:\npacked:    %s\nreference: %s", name, i, got[0][i], got[1][i])
			}
		}
	}
}

// TestMemoCacheAcrossFrontEnds checks the global solve cache treats the
// two front ends as one namespace keyed by loop content: a nest reaching
// the driver through the Go importer hits the entries populated by the
// identical mini-language program, and an identical loop body over arrays
// with different declared dims fingerprints differently (dim signatures
// are part of the key), so the cache can never serve one shape's solution
// for the other.
func TestMemoCacheAcrossFrontEnds(t *testing.T) {
	// A 2-D wavefront over a constant array: multi-subscript references are
	// the case where declared dims enter the memo key.
	goSrc := func(n int) string {
		return `package p

func Wavefront(m *[` + strconv.Itoa(n) + `][` + strconv.Itoa(n) + `]int, n int) {
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			m[i][j] = m[i-1][j] + m[i][j-1]
		}
	}
}
`
	}

	// Lower the Go form once and render its mini-language text: the exact
	// program the importer hands the analyzers.
	res, err := goimport.ImportSource("w.go", []byte(goSrc(6)))
	if err != nil {
		t.Fatal(err)
	}
	units := res.Units()
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	miniText := ast.ProgramString(units[0].Program)

	opts := func() *lint.Options { return &lint.Options{Parallelism: 1} }
	arrayflow.ResetAnalysisCache()

	// Pass 1: the mini front end populates the cache.
	miniRes := lint.Vet("w.loop", miniText, opts())
	if miniRes.FrontEndFailed {
		t.Fatalf("mini front end failed on rendered text:\n%s", miniText)
	}
	_, h0, m0 := driver.CacheStats()

	// Pass 2: the Go front end on the identical nest must be pure cache
	// hits — same fingerprints, zero new misses.
	goRes := goimport.VetSource("w.go", []byte(goSrc(6)), opts())
	if goRes.FrontEndFailed {
		t.Fatalf("go front end failed: %v", goRes.Findings)
	}
	_, h1, m1 := driver.CacheStats()
	if m1 != m0 {
		t.Errorf("go front end added %d cache misses on an identical nest (fingerprints diverge across front ends)", m1-m0)
	}
	if h1 <= h0 {
		t.Errorf("go front end recorded no cache hits (hits %d -> %d)", h0, h1)
	}

	// The two front ends must also agree on every verdict.
	verdicts := func(fs []diag.Finding) []string {
		var out []string
		for _, f := range fs {
			if v := f.Detail["verdict"]; v != "" {
				out = append(out, f.Analyzer+" "+v)
			}
		}
		sort.Strings(out)
		return out
	}
	mv, gv := verdicts(miniRes.Findings), verdicts(goRes.Findings)
	if len(mv) == 0 || len(mv) != len(gv) {
		t.Fatalf("verdict sets differ in size: mini %v, go %v", mv, gv)
	}
	for i := range mv {
		if mv[i] != gv[i] {
			t.Errorf("verdict %d differs: mini %q, go %q", i, mv[i], gv[i])
		}
	}

	// Pass 3: the same loop text over a differently-dimensioned array is a
	// different problem; its fingerprints must NOT hit pass 1/2 entries.
	_, h2, m2 := driver.CacheStats()
	bigger := goimport.VetSource("w.go", []byte(goSrc(7)), opts())
	if bigger.FrontEndFailed {
		t.Fatalf("go front end failed on resized array: %v", bigger.Findings)
	}
	_, h3, m3 := driver.CacheStats()
	if h3 != h2 {
		t.Errorf("resized array hit the smaller array's cache entries (%d hits) — dims are missing from the key", h3-h2)
	}
	if m3 <= m2 {
		t.Errorf("resized array added no cache misses (misses %d -> %d)", m2, m3)
	}
}
