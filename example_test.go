package arrayflow_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	arrayflow "repro"
)

// ExampleAnalyze is the package quick start: one loop, one problem
// instance, the guaranteed cross-iteration reuses.
func ExampleAnalyze() {
	prog := arrayflow.MustParse(`
do i = 1, 1000
  A[i+2] := A[i] + X
enddo
`)
	g, _ := arrayflow.BuildGraph(prog.Body[0].(*arrayflow.Loop))
	res := arrayflow.Analyze(g, arrayflow.MustReachingDefs())
	for _, r := range arrayflow.Reuses(res) {
		fmt.Println(r)
	}
	fmt.Println("changing passes:", res.ChangedPasses)
	// Output:
	// use A[i]@n1 reuses A[i + 2] @ distance 2
	// changing passes: 0
}

// ExampleAnalyzeProgram runs the §3.2 whole-program protocol on a tight
// two-level nest: innermost-first analysis, the §3.6 re-analysis with
// respect to the enclosing induction variable, and the §6 vectors.
func ExampleAnalyzeProgram() {
	prog := arrayflow.MustParse(`
do j = 1, UB
  do i = 1, UB1
    X[i+1, j] := X[i, j]
  enddo
enddo
`)
	pa, err := arrayflow.AnalyzeProgram(prog, nil, true)
	if err != nil {
		panic(err)
	}
	fmt.Print(pa.Report())
	fmt.Println("cache-aware solves:", pa.Metrics.Solves)
	// Output:
	// program analysis: 2 loops (innermost first)
	// loop i (depth 2, 2 nodes):
	//   reuse: use X[i, j]@n1 reuses X[i + 1, j] @ distance 1
	// loop j (depth 1, 2 nodes):
	// tight nest at j: distance vectors:
	//   flow X[i + 1, j] -> X[i, j] vector (0, 1)
	// cache-aware solves: 3
}

// ExampleEliminateLoads applies the §4.2.2 redundant-load elimination: the
// recurrence's load is replaced by a scalar temporary that pipelines the
// value across iterations.
func ExampleEliminateLoads() {
	prog := arrayflow.MustParse(`
do i = 1, 1000
  A[i+2] := A[i] + X
enddo
`)
	res, err := arrayflow.EliminateLoads(prog, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("loads replaced:", len(res.Replaced))
	fmt.Print(arrayflow.ProgramString(res.Prog))
	// Output:
	// loads replaced: 1
	// tmp.A.1.1 := A[2]
	// tmp.A.1.2 := A[1]
	// do i = 1, 1000
	//   tmp.A.1.0 := tmp.A.1.2 + X
	//   A[i + 2] := tmp.A.1.0
	//   tmp.A.1.2 := tmp.A.1.1
	//   tmp.A.1.1 := tmp.A.1.0
	// enddo
}

// ExampleAllocateRegisters runs the §4.1 register-pipelining allocation on
// the Figure 5 loop.
func ExampleAllocateRegisters() {
	prog := arrayflow.MustParse(`
do i = 1, 1000
  A[i+2] := A[i] + X
enddo
`)
	g, err := arrayflow.BuildGraph(prog.Body[0].(*arrayflow.Loop))
	if err != nil {
		panic(err)
	}
	alloc := arrayflow.AllocateRegisters(g, 16)
	fmt.Print(alloc.Report())
	// Output:
	// register allocation (k=16):
	//   A[i + 2]       depth=3 access=2 priority=0.6667  allocated pipe.A.1.0,pipe.A.1.1,pipe.A.1.2
	//   X              depth=1 access=1 priority=0.0000  allocated X
}

// ExampleNewServiceHandler runs the analysis daemon in-process and drives
// it with the bundled client: the served report is byte-identical to what
// `arrayflow -program` prints for the same source.
func ExampleNewServiceHandler() {
	ts := httptest.NewServer(arrayflow.NewServiceHandler(nil))
	defer ts.Close()

	client := arrayflow.NewServiceClient(ts.URL)
	report, err := client.Analyze(context.Background(), "pipeline.loop", `
do i = 1, 8
  A[i+1] := A[i] + 1
enddo
`)
	if err != nil {
		panic(err)
	}
	fmt.Print(report)
	// Output:
	// program analysis: 1 loops (innermost first)
	// loop i (depth 1, 2 nodes):
	//   reuse: use A[i]@n1 reuses A[i + 1] @ distance 1
}
