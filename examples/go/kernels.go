// Package kernels collects canonical array loop nests in plain Go. They
// are the Go-front-end counterparts of the mini-language programs under
// examples/: `arrayflow vet -lang go ./examples/go` lowers every loop here
// through internal/goimport, and the corpus and differential tests use
// them as a known-shape extraction baseline (each function lowers fully —
// no blockers).
package kernels

// Saxpy is the classic a[i] += s*b[i] single-loop kernel: every iteration
// touches disjoint elements, so the loop is parallel.
func Saxpy(a, b []int, s int) {
	for i := 0; i < len(a); i++ {
		a[i] = a[i] + s*b[i]
	}
}

// Copy writes b into a index-aligned; with distinct (non-aliasing)
// slices, the loop is parallel.
func Copy(a, b []int) {
	for i := range a {
		a[i] = b[i]
	}
}

// ShiftLeft reads the right neighbor: a loop-carried anti-dependence with
// distance 1.
func ShiftLeft(a []int, n int) {
	for i := 0; i < n-1; i++ {
		a[i] = a[i+1]
	}
}

// Recurrence is the true loop-carried flow dependence a[i] = a[i-1]+b[i]:
// distance 1, not parallelizable.
func Recurrence(a, b []int, n int) {
	for i := 1; i < n; i++ {
		a[i] = a[i-1] + b[i]
	}
}

// SumReduce accumulates into a scalar: the array reads are independent,
// the scalar carries the dependence.
func SumReduce(a []int) int {
	s := 0
	for i := 0; i < len(a); i++ {
		s += a[i]
	}
	return s
}

// RangeSum is SumReduce in value-binding range form: the element copy v
// lowers as a body-leading v := a[i+1] assignment.
func RangeSum(a []int) int {
	s := 0
	for _, v := range a {
		s += v
	}
	return s
}

// DotProduct reads two arrays index-aligned into a scalar accumulator.
func DotProduct(a, b []int) int {
	s := 0
	for i := 0; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Downward walks the loop backward with a negative step.
func Downward(a []int, n int) {
	for i := n - 1; i >= 0; i-- {
		a[i] = a[i] + 1
	}
}

// Strided touches every second element: constant step 2.
func Strided(a []int, n int) {
	for i := 0; i < n; i += 2 {
		a[i] = 2 * a[i]
	}
}

// DeadStore overwrites each element written by the first statement before
// any read: the first store is dead at distance 0.
func DeadStore(a, b []int, n int) {
	for i := 0; i < n; i++ {
		a[i] = b[i]
		a[i] = b[i] + 1
	}
}

// Reuse reads the element stored one iteration earlier: a guaranteed
// reuse at distance 1 the scalar-replacement optimization targets.
func Reuse(a, b []int, n int) {
	for i := 1; i < n; i++ {
		a[i] = b[i]
		b[i] = a[i-1]
	}
}

// Stencil3 is a three-point read stencil into a separate output.
func Stencil3(out, in []int, n int) {
	for i := 1; i < n-1; i++ {
		out[i] = in[i-1] + in[i] + in[i+1]
	}
}

// MatMul4 is a fully-constant 4x4 matrix multiply over true 2-D arrays:
// the dim declarations come from the go/types array lengths.
func MatMul4(c, a, b *[4][4]int) {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c[i][j] = 0
			for k := 0; k < 4; k++ {
				c[i][j] = c[i][j] + a[i][k]*b[k][j]
			}
		}
	}
}

// Transpose8 swaps a constant 8x8 array into a second one.
func Transpose8(dst, src *[8][8]int) {
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			dst[j][i] = src[i][j]
		}
	}
}

// Triangular visits the lower triangle: the inner bound reads the outer
// induction variable.
func Triangular(m *[8][8]int) {
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			m[i][j] = i + j
		}
	}
}

// PrefixSum carries a scalar accumulator across iterations.
func PrefixSum(a []int) {
	s := 0
	for i := 0; i < len(a); i++ {
		s += a[i]
		a[i] = s
	}
}

// Fill is range-over-int (Go 1.22): for i := range n.
func Fill(a []int, n, v int) {
	for i := range n {
		a[i] = v
	}
}

// Interleave writes even and odd halves from two sources in one body.
func Interleave(out, lo, hi []int, n int) {
	for i := 0; i < n; i++ {
		out[2*i] = lo[i]
		out[2*i+1] = hi[i]
	}
}

// Conditional guards the store: control dependence inside the body.
func Conditional(a, b []int, n, t int) {
	for i := 0; i < n; i++ {
		if b[i] > t {
			a[i] = b[i]
		} else {
			a[i] = t
		}
	}
}

// MaxScan tracks a running maximum through a conditional.
func MaxScan(a []int) int {
	m := 0
	for i := 0; i < len(a); i++ {
		if a[i] > m {
			m = a[i]
		}
	}
	return m
}

// Gather reads through an index expression with a multiplied offset.
func Gather(out, in []int, n, k int) {
	for i := 0; i < n; i++ {
		out[i] = in[k*i]
	}
}

// Wavefront is the 2-D recurrence m[i][j] = m[i-1][j] + m[i][j-1].
func Wavefront(m *[6][6]int) {
	for i := 1; i < 6; i++ {
		for j := 1; j < 6; j++ {
			m[i][j] = m[i-1][j] + m[i][j-1]
		}
	}
}

// EvenOdd splits one pass into two sequential loops in the same function.
func EvenOdd(a []int, n int) {
	for i := 0; i < n; i += 2 {
		a[i] = 0
	}
	for i := 1; i < n; i += 2 {
		a[i] = 1
	}
}

// ScaleInPlace multiplies every element through a range loop with an
// explicit index read-modify-write.
func ScaleInPlace(a []int, s int) {
	for i := range a {
		a[i] *= s
	}
}

// Histogram8 counts values into a constant-size table through a computed
// subscript (non-affine in the paper's sense: the verdict is unknown).
func Histogram8(h *[8]int, a []int) {
	for i := 0; i < len(a); i++ {
		h[a[i]%8]++
	}
}

// StencilShift reads the right neighbor under a shifted loop condition
// (i+1 < n): the front end folds the shift into the bound (i ≤ n−2), so
// the subscripts stay affine and every access is in range.
func StencilShift(out, in []int, n int) {
	for i := 0; i+1 < n; i++ {
		out[i] = in[i] + in[i+1]
	}
}

// OverShift shifts the condition the other way (i−1 < n ⟺ i ≤ n),
// exercising the negative-shift fold.
func OverShift(a []int, n int) {
	for i := 1; i-1 < n; i++ {
		a[i-1] = a[i-1] + 1
	}
}

// Smooth applies a second pass over the first pass's output: two loops
// with a cross-loop dependence.
func Smooth(a, tmp []int, n int) {
	for i := 1; i < n-1; i++ {
		tmp[i] = a[i-1] + a[i] + a[i+1]
	}
	for i := 1; i < n-1; i++ {
		a[i] = tmp[i] / 3
	}
}
