// Load/store optimizations (paper §4.2, Figures 6 and 7): redundant store
// elimination removes the conditional store A[i+1] (overwritten unread one
// iteration later) and unpeels the final iteration; redundant load
// elimination replaces the conditional load of A[i] with a scalar
// temporary fed by the store of A[i+1] one iteration earlier. Both
// transformations are validated by interpreting the original and the
// transformed programs on the same inputs.
package main

import (
	"fmt"
	"log"

	arrayflow "repro"
)

const fig6 = `
do i = 1, 1000
  A[i] := c + i
  if c > 0 then
    A[i+1] := c * 2
  endif
enddo
`

const fig7 = `
do i = 1, 1000
  if c > i / 2 then
    y := A[i]
    B[i] := y
  endif
  A[i+1] := c + i
enddo
`

func main() {
	fmt.Println("== Figure 6: redundant store elimination ==")
	storeDemo()
	fmt.Println("\n== Figure 7: redundant load elimination ==")
	loadDemo()
}

func storeDemo() {
	prog := arrayflow.MustParse(fig6)
	res, err := arrayflow.EliminateStores(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Removed {
		fmt.Println("removed:", r.String())
	}
	fmt.Println("transformed program:")
	fmt.Print(arrayflow.ProgramString(res.Prog))

	init := arrayflow.NewState()
	init.Scalars["c"] = 9
	s1, st1, err := arrayflow.Interpret(prog, init)
	if err != nil {
		log.Fatal(err)
	}
	s2, st2, err := arrayflow.Interpret(res.Prog, init)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic stores to A: %d -> %d (semantics equal: %v)\n",
		st1.ArrayStores["A"], st2.ArrayStores["A"], arrayflow.ArraysEqual(s1, s2))
}

func loadDemo() {
	prog := arrayflow.MustParse(fig7)
	res, err := arrayflow.EliminateLoads(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaced %d reuse points with %d scalar temporaries\n",
		len(res.Replaced), res.Temps)
	fmt.Println("transformed program:")
	fmt.Print(arrayflow.ProgramString(res.Prog))

	init := arrayflow.NewState()
	init.Scalars["c"] = 1 << 20
	s1, st1, err := arrayflow.Interpret(prog, init)
	if err != nil {
		log.Fatal(err)
	}
	s2, st2, err := arrayflow.Interpret(res.Prog, init)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic loads of A: %d -> %d (semantics equal: %v)\n",
		st1.ArrayLoads["A"], st2.ArrayLoads["A"], arrayflow.ArraysEqual(s1, s2))
}
