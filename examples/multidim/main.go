// Multi-dimensional references and tight loop nests (paper §3.6 and the §6
// extension): the Figure 4 nest carries three recurrences —
//
//	X[i+1, j] := X[i, j]     distance 1 wrt the inner loop   (single-loop finds it)
//	Y[i, j+1] := Y[i, j-1]   distance 2 wrt the outer loop   (single-loop finds it)
//	Z[i+1, j] := Z[i, j-1]   vector (1, 1) over both loops   (only the extension finds it)
//
// The single-loop analyses linearize subscripts with symbolic strides
// (X[i+1, j] ≡ X[N·i + N + j]) and resolve kill distances by exact
// symbolic division (N/N = 1); the Z recurrence needs the distance-vector
// solve δi·N + δj = N + 1 ⇒ (1, 1).
package main

import (
	"fmt"
	"log"

	arrayflow "repro"
)

const fig4 = `
do j = 1, UB
  do i = 1, UB1
    X[i+1, j] := X[i, j]
    Y[i, j+1] := Y[i, j-1]
    Z[i+1, j] := Z[i, j-1]
  enddo
enddo
`

func main() {
	prog := arrayflow.MustParse(fig4)
	outer := prog.Body[0].(*arrayflow.Loop)
	inner := outer.Body[0].(*arrayflow.Loop)

	// Single-loop analysis with respect to the inner induction variable:
	// j and the array strides act as symbolic constants.
	fmt.Println("== single-loop analysis (inner loop, iv = i) ==")
	g, err := arrayflow.BuildGraph(inner)
	if err != nil {
		log.Fatal(err)
	}
	res := arrayflow.Analyze(g, arrayflow.MustReachingDefs())
	for _, r := range arrayflow.Reuses(res) {
		fmt.Println("  " + r.String())
	}
	fmt.Println("  (the X recurrence appears; Y and Z do not — their distances involve j or both IVs)")

	// The §6 extension: distance vectors over the tight nest.
	fmt.Println("\n== distance-vector analysis of the tight nest ==")
	recs, err := arrayflow.NestRecurrences(outer, 8)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		tag := "single-loop analysis finds this too"
		if !r.FoundBySingleLoop {
			tag = "ONLY the vector extension finds this (paper §3.6's open case)"
		}
		fmt.Printf("  %-46s %s\n", r.String(), tag)
	}
}
