// Quickstart: parse the paper's Figure 1 loop, run must-reaching
// definitions, print the Table 1 tuple tables and the guaranteed reuse
// facts of §3.5.
package main

import (
	"fmt"
	"log"

	arrayflow "repro"
)

const fig1 = `
do i = 1, UB
  C[i+2] := C[i] * 2
  B[2*i] := C[i] + X
  if C[i] == 0 then C[i] := B[i-1]
  B[i] := C[i+1]
enddo
`

func main() {
	prog, err := arrayflow.Parse(fig1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := arrayflow.Check(prog); err != nil {
		log.Fatal(err)
	}

	loop, ok := prog.Body[0].(*arrayflow.Loop)
	if !ok {
		log.Fatal("expected a loop")
	}
	g, err := arrayflow.BuildGraph(loop)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Loop flow graph (paper Figure 3):")
	fmt.Println(g.Dump())

	res := arrayflow.AnalyzeTraced(g, arrayflow.MustReachingDefs())
	fmt.Println("Initialization pass (Table 1 (i)):")
	fmt.Println(res.TupleTable(0))
	fmt.Println("Iteration pass 1 (Table 1 (ii)):")
	fmt.Println(res.TupleTable(1))
	fmt.Println("Iteration pass 2 — the fixed point (Table 1 (ii)):")
	fmt.Println(res.TupleTable(2))

	fmt.Println("Guaranteed value reuses (§3.5):")
	for _, r := range arrayflow.Reuses(res) {
		fmt.Println("  " + r.String())
	}
}
