// Register pipelining (paper §4.1, Figure 5): the loop
//
//	do i = 1, 1000
//	  A[i+2] := A[i] + X
//	enddo
//
// reloads from memory a value it computed two iterations earlier. The
// allocator assigns a three-stage register pipeline (r0, r1, r2); the use
// A[i] then reads stage r2, the in-loop loads disappear, and the abstract
// machine confirms identical memory contents at lower cycle cost — the
// shape of the paper's Figure 5 (iii).
package main

import (
	"fmt"
	"log"

	arrayflow "repro"
)

const src = `
do i = 1, 1000
  A[i+2] := A[i] + X
enddo
`

func main() {
	prog := arrayflow.MustParse(src)
	loop := prog.Body[0].(*arrayflow.Loop)
	g, err := arrayflow.BuildGraph(loop)
	if err != nil {
		log.Fatal(err)
	}

	alloc := arrayflow.AllocateRegisters(g, 16)
	fmt.Println(alloc.Report())

	hooks, err := alloc.GenOptions()
	if err != nil {
		log.Fatal(err)
	}
	conventional, err := arrayflow.Compile(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	pipelined, err := arrayflow.Compile(prog, hooks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Pipelined three-address code:")
	fmt.Println(pipelined.String())

	memA, memB := arrayflow.NewMemory(), arrayflow.NewMemory()
	for i := int64(-2); i <= 2; i++ {
		memA.Set("A", i, 10+i)
		memB.Set("A", i, 10+i)
	}
	init := map[string]int64{"X": 1}
	resA, err := arrayflow.Execute(conventional, memA, init)
	if err != nil {
		log.Fatal(err)
	}
	resB, err := arrayflow.Execute(pipelined, memB, init)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %10s %10s %12s\n", "", "loads A", "stores A", "cycles")
	fmt.Printf("%-14s %10d %10d %12d\n", "conventional", resA.Loads["A"], resA.Stores["A"], resA.Cycles)
	fmt.Printf("%-14s %10d %10d %12d\n", "pipelined", resB.Loads["A"], resB.Stores["A"], resB.Cycles)
	fmt.Println("memory contents equal:", memA.Equal(memB))
}
