// Controlled loop unrolling (paper §4.3): the δ-reaching-references
// analysis supplies loop-carried dependence distances; the critical path of
// the unrolled body is predicted *before* transforming anything, and
// unrolling proceeds only while each extra copy creates usable parallelism.
//
// Three characteristic loops:
//   - a distance-2 recurrence (Figure 5's loop): copies pair up, unroll wins;
//   - a distance-1 recurrence: fully serial, the controller refuses;
//   - a wide independent body: fully parallel, unroll to the maximum.
package main

import (
	"fmt"
	"log"

	arrayflow "repro"
)

func main() {
	cases := []struct {
		name string
		src  string
	}{
		{"distance-2 recurrence", `
do i = 1, 100
  A[i+2] := A[i] + x
enddo
`},
		{"distance-1 recurrence", `
do i = 1, 100
  A[i+1] := A[i] + x
enddo
`},
		{"independent statements", `
do i = 1, 100
  B[i] := x + 1
  C[i] := y * 2
  D[i] := z - 3
enddo
`},
	}

	for _, c := range cases {
		fmt.Printf("== %s ==\n", c.name)
		prog := arrayflow.MustParse(c.src)

		loop := prog.Body[0].(*arrayflow.Loop)
		g, err := arrayflow.BuildGraph(loop)
		if err != nil {
			log.Fatal(err)
		}
		dg := arrayflow.BuildDependenceGraph(g, 8)
		fmt.Print(dg.String())
		fmt.Printf("critical path l = %d; l_unroll(2) = %d; l_unroll(4) = %d\n",
			dg.CriticalPath(), dg.UnrolledCriticalPath(2), dg.UnrolledCriticalPath(4))

		res, err := arrayflow.ControlledUnroll(prog, 0, 1.2, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chosen unroll factor: %d\n", res.Factor)
		if res.Factor > 1 {
			fmt.Println("unrolled program:")
			fmt.Print(arrayflow.ProgramString(res.Prog))

			// Differential check via the interpreter.
			init := arrayflow.NewState()
			for _, s := range []string{"x", "y", "z"} {
				init.Scalars[s] = 2
			}
			for i := int64(-2); i <= 110; i++ {
				init.SetArray("A", i, i)
			}
			s1, _, err := arrayflow.Interpret(prog, init)
			if err != nil {
				log.Fatal(err)
			}
			s2, _, err := arrayflow.Interpret(res.Prog, init)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("semantics equal:", arrayflow.ArraysEqual(s1, s2))
		}
		fmt.Println()
	}
}
