// Whole-program analysis (paper §3.2): the full preprocessing and analysis
// pipeline on a program with several loops — derived induction variables
// removed (§1's assumed preprocessing), loops normalized, then every loop
// analyzed innermost-first with nested loops summarized, tight nests
// re-analyzed per enclosing induction variable (§3.6) and scanned for
// distance vectors (§6 extension).
package main

import (
	"fmt"
	"log"

	arrayflow "repro"
)

const src = `
! A loop with a derived induction variable (k walks twice as fast as i).
k := 0
do i = 1, 100, 1
  A[k+2] := A[k] + x
  k := k + 2
enddo

! A tight nest carrying recurrences in three different ways.
do j = 1, UB
  do i = 1, UB1
    X[i+1, j] := X[i, j]
    Z[i+1, j] := Z[i, j-1]
  enddo
enddo
`

func main() {
	prog, err := arrayflow.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// Preprocessing the paper assumes: derived IVs out, loops normalized.
	prog, removed, err := arrayflow.RemoveDerivedIVs(prog, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range removed {
		fmt.Printf("removed derived induction variable %s (step %d)\n", r.Name, r.Step)
	}
	prog, err = arrayflow.Normalize(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("preprocessed program:")
	fmt.Print(arrayflow.ProgramString(prog))

	pa, err := arrayflow.AnalyzeProgram(prog, nil, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhierarchical analysis (§3.2, innermost first):")
	fmt.Print(pa.Report())
}
