// Package ast defines the abstract syntax tree of the loop mini-language.
//
// Programs are lists of statements; the statements relevant to the PLDI'93
// framework are DO loops (single basic induction variable, normalized by
// internal/sema), IF conditionals, and assignments. Array references carry
// one or more subscript expressions; internal/sema later checks that each is
// an affine function of a loop induction variable.
package ast

import "repro/internal/token"

// Node is implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Program is a whole translation unit: a statement list. Syms, when
// non-nil, is the identifier intern table populated by the parser; symbol
// IDs on nodes index into it. Hand-built programs may leave it nil.
type Program struct {
	Body []Stmt
	Syms *token.Interner
	// Directives are the lint control comments the lexer collected
	// (suppressions such as //lint:ignore), in source order. They ride on
	// the program because comments have no home in the statement tree;
	// sema.Normalize preserves them across normalization.
	Directives []token.Directive
}

// Pos returns the position of the first statement, if any.
func (p *Program) Pos() token.Pos {
	if len(p.Body) > 0 {
		return p.Body[0].Pos()
	}
	return token.Pos{}
}

// ---------------------------------------------------------------------------
// Statements

// DoLoop is a counted loop: do Var = Lo, Hi [, Step] ... enddo.
type DoLoop struct {
	DoPos  token.Pos
	Var    string
	VarSym token.Sym // intern symbol for Var (0 on hand-built nodes)
	Lo     Expr
	Hi     Expr
	Step   Expr // nil means step 1
	Body   []Stmt

	// Label is a stable identity assigned by the parser (source order of DO
	// headers), used to key analysis results across transformations.
	Label int
}

func (s *DoLoop) Pos() token.Pos { return s.DoPos }
func (*DoLoop) stmtNode()        {}

// If is a conditional: if Cond then ... [else ...] endif.
type If struct {
	IfPos token.Pos
	Cond  Expr
	Then  []Stmt
	Else  []Stmt // nil when absent
}

func (s *If) Pos() token.Pos { return s.IfPos }
func (*If) stmtNode()        {}

// Assign is an assignment to a scalar or array element.
type Assign struct {
	LHS Expr // *Ident (scalar) or *ArrayRef
	RHS Expr
}

func (s *Assign) Pos() token.Pos { return s.LHS.Pos() }
func (*Assign) stmtNode()        {}

// Dim declares an array's dimension sizes: dim A[100, 200]. Sizes must be
// positive integer constants (validated by internal/sema); the declaration
// gives diagnostics a bound to check subscript extremes against. Arrays are
// 1-based, so dim A[n] declares the valid index range [1, n].
type Dim struct {
	DimPos  token.Pos
	Name    string
	Sym     token.Sym // intern symbol for Name (0 on hand-built nodes)
	NamePos token.Pos
	Sizes   []Expr
}

func (s *Dim) Pos() token.Pos { return s.DimPos }
func (*Dim) stmtNode()        {}

// ---------------------------------------------------------------------------
// Expressions

// Ident is a scalar variable reference (or the loop induction variable).
type Ident struct {
	NamePos token.Pos
	Name    string
	Sym     token.Sym // intern symbol for Name (0 on hand-built nodes)
}

func (e *Ident) Pos() token.Pos { return e.NamePos }
func (*Ident) exprNode()        {}

// IntLit is an integer literal.
type IntLit struct {
	LitPos token.Pos
	Value  int64
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (*IntLit) exprNode()        {}

// ArrayRef is a subscripted reference X[e1, …, en] (or X(e1, …, en)).
type ArrayRef struct {
	NamePos token.Pos
	Name    string
	Sym     token.Sym // intern symbol for Name (0 on hand-built nodes)
	Subs    []Expr
}

func (e *ArrayRef) Pos() token.Pos { return e.NamePos }
func (*ArrayRef) exprNode()        {}

// Binary is a binary operation; Op is an operator token kind.
type Binary struct {
	Op token.Kind
	L  Expr
	R  Expr
}

func (e *Binary) Pos() token.Pos { return e.L.Pos() }
func (*Binary) exprNode()        {}

// Unary is a unary operation (MINUS or NOT).
type Unary struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

func (e *Unary) Pos() token.Pos { return e.OpPos }
func (*Unary) exprNode()        {}

// ---------------------------------------------------------------------------
// Traversal and utilities

// Inspect walks the statement list depth-first, calling f for every node.
// If f returns false for a node, its children are skipped.
func Inspect(stmts []Stmt, f func(Node) bool) {
	for _, s := range stmts {
		inspectStmt(s, f)
	}
}

func inspectStmt(s Stmt, f func(Node) bool) {
	if s == nil || !f(s) {
		return
	}
	switch st := s.(type) {
	case *DoLoop:
		inspectExpr(st.Lo, f)
		inspectExpr(st.Hi, f)
		if st.Step != nil {
			inspectExpr(st.Step, f)
		}
		Inspect(st.Body, f)
	case *If:
		inspectExpr(st.Cond, f)
		Inspect(st.Then, f)
		Inspect(st.Else, f)
	case *Assign:
		inspectExpr(st.LHS, f)
		inspectExpr(st.RHS, f)
	case *Dim:
		for _, sz := range st.Sizes {
			inspectExpr(sz, f)
		}
	}
}

// InspectExpr walks a single expression depth-first, calling f for every
// node. If f returns false for a node, its children are skipped. It is the
// allocation-free counterpart of wrapping e in a synthetic statement and
// calling Inspect.
func InspectExpr(e Expr, f func(Node) bool) { inspectExpr(e, f) }

func inspectExpr(e Expr, f func(Node) bool) {
	if e == nil || !f(e) {
		return
	}
	switch ex := e.(type) {
	case *ArrayRef:
		for _, sub := range ex.Subs {
			inspectExpr(sub, f)
		}
	case *Binary:
		inspectExpr(ex.L, f)
		inspectExpr(ex.R, f)
	case *Unary:
		inspectExpr(ex.X, f)
	}
}

// CloneExpr returns a deep copy of an expression.
func CloneExpr(e Expr) Expr {
	switch ex := e.(type) {
	case nil:
		return nil
	case *Ident:
		c := *ex
		return &c
	case *IntLit:
		c := *ex
		return &c
	case *ArrayRef:
		c := &ArrayRef{NamePos: ex.NamePos, Name: ex.Name, Sym: ex.Sym, Subs: make([]Expr, len(ex.Subs))}
		for i, s := range ex.Subs {
			c.Subs[i] = CloneExpr(s)
		}
		return c
	case *Binary:
		return &Binary{Op: ex.Op, L: CloneExpr(ex.L), R: CloneExpr(ex.R)}
	case *Unary:
		return &Unary{OpPos: ex.OpPos, Op: ex.Op, X: CloneExpr(ex.X)}
	}
	panic("ast: unknown expression type in CloneExpr")
}

// CloneStmt returns a deep copy of a statement.
func CloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case nil:
		return nil
	case *DoLoop:
		c := &DoLoop{
			DoPos: st.DoPos, Var: st.Var, VarSym: st.VarSym, Label: st.Label,
			Lo: CloneExpr(st.Lo), Hi: CloneExpr(st.Hi),
		}
		if st.Step != nil {
			c.Step = CloneExpr(st.Step)
		}
		c.Body = CloneStmts(st.Body)
		return c
	case *If:
		return &If{IfPos: st.IfPos, Cond: CloneExpr(st.Cond), Then: CloneStmts(st.Then), Else: CloneStmts(st.Else)}
	case *Assign:
		return &Assign{LHS: CloneExpr(st.LHS), RHS: CloneExpr(st.RHS)}
	case *Dim:
		c := &Dim{DimPos: st.DimPos, Name: st.Name, Sym: st.Sym, NamePos: st.NamePos, Sizes: make([]Expr, len(st.Sizes))}
		for i, sz := range st.Sizes {
			c.Sizes[i] = CloneExpr(sz)
		}
		return c
	}
	panic("ast: unknown statement type in CloneStmt")
}

// CloneStmts deep-copies a statement list (nil stays nil).
func CloneStmts(list []Stmt) []Stmt {
	if list == nil {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = CloneStmt(s)
	}
	return out
}

// SubstituteIdent returns a copy of e with every occurrence of the scalar
// identifier name replaced by repl (deep-copied at each site).
func SubstituteIdent(e Expr, name string, repl Expr) Expr {
	switch ex := e.(type) {
	case nil:
		return nil
	case *Ident:
		if ex.Name == name {
			return CloneExpr(repl)
		}
		return CloneExpr(ex)
	case *IntLit:
		return CloneExpr(ex)
	case *ArrayRef:
		c := &ArrayRef{NamePos: ex.NamePos, Name: ex.Name, Sym: ex.Sym, Subs: make([]Expr, len(ex.Subs))}
		for i, s := range ex.Subs {
			c.Subs[i] = SubstituteIdent(s, name, repl)
		}
		return c
	case *Binary:
		return &Binary{Op: ex.Op, L: SubstituteIdent(ex.L, name, repl), R: SubstituteIdent(ex.R, name, repl)}
	case *Unary:
		return &Unary{OpPos: ex.OpPos, Op: ex.Op, X: SubstituteIdent(ex.X, name, repl)}
	}
	panic("ast: unknown expression type in SubstituteIdent")
}

// SubstituteIdentStmts applies SubstituteIdent across a statement list,
// returning a deep copy. Assignments to the substituted name are left intact
// (the caller is responsible for not substituting assigned variables).
func SubstituteIdentStmts(list []Stmt, name string, repl Expr) []Stmt {
	out := make([]Stmt, len(list))
	for i, s := range list {
		switch st := s.(type) {
		case *DoLoop:
			c := &DoLoop{DoPos: st.DoPos, Var: st.Var, VarSym: st.VarSym, Label: st.Label}
			c.Lo = SubstituteIdent(st.Lo, name, repl)
			c.Hi = SubstituteIdent(st.Hi, name, repl)
			if st.Step != nil {
				c.Step = SubstituteIdent(st.Step, name, repl)
			}
			if st.Var == name {
				// Inner loop shadows the name; leave its body alone.
				c.Body = CloneStmts(st.Body)
			} else {
				c.Body = SubstituteIdentStmts(st.Body, name, repl)
			}
			out[i] = c
		case *If:
			out[i] = &If{
				IfPos: st.IfPos,
				Cond:  SubstituteIdent(st.Cond, name, repl),
				Then:  SubstituteIdentStmts(st.Then, name, repl),
				Else:  substituteMaybe(st.Else, name, repl),
			}
		case *Assign:
			out[i] = &Assign{LHS: SubstituteIdent(st.LHS, name, repl), RHS: SubstituteIdent(st.RHS, name, repl)}
		default:
			out[i] = CloneStmt(s)
		}
	}
	return out
}

func substituteMaybe(list []Stmt, name string, repl Expr) []Stmt {
	if list == nil {
		return nil
	}
	return SubstituteIdentStmts(list, name, repl)
}
