package ast

import (
	"testing"

	"repro/internal/token"
)

func loopFixture() *DoLoop {
	// do i = 1, N { A[i+1] := A[i] + x; if x > 0 then A[i] := 0 }
	return &DoLoop{
		Var: "i", Lo: &IntLit{Value: 1}, Hi: &Ident{Name: "N"}, Label: 1,
		Body: []Stmt{
			&Assign{
				LHS: &ArrayRef{Name: "A", Subs: []Expr{&Binary{Op: token.PLUS, L: &Ident{Name: "i"}, R: &IntLit{Value: 1}}}},
				RHS: &Binary{Op: token.PLUS,
					L: &ArrayRef{Name: "A", Subs: []Expr{&Ident{Name: "i"}}},
					R: &Ident{Name: "x"}},
			},
			&If{
				Cond: &Binary{Op: token.GT, L: &Ident{Name: "x"}, R: &IntLit{Value: 0}},
				Then: []Stmt{&Assign{
					LHS: &ArrayRef{Name: "A", Subs: []Expr{&Ident{Name: "i"}}},
					RHS: &IntLit{Value: 0},
				}},
			},
		},
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := loopFixture()
	cl := CloneStmt(orig).(*DoLoop)
	// Mutate the clone deeply; the original must be unaffected.
	cl.Var = "k"
	cl.Body[0].(*Assign).LHS.(*ArrayRef).Name = "B"
	cl.Body[1].(*If).Cond.(*Binary).Op = token.LT
	if orig.Var != "i" {
		t.Error("clone shares loop header")
	}
	if orig.Body[0].(*Assign).LHS.(*ArrayRef).Name != "A" {
		t.Error("clone shares LHS")
	}
	if orig.Body[1].(*If).Cond.(*Binary).Op != token.GT {
		t.Error("clone shares condition")
	}
}

func TestInspectVisitsEverything(t *testing.T) {
	loop := loopFixture()
	var arrays, idents, ints int
	Inspect([]Stmt{loop}, func(n Node) bool {
		switch n.(type) {
		case *ArrayRef:
			arrays++
		case *Ident:
			idents++
		case *IntLit:
			ints++
		}
		return true
	})
	if arrays != 3 {
		t.Errorf("arrays = %d, want 3", arrays)
	}
	if idents < 4 {
		t.Errorf("idents = %d, want ≥ 4", idents)
	}
	if ints < 3 {
		t.Errorf("ints = %d, want ≥ 3", ints)
	}
}

func TestInspectPrune(t *testing.T) {
	loop := loopFixture()
	count := 0
	Inspect([]Stmt{loop}, func(n Node) bool {
		count++
		_, isIf := n.(*If)
		return !isIf // prune the if's children
	})
	pruned := count
	count = 0
	Inspect([]Stmt{loop}, func(n Node) bool { count++; return true })
	if pruned >= count {
		t.Errorf("pruning did not reduce visits: %d vs %d", pruned, count)
	}
}

func TestSubstituteIdent(t *testing.T) {
	e := &Binary{Op: token.PLUS,
		L: &Ident{Name: "i"},
		R: &ArrayRef{Name: "A", Subs: []Expr{&Ident{Name: "i"}}}}
	repl := &Binary{Op: token.PLUS, L: &Ident{Name: "i"}, R: &IntLit{Value: 1}}
	out := SubstituteIdent(e, "i", repl)
	if got := ExprString(out); got != "i + 1 + A[i + 1]" {
		t.Errorf("substituted = %q", got)
	}
	// Original unchanged.
	if got := ExprString(e); got != "i + A[i]" {
		t.Errorf("original mutated: %q", got)
	}
}

func TestSubstituteShadowedByInnerLoop(t *testing.T) {
	inner := &DoLoop{Var: "i", Lo: &IntLit{Value: 1}, Hi: &IntLit{Value: 5},
		Body: []Stmt{&Assign{
			LHS: &ArrayRef{Name: "B", Subs: []Expr{&Ident{Name: "i"}}},
			RHS: &IntLit{Value: 0}}}}
	outer := []Stmt{
		&Assign{LHS: &ArrayRef{Name: "A", Subs: []Expr{&Ident{Name: "i"}}}, RHS: &IntLit{Value: 1}},
		inner,
	}
	out := SubstituteIdentStmts(outer, "i", &IntLit{Value: 9})
	if got := StmtsString(out); got != "A[9] := 1\ndo i = 1, 5\n  B[i] := 0\nenddo\n" {
		t.Errorf("substitution with shadowing = %q", got)
	}
}

func TestExprStringPrecedence(t *testing.T) {
	// (a + b) * c needs parentheses; a + b * c does not.
	e1 := &Binary{Op: token.STAR,
		L: &Binary{Op: token.PLUS, L: &Ident{Name: "a"}, R: &Ident{Name: "b"}},
		R: &Ident{Name: "c"}}
	if got := ExprString(e1); got != "(a + b) * c" {
		t.Errorf("got %q", got)
	}
	e2 := &Binary{Op: token.PLUS,
		L: &Ident{Name: "a"},
		R: &Binary{Op: token.STAR, L: &Ident{Name: "b"}, R: &Ident{Name: "c"}}}
	if got := ExprString(e2); got != "a + b * c" {
		t.Errorf("got %q", got)
	}
	// Left-associative subtraction: (a - b) - c prints without parens but
	// a - (b - c) needs them.
	e3 := &Binary{Op: token.MINUS,
		L: &Ident{Name: "a"},
		R: &Binary{Op: token.MINUS, L: &Ident{Name: "b"}, R: &Ident{Name: "c"}}}
	if got := ExprString(e3); got != "a - (b - c)" {
		t.Errorf("got %q", got)
	}
}

func TestProgramString(t *testing.T) {
	p := &Program{Body: []Stmt{loopFixture()}}
	want := "do i = 1, N\n  A[i + 1] := A[i] + x\n  if x > 0 then\n    A[i] := 0\n  endif\nenddo\n"
	if got := ProgramString(p); got != want {
		t.Errorf("got:\n%q\nwant:\n%q", got, want)
	}
}

func TestPosAccessors(t *testing.T) {
	loop := loopFixture()
	loop.DoPos = token.Pos{Line: 2, Col: 1}
	if loop.Pos().Line != 2 {
		t.Error("DoLoop.Pos wrong")
	}
	p := &Program{Body: []Stmt{loop}}
	if p.Pos().Line != 2 {
		t.Error("Program.Pos wrong")
	}
	if (&Program{}).Pos().IsValid() {
		t.Error("empty program has no position")
	}
}
