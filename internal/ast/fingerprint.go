package ast

import "math/bits"

// FP128 is a 128-bit structural fingerprint of canonical AST bytes. Two
// statements have equal fingerprints exactly when their canonical renderings
// (StmtString) are byte-identical, up to hash collisions at ~2^-128; the
// driver's memo cache keys on it instead of the full rendering, and keeps
// the rendering itself behind a debug flag as the collision oracle.
type FP128 struct {
	Hi, Lo uint64
}

// FNV-1a 128-bit parameters. The prime is 2^88 + 2^8 + 0x3b, so the 128-bit
// multiply reduces to one 64×64→128 multiply plus shifts (see mix).
const (
	fnvOffset128Hi = 0x6c62272e07bb0142
	fnvOffset128Lo = 0x62b821756295c58d
	fnvPrime128Lo  = 0x13b // low word of the prime; high word is 1<<24
)

// Hasher streams bytes into an FNV-1a 128-bit state. It satisfies the
// canonical printers' sink, so a statement can be fingerprinted incrementally
// with no intermediate string. The zero value is NOT ready to use; call
// NewHasher.
type Hasher struct {
	hi, lo uint64
}

// NewHasher returns a hasher seeded with the FNV-1a offset basis.
func NewHasher() Hasher {
	return Hasher{hi: fnvOffset128Hi, lo: fnvOffset128Lo}
}

func (h *Hasher) mix(c byte) {
	// FNV-1a: xor the byte in, then multiply the 128-bit state by the
	// prime 2^88 + 0x13b (mod 2^128):
	//   state*prime = (state << 88) + state*0x13b
	// where (state << 88) mod 2^128 contributes only lo<<24 to the high word.
	lo := h.lo ^ uint64(c)
	carry, newLo := bits.Mul64(lo, fnvPrime128Lo)
	h.hi = h.hi*fnvPrime128Lo + carry + lo<<24
	h.lo = newLo
}

// Write implements io.Writer; it never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	for _, c := range p {
		h.mix(c)
	}
	return len(p), nil
}

// WriteString hashes the bytes of s; it never fails.
func (h *Hasher) WriteString(s string) (int, error) {
	for i := 0; i < len(s); i++ {
		h.mix(s[i])
	}
	return len(s), nil
}

// WriteByte hashes one byte; it never fails.
func (h *Hasher) WriteByte(c byte) error {
	h.mix(c)
	return nil
}

// Stmt streams the canonical rendering of s (exactly the bytes of
// StmtString(s, 0)) into the hash.
func (h *Hasher) Stmt(s Stmt) { writeStmt(h, s, 0) }

// Expr streams the canonical rendering of e (exactly the bytes of
// ExprString(e)) into the hash.
func (h *Hasher) Expr(e Expr) { writeExpr(h, e, 0) }

// Sum returns the current 128-bit state.
func (h *Hasher) Sum() FP128 { return FP128{Hi: h.hi, Lo: h.lo} }

// FingerprintStmt returns the structural fingerprint of a single statement.
func FingerprintStmt(s Stmt) FP128 {
	h := NewHasher()
	h.Stmt(s)
	return h.Sum()
}
