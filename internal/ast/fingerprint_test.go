package ast_test

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// hashRef computes the reference FNV-1a 128 of a byte string via the stdlib.
func hashRef(t *testing.T, data []byte) ast.FP128 {
	t.Helper()
	h := fnv.New128a()
	h.Write(data)
	sum := h.Sum(nil)
	return ast.FP128{
		Hi: binary.BigEndian.Uint64(sum[:8]),
		Lo: binary.BigEndian.Uint64(sum[8:]),
	}
}

// TestHasherMatchesStdlibFNV pins the hand-rolled 128-bit multiply against
// hash/fnv's New128a on assorted inputs.
func TestHasherMatchesStdlibFNV(t *testing.T) {
	inputs := []string{
		"",
		"a",
		"do i = 1, 100\n  A[i] := B[i - 1] + 3\nenddo\n",
		string(make([]byte, 300)),
		"\x00\xff\x80 mixed bytes \n\t",
	}
	for _, in := range inputs {
		h := ast.NewHasher()
		h.WriteString(in)
		got := h.Sum()
		want := hashRef(t, []byte(in))
		if got != want {
			t.Errorf("Hasher(%q) = %x/%x, stdlib fnv128a = %x/%x",
				in, got.Hi, got.Lo, want.Hi, want.Lo)
		}
	}
	// Byte-at-a-time and chunked writes must agree.
	h1 := ast.NewHasher()
	h1.WriteString("hello world")
	h2 := ast.NewHasher()
	for _, c := range []byte("hello world") {
		h2.WriteByte(c)
	}
	if h1.Sum() != h2.Sum() {
		t.Error("chunked vs byte-at-a-time sums differ")
	}
}

// TestFingerprintStmtMatchesRendering: the incremental statement fingerprint
// must equal the hash of the canonical rendering — this is the property the
// driver's memo cache relies on (fingerprint partition == rendering partition).
func TestFingerprintStmtMatchesRendering(t *testing.T) {
	srcs := []string{
		"do i = 1, 100\n A[i] := A[i-1]\nenddo",
		"do i = 1, n, 2\n if A[i] > 0 then\n B[i] := 1\n else\n B[i] := -A[i]*2\n endif\nenddo",
		"dim A[10, 20]\ndo j = 1, 10\n do i = 1, 20\n  A[j, i] := A[j, i] + i*j\n enddo\nenddo",
	}
	for _, src := range srcs {
		prog := parser.MustParse(src)
		for _, s := range prog.Body {
			got := ast.FingerprintStmt(s)
			want := hashRef(t, []byte(ast.StmtString(s, 0)))
			if got != want {
				t.Errorf("FingerprintStmt != hash(StmtString) for %q", ast.StmtString(s, 0))
			}
		}
	}
}
