package ast

import (
	"fmt"
	"strings"

	"repro/internal/token"
)

// ExprString renders an expression in source syntax.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

// Operator precedence levels for printing (higher binds tighter).
func prec(op token.Kind) int {
	switch op {
	case token.OR:
		return 1
	case token.AND:
		return 2
	case token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ:
		return 3
	case token.PLUS, token.MINUS:
		return 4
	case token.STAR, token.SLASH, token.MOD:
		return 5
	}
	return 6
}

func writeExpr(b *strings.Builder, e Expr, outer int) {
	switch ex := e.(type) {
	case *Ident:
		b.WriteString(ex.Name)
	case *IntLit:
		fmt.Fprintf(b, "%d", ex.Value)
	case *ArrayRef:
		b.WriteString(ex.Name)
		b.WriteByte('[')
		for i, s := range ex.Subs {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, s, 0)
		}
		b.WriteByte(']')
	case *Binary:
		p := prec(ex.Op)
		if p < outer {
			b.WriteByte('(')
		}
		writeExpr(b, ex.L, p)
		fmt.Fprintf(b, " %s ", ex.Op)
		writeExpr(b, ex.R, p+1)
		if p < outer {
			b.WriteByte(')')
		}
	case *Unary:
		b.WriteString(ex.Op.String())
		if ex.Op == token.NOT {
			b.WriteByte(' ')
		}
		writeExpr(b, ex.X, 6)
	default:
		b.WriteString("<?expr>")
	}
}

// StmtString renders a single statement (and its nested body) in source
// syntax with the given indentation depth.
func StmtString(s Stmt, depth int) string {
	var b strings.Builder
	writeStmt(&b, s, depth)
	return b.String()
}

// ProgramString renders a whole program in source syntax.
func ProgramString(p *Program) string {
	var b strings.Builder
	for _, s := range p.Body {
		writeStmt(&b, s, 0)
	}
	return b.String()
}

// StmtsString renders a statement list in source syntax.
func StmtsString(list []Stmt) string {
	var b strings.Builder
	for _, s := range list {
		writeStmt(&b, s, 0)
	}
	return b.String()
}

func writeStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch st := s.(type) {
	case *DoLoop:
		fmt.Fprintf(b, "%sdo %s = %s, %s", ind, st.Var, ExprString(st.Lo), ExprString(st.Hi))
		if st.Step != nil {
			fmt.Fprintf(b, ", %s", ExprString(st.Step))
		}
		b.WriteByte('\n')
		for _, inner := range st.Body {
			writeStmt(b, inner, depth+1)
		}
		fmt.Fprintf(b, "%senddo\n", ind)
	case *If:
		fmt.Fprintf(b, "%sif %s then\n", ind, ExprString(st.Cond))
		for _, inner := range st.Then {
			writeStmt(b, inner, depth+1)
		}
		if st.Else != nil {
			fmt.Fprintf(b, "%selse\n", ind)
			for _, inner := range st.Else {
				writeStmt(b, inner, depth+1)
			}
		}
		fmt.Fprintf(b, "%sendif\n", ind)
	case *Assign:
		fmt.Fprintf(b, "%s%s := %s\n", ind, ExprString(st.LHS), ExprString(st.RHS))
	case *Dim:
		fmt.Fprintf(b, "%sdim %s[", ind, st.Name)
		for i, sz := range st.Sizes {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, sz, 0)
		}
		b.WriteString("]\n")
	default:
		fmt.Fprintf(b, "%s<?stmt>\n", ind)
	}
}
