package ast

import (
	"strconv"
	"strings"

	"repro/internal/token"
)

// sink is the minimal writer the canonical printers target. It is satisfied
// by *strings.Builder (rendering) and by *Hasher (fingerprinting), so the
// fingerprint of a statement is computed over exactly the bytes StmtString
// would produce — without materializing the string.
type sink interface {
	Write(p []byte) (int, error)
	WriteString(s string) (int, error)
	WriteByte(c byte) error
}

// writeInt writes the decimal rendering of v without allocating.
func writeInt(b sink, v int64) {
	var buf [20]byte
	b.Write(strconv.AppendInt(buf[:0], v, 10))
}

// writeIndent writes two spaces per depth level.
func writeIndent(b sink, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// ExprString renders an expression in source syntax.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

// Operator precedence levels for printing (higher binds tighter).
func prec(op token.Kind) int {
	switch op {
	case token.OR:
		return 1
	case token.AND:
		return 2
	case token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ:
		return 3
	case token.PLUS, token.MINUS:
		return 4
	case token.STAR, token.SLASH, token.MOD:
		return 5
	}
	return 6
}

func writeExpr(b sink, e Expr, outer int) {
	switch ex := e.(type) {
	case *Ident:
		b.WriteString(ex.Name)
	case *IntLit:
		writeInt(b, ex.Value)
	case *ArrayRef:
		b.WriteString(ex.Name)
		b.WriteByte('[')
		for i, s := range ex.Subs {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, s, 0)
		}
		b.WriteByte(']')
	case *Binary:
		p := prec(ex.Op)
		if p < outer {
			b.WriteByte('(')
		}
		writeExpr(b, ex.L, p)
		b.WriteByte(' ')
		b.WriteString(ex.Op.String())
		b.WriteByte(' ')
		writeExpr(b, ex.R, p+1)
		if p < outer {
			b.WriteByte(')')
		}
	case *Unary:
		b.WriteString(ex.Op.String())
		if ex.Op == token.NOT {
			b.WriteByte(' ')
		}
		writeExpr(b, ex.X, 6)
	default:
		b.WriteString("<?expr>")
	}
}

// StmtString renders a single statement (and its nested body) in source
// syntax with the given indentation depth.
func StmtString(s Stmt, depth int) string {
	var b strings.Builder
	writeStmt(&b, s, depth)
	return b.String()
}

// ProgramString renders a whole program in source syntax.
func ProgramString(p *Program) string {
	var b strings.Builder
	for _, s := range p.Body {
		writeStmt(&b, s, 0)
	}
	return b.String()
}

// StmtsString renders a statement list in source syntax.
func StmtsString(list []Stmt) string {
	var b strings.Builder
	for _, s := range list {
		writeStmt(&b, s, 0)
	}
	return b.String()
}

func writeStmt(b sink, s Stmt, depth int) {
	switch st := s.(type) {
	case *DoLoop:
		writeIndent(b, depth)
		b.WriteString("do ")
		b.WriteString(st.Var)
		b.WriteString(" = ")
		writeExpr(b, st.Lo, 0)
		b.WriteString(", ")
		writeExpr(b, st.Hi, 0)
		if st.Step != nil {
			b.WriteString(", ")
			writeExpr(b, st.Step, 0)
		}
		b.WriteByte('\n')
		for _, inner := range st.Body {
			writeStmt(b, inner, depth+1)
		}
		writeIndent(b, depth)
		b.WriteString("enddo\n")
	case *If:
		writeIndent(b, depth)
		b.WriteString("if ")
		writeExpr(b, st.Cond, 0)
		b.WriteString(" then\n")
		for _, inner := range st.Then {
			writeStmt(b, inner, depth+1)
		}
		if st.Else != nil {
			writeIndent(b, depth)
			b.WriteString("else\n")
			for _, inner := range st.Else {
				writeStmt(b, inner, depth+1)
			}
		}
		writeIndent(b, depth)
		b.WriteString("endif\n")
	case *Assign:
		writeIndent(b, depth)
		writeExpr(b, st.LHS, 0)
		b.WriteString(" := ")
		writeExpr(b, st.RHS, 0)
		b.WriteByte('\n')
	case *Dim:
		writeIndent(b, depth)
		b.WriteString("dim ")
		b.WriteString(st.Name)
		b.WriteByte('[')
		for i, sz := range st.Sizes {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, sz, 0)
		}
		b.WriteString("]\n")
	default:
		writeIndent(b, depth)
		b.WriteString("<?stmt>\n")
	}
}
