// Package baseline implements a Rau-style name-propagation analysis
// (B. R. Rau, "Data flow and dependence analysis for instruction level
// parallelism", LCPC 1991) as the comparison point of the paper's §5.
//
// Rau's scheme propagates the textual names of referenced array element
// instances through the loop: definition d from k iterations back is the
// fact ⟨d, k⟩. Each traversal of the loop body ages the facts by one
// iteration, so detecting a recurrence of distance D takes D traversals —
// "the number of iterations over the program is in general unbounded and
// is thus, in practice, limited by a chosen upper bound resulting in a
// limited amount of information". The Duesterwald/Gupta/Soffa framework
// replaces the per-distance fact sets with a single maximal distance and
// converges in ≤ 3 passes regardless of D; this package makes that
// comparison measurable.
package baseline

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/problems"
)

// FactSet maps a tracked class index to the set of instance distances that
// must reach a point.
type FactSet map[int]map[int64]bool

func (f FactSet) clone() FactSet {
	out := make(FactSet, len(f))
	for c, ds := range f {
		cd := make(map[int64]bool, len(ds))
		for d := range ds {
			cd[d] = true
		}
		out[c] = cd
	}
	return out
}

func (f FactSet) equal(o FactSet) bool {
	if len(f) != len(o) {
		return false
	}
	for c, ds := range f {
		ods, ok := o[c]
		if !ok || len(ds) != len(ods) {
			return false
		}
		for d := range ds {
			if !ods[d] {
				return false
			}
		}
	}
	return true
}

// intersect keeps only facts present in both (must-information).
func (f FactSet) intersect(o FactSet) FactSet {
	out := FactSet{}
	for c, ds := range f {
		ods, ok := o[c]
		if !ok {
			continue
		}
		for d := range ds {
			if ods[d] {
				cd := out[c]
				if cd == nil {
					cd = map[int64]bool{}
					out[c] = cd
				}
				cd[d] = true
			}
		}
	}
	return out
}

// Result is the baseline's fixed point.
type Result struct {
	Graph   *ir.Graph
	Classes []*dataflow.Class
	// In holds the per-node fact sets (node entry).
	In []FactSet
	// Passes is the number of body traversals until stabilization (or the
	// limit).
	Passes int
	// Converged reports whether a fixed point was reached within the
	// distance limit.
	Converged bool
	// Limit is the distance bound facts were truncated at.
	Limit int64
}

// Options bounds the baseline.
type Options struct {
	// Limit is the maximal tracked instance distance (Rau's practical
	// bound). Facts older than Limit are dropped. Default 64.
	Limit int64
	// MaxPasses caps body traversals (default 4·Limit).
	MaxPasses int
}

// MustReachingDefs runs the baseline must-reaching-definitions analysis.
func MustReachingDefs(g *ir.Graph, opts *Options) *Result {
	if opts == nil {
		opts = &Options{}
	}
	limit := opts.Limit
	if limit <= 0 {
		limit = 64
	}
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = int(4 * limit)
	}

	// Reuse the framework's class construction so both analyses answer
	// queries about the same entities.
	spec := problems.MustReachingDefs()
	fw := dataflow.Solve(g, spec, &dataflow.Options{MaxPasses: 1})
	res := &Result{Graph: g, Classes: fw.Classes, Limit: limit}

	n := len(g.Nodes)
	in := make([]FactSet, n+1)
	out := make([]FactSet, n+1)
	for i := 1; i <= n; i++ {
		in[i] = FactSet{}
		out[i] = FactSet{}
	}

	order := g.RPO()
	for pass := 1; pass <= maxPasses; pass++ {
		changed := false
		for _, nd := range order {
			var acc FactSet
			first := true
			for _, p := range nd.Preds {
				if first {
					acc = out[p.ID].clone()
					first = false
				} else {
					acc = acc.intersect(out[p.ID])
				}
			}
			if acc == nil {
				acc = FactSet{}
			}
			if pass == 1 {
				// First traversal: back-edge information is still empty;
				// keep the intersection as computed (empty from exit).
			}
			in[nd.ID] = acc
			newOut := transfer(nd, g, res.Classes, acc, limit)
			if !newOut.equal(out[nd.ID]) {
				out[nd.ID] = newOut
				changed = true
			}
		}
		res.Passes = pass
		if !changed {
			res.Converged = true
			break
		}
	}
	res.In = in
	return res
}

// transfer applies node effects to a fact set.
func transfer(nd *ir.Node, g *ir.Graph, classes []*dataflow.Class, in FactSet, limit int64) FactSet {
	out := in.clone()

	if nd.Kind == ir.KindExit {
		aged := FactSet{}
		for c, ds := range out {
			for d := range ds {
				if d+1 <= limit {
					cd := aged[c]
					if cd == nil {
						cd = map[int64]bool{}
						aged[c] = cd
					}
					cd[d+1] = true
				}
			}
		}
		return aged
	}

	// Kills: a definition at this node removes exactly the instances whose
	// element it overwrites (per-distance exact check — the precision Rau
	// buys with unbounded iteration).
	for _, r := range nd.Refs {
		if r.Kind != ir.Def {
			continue
		}
		for ci, c := range classes {
			if c.Array != r.Array {
				continue
			}
			ds := out[ci]
			for d := range ds {
				if killsAt(c, r, d, g) {
					delete(ds, d)
				}
			}
		}
	}

	// Gen: definitions occurring here add the distance-0 instance.
	for _, r := range nd.Refs {
		if r.Kind != ir.Def || !r.Affine || r.FromInner {
			continue
		}
		for ci, c := range classes {
			if sameForm(c, r) {
				cd := out[ci]
				if cd == nil {
					cd = map[int64]bool{}
					out[ci] = cd
				}
				cd[0] = true
			}
		}
	}
	return out
}

func sameForm(c *dataflow.Class, r *ir.Ref) bool {
	return c.Array == r.Array && c.Form.A.Equal(r.Form.A) && c.Form.B.Equal(r.Form.B)
}

// killsAt reports whether killer r overwrites class c's instance from d
// iterations back in some iteration: ∃i ∈ I: f_r(i) = f_c(i−d).
func killsAt(c *dataflow.Class, r *ir.Ref, d int64, g *ir.Graph) bool {
	if !r.Affine || r.FromInner {
		return true // unknown region: kill conservatively
	}
	if sameForm(c, r) {
		return d == 0 // the same textual definition overwrites only itself
	}
	a1, b1, ok1 := c.Form.ConstCoeffs()
	a2, b2, ok2 := r.Form.ConstCoeffs()
	if !ok1 || !ok2 {
		// Symbolic forms: equal linear parts with constant offset are
		// decidable; everything else kills conservatively.
		if c.Form.A.Equal(r.Form.A) {
			diff := c.Form.B.Sub(r.Form.B)
			if q, ok := diff.DivExact(c.Form.A); ok {
				if kd, isC := q.IsConst(); isC {
					return kd == d
				}
			}
		}
		return true
	}
	// a2·i + b2 = a1·(i−d) + b1 for some integer i ≥ 1 (≤ UB if known).
	da := a2 - a1
	rhs := b1 - a1*d - b2
	if da == 0 {
		return rhs == 0
	}
	if rhs%da != 0 {
		return false
	}
	i := rhs / da
	if i < 1 {
		return false
	}
	if g.HasUB && i > g.UBConst {
		return false
	}
	return true
}

// ReachesWithDistance answers the framework-equivalent query: does class c
// must-reach node nd at distance d?
func (r *Result) ReachesWithDistance(nd *ir.Node, classIdx int, d int64) bool {
	return r.In[nd.ID][classIdx][d]
}
