package baseline

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/problems"
	"repro/internal/synth"
)

func buildLoop(t *testing.T, prog *ast.Program) *ir.Graph {
	t.Helper()
	loop := prog.Body[0].(*ast.DoLoop)
	g, err := ir.Build(loop, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAgreesWithFrameworkOnRecurrence: for the distance-D recurrence both
// analyses must agree on every queryable distance ≤ limit.
func TestAgreesWithFrameworkOnRecurrence(t *testing.T) {
	for _, d := range []int64{1, 2, 3, 5, 8} {
		g := buildLoop(t, synth.RecurrenceLoop(d, 0))
		fw := problems.Solve(g, problems.MustReachingDefs())
		bl := MustReachingDefs(g, &Options{Limit: 32})
		if !bl.Converged {
			t.Fatalf("d=%d: baseline did not converge", d)
		}
		for ci, c := range fw.Classes {
			for _, nd := range g.Nodes {
				fwVal := fw.InAt(nd, c)
				pr := fw.Pr(c, nd)
				for dist := pr; dist <= 16; dist++ {
					fwHas := fwVal.Covers(dist)
					blHas := bl.ReachesWithDistance(nd, ci, dist)
					if fwHas != blHas {
						t.Errorf("d=%d node %d class %s dist %d: framework=%v baseline=%v",
							d, nd.ID, c, dist, fwHas, blHas)
					}
				}
			}
		}
	}
}

// TestPassesGrowWithDistance: to capture a distance-d recurrence, Rau's
// truncation bound must be ≥ d, and the traversal count then grows with
// that bound — while the framework stays at ≤ 3 passes for every d. This is
// the paper's practicality claim made measurable: the baseline's cost is
// Θ(limit) because some value always survives the whole loop, whereas the
// chain-lattice summary converges in constant passes.
func TestPassesGrowWithDistance(t *testing.T) {
	prev := 0
	for _, d := range []int64{2, 8, 24} {
		g := buildLoop(t, synth.KilledRecurrenceLoop(d, 0))
		bl := MustReachingDefs(g, &Options{Limit: 2 * d})
		if !bl.Converged {
			t.Fatalf("d=%d: did not converge", d)
		}
		if bl.Passes < int(d) {
			t.Errorf("d=%d: baseline passes = %d, expected ≥ %d", d, bl.Passes, d)
		}
		if bl.Passes <= prev {
			t.Errorf("passes did not grow: %d after %d", bl.Passes, prev)
		}
		prev = bl.Passes

		fw := dataflow.Solve(g, problems.MustReachingDefs(), nil)
		if fw.ChangedPasses > 2 {
			t.Errorf("d=%d: framework changed passes = %d, want ≤ 2", d, fw.ChangedPasses)
		}
	}
}

// TestUnkilledRecurrenceSaturatesAtLimit documents the other face of Rau's
// cost: when nothing kills old instances the exact fact sets keep growing
// and convergence is dictated by the truncation limit, not by the program.
func TestUnkilledRecurrenceSaturatesAtLimit(t *testing.T) {
	g := buildLoop(t, synth.RecurrenceLoop(3, 0))
	for _, limit := range []int64{8, 32} {
		bl := MustReachingDefs(g, &Options{Limit: limit})
		if !bl.Converged {
			t.Fatalf("limit=%d: did not converge", limit)
		}
		if bl.Passes < int(limit) {
			t.Errorf("limit=%d: passes = %d, expected ≥ limit", limit, bl.Passes)
		}
	}
}

// TestLimitLosesInformation: with a truncation limit below the recurrence
// distance the baseline misses the reuse entirely (paper §5: "a limited
// amount of information"), while the framework still reports it.
func TestLimitLosesInformation(t *testing.T) {
	const d = 12
	g := buildLoop(t, synth.RecurrenceLoop(d, 0))
	fw := problems.Solve(g, problems.MustReachingDefs())

	// The use A[i] reuses the definition A[i+d] at distance d.
	reuses := problems.FindReuses(fw)
	if len(reuses) != 1 || reuses[0].Distance != d {
		t.Fatalf("framework reuses = %v, want distance %d", reuses, int64(d))
	}

	short := MustReachingDefs(g, &Options{Limit: d - 2})
	found := false
	for ci := range short.Classes {
		for _, nd := range g.Nodes {
			if short.ReachesWithDistance(nd, ci, d) {
				found = true
			}
		}
	}
	if found {
		t.Error("truncated baseline should not see the distance-d fact")
	}

	full := MustReachingDefs(g, &Options{Limit: d + 4})
	node := reuses[0].At.Node
	ci := reuses[0].From.Index
	if !full.ReachesWithDistance(node, ci, d) {
		t.Error("untruncated baseline must see the distance-d fact")
	}
}

// TestConditionalAgreement: flow-sensitivity matches on branching loops.
func TestConditionalAgreement(t *testing.T) {
	g := buildLoop(t, synth.Loop(synth.Params{Seed: 42, Stmts: 6, Arrays: 2, MaxDist: 3, CondProb: 0.4}))
	fw := problems.Solve(g, problems.MustReachingDefs())
	bl := MustReachingDefs(g, &Options{Limit: 32})
	if !bl.Converged {
		t.Fatal("baseline did not converge")
	}
	for ci, c := range fw.Classes {
		for _, nd := range g.Nodes {
			pr := fw.Pr(c, nd)
			for dist := pr; dist <= 8; dist++ {
				fwHas := fw.InAt(nd, c).Covers(dist)
				blHas := bl.ReachesWithDistance(nd, ci, dist)
				// The framework is allowed to be more conservative (it
				// underestimates with a single maximal distance; the
				// baseline tracks exact sets). It must never claim more.
				if fwHas && !blHas {
					t.Errorf("node %d class %s dist %d: framework claims a fact the exact baseline lacks",
						nd.ID, c, dist)
				}
			}
		}
	}
}

// TestSynthDeterminism: same seed, same program.
func TestSynthDeterminism(t *testing.T) {
	p1 := synth.Loop(synth.Params{Seed: 7, Stmts: 10, Arrays: 3, MaxDist: 5, CondProb: 0.3})
	p2 := synth.Loop(synth.Params{Seed: 7, Stmts: 10, Arrays: 3, MaxDist: 5, CondProb: 0.3})
	if ast.ProgramString(p1) != ast.ProgramString(p2) {
		t.Fatal("generator not deterministic")
	}
	p3 := synth.Loop(synth.Params{Seed: 8, Stmts: 10, Arrays: 3, MaxDist: 5, CondProb: 0.3})
	if ast.ProgramString(p1) == ast.ProgramString(p3) {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestSynthShapes: the special generators have the promised structure.
func TestSynthShapes(t *testing.T) {
	rec := synth.RecurrenceLoop(3, 100)
	g := buildLoop(t, rec)
	if len(g.Nodes) != 2 {
		t.Errorf("recurrence loop nodes = %d, want 2", len(g.Nodes))
	}
	chain := synth.ChainLoop(5, 1, 0)
	g2 := buildLoop(t, chain)
	if len(g2.Nodes) != 7 {
		t.Errorf("chain loop nodes = %d, want 7 (5+1 stmts + exit)", len(g2.Nodes))
	}
	wide := synth.WideLoop(10, 50)
	g3 := buildLoop(t, wide)
	if len(g3.Nodes) != 11 {
		t.Errorf("wide loop nodes = %d, want 11", len(g3.Nodes))
	}
}
