// Package cachefile implements the on-disk container format of the
// persistent solve cache: a small self-describing binary file holding one
// content-addressed payload, hardened against every way a cache directory
// rots in practice.
//
// Layout (all fixed-width fields little-endian):
//
//	offset  size  field
//	0       4     magic "AFC1"
//	4       8     schema hash (engine + spec-set + format generation)
//	12      8     fingerprint hi
//	20      8     fingerprint lo
//	28      8     payload length
//	36      n     payload (varint-encoded by the caller)
//	36+n    8     FNV-1a 64 checksum of bytes [0, 36+n)
//
// Every reader-side failure — short file, wrong magic, foreign schema,
// mismatched fingerprint, bad length, checksum mismatch — returns an error
// and never a partial payload: the caller degrades to a cold solve. Writers
// go through WriteAtomic (unique temp file + rename), so concurrent writers
// sharing one directory race only on which identical bytes win, and readers
// never observe a half-written entry under POSIX rename semantics.
package cachefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Magic identifies the file format ("ArrayFlow Cache").
const Magic = "AFC1"

const headerSize = 4 + 8 + 8 + 8 + 8
const checksumSize = 8

// Error sentinels. All decode failures wrap one of these so callers can
// distinguish "not a cache file / stale format" from "corrupted entry" when
// deciding what to count, while treating both as a cold solve.
var (
	ErrFormat   = errors.New("cachefile: not a cache file or stale format")
	ErrCorrupt  = errors.New("cachefile: corrupted entry")
	ErrMismatch = errors.New("cachefile: fingerprint mismatch")
)

// fnv1a64 is the FNV-1a 64-bit hash of data (inlined so the package has no
// dependencies beyond the standard library's binary encoding).
func fnv1a64(seed uint64, data []byte) uint64 {
	const prime = 1099511628211
	h := seed
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

const fnvOffset64 = 14695981039346656037

// SchemaHash folds the given components (format generation, engine, spec
// names, …) into the 8-byte schema identifier stored in every file header.
// Files written under a different schema are ignored wholesale.
func SchemaHash(parts ...string) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range parts {
		h = fnv1a64(h, []byte(p))
		h = fnv1a64(h, []byte{0})
	}
	return h
}

// Encode frames payload into a checksummed file image for the given schema
// and 128-bit content fingerprint.
func Encode(schema, fpHi, fpLo uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+checksumSize)
	copy(buf, Magic)
	binary.LittleEndian.PutUint64(buf[4:], schema)
	binary.LittleEndian.PutUint64(buf[12:], fpHi)
	binary.LittleEndian.PutUint64(buf[20:], fpLo)
	binary.LittleEndian.PutUint64(buf[28:], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	sum := fnv1a64(fnvOffset64, buf[:headerSize+len(payload)])
	binary.LittleEndian.PutUint64(buf[headerSize+len(payload):], sum)
	return buf
}

// Decode validates a file image against the expected schema and fingerprint
// and returns its payload. The returned slice aliases data.
func Decode(data []byte, schema, fpHi, fpLo uint64) ([]byte, error) {
	if len(data) < headerSize+checksumSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed frame", ErrCorrupt, len(data))
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:4])
	}
	if got := binary.LittleEndian.Uint64(data[4:]); got != schema {
		return nil, fmt.Errorf("%w: schema %016x, want %016x", ErrFormat, got, schema)
	}
	gotHi := binary.LittleEndian.Uint64(data[12:])
	gotLo := binary.LittleEndian.Uint64(data[20:])
	if gotHi != fpHi || gotLo != fpLo {
		return nil, fmt.Errorf("%w: %016x%016x, want %016x%016x", ErrMismatch, gotHi, gotLo, fpHi, fpLo)
	}
	n := binary.LittleEndian.Uint64(data[28:])
	if n != uint64(len(data)-headerSize-checksumSize) {
		return nil, fmt.Errorf("%w: payload length %d in a %d-byte file", ErrCorrupt, n, len(data))
	}
	want := binary.LittleEndian.Uint64(data[len(data)-checksumSize:])
	if got := fnv1a64(fnvOffset64, data[:len(data)-checksumSize]); got != want {
		return nil, fmt.Errorf("%w: checksum %016x, want %016x", ErrCorrupt, got, want)
	}
	return data[headerSize : len(data)-checksumSize], nil
}

// WriteAtomic writes data to path so that concurrent readers and writers
// never observe a partial file: the bytes go to a uniquely-named temp file
// in the same directory, then rename into place. A lost race (two processes
// storing the same entry) leaves whichever identical image renamed last.
func WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// --- Varint payload encoding -----------------------------------------------

// Writer builds a varint-framed payload. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Uint appends an unsigned varint.
func (w *Writer) Uint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Int appends a signed (zigzag) varint.
func (w *Writer) Int(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Bool appends a boolean as one varint.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint(1)
	} else {
		w.Uint(0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a length-prefixed byte block. Blocks let a reader skip over
// a section it wants to defer (the lazy-restore path of the solve cache)
// without parsing the varints inside it.
func (w *Writer) Blob(b []byte) {
	w.Uint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader consumes a varint-framed payload. Every read reports truncation or
// malformed varints through Err; reads after an error return zero values, so
// decoders can read a whole structure and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload for reading.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated or malformed %s at offset %d", ErrCorrupt, what, r.off)
	}
}

// Uint reads an unsigned varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Int reads a signed (zigzag) varint.
func (r *Reader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Uint() != 0 }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("string")
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Blob reads a length-prefixed byte block. The returned slice aliases the
// payload (which aliases the file image), so it stays valid as long as the
// payload does and must not be mutated.
func (r *Reader) Blob() []byte {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("blob")
		return nil
	}
	b := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b
}

// Done reports whether the whole payload has been consumed without error.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.buf) }
