package cachefile

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func samplePayload() []byte {
	var w Writer
	w.Uint(42)
	w.Int(-7)
	w.String("must-reaching-defs")
	w.Bool(true)
	for i := 0; i < 1000; i++ {
		w.Uint(uint64(i * i))
	}
	return w.Bytes()
}

func TestRoundTrip(t *testing.T) {
	payload := samplePayload()
	img := Encode(0xdead, 0x1111, 0x2222, payload)
	got, err := Decode(img, 0xdead, 0x1111, 0x2222)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	r := NewReader(got)
	if v := r.Uint(); v != 42 {
		t.Errorf("Uint = %d, want 42", v)
	}
	if v := r.Int(); v != -7 {
		t.Errorf("Int = %d, want -7", v)
	}
	if v := r.String(); v != "must-reaching-defs" {
		t.Errorf("String = %q", v)
	}
	if !r.Bool() {
		t.Errorf("Bool = false, want true")
	}
	for i := 0; i < 1000; i++ {
		if v := r.Uint(); v != uint64(i*i) {
			t.Fatalf("Uint[%d] = %d, want %d", i, v, i*i)
		}
	}
	if !r.Done() {
		t.Errorf("Done = false after full read (err=%v)", r.Err())
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	img := Encode(1, 2, 3, samplePayload())
	for _, n := range []int{0, 3, headerSize - 1, headerSize, len(img) / 2, len(img) - 1} {
		if _, err := Decode(img[:n], 1, 2, 3); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded, want error", n, len(img))
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	img := Encode(1, 2, 3, samplePayload())
	// Flip one bit at a sample of positions across header, payload, and
	// checksum; every flip must be detected.
	for pos := 0; pos < len(img); pos += 7 {
		bad := append([]byte(nil), img...)
		bad[pos] ^= 0x10
		if _, err := Decode(bad, 1, 2, 3); err == nil {
			t.Errorf("Decode with bit flipped at %d succeeded, want error", pos)
		}
	}
}

func TestDecodeRejectsWrongSchemaAndFingerprint(t *testing.T) {
	img := Encode(1, 2, 3, samplePayload())
	if _, err := Decode(img, 99, 2, 3); !errors.Is(err, ErrFormat) {
		t.Errorf("wrong schema: err = %v, want ErrFormat", err)
	}
	if _, err := Decode(img, 1, 99, 3); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong fp hi: err = %v, want ErrMismatch", err)
	}
	if _, err := Decode(img, 1, 2, 99); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong fp lo: err = %v, want ErrMismatch", err)
	}
	bad := append([]byte(nil), img...)
	copy(bad, "NOPE")
	if _, err := Decode(bad, 1, 2, 3); !errors.Is(err, ErrFormat) {
		t.Errorf("wrong magic: err = %v, want ErrFormat", err)
	}
}

func TestReaderStopsAtFirstError(t *testing.T) {
	var w Writer
	w.String("abc")
	r := NewReader(w.Bytes()[:2]) // length prefix says 3, only 1 byte follows
	if s := r.String(); s != "" {
		t.Errorf("String on truncated payload = %q, want \"\"", s)
	}
	if r.Err() == nil {
		t.Fatal("Err = nil after truncated read")
	}
	if v := r.Uint(); v != 0 {
		t.Errorf("Uint after error = %d, want 0", v)
	}
	if r.Done() {
		t.Error("Done = true after error")
	}
}

func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	img := Encode(7, 8, 9, samplePayload())
	if err := WriteAtomic(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(img) {
		t.Fatal("readback differs from written image")
	}
	// No temp litter after a successful write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries after write, want 1", len(ents))
	}
}

func TestWriteAtomicConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	img := Encode(7, 8, 9, samplePayload())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := WriteAtomic(path, img); err != nil {
				t.Errorf("WriteAtomic: %v", err)
			}
		}()
	}
	wg.Wait()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(got, 7, 8, 9); err != nil {
		t.Fatalf("Decode after concurrent writes: %v", err)
	}
}
