package dataflow

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/poly"
)

// testOracle is a canned RangeOracle: proven bounds keyed by the queried
// polynomial's canonical rendering. Everything else answers "unknown",
// which is exactly the contract a real facts environment honors.
type testOracle struct {
	lower map[string]int64
	upper map[string]int64
}

func (o testOracle) LowerBound(p poly.Poly) (int64, bool) {
	if c, ok := p.IsConst(); ok {
		return c, true
	}
	v, ok := o.lower[p.String()]
	return v, ok
}

func (o testOracle) UpperBound(p poly.Poly) (int64, bool) {
	if c, ok := p.IsConst(); ok {
		return c, true
	}
	v, ok := o.upper[p.String()]
	return v, ok
}

func (o testOracle) ProveNonZero(p poly.Poly) bool {
	if lb, ok := o.LowerBound(p); ok && lb >= 1 {
		return true
	}
	if ub, ok := o.UpperBound(p); ok && ub <= -1 {
		return true
	}
	return false
}

func (o testOracle) Signature() string { return "test-oracle" }

// n is the symbolic scalar the tests bound.
var symN = poly.Sym("n")

// TestSymbolicKillReachesTripCount: tracked X[i+n] killed by X[i] gives the
// symbolic kill distance q = n; with the loop bound also n and the oracle
// proving n − n ≥ 0, no real instance is ever hit and the preserve constant
// collapses to the symbolic top.
func TestSymbolicKillReachesTripCount(t *testing.T) {
	d := symForm(poly.Const(1), symN)
	kill := form(1, 0)
	c := KillContext{Pr: 0, SymUB: symN, HasSymUB: true, Facts: testOracle{}}
	expect(t, PreserveConst(d, kill, true, c), lattice.SymTop(), "kill at distance n with UB n")

	// Without the oracle the same comparison is undecidable and must fall
	// back to the polarity-conservative value, never to the symbolic top.
	cNil := KillContext{Pr: 0, SymUB: symN, HasSymUB: true}
	expect(t, PreserveConst(d, kill, true, cNil), lattice.None(), "no oracle: must claims nothing")
	cNil.May = true
	expect(t, PreserveConst(d, kill, true, cNil), lattice.All(), "no oracle: may preserves everything")
}

// TestSymbolicKillPinnedConstant: facts pinning q = n to exactly 3 must
// reproduce the constant-kill answer p = 2.
func TestSymbolicKillPinnedConstant(t *testing.T) {
	d := symForm(poly.Const(1), symN)
	kill := form(1, 0)
	o := testOracle{lower: map[string]int64{symN.String(): 3}, upper: map[string]int64{symN.String(): 3}}
	c := KillContext{Pr: 0, Facts: o}
	expect(t, PreserveConst(d, kill, true, c), lattice.D(2), "kill pinned at distance 3")
}

// TestSymbolicKillBelowRange: a kill distance proven below the tracked
// range start touches no tracked instance.
func TestSymbolicKillBelowRange(t *testing.T) {
	d := symForm(poly.Const(1), symN)
	kill := form(1, 0)
	o := testOracle{upper: map[string]int64{symN.String(): 0}}
	c := KillContext{Pr: 1, Facts: o}
	expect(t, PreserveConst(d, kill, true, c), lattice.All(), "kill below the tracked range")
}

// TestSymbolicKillOneSided: with q = n ∈ [2, ?] a must-problem may only
// claim the proven prefix n−1 ≥ 1; with n ∈ [2, 5] a may-problem rounds
// up to 4.
func TestSymbolicKillOneSided(t *testing.T) {
	d := symForm(poly.Const(1), symN)
	kill := form(1, 0)

	oLo := testOracle{lower: map[string]int64{symN.String(): 2}}
	expect(t, PreserveConst(d, kill, true, KillContext{Pr: 0, Facts: oLo}),
		lattice.D(1), "must rounds the preserved prefix down to lo−1")

	oBoth := testOracle{lower: map[string]int64{symN.String(): 2}, upper: map[string]int64{symN.String(): 5}}
	expect(t, PreserveConst(d, kill, true, KillContext{Pr: 0, May: true, Facts: oBoth}),
		lattice.D(4), "may rounds the preserved prefix up to hi−1")

	// Lower bound alone gives may nothing definite to cap with: everything
	// is (over-)preserved.
	expect(t, PreserveConst(d, kill, true, KillContext{Pr: 0, May: true, Facts: oLo}),
		lattice.All(), "may with open upper end overestimates")
}

// TestInvariantLocationsProvedDistinct: two loop-invariant references
// X[n] and X[0] alias exactly when n = 0; the oracle's nonzero proof
// separates them.
func TestInvariantLocationsProvedDistinct(t *testing.T) {
	d := symForm(poly.Const(0), symN)
	kill := form(0, 0)
	o := testOracle{lower: map[string]int64{symN.String(): 1}}
	expect(t, PreserveConst(d, kill, true, KillContext{Pr: 0, Facts: o}),
		lattice.All(), "X[n] vs X[0] with n ≥ 1")
	expect(t, PreserveConst(d, kill, true, KillContext{Pr: 0}),
		lattice.None(), "X[n] vs X[0] without facts stays conservative")
}

// TestSymTopIsChainTop: the symbolic top is the chain lattice's ⊤ — the
// provenance-documenting constructor must not mint a new element, or the
// packed solver's two-bit encoding would no longer cover the lattice.
func TestSymTopIsChainTop(t *testing.T) {
	if !lattice.SymTop().Eq(lattice.All()) {
		t.Fatal("SymTop() must equal All()")
	}
	if lattice.SymTop().Cmp(lattice.D(1<<30)) <= 0 {
		t.Fatal("SymTop() must sit above every finite distance")
	}
}
