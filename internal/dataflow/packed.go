// The packed solver engine: the same three-pass framework as the reference
// implementation in solve.go, rebuilt around flat storage so the constant
// factor is bounded by lattice arithmetic rather than allocator traffic.
//
//   - IN/OUT tuples live in two flat slabs (lattice.Slab) indexed by node ID:
//     two backing allocations per solve instead of one tuple per node.
//   - Flow functions compile into one flowOp arena addressed by
//     starts[nodeID·m + classIndex]; membership tests go through a dense
//     ref-ID → class-index array, never a map[*ir.Ref].
//   - pr(class, node) is a per-class bitset built by OR-ing the graph's
//     packed precedes rows over the class members.
//   - applyFlow writes into a single scratch tuple reused across every node
//     and pass, making the steady-state iteration passes allocation-free
//     (pinned by an AllocsPerRun test).
//
// A solveCtx is shareable across problem instances on the same graph:
// SolveAll reuses class discovery (per generate-predicate signature), node
// orderings, and the pr bitsets across the four standard problems.
package dataflow

import (
	"time"

	"repro/internal/ir"
	"repro/internal/lattice"
)

// solveCtx carries everything derivable from the graph alone, shared by all
// specs solved through one SolveAll call.
type solveCtx struct {
	g   *ir.Graph
	n   int
	fwd []*ir.Node // reverse postorder of the body DAG
	bwd []*ir.Node // reverse of fwd, built on first backward spec

	// shared marks a context that solves several specs (SolveAll): only
	// then do the memo tables below get built. A single-spec context skips
	// the signature keys and memo maps entirely — there is nothing to
	// share with.
	shared bool
	// tables memoizes class discovery by generate-predicate signature (the
	// Gen bitmask over g.Refs): specs with the same signature — e.g.
	// must-reaching defs and δ-busy stores, both G = defs — share one table.
	tables map[string]*classTable
	// prZero memoizes the per-class pr bitsets by (table, direction).
	prZero map[prKey][][]uint64
}

type prKey struct {
	table    *classTable
	backward bool
}

func newSolveCtx(g *ir.Graph) *solveCtx {
	return &solveCtx{g: g, n: len(g.Nodes), fwd: g.RPO()}
}

// order returns the iteration order for the direction, building the
// backward order on first use.
func (ctx *solveCtx) order(backward bool) []*ir.Node {
	if !backward {
		return ctx.fwd
	}
	if ctx.bwd == nil {
		ctx.bwd = make([]*ir.Node, len(ctx.fwd))
		for i, nd := range ctx.fwd {
			ctx.bwd[len(ctx.fwd)-1-i] = nd
		}
	}
	return ctx.bwd
}

// tableFor returns the class table for the spec's generate predicate. In a
// shared context the table is memoized by the predicate's decision vector
// over the graph's references, so specs with the same signature (e.g.
// must-reaching defs and δ-busy stores, both G = defs) share one table.
func (ctx *solveCtx) tableFor(spec *Spec, sc *Scratch) *classTable {
	if !ctx.shared {
		return buildClassTable(ctx.g, spec.Gen)
	}
	mask := sc.byteRow(len(ctx.g.Refs))
	for i, r := range ctx.g.Refs {
		if spec.Gen(r) {
			mask[i] = '1'
		} else {
			mask[i] = '0'
		}
	}
	key := string(mask)
	ct, ok := ctx.tables[key]
	if !ok {
		ct = buildClassTable(ctx.g, spec.Gen)
		if ctx.tables == nil {
			ctx.tables = map[string]*classTable{}
		}
		ctx.tables[key] = ct
	}
	return ct
}

// prZeroFor returns, per class, the bitset of node IDs with pr = 0: nodes
// that some member precedes (forward) or that precede some member
// (backward). One word-wide OR per member replaces a Precedes call per
// member per node per class.
func (ctx *solveCtx) prZeroFor(ct *classTable, backward bool) [][]uint64 {
	k := prKey{ct, backward}
	if ctx.shared {
		if pz, ok := ctx.prZero[k]; ok {
			return pz
		}
	}
	g := ctx.g
	words := g.BitWords()
	backing := make([]uint64, len(ct.classes)*words)
	pz := make([][]uint64, len(ct.classes))
	for i, c := range ct.classes {
		row := backing[i*words : (i+1)*words]
		for _, mem := range c.Members {
			var src []uint64
			if backward {
				src = g.PrecededByRow(mem.Node.ID)
			} else {
				src = g.PrecedesRow(mem.Node.ID)
			}
			for w := range row {
				row[w] |= src[w]
			}
		}
		pz[i] = row
	}
	if ctx.shared {
		if ctx.prZero == nil {
			ctx.prZero = map[prKey][][]uint64{}
		}
		ctx.prZero[k] = pz
	}
	return pz
}

func bitGet(row []uint64, i int) bool {
	return row[i>>6]&(1<<(uint(i)&63)) != 0
}

func bitSet(row []uint64, i int) {
	row[i>>6] |= 1 << (uint(i) & 63)
}

// packedProgram is the compiled form of every flow function of one problem
// instance: one op arena plus monotone start offsets per (node, class) slot
// idx = nodeID·m + classIndex, and a generate bitset per slot feeding the
// initialization pass's overestimate.
type packedProgram struct {
	arena  []flowOp
	starts []int32
	gen    []uint64
}

func (p *packedProgram) ops(idx int) []flowOp {
	return p.arena[p.starts[idx]:p.starts[idx+1]]
}

// solver is the per-spec iteration state; its pass methods are allocation-
// free once constructed.
type solver struct {
	res     *Result
	g       *ir.Graph
	order   []*ir.Node
	entry   *ir.Node
	prog    *packedProgram
	scratch lattice.Tuple
	sc      *Scratch
	m       int
	may     bool
	back    bool
}

// preds returns the meet inputs of nd for the solve direction.
func (st *solver) preds(nd *ir.Node) []*ir.Node {
	if st.back {
		return nd.Succs
	}
	return nd.Preds
}

// solve runs one problem instance through the packed engine.
func (ctx *solveCtx) solve(spec *Spec, opts *Options, sc *Scratch) *Result {
	start := time.Now()
	res := &Result{Graph: ctx.g, Spec: spec}
	defer func() { res.Elapsed = time.Since(start) }()

	ct := ctx.tableFor(spec, sc)
	res.adoptClasses(ct)
	m := len(ct.classes)
	n := ctx.n
	res.prZero = ctx.prZeroFor(ct, spec.Backward)

	res.In, res.inBack = pooledSlab(n, m)
	res.Out, res.outBack = pooledSlab(n, m)

	prog := ctx.compile(spec, ct, res.prZero)
	res.prog = prog // ApplyFlow serves views into the arena on demand

	st := &solver{
		res:     res,
		g:       ctx.g,
		order:   ctx.order(spec.Backward),
		entry:   ctx.g.Entry,
		prog:    prog,
		scratch: sc.tupleRow(m),
		sc:      sc,
		m:       m,
		may:     spec.May,
		back:    spec.Backward,
	}
	if spec.Backward {
		st.entry = ctx.g.Exit
	}

	// --- Initialization (paper §3.2 for must, §3.3 for may) -------------
	switch {
	case spec.May:
		startVal := lattice.All()
		if opts.MayTopStart {
			startVal = lattice.None()
		}
		for id := 1; id <= n; id++ {
			res.In[id].Fill(startVal)
			res.Out[id].Fill(startVal)
		}
	case opts.SkipInitPass:
		for id := 1; id <= n; id++ {
			res.In[id].Fill(lattice.All())
			res.Out[id].Fill(lattice.All())
		}
	default:
		st.initPass()
		res.InitIn = lattice.CloneSlab(res.In)
		res.InitOut = lattice.CloneSlab(res.Out)
	}

	// --- Fixed point iteration ------------------------------------------
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 64
	}
	for pass := 1; pass <= maxPasses; pass++ {
		changed := st.iteratePass()
		res.Passes = pass
		if changed {
			res.ChangedPasses++
		}
		if opts.CollectTrace {
			res.Trace = append(res.Trace, TraceEntry{
				In:  lattice.CloneSlab(res.In),
				Out: lattice.CloneSlab(res.Out),
			})
		}
		if !changed {
			break
		}
	}
	return res
}

// initPass runs the paper's initialization pass for must-problems: meet
// over already-visited predecessors (back-edge inputs excluded), then the
// generate overestimate from the compiled program's gen bits.
func (st *solver) initPass() {
	res := st.res
	visited := st.sc.boolRow(len(st.g.Nodes) + 1)
	for _, nd := range st.order {
		res.NodeVisits++
		in := res.In[nd.ID]
		if nd == st.entry {
			in.Fill(lattice.None())
		} else {
			in.Fill(lattice.All())
			any := false
			for _, p := range st.preds(nd) {
				if !visited[p.ID] {
					continue // back-edge predecessor: excluded from init
				}
				in.MeetInto(res.Out[p.ID], false)
				any = true
			}
			if !any {
				in.Fill(lattice.None())
			}
		}
		out := res.Out[nd.ID]
		copy(out, in)
		base := nd.ID * st.m
		for ci := 0; ci < st.m; ci++ {
			if bitGet(st.prog.gen, base+ci) {
				out[ci] = lattice.All()
			}
		}
		visited[nd.ID] = true
	}
}

// iteratePass runs one fixed-point pass over every node, reporting whether
// any OUT tuple changed. It allocates nothing: the meet writes into the
// slab-backed IN row and the flow functions write into the shared scratch
// tuple, which is copied over OUT only on change.
func (st *solver) iteratePass() bool {
	res := st.res
	g := st.g
	m := st.m
	changed := false
	for _, nd := range st.order {
		res.NodeVisits++
		in := res.In[nd.ID]
		ps := st.preds(nd)
		if len(ps) > 0 {
			if st.may {
				in.Fill(lattice.None())
			} else {
				in.Fill(lattice.All())
			}
			for _, p := range ps {
				in.MeetInto(res.Out[p.ID], st.may)
			}
		}
		res.FlowApps += m
		scratch := st.scratch
		if nd.Kind == ir.KindExit {
			for ci, x := range in {
				v := x.Inc()
				if g.HasUB {
					v = v.Clamp(g.UBConst)
				}
				scratch[ci] = v
			}
		} else {
			base := nd.ID * m
			starts := st.prog.starts
			arena := st.prog.arena
			for ci, x := range in {
				for _, op := range arena[starts[base+ci]:starts[base+ci+1]] {
					if op.gen {
						x = lattice.Max(x, lattice.D(0))
					} else {
						x = lattice.Min(x, op.pres)
					}
				}
				scratch[ci] = x
			}
		}
		out := res.Out[nd.ID]
		if !scratch.Eq(out) {
			changed = true
			copy(out, scratch)
		}
	}
	return changed
}

// compile builds the packed program: every (node, class) flow function
// appended to one arena in slot order, so starts is monotone and a slot's
// ops are arena[starts[idx]:starts[idx+1]]. Class membership is decided by
// the table's dense refClass array; no maps are consulted.
func (ctx *solveCtx) compile(spec *Spec, ct *classTable, prZero [][]uint64) *packedProgram {
	g := ctx.g
	m := len(ct.classes)
	total := (ctx.n + 1) * m
	prog := &packedProgram{
		// Pooled storage: the arena capacity covers the common case of at
		// most one op per reference so it rarely regrows; starts below m
		// (the unused node ID 0's slots) and the gen bitset must be zeroed
		// because the pools return dirty buffers.
		arena:  opPool.get(len(g.Refs) + 4)[:0],
		starts: int32Pool.get(total + 1),
		gen:    u64Pool.get((total + 63) / 64),
	}
	clear(prog.starts[:m])
	clear(prog.gen)
	idx := m // slots 0..m-1 belong to the unused node ID 0 and stay empty
	for _, nd := range g.Nodes {
		for _, c := range ct.classes {
			prog.starts[idx] = int32(len(prog.arena))
			prog.arena = appendOps(prog.arena, g, spec, ct, c, nd, prZero[c.Index])
			idx++
		}
	}
	for ; idx <= total; idx++ {
		prog.starts[idx] = int32(len(prog.arena))
	}
	for i := 0; i < total; i++ {
		for _, op := range prog.ops(i) {
			if op.gen {
				bitSet(prog.gen, i)
				break
			}
		}
	}
	return prog
}

// appendOps emits node nd's flow function for class c onto the arena. The
// emitted sequence is definitionally identical to the reference compiler's
// compileNodeClass: reference effects in execution order, reversed for
// backward problems, with summary nodes reordered by polarity (must:
// generates before kills; may: kills before generates) and consecutive
// preserve caps merged.
func appendOps(arena []flowOp, g *ir.Graph, spec *Spec, ct *classTable, c *Class, nd *ir.Node, prZeroC []uint64) []flowOp {
	opsStart := len(arena)
	nodePr := int64(1)
	if bitGet(prZeroC, nd.ID) {
		nodePr = 0
	}
	want := int32(c.Index)
	genSeen := false

	emit := func(r *ir.Ref) {
		if ct.refClass[r.ID] == want {
			arena = append(arena, flowOp{gen: true})
			genSeen = true
			return
		}
		if !spec.Kill(r) || r.Array != c.Array {
			return
		}
		pr := nodePr
		if genSeen {
			// A member of the class already executed within this node
			// before the kill: the distance-0 instance is in range.
			pr = 0
		}
		kctx := KillContext{
			Pr:       pr,
			May:      spec.May,
			Backward: spec.Backward,
			UB:       g.UBConst,
			HasUB:    g.HasUB,
		}
		var p lattice.Dist
		if r.FromInner && r.HasRegion {
			p = PreserveAgainstRegion(c.Form, r.RegionLo, r.RegionHi, kctx)
		} else {
			p = PreserveConst(c.Form, r.Form, r.Affine && !r.FromInner, kctx)
		}
		if p.IsAll() {
			return // identity cap
		}
		if n := len(arena); n > opsStart && !arena[n-1].gen {
			arena[n-1].pres = lattice.Min(arena[n-1].pres, p)
			return
		}
		arena = append(arena, flowOp{pres: p})
	}

	// phase: 0 = members of c only, 1 = non-members only, 2 = all.
	walk := func(phase int, reverse bool) {
		refs := nd.Refs
		for k := 0; k < len(refs); k++ {
			r := refs[k]
			if reverse {
				r = refs[len(refs)-1-k]
			}
			isMember := ct.refClass[r.ID] == want
			if phase == 0 && !isMember || phase == 1 && isMember {
				continue
			}
			emit(r)
		}
	}

	if nd.Kind != ir.KindSummary {
		walk(2, spec.Backward)
		return arena
	}
	// Summary nodes collapse an inner loop of unknown internal order: the
	// safe approximation applies generates before kills for must-problems
	// (underestimate) and kills before generates for may-problems
	// (overestimate); backward solves reverse the whole sequence.
	first, second := 0, 1 // must, forward: gens then kills
	if spec.May {
		first, second = 1, 0
	}
	if spec.Backward {
		first, second = second, first
	}
	walk(first, spec.Backward)
	walk(second, spec.Backward)
	return arena
}
