// The packed solver engine: the same three-pass framework as the reference
// implementation in solve.go, rebuilt around flat storage and word-level
// parallelism so the constant factor is bounded by lattice arithmetic rather
// than allocator traffic.
//
//   - IN/OUT state lives in word-packed rows (lattice.Packing): one uint64
//     holds 8 or 16 class cells, so meets, flow applications, and the
//     changed-check run whole words at a time with SWAR min/max kernels.
//   - Flow functions compile into one flowOp arena addressed by
//     starts[nodeID·m + classIndex]; membership tests go through a dense
//     ref-ID → class-index array, never a map[*ir.Ref]. Over the chain
//     lattice every such op sequence collapses to x ↦ min(max(x, lo), hi),
//     so the iteration applies a whole node's flow across all classes as
//     two packed rows (LO/HI) per node — one ApplyBounds sweep per word.
//   - pr(class, node) is a per-class bitset built by straight-line word ORs
//     over the graph's packed precedes rows, one pass over the references.
//   - When even 16-bit lanes cannot hold the finite distances a solve may
//     produce, the engine falls back to the scalar op-walk over the same
//     arena (identical results, pinned by the differential suites).
//
// Every solve carries a fuel budget (Options.Fuel): iteration passes debit
// one unit per flow application, and exhaustion terminates the solve by
// degrading every tuple to the claim-nothing value for the problem's
// polarity (must → ⊥ "no instance", may → ⊤ "all instances"), so downstream
// consumers can only lose precision, never soundness. The default budget is
// derived from MaxPasses·nodes·classes and can never bind; an explicit
// budget bounds worst-case solve latency.
//
// A solveCtx is shareable across problem instances on the same graph:
// SolveAll reuses class discovery (per generate-predicate signature), node
// orderings, and the pr bitsets across the four standard problems.
package dataflow

import (
	"time"

	"repro/internal/ir"
	"repro/internal/lattice"
	"repro/internal/sema"
)

// debugForceScalar disables the word-packed fast path so tests can drive
// the scalar fallback over the full differential corpus.
var debugForceScalar = false

// solveCtx carries everything derivable from the graph alone, shared by all
// specs solved through one SolveAll call.
type solveCtx struct {
	g   *ir.Graph
	n   int
	fwd []*ir.Node // reverse postorder of the body DAG
	bwd []*ir.Node // reverse of fwd, built on first backward spec

	// shared marks a context that solves several specs (SolveAll): only
	// then do the memo tables below get built. A single-spec context skips
	// the signature keys and memo maps entirely — there is nothing to
	// share with.
	shared bool
	// tables memoizes class discovery by generate-predicate signature (the
	// Gen bitmask over g.Refs): specs with the same signature — e.g.
	// must-reaching defs and δ-busy stores, both G = defs — share one table.
	tables map[string]*classTable
	// prZero memoizes the per-class pr bitsets by (table, direction).
	prZero map[prKey][][]uint64
}

type prKey struct {
	table    *classTable
	backward bool
}

func newSolveCtx(g *ir.Graph) *solveCtx {
	return &solveCtx{g: g, n: len(g.Nodes), fwd: g.RPO()}
}

// order returns the iteration order for the direction, building the
// backward order on first use.
func (ctx *solveCtx) order(backward bool) []*ir.Node {
	if !backward {
		return ctx.fwd
	}
	if ctx.bwd == nil {
		ctx.bwd = make([]*ir.Node, len(ctx.fwd))
		for i, nd := range ctx.fwd {
			ctx.bwd[len(ctx.fwd)-1-i] = nd
		}
	}
	return ctx.bwd
}

// tableFor returns the class table for the spec's generate predicate. In a
// shared context the table is memoized by the predicate's decision vector
// over the graph's references, so specs with the same signature (e.g.
// must-reaching defs and δ-busy stores, both G = defs) share one table.
func (ctx *solveCtx) tableFor(spec *Spec, sc *Scratch) *classTable {
	if !ctx.shared {
		return buildClassTable(ctx.g, spec.Gen)
	}
	mask := sc.byteRow(len(ctx.g.Refs))
	for i, r := range ctx.g.Refs {
		if spec.Gen(r) {
			mask[i] = '1'
		} else {
			mask[i] = '0'
		}
	}
	key := string(mask)
	ct, ok := ctx.tables[key]
	if !ok {
		ct = buildClassTable(ctx.g, spec.Gen)
		if ctx.tables == nil {
			ctx.tables = map[string]*classTable{}
		}
		ctx.tables[key] = ct
	}
	return ct
}

// prZeroFor returns, per class, the bitset of node IDs with pr = 0: nodes
// that some member precedes (forward) or that precede some member
// (backward). The construction is one linear pass over the graph's
// references: each generating reference ORs its node's packed precedes row
// into its class's bitset, straight-line word ORs with no per-node Precedes
// calls. Consecutive members in the same node OR the same row, so the pass
// skips the duplicate.
func (ctx *solveCtx) prZeroFor(ct *classTable, backward bool) [][]uint64 {
	k := prKey{ct, backward}
	if ctx.shared {
		if pz, ok := ctx.prZero[k]; ok {
			return pz
		}
	}
	g := ctx.g
	words := g.BitWords()
	backing := make([]uint64, len(ct.classes)*words)
	pz := make([][]uint64, len(ct.classes))
	for i := range pz {
		pz[i] = backing[i*words : (i+1)*words]
	}
	lastNode := make([]int32, len(ct.classes))
	for i := range lastNode {
		lastNode[i] = -1
	}
	for _, r := range g.Refs {
		ci := ct.refClass[r.ID]
		if ci < 0 {
			continue
		}
		id := int32(r.Node.ID)
		if lastNode[ci] == id {
			continue // same node already OR-ed for this class
		}
		lastNode[ci] = id
		var src []uint64
		if backward {
			src = g.PrecededByRow(int(id))
		} else {
			src = g.PrecedesRow(int(id))
		}
		row := pz[ci]
		for w := range row {
			row[w] |= src[w]
		}
	}
	if ctx.shared {
		if ctx.prZero == nil {
			ctx.prZero = map[prKey][][]uint64{}
		}
		ctx.prZero[k] = pz
	}
	return pz
}

func bitGet(row []uint64, i int) bool {
	return row[i>>6]&(1<<(uint(i)&63)) != 0
}

func bitSet(row []uint64, i int) {
	row[i>>6] |= 1 << (uint(i) & 63)
}

// packedProgram is the compiled form of every flow function of one problem
// instance: one op arena plus monotone start offsets per (node, class) slot
// idx = nodeID·m + classIndex, and a generate bitset per slot feeding the
// initialization pass's overestimate.
type packedProgram struct {
	arena  []flowOp
	starts []int32
	gen    []uint64
}

func (p *packedProgram) ops(idx int) []flowOp {
	return p.arena[p.starts[idx]:p.starts[idx+1]]
}

// boundsOf collapses a compiled op sequence to its clamp form
// f(x) = min(max(x, lo), hi). Over a chain lattice the composition of
// generates (max with 0) and preserve caps (min with p) always has this
// shape: a generate raises both bounds to at least 0 (distributivity of max
// over min on a chain), a cap lowers hi and renormalizes lo ≤ hi.
func boundsOf(ops []flowOp) (lo, hi lattice.Dist) {
	lo, hi = lattice.None(), lattice.All()
	for _, op := range ops {
		if op.gen {
			lo = lattice.Max(lo, lattice.D(0))
			hi = lattice.Max(hi, lattice.D(0))
		} else {
			hi = lattice.Min(hi, op.pres)
			lo = lattice.Min(lo, hi)
		}
	}
	return lo, hi
}

// solver is the per-spec iteration state; its pass methods are allocation-
// free once prepared.
type solver struct {
	res     *Result
	g       *ir.Graph
	order   []*ir.Node
	entry   *ir.Node
	prog    *packedProgram
	scratch lattice.Tuple
	sc      *Scratch
	m       int
	may     bool
	back    bool

	fuel      int64
	exhausted bool

	// Word-packed fast path: active when every finite distance the solve
	// can produce fits an 8- or 16-bit lane.
	wide  bool
	pk    lattice.Packing
	words int
	inW   []uint64 // packed IN rows, (n+1)·words
	outW  []uint64 // packed OUT rows
	loW   []uint64 // per-node batch lower bounds
	hiW   []uint64 // per-node batch upper bounds
	genW  []uint64 // per-node generate lanes (All in generating cells)
	scrW  []uint64 // one-row scratch
	ubE   uint64   // encoded exit clamp threshold
	clamp bool
}

// preds returns the meet inputs of nd for the solve direction.
func (st *solver) preds(nd *ir.Node) []*ir.Node {
	if st.back {
		return nd.Succs
	}
	return nd.Preds
}

// rowW returns packed row id of a flat backing.
func (st *solver) rowW(flat []uint64, id int) []uint64 {
	return flat[id*st.words : (id+1)*st.words]
}

// resolveFuel returns the solve's fuel budget: the explicit option when set,
// otherwise a derived default of MaxPasses·nodes·classes plus slack — an
// upper bound on the iteration's total flow applications, so the default
// can never bind and fuel changes nothing unless a caller asks for it.
func resolveFuel(opts *Options, maxPasses, n, m int) int64 {
	if opts.Fuel > 0 {
		return opts.Fuel
	}
	if m < 1 {
		m = 1
	}
	return int64(maxPasses)*int64(n)*int64(m) + 64
}

// prepare builds the per-spec iteration state: class table, compiled
// program, packed batch rows (when the lane bound allows), and the fuel
// budget. After prepare, initStage and iteratePass allocate nothing.
func (ctx *solveCtx) prepare(spec *Spec, opts *Options, sc *Scratch) *solver {
	res := &Result{Graph: ctx.g, Spec: spec}
	res.SetOracle(opts.Facts)
	ct := ctx.tableFor(spec, sc)
	res.adoptClasses(ct)
	m := len(ct.classes)
	n := ctx.n
	res.prZero = ctx.prZeroFor(ct, spec.Backward)

	res.In, res.inBack = pooledSlab(n, m)
	res.Out, res.outBack = pooledSlab(n, m)

	prog := ctx.compile(spec, ct, res.prZero, opts.Facts)
	res.prog = prog // ApplyFlow serves views into the arena on demand

	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 64
	}
	st := &solver{
		res:     res,
		g:       ctx.g,
		order:   ctx.order(spec.Backward),
		entry:   ctx.g.Entry,
		prog:    prog,
		scratch: sc.tupleRow(m),
		sc:      sc,
		m:       m,
		may:     spec.May,
		back:    spec.Backward,
		fuel:    resolveFuel(opts, maxPasses, n, m),
	}
	res.FuelBudget = st.fuel
	if spec.Backward {
		st.entry = ctx.g.Exit
	}
	st.prepareWide(opts, maxPasses)
	return st
}

// prepareWide selects the lane width and builds the packed batch rows. The
// finite distances a solve can produce are bounded by the largest finite
// preserve constant in the program plus one increment per iteration pass
// (meets and clamps introduce no new finite values), so a lane that holds
// maxCap + maxPasses with slack holds every intermediate value.
func (st *solver) prepareWide(opts *Options, maxPasses int) {
	if st.m == 0 || debugForceScalar {
		return
	}
	var maxCap int64
	for _, op := range st.prog.arena {
		if !op.gen {
			if v, ok := op.pres.Finite(); ok && v > maxCap {
				maxCap = v
			}
		}
	}
	bound := maxCap + int64(maxPasses) + 2
	var lane uint
	switch {
	case bound <= lattice.MaxFiniteForLane(lattice.Lane8):
		lane = lattice.Lane8
	case bound <= lattice.MaxFiniteForLane(lattice.Lane16):
		lane = lattice.Lane16
	default:
		return // scalar fallback: distances exceed 16-bit lanes
	}
	st.wide = true
	st.pk = lattice.NewPacking(st.m, lane)
	st.words = st.pk.Words
	n := len(st.g.Nodes)
	rows := (n + 1) * st.words
	st.inW = st.sc.u64Row(0, rows)
	st.outW = st.sc.u64Row(1, rows)
	st.loW = st.sc.u64Row(2, rows)
	st.hiW = st.sc.u64Row(3, rows)
	st.genW = st.sc.u64Row(4, rows)
	st.scrW = st.sc.u64Row(5, st.words)
	// Default bounds are the identity clamp lo = ⊥, hi = ⊤; only slots with
	// compiled ops deviate, and the arena holds at most one op per
	// reference, so the sparse pass below touches O(refs) cells, not O(n·m).
	// hi's tail lanes may hold ⊤ safely: ApplyBounds computes
	// min(max(0, 0), hi) = 0 on tails regardless.
	clear(st.loW)
	for i := range st.hiW {
		st.hiW[i] = ^uint64(0)
	}
	clear(st.genW)

	pk := &st.pk
	starts := st.prog.starts
	for _, nd := range st.g.Nodes {
		base := nd.ID * st.m
		for ci := 0; ci < st.m; ci++ {
			idx := base + ci
			if starts[idx] == starts[idx+1] {
				continue
			}
			l, h := boundsOf(st.prog.ops(idx))
			pk.SetCell(st.rowW(st.loW, nd.ID), ci, pk.Encode(l))
			pk.SetCell(st.rowW(st.hiW, nd.ID), ci, pk.Encode(h))
			if bitGet(st.prog.gen, idx) {
				pk.SetCell(st.rowW(st.genW, nd.ID), ci, pk.All)
			}
		}
	}
	if st.g.HasUB && st.g.UBConst > 0 && uint64(st.g.UBConst) < pk.All {
		// Encoded e = d+1, so the scalar clamp condition d ≥ ub−1 becomes
		// e ≥ ub. Thresholds at or beyond the lane's All can never fire
		// (finite lanes stay below them), matching the scalar engine.
		st.clamp = true
		st.ubE = uint64(st.g.UBConst)
	}
}

// solve runs one problem instance through the packed engine.
func (ctx *solveCtx) solve(spec *Spec, opts *Options, sc *Scratch) *Result {
	start := time.Now()
	st := ctx.prepare(spec, opts, sc)
	res := st.res
	defer func() { res.Elapsed = time.Since(start) }()

	st.initStage(opts)

	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 64
	}
	for pass := 1; pass <= maxPasses; pass++ {
		changed := st.iteratePass()
		if st.exhausted {
			break
		}
		res.Passes = pass
		if changed {
			res.ChangedPasses++
		}
		if opts.CollectTrace {
			var e TraceEntry
			if st.wide {
				e.In, e.Out = st.decodeSnapshot()
			} else {
				e.In = lattice.CloneSlab(res.In)
				e.Out = lattice.CloneSlab(res.Out)
			}
			res.Trace = append(res.Trace, e)
		}
		if !changed {
			break
		}
	}
	st.finish()
	return res
}

// initStage runs the paper's initialization (§3.2 for must, §3.3 for may)
// on whichever representation the solver iterates over.
func (st *solver) initStage(opts *Options) {
	res := st.res
	n := len(st.g.Nodes)
	switch {
	case st.may:
		startVal := lattice.All()
		if opts.MayTopStart {
			startVal = lattice.None()
		}
		if st.wide {
			e := st.pk.Encode(startVal)
			for id := 1; id <= n; id++ {
				st.pk.Fill(st.rowW(st.inW, id), e)
				st.pk.Fill(st.rowW(st.outW, id), e)
			}
		} else {
			for id := 1; id <= n; id++ {
				res.In[id].Fill(startVal)
				res.Out[id].Fill(startVal)
			}
		}
	case opts.SkipInitPass:
		if st.wide {
			for id := 1; id <= n; id++ {
				st.pk.Fill(st.rowW(st.inW, id), st.pk.All)
				st.pk.Fill(st.rowW(st.outW, id), st.pk.All)
			}
		} else {
			for id := 1; id <= n; id++ {
				res.In[id].Fill(lattice.All())
				res.Out[id].Fill(lattice.All())
			}
		}
	default:
		if st.wide {
			st.initWide()
			// Defer the snapshot: copy the packed words (cheap — tens of
			// bytes per node) and let Result.InitIn/InitOut decode them on
			// first access. The pooled buffer is returned by Release.
			rows := (n + 1) * st.words
			buf := u64Pool.get(2 * rows)
			copy(buf[:rows], st.inW)
			copy(buf[rows:], st.outW)
			res.initW = buf
			res.initPk = st.pk
		} else {
			st.initPass()
			res.initIn = lattice.CloneSlab(res.In)
			res.initOut = lattice.CloneSlab(res.Out)
		}
	}
}

// initPass runs the initialization pass for must-problems on scalar tuples:
// meet over already-visited predecessors (back-edge inputs excluded), then
// the generate overestimate from the compiled program's gen bits.
func (st *solver) initPass() {
	res := st.res
	visited := st.sc.boolRow(len(st.g.Nodes) + 1)
	for _, nd := range st.order {
		res.NodeVisits++
		in := res.In[nd.ID]
		if nd == st.entry {
			in.Fill(lattice.None())
		} else {
			in.Fill(lattice.All())
			any := false
			for _, p := range st.preds(nd) {
				if !visited[p.ID] {
					continue // back-edge predecessor: excluded from init
				}
				in.MeetInto(res.Out[p.ID], false)
				any = true
			}
			if !any {
				in.Fill(lattice.None())
			}
		}
		out := res.Out[nd.ID]
		copy(out, in)
		base := nd.ID * st.m
		for ci := 0; ci < st.m; ci++ {
			if bitGet(st.prog.gen, base+ci) {
				out[ci] = lattice.All()
			}
		}
		visited[nd.ID] = true
	}
}

// initWide is initPass over packed rows: the generate overestimate is one
// OR with the node's gen row (All is the all-ones lane).
func (st *solver) initWide() {
	res := st.res
	pk := &st.pk
	visited := st.sc.boolRow(len(st.g.Nodes) + 1)
	for _, nd := range st.order {
		res.NodeVisits++
		in := st.rowW(st.inW, nd.ID)
		if nd == st.entry {
			clear(in)
		} else {
			pk.Fill(in, pk.All)
			any := false
			for _, p := range st.preds(nd) {
				if !visited[p.ID] {
					continue // back-edge predecessor: excluded from init
				}
				pk.MinInto(in, st.rowW(st.outW, p.ID))
				any = true
			}
			if !any {
				clear(in)
			}
		}
		out := st.rowW(st.outW, nd.ID)
		gen := st.rowW(st.genW, nd.ID)
		for w := range out {
			out[w] = in[w] | gen[w]
		}
		visited[nd.ID] = true
	}
}

// iteratePass runs one fixed-point pass over every node, reporting whether
// any OUT row changed. It allocates nothing. Every node visit debits m
// units of fuel first; when the budget cannot cover the visit the pass
// stops and marks the solve exhausted (finish degrades the tuples).
func (st *solver) iteratePass() bool {
	if st.wide {
		return st.iterateWide()
	}
	return st.iterateScalar()
}

// iterateWide is the word-packed pass: meets are SWAR min/max sweeps over
// predecessor OUT rows, and a node's whole flow function across all classes
// is two packed rows applied per word (min(max(in, lo), hi)); the exit node
// applies the increment-and-clamp kernel instead.
func (st *solver) iterateWide() bool {
	res := st.res
	pk := &st.pk
	mFuel := int64(st.m)
	changed := false
	for _, nd := range st.order {
		if st.fuel < mFuel {
			st.exhausted = true
			break
		}
		res.NodeVisits++
		in := st.rowW(st.inW, nd.ID)
		ps := st.preds(nd)
		switch {
		case len(ps) == 1:
			// Meet over one input is that input, whichever the polarity.
			copy(in, st.rowW(st.outW, ps[0].ID))
		case len(ps) > 1:
			if st.may {
				clear(in)
				for _, p := range ps {
					pk.MaxInto(in, st.rowW(st.outW, p.ID))
				}
			} else {
				pk.Fill(in, pk.All)
				for _, p := range ps {
					pk.MinInto(in, st.rowW(st.outW, p.ID))
				}
			}
		}
		res.FlowApps += st.m
		st.fuel -= mFuel
		scr := st.scrW
		if nd.Kind == ir.KindExit {
			copy(scr, in)
			pk.IncClamp(scr, st.ubE, st.clamp)
		} else {
			pk.ApplyBounds(scr, in, st.rowW(st.loW, nd.ID), st.rowW(st.hiW, nd.ID))
		}
		out := st.rowW(st.outW, nd.ID)
		eq := true
		for w := range scr {
			if scr[w] != out[w] {
				eq = false
				break
			}
		}
		if !eq {
			changed = true
			copy(out, scr)
		}
	}
	return changed
}

// iterateScalar is the fallback pass over scalar tuples: the meet writes
// into the slab-backed IN row and the flow functions op-walk into the
// shared scratch tuple, which is copied over OUT only on change.
func (st *solver) iterateScalar() bool {
	res := st.res
	g := st.g
	m := st.m
	mFuel := int64(m)
	changed := false
	for _, nd := range st.order {
		if st.fuel < mFuel {
			st.exhausted = true
			break
		}
		res.NodeVisits++
		in := res.In[nd.ID]
		ps := st.preds(nd)
		if len(ps) > 0 {
			if st.may {
				in.Fill(lattice.None())
			} else {
				in.Fill(lattice.All())
			}
			for _, p := range ps {
				in.MeetInto(res.Out[p.ID], st.may)
			}
		}
		res.FlowApps += m
		st.fuel -= mFuel
		scratch := st.scratch
		if nd.Kind == ir.KindExit {
			for ci, x := range in {
				v := x.Inc()
				if g.HasUB {
					v = v.Clamp(g.UBConst)
				}
				scratch[ci] = v
			}
		} else {
			base := nd.ID * m
			starts := st.prog.starts
			arena := st.prog.arena
			for ci, x := range in {
				for _, op := range arena[starts[base+ci]:starts[base+ci+1]] {
					if op.gen {
						x = lattice.Max(x, lattice.D(0))
					} else {
						x = lattice.Min(x, op.pres)
					}
				}
				scratch[ci] = x
			}
		}
		out := res.Out[nd.ID]
		if !scratch.Eq(out) {
			changed = true
			copy(out, scratch)
		}
	}
	return changed
}

// decodeSnapshot unpacks the current packed IN/OUT state into fresh slabs
// (trace and init snapshots).
func (st *solver) decodeSnapshot() (in, out []lattice.Tuple) {
	n := len(st.g.Nodes)
	in = lattice.Slab(n, st.m)
	out = lattice.Slab(n, st.m)
	for id := 1; id <= n; id++ {
		st.pk.DecodeRow(in[id], st.rowW(st.inW, id))
		st.pk.DecodeRow(out[id], st.rowW(st.outW, id))
	}
	return in, out
}

// finish materializes the fixed point into the Result's scalar slabs. A
// fuel-exhausted solve instead degrades every tuple to the claim-nothing
// value of the problem's polarity: ⊥ for must-problems (no instance is
// asserted in range, so Covers is false everywhere) and ⊤ for may-problems
// (every instance may be live) — conservative in both directions.
func (st *solver) finish() {
	res := st.res
	n := len(st.g.Nodes)
	if st.exhausted {
		res.degradeExhausted()
		return
	}
	if st.wide {
		for id := 1; id <= n; id++ {
			st.pk.DecodeRow(res.In[id], st.rowW(st.inW, id))
			st.pk.DecodeRow(res.Out[id], st.rowW(st.outW, id))
		}
	}
}

// degradeExhausted overwrites the result's tuples with the claim-nothing
// value and marks the exhaustion on the result and the process counter.
func (res *Result) degradeExhausted() {
	v := lattice.None()
	if res.Spec.May {
		v = lattice.All()
	}
	for id := 1; id < len(res.In); id++ {
		res.In[id].Fill(v)
		res.Out[id].Fill(v)
	}
	res.FuelExhausted = true
	fuelExhaustedTotal.Add(1)
}

// compile builds the packed program: every (node, class) flow function
// appended to one arena in slot order, so starts is monotone and a slot's
// ops are arena[starts[idx]:starts[idx+1]]. Class membership is decided by
// the table's dense refClass array; no maps are consulted.
func (ctx *solveCtx) compile(spec *Spec, ct *classTable, prZero [][]uint64, facts RangeOracle) *packedProgram {
	g := ctx.g
	m := len(ct.classes)
	total := (ctx.n + 1) * m
	prog := &packedProgram{
		// Pooled storage: the arena capacity covers the common case of at
		// most one op per reference so it rarely regrows; starts below m
		// (the unused node ID 0's slots) and the gen bitset must be zeroed
		// because the pools return dirty buffers.
		arena:  opPool.get(len(g.Refs) + 4)[:0],
		starts: int32Pool.get(total + 1),
		gen:    u64Pool.get((total + 63) / 64),
	}
	clear(prog.starts[:m])
	clear(prog.gen)
	// A node can only emit ops for classes one of its references touches: the
	// reference's own class (generate) or any class over the same array
	// (kill). Walking just those candidates keeps compilation O(refs·classes-
	// per-array) instead of O(nodes·classes); every other slot is empty and
	// its start offset equals its neighbor's. Candidates are deduped with a
	// node-ID stamp (node 0 is unused, so a zeroed stamp row is "unseen") and
	// insertion-sorted so slots are emitted in index order.
	stamp := int32Pool.get(m)
	clear(stamp)
	e := opEmitter{
		arena: prog.arena,
		m:     m,
		g:     g,
		spec:  spec,
		ct:    ct,
		kctxBase: KillContext{
			May:      spec.May,
			Backward: spec.Backward,
			UB:       g.UBConst,
			HasUB:    g.HasUB,
			Facts:    facts,
		},
	}
	// The preserve memo keys on (class, form, pr) only; that stays valid
	// with an oracle because the oracle is constant for the whole solve.
	e.kctxBase.SymUB, e.kctxBase.HasSymUB = symUBOf(g)
	e.buildForms()
	var cand []int32
	idx := m // slots 0..m-1 belong to the unused node ID 0 and stay empty
	for _, nd := range g.Nodes {
		id := int32(nd.ID)
		cand = cand[:0]
		for _, r := range nd.Refs {
			if ci := ct.refClass[r.ID]; ci >= 0 && stamp[ci] != id {
				stamp[ci] = id
				cand = append(cand, ci)
			}
			if spec.Kill(r) {
				for _, ci := range ct.byArray[r.Array] {
					if stamp[ci] != id {
						stamp[ci] = id
						cand = append(cand, ci)
					}
				}
			}
		}
		for i := 1; i < len(cand); i++ {
			for j := i; j > 0 && cand[j] < cand[j-1]; j-- {
				cand[j], cand[j-1] = cand[j-1], cand[j]
			}
		}
		next := 0
		for ci := 0; ci < m; ci++ {
			prog.starts[idx] = int32(len(e.arena))
			if next < len(cand) && cand[next] == int32(ci) {
				if e.compileSlot(nd, ct.classes[ci], prZero[ci]) {
					bitSet(prog.gen, idx)
				}
				next++
			}
			idx++
		}
	}
	prog.arena = e.arena
	e.release()
	int32Pool.put(stamp)
	for ; idx <= total; idx++ {
		prog.starts[idx] = int32(len(prog.arena))
	}
	return prog
}

// opEmitter carries the op-emission state of one compile: the shared arena,
// the per-slot walk state, and the preserve memo. One emitter serves the
// whole compile (no closures, no per-slot construction), so compiling a
// slot allocates nothing beyond arena growth.
type opEmitter struct {
	arena    []flowOp
	opsStart int
	nodePr   int64
	want     int32
	genSeen  bool
	m        int
	g        *ir.Graph
	spec     *Spec
	ct       *classTable
	c        *Class
	kctxBase KillContext // May/Backward/UB fixed per solve; Pr set per emit

	// Preserve memoization: a killing reference's preserve distance against
	// a class depends only on the two affine forms and the pr bit, so every
	// affine killer gets a form ID (its class index when classified, a table
	// slot past m otherwise) and PreserveConst runs once per
	// (class, form, pr) triple instead of once per emitted op.
	fid      []int32     // ref ID → form ID, -1 when not an affine killer
	extra    []extraForm // forms of affine killers outside every class
	memo     []lattice.Dist
	memoDone []uint64
}

type extraForm struct {
	array string
	form  sema.AffineForm
}

// buildForms assigns form IDs to every reference that can kill with an
// affine subscript and sizes the preserve memo.
func (e *opEmitter) buildForms() {
	g := e.g
	e.fid = int32Pool.get(len(g.Refs) + 1)
	for _, r := range g.Refs {
		e.fid[r.ID] = -1
		if !r.Affine || r.FromInner || !e.spec.Kill(r) {
			continue
		}
		if ci := e.ct.refClass[r.ID]; ci >= 0 {
			e.fid[r.ID] = ci
			continue
		}
		id := int32(-1)
		for k := range e.extra {
			x := &e.extra[k]
			if x.array == r.Array && x.form.A.Equal(r.Form.A) && x.form.B.Equal(r.Form.B) {
				id = int32(e.m + k)
				break
			}
		}
		if id < 0 {
			id = int32(e.m + len(e.extra))
			e.extra = append(e.extra, extraForm{r.Array, r.Form})
		}
		e.fid[r.ID] = id
	}
	cells := (e.m + len(e.extra)) * 2 * e.m
	e.memo = presPool.get(cells)
	e.memoDone = memoBitsPool.get((cells + 63) / 64)
	clear(e.memoDone)
}

// release returns the emitter's pooled buffers.
func (e *opEmitter) release() {
	int32Pool.put(e.fid)
	presPool.put(e.memo)
	memoBitsPool.put(e.memoDone)
	e.fid, e.memo, e.memoDone = nil, nil, nil
}

// formOf returns the affine form behind a form ID.
func (e *opEmitter) formOf(f int) sema.AffineForm {
	if f < e.m {
		return e.ct.classes[f].Form
	}
	return e.extra[f-e.m].form
}

// preserve returns the memoized PreserveConst result for the current class
// against form ID f at the given pr.
func (e *opEmitter) preserve(f int, pr int64) lattice.Dist {
	idx := (f*2+int(pr))*e.m + int(e.want)
	if !bitGet(e.memoDone, idx) {
		kctx := e.kctxBase
		kctx.Pr = pr
		e.memo[idx] = PreserveConst(e.c.Form, e.formOf(f), true, kctx)
		bitSet(e.memoDone, idx)
	}
	return e.memo[idx]
}

// compileSlot emits node nd's flow function for class c onto the arena and
// reports whether it generates. The emitted sequence is definitionally
// identical to the reference compiler's compileNodeClass: reference effects
// in execution order, reversed for backward problems, with summary nodes
// reordered by polarity (must: generates before kills; may: kills before
// generates) and consecutive preserve caps merged.
func (e *opEmitter) compileSlot(nd *ir.Node, c *Class, prZeroC []uint64) bool {
	e.opsStart = len(e.arena)
	e.want = int32(c.Index)
	e.c = c
	e.genSeen = false
	e.nodePr = 1
	if bitGet(prZeroC, nd.ID) {
		e.nodePr = 0
	}

	if nd.Kind != ir.KindSummary {
		e.walk(nd, 2, e.spec.Backward)
		return e.genSeen
	}
	// Summary nodes collapse an inner loop of unknown internal order: the
	// safe approximation applies generates before kills for must-problems
	// (underestimate) and kills before generates for may-problems
	// (overestimate); backward solves reverse the whole sequence.
	first, second := 0, 1 // must, forward: gens then kills
	if e.spec.May {
		first, second = 1, 0
	}
	if e.spec.Backward {
		first, second = second, first
	}
	e.walk(nd, first, e.spec.Backward)
	e.walk(nd, second, e.spec.Backward)
	return e.genSeen
}

// walk emits node nd's references in execution order (reversed for backward
// problems). phase: 0 = members of the class only, 1 = non-members only,
// 2 = all.
func (e *opEmitter) walk(nd *ir.Node, phase int, reverse bool) {
	refs := nd.Refs
	for k := 0; k < len(refs); k++ {
		r := refs[k]
		if reverse {
			r = refs[len(refs)-1-k]
		}
		isMember := e.ct.refClass[r.ID] == e.want
		if phase == 0 && !isMember || phase == 1 && isMember {
			continue
		}
		e.emit(r, isMember)
	}
}

func (e *opEmitter) emit(r *ir.Ref, isMember bool) {
	if isMember {
		e.arena = append(e.arena, flowOp{gen: true})
		e.genSeen = true
		return
	}
	if !e.spec.Kill(r) || r.Array != e.c.Array {
		return
	}
	pr := e.nodePr
	if e.genSeen {
		// A member of the class already executed within this node before
		// the kill: the distance-0 instance is in range.
		pr = 0
	}
	var p lattice.Dist
	if f := e.fid[r.ID]; f >= 0 {
		p = e.preserve(int(f), pr)
	} else {
		kctx := e.kctxBase
		kctx.Pr = pr
		if r.FromInner && r.HasRegion {
			p = PreserveAgainstRegion(e.c.Form, r.RegionLo, r.RegionHi, kctx)
		} else {
			p = PreserveConst(e.c.Form, r.Form, r.Affine && !r.FromInner, kctx)
		}
	}
	if p.IsAll() {
		return // identity cap
	}
	if n := len(e.arena); n > e.opsStart && !e.arena[n-1].gen {
		e.arena[n-1].pres = lattice.Min(e.arena[n-1].pres, p)
		return
	}
	e.arena = append(e.arena, flowOp{pres: p})
}
