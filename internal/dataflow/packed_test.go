package dataflow

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/lattice"
	"repro/internal/synth"
)

// The four standard problem instances, hand-built because the in-package
// test cannot import internal/problems (it imports this package). The
// predicates match problems.StandardSpecs exactly.
func standardTestSpecs() []*Spec {
	return []*Spec{
		{
			Name: "must-reaching-defs",
			Gen:  func(r *ir.Ref) bool { return r.Kind == ir.Def },
			Kill: func(r *ir.Ref) bool { return r.Kind == ir.Def },
		},
		{
			Name: "delta-available-values",
			Gen:  func(r *ir.Ref) bool { return true },
			Kill: func(r *ir.Ref) bool { return r.Kind == ir.Def },
		},
		{
			Name:     "delta-busy-stores",
			Backward: true,
			Gen:      func(r *ir.Ref) bool { return r.Kind == ir.Def },
			Kill:     func(r *ir.Ref) bool { return r.Kind == ir.Use },
		},
		{
			Name: "delta-reaching-refs",
			May:  true,
			Gen:  func(r *ir.Ref) bool { return true },
			Kill: func(r *ir.Ref) bool { return r.Kind == ir.Def },
		},
	}
}

// differentialSources is the fuzz corpus: hand-written programs covering
// summary nodes, regions, conditionals, and known loop bounds, plus
// synthetic loops across a seed/shape sweep.
func differentialSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{
		"fig1": fig1,
		"nested-summary": `
do i = 1, N
  A[i+1] := A[i] + 1
  do j = 1, 10
    B[j] := A[i] + B[j-1]
  enddo
  C[i] := B[5] + A[i+1]
enddo
`,
		"bounded": `
do i = 1, 8
  A[i+3] := A[i] + 1
  B[i] := A[i+2]
enddo
`,
		"branchy": `
do i = 1, N
  if c1 > 0 then
    A[i+1] := B[i]
  else
    A[i+2] := B[i-1]
  endif
  B[i] := A[i]
enddo
`,
		"multidim": `
do i = 1, N
  X[i+1, i] := X[i, i] + 1
  Y[i] := X[i+1, i-1]
enddo
`,
		"same-node-seq": `
do i = 1, N
  A[i] := A[i-1] + A[i]
enddo
`,
	}
	for seed := int64(1); seed <= 6; seed++ {
		p := synth.Params{
			Seed:     seed,
			Stmts:    4 + int(seed)*5,
			Arrays:   1 + int(seed%4),
			MaxDist:  1 + seed%5,
			CondProb: float64(seed%3) * 0.3,
			UB:       (seed % 2) * 50,
		}
		prog := synth.Loop(p)
		srcs[fmt.Sprintf("synth-%d", seed)] = ast.StmtString(prog.Body[0], 0)
	}
	return srcs
}

// checkResultsIdentical asserts byte-identical tuples, snapshots, traces,
// pr values, and work counters between two Results of the same problem.
func checkResultsIdentical(t *testing.T, label string, packed, ref *Result) {
	t.Helper()
	if got, want := len(packed.Classes), len(ref.Classes); got != want {
		t.Fatalf("%s: classes = %d, want %d", label, got, want)
	}
	for i := range ref.Classes {
		if packed.Classes[i].String() != ref.Classes[i].String() {
			t.Fatalf("%s: class %d = %s, want %s", label, i, packed.Classes[i], ref.Classes[i])
		}
	}
	if got, want := packed.TupleTable(-1), ref.TupleTable(-1); got != want {
		t.Errorf("%s: fixed point differs:\npacked:\n%s\nreference:\n%s", label, got, want)
	}
	if got, want := packed.TupleTable(0), ref.TupleTable(0); got != want {
		t.Errorf("%s: init snapshot differs:\npacked:\n%s\nreference:\n%s", label, got, want)
	}
	if (packed.InitIn() == nil) != (ref.InitIn() == nil) {
		t.Errorf("%s: InitIn nil-ness: packed %v, reference %v", label, packed.InitIn() == nil, ref.InitIn() == nil)
	}
	if got, want := len(packed.Trace), len(ref.Trace); got != want {
		t.Fatalf("%s: trace length = %d, want %d", label, got, want)
	} else {
		for p := 1; p <= want; p++ {
			if packed.TupleTable(p) != ref.TupleTable(p) {
				t.Errorf("%s: pass %d snapshot differs", label, p)
			}
		}
	}
	if packed.Passes != ref.Passes || packed.ChangedPasses != ref.ChangedPasses {
		t.Errorf("%s: passes = %d/%d changing, want %d/%d",
			label, packed.Passes, packed.ChangedPasses, ref.Passes, ref.ChangedPasses)
	}
	if packed.NodeVisits != ref.NodeVisits || packed.FlowApps != ref.FlowApps {
		t.Errorf("%s: work = %d visits/%d apps, want %d/%d",
			label, packed.NodeVisits, packed.FlowApps, ref.NodeVisits, ref.FlowApps)
	}
	for _, c := range ref.Classes {
		pc := packed.Classes[c.Index]
		for _, nd := range ref.Graph.Nodes {
			if got, want := packed.Pr(pc, nd), ref.Pr(c, nd); got != want {
				t.Errorf("%s: pr(%s, n%d) = %d, want %d", label, c, nd.ID, got, want)
			}
		}
	}
	// The compiled flow functions must agree as functions, not just on the
	// fixed point: sample the lattice.
	samples := []lattice.Dist{lattice.None(), lattice.D(0), lattice.D(1), lattice.D(3), lattice.All()}
	for _, nd := range ref.Graph.Nodes {
		for ci := range ref.Classes {
			for _, x := range samples {
				if got, want := packed.ApplyFlow(nd, ci, x), ref.ApplyFlow(nd, ci, x); !got.Eq(want) {
					t.Errorf("%s: f[n%d,c%d](%s) = %s, want %s", label, nd.ID, ci, x, got, want)
				}
			}
		}
	}
}

// TestPackedReferenceDifferential fuzzes both engines over the corpus, all
// four standard specs, and the option axes, asserting identical Results.
func TestPackedReferenceDifferential(t *testing.T) {
	optVariants := []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"trace", Options{CollectTrace: true}},
		{"skipinit", Options{SkipInitPass: true}},
		{"maytop", Options{MayTopStart: true, MaxPasses: 6, CollectTrace: true}},
	}
	for name, src := range differentialSources(t) {
		g := buildLoop(t, src)
		for _, spec := range standardTestSpecs() {
			for _, v := range optVariants {
				packedOpts, refOpts := v.opts, v.opts
				packedOpts.Engine = EnginePacked
				refOpts.Engine = EngineReference
				packed := Solve(g, spec, &packedOpts)
				ref := Solve(g, spec, &refOpts)
				checkResultsIdentical(t, name+"/"+spec.Name+"/"+v.name, packed, ref)
			}
		}
	}
}

// TestSolveAllMatchesSolve pins that the fused multi-spec entry point is
// observationally identical to independent Solve calls, on both engines.
func TestSolveAllMatchesSolve(t *testing.T) {
	for name, src := range differentialSources(t) {
		g := buildLoop(t, src)
		specs := standardTestSpecs()
		for _, eng := range []Engine{EnginePacked, EngineReference} {
			fused := SolveAll(g, specs, &Options{CollectTrace: true, Engine: eng})
			for i, spec := range specs {
				solo := Solve(g, spec, &Options{CollectTrace: true, Engine: eng})
				checkResultsIdentical(t, fmt.Sprintf("%s/%s/%s/fused-vs-solo", name, eng, spec.Name), fused[i], solo)
			}
		}
	}
}

// TestSolveAllSharesClassTables pins the fusion actually shares: specs with
// the same generate signature get the same *Class values from one SolveAll.
func TestSolveAllSharesClassTables(t *testing.T) {
	g := buildLoop(t, fig1)
	specs := standardTestSpecs() // reach and busy share G = defs; avail and deps share G = all
	results := SolveAll(g, specs, nil)
	if len(results[0].Classes) == 0 || len(results[1].Classes) == 0 {
		t.Fatal("expected classes on fig1")
	}
	if results[0].Classes[0] != results[2].Classes[0] {
		t.Errorf("must-reaching-defs and delta-busy-stores should share one class table")
	}
	if results[1].Classes[0] != results[3].Classes[0] {
		t.Errorf("delta-available-values and delta-reaching-refs should share one class table")
	}
}

// TestPackedSteadyStateAllocFree pins the tentpole property: once a packed
// solve is prepared, running a full iteration pass allocates nothing — on
// the word-packed fast path and on the scalar fallback alike.
func TestPackedSteadyStateAllocFree(t *testing.T) {
	g := buildLoop(t, fig1)
	for _, forceScalar := range []bool{false, true} {
		debugForceScalar = forceScalar
		for _, spec := range standardTestSpecs() {
			ctx := newSolveCtx(g)
			sc := NewScratch()
			st := ctx.prepare(spec, &Options{}, sc)
			if st.wide == forceScalar {
				t.Fatalf("%s: wide = %v with forceScalar = %v", spec.Name, st.wide, forceScalar)
			}
			st.initStage(&Options{})
			// Give the exhaustion check headroom: the measured passes must
			// never trip it.
			st.fuel = 1 << 40
			if allocs := testing.AllocsPerRun(100, func() { st.iteratePass() }); allocs != 0 {
				t.Errorf("%s (scalar=%v): steady-state iteration pass allocates %.0f objects per run, want 0",
					spec.Name, forceScalar, allocs)
			}
		}
	}
	debugForceScalar = false
}

// TestPackedScalarFallbackDifferential drives the scalar fallback path over
// the full corpus against the reference engine: the fallback must stay
// byte-identical even though the default corpus fits the word-packed path.
func TestPackedScalarFallbackDifferential(t *testing.T) {
	debugForceScalar = true
	defer func() { debugForceScalar = false }()
	for name, src := range differentialSources(t) {
		g := buildLoop(t, src)
		for _, spec := range standardTestSpecs() {
			packed := Solve(g, spec, &Options{CollectTrace: true, Engine: EnginePacked})
			ref := Solve(g, spec, &Options{CollectTrace: true, Engine: EngineReference})
			checkResultsIdentical(t, name+"/"+spec.Name+"/scalar-fallback", packed, ref)
		}
	}
}

// TestFuelDefaultNeverBinds pins that a zero Options.Fuel derives a budget
// the iteration cannot exhaust: results with and without an enormous
// explicit budget are identical, and FuelExhausted stays false across the
// whole corpus, every spec, both engines.
func TestFuelDefaultNeverBinds(t *testing.T) {
	for name, src := range differentialSources(t) {
		g := buildLoop(t, src)
		for _, spec := range standardTestSpecs() {
			for _, eng := range []Engine{EnginePacked, EngineReference} {
				res := Solve(g, spec, &Options{Engine: eng})
				if res.FuelExhausted {
					t.Fatalf("%s/%s/%s: default fuel budget %d exhausted", name, spec.Name, eng, res.FuelBudget)
				}
				if res.FuelBudget <= 0 {
					t.Fatalf("%s/%s/%s: non-positive derived budget %d", name, spec.Name, eng, res.FuelBudget)
				}
				big := Solve(g, spec, &Options{Engine: eng, Fuel: 1 << 40})
				if got, want := res.TupleTable(-1), big.TupleTable(-1); got != want {
					t.Errorf("%s/%s/%s: default-fuel fixed point differs from unlimited", name, spec.Name, eng)
				}
			}
		}
	}
}

// TestFuelExhaustionDeterministicAndSound fuzzes tiny fuel budgets over the
// corpus: for every budget both engines must exhaust identically (same
// counters, same degraded tuples) and the degraded values must be the
// claim-nothing value for the polarity — ⊥ for must, ⊤ for may — so
// consumers can only lose precision, never soundness.
func TestFuelExhaustionDeterministicAndSound(t *testing.T) {
	for name, src := range differentialSources(t) {
		g := buildLoop(t, src)
		for _, spec := range standardTestSpecs() {
			// Budgets from "dies at the first node" up past several passes.
			full := Solve(g, spec, &Options{Engine: EnginePacked})
			budgets := []int64{1, 3, int64(len(full.Classes)) + 1, int64(full.FlowApps / 2), int64(full.FlowApps) - 1}
			for _, fuel := range budgets {
				if fuel <= 0 {
					continue
				}
				label := fmt.Sprintf("%s/%s/fuel=%d", name, spec.Name, fuel)
				packed := Solve(g, spec, &Options{Engine: EnginePacked, Fuel: fuel})
				ref := Solve(g, spec, &Options{Engine: EngineReference, Fuel: fuel})
				if packed.FuelExhausted != ref.FuelExhausted {
					t.Fatalf("%s: exhausted packed=%v reference=%v", label, packed.FuelExhausted, ref.FuelExhausted)
				}
				checkResultsIdentical(t, label, packed, ref)
				if packed.FuelBudget != fuel {
					t.Errorf("%s: FuelBudget = %d", label, packed.FuelBudget)
				}
				if !packed.FuelExhausted {
					continue
				}
				// Soundness: every degraded tuple is the claim-nothing value.
				want := lattice.None()
				if spec.May {
					want = lattice.All()
				}
				for id := 1; id < len(packed.In); id++ {
					for ci := range packed.In[id] {
						if !packed.In[id][ci].Eq(want) || !packed.Out[id][ci].Eq(want) {
							t.Fatalf("%s: node %d class %d not degraded to %s", label, id, ci, want)
						}
					}
				}
				// Determinism: a repeat run exhausts with identical counters.
				again := Solve(g, spec, &Options{Engine: EnginePacked, Fuel: fuel})
				if again.NodeVisits != packed.NodeVisits || again.FlowApps != packed.FlowApps ||
					again.Passes != packed.Passes || !again.FuelExhausted {
					t.Fatalf("%s: repeat run diverged: visits %d vs %d, apps %d vs %d",
						label, again.NodeVisits, packed.NodeVisits, again.FlowApps, packed.FlowApps)
				}
			}
		}
	}
}

// TestPackedSlabLayout pins the two-slab storage shape: a 1-based nil row
// 0 (node IDs start at 1) and full-capacity row views, so writes through one
// row can never bleed into a neighbor even though all rows share a backing.
func TestPackedSlabLayout(t *testing.T) {
	g := buildLoop(t, fig1)
	res := Solve(g, mustReach(), nil)
	m := len(res.Classes)
	for _, rows := range [][]lattice.Tuple{res.In, res.Out} {
		if rows[0] != nil {
			t.Fatal("row 0 must stay nil (node IDs are 1-based)")
		}
		if len(rows) != len(g.Nodes)+1 {
			t.Fatalf("rows = %d, want %d", len(rows), len(g.Nodes)+1)
		}
		for id := 1; id < len(rows); id++ {
			if len(rows[id]) != m || cap(rows[id]) != m {
				t.Fatalf("row %d len/cap = %d/%d, want %d/%d (full-capacity view)",
					id, len(rows[id]), cap(rows[id]), m, m)
			}
		}
	}
}
