package dataflow

import (
	"fmt"
	"time"

	"repro/internal/cachefile"
	"repro/internal/ir"
	"repro/internal/lattice"
)

// Result state (de)serialization for the persistent solve cache. Only what
// cannot be recomputed deterministically from the loop AST is written: the
// fixed-point IN/OUT slabs, the initialization-pass snapshot, and the solve
// counters. The graph, class table, pr bitsets, flow functions, and reuse
// facts are all pure functions of the canonical loop rendering — which the
// content address already pins — so the restoring side rebuilds them and
// validates the shapes against the decoded payload.
//
// The state is split in two so a loader can be lazy: ResultMeta carries the
// counters and shape (cheap, decoded eagerly — whole-program metrics need
// them even when nobody looks at the facts), and EncodeRows carries the
// lattice slabs (bulky, decodable later, alongside the graph rebuild, the
// first time a consumer actually reads the results).

// PersistVersion is the payload layout generation; it feeds the schema hash
// (see driver's disk cache), so bumping it abandons old files wholesale
// rather than risking a misparse. v2 moved the counters ahead of the rows
// and framed the rows as a skippable blob per spec.
const PersistVersion = "result-v2"

// ResultMeta is the eagerly-decoded slice of a persisted Result: the solve
// counters and the slab shape. It is everything Metrics() reports plus what
// the row decoder needs to validate the deferred slabs.
type ResultMeta struct {
	// Nodes and Classes are the slab shape (N and m of the paper's O(N·m)
	// bound); the restore validates them against the rebuilt graph.
	Nodes, Classes int
	// HasInit records whether an initialization-pass snapshot follows the
	// fixed point in the row block.
	HasInit bool

	Passes        int
	ChangedPasses int
	NodeVisits    int
	FlowApps      int
	Elapsed       time.Duration
	FuelBudget    int64
	FuelExhausted bool
}

// PersistMeta extracts the persistent counters and shape of a live result.
func (res *Result) PersistMeta() ResultMeta {
	return ResultMeta{
		Nodes:         len(res.Graph.Nodes),
		Classes:       len(res.Classes),
		HasInit:       res.InitIn() != nil,
		Passes:        res.Passes,
		ChangedPasses: res.ChangedPasses,
		NodeVisits:    res.NodeVisits,
		FlowApps:      res.FlowApps,
		Elapsed:       res.Elapsed,
		FuelBudget:    res.FuelBudget,
		FuelExhausted: res.FuelExhausted,
	}
}

// Metrics converts the persisted counters back to the solver metrics a
// fresh solve would report, so a lazy load can feed whole-program metrics
// without touching the deferred rows.
func (m ResultMeta) Metrics() Metrics {
	return Metrics{
		Nodes:         m.Nodes,
		Classes:       m.Classes,
		Passes:        m.Passes,
		ChangedPasses: m.ChangedPasses,
		NodeVisits:    m.NodeVisits,
		FlowApps:      m.FlowApps,
		Elapsed:       m.Elapsed,
		FuelExhausted: m.FuelExhausted,
	}
}

// Encode appends the meta block to w.
func (m ResultMeta) Encode(w *cachefile.Writer) {
	w.Uint(uint64(m.Nodes))
	w.Uint(uint64(m.Classes))
	w.Bool(m.HasInit)
	w.Uint(uint64(m.Passes))
	w.Uint(uint64(m.ChangedPasses))
	w.Uint(uint64(m.NodeVisits))
	w.Uint(uint64(m.FlowApps))
	w.Int(int64(m.Elapsed))
	w.Int(m.FuelBudget)
	w.Bool(m.FuelExhausted)
}

// DecodeResultMeta reads a meta block; the caller checks r.Err afterwards
// (reads after an error return zero values).
func DecodeResultMeta(r *cachefile.Reader) ResultMeta {
	var m ResultMeta
	m.Nodes = int(r.Uint())
	m.Classes = int(r.Uint())
	m.HasInit = r.Bool()
	m.Passes = int(r.Uint())
	m.ChangedPasses = int(r.Uint())
	m.NodeVisits = int(r.Uint())
	m.FlowApps = int(r.Uint())
	m.Elapsed = time.Duration(r.Int())
	m.FuelBudget = r.Int()
	m.FuelExhausted = r.Bool()
	return m
}

// encodeDist maps the chain lattice onto unsigned varints:
// 0 = ⊥ (None), 1 = ⊤ (All), d+2 = finite distance d (d ≥ 0).
func encodeDist(x lattice.Dist) uint64 {
	if d, ok := x.Finite(); ok {
		return uint64(d) + 2
	}
	if x.IsAll() {
		return 1
	}
	return 0
}

func decodeDist(u uint64) lattice.Dist {
	switch u {
	case 0:
		return lattice.None()
	case 1:
		return lattice.All()
	default:
		return lattice.D(int64(u - 2))
	}
}

func encodeRows(w *cachefile.Writer, rows []lattice.Tuple, n, m int) {
	for id := 1; id <= n; id++ {
		row := rows[id]
		for j := 0; j < m; j++ {
			w.Uint(encodeDist(row[j]))
		}
	}
}

func decodeRows(r *cachefile.Reader, n, m int) []lattice.Tuple {
	rows := lattice.Slab(n, m)
	for id := 1; id <= n; id++ {
		row := rows[id]
		for j := 0; j < m; j++ {
			row[j] = decodeDist(r.Uint())
		}
	}
	return rows
}

// EncodeRows appends the result's lattice state — the fixed-point IN/OUT
// slabs and, when present, the initialization-pass snapshot — to w. The
// shape and the snapshot's presence travel in the ResultMeta block, which
// must be encoded alongside.
func (res *Result) EncodeRows(w *cachefile.Writer) {
	n := len(res.Graph.Nodes)
	m := len(res.Classes)
	encodeRows(w, res.In, n, m)
	encodeRows(w, res.Out, n, m)
	// Materialize a deferred packed init snapshot before writing; restored
	// results hold it decoded.
	initIn, initOut := res.InitIn(), res.InitOut()
	if initIn != nil {
		encodeRows(w, initIn, n, m)
		encodeRows(w, initOut, n, m)
	}
}

// RestoreResult rebuilds a solved Result for spec on g from a meta block
// and the row bytes written by EncodeRows. The graph must have been built
// from the same canonical loop under the same dims — the class table is
// re-derived from it, and the decoded shapes are validated against it, so a
// payload that does not match (stale semantics behind an aliased content
// address) fails rather than producing wrong facts. Flow functions are not
// restored; ApplyFlow compiles them lazily on first use.
func RestoreResult(g *ir.Graph, spec *Spec, meta ResultMeta, rows []byte) (*Result, error) {
	res := &Result{Graph: g, Spec: spec}
	res.adoptClasses(buildClassTable(g, spec.Gen))
	n := len(g.Nodes)
	m := len(res.Classes)
	if meta.Nodes != n || meta.Classes != m {
		return nil, fmt.Errorf("dataflow: restored shape %dx%d does not match rebuilt graph %dx%d", meta.Nodes, meta.Classes, n, m)
	}
	r := cachefile.NewReader(rows)
	res.In = decodeRows(r, n, m)
	res.Out = decodeRows(r, n, m)
	if meta.HasInit {
		res.initIn = decodeRows(r, n, m)
		res.initOut = decodeRows(r, n, m)
	}
	res.Passes = meta.Passes
	res.ChangedPasses = meta.ChangedPasses
	res.NodeVisits = meta.NodeVisits
	res.FlowApps = meta.FlowApps
	res.Elapsed = meta.Elapsed
	res.FuelBudget = meta.FuelBudget
	res.FuelExhausted = meta.FuelExhausted
	if err := r.Err(); err != nil {
		return nil, err
	}
	if !r.Done() {
		return nil, fmt.Errorf("dataflow: %d trailing bytes after restored rows", len(rows))
	}
	return res, nil
}
