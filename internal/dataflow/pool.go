// Pooling of solver transients. Two mechanisms cooperate:
//
//   - Scratch is an explicitly-owned free list of the per-solve buffers that
//     never escape a solve (the iteration scratch tuple, the init pass's
//     visited row, the shared-context signature mask). A driver keeps one
//     Scratch per worker goroutine and routes it through Options.Scratch, so
//     a worker's steady state re-solves loops with zero transient
//     allocations. When Options.Scratch is nil the solver borrows one from a
//     process-wide sync.Pool, which degrades gracefully to per-P free lists.
//
//   - Result.Release returns a discarded Result's bulk storage — the IN/OUT
//     slab backings and the compiled flow-op arena — to process-wide pools.
//     Only the sole owner of a Result may call it; the driver uses it for
//     the §3.6 with-respect-to solves whose Results are dropped after reuse
//     extraction when the memo cache is disabled.
package dataflow

import (
	"sync"

	"repro/internal/lattice"
)

// Scratch is a reusable bundle of solver transients. It is not safe for
// concurrent use; callers keep one per worker. The zero value is ready.
type Scratch struct {
	visited []bool
	tuple   lattice.Tuple
	mask    []byte
	// words are the packed engine's per-solve word rows (IN, OUT, LO, HI,
	// GEN, scratch), reused across solves on the same worker.
	words [6][]uint64
}

// NewScratch returns an empty scratch bundle (buffers grow on demand).
func NewScratch() *Scratch { return &Scratch{} }

// boolRow returns a cleared []bool of length n, reusing the last one when
// it is big enough.
func (s *Scratch) boolRow(n int) []bool {
	if cap(s.visited) < n {
		s.visited = make([]bool, n)
	} else {
		s.visited = s.visited[:n]
		clear(s.visited)
	}
	return s.visited
}

// tupleRow returns a length-m tuple with unspecified contents (every slot
// is written before it is read by the solver's passes).
func (s *Scratch) tupleRow(m int) lattice.Tuple {
	if cap(s.tuple) < m {
		s.tuple = make(lattice.Tuple, m)
	}
	s.tuple = s.tuple[:m]
	return s.tuple
}

// u64Row returns the length-n word buffer for the given slot with
// unspecified contents (callers clear or fully overwrite it).
func (s *Scratch) u64Row(slot, n int) []uint64 {
	if cap(s.words[slot]) < n {
		s.words[slot] = make([]uint64, n)
	}
	s.words[slot] = s.words[slot][:n]
	return s.words[slot]
}

// byteRow returns a length-n byte buffer with unspecified contents.
func (s *Scratch) byteRow(n int) []byte {
	if cap(s.mask) < n {
		s.mask = make([]byte, n)
	}
	s.mask = s.mask[:n]
	return s.mask
}

// scratchPool backs solves whose Options carry no Scratch.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// scratchFor resolves the scratch for a solve: the caller-owned one when
// set, a pooled one otherwise. done returns a pooled scratch; it is a no-op
// for caller-owned scratches.
func scratchFor(opts *Options) (sc *Scratch, done func()) {
	if opts.Scratch != nil {
		return opts.Scratch, func() {}
	}
	sc = scratchPool.Get().(*Scratch)
	return sc, func() { scratchPool.Put(sc) }
}

// slicePool recycles variable-length slices of one element type. Get
// returns a slice with at least the requested capacity and unspecified
// contents; undersized pooled slices are dropped for the allocator.
type slicePool[T any] struct{ p sync.Pool }

func (sp *slicePool[T]) get(n int) []T {
	if v := sp.p.Get(); v != nil {
		if s := *(v.(*[]T)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n)
}

func (sp *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	sp.p.Put(&s)
}

var (
	distPool     slicePool[lattice.Dist]  // slab backings
	rowPool      slicePool[lattice.Tuple] // slab row headers
	opPool       slicePool[flowOp]        // packed program arenas
	int32Pool    slicePool[int32]         // packed program start offsets
	u64Pool      slicePool[uint64]        // packed program gen bitsets
	presPool     slicePool[lattice.Dist]  // compile-time preserve memo tables
	memoBitsPool slicePool[uint64]        // preserve memo done bitsets
)

// pooledSlab builds a lattice.Slab-shaped n×m matrix over pooled storage,
// returning the rows and the backing for a later Release. Contents are
// unspecified (the pools return dirty buffers): every solver path fully
// overwrites both slabs — init fills every row, and the packed fast path
// decodes or degrade-fills every cell — before a consumer can read them.
func pooledSlab(n, m int) ([]lattice.Tuple, lattice.Tuple) {
	backing := lattice.Tuple(distPool.get(n * m))
	rows := rowPool.get(n + 1)
	rows[0] = nil
	for i := 1; i <= n; i++ {
		rows[i] = backing[(i-1)*m : i*m : i*m]
	}
	return rows, backing
}

// releaseSlab returns a pooled slab's storage.
func releaseSlab(rows []lattice.Tuple, backing lattice.Tuple) {
	distPool.put(backing)
	rowPool.put(rows)
}

// Release returns the Result's bulk storage — IN/OUT slabs and the compiled
// flow-op program — to the solver's pools and nils the released fields.
// Call it only when this Result is about to be discarded and nothing else
// holds a reference to it (never on a memoized/shared Result). Reuse
// records, Classes, Metrics, and the Graph stay valid; In/Out/ApplyFlow do
// not. Results produced by the reference engine release nothing (their
// storage is not pooled) but are still safe to pass here.
func (res *Result) Release() {
	if res.inBack != nil {
		releaseSlab(res.In, res.inBack)
		res.In, res.inBack = nil, nil
	}
	if res.outBack != nil {
		releaseSlab(res.Out, res.outBack)
		res.Out, res.outBack = nil, nil
	}
	if res.prog != nil {
		opPool.put(res.prog.arena)
		int32Pool.put(res.prog.starts)
		u64Pool.put(res.prog.gen)
		res.prog = nil
	}
	if res.initW != nil {
		u64Pool.put(res.initW)
		res.initW = nil
	}
	res.initIn, res.initOut = nil, nil
	res.flowFns = nil
}
