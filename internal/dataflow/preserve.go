// Package dataflow implements the array-reference data flow framework of
// Duesterwald, Gupta & Soffa (PLDI 1993): a monotone framework over the
// chain lattice of iteration distances, with generate / preserve / exit
// flow functions and a fixed point reached in at most three passes over a
// structured loop body (must-problems) or two passes (may-problems).
package dataflow

import (
	"repro/internal/lattice"
	"repro/internal/poly"
	"repro/internal/sema"
)

// RangeOracle resolves symbolic comparisons the preserve derivation
// cannot decide from the affine forms alone. It is the solver's view of
// internal/rangefacts.Facts (kept an interface so the dependency points
// outward); implementations must answer deterministically and may always
// answer "unknown". A nil oracle disables every symbolic resolution.
type RangeOracle interface {
	// LowerBound / UpperBound return a proven constant bound of p.
	LowerBound(p poly.Poly) (int64, bool)
	UpperBound(p poly.Poly) (int64, bool)
	// ProveNonZero reports a proof of p ≠ 0.
	ProveNonZero(p poly.Poly) bool
	// Signature canonically renders the fact set (folded into memo keys).
	Signature() string
}

// KillContext carries the inputs of a preserve-constant computation.
type KillContext struct {
	// Pr is the paper's pr(d,n) predicate value (0 or 1): 0 when the
	// tracked reference occurs in a node preceding the killing node, so the
	// current iteration's instance is part of the tracked range.
	Pr int64
	// May selects overestimating (may) instead of underestimating (must)
	// approximation.
	May bool
	// Backward flips the roles of positive and negative distances
	// (paper §3.4): k(i) = ((a2−a1)·i + (b2−b1))/a1.
	Backward bool
	// UB is the constant loop bound when HasUB; distances ≥ UB−1 denote all
	// instances.
	UB    int64
	HasUB bool
	// SymUB is the loop bound as a polynomial when the bound is symbolic
	// (HasSymUB); with a Facts oracle, kill distances proven ≥ SymUB
	// collapse to the symbolic top of the chain lattice.
	SymUB    poly.Poly
	HasSymUB bool
	// Facts resolves symbolic comparisons (nil = none resolve).
	Facts RangeOracle
}

func (c KillContext) clamp(x lattice.Dist) lattice.Dist {
	if c.HasUB {
		return x.Clamp(c.UB)
	}
	return x
}

// conservative returns the safe extreme for the polarity: for must-problems
// the underestimate "nothing preserved"; for may-problems the overestimate
// "everything preserved".
func (c KillContext) conservative() lattice.Dist {
	if c.May {
		return lattice.All()
	}
	return lattice.None()
}

// PreserveConst computes the constant p of a preserve function
// f(x) = min(x, p): the maximal iteration distance of instances of the
// tracked reference d = X[a1·i+b1] that survive the killing reference
// d' = X[a2·i+b2] in one execution of the killer's node (paper §3.1.2 for
// must-problems, §3.3 for may-problems, §3.4 for backward problems).
//
// The computation distinguishes instances of d at distance δ (δ ≥ pr) that
// the killer overwrites: overwriting happens exactly when
// f2(i) = f1(i−δ), i.e. δ = k(i) with k(i) = ((a1−a2)·i + (b1−b2))/a1.
// Backward problems negate the numerator. Coefficients may be symbolic
// polynomials; cases that cannot be decided symbolically fall back to the
// polarity-appropriate conservative answer.
func PreserveConst(d, kill sema.AffineForm, killAffine bool, c KillContext) lattice.Dist {
	if !killAffine {
		// The killer's accessed region is unknown (non-affine subscript or
		// summarized inner loop): assume it kills everything — unless the
		// problem wants an overestimate, in which case an indefinite kill
		// preserves everything (paper §3.3: "Unless there is a definite
		// kill ... we assume that all instances of d are preserved").
		return c.conservative()
	}

	a1, b1 := d.A, d.B
	a2, b2 := kill.A, kill.B

	// Numerator of k(i): Δa·i + Δb.
	da := a1.Sub(a2)
	db := b1.Sub(b2)
	if c.Backward {
		da, db = da.Neg(), db.Neg()
	}

	a1c, a1IsConst := a1.IsConst()

	// Loop-invariant tracked subscript (a1 = 0): the killer overwrites the
	// single location X[b1] whenever a2·i + b2 = b1 for some iteration.
	if a1IsConst && a1c == 0 {
		a2c, a2IsConst := a2.IsConst()
		switch {
		case a2IsConst && a2c == 0:
			if b1.Equal(b2) {
				// Same location rewritten every iteration: no previous
				// instance in the tracked range survives.
				return killsAtEveryIteration(c)
			}
			if diff, ok := b1.Sub(b2).IsConst(); ok && diff != 0 {
				return lattice.All() // provably disjoint locations
			}
			if c.Facts != nil && c.Facts.ProveNonZero(b1.Sub(b2)) {
				// Range facts prove the two invariant locations distinct
				// (e.g. a guard established b1 > b2).
				return lattice.All()
			}
			return c.conservative() // symbolically undecidable aliasing
		default:
			// A striding killer may hit X[b1] in some iteration; the kill
			// distance varies with i, so it is not definite.
			if c.May {
				return lattice.All()
			}
			// Must: only provable disjointness preserves anything. a2·i+b2 =
			// b1 has an integer solution i unless divisibility fails.
			if a2IsConst {
				if diff, ok := b1.Sub(b2).IsConst(); ok && a2c != 0 && diff%a2c != 0 {
					return lattice.All()
				}
			}
			return lattice.None()
		}
	}

	// k(i) constant in i (Δa = 0).
	if da.IsZero() {
		if db.IsZero() {
			// Textually identical subscripts: k ≡ 0.
			return constKill(0, true, c)
		}
		// k ≡ Δb / a1. Exact symbolic division handles e.g. N/N = 1
		// (paper §3.6 symbolic evaluation).
		if q, ok := db.DivExact(a1); ok {
			if kc, isConst := q.IsConst(); isConst {
				return constKill(kc, true, c)
			}
			// Constant in i but symbolically unknown value: a range-fact
			// proof can still place the kill distance relative to the
			// tracked range or the trip count.
			if p, ok := symbolicConstKill(q, c); ok {
				return p
			}
			return c.conservative()
		}
		// Δb/a1 is not an integer polynomial. When both are integer
		// constants the division simply has a remainder: the kill distance
		// is never an integer, so nothing is ever killed.
		if _, dbConst := db.IsConst(); dbConst && a1IsConst {
			return lattice.All()
		}
		return c.conservative()
	}

	// k has nonzero slope: the kill distance varies across iterations, so a
	// may-problem sees no definite kill.
	if c.May {
		return lattice.All()
	}

	// Must with varying k: the paper's safe approximation
	// p = ⌈min{k(i) | i ∈ I, k(i) > pr}⌉ − 1, with p = ⊤ when k stays below
	// pr on the whole range and p = pr−1 when k can equal pr.
	dac, okDa := da.IsConst()
	dbc, okDb := db.IsConst()
	if !okDa || !okDb || !a1IsConst || a1c == 0 {
		return lattice.None()
	}
	return c.clamp(varyingKill(a1c, dac, dbc, c))
}

// killsAtEveryIteration handles k ≡ pr-style definite kills of the whole
// tracked range.
func killsAtEveryIteration(c KillContext) lattice.Dist {
	if c.Pr == 1 {
		// The tracked range starts at distance 1; a kill at the location
		// each iteration removes every previous instance.
		return lattice.None()
	}
	return lattice.None()
}

// constKill resolves the three paper cases for a constant k ≡ kc.
func constKill(kc int64, _ bool, c KillContext) lattice.Dist {
	switch {
	case kc == c.Pr:
		// Every instance generated is killed: p = ⊥ (must) — and a definite
		// kill at the start of the range also yields "no instance" for may.
		return lattice.None()
	case kc < c.Pr:
		// The killer only affects distances outside the tracked range.
		return lattice.All()
	default:
		// Definite kill at constant distance kc > pr: instances up to
		// kc−1 are preserved (accurate for both polarities).
		return c.clamp(lattice.D(kc - 1))
	}
}

// symbolicConstKill resolves a definite kill at the symbolic (i-free)
// distance q through the range-fact oracle. The cases mirror constKill
// with interval endpoints in place of the constant: a distance proven to
// reach the symbolic trip count collapses to the chain lattice's symbolic
// top, a distance proven below the tracked range preserves everything,
// and one-sided bounds give the polarity-safe prefix (must rounds the
// preserved prefix down to the proven lower bound, may rounds it up to
// the proven upper bound). ok=false when no fact resolves the comparison
// — the caller then falls back to the conservative value, never to the
// symbolic top.
func symbolicConstKill(q poly.Poly, c KillContext) (lattice.Dist, bool) {
	if c.Facts == nil {
		return lattice.None(), false
	}
	if c.HasSymUB {
		// q ≥ UB: instances exist only at distances ≤ UB−1 < q, so the
		// kill never hits a real instance (accurate for both polarities).
		if lb, ok := c.Facts.LowerBound(q.Sub(c.SymUB)); ok && lb >= 0 {
			return lattice.SymTop(), true
		}
	}
	lo, okLo := c.Facts.LowerBound(q)
	hi, okHi := c.Facts.UpperBound(q)
	switch {
	case okLo && okHi && lo == hi:
		return constKill(lo, true, c), true
	case okHi && hi < c.Pr:
		// The kill only affects distances outside the tracked range.
		return lattice.All(), true
	case okLo && lo > c.Pr:
		// Definite kill at distance q ∈ [lo, hi] with the whole interval
		// above the range start: the exact preserve is q−1.
		if c.May {
			if okHi {
				return c.clamp(lattice.D(hi - 1)), true
			}
			return lattice.All(), true
		}
		return c.clamp(lattice.D(lo - 1)), true
	}
	return lattice.None(), false
}

// varyingKill implements the must-approximation for
// k(i) = (dac·i + dbc) / a1c with dac ≠ 0 over the iteration range
// I = [1, UB] (UB = ∞ when unknown).
func varyingKill(a1c, dac, dbc int64, c KillContext) lattice.Dist {
	// q(i) = (dac·i + dbc)/a1c as a real-valued function; increasing iff
	// dac and a1c share sign.
	increasing := (dac > 0) == (a1c > 0)

	// kAtLeast(i, t) ⇔ q(i) ≥ t  ⇔  dac·i + dbc ≥ t·a1c (a1c>0) or ≤ (a1c<0).
	cmpGE := func(i, t int64) bool {
		lhs := dac*i + dbc
		rhs := t * a1c
		if a1c > 0 {
			return lhs >= rhs
		}
		return lhs <= rhs
	}
	// realValueCeil(i) = ⌈q(i)⌉ computed with integer arithmetic.
	realValueCeil := func(i int64) int64 {
		num := dac*i + dbc
		return ceilDiv(num, a1c)
	}

	// The minimal q value strictly above pr over integer i ∈ [1, UB]:
	// since q is monotone, it is attained at the first (increasing) or last
	// (decreasing) i in range with q(i) > pr. "q(i) > pr" over rationals is
	// q(i) ≥ pr + 1/|a1c| — test with strict integer inequality.
	cmpGT := func(i, t int64) bool {
		lhs := dac*i + dbc
		rhs := t * a1c
		if a1c > 0 {
			return lhs > rhs
		}
		return lhs < rhs
	}

	ubKnown := c.HasUB
	ub := c.UB
	if ubKnown && ub < 1 {
		return lattice.All() // empty iteration space: nothing kills
	}

	// If k(i) equals pr exactly at some iteration, the start of the tracked
	// range is killed then; the exact definition
	// p = max{δ | ∀i ∀δ′∈[pr,δ]: δ′ ≠ k(i)} therefore gives p < pr. (The
	// paper's three-case summary omits this crossing case; omitting it is
	// unsound, which our property test TestQuickMustPreserveIsSafe
	// demonstrates.)
	hiBound0 := int64(-1)
	if ubKnown {
		hiBound0 = ub
	}
	if hitsExactly(a1c, dac, dbc, c.Pr, 1, hiBound0, ubKnown) {
		return lattice.D(c.Pr - 1) // pr=0 collapses to None
	}

	var iStar int64
	var found bool
	if increasing {
		// Smallest i ≥ 1 with q(i) > pr.
		if cmpGT(1, c.Pr) {
			iStar, found = 1, true
		} else {
			// Solve q(i) > pr for minimal integer i; binary search over a
			// safe bracket.
			lo, hi := int64(1), int64(1)
			limit := int64(1) << 40
			if ubKnown {
				limit = ub
			}
			for hi < limit && !cmpGT(hi, c.Pr) {
				hi *= 2
				if hi > limit {
					hi = limit
				}
			}
			if cmpGT(hi, c.Pr) {
				for lo < hi {
					mid := lo + (hi-lo)/2
					if cmpGT(mid, c.Pr) {
						hi = mid
					} else {
						lo = mid + 1
					}
				}
				iStar, found = lo, true
			}
		}
		if found && ubKnown && iStar > ub {
			found = false
		}
	} else {
		// Decreasing: the minimal value > pr sits at the largest valid i.
		if !ubKnown {
			// q decreases without bound; arbitrarily close to pr from above
			// whenever q(1) > pr. The infimum over integers is attained at
			// the largest i with q(i) > pr; without an upper bound we can
			// still compute it: find largest i with q(i) > pr.
			if !cmpGT(1, c.Pr) {
				// Entire range below: check a kill exactly at pr.
				if hitsExactly(a1c, dac, dbc, c.Pr, 1, -1, false) {
					return lattice.D(c.Pr - 1)
				}
				return lattice.All()
			}
			lo, hi := int64(1), int64(2)
			for cmpGT(hi, c.Pr) && hi < int64(1)<<40 {
				hi *= 2
			}
			for lo < hi {
				mid := lo + (hi-lo+1)/2
				if cmpGT(mid, c.Pr) {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			iStar, found = lo, true
		} else {
			if cmpGT(ub, c.Pr) {
				iStar, found = ub, true
			} else if cmpGT(1, c.Pr) {
				lo, hi := int64(1), ub
				for lo < hi {
					mid := lo + (hi-lo+1)/2
					if cmpGT(mid, c.Pr) {
						lo = mid
					} else {
						hi = mid - 1
					}
				}
				iStar, found = lo, true
			}
		}
	}

	if !found {
		// ∀i ∈ I: q(i) ≤ pr. If q can equal pr exactly at an integer i the
		// start of the tracked range is killed in some iteration: for a
		// must-problem assume the worst.
		hiBound := int64(-1)
		if ubKnown {
			hiBound = ub
		}
		if hitsExactly(a1c, dac, dbc, c.Pr, 1, hiBound, ubKnown) {
			return lattice.D(c.Pr - 1) // pr=0 collapses to None
		}
		return lattice.All()
	}
	_ = cmpGE
	p := realValueCeil(iStar) - 1
	if p < c.Pr {
		return lattice.D(c.Pr - 1)
	}
	return lattice.D(p)
}

// hitsExactly reports whether q(i) = t for some integer i in [lo, hi]
// ([lo, ∞) when !hiKnown) with integer q value: dac·i + dbc = t·a1c.
func hitsExactly(a1c, dac, dbc, t, lo, hi int64, hiKnown bool) bool {
	num := t*a1c - dbc
	if dac == 0 {
		return num == 0
	}
	if num%dac != 0 {
		return false
	}
	i := num / dac
	if i < lo {
		return false
	}
	if hiKnown && i > hi {
		return false
	}
	return true
}

// ceilDiv returns ⌈a/b⌉ for b ≠ 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// floorDiv returns ⌊a/b⌋ for b ≠ 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

var _ = floorDiv // kept for symmetry with ceilDiv; used by tests

// PreserveAgainstRegion computes the preserve constant when the killer
// touches a known constant address interval [lo, hi] — the §3.2 refinement
// for summarized inner loops with constant bounds. The tracked class
// d = X[a·i + b] has its distance-δ instance at address a·(i−δ)+b; the
// kill affects δ exactly when some iteration i ∈ I puts that address
// inside the region.
//
// For must-problems the result is the largest δ-prefix [pr..p] no element
// of which is ever hit; may-problems keep everything unless the whole
// range is definitely hit, which a region cannot establish — so they
// preserve all.
func PreserveAgainstRegion(d sema.AffineForm, lo, hi int64, c KillContext) lattice.Dist {
	if c.May {
		return lattice.All()
	}
	a, b, ok := d.ConstCoeffs()
	if !ok {
		// Symbolic class offset: the region might sit anywhere relative to
		// it — fall back to the conservative kill.
		return lattice.None()
	}
	if a == 0 {
		if b >= lo && b <= hi {
			return lattice.None()
		}
		return lattice.All()
	}
	// Instance addresses at distance δ over i ∈ [1, UB]: the interval
	// a·(1−δ)+b … a·(UB−δ)+b (endpoints ordered by sign of a). Without a
	// known bound the i-interval is [1, ∞).
	// killed(δ) ⇔ that interval intersects [lo, hi].
	//
	// Solve for the smallest killed δ ≥ pr. Each endpoint is linear in δ
	// with slope −a, so the killed set of δ is itself an interval; compute
	// its bounds by direct inequality manipulation.
	var dMin, dMax int64
	unboundedAbove := !c.HasUB
	if a > 0 {
		// addresses [a(1−δ)+b, a(UB−δ)+b]; intersects iff
		// a(1−δ)+b ≤ hi  ∧  a(UB−δ)+b ≥ lo
		// ⇔ δ ≥ (a + b − hi)/a  ∧  δ ≤ (a·UB + b − lo)/a.
		dMin = ceilDiv(a+b-hi, a)
		if !unboundedAbove {
			dMax = floorDiv(a*c.UB+b-lo, a)
		}
	} else {
		// a < 0: addresses [a(UB−δ)+b, a(1−δ)+b]; intersects iff
		// a(UB−δ)+b ≤ hi  ∧  a(1−δ)+b ≥ lo
		// ⇔ δ ≥ (a + b − lo)/a  ∧  δ ≤ (a·UB + b − hi)/a.
		dMin = ceilDiv(a+b-lo, a)
		if !unboundedAbove {
			dMax = floorDiv(a*c.UB+b-hi, a)
		}
	}
	if dMin < c.Pr {
		dMin = c.Pr
	}
	if !unboundedAbove {
		if c.UB-1 < dMax {
			dMax = c.UB - 1
		}
		if dMin > dMax {
			return lattice.All() // no distance in range is ever hit
		}
	}
	// Distances pr..dMin−1 are provably untouched.
	return lattice.D(dMin - 1).Clamp(boundOrZero(c))
}

func boundOrZero(c KillContext) int64 {
	if c.HasUB {
		return c.UB
	}
	return 0
}

// SameLinearPart reports whether two affine forms have identical
// coefficients of the induction variable (a1 = a2), the precondition of the
// may-problem's "definite kill" (paper §3.3: d' of the form X[f(i)+c]).
func SameLinearPart(d, kill sema.AffineForm) bool {
	return d.A.Equal(kill.A)
}

// KillDistance returns the constant kill distance c when
// kill = X[f(i)±…] rewrites d's instance from exactly c iterations earlier,
// i.e. k(i) is the integer constant c; ok=false otherwise.
func KillDistance(d, kill sema.AffineForm, backward bool) (int64, bool) {
	da := d.A.Sub(kill.A)
	db := d.B.Sub(kill.B)
	if backward {
		da, db = da.Neg(), db.Neg()
	}
	if !da.IsZero() {
		return 0, false
	}
	q, ok := db.DivExact(d.A)
	if !ok {
		return 0, false
	}
	c, isConst := q.IsConst()
	if !isConst {
		return 0, false
	}
	return c, true
}

var _ = poly.Zero // poly is used by tests of this file's helpers
