package dataflow

import (
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/poly"
	"repro/internal/sema"
)

// form builds an affine form a·i + b with constant coefficients.
func form(a, b int64) sema.AffineForm {
	return sema.AffineForm{IV: "i", A: poly.Const(a), B: poly.Const(b)}
}

// symForm builds an affine form with polynomial coefficients.
func symForm(a, b poly.Poly) sema.AffineForm {
	return sema.AffineForm{IV: "i", A: a, B: b}
}

func must(pr int64) KillContext { return KillContext{Pr: pr} }
func may(pr int64) KillContext  { return KillContext{Pr: pr, May: true} }
func bwd(pr int64) KillContext  { return KillContext{Pr: pr, Backward: true} }
func mustUB(pr, ub int64) KillContext {
	return KillContext{Pr: pr, UB: ub, HasUB: true}
}

func expect(t *testing.T, got, want lattice.Dist, label string) {
	t.Helper()
	if !got.Eq(want) {
		t.Errorf("%s: p = %s, want %s", label, got, want)
	}
}

// TestPaperCase1Identical: k ≡ pr — every generated instance killed
// (paper example: textually identical references with pr = 0).
func TestPaperCase1Identical(t *testing.T) {
	d := form(1, 0)
	expect(t, PreserveConst(d, form(1, 0), true, must(0)), lattice.None(), "X[i] killed by X[i]")
}

// TestPaperCase2Below: d = X[i], d' = X[i+2]: k ≡ −2 < pr — no instance of
// d is ever redefined by d' (paper's explicit example).
func TestPaperCase2Below(t *testing.T) {
	expect(t, PreserveConst(form(1, 0), form(1, 2), true, must(0)),
		lattice.All(), "X[i] vs X[i+2]")
	expect(t, PreserveConst(form(1, 0), form(1, 2), true, must(1)),
		lattice.All(), "X[i] vs X[i+2] pr=1")
}

// TestPaperCase3Varying: d = X[2i], d' = X[i]: k(i) = i/2 has positive
// values; p = ⌈min{k > pr}⌉ − 1 = ⌈1/2⌉ − 1 = 0 (paper's explicit example).
func TestPaperCase3Varying(t *testing.T) {
	expect(t, PreserveConst(form(2, 0), form(1, 0), true, must(0)),
		lattice.D(0), "X[2i] vs X[i]")
}

// TestFig1Node3Preserve: d = C[i+2], d' = C[i], pr = 0: k ≡ 2 → p = 1
// (the constant that drives Table 1's node-3 column).
func TestFig1Node3Preserve(t *testing.T) {
	expect(t, PreserveConst(form(1, 2), form(1, 0), true, must(0)),
		lattice.D(1), "C[i+2] vs C[i]")
}

// TestFig1Node2Preserve: d = B[i], d' = B[2i]: k(i) = −i always below pr —
// everything preserved.
func TestFig1Node2Preserve(t *testing.T) {
	expect(t, PreserveConst(form(1, 0), form(2, 0), true, must(1)),
		lattice.All(), "B[i] vs B[2i]")
}

// TestConstantKillAbovePr: d = X[i], d' = X[i-3]: k ≡ 3 → p = 2.
func TestConstantKillAbovePr(t *testing.T) {
	expect(t, PreserveConst(form(1, 0), form(1, -3), true, must(0)),
		lattice.D(2), "X[i] vs X[i-3]")
}

// TestNonIntegerConstantK: d = X[2i], d' = X[2i+1]: k ≡ −1/2 — never an
// integer, so no instance is ever killed (disjoint parity).
func TestNonIntegerConstantK(t *testing.T) {
	expect(t, PreserveConst(form(2, 0), form(2, 1), true, must(0)),
		lattice.All(), "X[2i] vs X[2i+1]")
}

// TestNegativeStride: d = X[-i+100], d' = X[-i+98]: k = (b1-b2)/a1 =
// 2/(-1) = −2 < pr — preserved.
func TestNegativeStride(t *testing.T) {
	expect(t, PreserveConst(form(-1, 100), form(-1, 98), true, must(0)),
		lattice.All(), "X[100-i] vs X[98-i]")
	// And the killing direction: d' = X[-i+102]: k = −2/−1 = 2 → p = 1.
	expect(t, PreserveConst(form(-1, 100), form(-1, 102), true, must(0)),
		lattice.D(1), "X[100-i] vs X[102-i]")
}

// TestNonAffineKiller kills everything in must-problems and nothing in
// may-problems.
func TestNonAffineKiller(t *testing.T) {
	d := form(1, 0)
	expect(t, PreserveConst(d, sema.AffineForm{}, false, must(0)),
		lattice.None(), "non-affine killer (must)")
	expect(t, PreserveConst(d, sema.AffineForm{}, false, may(0)),
		lattice.All(), "non-affine killer (may)")
}

// TestLoopInvariantTracked: d = X[5].
func TestLoopInvariantTracked(t *testing.T) {
	d := form(0, 5)
	// Killed by X[5] each iteration.
	expect(t, PreserveConst(d, form(0, 5), true, must(0)),
		lattice.None(), "X[5] vs X[5]")
	// Disjoint constant location.
	expect(t, PreserveConst(d, form(0, 7), true, must(0)),
		lattice.All(), "X[5] vs X[7]")
	// Striding killer may hit location 5: conservative for must.
	expect(t, PreserveConst(d, form(1, 0), true, must(0)),
		lattice.None(), "X[5] vs X[i] (must)")
	expect(t, PreserveConst(d, form(1, 0), true, may(0)),
		lattice.All(), "X[5] vs X[i] (may)")
	// Striding killer provably missing by divisibility: X[2i] never hits 5.
	expect(t, PreserveConst(d, form(2, 0), true, must(0)),
		lattice.All(), "X[5] vs X[2i]")
}

// TestMayDefiniteKill: paper §3.3 — d' = X[f(i)+c] kills definitively at
// distance |c|/a; only instances up to that distance − 1 are preserved.
func TestMayDefiniteKillConstants(t *testing.T) {
	// d = X[i], d' = X[i-1]: k ≡ 1 → instances up to 0 preserved.
	expect(t, PreserveConst(form(1, 0), form(1, -1), true, may(0)),
		lattice.D(0), "X[i] vs X[i-1] (may)")
	// d' = X[i-4]: k ≡ 4 → up to 3.
	expect(t, PreserveConst(form(1, 0), form(1, -4), true, may(0)),
		lattice.D(3), "X[i] vs X[i-4] (may)")
	// Varying k: no definite kill.
	expect(t, PreserveConst(form(2, 0), form(1, 0), true, may(0)),
		lattice.All(), "X[2i] vs X[i] (may)")
}

// TestBackwardFlip: in a backward problem the roles of the distances are
// interchanged — d = X[i], d' = X[i+1] kills at backward distance 1.
func TestBackwardFlip(t *testing.T) {
	// Forward: k = (0−1)/1 = −1 < pr → preserved.
	expect(t, PreserveConst(form(1, 0), form(1, 1), true, must(0)),
		lattice.All(), "X[i] vs X[i+1] forward")
	// Backward: k = +1 → p = 0.
	expect(t, PreserveConst(form(1, 0), form(1, 1), true, bwd(0)),
		lattice.D(0), "X[i] vs X[i+1] backward")
	// And the mirrored pair preserves backward.
	expect(t, PreserveConst(form(1, 0), form(1, -1), true, bwd(0)),
		lattice.All(), "X[i] vs X[i-1] backward")
}

// TestSymbolicDivisionOriented: the paper's §3.6 example — linearized forms
// N·i + (N+j) and N·i + j resolve their kill distance via the exact
// symbolic division N/N = 1.
func TestSymbolicDivisionOriented(t *testing.T) {
	n := poly.Sym("N")
	j := poly.Sym("j")
	newer := symForm(n, n.Add(j)) // X[N(i+1)+j] written later
	older := symForm(n, j)        // X[N·i+j]
	// Tracking `newer`, killed by `older`: k = ((N+j)−j)/N = 1 → p = 0.
	expect(t, PreserveConst(newer, older, true, must(0)),
		lattice.D(0), "N*i+N+j vs N*i+j")
	// Tracking `older`, killed by `newer`: k = −1 → All.
	expect(t, PreserveConst(older, newer, true, must(0)),
		lattice.All(), "N*i+j vs N*i+N+j")
}

// TestSymbolicUndecidable: unknown symbolic constant distance falls back by
// polarity.
func TestSymbolicUndecidable(t *testing.T) {
	d := symForm(poly.Const(1), poly.Zero)
	kill := symForm(poly.Const(1), poly.Sym("c"))
	expect(t, PreserveConst(d, kill, true, must(0)), lattice.None(), "must")
	expect(t, PreserveConst(d, kill, true, may(0)), lattice.All(), "may")
}

// TestUBEmptyIterationSpace: UB < 1 means no iterations — nothing kills.
func TestUBEmptyIterationSpace(t *testing.T) {
	expect(t, PreserveConst(form(2, 0), form(1, 0), true, mustUB(0, 0)),
		lattice.All(), "empty range")
}

// TestUBLimitsKillSearch: d = X[2i], d' = X[i]: smallest k > 0 needs i = 1
// (k = 1/2 → p = 0); with UB known the result also clamps into range.
func TestUBLimitsKillSearch(t *testing.T) {
	expect(t, PreserveConst(form(2, 0), form(1, 0), true, mustUB(0, 1000)),
		lattice.D(0), "2i vs i with UB")
	// d = X[i], d' = X[2i-40]: k(i) = 40−i, decreasing; within i ∈ [1,10]
	// the minimum above 0 is k(10) = 30, so p = 29 — which exceeds UB−1 = 9
	// and therefore clamps to ⊤ (all 9 possible previous instances live).
	expect(t, PreserveConst(form(1, 0), form(2, -40), true, mustUB(0, 10)),
		lattice.All(), "decreasing k with small UB clamps")
	// With UB = 100 the range reaches k(40) = 0 = pr: at iteration 40 the
	// killer X[2·40−40] = X[40] overwrites X[i]'s current element, so the
	// exact formula kills the whole tracked range (the paper's three-case
	// approximation would report p = 0 here, which is unsound).
	expect(t, PreserveConst(form(1, 0), form(2, -40), true, mustUB(0, 100)),
		lattice.None(), "decreasing k crossing pr exactly")
}

// TestVaryingDecreasingUnbounded: k decreasing without UB hits pr = 0
// exactly at i = 40, so nothing in the tracked range survives; a shifted
// killer with no exact crossing keeps the approximation path.
func TestVaryingDecreasingUnbounded(t *testing.T) {
	expect(t, PreserveConst(form(1, 0), form(2, -40), true, must(0)),
		lattice.None(), "decreasing unbounded crossing pr")
	// d = X[2i], d' = X[4i-39]: k(i) = (−2i+39)/2 = 19.5−i, never an
	// integer at pr... k(i) values are half-integers: k(i) = pr = 0 would
	// need i = 19.5 — no exact hit; min positive value at i = 19 → 0.5 →
	// p = ⌈0.5⌉−1 = 0.
	expect(t, PreserveConst(form(2, 0), form(4, -39), true, must(0)),
		lattice.D(0), "decreasing unbounded no crossing")
}

// TestVaryingEqualsPrOnly: k ≤ pr everywhere but hits pr at an integer
// point: the start of the range dies in some iteration.
func TestVaryingEqualsPrOnly(t *testing.T) {
	// d = X[i], d' = X[2i]: k(i) = −i ≤ 0 < ... with pr=0: k(i)=0 nowhere in
	// i ≥ 1 → All? k(i) = (1−2)i/1 = −i, never 0 for i ≥ 1 → All.
	expect(t, PreserveConst(form(1, 0), form(2, 0), true, must(0)),
		lattice.All(), "k strictly below pr")
}

// TestKillDistanceHelper covers the §3.3 helper used by may-preserve and
// the load/store optimizers.
func TestKillDistanceHelper(t *testing.T) {
	if c, ok := KillDistance(form(1, 0), form(1, -2), false); !ok || c != 2 {
		t.Errorf("KillDistance = (%d,%v), want (2,true)", c, ok)
	}
	if _, ok := KillDistance(form(2, 0), form(1, 0), false); ok {
		t.Error("varying distance must not be definite")
	}
	if c, ok := KillDistance(form(1, 0), form(1, 3), true); !ok || c != 3 {
		t.Errorf("backward KillDistance = (%d,%v), want (3,true)", c, ok)
	}
}

// TestCeilFloorDiv checks the integer division helpers across signs.
func TestCeilFloorDiv(t *testing.T) {
	cases := []struct{ a, b, ceil, floor int64 }{
		{7, 2, 4, 3}, {-7, 2, -3, -4}, {7, -2, -3, -4}, {-7, -2, 4, 3},
		{6, 3, 2, 2}, {-6, 3, -2, -2}, {0, 5, 0, 0},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
	}
}

// TestQuickMustPreserveIsSafe is the key soundness property: for random
// constant-coefficient references and any distance δ within the preserved
// range, no iteration's kill actually overwrites the instance at distance
// δ — i.e. p never overestimates for must-problems.
func TestQuickMustPreserveIsSafe(t *testing.T) {
	const ub = 40
	f := func(a1v, b1v, a2v, b2v int8, prBit bool) bool {
		a1 := int64(a1v%5) + 1 // 1..5
		b1 := int64(b1v % 10)
		a2 := int64(a2v % 6) // -5..5, may be 0
		b2 := int64(b2v % 10)
		pr := int64(0)
		if prBit {
			pr = 1
		}
		d := form(a1, b1)
		kill := form(a2, b2)
		p := PreserveConst(d, kill, true, mustUB(pr, ub))
		// Enumerate ground truth: distance δ is killed iff ∃i ∈ [1,ub]:
		// f2(i) == f1(i−δ).
		killed := func(delta int64) bool {
			for i := int64(1); i <= ub; i++ {
				if a2*i+b2 == a1*(i-delta)+b1 {
					return true
				}
			}
			return false
		}
		for delta := pr; delta <= ub-1; delta++ {
			if p.Covers(delta) && killed(delta) {
				t.Logf("unsafe: d=%d*i%+d kill=%d*i%+d pr=%d p=%s δ=%d",
					a1, b1, a2, b2, pr, p, delta)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMayPreserveIsComplete: for may-problems p never underestimates.
// Ground truth comes from an instance simulation that mirrors the
// framework's cumulative semantics: one instance of d is generated per
// iteration, ages by one per iteration, and dies when the killer overwrites
// its location. Every age still alive after the loop must be covered by the
// steady-state value min-capped by p across iterations (x ↦ min(x,p)++
// starting at 0 reaches at least min(p, age) — so completeness demands p
// covers every surviving age up to the clamp).
func TestQuickMayPreserveIsComplete(t *testing.T) {
	const ub = 40
	f := func(a1v, b1v, a2v, b2v int8) bool {
		a1 := int64(a1v%5) + 1
		b1 := int64(b1v % 10)
		a2 := int64(a2v % 6)
		b2 := int64(b2v % 10)
		if a1 == a2 && b1 == b2 {
			// A textually identical killer is always a member of the
			// tracked class, where the generate function applies instead of
			// the preserve function — out of PreserveConst's contract.
			return true
		}
		d := form(a1, b1)
		kill := form(a2, b2)
		p := PreserveConst(d, kill, true, KillContext{Pr: 0, May: true, UB: ub, HasUB: true})

		// Simulate: born[j] alive until some iteration t > j overwrites its
		// location a1·j + b1 via a2·t + b2.
		alive := map[int64]bool{}
		for i := int64(1); i <= ub; i++ {
			alive[i] = true // instance born at iteration i
			for j := range alive {
				if alive[j] && a2*i+b2 == a1*j+b1 && i > j {
					alive[j] = false
				}
			}
		}
		for j := int64(1); j <= ub; j++ {
			if !alive[j] {
				continue
			}
			age := ub - j
			if age > ub-2 {
				continue // clamp region: ages ≥ UB−1 are ⊤ territory
			}
			if !p.Covers(age) {
				t.Logf("incomplete: d=%d*i%+d kill=%d*i%+d p=%s surviving age=%d",
					a1, b1, a2, b2, p, age)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
