package dataflow

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/lattice"
	"repro/internal/poly"
	"repro/internal/sema"
)

// These tests cover the §3.2 refinement: a summarized inner loop with
// constant bounds kills only the addresses it can actually touch.

func TestRegionDisjointPreservesAll(t *testing.T) {
	// Inner loop touches X[1..50]; the outer class lives at X[j+100].
	g := buildLoop(t, `
do j = 1, 20
  X[j+100] := X[j+99]
  do i = 1, 50
    X[i] := 0
  enddo
  Y[j] := X[j+100]
enddo
`)
	res := Solve(g, mustReach(), nil)
	var xClass *Class
	for _, c := range res.Classes {
		if c.Array == "X" {
			xClass = c
		}
	}
	if xClass == nil {
		t.Fatal("class missing")
	}
	// The class must survive the summary node: distance 0 at the Y node.
	var yNode *ir.Node
	for _, nd := range g.Nodes {
		if nd.Kind == ir.KindStmt && len(nd.Refs) > 0 && nd.Refs[len(nd.Refs)-1].Array == "Y" {
			yNode = nd
		}
	}
	if yNode == nil {
		t.Fatalf("Y node missing\n%s", g.Dump())
	}
	if got := res.InAt(yNode, xClass); !got.Covers(0) {
		t.Errorf("IN[Y-node, X[j+100]] = %s, must cover 0 (disjoint inner region)\n%s",
			got, g.Dump())
	}
}

func TestRegionOverlappingKills(t *testing.T) {
	// Inner loop touches X[1..500] which overlaps the outer accesses: the
	// conservative kill applies.
	g := buildLoop(t, `
do j = 1, 20
  X[j+100] := 1
  do i = 1, 500
    X[i] := 0
  enddo
  Y[j] := X[j+100]
enddo
`)
	res := Solve(g, mustReach(), nil)
	var xClass *Class
	for _, c := range res.Classes {
		if c.Array == "X" {
			xClass = c
		}
	}
	var yNode *ir.Node
	for _, nd := range g.Nodes {
		if nd.Kind == ir.KindStmt && len(nd.Refs) > 0 && nd.Refs[len(nd.Refs)-1].Array == "Y" {
			yNode = nd
		}
	}
	if got := res.InAt(yNode, xClass); !got.IsNone() {
		t.Errorf("IN[Y-node, X[j+100]] = %s, want ⊥ (inner loop clobbers the element)", got)
	}
}

func TestRegionPartialOverlapDistanceCutoff(t *testing.T) {
	// Inner region X[1..10]; outer defs at X[j]: at iteration j the
	// distance-δ instance sits at address j−δ, which falls inside [1,10]
	// whenever j−δ ≤ 10 — with j up to 20 every distance eventually
	// collides except none... the refinement computes the largest provably
	// clean prefix. With the region starting at 1 and addresses ≥ 1, all
	// distances can collide (j = δ+1 puts the instance at address 1):
	// expect the conservative cap.
	g := buildLoop(t, `
do j = 1, 20
  X[j+10] := 1
  do i = 1, 10
    X[i] := 0
  enddo
  Y[j] := X[j+10]
enddo
`)
	// Class X[j+10]: distance-δ instance at address j+10−δ ∈ [11−δ, 30−δ].
	// Region [1,10]: overlap needs j+10−δ ≤ 10 ⇔ δ ≥ j ≥ 1 … smallest
	// killed δ is 1 (at j=1... δ ≥ j+... compute: killed iff ∃j∈[1,20]:
	// 1 ≤ j+10−δ ≤ 10 ⇔ δ ≥ j ∧ δ ≤ j+9 — for δ=1, j=1 works: killed.
	// δ=0: needs j ≤ −... j+10−δ ≤ 10 ⇔ j ≤ δ = 0: impossible → distance 0
	// survives.
	res := Solve(g, mustReach(), nil)
	var xClass *Class
	for _, c := range res.Classes {
		if c.Array == "X" {
			xClass = c
		}
	}
	var yNode *ir.Node
	for _, nd := range g.Nodes {
		if nd.Kind == ir.KindStmt && len(nd.Refs) > 0 && nd.Refs[len(nd.Refs)-1].Array == "Y" {
			yNode = nd
		}
	}
	got := res.InAt(yNode, xClass)
	if !got.Covers(0) {
		t.Errorf("distance 0 must survive the inner region: %s", got)
	}
	if got.Covers(1) {
		t.Errorf("distance 1 must be killed by the inner region: %s", got)
	}
}

func TestRegionSymbolicInnerBoundConservative(t *testing.T) {
	// Symbolic inner bound: no region, conservative kill.
	g := buildLoop(t, `
do j = 1, 20
  X[j+100] := 1
  do i = 1, N
    X[i] := 0
  enddo
  Y[j] := X[j+100]
enddo
`)
	res := Solve(g, mustReach(), nil)
	var xClass *Class
	for _, c := range res.Classes {
		if c.Array == "X" {
			xClass = c
		}
	}
	var yNode *ir.Node
	for _, nd := range g.Nodes {
		if nd.Kind == ir.KindStmt && len(nd.Refs) > 0 && nd.Refs[len(nd.Refs)-1].Array == "Y" {
			yNode = nd
		}
	}
	if got := res.InAt(yNode, xClass); !got.IsNone() {
		t.Errorf("symbolic inner bound must kill conservatively: %s", got)
	}
}

// TestQuickRegionPreserveSafe: brute-force soundness of the interval math
// across random regions, strides and bounds.
func TestQuickRegionPreserveSafe(t *testing.T) {
	f := func(av, bv int8, loV, width uint8, prBit bool, ubV uint8) bool {
		a := int64(av%5) + 1 // 1..5
		if av < 0 {
			a = -a
		}
		b := int64(bv % 20)
		lo := int64(loV % 40)
		hi := lo + int64(width%20)
		pr := int64(0)
		if prBit {
			pr = 1
		}
		ub := int64(ubV%30) + 1
		d := sema.AffineForm{IV: "i", A: poly.Const(a), B: poly.Const(b)}
		p := PreserveAgainstRegion(d, lo, hi, KillContext{Pr: pr, UB: ub, HasUB: true})
		killed := func(delta int64) bool {
			for i := int64(1); i <= ub; i++ {
				addr := a*(i-delta) + b
				if addr >= lo && addr <= hi {
					return true
				}
			}
			return false
		}
		for delta := pr; delta <= ub-1; delta++ {
			if p.Covers(delta) && killed(delta) {
				t.Logf("unsafe: a=%d b=%d region=[%d,%d] pr=%d ub=%d p=%s δ=%d",
					a, b, lo, hi, pr, ub, p, delta)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestRegionMayPreservesAll: regions never tighten may-information.
func TestRegionMayPreservesAll(t *testing.T) {
	d := sema.AffineForm{IV: "i", A: poly.Const(1), B: poly.Const(0)}
	got := PreserveAgainstRegion(d, 0, 1000, KillContext{Pr: 0, May: true})
	if !got.Eq(lattice.All()) {
		t.Fatalf("may-problem region cap = %s, want ⊤", got)
	}
}
