package dataflow

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/lattice"
	"repro/internal/poly"
	"repro/internal/sema"
)

// Spec parameterizes the framework with the pair (G, K) of paper §3.1: a
// predicate selecting the references that generate instances and one
// selecting the references that kill instances, together with the problem's
// direction and polarity.
type Spec struct {
	// Name identifies the problem in reports (e.g. "must-reaching-defs").
	Name string
	// Backward solves on the reverse graph with the backward kill-distance
	// function (paper §3.4).
	Backward bool
	// May selects the reverse lattice (meet = max) and overestimating
	// preserve constants (paper §3.3).
	May bool
	// Gen reports whether a reference generates instances.
	Gen func(r *ir.Ref) bool
	// Kill reports whether a reference kills instances.
	Kill func(r *ir.Ref) bool
}

// Class is one tracked entity of the analysis: the equivalence class of
// generating references with the same array and the same affine subscript.
// In the common case each class has a single member (e.g. the four
// definitions of Figure 1); δ-busy stores track textually distinct
// subscript expressions, which this classing realizes.
type Class struct {
	Index int // position in the solution tuples
	Array string
	Form  sema.AffineForm
	// Members are the references of this class in source order.
	Members []*ir.Ref
}

// String renders the class by its first member's textual reference,
// e.g. "C[i + 2]" or "X[i + 1, j]".
func (c *Class) String() string {
	if len(c.Members) > 0 {
		return ast.ExprString(c.Members[0].Expr)
	}
	return fmt.Sprintf("%s[%s]", c.Array, c.Form)
}

// Result is the fixed point solution of one problem instance on one graph.
type Result struct {
	Graph   *ir.Graph
	Spec    *Spec
	Classes []*Class
	// ct is the class table behind Classes/ClassOf; ClassFor answers from
	// its lazily built key index in O(1) instead of a scan per query.
	ct *classTable
	// prZero, when set (packed engine), holds one bitset per class over node
	// IDs with pr(class, node) = 0; prOf answers from it without touching
	// the members.
	prZero [][]uint64

	// In and Out are the fixed point tuples per node ID (1-based). For
	// backward problems, following the paper's convention, In[n] describes
	// node n's *exit* (information entering n in the reversed graph) and
	// Out[n] its entry.
	In  []lattice.Tuple
	Out []lattice.Tuple

	// initIn / initOut snapshot the initialization pass (must-problems);
	// read them through InitIn/InitOut. The packed engine defers decoding:
	// initW holds the packed init-pass words (IN rows, then OUT rows) and
	// initPk their layout until the first accessor call, so solves whose
	// snapshot nobody reads never materialize it.
	initIn   []lattice.Tuple
	initOut  []lattice.Tuple
	initW    []uint64
	initPk   lattice.Packing
	initOnce sync.Once
	// Trace holds per-pass snapshots of (In, Out) when solving with
	// CollectTrace (pass 1 first).
	Trace []TraceEntry

	// Passes is the number of iteration passes executed until the tuples
	// stabilized (the stabilizing confirmation pass included).
	Passes int
	// ChangedPasses is the number of passes that changed at least one tuple.
	ChangedPasses int
	// NodeVisits counts every node visit across the initialization and all
	// iteration passes.
	NodeVisits int
	// FlowApps counts flow-function applications (one per tracked class per
	// node visit) during the iteration passes.
	FlowApps int
	// Elapsed is the wall time of the Solve call.
	Elapsed time.Duration

	// FuelBudget is the resolved fuel budget the solve ran under (the
	// explicit Options.Fuel, or the derived never-binding default).
	FuelBudget int64
	// FuelExhausted reports that the iteration ran out of fuel and every
	// tuple was degraded to the claim-nothing value of the problem's
	// polarity (must → ⊥, may → ⊤). Degraded results are sound but carry
	// no information; consumers surface them as "unknown".
	FuelExhausted bool

	// flowFns are the compiled per-node, per-class flow functions of the
	// reference engine, kept so consumers (the framework self-check
	// analyzer) can re-apply them to arbitrary lattice values after the
	// solve. Indexed [nodeID][classIndex]. Packed results keep prog instead
	// and serve ApplyFlow as views into its op arena. Results restored from
	// the persistent cache carry neither and compile flowFns lazily under
	// flowOnce on the first ApplyFlow call.
	flowFns  [][]flowFn
	prog     *packedProgram
	flowOnce sync.Once

	// facts is the range-fact oracle the solve compiled its preserve
	// constants under (nil = none); symUB/hasSymUB cache the loop bound as
	// a polynomial when the bound is symbolic. Results restored from the
	// persistent cache must have the original oracle re-attached via
	// SetOracle BEFORE the first ApplyFlow call, or the lazily recompiled
	// flow functions would disagree with the cached tuples.
	facts    RangeOracle
	symUB    poly.Poly
	hasSymUB bool

	// inBack / outBack are the pooled backings of the In/Out slabs (packed
	// engine only); Release returns them to the pools. Nil after Release or
	// for reference-engine results.
	inBack  lattice.Tuple
	outBack lattice.Tuple
}

// Metrics is the cheap per-solve instrumentation bundle: the empirical
// check of the paper's ≤ 3-pass claim plus the raw work counters a driver
// aggregates across loops.
type Metrics struct {
	// Nodes and Classes give the problem size (N and m of the paper's
	// O(N·m) bound).
	Nodes   int
	Classes int
	// Passes is the total iteration passes (confirmation pass included);
	// ChangedPasses those that changed a tuple (paper claim: ≤ 2 for
	// must-problems, ≤ 1 for may-problems).
	Passes        int
	ChangedPasses int
	// NodeVisits counts node visits across initialization and iteration.
	NodeVisits int
	// FlowApps counts per-class flow-function applications while iterating.
	FlowApps int
	// Elapsed is the solve's wall time.
	Elapsed time.Duration
	// FuelExhausted reports that the solve (or, after Add, any aggregated
	// solve) ran out of fuel and degraded its tuples to "unknown".
	FuelExhausted bool
}

// symUBOf returns the loop bound as a polynomial over invariant symbols
// when the bound exists but is not a compile-time constant. A bound that
// fails to convert (e.g. mentions an array element) yields ok=false and
// symbolic-top resolution is simply unavailable.
func symUBOf(g *ir.Graph) (poly.Poly, bool) {
	if g.HasUB || g.UB == nil {
		return poly.Poly{}, false
	}
	p, err := sema.ExprToPoly(g.UB)
	if err != nil {
		return poly.Poly{}, false
	}
	return p, true
}

// SetOracle re-attaches the range-fact oracle a cached solve originally ran
// under. Results restored from the persistent cache carry no compiled flow
// functions and rebuild them lazily on the first ApplyFlow call; that
// recompilation must see the same oracle (and derived symbolic bound) the
// cached tuples were computed with, so drivers call SetOracle immediately
// after restore, before handing the Result to any consumer.
func (res *Result) SetOracle(f RangeOracle) {
	res.facts = f
	res.symUB, res.hasSymUB = symUBOf(res.Graph)
}

// Metrics bundles the result's instrumentation counters.
func (res *Result) Metrics() Metrics {
	return Metrics{
		Nodes:         len(res.Graph.Nodes),
		Classes:       len(res.Classes),
		Passes:        res.Passes,
		ChangedPasses: res.ChangedPasses,
		NodeVisits:    res.NodeVisits,
		FlowApps:      res.FlowApps,
		Elapsed:       res.Elapsed,
		FuelExhausted: res.FuelExhausted,
	}
}

// Add accumulates counters (wall times sum; sizes and passes take the max,
// so an aggregate still checks the per-solve pass bound).
func (m *Metrics) Add(o Metrics) {
	if o.Nodes > m.Nodes {
		m.Nodes = o.Nodes
	}
	if o.Classes > m.Classes {
		m.Classes = o.Classes
	}
	if o.Passes > m.Passes {
		m.Passes = o.Passes
	}
	if o.ChangedPasses > m.ChangedPasses {
		m.ChangedPasses = o.ChangedPasses
	}
	m.NodeVisits += o.NodeVisits
	m.FlowApps += o.FlowApps
	m.Elapsed += o.Elapsed
	m.FuelExhausted = m.FuelExhausted || o.FuelExhausted
}

// fuelExhaustedTotal counts fuel-exhausted solves process-wide; the service
// stats endpoint exposes it.
var fuelExhaustedTotal atomic.Int64

// FuelExhaustedTotal returns the number of solves in this process that ran
// out of fuel and degraded their results to "unknown".
func FuelExhaustedTotal() int64 { return fuelExhaustedTotal.Load() }

// TraceEntry snapshots one iteration pass.
type TraceEntry struct {
	In  []lattice.Tuple
	Out []lattice.Tuple
}

// Engine selects the solver implementation.
type Engine string

const (
	// EnginePacked is the default engine: IN/OUT tuples in two flat slabs,
	// compiled flow functions in one index-addressed op arena, per-class
	// predecessor bitsets, and a reused scratch tuple that makes the
	// steady-state iteration passes allocation-free.
	EnginePacked Engine = "packed"
	// EngineReference is the straightforward per-node implementation kept
	// as the executable specification: differential tests assert the packed
	// engine produces byte-identical results, and benchmarks use it as the
	// ablation baseline.
	EngineReference Engine = "reference"
)

// Options tunes the solver.
type Options struct {
	// CollectTrace records per-pass snapshots (used to reproduce Table 1).
	CollectTrace bool
	// Engine selects the solver implementation; the zero value runs the
	// packed engine. Both engines produce byte-identical Results.
	Engine Engine
	// MaxPasses bounds iteration (0 = default 64). The theory guarantees
	// convergence in 2 changing passes; the bound protects against
	// violations of the structured-loop preconditions.
	MaxPasses int
	// Fuel bounds the iteration's total flow applications: every node
	// visit debits one unit per tracked class, and when the remaining
	// budget cannot cover a visit the solve stops and degrades every tuple
	// to the claim-nothing value of the problem's polarity (must → ⊥,
	// may → ⊤), setting Result.FuelExhausted. Zero derives a budget from
	// MaxPasses·nodes·classes that can never bind, so by default fuel
	// changes nothing; an explicit budget gives a hard worst-case latency
	// bound for hostile or pathological inputs. Both engines debit and
	// degrade identically.
	Fuel int64
	// SkipInitPass suppresses the initialization pass for must-problems
	// (ablation: shows the init pass is required for 2-pass convergence).
	SkipInitPass bool
	// MayTopStart initializes a may-problem at ⊤ ("no instance") instead
	// of the paper's ⊥ ("all instances") start — the §3.3 ablation: the
	// exit function is not weakly idempotent in the reverse lattice, so
	// the iteration climbs the distance chain one pass per iteration and,
	// with an unknown loop bound, "could continue infinitely" (it hits
	// MaxPasses instead).
	MayTopStart bool
	// Scratch supplies a caller-owned free list for the solve's transient
	// buffers; drivers keep one per worker goroutine so repeated solves
	// allocate no transients. Nil borrows one from a process-wide pool. A
	// Scratch must not be used by two solves concurrently.
	Scratch *Scratch
	// Facts supplies loop-invariant range facts to the preserve derivation,
	// letting symbolic kill-distance comparisons resolve (rangefacts). Nil
	// means no symbolic comparison resolves. The oracle participates in the
	// solve's semantics, so drivers must fold its Signature into any memo
	// key and hand the SAME oracle to both engines — the differential
	// contract (byte-identical Results) holds per oracle, not across them.
	Facts RangeOracle
}

// Solve computes the greatest fixed point of spec over g. The packed engine
// runs unless opts selects EngineReference.
func Solve(g *ir.Graph, spec *Spec, opts *Options) *Result {
	if opts == nil {
		opts = &Options{}
	}
	if opts.Engine == EngineReference {
		return solveReference(g, spec, opts)
	}
	sc, done := scratchFor(opts)
	defer done()
	return newSolveCtx(g).solve(spec, opts, sc)
}

// SolveAll solves several problem instances on one graph through a shared
// solve context: class discovery (per generate-predicate signature), node
// orderings, and the precedes bit matrix are computed once and reused by
// every spec. Results are returned in spec order and are identical to
// len(specs) independent Solve calls.
func SolveAll(g *ir.Graph, specs []*Spec, opts *Options) []*Result {
	if opts == nil {
		opts = &Options{}
	}
	out := make([]*Result, len(specs))
	if opts.Engine == EngineReference {
		for i, spec := range specs {
			out[i] = solveReference(g, spec, opts)
		}
		return out
	}
	ctx := newSolveCtx(g)
	ctx.shared = true
	sc, done := scratchFor(opts)
	defer done()
	for i, spec := range specs {
		out[i] = ctx.solve(spec, opts, sc)
	}
	return out
}

// solveReference is the executable specification of the framework: one
// freshly allocated tuple per node and per applyFlow call, per-node flow
// functions compiled through member sets, pr computed by walking class
// members. Kept verbatim for differential testing against the packed engine.
func solveReference(g *ir.Graph, spec *Spec, opts *Options) *Result {
	start := time.Now()
	res := &Result{Graph: g, Spec: spec}
	defer func() { res.Elapsed = time.Since(start) }()
	res.SetOracle(opts.Facts)
	res.adoptClasses(buildClassTable(g, spec.Gen))
	m := len(res.Classes)
	n := len(g.Nodes)

	res.In = makeTuples(n, m)
	res.Out = makeTuples(n, m)

	// Per-node, per-class flow functions, precomputed once.
	fns := res.buildFlowFunctions()
	res.flowFns = fns

	order := g.RPO()
	if spec.Backward {
		order = reverseOrder(g)
	}
	entry := g.Entry
	if spec.Backward {
		entry = g.Exit
	}

	preds := func(nd *ir.Node) []*ir.Node {
		if spec.Backward {
			return nd.Succs
		}
		return nd.Preds
	}

	// --- Initialization (paper §3.2 for must, §3.3 for may) -------------
	if spec.May {
		// May-problems start every value at "all instances" (the reverse
		// lattice's ⊥); no initialization pass is needed. The MayTopStart
		// ablation starts at "no instance" instead.
		start := lattice.All()
		if opts.MayTopStart {
			start = lattice.None()
		}
		for id := 1; id <= n; id++ {
			res.In[id].Fill(start)
			res.Out[id].Fill(start)
		}
	} else if opts.SkipInitPass {
		// Ablation: naive ⊤ start.
		for id := 1; id <= n; id++ {
			res.In[id].Fill(lattice.All())
			res.Out[id].Fill(lattice.All())
		}
	} else {
		visited := make([]bool, n+1)
		for _, nd := range order {
			res.NodeVisits++
			in := res.In[nd.ID]
			if nd == entry {
				in.Fill(lattice.None())
			} else {
				in.Fill(lattice.All())
				any := false
				for _, p := range preds(nd) {
					if !visited[p.ID] {
						continue // back-edge predecessor: excluded from init
					}
					in.MeetInto(res.Out[p.ID], false)
					any = true
				}
				if !any {
					in.Fill(lattice.None())
				}
			}
			out := res.Out[nd.ID]
			copy(out, in)
			for _, c := range res.Classes {
				if fns[nd.ID][c.Index].generates() {
					out[c.Index] = lattice.All()
				}
			}
			visited[nd.ID] = true
		}
		res.initIn = snapshot(res.In)
		res.initOut = snapshot(res.Out)
	}

	// --- Fixed point iteration ------------------------------------------
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 64
	}
	// Fuel accounting mirrors the packed engine exactly: the budget is
	// checked before a visit and debited per flow application, so both
	// engines exhaust at the same node of the same pass.
	fuel := resolveFuel(opts, maxPasses, n, m)
	res.FuelBudget = fuel
	exhausted := false
	for pass := 1; pass <= maxPasses; pass++ {
		changed := false
		for _, nd := range order {
			if fuel < int64(m) {
				exhausted = true
				break
			}
			res.NodeVisits++
			in := res.In[nd.ID]
			ps := preds(nd)
			if len(ps) > 0 {
				if spec.May {
					in.Fill(lattice.None())
				} else {
					in.Fill(lattice.All())
				}
				for _, p := range ps {
					in.MeetInto(res.Out[p.ID], spec.May)
				}
			}
			fuel -= int64(m)
			newOut := applyFlow(nd, g, fns[nd.ID], in, res)
			if !newOut.Eq(res.Out[nd.ID]) {
				changed = true
				copy(res.Out[nd.ID], newOut)
			}
		}
		if exhausted {
			break
		}
		res.Passes = pass
		if changed {
			res.ChangedPasses++
		}
		if opts.CollectTrace {
			res.Trace = append(res.Trace, TraceEntry{In: snapshot(res.In), Out: snapshot(res.Out)})
		}
		if !changed {
			break
		}
	}
	if exhausted {
		res.degradeExhausted()
	}
	return res
}

// flowOp is one step of a node's flow function for one class: either a
// generate (max(x, 0)) or a preserve cap (min(x, p)).
type flowOp struct {
	gen  bool
	pres lattice.Dist
}

// flowFn is the compiled flow function of one node for one class: the
// composition of per-reference effects in execution order (reversed for
// backward problems). Sequencing matters within a node: in
// "A[i] := … A[i-1] …" the use observes memory before the definition
// overwrites it, which a single gen-or-preserve function cannot express —
// collapsing the two was a soundness bug our differential fuzzer caught.
type flowFn struct {
	ops []flowOp
}

// generates reports whether any step of the function generates (used by
// the initialization pass's overestimate).
func (f flowFn) generates() bool {
	for _, op := range f.ops {
		if op.gen {
			return true
		}
	}
	return false
}

// classKey identifies a tracked class by array name and the canonical
// renderings of its affine coefficients (poly.String is deterministic, so
// equal polynomials render equally).
type classKey struct {
	array string
	a, b  string
}

// classTable is the class discovery for one generate predicate on one
// graph: the classes in first-occurrence order, a dense ref-ID →
// class-index array that replaces per-ref map lookups (-1 = not a member),
// and the lazily built key index behind ClassFor.
type classTable struct {
	classes  []*Class
	refClass []int32
	// byArray maps an array name to the indices of its classes: discovery
	// compares subscripts only within one array's classes, and the packed
	// compiler uses it to visit only the classes a node can affect.
	byArray map[string][]int32

	// byKey indexes classes by (array, affine form renderings) for
	// ClassFor. It is built once, on first lookup, because rendering the
	// polynomial keys costs more than the rest of class discovery combined
	// and most solves (benchmarks, whole-program passes without lint) never
	// call ClassFor at all.
	byKeyOnce sync.Once
	byKey     map[classKey]*Class
}

// lookup finds the class for (array, form), building the key index on
// first use. Safe for concurrent callers on a finished table.
func (ct *classTable) lookup(array string, form sema.AffineForm) *Class {
	ct.byKeyOnce.Do(func() {
		ct.byKey = make(map[classKey]*Class, len(ct.classes))
		for _, c := range ct.classes {
			ct.byKey[classKey{c.Array, c.Form.A.String(), c.Form.B.String()}] = c
		}
	})
	return ct.byKey[classKey{array, form.A.String(), form.B.String()}]
}

// buildClassTable groups the generating references of g under gen into
// equivalence classes (same array, same affine subscript form). Grouping
// compares polynomials with Equal, but only within the reference's own
// array's classes (the byArray index): cross-array comparisons can never
// match, and on wide problems (every statement its own array) they made
// discovery quadratic in the class count.
func buildClassTable(g *ir.Graph, gen func(*ir.Ref) bool) *classTable {
	ct := &classTable{
		classes:  make([]*Class, 0, 8),
		refClass: make([]int32, len(g.Refs)+1),
		byArray:  make(map[string][]int32),
	}
	for i := range ct.refClass {
		ct.refClass[i] = -1
	}
	// Pass 1: assign classes. g.Refs is ID-ordered, so classes are
	// discovered (and indexed) in first-occurrence source order.
	total := 0
	for _, r := range g.Refs {
		if !gen(r) || !r.Affine || r.FromInner {
			continue
		}
		var c *Class
		for _, ci := range ct.byArray[r.Array] {
			cand := ct.classes[ci]
			if cand.Form.A.Equal(r.Form.A) && cand.Form.B.Equal(r.Form.B) {
				c = cand
				break
			}
		}
		if c == nil {
			c = &Class{Index: len(ct.classes), Array: r.Array, Form: r.Form}
			ct.classes = append(ct.classes, c)
			ct.byArray[r.Array] = append(ct.byArray[r.Array], int32(c.Index))
		}
		ct.refClass[r.ID] = int32(c.Index)
		total++
	}
	// Pass 2: fill the member lists as views into one backing array (one
	// allocation instead of per-class append chains). Counting goes through
	// the already-assigned refClass, so no subscript comparisons re-run.
	counts := make([]int32, len(ct.classes)+1)
	for _, r := range g.Refs {
		if ci := ct.refClass[r.ID]; ci >= 0 {
			counts[ci+1]++
		}
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	backing := make([]*ir.Ref, total)
	next := make([]int32, len(ct.classes))
	copy(next, counts)
	for _, r := range g.Refs {
		if ci := ct.refClass[r.ID]; ci >= 0 {
			backing[next[ci]] = r
			next[ci]++
		}
	}
	for i, c := range ct.classes {
		c.Members = backing[counts[i]:counts[i+1]:counts[i+1]]
	}
	return ct
}

// adoptClasses installs a class table's views on the result.
func (res *Result) adoptClasses(ct *classTable) {
	res.Classes = ct.classes
	res.ct = ct
}

// ClassOf returns the class of a generating reference, or nil when the
// reference is not a class member. It answers from the table's dense
// ref-ID array; no map is built.
func (res *Result) ClassOf(r *ir.Ref) *Class {
	if ci := res.ct.refClass[r.ID]; ci >= 0 {
		return res.ct.classes[ci]
	}
	return nil
}

// InitIn returns the IN snapshot of the initialization pass, or nil when
// the solve ran none (may-problems, SkipInitPass). Packed solves decode the
// snapshot lazily on the first call; safe for concurrent readers.
func (res *Result) InitIn() []lattice.Tuple {
	res.decodeInit()
	return res.initIn
}

// InitOut returns the OUT snapshot of the initialization pass; see InitIn.
func (res *Result) InitOut() []lattice.Tuple {
	res.decodeInit()
	return res.initOut
}

// decodeInit materializes the deferred packed init snapshot, once.
func (res *Result) decodeInit() {
	res.initOnce.Do(func() {
		if res.initIn != nil || res.initW == nil {
			return
		}
		n := len(res.Graph.Nodes)
		m := len(res.Classes)
		pk := &res.initPk
		words := pk.Words
		in := lattice.Slab(n, m)
		out := lattice.Slab(n, m)
		for id := 1; id <= n; id++ {
			pk.DecodeRow(in[id], res.initW[id*words:(id+1)*words])
			pk.DecodeRow(out[id], res.initW[(n+1+id)*words:(n+2+id)*words])
		}
		res.initIn, res.initOut = in, out
	})
}

// prOf computes pr(class, n): 0 when any member of the class occurs in a
// node that precedes n in the body (for backward problems: that n precedes,
// since the reverse graph swaps the ordering). Packed results answer from
// the precomputed per-class bitset.
func (res *Result) prOf(c *Class, nd *ir.Node) int64 {
	if res.prZero != nil {
		if bitGet(res.prZero[c.Index], nd.ID) {
			return 0
		}
		return 1
	}
	for _, mem := range c.Members {
		if res.Spec.Backward {
			if res.Graph.Precedes(nd, mem.Node) {
				return 0
			}
		} else {
			if res.Graph.Precedes(mem.Node, nd) {
				return 0
			}
		}
	}
	return 1
}

func (res *Result) buildFlowFunctions() [][]flowFn {
	g := res.Graph
	fns := make([][]flowFn, len(g.Nodes)+1)
	for _, nd := range g.Nodes {
		row := make([]flowFn, len(res.Classes))
		for _, c := range res.Classes {
			row[c.Index] = res.compileNodeClass(nd, c)
		}
		fns[nd.ID] = row
	}
	return fns
}

// compileNodeClass builds the op sequence of node nd for class c.
func (res *Result) compileNodeClass(nd *ir.Node, c *Class) flowFn {
	g := res.Graph
	memberSet := map[*ir.Ref]bool{}
	for _, mem := range c.Members {
		if mem.Node == nd {
			memberSet[mem] = true
		}
	}

	// Reference effects in execution order.
	refs := nd.Refs
	if nd.Kind == ir.KindSummary {
		// A summary node stands for a whole inner loop whose internal
		// order is unknown at this level; order the effects by polarity so
		// the collapsed function stays a safe approximation: must-problems
		// apply generates before kills (underestimate), may-problems kills
		// before generates (overestimate).
		var gens, kills []*ir.Ref
		for _, r := range refs {
			if memberSet[r] {
				gens = append(gens, r)
			} else {
				kills = append(kills, r)
			}
		}
		if res.Spec.May {
			refs = append(append([]*ir.Ref{}, kills...), gens...)
		} else {
			refs = append(append([]*ir.Ref{}, gens...), kills...)
		}
	}

	nodePr := res.prOf(c, nd)
	var ops []flowOp
	genSeen := false
	addCap := func(p lattice.Dist) {
		// Merge consecutive caps.
		if n := len(ops); n > 0 && !ops[n-1].gen {
			ops[n-1].pres = lattice.Min(ops[n-1].pres, p)
			return
		}
		ops = append(ops, flowOp{pres: p})
	}

	seq := refs
	if res.Spec.Backward {
		seq = make([]*ir.Ref, len(refs))
		for i, r := range refs {
			seq[len(refs)-1-i] = r
		}
	}
	for _, r := range seq {
		if memberSet[r] {
			ops = append(ops, flowOp{gen: true})
			genSeen = true
			continue
		}
		if !res.Spec.Kill(r) || r.Array != c.Array {
			continue
		}
		pr := nodePr
		if genSeen {
			// A member of the class already executed within this node
			// before the kill: the distance-0 instance is in range.
			pr = 0
		}
		ctx := KillContext{
			Pr:       pr,
			May:      res.Spec.May,
			Backward: res.Spec.Backward,
			UB:       g.UBConst,
			HasUB:    g.HasUB,
			SymUB:    res.symUB,
			HasSymUB: res.hasSymUB,
			Facts:    res.facts,
		}
		var p lattice.Dist
		if r.FromInner && r.HasRegion {
			p = PreserveAgainstRegion(c.Form, r.RegionLo, r.RegionHi, ctx)
		} else {
			p = PreserveConst(c.Form, r.Form, r.Affine && !r.FromInner, ctx)
		}
		if p.IsAll() {
			continue // identity cap
		}
		addCap(p)
	}
	return flowFn{ops: ops}
}

// applyFlow computes f_n(in) into a scratch tuple.
func applyFlow(nd *ir.Node, g *ir.Graph, fns []flowFn, in lattice.Tuple, res *Result) lattice.Tuple {
	out := make(lattice.Tuple, len(in))
	res.FlowApps += len(in)
	for i, x := range in {
		out[i] = applyOne(nd, g, fns[i], x)
	}
	return out
}

// applyOne applies node nd's flow function for one class to a single lattice
// value. The exit node's function is the loop-closing increment (clamped at
// the constant bound when known); every other node applies its compiled
// generate/preserve op sequence.
func applyOne(nd *ir.Node, g *ir.Graph, fn flowFn, x lattice.Dist) lattice.Dist {
	if nd.Kind == ir.KindExit {
		v := x.Inc()
		if g.HasUB {
			v = v.Clamp(g.UBConst)
		}
		return v
	}
	v := x
	for _, op := range fn.ops {
		if op.gen {
			v = lattice.Max(v, lattice.D(0))
		} else {
			v = lattice.Min(v, op.pres)
		}
	}
	return v
}

// ApplyFlow re-applies the solved problem's flow function of node nd for the
// class with the given index to an arbitrary lattice value. It is read-only
// and safe for concurrent use on a finished Result; the framework
// self-check analyzer uses it to test monotonicity and idempotence of the
// compiled functions over sampled lattice values.
func (res *Result) ApplyFlow(nd *ir.Node, classIndex int, x lattice.Dist) lattice.Dist {
	if res.flowFns == nil && res.prog == nil {
		// Restored from the persistent cache: neither engine's compiled form
		// survives serialization (both are pure functions of the graph), so
		// compile the reference form once on first use.
		res.flowOnce.Do(func() { res.flowFns = res.buildFlowFunctions() })
	}
	if res.flowFns != nil {
		return applyOne(nd, res.Graph, res.flowFns[nd.ID][classIndex], x)
	}
	fn := flowFn{ops: res.prog.ops(nd.ID*len(res.Classes) + classIndex)}
	return applyOne(nd, res.Graph, fn, x)
}

func makeTuples(n, m int) []lattice.Tuple {
	out := make([]lattice.Tuple, n+1)
	for i := 1; i <= n; i++ {
		out[i] = make(lattice.Tuple, m)
	}
	return out
}

func snapshot(ts []lattice.Tuple) []lattice.Tuple {
	out := make([]lattice.Tuple, len(ts))
	for i, t := range ts {
		if t != nil {
			out[i] = t.Clone()
		}
	}
	return out
}

func reverseOrder(g *ir.Graph) []*ir.Node {
	// Reverse postorder of the reversed body DAG starting at the exit node:
	// the reverse of the forward RPO works because the body is a DAG and
	// edge reversal exactly inverts its topological orders.
	fwd := g.RPO()
	out := make([]*ir.Node, len(fwd))
	for i, n := range fwd {
		out[len(fwd)-1-i] = n
	}
	return out
}

// --- Reporting --------------------------------------------------------------

// TupleTable renders IN/OUT rows for every node, in the style of the paper's
// Table 1. Pass -1 renders the fixed point; pass 0 the initialization pass;
// pass k ≥ 1 the k-th iteration snapshot (requires CollectTrace).
func (res *Result) TupleTable(pass int) string {
	var in, out []lattice.Tuple
	switch {
	case pass < 0:
		in, out = res.In, res.Out
	case pass == 0:
		in, out = res.InitIn(), res.InitOut()
	default:
		if pass > len(res.Trace) {
			return fmt.Sprintf("<no trace for pass %d>", pass)
		}
		in, out = res.Trace[pass-1].In, res.Trace[pass-1].Out
	}
	if in == nil {
		return "<no snapshot>"
	}
	var b strings.Builder
	header := make([]string, len(res.Classes))
	for i, c := range res.Classes {
		header[i] = c.String()
	}
	fmt.Fprintf(&b, "%-8s tuples (%s)\n", "", strings.Join(header, ", "))
	// Rows are rendered straight into the builder (Tuple.WriteTo) rather
	// than through per-tuple Sprintf strings: on wide problems the rows
	// dominate the table's cost.
	for _, nd := range res.Graph.Nodes {
		fmt.Fprintf(&b, "IN [%d]  ", nd.ID)
		in[nd.ID].WriteTo(&b)
		b.WriteByte('\n')
		fmt.Fprintf(&b, "OUT[%d]  ", nd.ID)
		out[nd.ID].WriteTo(&b)
		b.WriteByte('\n')
	}
	return b.String()
}

// InAt returns the fixed point IN value of class c at node nd.
func (res *Result) InAt(nd *ir.Node, c *Class) lattice.Dist { return res.In[nd.ID][c.Index] }

// OutAt returns the fixed point OUT value of class c at node nd.
func (res *Result) OutAt(nd *ir.Node, c *Class) lattice.Dist { return res.Out[nd.ID][c.Index] }

// ClassFor finds the class tracking the given array and affine form, if
// any. The lookup is a single map access against a key index built once on
// first use — analyzers calling it once per finding no longer pay a scan
// over every class.
func (res *Result) ClassFor(array string, form sema.AffineForm) *Class {
	if res.ct == nil {
		return nil
	}
	return res.ct.lookup(array, form)
}

// Pr exposes pr(class, n) for result consumers (reuse queries need it).
func (res *Result) Pr(c *Class, nd *ir.Node) int64 { return res.prOf(c, nd) }
