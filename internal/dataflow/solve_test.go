package dataflow

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/lattice"
	"repro/internal/parser"
)

const fig1 = `
do i = 1, UB
  C[i+2] := C[i] * 2
  B[2*i] := C[i] + X
  if C[i] == 0 then C[i] := B[i-1]
  B[i] := C[i+1]
enddo
`

func buildLoop(t *testing.T, src string) *ir.Graph {
	t.Helper()
	prog := parser.MustParse(src)
	loop := prog.Body[0].(*ast.DoLoop)
	g, err := ir.Build(loop, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustReach() *Spec {
	return &Spec{
		Name: "must-reaching-defs",
		Gen:  func(r *ir.Ref) bool { return r.Kind == ir.Def },
		Kill: func(r *ir.Ref) bool { return r.Kind == ir.Def },
	}
}

// tup builds a tuple from shorthand: -1 = ⊥, -2 = ⊤, n ≥ 0 = D(n).
func tup(vals ...int64) lattice.Tuple {
	out := make(lattice.Tuple, len(vals))
	for i, v := range vals {
		switch v {
		case -1:
			out[i] = lattice.None()
		case -2:
			out[i] = lattice.All()
		default:
			out[i] = lattice.D(v)
		}
	}
	return out
}

func checkTuple(t *testing.T, label string, got, want lattice.Tuple) {
	t.Helper()
	if !got.Eq(want) {
		t.Errorf("%s = %s, want %s", label, got, want)
	}
}

// TestTable1InitPass reproduces Table 1 (i) of the paper exactly.
func TestTable1InitPass(t *testing.T) {
	g := buildLoop(t, fig1)
	res := Solve(g, mustReach(), &Options{CollectTrace: true})

	if len(res.Classes) != 4 {
		t.Fatalf("classes = %d, want 4 (C[i+2], B[2i], C[i], B[i])", len(res.Classes))
	}
	// Class order must match the paper's numbering by node.
	wantNames := []string{"C", "B", "C", "B"}
	for k, c := range res.Classes {
		if c.Array != wantNames[k] || c.Members[0].Node.ID != k+1 {
			t.Fatalf("class %d = %s (node %d), want %s at node %d",
				k, c, c.Members[0].Node.ID, wantNames[k], k+1)
		}
	}

	// Table 1 (i): initialization pass, tuples (C[i+2], B[2i], C[i], B[i]).
	wantIn := []lattice.Tuple{nil,
		tup(-1, -1, -1, -1), // IN[1]
		tup(-2, -1, -1, -1), // IN[2]
		tup(-2, -2, -1, -1), // IN[3]
		tup(-2, -2, -1, -1), // IN[4]
		tup(-2, -2, -1, -2), // IN[5]
	}
	wantOut := []lattice.Tuple{nil,
		tup(-2, -1, -1, -1), // OUT[1]
		tup(-2, -2, -1, -1), // OUT[2]
		tup(-2, -2, -2, -1), // OUT[3]
		tup(-2, -2, -1, -2), // OUT[4]
		tup(-2, -2, -1, -2), // OUT[5]
	}
	for id := 1; id <= 5; id++ {
		checkTuple(t, "init IN", res.InitIn()[id], wantIn[id])
		checkTuple(t, "init OUT", res.InitOut()[id], wantOut[id])
	}
}

// TestTable1Iteration reproduces Table 1 (ii): the two iteration passes.
func TestTable1Iteration(t *testing.T) {
	g := buildLoop(t, fig1)
	res := Solve(g, mustReach(), &Options{CollectTrace: true})

	if len(res.Trace) < 2 {
		t.Fatalf("need ≥ 2 traced passes, got %d", len(res.Trace))
	}

	// Pass 1.
	p1 := res.Trace[0]
	wantIn1 := []lattice.Tuple{nil,
		tup(-2, -2, -1, -2), // IN[1]
		tup(-2, -2, -1, -2), // IN[2]
		tup(-2, -2, -1, -2), // IN[3]
		tup(1, -2, -1, -2),  // IN[4]
		tup(1, 0, -1, -2),   // IN[5]
	}
	wantOut1 := []lattice.Tuple{nil,
		tup(-2, -2, -1, -2), // OUT[1]
		tup(-2, -2, -1, -2), // OUT[2]
		tup(1, -2, 0, -2),   // OUT[3]
		tup(1, 0, -1, -2),   // OUT[4]
		tup(2, 1, -1, -2),   // OUT[5]
	}
	for id := 1; id <= 5; id++ {
		checkTuple(t, "pass1 IN", p1.In[id], wantIn1[id])
		checkTuple(t, "pass1 OUT", p1.Out[id], wantOut1[id])
	}

	// Pass 2 — the fixed point.
	p2 := res.Trace[1]
	wantIn2 := []lattice.Tuple{nil,
		tup(2, 1, -1, -2), // IN[1]
		tup(2, 1, -1, -2), // IN[2]
		tup(2, 1, -1, -2), // IN[3]
		tup(1, 1, -1, -2), // IN[4]
		tup(1, 0, -1, -2), // IN[5]
	}
	wantOut2 := []lattice.Tuple{nil,
		tup(2, 1, -1, -2), // OUT[1]
		tup(2, 1, -1, -2), // OUT[2]
		tup(1, 1, 0, -2),  // OUT[3]
		tup(1, 0, -1, -2), // OUT[4]
		tup(2, 1, -1, -2), // OUT[5]
	}
	for id := 1; id <= 5; id++ {
		checkTuple(t, "pass2 IN", p2.In[id], wantIn2[id])
		checkTuple(t, "pass2 OUT", p2.Out[id], wantOut2[id])
	}

	// The fixed point values equal the pass-2 snapshot.
	for id := 1; id <= 5; id++ {
		checkTuple(t, "fixpoint IN", res.In[id], wantIn2[id])
		checkTuple(t, "fixpoint OUT", res.Out[id], wantOut2[id])
	}
}

// TestThreePassClaim verifies the paper's practicality claim: the fixed
// point of a must-problem is reached with the initialization pass plus two
// iteration passes (a third pass only confirms stability).
func TestThreePassClaim(t *testing.T) {
	g := buildLoop(t, fig1)
	res := Solve(g, mustReach(), nil)
	if res.ChangedPasses > 2 {
		t.Errorf("changed passes = %d, want ≤ 2", res.ChangedPasses)
	}
	if res.Passes > 3 {
		t.Errorf("total passes = %d, want ≤ 3", res.Passes)
	}
}

// TestMayTwoPassClaim verifies §3.3: may-problems need no initialization
// pass and converge within two passes.
func TestMayTwoPassClaim(t *testing.T) {
	g := buildLoop(t, fig1)
	spec := &Spec{
		Name: "delta-reaching-refs",
		May:  true,
		Gen:  func(r *ir.Ref) bool { return true },
		Kill: func(r *ir.Ref) bool { return r.Kind == ir.Def },
	}
	res := Solve(g, spec, nil)
	if res.ChangedPasses > 1 {
		t.Errorf("changed passes = %d, want ≤ 1 (2 passes incl. confirmation)", res.ChangedPasses)
	}
	if res.InitIn() != nil {
		t.Error("may-problem must not run an initialization pass")
	}
}

// TestConditionalKillsDistanceZero checks that a definition inside a branch
// never must-reach the join with distance 0 (flow-sensitivity).
func TestConditionalKillsDistanceZero(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  if c > 0 then
    A[i] := 1
  endif
  B[i] := A[i]
enddo
`)
	res := Solve(g, mustReach(), nil)
	var aClass *Class
	for _, c := range res.Classes {
		if c.Array == "A" {
			aClass = c
		}
	}
	if aClass == nil {
		t.Fatal("class A[i] missing")
	}
	// Join node is the B[i] assignment.
	var join *ir.Node
	for _, nd := range g.Nodes {
		if nd.Kind == ir.KindStmt && nd.Assign != nil {
			if lhs, ok := nd.Assign.LHS.(*ast.ArrayRef); ok && lhs.Name == "B" {
				join = nd
			}
		}
	}
	if join == nil {
		t.Fatal("join node missing")
	}
	if got := res.InAt(join, aClass); !got.IsNone() {
		t.Errorf("IN[join, A[i]] = %s, want ⊥ (conditional definition)", got)
	}
}

// TestUnconditionalReachesAll checks the complementary case.
func TestUnconditionalReachesAll(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  A[i] := 1
  B[i] := A[i]
enddo
`)
	res := Solve(g, mustReach(), nil)
	c := res.Classes[0]
	join := g.Nodes[1]
	got := res.InAt(join, c)
	if !got.IsAll() {
		t.Errorf("IN[n2, A[i]] = %s, want ⊤ (never killed)", got)
	}
}

// TestSelfKillTextuallyIdentical: two identical defs in sequence — the
// second kills the first's older instances at distance 0 relative to
// itself (k ≡ 0 = pr): nothing from previous iterations survives past it.
func TestSelfKillSameSubscriptDistinctNodes(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  A[i] := 1
  A[i] := 2
enddo
`)
	res := Solve(g, mustReach(), nil)
	// Both defs share one class (same array, same form).
	if len(res.Classes) != 1 {
		t.Fatalf("classes = %d, want 1 (textually identical subscripts)", len(res.Classes))
	}
	c := res.Classes[0]
	if len(c.Members) != 2 {
		t.Fatalf("members = %d, want 2", len(c.Members))
	}
	// A[i] at node 2 kills nothing of its own class (generate dominates).
	if got := res.OutAt(g.Nodes[1], c); !got.Covers(0) {
		t.Errorf("OUT[n2] = %s, must cover distance 0", got)
	}
}

// TestExitIncrement checks ++ semantics across the back edge.
func TestExitIncrement(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  A[i] := 1
enddo
`)
	res := Solve(g, mustReach(), nil)
	c := res.Classes[0]
	// OUT[exit] = IN[exit]++; with a single never-killed def the entry IN
	// accumulates to ⊤.
	if got := res.InAt(g.Entry, c); !got.IsAll() {
		t.Errorf("IN[entry] = %s, want ⊤", got)
	}
}

// TestUBClamp checks that with a known constant bound, distances collapse
// to ⊤ at UB−1.
func TestUBClamp(t *testing.T) {
	g := buildLoop(t, `
do i = 1, 3
  A[i+10] := A[i]
enddo
`)
	res := Solve(g, mustReach(), nil)
	c := res.Classes[0]
	// The def A[i+10] never conflicts with itself; distances grow per
	// iteration but clamp at UB−1=2 → ⊤.
	got := res.InAt(g.Entry, c)
	if !got.IsAll() {
		t.Errorf("IN[entry] = %s, want ⊤ via clamping", got)
	}
}

// TestSkipInitPassAblation shows the initialization pass is load-bearing
// for *soundness*, not just speed: iterating from a naive ⊤ start converges
// to a fixed point above the meet-over-paths solution on conditionally
// generated classes. In Figure 1, C[i] is defined only in a branch, so its
// must-reaching value at every node is ⊥ — but with a ⊤ start, no flow
// function ever lowers it (C[i] has no killers in the loop) and the solver
// stabilizes at the unsafe ⊤. The paper's initialization pass seeds ⊥ along
// paths that bypass the generator, which the meet then propagates.
func TestSkipInitPassAblation(t *testing.T) {
	g := buildLoop(t, fig1)
	base := Solve(g, mustReach(), nil)
	noInit := Solve(g, mustReach(), &Options{SkipInitPass: true})
	ci := base.Classes[2] // C[i], the conditional definition
	if got := base.InAt(g.Nodes[3], ci); !got.IsNone() {
		t.Fatalf("with init pass: IN[n4, C[i]] = %s, want ⊥", got)
	}
	if got := noInit.InAt(g.Nodes[3], ci); !got.IsAll() {
		t.Fatalf("without init pass: IN[n4, C[i]] = %s, want the unsafe ⊤", got)
	}
	// The unconditional classes still agree.
	for _, c := range []*Class{base.Classes[0], base.Classes[1], base.Classes[3]} {
		for id := 1; id <= len(g.Nodes); id++ {
			if !base.In[id][c.Index].Eq(noInit.In[id][c.Index]) {
				t.Errorf("class %s IN[%d] differs: %s vs %s",
					c, id, base.In[id][c.Index], noInit.In[id][c.Index])
			}
		}
	}
}

// TestMayTopStartDiverges is the §3.3 ablation: a may-problem started at ⊤
// ("no instance") climbs the distance chain one pass per loop iteration —
// with an unknown bound it never converges within any fixed pass budget,
// which is exactly why the paper prescribes the ⊥ start. The correct start
// reaches the same greatest fixed point in ≤ 2 changing passes.
func TestMayTopStartDiverges(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  A[i] := A[i-4] + 1
enddo
`)
	spec := &Spec{
		Name: "may-reaching",
		May:  true,
		Gen:  func(r *ir.Ref) bool { return true },
		Kill: func(r *ir.Ref) bool { return r.Kind == ir.Def },
	}
	good := Solve(g, spec, nil)
	if good.ChangedPasses > 2 {
		t.Fatalf("correct start: changing passes = %d", good.ChangedPasses)
	}
	bad := Solve(g, spec, &Options{MayTopStart: true, MaxPasses: 30})
	if bad.ChangedPasses < 25 {
		t.Fatalf("⊤ start should keep climbing (one distance per pass): changed %d of 30 passes",
			bad.ChangedPasses)
	}
	// With a *known* bound the climb terminates at UB−1 — slowly.
	gb := buildLoop(t, `
do i = 1, 12
  A[i] := A[i-4] + 1
enddo
`)
	badBounded := Solve(gb, spec, &Options{MayTopStart: true, MaxPasses: 64})
	if badBounded.ChangedPasses <= 2 {
		t.Fatalf("bounded ⊤ start converged suspiciously fast: %d", badBounded.ChangedPasses)
	}
	goodBounded := Solve(gb, spec, nil)
	if goodBounded.ChangedPasses > 2 {
		t.Fatalf("bounded correct start: %d changing passes", goodBounded.ChangedPasses)
	}
}

// TestBackwardBusyStores solves δ-busy stores on the Figure 6 loop and
// checks the redundancy fact directly on tuples.
func TestBackwardBusyStores(t *testing.T) {
	g := buildLoop(t, `
do i = 1, 1000
  A[i] := x
  if c > 0 then
    A[i+1] := y
  endif
enddo
`)
	spec := &Spec{
		Name:     "delta-busy-stores",
		Backward: true,
		Gen:      func(r *ir.Ref) bool { return r.Kind == ir.Def },
		Kill:     func(r *ir.Ref) bool { return r.Kind == ir.Use },
	}
	res := Solve(g, spec, nil)
	if len(res.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(res.Classes))
	}
	aI := res.Classes[0]   // A[i]
	aI1 := res.Classes[1]  // A[i+1]
	condNode := g.Nodes[1] // the conditional store's node
	if condNode.Kind != ir.KindStmt {
		t.Fatalf("unexpected node layout\n%s", g.Dump())
	}
	// A[i] is busy at the conditional store with unbounded distance: it
	// executes unconditionally every following iteration.
	if got := res.InAt(condNode, aI); !got.Covers(1) {
		t.Errorf("IN[n2, A[i]] = %s, must cover distance 1", got)
	}
	// A[i+1] is conditional: never busy along all paths at node 1.
	if got := res.InAt(g.Nodes[0], aI1); !got.IsNone() {
		t.Errorf("IN[n1, A[i+1]] = %s, want ⊥", got)
	}
	if res.ChangedPasses > 2 {
		t.Errorf("backward must-problem: changed passes = %d, want ≤ 2", res.ChangedPasses)
	}
}

// TestMayProblemPreservesUnlessDefiniteKill: in a may-problem a varying-
// distance kill preserves everything.
func TestMayProblemPreservesUnlessDefiniteKill(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  B[2*i] := 1
  B[i] := 2
enddo
`)
	spec := &Spec{
		Name: "may-reaching",
		May:  true,
		Gen:  func(r *ir.Ref) bool { return r.Kind == ir.Def },
		Kill: func(r *ir.Ref) bool { return r.Kind == ir.Def },
	}
	res := Solve(g, spec, nil)
	b2i := res.Classes[0]
	// B[i] kills B[2i] at varying distances: not definite → all instances
	// may reach.
	if got := res.InAt(g.Entry, b2i); !got.IsAll() {
		t.Errorf("IN[entry, B[2i]] = %s, want ⊤ (no definite kill)", got)
	}
}

// TestMayDefiniteKill: B[i-1] kills B[i] at exactly distance 1 every
// iteration: a definite kill caps the may-information at 0.
func TestMayDefiniteKill(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  B[i] := 1
  B[i-1] := 2
enddo
`)
	spec := &Spec{
		Name: "may-reaching",
		May:  true,
		Gen:  func(r *ir.Ref) bool { return r.Kind == ir.Def },
		Kill: func(r *ir.Ref) bool { return r.Kind == ir.Def },
	}
	res := Solve(g, spec, nil)
	bi := res.Classes[0] // B[i]
	// At entry of the next iteration, only the instance from 1 iteration
	// ago (distance 1) may still be live... after B[i-1] overwrites the
	// previous element each iteration, instances older than distance 1 are
	// definitely gone at the point after node 2.
	got := res.OutAt(g.Nodes[1], bi)
	if got.IsAll() {
		t.Errorf("OUT[n2, B[i]] = %s, want capped (definite kill at distance 1)", got)
	}
	if !got.Covers(0) {
		t.Errorf("OUT[n2, B[i]] = %s, must still cover distance 0", got)
	}
}

// TestSummaryNodeKillsConservatively: a def inside an inner loop kills all
// instances of same-array classes in the enclosing analysis.
func TestSummaryNodeKillsConservatively(t *testing.T) {
	g := buildLoop(t, `
do j = 1, M
  X[j] := 1
  do i = 1, N
    X[i] := 2
  enddo
  Y[j] := X[j]
enddo
`)
	res := Solve(g, mustReach(), nil)
	xj := res.Classes[0] // X[j]
	// After the summary node, no instance of X[j] survives.
	if got := res.InAt(g.Nodes[2], xj); !got.IsNone() {
		t.Errorf("IN[n3, X[j]] = %s, want ⊥ (summary kill)", got)
	}
}

// TestNodeVisitBound: total node visits for a must-problem stay within
// (passes)·N with passes ≤ init + changed + 1.
func TestNodeVisitBound(t *testing.T) {
	g := buildLoop(t, fig1)
	res := Solve(g, mustReach(), nil)
	n := len(g.Nodes)
	maxVisits := (1 + res.Passes) * n
	if res.NodeVisits > maxVisits {
		t.Errorf("node visits = %d > %d", res.NodeVisits, maxVisits)
	}
}

// TestTupleTableRendering sanity-checks the Table-1-style printer.
func TestTupleTableRendering(t *testing.T) {
	g := buildLoop(t, fig1)
	res := Solve(g, mustReach(), &Options{CollectTrace: true})
	for _, pass := range []int{-1, 0, 1, 2} {
		s := res.TupleTable(pass)
		if len(s) == 0 || s[0] == '<' {
			t.Errorf("pass %d table missing: %q", pass, s)
		}
	}
}
