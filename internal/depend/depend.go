// Package depend builds the statement-level dependence graph of a loop body
// from the δ-reaching references solution and computes the critical-path
// predictions that drive controlled loop unrolling (paper §4.3).
package depend

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/problems"
)

// Edge is a dependence between two statement nodes with an iteration
// distance (0 = loop-independent).
type Edge struct {
	From, To int // node IDs in the loop flow graph
	Distance int64
	Kind     string // flow, anti, output
	// FromRef and ToRef are the array references the dependence runs
	// between, for diagnostics that need source positions.
	FromRef, ToRef *ir.Ref
}

// Graph is the dependence graph over the statement nodes of one loop.
type Graph struct {
	Flow *ir.Graph
	// StmtIDs are the node IDs that carry computation (assignments and
	// summaries), in execution order.
	StmtIDs []int
	Edges   []Edge
}

// Build computes the dependence graph. res must be a δ-reaching-references
// solution over g (problems.ReachingRefs); maxDist bounds the recorded
// distances (unrolling only needs small distances).
func Build(g *ir.Graph, res *dataflow.Result, maxDist int64) *Graph {
	dg := &Graph{Flow: g}
	for _, nd := range g.Nodes {
		if nd.Kind == ir.KindStmt || nd.Kind == ir.KindSummary || nd.Kind == ir.KindCond {
			dg.StmtIDs = append(dg.StmtIDs, nd.ID)
		}
	}
	seen := map[string]bool{}
	for _, d := range problems.FindDependences(res, maxDist) {
		e := Edge{From: d.From.Node.ID, To: d.To.Node.ID, Distance: d.Distance, Kind: d.Kind,
			FromRef: d.From, ToRef: d.To}
		// Loop-independent edges must respect execution order; the query
		// layer guarantees a preceding member exists for distance 0, but
		// per-member pairs can be reversed — drop those.
		if e.Distance == 0 && !g.Precedes(d.From.Node, d.To.Node) {
			continue
		}
		key := fmt.Sprintf("%d>%d:%d:%s", e.From, e.To, e.Distance, e.Kind)
		if seen[key] {
			continue
		}
		seen[key] = true
		dg.Edges = append(dg.Edges, e)
	}
	return dg
}

// BuildFromLoop is a convenience that solves δ-reaching references first.
func BuildFromLoop(g *ir.Graph, maxDist int64) *Graph {
	res := problems.Solve(g, problems.ReachingRefs())
	return Build(g, res, maxDist)
}

// CriticalPath returns the length (in statements) of the longest chain of
// loop-independent dependences in one iteration of the loop body — the
// paper's l.
func (dg *Graph) CriticalPath() int64 {
	return dg.UnrolledCriticalPath(1)
}

// UnrolledCriticalPath returns the critical path length of u logically
// concatenated iterations, where loop-carried dependences with distance
// d < u connect copy c to copy c+d — the paper's l_unroll. Each statement
// costs one unit.
func (dg *Graph) UnrolledCriticalPath(u int) int64 {
	if u <= 0 {
		return 0
	}
	pos := map[int]int{}
	for i, id := range dg.StmtIDs {
		pos[id] = i
	}
	n := len(dg.StmtIDs)
	if n == 0 {
		return 0
	}
	// dp over the DAG: nodes ordered copy-major, statements in execution
	// order within a copy. All edges go forward in this order: distance 0
	// edges point to later statements (enforced in Build), carried edges to
	// later copies.
	total := n * u
	dp := make([]int64, total)
	for i := range dp {
		dp[i] = 1
	}
	longest := int64(1)
	for c := 0; c < u; c++ {
		for s := 0; s < n; s++ {
			idx := c*n + s
			id := dg.StmtIDs[s]
			for _, e := range dg.Edges {
				if e.From != id {
					continue
				}
				tc := c + int(e.Distance)
				if tc >= u {
					continue
				}
				tIdx := tc*n + pos[e.To]
				if tIdx <= idx {
					continue // defensive: ignore non-forward edges
				}
				if dp[idx]+1 > dp[tIdx] {
					dp[tIdx] = dp[idx] + 1
				}
			}
			if dp[idx] > longest {
				longest = dp[idx]
			}
		}
	}
	return longest
}

// Carried returns the loop-carried edges (distance ≥ 1) in a deterministic
// order: by distance, then source and sink reference positions, then kind.
// The certifying race analyzer consumes this as its candidate list.
func (dg *Graph) Carried() []Edge {
	var out []Edge
	for _, e := range dg.Edges {
		if e.Distance >= 1 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return carriedLess(out[i], out[j]) })
	return out
}

// carriedLess orders carried edges: smallest distance first, then source
// position, sink position, and kind.
func carriedLess(a, b Edge) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	ap, bp := a.FromRef.Expr.Pos(), b.FromRef.Expr.Pos()
	if ap != bp {
		return ap.Line < bp.Line || (ap.Line == bp.Line && ap.Col < bp.Col)
	}
	ap, bp = a.ToRef.Expr.Pos(), b.ToRef.Expr.Pos()
	if ap != bp {
		return ap.Line < bp.Line || (ap.Line == bp.Line && ap.Col < bp.Col)
	}
	return a.Kind < b.Kind
}

// HasCarriedDistance reports whether any dependence with the exact distance
// d exists.
func (dg *Graph) HasCarriedDistance(d int64) bool {
	for _, e := range dg.Edges {
		if e.Distance == d {
			return true
		}
	}
	return false
}

// String renders the dependence edges.
func (dg *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dependence graph (%d stmts, %d edges)\n", len(dg.StmtIDs), len(dg.Edges))
	for _, e := range dg.Edges {
		fmt.Fprintf(&b, "  n%d -%s(%d)-> n%d\n", e.From, e.Kind, e.Distance, e.To)
	}
	return b.String()
}
