package depend

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/parser"
)

func buildLoop(t *testing.T, src string) *ir.Graph {
	t.Helper()
	prog := parser.MustParse(src)
	loop := prog.Body[0].(*ast.DoLoop)
	g, err := ir.Build(loop, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChainCriticalPath(t *testing.T) {
	g := buildLoop(t, `
do i = 1, 100
  B[i] := A[i] + 1
  C[i] := B[i] * 2
  D[i] := C[i] - 3
enddo
`)
	dg := BuildFromLoop(g, 8)
	if l := dg.CriticalPath(); l != 3 {
		t.Fatalf("critical path = %d, want 3\n%s", l, dg)
	}
}

func TestIndependentStatements(t *testing.T) {
	g := buildLoop(t, `
do i = 1, 100
  B[i] := x + 1
  C[i] := y * 2
  D[i] := z - 3
enddo
`)
	dg := BuildFromLoop(g, 8)
	if l := dg.CriticalPath(); l != 1 {
		t.Fatalf("critical path = %d, want 1 (no deps)\n%s", l, dg)
	}
	// Fully parallel: unrolling keeps the path at 1.
	if l4 := dg.UnrolledCriticalPath(4); l4 != 1 {
		t.Fatalf("l_unroll(4) = %d, want 1\n%s", l4, dg)
	}
}

func TestCarriedRecurrenceSerializes(t *testing.T) {
	g := buildLoop(t, `
do i = 1, 100
  A[i+1] := A[i] + 1
enddo
`)
	dg := BuildFromLoop(g, 8)
	if !dg.HasCarriedDistance(1) {
		t.Fatalf("distance-1 dependence missing\n%s", dg)
	}
	l := dg.CriticalPath()
	for u := 2; u <= 4; u++ {
		lu := dg.UnrolledCriticalPath(u)
		if lu != int64(u)*l {
			t.Errorf("l_unroll(%d) = %d, want %d (serial chain)", u, lu, int64(u)*l)
		}
	}
}

func TestDistanceTwoAllowsPairwiseParallelism(t *testing.T) {
	g := buildLoop(t, `
do i = 1, 100
  A[i+2] := A[i] + 1
enddo
`)
	dg := BuildFromLoop(g, 8)
	if dg.HasCarriedDistance(1) {
		t.Fatalf("unexpected distance-1 dependence\n%s", dg)
	}
	if !dg.HasCarriedDistance(2) {
		t.Fatalf("distance-2 dependence missing\n%s", dg)
	}
	// Two copies run in parallel; four copies chain pairwise: l(2)=1, l(4)=2.
	if l2 := dg.UnrolledCriticalPath(2); l2 != 1 {
		t.Errorf("l_unroll(2) = %d, want 1", l2)
	}
	if l4 := dg.UnrolledCriticalPath(4); l4 != 2 {
		t.Errorf("l_unroll(4) = %d, want 2", l4)
	}
}

// TestPaperBound checks l ≤ l_unroll(2) ≤ 2l across a few shapes.
func TestPaperBound(t *testing.T) {
	srcs := []string{
		"do i = 1, 50\n A[i+1] := A[i] + 1\nenddo",
		"do i = 1, 50\n A[i+2] := A[i] + 1\n B[i] := A[i+2]\nenddo",
		"do i = 1, 50\n B[i] := A[i]\n C[i] := B[i]\n A[i+1] := C[i]\nenddo",
		"do i = 1, 50\n B[i] := x\n C[i] := y\nenddo",
	}
	for _, src := range srcs {
		dg := BuildFromLoop(buildLoop(t, src), 8)
		l, l2 := dg.CriticalPath(), dg.UnrolledCriticalPath(2)
		if l2 < l || l2 > 2*l {
			t.Errorf("bound violated for %q: l=%d l2=%d", src, l, l2)
		}
	}
}

func TestConditionalDependences(t *testing.T) {
	// A potential (may) dependence through a conditional definition is
	// still a dependence for scheduling purposes.
	g := buildLoop(t, `
do i = 1, 100
  if c > 0 then
    A[i+1] := x
  endif
  B[i] := A[i]
enddo
`)
	dg := BuildFromLoop(g, 8)
	if !dg.HasCarriedDistance(1) {
		t.Fatalf("may-dependence through conditional missing\n%s", dg)
	}
}

func TestZeroCopies(t *testing.T) {
	g := buildLoop(t, "do i = 1, 10\n A[i] := 1\nenddo")
	dg := BuildFromLoop(g, 4)
	if dg.UnrolledCriticalPath(0) != 0 {
		t.Error("u=0 must give 0")
	}
}
