// Package diag defines the unified diagnostic currency of the static
// analysis layer: a Finding ties an analyzer's verdict to a source position
// range, a severity, and optional structured detail. Findings are value
// types with a total deterministic order, so analyzer output can be pinned
// byte-for-byte in golden tests and emitted stably from parallel runs.
package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/token"
)

// Severity grades a finding. The zero value is Info.
type Severity int

// Severity levels, ordered least to most severe.
const (
	Info Severity = iota
	Warning
	Error
)

var severityNames = [...]string{"info", "warning", "error"}

// String returns the lower-case severity name.
func (s Severity) String() string {
	if s < Info || s > Error {
		return fmt.Sprintf("Severity(%d)", int(s))
	}
	return severityNames[s]
}

// MarshalJSON emits the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts a lower-case severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range severityNames {
		if n == name {
			*s = Severity(i)
			return nil
		}
	}
	return fmt.Errorf("diag: unknown severity %q", name)
}

// Related points at a secondary position that explains a finding (the
// overwriting store of a dead store, the blocking reference pair of a
// non-parallelizable loop). File, when non-empty, names the source file the
// position belongs to; empty means "same file as the run" (single-file
// mini-language inputs never set it).
type Related struct {
	File    string    `json:"file,omitempty"`
	Pos     token.Pos `json:"pos"`
	Message string    `json:"message"`
}

// TextEdit is one replacement of a source range by new text. The range is
// [Pos, End) in line/column terms; an invalid End means a pure insertion at
// Pos. Edits never span a change that the positions cannot express (they
// are computed against the exact source the analyzers saw).
type TextEdit struct {
	Pos     token.Pos `json:"pos"`
	End     token.Pos `json:"end"`
	NewText string    `json:"newText"`
}

// SuggestedFix is a machine-applicable repair for a finding: a short
// description plus the text edits realizing it. Fixes must be mechanical —
// applying one removes the finding without changing intended behavior (or,
// for uninitialized reads, makes the intended behavior explicit).
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Finding is one diagnostic produced by a static analyzer.
type Finding struct {
	// Analyzer is the stable ID of the producing analyzer (e.g.
	// "deadstore"); parse and semantic errors use "parse" and "sema".
	Analyzer string `json:"analyzer"`
	// File names the source file the finding points into, relative to the
	// module root, for multi-file front ends (the Go importer). Empty means
	// the single source of the run: renderers then fall back to the run's
	// display name, which keeps single-file mini-language output unchanged.
	File string `json:"file,omitempty"`
	// Pos is the primary source position; End, when valid, closes a range
	// (an invalid End means the finding covers a single point).
	Pos token.Pos `json:"pos"`
	End token.Pos `json:"end"`
	// Severity grades the finding; Error severities fail `arrayflow vet`.
	Severity Severity `json:"severity"`
	// Message is the human-readable, single-line description.
	Message string `json:"message"`
	// Related lists secondary positions that explain the finding.
	Related []Related `json:"related,omitempty"`
	// Detail carries analyzer-specific structured facts (distances, bounds,
	// class forms). A string-keyed map keeps JSON output deterministic:
	// encoding/json sorts map keys.
	Detail map[string]string `json:"detail,omitempty"`
	// SuggestedFixes lists machine-applicable repairs; ApplyFixes applies
	// the first fix of each finding when its edits do not conflict.
	SuggestedFixes []SuggestedFix `json:"suggestedFixes,omitempty"`
	// Suppressed marks a finding silenced by a //lint:ignore directive (the
	// reason is kept in Detail["suppressedBy"]). Suppressed findings are
	// excluded from text output and exit codes but surface in SARIF with a
	// suppression record, as code-scanning backends expect.
	Suppressed bool `json:"suppressed,omitempty"`
}

// String renders "line:col: severity: analyzer: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", f.Pos, f.Severity, f.Analyzer, f.Message)
}

// Less is the total deterministic order over findings: by file first
// (multi-file runs group per artifact; the empty file of single-source
// runs sorts before any named one), then position (source order is what a
// reader scans by), then analyzer ID, severity, message, and finally the
// detail rendering as an ultimate tie-break.
func Less(a, b Finding) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Col != b.Pos.Col {
		return a.Pos.Col < b.Pos.Col
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	if a.Severity != b.Severity {
		return a.Severity > b.Severity // more severe first
	}
	if a.Message != b.Message {
		return a.Message < b.Message
	}
	return detailKey(a) < detailKey(b)
}

func detailKey(f Finding) string {
	if len(f.Detail) == 0 {
		return ""
	}
	keys := make([]string, 0, len(f.Detail))
	for k := range f.Detail {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, f.Detail[k])
	}
	return b.String()
}

// Sort orders findings deterministically in place (see Less).
func Sort(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool { return Less(fs[i], fs[j]) })
}

// Dedup removes exact duplicates from a sorted slice.
func Dedup(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && equal(f, fs[i-1]) {
			continue
		}
		out = append(out, f)
	}
	return out
}

func equal(a, b Finding) bool {
	if a.File != b.File {
		return false
	}
	if a.Analyzer != b.Analyzer || a.Pos != b.Pos || a.End != b.End ||
		a.Severity != b.Severity || a.Message != b.Message ||
		len(a.Related) != len(b.Related) {
		return false
	}
	for i := range a.Related {
		if a.Related[i] != b.Related[i] {
			return false
		}
	}
	return detailKey(a) == detailKey(b)
}

// MaxSeverity returns the highest severity present (Info for an empty set,
// alongside ok=false).
func MaxSeverity(fs []Finding) (Severity, bool) {
	if len(fs) == 0 {
		return Info, false
	}
	max := Info
	for _, f := range fs {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max, true
}

// WriteText renders findings in the conventional compiler format, one per
// line, with related positions indented beneath:
//
//	file:3:9: warning: deadstore: store to A[i] is overwritten ...
//	    file:4:9: overwritten here (distance 1)
//
// Suppressed findings (//lint:ignore, baseline) are omitted — text output
// is the human-facing view of what still needs attention; JSON and SARIF
// carry the suppressed findings with their justification.
//
// file is the run's display name, used for findings that do not carry
// their own File (single-source front ends); findings with File set (the
// Go importer's module-root-relative paths) print it instead.
func WriteText(w io.Writer, file string, fs []Finding) error {
	// Render into one pre-sized builder and write once: the per-line
	// Fprintf-to-w pattern cost a write call per finding, which dominated
	// rendering on large finding sets.
	var b strings.Builder
	size := 0
	for _, f := range fs {
		size += len(file) + len(f.File) + len(f.Message) + 48
		for _, r := range f.Related {
			size += len(file) + len(r.Message) + 24
		}
	}
	b.Grow(size)
	for _, f := range fs {
		if f.Suppressed {
			continue
		}
		fmt.Fprintf(&b, "%s:%s\n", artifactName(file, f.File), f)
		for _, r := range f.Related {
			fmt.Fprintf(&b, "    %s:%s: %s\n", artifactName(artifactName(file, f.File), r.File), r.Pos, r.Message)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// artifactName resolves a finding-level file against the run-level display
// name: per-finding files win, the run name is the single-source fallback.
func artifactName(runFile, findingFile string) string {
	if findingFile != "" {
		return findingFile
	}
	return runFile
}

// File groups the findings of one source file for JSON output.
type File struct {
	File     string    `json:"file"`
	Findings []Finding `json:"findings"`
}

// WriteJSON renders one file's findings as an indented JSON document with a
// trailing newline. Output is deterministic for sorted findings: struct
// fields emit in declaration order and Detail maps sort by key.
func WriteJSON(w io.Writer, file string, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(File{File: file, Findings: fs})
}
