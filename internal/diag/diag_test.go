package diag

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/token"
)

func pos(line, col int) token.Pos { return token.Pos{Line: line, Col: col} }

func TestSortOrder(t *testing.T) {
	fs := []Finding{
		{Analyzer: "reuse", Pos: pos(3, 9), Severity: Info, Message: "b"},
		{Analyzer: "bounds", Pos: pos(3, 9), Severity: Error, Message: "a"},
		{Analyzer: "bounds", Pos: pos(1, 2), Severity: Error, Message: "c"},
		{Analyzer: "bounds", Pos: pos(3, 1), Severity: Error, Message: "d"},
		{Analyzer: "bounds", Pos: pos(3, 9), Severity: Warning, Message: "a"},
	}
	// Shuffle deterministically; the sort must normalize any input order.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(fs), func(i, j int) { fs[i], fs[j] = fs[j], fs[i] })
		Sort(fs)
		var got []string
		for _, f := range fs {
			got = append(got, f.String())
		}
		want := []string{
			"1:2: error: bounds: c",
			"3:1: error: bounds: d",
			"3:9: error: bounds: a", // more severe first at equal position+analyzer
			"3:9: warning: bounds: a",
			"3:9: info: reuse: b",
		}
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("trial %d: got order %v", trial, got)
		}
	}
}

func TestDedup(t *testing.T) {
	f := Finding{Analyzer: "uninit", Pos: pos(2, 3), Severity: Warning, Message: "m",
		Detail: map[string]string{"gap": "1"}}
	same := Finding{Analyzer: "uninit", Pos: pos(2, 3), Severity: Warning, Message: "m",
		Detail: map[string]string{"gap": "1"}}
	diff := same
	diff.Detail = map[string]string{"gap": "2"}
	fs := []Finding{f, same, diff}
	Sort(fs)
	if got := Dedup(fs); len(got) != 2 {
		t.Fatalf("want 2 after dedup, got %d: %v", len(got), got)
	}
}

func TestMaxSeverity(t *testing.T) {
	if _, ok := MaxSeverity(nil); ok {
		t.Error("empty set should report ok=false")
	}
	sev, ok := MaxSeverity([]Finding{{Severity: Info}, {Severity: Error}, {Severity: Warning}})
	if !ok || sev != Error {
		t.Errorf("got %v/%v, want error/true", sev, ok)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != `"`+s.String()+`"` {
			t.Errorf("marshal %v = %s", s, b)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil || back != s {
			t.Errorf("round trip %v -> %v (%v)", s, back, err)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Error("unknown severity should not unmarshal")
	}
}

func TestWriteText(t *testing.T) {
	fs := []Finding{{
		Analyzer: "deadstore", Pos: pos(3, 3), Severity: Warning, Message: "store is dead",
		Related: []Related{{Pos: pos(4, 3), Message: "overwritten here"}},
	}}
	var buf bytes.Buffer
	if err := WriteText(&buf, "prog.loop", fs); err != nil {
		t.Fatal(err)
	}
	want := "prog.loop:3:3: warning: deadstore: store is dead\n" +
		"    prog.loop:4:3: overwritten here\n"
	if buf.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWriteJSONDeterministicAndEmpty(t *testing.T) {
	fs := []Finding{{
		Analyzer: "bounds", Pos: pos(4, 11), Severity: Error, Message: "m",
		Detail: map[string]string{"zeta": "1", "alpha": "2", "mid": "3"},
	}}
	var first string
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, "prog.loop", fs); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			continue
		}
		if buf.String() != first {
			t.Fatalf("JSON output unstable:\n%s\nvs\n%s", buf.String(), first)
		}
	}
	if !strings.Contains(first, `"alpha": "2"`) {
		t.Errorf("detail missing: %s", first)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, "empty.loop", nil); err != nil {
		t.Fatal(err)
	}
	var file File
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("empty output not valid JSON: %v", err)
	}
	if file.Findings == nil || len(file.Findings) != 0 {
		t.Errorf("nil findings should render as an empty array: %s", buf.String())
	}
}
