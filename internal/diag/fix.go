package diag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/token"
)

// lineIndex maps 1-based line numbers to byte offsets of line starts.
type lineIndex struct {
	src    string
	starts []int // starts[k] = offset of line k+1
}

func newLineIndex(src string) *lineIndex {
	li := &lineIndex{src: src, starts: []int{0}}
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			li.starts = append(li.starts, i+1)
		}
	}
	return li
}

// offset converts a 1-based position to a byte offset, clamped to the
// source. ok is false when the line does not exist (columns clamp to the
// line end: analyzers position on characters, trailing-edge columns are
// legitimate).
func (li *lineIndex) offset(p token.Pos) (int, bool) {
	if p.Line < 1 || p.Line > len(li.starts) {
		return 0, false
	}
	start := li.starts[p.Line-1]
	end := len(li.src)
	if p.Line < len(li.starts) {
		end = li.starts[p.Line] // includes the newline of line p.Line
	}
	off := start + p.Col - 1
	if p.Col < 1 {
		return 0, false
	}
	if off > end {
		off = end
	}
	return off, true
}

// span resolves an edit's byte range. An invalid End means a pure
// insertion at Pos.
func (li *lineIndex) span(e TextEdit) (lo, hi int, ok bool) {
	lo, ok = li.offset(e.Pos)
	if !ok {
		return 0, 0, false
	}
	if !e.End.IsValid() {
		return lo, lo, true
	}
	hi, ok = li.offset(e.End)
	if !ok || hi < lo {
		return 0, 0, false
	}
	return lo, hi, true
}

// resolvedEdit is a TextEdit with byte offsets resolved.
type resolvedEdit struct {
	lo, hi int
	text   string
}

// conflicts reports whether two resolved edits overlap. Two pure
// insertions at the same offset conflict (their order is ambiguous); an
// insertion at the boundary of a replacement does not.
func conflicts(a, b resolvedEdit) bool {
	if a.lo == a.hi && b.lo == b.hi {
		return a.lo == b.lo
	}
	return a.lo < b.hi && b.lo < a.hi
}

// FixResult describes one ApplyFixes pass.
type FixResult struct {
	// Src is the source after the applied edits.
	Src string
	// Applied counts the findings whose fix was applied in full.
	Applied int
	// Skipped counts findings with a fix that was dropped because an edit
	// conflicted with an earlier-applied fix or had an unresolvable
	// position.
	Skipped int
}

// ApplyFixes applies the first suggested fix of each finding to src,
// processing findings in their deterministic sorted order. A fix is
// applied atomically: if any of its edits conflicts with an
// already-accepted edit (or falls outside the source), the whole fix is
// skipped — a later pass over the re-analyzed source picks it up, which is
// what makes `vet -fix` converge to a fixpoint.
func ApplyFixes(src string, fs []Finding) FixResult {
	li := newLineIndex(src)
	var accepted []resolvedEdit
	res := FixResult{Src: src}
	for _, f := range fs {
		if f.Suppressed || len(f.SuggestedFixes) == 0 {
			continue
		}
		fix := f.SuggestedFixes[0]
		if len(fix.Edits) == 0 {
			continue
		}
		batch := make([]resolvedEdit, 0, len(fix.Edits))
		ok := true
		for _, e := range fix.Edits {
			lo, hi, edOK := li.span(e)
			if !edOK {
				ok = false
				break
			}
			re := resolvedEdit{lo: lo, hi: hi, text: e.NewText}
			for _, prev := range accepted {
				if conflicts(prev, re) {
					ok = false
					break
				}
			}
			for _, prev := range batch {
				if conflicts(prev, re) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			batch = append(batch, re)
		}
		if !ok {
			res.Skipped++
			continue
		}
		accepted = append(accepted, batch...)
		res.Applied++
	}
	if len(accepted) == 0 {
		return res
	}
	// Apply back to front so earlier offsets stay valid. Insertions at
	// equal offsets cannot co-exist (conflicts rejects them), so the sort
	// is unambiguous.
	sort.Slice(accepted, func(i, j int) bool {
		if accepted[i].lo != accepted[j].lo {
			return accepted[i].lo > accepted[j].lo
		}
		return accepted[i].hi > accepted[j].hi
	})
	out := src
	for _, e := range accepted {
		out = out[:e.lo] + e.text + out[e.hi:]
	}
	res.Src = out
	return res
}

// LineAt returns the 1-based line's text without its newline, and whether
// the line exists. Analyzers use it to check that a statement owns its
// whole source line before suggesting a line deletion.
func LineAt(src string, line int) (string, bool) {
	li := newLineIndex(src)
	if line < 1 || line > len(li.starts) {
		return "", false
	}
	start := li.starts[line-1]
	end := len(src)
	if line < len(li.starts) {
		end = li.starts[line] - 1 // strip the newline
	}
	return src[start:end], true
}

// DeleteLineEdit builds the edit removing an entire source line (newline
// included when present). ok is false when the line does not exist.
func DeleteLineEdit(src string, line int) (TextEdit, bool) {
	li := newLineIndex(src)
	if line < 1 || line > len(li.starts) {
		return TextEdit{}, false
	}
	if line < len(li.starts) {
		return TextEdit{
			Pos: token.Pos{Line: line, Col: 1},
			End: token.Pos{Line: line + 1, Col: 1},
		}, true
	}
	// Last line: delete to end of text.
	text, _ := LineAt(src, line)
	return TextEdit{
		Pos: token.Pos{Line: line, Col: 1},
		End: token.Pos{Line: line, Col: len(text) + 1},
	}, true
}

// InsertLinesEdit builds the edit inserting the given lines (each without
// trailing newline) immediately above the 1-based line, indented like it.
func InsertLinesEdit(src string, line int, lines []string) (TextEdit, bool) {
	text, ok := LineAt(src, line)
	if !ok {
		return TextEdit{}, false
	}
	indent := text[:len(text)-len(strings.TrimLeft(text, " \t"))]
	var b strings.Builder
	for _, ln := range lines {
		fmt.Fprintf(&b, "%s%s\n", indent, ln)
	}
	return TextEdit{Pos: token.Pos{Line: line, Col: 1}, NewText: b.String()}, true
}
