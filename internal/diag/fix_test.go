package diag

import (
	"testing"

	"repro/internal/token"
)

func TestLineIndexOffsets(t *testing.T) {
	li := newLineIndex("ab\ncde\n\nf")
	cases := []struct {
		pos  token.Pos
		want int
		ok   bool
	}{
		{pos(1, 1), 0, true},
		{pos(1, 3), 2, true},  // trailing edge of line 1
		{pos(1, 99), 3, true}, // clamps to the line end (incl. newline)
		{pos(2, 1), 3, true},
		{pos(2, 4), 6, true},
		{pos(3, 1), 7, true}, // empty line
		{pos(4, 1), 8, true},
		{pos(4, 2), 9, true}, // end of unterminated last line
		{pos(5, 1), 0, false},
		{pos(0, 1), 0, false},
		{pos(1, 0), 0, false},
	}
	for _, tc := range cases {
		got, ok := li.offset(tc.pos)
		if got != tc.want || ok != tc.ok {
			t.Errorf("offset(%v) = (%d, %v), want (%d, %v)", tc.pos, got, ok, tc.want, tc.ok)
		}
	}
}

func TestLineAt(t *testing.T) {
	src := "first\nsecond\nlast"
	for line, want := range map[int]string{1: "first", 2: "second", 3: "last"} {
		if got, ok := LineAt(src, line); !ok || got != want {
			t.Errorf("LineAt(%d) = (%q, %v), want (%q, true)", line, got, ok, want)
		}
	}
	if _, ok := LineAt(src, 4); ok {
		t.Error("LineAt(4) reported a nonexistent line")
	}
}

func TestDeleteLineEdit(t *testing.T) {
	src := "keep\ndrop\nkeep2"
	// Middle line: deletes through the newline.
	e, ok := DeleteLineEdit(src, 2)
	if !ok {
		t.Fatal("middle line not found")
	}
	res := ApplyFixes(src, []Finding{{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{e}}}}})
	if res.Src != "keep\nkeep2" || res.Applied != 1 {
		t.Errorf("middle deletion: %q (applied %d)", res.Src, res.Applied)
	}
	// Last line without trailing newline: deletes to end of text.
	e, ok = DeleteLineEdit(src, 3)
	if !ok {
		t.Fatal("last line not found")
	}
	res = ApplyFixes(src, []Finding{{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{e}}}}})
	if res.Src != "keep\ndrop\n" {
		t.Errorf("last-line deletion: %q", res.Src)
	}
	if _, ok := DeleteLineEdit(src, 9); ok {
		t.Error("DeleteLineEdit accepted a nonexistent line")
	}
}

func TestInsertLinesEdit(t *testing.T) {
	src := "do i = 1, 5\n    A[i] := 0\nenddo\n"
	e, ok := InsertLinesEdit(src, 2, []string{"B[i] := 0"})
	if !ok {
		t.Fatal("line 2 not found")
	}
	res := ApplyFixes(src, []Finding{{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{e}}}}})
	want := "do i = 1, 5\n    B[i] := 0\n    A[i] := 0\nenddo\n"
	if res.Src != want {
		t.Errorf("insertion did not copy the target line's indentation:\n%q", res.Src)
	}
}

// TestApplyFixesConflictAtomicity verifies a fix whose edits overlap an
// already-accepted fix is skipped in full — no partial application — and
// counted in Skipped.
func TestApplyFixesConflictAtomicity(t *testing.T) {
	src := "aaaa\nbbbb\ncccc\n"
	del2, _ := DeleteLineEdit(src, 2)
	fs := []Finding{
		{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{del2}}}},
		// Two edits: one harmless insertion at line 1, one overlapping the
		// accepted deletion. The harmless half must NOT apply.
		{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{
			{Pos: pos(1, 1), NewText: "X\n"},
			{Pos: pos(2, 2), End: pos(2, 4), NewText: "Y"},
		}}}},
	}
	res := ApplyFixes(src, fs)
	if res.Applied != 1 || res.Skipped != 1 {
		t.Errorf("applied/skipped = %d/%d, want 1/1", res.Applied, res.Skipped)
	}
	if res.Src != "aaaa\ncccc\n" {
		t.Errorf("conflicting fix partially applied: %q", res.Src)
	}
}

// TestApplyFixesSameOffsetInsertions verifies two pure insertions at the
// same offset conflict (their order would be ambiguous), while an
// insertion at the boundary of a replacement does not.
func TestApplyFixesSameOffsetInsertions(t *testing.T) {
	src := "one\ntwo\n"
	fs := []Finding{
		{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{{Pos: pos(2, 1), NewText: "A\n"}}}}},
		{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{{Pos: pos(2, 1), NewText: "B\n"}}}}},
	}
	res := ApplyFixes(src, fs)
	if res.Applied != 1 || res.Skipped != 1 {
		t.Errorf("same-offset insertions: applied/skipped = %d/%d, want 1/1", res.Applied, res.Skipped)
	}
	fs = []Finding{
		{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{{Pos: pos(1, 1), End: pos(1, 4), NewText: "ONE"}}}}},
		{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{{Pos: pos(1, 4), NewText: "!"}}}}},
	}
	res = ApplyFixes(src, fs)
	if res.Applied != 2 || res.Src != "ONE!\ntwo\n" {
		t.Errorf("boundary insertion rejected: applied=%d src=%q", res.Applied, res.Src)
	}
}

// TestApplyFixesSkipsSuppressed verifies suppressed findings' fixes are
// never applied: a silenced diagnostic must not edit code.
func TestApplyFixesSkipsSuppressed(t *testing.T) {
	src := "x\ny\n"
	del, _ := DeleteLineEdit(src, 1)
	fs := []Finding{{
		Suppressed:     true,
		SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{del}}},
	}}
	res := ApplyFixes(src, fs)
	if res.Applied != 0 || res.Src != src {
		t.Errorf("suppressed finding's fix applied: %q", res.Src)
	}
}

// TestApplyFixesUnresolvablePosition verifies a fix pointing outside the
// source is skipped, not applied at a clamped location.
func TestApplyFixesUnresolvablePosition(t *testing.T) {
	src := "x\n"
	fs := []Finding{{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{
		{Pos: pos(9, 1), NewText: "nope"},
	}}}}}
	res := ApplyFixes(src, fs)
	if res.Applied != 0 || res.Skipped != 1 || res.Src != src {
		t.Errorf("out-of-range fix: applied=%d skipped=%d src=%q", res.Applied, res.Skipped, res.Src)
	}
}
