// SARIF 2.1.0 rendering: findings become a Static Analysis Results
// Interchange Format log that GitHub code scanning (and any other SARIF
// consumer) ingests directly. The emitted subset sticks to the required
// properties plus the optional ones this toolchain can fill faithfully:
// rule metadata, region-positioned results, related locations, suggested
// fixes as fix objects, stable partial fingerprints, and in-source
// suppressions.
package diag

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/token"
)

// SARIFSchemaURI is the canonical 2.1.0 schema location stamped into every
// log ($schema is what editors and validators key on).
const SARIFSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// SARIFVersion is the spec version of the emitted logs.
const SARIFVersion = "2.1.0"

// RuleMeta describes one analyzer for the SARIF rules table. The lint
// layer supplies these from its registry; the reserved front-end IDs
// ("parse", "sema") get synthetic entries.
type RuleMeta struct {
	ID string
	// Doc is the one-line rule description.
	Doc string
	// HelpURI optionally links the rule's documentation.
	HelpURI string
	// Default is the severity the analyzer ordinarily reports at.
	Default Severity
	// Properties carries rule-level metadata into the SARIF property bag
	// (e.g. the race analyzer's blocker taxonomy). Keys render sorted.
	Properties map[string]string
}

// The sarif* types mirror the SARIF 2.1.0 object model, restricted to the
// emitted subset. Field order is emission order (encoding/json preserves
// struct order), which keeps golden files stable.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	SemVer         string      `json:"semanticVersion,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string             `json:"id"`
	ShortDescription sarifMessage       `json:"shortDescription"`
	HelpURI          string             `json:"helpUri,omitempty"`
	DefaultConfig    sarifConfiguration `json:"defaultConfiguration"`
	Properties       map[string]string  `json:"properties,omitempty"`
}

type sarifConfiguration struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string             `json:"ruleId"`
	RuleIndex           int                `json:"ruleIndex"`
	Level               string             `json:"level"`
	Message             sarifMessage       `json:"message"`
	Locations           []sarifLocation    `json:"locations"`
	RelatedLocations    []sarifLocation    `json:"relatedLocations,omitempty"`
	Fixes               []sarifFix         `json:"fixes,omitempty"`
	Suppressions        []sarifSuppression `json:"suppressions,omitempty"`
	PartialFingerprints map[string]string  `json:"partialFingerprints,omitempty"`
	Properties          map[string]string  `json:"properties,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	Message          *sarifMessage         `json:"message,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

type sarifFix struct {
	Description     sarifMessage          `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Replacements     []sarifReplacement    `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifRegion   `json:"deletedRegion"`
	InsertedContent *sarifMessage `json:"insertedContent,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// sarifLevel maps a severity to the SARIF reporting level.
func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "note"
	}
}

// WriteSARIF renders one file's findings as a SARIF 2.1.0 log with a
// trailing newline. rules lists every analyzer that may appear (findings
// whose analyzer is absent get an on-the-fly rule entry so the log always
// validates). Output is deterministic for sorted findings. Suppressed
// findings are included with an inSource suppression object rather than
// dropped — that is how code-scanning backends distinguish "fixed" from
// "silenced".
func WriteSARIF(w io.Writer, file string, rules []RuleMeta, fs []Finding) error {
	index := map[string]int{}
	var sr []sarifRule
	addRule := func(m RuleMeta) {
		if _, ok := index[m.ID]; ok {
			return
		}
		index[m.ID] = len(sr)
		doc := m.Doc
		if doc == "" {
			doc = m.ID
		}
		sr = append(sr, sarifRule{
			ID:               m.ID,
			ShortDescription: sarifMessage{Text: doc},
			HelpURI:          m.HelpURI,
			DefaultConfig:    sarifConfiguration{Level: sarifLevel(m.Default)},
			Properties:       m.Properties,
		})
	}
	for _, m := range rules {
		addRule(m)
	}
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		addRule(RuleMeta{ID: f.Analyzer, Default: f.Severity})
		// Multi-file front ends stamp each finding with its own
		// module-root-relative artifact; the run-level name is only the
		// single-source fallback, so `-lang go` results resolve against the
		// real .go files in code scanning instead of a synthetic name.
		artifact := artifactName(file, f.File)
		r := sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     sarifLevel(f.Severity),
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: physicalLocation(artifact, f.Pos, f.End),
			}},
			PartialFingerprints: map[string]string{
				"arrayflowFinding/v1": fingerprint(f),
			},
		}
		for _, rel := range f.Related {
			msg := sarifMessage{Text: rel.Message}
			r.RelatedLocations = append(r.RelatedLocations, sarifLocation{
				PhysicalLocation: physicalLocation(artifactName(artifact, rel.File), rel.Pos, token.Pos{}),
				Message:          &msg,
			})
		}
		for _, fix := range f.SuggestedFixes {
			r.Fixes = append(r.Fixes, sarifFixOf(artifact, fix))
		}
		if f.Suppressed {
			kind := f.Detail["suppressionKind"]
			if kind == "" {
				kind = "inSource"
			}
			r.Suppressions = append(r.Suppressions, sarifSuppression{
				Kind:          kind,
				Justification: f.Detail["suppressedBy"],
			})
		}
		if len(f.Detail) > 0 {
			r.Properties = f.Detail
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  SARIFSchemaURI,
		Version: SARIFVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "arrayflow",
				InformationURI: "https://github.com/arrayflow/arrayflow",
				SemVer:         "1.0.0",
				Rules:          sr,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// fingerprint is the stable identity of a finding for baseline matching
// across runs: the owning file (when the front end is multi-file), the
// analyzer, severity, and message (positions shift as code moves; messages
// carry the distinguishing facts). The same key feeds the suppression
// baseline, so SARIF consumers and -baseline agree on what "the same
// finding" means. Findings without a File hash exactly the bytes they
// always did, so single-source fingerprints are unchanged.
func fingerprint(f Finding) string {
	h := fnv.New64a()
	if f.File != "" {
		fmt.Fprintf(h, "%s\x00", f.File)
	}
	fmt.Fprintf(h, "%s\x00%s\x00%s", f.Analyzer, f.Severity, f.Message)
	return fmt.Sprintf("%016x", h.Sum64())
}

// BaselineKey is the position-independent identity used by both SARIF
// partial fingerprints and findings baselines. Multi-file findings fold in
// their file so the same verdict text in two different .go files is two
// distinct baseline classes; single-source findings keep the historical
// file-less key.
func BaselineKey(f Finding) string {
	key := f.Analyzer + "\x00" + f.Severity.String() + "\x00" + f.Message
	if f.File != "" {
		key = f.File + "\x00" + key
	}
	return key
}

func physicalLocation(file string, pos, end token.Pos) sarifPhysicalLocation {
	reg := sarifRegion{StartLine: pos.Line, StartColumn: pos.Col}
	if end.IsValid() {
		reg.EndLine = end.Line
		reg.EndColumn = end.Col
	}
	return sarifPhysicalLocation{
		ArtifactLocation: sarifArtifactLocation{URI: file},
		Region:           reg,
	}
}

// sarifFixOf converts a SuggestedFix to the SARIF fix object. Insertions
// (invalid End) become zero-width deleted regions.
func sarifFixOf(file string, fix SuggestedFix) sarifFix {
	reps := make([]sarifReplacement, 0, len(fix.Edits))
	for _, e := range fix.Edits {
		reg := sarifRegion{StartLine: e.Pos.Line, StartColumn: e.Pos.Col}
		if e.End.IsValid() {
			reg.EndLine = e.End.Line
			reg.EndColumn = e.End.Col
		} else {
			reg.EndLine = e.Pos.Line
			reg.EndColumn = e.Pos.Col
		}
		rep := sarifReplacement{DeletedRegion: reg}
		if e.NewText != "" {
			rep.InsertedContent = &sarifMessage{Text: e.NewText}
		}
		reps = append(reps, rep)
	}
	return sarifFix{
		Description: sarifMessage{Text: fix.Message},
		ArtifactChanges: []sarifArtifactChange{{
			ArtifactLocation: sarifArtifactLocation{URI: file},
			Replacements:     reps,
		}},
	}
}
