package diag

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/token"
)

// sarifTestRules is a minimal rules table exercising defaults of each
// severity.
var sarifTestRules = []RuleMeta{
	{ID: "parse", Doc: "parse errors", Default: Error},
	{ID: "alpha", Doc: "alpha findings", Default: Warning},
	{ID: "beta", Doc: "beta findings", Default: Info},
}

func sarifTestFindings() []Finding {
	return []Finding{
		{
			Analyzer: "alpha",
			Pos:      token.Pos{Line: 3, Col: 1},
			End:      token.Pos{Line: 3, Col: 10},
			Severity: Warning,
			Message:  "loop is provably racy",
			Related:  []Related{{Pos: token.Pos{Line: 4, Col: 3}, Message: "conflicting store"}},
			Detail:   map[string]string{"verdict": "racy"},
		},
		{
			Analyzer: "beta",
			Pos:      token.Pos{Line: 5, Col: 2},
			Severity: Info,
			Message:  "value reused",
			SuggestedFixes: []SuggestedFix{{
				Message: "delete the dead line",
				Edits: []TextEdit{
					{Pos: token.Pos{Line: 5, Col: 1}, End: token.Pos{Line: 6, Col: 1}},
					{Pos: token.Pos{Line: 2, Col: 1}, NewText: "B[0] := 0\n"},
				},
			}},
		},
		{
			Analyzer:   "alpha",
			Pos:        token.Pos{Line: 7, Col: 1},
			Severity:   Warning,
			Message:    "silenced finding",
			Suppressed: true,
			Detail: map[string]string{
				"suppressedBy":    "//lint:ignore at line 6: known issue",
				"suppressionKind": "inSource",
			},
		},
		{
			// An analyzer absent from the rules table: WriteSARIF must add an
			// on-the-fly rule so ruleIndex always resolves.
			Analyzer: "gamma",
			Pos:      token.Pos{Line: 9, Col: 1},
			Severity: Error,
			Message:  "stray analyzer",
		},
	}
}

// sarifDoc is the decoding mirror of the emitted subset, loose enough to
// catch structural drift (json.Decoder with DisallowUnknownFields would
// reject legitimate future additions, so unknown fields are tolerated —
// the golden tests in internal/lint pin exact bytes).
type sarifDoc struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
					DefaultConfiguration struct {
						Level string `json:"level"`
					} `json:"defaultConfiguration"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
						EndLine     int `json:"endLine"`
						EndColumn   int `json:"endColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
			RelatedLocations []struct {
				Message *struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"relatedLocations"`
			Fixes []struct {
				Description struct {
					Text string `json:"text"`
				} `json:"description"`
				ArtifactChanges []struct {
					Replacements []struct {
						DeletedRegion struct {
							StartLine int `json:"startLine"`
							EndLine   int `json:"endLine"`
						} `json:"deletedRegion"`
						InsertedContent *struct {
							Text string `json:"text"`
						} `json:"insertedContent"`
					} `json:"replacements"`
				} `json:"artifactChanges"`
			} `json:"fixes"`
			Suppressions []struct {
				Kind          string `json:"kind"`
				Justification string `json:"justification"`
			} `json:"suppressions"`
			PartialFingerprints map[string]string `json:"partialFingerprints"`
		} `json:"results"`
	} `json:"runs"`
}

// TestSARIFStructure validates the emitted log against the spec subset
// SARIF consumers depend on: schema/version stamps, a coherent rules
// table, ruleIndex pointing at the matching rule, regions, related
// locations, fixes with replacements, suppression records, and stable
// fingerprints.
func TestSARIFStructure(t *testing.T) {
	var buf bytes.Buffer
	fs := sarifTestFindings()
	if err := WriteSARIF(&buf, "examples/t.loop", sarifTestRules, fs); err != nil {
		t.Fatal(err)
	}
	var doc sarifDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if doc.Schema != SARIFSchemaURI {
		t.Errorf("$schema = %q, want %q", doc.Schema, SARIFSchemaURI)
	}
	if doc.Version != SARIFVersion {
		t.Errorf("version = %q, want %q", doc.Version, SARIFVersion)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "arrayflow" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}

	// Every declared rule appears, plus the on-the-fly "gamma".
	ruleAt := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has an empty shortDescription", r.ID)
		}
		if r.DefaultConfiguration.Level == "" {
			t.Errorf("rule %s has no defaultConfiguration.level", r.ID)
		}
		ruleAt[r.ID] = i
	}
	for _, want := range []string{"parse", "alpha", "beta", "gamma"} {
		if _, ok := ruleAt[want]; !ok {
			t.Errorf("rules table is missing %q (have %v)", want, ruleAt)
		}
	}

	if len(run.Results) != len(fs) {
		t.Fatalf("results = %d, want %d (suppressed findings must be kept)", len(run.Results), len(fs))
	}
	for i, r := range run.Results {
		f := fs[i]
		if r.RuleID != f.Analyzer {
			t.Errorf("result %d ruleId = %q, want %q", i, r.RuleID, f.Analyzer)
		}
		if want := ruleAt[f.Analyzer]; r.RuleIndex != want {
			t.Errorf("result %d ruleIndex = %d, but rule %q sits at %d", i, r.RuleIndex, f.Analyzer, want)
		}
		if want := sarifLevel(f.Severity); r.Level != want {
			t.Errorf("result %d level = %q, want %q", i, r.Level, want)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "examples/t.loop" {
			t.Errorf("result %d artifact URI = %q", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine != f.Pos.Line || loc.Region.StartColumn != f.Pos.Col {
			t.Errorf("result %d region start = %d:%d, want %d:%d",
				i, loc.Region.StartLine, loc.Region.StartColumn, f.Pos.Line, f.Pos.Col)
		}
		if got := r.PartialFingerprints["arrayflowFinding/v1"]; got != fingerprint(f) {
			t.Errorf("result %d fingerprint = %q, want %q", i, got, fingerprint(f))
		}
		if len(r.RelatedLocations) != len(f.Related) {
			t.Errorf("result %d relatedLocations = %d, want %d", i, len(r.RelatedLocations), len(f.Related))
		}
		for j, rel := range r.RelatedLocations {
			if rel.Message == nil || rel.Message.Text != f.Related[j].Message {
				t.Errorf("result %d related %d lost its message", i, j)
			}
		}
	}

	// The fix-bearing finding: deletion region spans the line, insertion has
	// a zero-width deleted region with content.
	fix := run.Results[1].Fixes
	if len(fix) != 1 || len(fix[0].ArtifactChanges) != 1 {
		t.Fatalf("result 1: fixes/changes = %v", fix)
	}
	reps := fix[0].ArtifactChanges[0].Replacements
	if len(reps) != 2 {
		t.Fatalf("replacements = %d, want 2", len(reps))
	}
	if reps[0].DeletedRegion.StartLine != 5 || reps[0].DeletedRegion.EndLine != 6 {
		t.Errorf("deletion region = %+v", reps[0].DeletedRegion)
	}
	if reps[0].InsertedContent != nil {
		t.Error("pure deletion carries insertedContent")
	}
	if reps[1].DeletedRegion.StartLine != reps[1].DeletedRegion.EndLine {
		t.Errorf("pure insertion has a non-zero-width region: %+v", reps[1].DeletedRegion)
	}
	if reps[1].InsertedContent == nil || !strings.Contains(reps[1].InsertedContent.Text, "B[0] := 0") {
		t.Errorf("insertion lost its content: %+v", reps[1].InsertedContent)
	}

	// The suppressed finding carries exactly one suppression with the
	// in-source kind and justification; loud findings carry none.
	sup := run.Results[2].Suppressions
	if len(sup) != 1 || sup[0].Kind != "inSource" {
		t.Fatalf("suppressions = %+v, want one inSource", sup)
	}
	if !strings.Contains(sup[0].Justification, "known issue") {
		t.Errorf("justification = %q", sup[0].Justification)
	}
	for _, i := range []int{0, 1, 3} {
		if len(run.Results[i].Suppressions) != 0 {
			t.Errorf("loud result %d carries suppressions", i)
		}
	}
}

// TestSARIFEmptyFindings verifies a clean run still emits a valid log with
// the full rules table and an empty (non-null) results array.
func TestSARIFEmptyFindings(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "f.loop", sarifTestRules, nil); err != nil {
		t.Fatal(err)
	}
	var doc sarifDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Tool.Driver.Rules) != len(sarifTestRules) {
		t.Errorf("rules table incomplete on an empty run")
	}
	if bytes.Contains(buf.Bytes(), []byte(`"results": null`)) {
		t.Error("results emitted as null; SARIF requires an array")
	}
}

// TestFingerprintStability pins that the fingerprint ignores positions
// (the point of a partial fingerprint: surviving unrelated edits) and
// distinguishes message changes.
func TestFingerprintStability(t *testing.T) {
	a := Finding{Analyzer: "alpha", Pos: token.Pos{Line: 3, Col: 1}, Severity: Warning, Message: "m"}
	b := a
	b.Pos = token.Pos{Line: 30, Col: 7}
	if fingerprint(a) != fingerprint(b) {
		t.Error("fingerprint depends on position")
	}
	c := a
	c.Message = "other"
	if fingerprint(a) == fingerprint(c) {
		t.Error("fingerprint ignores the message")
	}
	if BaselineKey(a) != BaselineKey(b) || BaselineKey(a) == BaselineKey(c) {
		t.Error("BaselineKey and fingerprint disagree on identity")
	}
}
