package driver

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/ast"
	"repro/internal/dataflow"
)

// BatchResult is the outcome of one program of an AnalyzeBatch call.
// Exactly one of Analysis and Err is set.
type BatchResult struct {
	Analysis *ProgramAnalysis
	Err      error
}

// AnalyzeBatch analyzes many programs through one shared worker pool, the
// shared process-global memo cache, and one solver scratch free list per
// worker, amortizing worker startup and transient allocations across the
// whole batch. Parallelism fans out across programs — each program is
// analyzed with the serial schedule by its worker, so for a batch of many
// small programs the pool stays busy without per-program goroutine churn;
// callers with one huge program should use Analyze, which parallelizes
// across a program's loops instead.
//
// Results come back in input order. A program that fails (semantic errors,
// nil entry) sets its item's Err; the rest of the batch is unaffected. Each
// Analysis is byte-identical to what a standalone Analyze of that program
// would produce.
func AnalyzeBatch(progs []*ast.Program, opts *Options) []BatchResult {
	if opts == nil {
		opts = &Options{}
	}
	out := make([]BatchResult, len(progs))
	if len(progs) == 0 {
		return out
	}
	if opts.CacheCap != 0 {
		globalCache.setCap(opts.CacheCap)
	}
	per := *opts
	per.Parallelism = 1 // program-level fan-out replaces wave-level
	per.CacheCap = 0    // already applied once above
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(progs) {
		workers = len(progs)
	}
	one := func(i int, sc *dataflow.Scratch) {
		if progs[i] == nil {
			out[i].Err = errors.New("nil program")
			return
		}
		out[i].Analysis, out[i].Err = analyze(progs[i], &per, sc)
	}
	if workers <= 1 {
		sc := dataflow.NewScratch()
		for i := range progs {
			one(i, sc)
		}
		return out
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := dataflow.NewScratch()
			for i := range work {
				one(i, sc)
			}
		}()
	}
	for i := range progs {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}
