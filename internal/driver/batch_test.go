package driver

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/synth"
)

// TestBatchMatchesStandaloneAnalyze pins the batch contract: every item's
// report is byte-identical to a standalone Analyze of the same program, in
// input order, at several parallelism settings and with the cache on and
// off.
func TestBatchMatchesStandaloneAnalyze(t *testing.T) {
	var progs []*ast.Program
	for seed := int64(1); seed <= 9; seed++ {
		progs = append(progs, synth.MultiLoopProgram(synth.MultiParams{
			Seed: seed, Loops: 6, StmtsPer: 5,
			NestEvery: int(seed%3) + 1, DistinctBodies: 2}))
	}
	want := make([]string, len(progs))
	for i, p := range progs {
		pa, err := Analyze(p, &Options{NestVectors: true})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pa.Report()
	}
	for _, workers := range []int{0, 1, 3} {
		for _, disable := range []bool{false, true} {
			ResetCache()
			results := AnalyzeBatch(progs, &Options{
				NestVectors: true, Parallelism: workers, DisableCache: disable})
			if len(results) != len(progs) {
				t.Fatalf("got %d results for %d programs", len(results), len(progs))
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("workers=%d disable=%v prog %d: %v", workers, disable, i, r.Err)
				}
				if got := r.Analysis.Report(); got != want[i] {
					t.Errorf("workers=%d disable=%v prog %d: batch report diverged from Analyze",
						workers, disable, i)
				}
			}
		}
	}
}

// TestBatchIsolatesFailures: a program that fails sema inside the batch
// sets only its own item's Err.
func TestBatchIsolatesFailures(t *testing.T) {
	good := synth.MultiLoopProgram(synth.MultiParams{Seed: 2, Loops: 3, StmtsPer: 4})
	bad := parser.MustParse("do i = 1, 10\n A[i] := A + 1\nenddo") // A both array and scalar
	results := AnalyzeBatch([]*ast.Program{good, bad, nil, good}, nil)
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("good programs failed: %v / %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil {
		t.Error("semantically invalid program did not error")
	}
	if results[2].Err == nil {
		t.Error("nil program did not error")
	}
	if results[0].Analysis.Report() != results[3].Analysis.Report() {
		t.Error("identical programs produced different reports in one batch")
	}
}

// TestBatchSharesCache: repeated bodies across different programs of one
// batch hit the shared memo cache.
func TestBatchSharesCache(t *testing.T) {
	ResetCache()
	// Same seed twice: program 2 is a clone of program 1.
	p1 := synth.MultiLoopProgram(synth.MultiParams{Seed: 5, Loops: 4, StmtsPer: 6})
	p2 := synth.MultiLoopProgram(synth.MultiParams{Seed: 5, Loops: 4, StmtsPer: 6})
	results := AnalyzeBatch([]*ast.Program{p1, p2}, &Options{Parallelism: 1})
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(i, r.Err)
		}
	}
	if hits := results[0].Analysis.Metrics.CacheHits + results[1].Analysis.Metrics.CacheHits; hits == 0 {
		t.Error("expected cross-program cache hits on identical bodies")
	}
}
