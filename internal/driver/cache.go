package driver

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/poly"
	"repro/internal/problems"
)

// solved is one fully-analyzed loop: the flow graph and the fixed points of
// every requested problem instance, plus the derived reuse facts. Once a
// cache entry is published its solved value is never mutated again — the
// graph has been Precompute()d and the solver never writes into a finished
// Result — so identical loop bodies can share one solved value across
// goroutines and across Analyze calls.
type solved struct {
	graph   *ir.Graph
	results map[string]*dataflow.Result
	reuses  []problems.Reuse
}

// cacheEntry is the singleflight cell for one cache key: the first
// goroutine to claim the key computes inside once; later claimants (the
// cache hits) block on once until the value is published. This makes the
// hit/miss counts deterministic — k distinct keys among n solves always
// yield exactly k misses — no matter how the scheduler interleaves workers.
type cacheEntry struct {
	once sync.Once
	sv   *solved
	err  error
}

// memoKey is the content address of one solve: a 128-bit structural
// fingerprint of the canonical loop rendering, the spec-name signature, and
// the engine, all folded into one hash. It replaces the full canonical
// rendering the cache used to key on — the fingerprint is computed by
// streaming the same bytes the renderer would produce into an FNV-1a 128
// state, so two solves share a key exactly when their old string keys were
// equal (modulo 2^-128 collisions; see debugCanonicalKeys).
type memoKey struct {
	fp ast.FP128
}

// solveCache memoizes loop solves content-addressed by memoKey.
type solveCache struct {
	mu      sync.Mutex
	cap     int // <0 = unlimited
	entries map[memoKey]*cacheEntry
	// order records keys oldest-first so eviction can drop the oldest
	// segment instead of the whole table.
	order  []memoKey
	hits   int
	misses int
	// oracle maps each live key back to its full canonical rendering when
	// debugCanonicalKeys is on; a key colliding across different renderings
	// is a fingerprint collision and panics.
	oracle map[memoKey]string
}

// defaultCacheCap bounds the process-global cache when Options.CacheCap is
// zero. When the table is full the oldest half of the entries is evicted
// (the entries are content-addressed, so a refill is only a re-solve, never
// a correctness issue) — recently-used keys survive, unlike the old
// whole-map drop.
const defaultCacheCap = 4096

// debugCanonicalKeys, when enabled, keeps the old full-rendering key
// alongside each fingerprint and verifies on every lookup that equal
// fingerprints imply equal renderings. It exists as a collision oracle for
// tests; it restores the allocation cost the fingerprint removed.
var (
	debugCanonicalKeysMu sync.Mutex
	debugCanonicalKeys   bool
)

// SetDebugCanonicalKeys toggles the collision oracle: when on, the memo
// cache re-renders every loop to its canonical string and panics if two
// different renderings ever hash to the same fingerprint. Intended for
// tests and differential debugging; returns the previous setting.
func SetDebugCanonicalKeys(on bool) bool {
	debugCanonicalKeysMu.Lock()
	defer debugCanonicalKeysMu.Unlock()
	prev := debugCanonicalKeys
	debugCanonicalKeys = on
	return prev
}

func canonicalKeysDebug() bool {
	debugCanonicalKeysMu.Lock()
	defer debugCanonicalKeysMu.Unlock()
	return debugCanonicalKeys
}

// globalCache is the process-wide memo table shared by every Analyze call
// that does not set Options.DisableCache.
var globalCache = newSolveCache(defaultCacheCap)

func newSolveCache(cap int) *solveCache {
	return &solveCache{cap: cap, entries: map[memoKey]*cacheEntry{}}
}

// setCap adjusts the cache bound: n>0 sets it, n<0 removes it. An
// already-overfull table is trimmed on the next insert, not eagerly.
func (c *solveCache) setCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
}

// cacheKey computes the content-addressed key for a loop + spec set +
// engine by streaming the canonical bytes into a 128-bit hash. The hashed
// loop text covers the induction variable, the bounds, and the whole
// (possibly nested) body; specs contribute their names, which are
// canonical for the problem instances built by package problems; the
// engine is included so packed and reference results never alias (both
// engines produce identical values, but differential tests compare fresh
// solves); the declared dimension sizes of every multi-dimensional array
// the loop references are included because they determine linearized
// strides — two textually identical loops under different dim statements
// must not share a solve. Callers that hand-build a Spec reusing a canned
// name with different semantics must disable the cache.
func cacheKey(loop *ast.DoLoop, specs []*dataflow.Spec, dims map[string][]poly.Poly, engine dataflow.Engine) memoKey {
	h := ast.NewHasher()
	h.Stmt(loop)
	for _, s := range specs {
		h.WriteByte('\x00')
		h.WriteString(s.Name)
	}
	h.WriteByte('\x00')
	h.WriteString(string(engine))
	for _, sig := range dimSignatures(loop, dims) {
		h.WriteByte('\x00')
		h.WriteString(sig)
	}
	return memoKey{fp: h.Sum()}
}

// canonicalKeyString renders the pre-fingerprint string key — the exact
// byte stream cacheKey hashes — for the collision oracle and for
// differential tests.
func canonicalKeyString(loop *ast.DoLoop, specs []*dataflow.Spec, dims map[string][]poly.Poly, engine dataflow.Engine) string {
	var b strings.Builder
	b.Grow(256)
	b.WriteString(ast.StmtString(loop, 0))
	for _, s := range specs {
		b.WriteByte('\x00')
		b.WriteString(s.Name)
	}
	b.WriteByte('\x00')
	b.WriteString(string(engine))
	for _, sig := range dimSignatures(loop, dims) {
		b.WriteByte('\x00')
		b.WriteString(sig)
	}
	return b.String()
}

// dimSignatures renders "name=size1,size2" for each declared array the loop
// references with two or more subscripts, sorted by name. Only those
// declarations reach the linearizer (single-subscript references have
// stride 1 regardless of dims), so restricting the signature to them keeps
// memo sharing maximal while staying exact.
func dimSignatures(loop *ast.DoLoop, dims map[string][]poly.Poly) []string {
	if len(dims) == 0 {
		return nil
	}
	seen := map[string]bool{}
	ast.Inspect([]ast.Stmt{loop}, func(n ast.Node) bool {
		if ref, ok := n.(*ast.ArrayRef); ok && len(ref.Subs) > 1 && dims[ref.Name] != nil {
			seen[ref.Name] = true
		}
		return true
	})
	if len(seen) == 0 {
		return nil
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		parts := make([]string, len(dims[name]))
		for k, d := range dims[name] {
			parts[k] = d.String()
		}
		names[i] = name + "=" + strings.Join(parts, ",")
	}
	return names
}

// claim returns the entry for key, creating it when absent. The second
// result reports whether the entry already existed (a cache hit). Counting
// happens under the same lock as the lookup, so the tallies stay exact
// under concurrency. render supplies the canonical string key lazily; it
// is only invoked when the collision oracle is enabled.
func (c *solveCache) claim(key memoKey, render func() string) (*cacheEntry, bool) {
	oracle := canonicalKeysDebug()
	var canonical string
	if oracle {
		canonical = render()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if oracle {
		if c.oracle == nil {
			c.oracle = map[memoKey]string{}
		}
		if prev, ok := c.oracle[key]; ok {
			if prev != canonical {
				panic(fmt.Sprintf("driver: memo fingerprint collision: %x/%x keys %q and %q",
					key.fp.Hi, key.fp.Lo, prev, canonical))
			}
		} else {
			c.oracle[key] = canonical
		}
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		return e, true
	}
	if c.cap > 0 && len(c.entries) >= c.cap {
		c.evictOldestLocked()
	}
	e := &cacheEntry{}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.misses++
	return e, false
}

// evictOldestLocked drops the oldest half of the table (at least one
// entry). Callers hold c.mu. In-flight claimants of an evicted entry keep
// their pointer and still publish into it; only future lookups re-solve.
func (c *solveCache) evictOldestLocked() {
	drop := len(c.order) / 2
	if drop == 0 {
		drop = len(c.order)
	}
	for _, k := range c.order[:drop] {
		delete(c.entries, k)
		if c.oracle != nil {
			delete(c.oracle, k)
		}
	}
	kept := make([]memoKey, len(c.order)-drop)
	copy(kept, c.order[drop:])
	c.order = kept
}

// solveLoop analyzes one loop (graph construction, every spec's fixed
// point, reuse extraction), going through the memo cache unless disabled.
// sc is the calling worker's scratch free list; the singleflight cell runs
// the solve on the claiming worker's goroutine, so the scratch is never
// shared across solves in flight.
func solveLoop(loop *ast.DoLoop, specs []*dataflow.Spec, dims map[string][]poly.Poly, useCache bool, engine dataflow.Engine, sc *dataflow.Scratch) (*solved, bool, error) {
	if !useCache {
		sv, err := solveLoopFresh(loop, specs, dims, engine, sc)
		return sv, false, err
	}
	e, hit := globalCache.claim(cacheKey(loop, specs, dims, engine), func() string {
		return canonicalKeyString(loop, specs, dims, engine)
	})
	e.once.Do(func() { e.sv, e.err = solveLoopFresh(loop, specs, dims, engine, sc) })
	return e.sv, hit, e.err
}

func solveLoopFresh(loop *ast.DoLoop, specs []*dataflow.Spec, dims map[string][]poly.Poly, engine dataflow.Engine, sc *dataflow.Scratch) (*solved, error) {
	g, err := ir.Build(loop, &ir.Options{Dims: dims})
	if err != nil {
		return nil, err
	}
	sv := &solved{graph: g, results: make(map[string]*dataflow.Result, len(specs))}
	// One fused SolveAll per loop: every spec shares the graph's class
	// discovery, node orderings, and precedes bitsets through one solve
	// context instead of re-deriving them per problem instance.
	for i, res := range dataflow.SolveAll(g, specs, &dataflow.Options{Engine: engine, Scratch: sc}) {
		spec := specs[i]
		sv.results[spec.Name] = res
		if spec.Name == "must-reaching-defs" {
			sv.reuses = problems.FindReuses(res)
		}
	}
	// Force the lazily-built dominator relation before the value can be
	// shared, so later concurrent readers never mutate the graph.
	g.Precompute()
	return sv, nil
}

// CacheStats reports the global solve cache's current size and lifetime
// hit/miss tallies (process-wide, across Analyze calls).
func CacheStats() (entries, hits, misses int) {
	globalCache.mu.Lock()
	defer globalCache.mu.Unlock()
	return len(globalCache.entries), globalCache.hits, globalCache.misses
}

// ResetCache drops every memoized solve and zeroes the tallies. Tests and
// long-running hosts that analyze unbounded streams of distinct programs
// can call it to release memory at a known point.
func ResetCache() {
	globalCache.mu.Lock()
	defer globalCache.mu.Unlock()
	globalCache.entries = map[memoKey]*cacheEntry{}
	globalCache.order = nil
	globalCache.oracle = nil
	globalCache.hits, globalCache.misses = 0, 0
}
