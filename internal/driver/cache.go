package driver

import (
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/problems"
)

// solved is one fully-analyzed loop: the flow graph and the fixed points of
// every requested problem instance, plus the derived reuse facts. Once a
// cache entry is published its solved value is never mutated again — the
// graph has been Precompute()d and the solver never writes into a finished
// Result — so identical loop bodies can share one solved value across
// goroutines and across Analyze calls.
type solved struct {
	graph   *ir.Graph
	results map[string]*dataflow.Result
	reuses  []problems.Reuse
}

// cacheEntry is the singleflight cell for one cache key: the first
// goroutine to claim the key computes inside once; later claimants (the
// cache hits) block on once until the value is published. This makes the
// hit/miss counts deterministic — k distinct keys among n solves always
// yield exactly k misses — no matter how the scheduler interleaves workers.
type cacheEntry struct {
	once sync.Once
	sv   *solved
	err  error
}

// solveCache memoizes loop solves content-addressed by the canonical
// rendering of the loop (induction variable, bounds, and body — everything
// that determines the analysis) plus the spec-name signature.
type solveCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	hits    int
	misses  int
}

// defaultCacheCap bounds the process-global cache. When exceeded the whole
// map is dropped (the entries are content-addressed, so a refill is only a
// re-solve, never a correctness issue).
const defaultCacheCap = 4096

// globalCache is the process-wide memo table shared by every Analyze call
// that does not set Options.DisableCache.
var globalCache = newSolveCache(defaultCacheCap)

func newSolveCache(cap int) *solveCache {
	return &solveCache{cap: cap, entries: map[string]*cacheEntry{}}
}

// cacheKey renders the content-addressed key for a loop + spec set + engine.
// The rendered loop text covers the induction variable, the bounds, and the
// whole (possibly nested) body; specs contribute their names, which are
// canonical for the problem instances built by package problems; the engine
// is included so packed and reference results never alias (both engines
// produce identical values, but differential tests compare fresh solves).
// Callers that hand-build a Spec reusing a canned name with different
// semantics must disable the cache.
func cacheKey(loop *ast.DoLoop, specs []*dataflow.Spec, engine dataflow.Engine) string {
	var b strings.Builder
	b.WriteString(ast.StmtString(loop, 0))
	for _, s := range specs {
		b.WriteByte('\x00')
		b.WriteString(s.Name)
	}
	b.WriteByte('\x00')
	b.WriteString(string(engine))
	return b.String()
}

// claim returns the entry for key, creating it when absent. The second
// result reports whether the entry already existed (a cache hit). Counting
// happens under the same lock as the lookup, so the tallies stay exact
// under concurrency.
func (c *solveCache) claim(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		return e, true
	}
	if len(c.entries) >= c.cap {
		c.entries = map[string]*cacheEntry{}
	}
	e := &cacheEntry{}
	c.entries[key] = e
	c.misses++
	return e, false
}

// solveLoop analyzes one loop (graph construction, every spec's fixed
// point, reuse extraction), going through the memo cache unless disabled.
func solveLoop(loop *ast.DoLoop, specs []*dataflow.Spec, useCache bool, engine dataflow.Engine) (*solved, bool, error) {
	if !useCache {
		sv, err := solveLoopFresh(loop, specs, engine)
		return sv, false, err
	}
	e, hit := globalCache.claim(cacheKey(loop, specs, engine))
	e.once.Do(func() { e.sv, e.err = solveLoopFresh(loop, specs, engine) })
	return e.sv, hit, e.err
}

func solveLoopFresh(loop *ast.DoLoop, specs []*dataflow.Spec, engine dataflow.Engine) (*solved, error) {
	g, err := ir.Build(loop, nil)
	if err != nil {
		return nil, err
	}
	sv := &solved{graph: g, results: make(map[string]*dataflow.Result, len(specs))}
	// One fused SolveAll per loop: every spec shares the graph's class
	// discovery, node orderings, and precedes bitsets through one solve
	// context instead of re-deriving them per problem instance.
	for i, res := range dataflow.SolveAll(g, specs, &dataflow.Options{Engine: engine}) {
		spec := specs[i]
		sv.results[spec.Name] = res
		if spec.Name == "must-reaching-defs" {
			sv.reuses = problems.FindReuses(res)
		}
	}
	// Force the lazily-built dominator relation before the value can be
	// shared, so later concurrent readers never mutate the graph.
	g.Precompute()
	return sv, nil
}

// CacheStats reports the global solve cache's current size and lifetime
// hit/miss tallies (process-wide, across Analyze calls).
func CacheStats() (entries, hits, misses int) {
	globalCache.mu.Lock()
	defer globalCache.mu.Unlock()
	return len(globalCache.entries), globalCache.hits, globalCache.misses
}

// ResetCache drops every memoized solve and zeroes the tallies. Tests and
// long-running hosts that analyze unbounded streams of distinct programs
// can call it to release memory at a known point.
func ResetCache() {
	globalCache.mu.Lock()
	defer globalCache.mu.Unlock()
	globalCache.entries = map[string]*cacheEntry{}
	globalCache.hits, globalCache.misses = 0, 0
}
