package driver

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/poly"
	"repro/internal/problems"
	"repro/internal/rangefacts"
	"repro/internal/sema"
)

// solved is one fully-analyzed loop. The per-spec solver counters are
// always available (meta, in spec order); the bulky artifacts — the flow
// graph, the fixed points of every requested problem instance, and the
// derived reuse facts — live in parts, which a solve computed in-process
// fills eagerly and a disk-loaded solve materializes lazily on first
// access: whole-program analysis over a warm disk cache reads only meta,
// and the graph rebuild + row decode happen the first time a consumer
// actually looks at a loop's facts.
//
// Once a cache entry is published its solved value is never mutated again
// beyond the one-shot materialization — the graph is Precompute()d before
// parts is published and the solver never writes into a finished Result —
// so identical loop bodies can share one solved value across goroutines
// and across Analyze calls. materialize's sync.Once provides the
// happens-before edge for lazy values.
type solved struct {
	// meta holds one entry per spec, in the solve's spec order.
	meta []specMeta

	once sync.Once
	// fill is set on lazily-loaded values; it must not fail (the disk
	// layer falls back to a fresh solve on damaged payloads). nil when
	// parts was filled eagerly.
	fill  func() *solvedParts
	parts *solvedParts
}

// specMeta pairs a spec name with its persisted (or live) solver counters.
type specMeta struct {
	name string
	meta dataflow.ResultMeta
}

// solvedParts are the graph-entangled artifacts of a solved loop.
type solvedParts struct {
	graph   *ir.Graph
	results map[string]*dataflow.Result
	reuses  []problems.Reuse
}

// materialize returns the solved value's parts, running the deferred
// restore exactly once for lazily-loaded values.
func (sv *solved) materialize() *solvedParts {
	sv.once.Do(func() {
		if sv.parts == nil && sv.fill != nil {
			sv.parts = sv.fill()
			sv.fill = nil
		}
	})
	return sv.parts
}

// newSolvedEager wraps freshly-computed parts, deriving the per-spec
// counters from the live results. Deliberately not PersistMeta: that would
// materialize each result's deferred init snapshot on every fresh solve;
// HasInit is only meaningful on the encode side, which re-derives it.
func newSolvedEager(parts *solvedParts, specs []*dataflow.Spec) *solved {
	sv := &solved{parts: parts, meta: make([]specMeta, 0, len(specs))}
	for _, spec := range specs {
		res := parts.results[spec.Name]
		if res == nil {
			continue
		}
		m := res.Metrics()
		sv.meta = append(sv.meta, specMeta{name: spec.Name, meta: dataflow.ResultMeta{
			Nodes: m.Nodes, Classes: m.Classes,
			Passes: m.Passes, ChangedPasses: m.ChangedPasses,
			NodeVisits: m.NodeVisits, FlowApps: m.FlowApps,
			Elapsed: m.Elapsed, FuelBudget: res.FuelBudget,
			FuelExhausted: m.FuelExhausted,
		}})
	}
	return sv
}

// cacheEntry is the singleflight cell for one cache key: the first
// goroutine to claim the key computes inside once; later claimants (the
// cache hits) block on once until the value is published. This makes the
// hit/miss counts deterministic — k distinct keys among n solves always
// yield exactly k misses — no matter how the scheduler interleaves workers.
type cacheEntry struct {
	once sync.Once
	sv   *solved
	err  error
	// diskHit and loadBytes record how the claiming goroutine filled the
	// entry (written inside once, read by the claimer after once returns;
	// the Once's happens-before edge covers later claimants too).
	diskHit   bool
	loadBytes int64
}

// memoKey is the content address of one solve: a 128-bit structural
// fingerprint of the canonical loop rendering, the spec-name signature, and
// the engine, all folded into one hash. It replaces the full canonical
// rendering the cache used to key on — the fingerprint is computed by
// streaming the same bytes the renderer would produce into an FNV-1a 128
// state, so two solves share a key exactly when their old string keys were
// equal (modulo 2^-128 collisions; see debugCanonicalKeys).
type memoKey struct {
	fp ast.FP128
}

// solveCache memoizes loop solves content-addressed by memoKey.
type solveCache struct {
	mu      sync.Mutex
	cap     int // <0 = unlimited
	entries map[memoKey]*cacheEntry
	// order records keys oldest-first so eviction can drop the oldest
	// segment instead of the whole table.
	order  []memoKey
	hits   int
	misses int
	// oracle maps each live key back to its full canonical rendering when
	// debugCanonicalKeys is on; a key colliding across different renderings
	// is a fingerprint collision and panics.
	oracle map[memoKey]string
}

// defaultCacheCap bounds the process-global cache when Options.CacheCap is
// zero. When the table is full the oldest half of the entries is evicted
// (the entries are content-addressed, so a refill is only a re-solve, never
// a correctness issue) — recently-used keys survive, unlike the old
// whole-map drop.
const defaultCacheCap = 4096

// debugCanonicalKeys, when enabled, keeps the old full-rendering key
// alongside each fingerprint and verifies on every lookup that equal
// fingerprints imply equal renderings. It exists as a collision oracle for
// tests; it restores the allocation cost the fingerprint removed.
var (
	debugCanonicalKeysMu sync.Mutex
	debugCanonicalKeys   bool
)

// SetDebugCanonicalKeys toggles the collision oracle: when on, the memo
// cache re-renders every loop to its canonical string and panics if two
// different renderings ever hash to the same fingerprint. Intended for
// tests and differential debugging; returns the previous setting.
func SetDebugCanonicalKeys(on bool) bool {
	debugCanonicalKeysMu.Lock()
	defer debugCanonicalKeysMu.Unlock()
	prev := debugCanonicalKeys
	debugCanonicalKeys = on
	return prev
}

func canonicalKeysDebug() bool {
	debugCanonicalKeysMu.Lock()
	defer debugCanonicalKeysMu.Unlock()
	return debugCanonicalKeys
}

// cacheShards is the number of independently-locked segments of the
// process-global memo table. Keys route by fingerprint, so the shard choice
// is a pure function of the content address; under concurrent load (many
// driver workers, or many requests in a long-lived service) contention on
// any one lock drops by roughly the shard count. The shard count is a
// power of two so routing is a mask, not a division.
const cacheShards = 8

// shardedCache fans the memo table out across cacheShards independent
// solveCache segments, each with its own lock and its own half-eviction
// order. The total capacity is split evenly across shards, so the global
// bound set by Options.CacheCap still holds; caps too small to split
// meaningfully degrade to a single shard so the bound stays exact.
type shardedCache struct {
	shards [cacheShards]*solveCache
	// single, when set, routes every key to shard 0 — the small-cap
	// degenerate mode where splitting the bound across shards would let
	// the table overshoot the requested total.
	single atomic.Bool
}

func newShardedCache(totalCap int) *shardedCache {
	c := &shardedCache{}
	for i := range c.shards {
		c.shards[i] = newSolveCache(-1)
	}
	c.setCap(totalCap)
	return c
}

// shardFor routes a key to its segment. The low fingerprint bits are
// already uniformly distributed (FNV-1a), so a mask suffices.
func (c *shardedCache) shardFor(key memoKey) *solveCache {
	if c.single.Load() {
		return c.shards[0]
	}
	return c.shards[(key.fp.Hi^key.fp.Lo)&(cacheShards-1)]
}

// setCap splits a total bound across the shards: n<0 removes the bound
// everywhere; a small positive n (under two entries per shard) routes
// everything to shard 0 with the exact bound; otherwise each shard gets an
// equal floor share so the sum never exceeds n. Switching modes leaves
// resident entries where they are — content addressing makes a key that
// became unreachable in its old shard a plain re-solve, never a
// correctness issue.
func (c *shardedCache) setCap(n int) {
	switch {
	case n < 0:
		c.single.Store(false)
		for _, s := range c.shards {
			s.setCap(-1)
		}
	case n < 2*cacheShards:
		c.single.Store(true)
		c.shards[0].setCap(n)
	default:
		c.single.Store(false)
		per := n / cacheShards
		for _, s := range c.shards {
			s.setCap(per)
		}
	}
}

// claim delegates to the key's shard; only that shard's lock is taken.
func (c *shardedCache) claim(key memoKey, render func() string) (*cacheEntry, bool) {
	return c.shardFor(key).claim(key, render)
}

// stats sums entries and lifetime hit/miss tallies across shards. The
// totals are a consistent snapshot per shard, not across shards; for the
// deterministic counts the tests pin, per-shard sums are exact because
// every claim increments exactly one shard under its lock.
func (c *shardedCache) stats() (entries, hits, misses int) {
	for _, s := range c.shards {
		s.mu.Lock()
		entries += len(s.entries)
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return entries, hits, misses
}

// reset drops every shard's entries and zeroes the tallies.
func (c *shardedCache) reset() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.entries = map[memoKey]*cacheEntry{}
		s.order = nil
		s.oracle = nil
		s.hits, s.misses = 0, 0
		s.mu.Unlock()
	}
}

// globalCache is the process-wide memo table shared by every Analyze call
// that does not set Options.DisableCache.
var globalCache = newShardedCache(defaultCacheCap)

func newSolveCache(cap int) *solveCache {
	return &solveCache{cap: cap, entries: map[memoKey]*cacheEntry{}}
}

// setCap adjusts the cache bound: n>0 sets it, n<0 removes it. An
// already-overfull table is trimmed on the next insert, not eagerly.
func (c *solveCache) setCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
}

// cacheKey computes the content-addressed key for a loop + spec set +
// engine by streaming the canonical bytes into a 128-bit hash. The hashed
// loop text covers the induction variable, the bounds, and the whole
// (possibly nested) body; specs contribute their names, which are
// canonical for the problem instances built by package problems; the
// engine is included so packed and reference results never alias (both
// engines produce identical values, but differential tests compare fresh
// solves); the declared dimension sizes of every multi-dimensional array
// the loop references are included because they determine linearized
// strides — two textually identical loops under different dim statements
// must not share a solve. The range-fact signature is folded in when
// non-empty because facts change preserve constants — a loop solved under
// a guard must never answer for the same text outside it; the empty
// signature adds no bytes, so fact-free solves keep their pre-rangefacts
// fingerprints (and their existing disk-cache entries). Callers that
// hand-build a Spec reusing a canned name with different semantics must
// disable the cache.
func cacheKey(loop *ast.DoLoop, specs []*dataflow.Spec, dims map[string][]poly.Poly, engine dataflow.Engine, fuel int64, factsSig string) memoKey {
	h := ast.NewHasher()
	h.Stmt(loop)
	for _, s := range specs {
		h.WriteByte('\x00')
		h.WriteString(s.Name)
	}
	h.WriteByte('\x00')
	h.WriteString(string(engine))
	// The fuel budget changes what a solve may claim (an exhausted solve
	// degrades to the claim-nothing value), so budgets never share entries.
	h.WriteByte('\x00')
	h.WriteString(fuelSignature(fuel))
	if factsSig != "" {
		// The '!' prefix keeps the component disjoint from dim signatures,
		// which always start with an identifier.
		h.WriteByte('\x00')
		h.WriteString("!facts=" + factsSig)
	}
	for _, sig := range dimSignatures(loop, dims) {
		h.WriteByte('\x00')
		h.WriteString(sig)
	}
	return memoKey{fp: h.Sum()}
}

// fuelSignature renders the fuel budget's cache-key component. Zero (the
// derived never-binding default) and explicit budgets hash differently, and
// the rendering is shared by cacheKey and canonicalKeyString so the
// collision oracle stays exact.
func fuelSignature(fuel int64) string {
	if fuel <= 0 {
		return "fuel=default"
	}
	return "fuel=" + strconv.FormatInt(fuel, 10)
}

// canonicalKeyString renders the pre-fingerprint string key — the exact
// byte stream cacheKey hashes — for the collision oracle and for
// differential tests.
func canonicalKeyString(loop *ast.DoLoop, specs []*dataflow.Spec, dims map[string][]poly.Poly, engine dataflow.Engine, fuel int64, factsSig string) string {
	var b strings.Builder
	b.Grow(256)
	b.WriteString(ast.StmtString(loop, 0))
	for _, s := range specs {
		b.WriteByte('\x00')
		b.WriteString(s.Name)
	}
	b.WriteByte('\x00')
	b.WriteString(string(engine))
	b.WriteByte('\x00')
	b.WriteString(fuelSignature(fuel))
	if factsSig != "" {
		b.WriteByte('\x00')
		b.WriteString("!facts=" + factsSig)
	}
	for _, sig := range dimSignatures(loop, dims) {
		b.WriteByte('\x00')
		b.WriteString(sig)
	}
	return b.String()
}

// dimSignatures renders "name=size1,size2" for each declared array the loop
// references with two or more subscripts, sorted by name. Only those
// declarations reach the linearizer (single-subscript references have
// stride 1 regardless of dims), so restricting the signature to them keeps
// memo sharing maximal while staying exact.
func dimSignatures(loop *ast.DoLoop, dims map[string][]poly.Poly) []string {
	if len(dims) == 0 {
		return nil
	}
	seen := map[string]bool{}
	ast.Inspect([]ast.Stmt{loop}, func(n ast.Node) bool {
		if ref, ok := n.(*ast.ArrayRef); ok && len(ref.Subs) > 1 && dims[ref.Name] != nil {
			seen[ref.Name] = true
		}
		return true
	})
	if len(seen) == 0 {
		return nil
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		parts := make([]string, len(dims[name]))
		for k, d := range dims[name] {
			parts[k] = d.String()
		}
		names[i] = name + "=" + strings.Join(parts, ",")
	}
	return names
}

// claim returns the entry for key, creating it when absent. The second
// result reports whether the entry already existed (a cache hit). Counting
// happens under the same lock as the lookup, so the tallies stay exact
// under concurrency. render supplies the canonical string key lazily; it
// is only invoked when the collision oracle is enabled.
func (c *solveCache) claim(key memoKey, render func() string) (*cacheEntry, bool) {
	oracle := canonicalKeysDebug()
	var canonical string
	if oracle {
		canonical = render()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if oracle {
		if c.oracle == nil {
			c.oracle = map[memoKey]string{}
		}
		if prev, ok := c.oracle[key]; ok {
			if prev != canonical {
				panic(fmt.Sprintf("driver: memo fingerprint collision: %x/%x keys %q and %q",
					key.fp.Hi, key.fp.Lo, prev, canonical))
			}
		} else {
			c.oracle[key] = canonical
		}
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		return e, true
	}
	if c.cap > 0 && len(c.entries) >= c.cap {
		c.evictOldestLocked()
	}
	e := &cacheEntry{}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.misses++
	return e, false
}

// evictOldestLocked drops the oldest half of the table (at least one
// entry). Callers hold c.mu. In-flight claimants of an evicted entry keep
// their pointer and still publish into it; only future lookups re-solve.
func (c *solveCache) evictOldestLocked() {
	drop := len(c.order) / 2
	if drop == 0 {
		drop = len(c.order)
	}
	for _, k := range c.order[:drop] {
		delete(c.entries, k)
		if c.oracle != nil {
			delete(c.oracle, k)
		}
	}
	kept := make([]memoKey, len(c.order)-drop)
	copy(kept, c.order[drop:])
	c.order = kept
}

// solveEnv bundles the per-Analyze solve configuration threaded from
// analyze() down to every solveLoop call: the spec set, dim declarations,
// engine, fuel, cache switches, and (when Options.CacheDir is set) the
// persistent cache handles.
type solveEnv struct {
	specs    []*dataflow.Spec
	dims     map[string][]poly.Poly
	useCache bool
	engine   dataflow.Engine
	fuel     int64
	// prog/info/assume feed per-loop range-fact derivation (rangefacts);
	// prog nil skips derivation entirely.
	prog   *ast.Program
	info   *sema.Info
	assume []rangefacts.Fact
	// cacheRoot is Options.CacheDir (empty = no persistent cache); disk is
	// the handle for this env's spec set, nil when disabled or unusable.
	cacheRoot string
	disk      *diskCache
}

// withSpecs derives an env for a different spec set (the §3.6 WRT
// re-analyses), rebinding the persistent cache to that set's schema.
func (env *solveEnv) withSpecs(specs []*dataflow.Spec) *solveEnv {
	derived := *env
	derived.specs = specs
	derived.disk = nil
	if env.cacheRoot != "" && env.useCache {
		derived.disk = openDiskCacheFor(env.cacheRoot, specs, env.engine)
	}
	return &derived
}

// solveOutcome reports how one solveLoop call was served.
type solveOutcome struct {
	// hit is an in-memory memo hit (the entry existed before this call).
	hit bool
	// diskHit means this call claimed the entry and filled it from the
	// persistent cache instead of solving; loadBytes is the entry size read.
	diskHit   bool
	loadBytes int64
	// storeBytes is the entry size written behind a fresh solve (0 when the
	// persistent cache is off, the value came from memory or disk, or the
	// write failed).
	storeBytes int64
}

// solveLoop analyzes one loop (graph construction, every spec's fixed
// point, reuse extraction), going through the memo cache unless disabled.
// With a persistent cache configured, a memory miss tries the disk before
// solving, and a fresh solve is written back after the entry is published —
// later claimants proceed on the in-memory value while the claiming worker
// completes the store. sc is the calling worker's scratch free list; the
// singleflight cell runs the solve on the claiming worker's goroutine, so
// the scratch is never shared across solves in flight.
func solveLoop(loop *ast.DoLoop, facts *rangefacts.Facts, env *solveEnv, sc *dataflow.Scratch) (*solved, solveOutcome, error) {
	oracle := factsOracle(facts)
	if !env.useCache {
		sv, err := solveLoopFresh(loop, env.specs, env.dims, env.engine, env.fuel, oracle, sc)
		return sv, solveOutcome{}, err
	}
	sig := ""
	if oracle != nil {
		sig = oracle.Signature()
	}
	key := cacheKey(loop, env.specs, env.dims, env.engine, env.fuel, sig)
	e, hit := globalCache.claim(key, func() string {
		return canonicalKeyString(loop, env.specs, env.dims, env.engine, env.fuel, sig)
	})
	claimed := false
	e.once.Do(func() {
		claimed = true
		if env.disk != nil {
			if sv, n, ok := env.disk.load(key, loop, oracle, env); ok {
				e.sv, e.diskHit, e.loadBytes = sv, true, n
				return
			}
		}
		e.sv, e.err = solveLoopFresh(loop, env.specs, env.dims, env.engine, env.fuel, oracle, sc)
	})
	out := solveOutcome{hit: hit}
	if claimed {
		out.diskHit, out.loadBytes = e.diskHit, e.loadBytes
		if env.disk != nil && !e.diskHit && e.err == nil {
			out.storeBytes = env.disk.store(key, env.specs, e.sv)
		}
	}
	return e.sv, out, e.err
}

// factsOracle adapts a fact environment to the solver's oracle interface.
// Empty and fuel-exhausted environments (which answer every query with
// "unknown" anyway) pass nil, so fact-free solves stay byte-identical to —
// and share memo/disk entries with — the pre-rangefacts pipeline.
func factsOracle(f *rangefacts.Facts) dataflow.RangeOracle {
	if f.Empty() || f.Exhausted() {
		return nil
	}
	return f
}

func solveLoopFresh(loop *ast.DoLoop, specs []*dataflow.Spec, dims map[string][]poly.Poly, engine dataflow.Engine, fuel int64, oracle dataflow.RangeOracle, sc *dataflow.Scratch) (*solved, error) {
	parts, err := solvePartsFresh(loop, specs, dims, engine, fuel, oracle, sc)
	if err != nil {
		return nil, err
	}
	return newSolvedEager(parts, specs), nil
}

// solvePartsFresh runs one loop's full solve: graph construction, every
// spec's fixed point, reuse extraction. Shared by the fresh-solve path and
// the lazy loader's damaged-payload fallback.
func solvePartsFresh(loop *ast.DoLoop, specs []*dataflow.Spec, dims map[string][]poly.Poly, engine dataflow.Engine, fuel int64, oracle dataflow.RangeOracle, sc *dataflow.Scratch) (*solvedParts, error) {
	g, err := ir.Build(loop, &ir.Options{Dims: dims})
	if err != nil {
		return nil, err
	}
	parts := &solvedParts{graph: g, results: make(map[string]*dataflow.Result, len(specs))}
	// One fused SolveAll per loop: every spec shares the graph's class
	// discovery, node orderings, and precedes bitsets through one solve
	// context instead of re-deriving them per problem instance.
	for i, res := range dataflow.SolveAll(g, specs, &dataflow.Options{Engine: engine, Scratch: sc, Fuel: fuel, Facts: oracle}) {
		spec := specs[i]
		parts.results[spec.Name] = res
		if spec.Name == "must-reaching-defs" {
			parts.reuses = problems.FindReuses(res)
		}
	}
	// Force the lazily-built dominator relation before the value can be
	// shared, so later concurrent readers never mutate the graph.
	g.Precompute()
	return parts, nil
}

// SetCacheCap adjusts the process-global memo bound directly: n>0 sets the
// total cap (split across shards), n<0 removes it, n==0 keeps the current
// bound. Equivalent to passing Options.CacheCap on the next Analyze call;
// long-lived hosts (the HTTP service) call it once at startup.
func SetCacheCap(n int) {
	if n != 0 {
		globalCache.setCap(n)
	}
}

// CacheStats reports the global solve cache's current size and lifetime
// hit/miss tallies (process-wide, across Analyze calls), summed over every
// shard.
func CacheStats() (entries, hits, misses int) {
	return globalCache.stats()
}

// CacheShardStat is one shard's slice of the process-global memo table, as
// reported by CacheShardStats.
type CacheShardStat struct {
	// Entries is the shard's resident entry count; Hits and Misses are its
	// lifetime lookup tallies.
	Entries, Hits, Misses int
}

// CacheShardStats reports the per-shard breakdown of the global solve
// cache — one record per shard, in shard order. The sum over shards equals
// CacheStats; a heavily skewed distribution means fingerprints are
// colliding on the routing bits (never observed; keys are FNV-1a uniform).
func CacheShardStats() []CacheShardStat {
	out := make([]CacheShardStat, cacheShards)
	for i, s := range globalCache.shards {
		s.mu.Lock()
		out[i] = CacheShardStat{Entries: len(s.entries), Hits: s.hits, Misses: s.misses}
		s.mu.Unlock()
	}
	return out
}

// ResetCache drops every memoized solve and zeroes the tallies. Tests and
// long-running hosts that analyze unbounded streams of distinct programs
// can call it to release memory at a known point.
func ResetCache() {
	globalCache.reset()
}
