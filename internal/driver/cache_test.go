package driver

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/parser"
	"repro/internal/poly"
	"repro/internal/problems"
	"repro/internal/sema"
	"repro/internal/synth"
)

// fpKey builds a distinct memo key for testing eviction mechanics.
func fpKey(i int) memoKey {
	return memoKey{fp: ast.FP128{Hi: uint64(i), Lo: ^uint64(i)}}
}

// TestEvictionDropsOldestHalf exercises the segmented eviction directly:
// filling a cap-4 table and inserting a fifth key must evict exactly the two
// oldest entries, so re-claiming the two newest (plus the fresh insert) hits
// while the two oldest miss. Claim order is serial here, so the hit/miss
// tallies are fully deterministic.
func TestEvictionDropsOldestHalf(t *testing.T) {
	c := newSolveCache(4)
	noRender := func() string { return "" }
	for i := 0; i < 4; i++ {
		if _, hit := c.claim(fpKey(i), noRender); hit {
			t.Fatalf("key %d: unexpected hit on first claim", i)
		}
	}
	if len(c.entries) != 4 || len(c.order) != 4 {
		t.Fatalf("table size %d/%d, want 4/4", len(c.entries), len(c.order))
	}
	// Fifth insert: keys 0 and 1 evicted, 2 and 3 survive.
	if _, hit := c.claim(fpKey(4), noRender); hit {
		t.Fatal("key 4: unexpected hit")
	}
	if len(c.entries) != 3 {
		t.Fatalf("after eviction: %d entries, want 3", len(c.entries))
	}
	for _, i := range []int{2, 3, 4} {
		if _, hit := c.claim(fpKey(i), noRender); !hit {
			t.Errorf("key %d should have survived eviction", i)
		}
	}
	for _, i := range []int{0, 1} {
		if _, hit := c.claim(fpKey(i), noRender); hit {
			t.Errorf("key %d should have been evicted", i)
		}
	}
	if c.hits != 3 || c.misses != 7 {
		t.Errorf("tallies hits=%d misses=%d, want 3/7", c.hits, c.misses)
	}
}

// TestEvictionDeterministicHitMiss pins the hit/miss tallies across
// evictions end to end: the same serial Analyze sequence against a small
// CacheCap must produce identical tallies (and identical reports) on every
// repetition.
func TestEvictionDeterministicHitMiss(t *testing.T) {
	progs := make([]*ast.Program, 3)
	for i := range progs {
		progs[i] = synth.MultiLoopProgram(synth.MultiParams{
			Seed: int64(40 + i), Loops: 10, StmtsPer: 5, DistinctBodies: 10})
	}
	type tally struct {
		hits, misses int
		report       string
	}
	run := func() []tally {
		ResetCache()
		out := make([]tally, 0, len(progs))
		for _, p := range progs {
			pa, err := Analyze(p, &Options{Parallelism: 1, CacheCap: 8})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tally{pa.Metrics.CacheHits, pa.Metrics.CacheMisses, pa.Report()})
		}
		return out
	}
	first := run()
	for rep := 0; rep < 3; rep++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("rep %d prog %d: tallies/report diverged across evictions:\n got %d/%d\nwant %d/%d",
					rep, i, again[i].hits, again[i].misses, first[i].hits, first[i].misses)
			}
		}
	}
	if entries, _, _ := CacheStats(); entries > 8 {
		t.Errorf("cache grew past CacheCap: %d entries", entries)
	}
	// Negative cap removes the bound.
	ResetCache()
	if _, err := Analyze(progs[0], &Options{Parallelism: 1, CacheCap: -1}); err != nil {
		t.Fatal(err)
	}
	if entries, _, _ := CacheStats(); entries == 0 {
		t.Error("unbounded cache retained nothing")
	}
	globalCache.setCap(defaultCacheCap)
}

// loopsOf collects every DoLoop of a checked program, nested included.
func loopsOf(prog *ast.Program) []*ast.DoLoop {
	var loops []*ast.DoLoop
	ast.Inspect(prog.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.DoLoop); ok {
			loops = append(loops, l)
		}
		return true
	})
	return loops
}

// corpusPrograms parses every example program plus a synth fuzz sweep.
func corpusPrograms(t *testing.T) []*ast.Program {
	t.Helper()
	var progs []*ast.Program
	files, _ := filepath.Glob(filepath.Join("..", "..", "examples", "*.loop"))
	if len(files) == 0 {
		t.Fatal("no example programs found")
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.ParseBytes(src, nil)
		if err != nil {
			continue // some examples are intentionally invalid
		}
		if _, err := sema.Check(prog); err != nil {
			continue
		}
		progs = append(progs, prog)
	}
	for seed := int64(1); seed <= 24; seed++ {
		progs = append(progs, synth.MultiLoopProgram(synth.MultiParams{
			Seed: seed, Loops: 8, StmtsPer: 6,
			NestEvery: int(seed%4) + 1, DistinctBodies: int(seed%5) + 1}))
	}
	return progs
}

// TestFingerprintPartitionMatchesCanonical is the differential check the
// fingerprint key rests on: over every example program and a synth fuzz
// sweep, two (loop, specs, engine) triples get the same fingerprint key
// exactly when they get the same canonical string key. A fingerprint
// collision (same hash, different rendering) or a split (same rendering,
// different hash — impossible by construction, but checked anyway) fails.
func TestFingerprintPartitionMatchesCanonical(t *testing.T) {
	specsets := [][]*dataflow.Spec{
		{problems.MustReachingDefs()},
		{problems.MustReachingDefs(), problems.BusyStores()},
	}
	engines := []dataflow.Engine{dataflow.EngineReference, dataflow.EnginePacked}
	// Declared-dims variants: none, and a map covering the corpus's usual
	// array names (dims only reach the key for loops that reference one of
	// these with two or more subscripts, so for most loops both variants
	// must produce the same key).
	dimsets := []map[string][]poly.Poly{
		nil,
		{"X": {poly.Const(8), poly.Const(8)}, "Y": {poly.Const(4), poly.Const(16)}},
	}
	fuels := []int64{0, 1, 1 << 20}
	factsSigs := []string{"", "n - 1 >= 0 (loop bound)", "k - 1 >= 1 (guard);n - k >= 0 (guard)"}
	byFP := map[memoKey]string{}
	byStr := map[string]memoKey{}
	n := 0
	for _, prog := range corpusPrograms(t) {
		for _, loop := range loopsOf(prog) {
			for _, specs := range specsets {
				for _, eng := range engines {
					for _, dims := range dimsets {
						fuel := fuels[n%len(fuels)]
						factsSig := factsSigs[n%len(factsSigs)]
						n++
						fp := cacheKey(loop, specs, dims, eng, fuel, factsSig)
						str := canonicalKeyString(loop, specs, dims, eng, fuel, factsSig)
						if prev, ok := byFP[fp]; ok && prev != str {
							t.Fatalf("fingerprint collision: %x/%x for %q and %q",
								fp.fp.Hi, fp.fp.Lo, prev, str)
						}
						if prev, ok := byStr[str]; ok && prev != fp {
							t.Fatalf("fingerprint split: same rendering %q hashed twice differently", str)
						}
						byFP[fp] = str
						byStr[str] = fp
					}
				}
			}
		}
	}
	if n < 100 {
		t.Fatalf("differential corpus too small: %d keys", n)
	}
	if len(byFP) != len(byStr) {
		t.Fatalf("partition mismatch: %d fingerprint classes vs %d string classes", len(byFP), len(byStr))
	}
}

// TestCollisionOracleEndToEnd runs the driver with the debug collision
// oracle enabled over the corpus: every memo lookup re-renders the loop and
// panics if equal fingerprints ever disagree on the rendering. Also checks
// tallies and reports are unchanged by the oracle.
func TestCollisionOracleEndToEnd(t *testing.T) {
	progs := corpusPrograms(t)
	type outcome struct {
		hits, misses int
		report       string
	}
	run := func() []outcome {
		ResetCache()
		var out []outcome
		for _, p := range progs {
			pa, err := Analyze(p, &Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, outcome{pa.Metrics.CacheHits, pa.Metrics.CacheMisses, pa.Report()})
		}
		return out
	}
	plain := run()
	prev := SetDebugCanonicalKeys(true)
	defer SetDebugCanonicalKeys(prev)
	oracle := run()
	for i := range plain {
		if plain[i] != oracle[i] {
			t.Fatalf("prog %d: oracle changed behavior: %+v vs %+v",
				i, plain[i], oracle[i])
		}
	}
	ResetCache()
}

// TestOraclePanicsOnForcedCollision verifies the oracle actually fires: two
// different renderings planted under one key must panic the next claim.
func TestOraclePanicsOnForcedCollision(t *testing.T) {
	prev := SetDebugCanonicalKeys(true)
	defer SetDebugCanonicalKeys(prev)
	c := newSolveCache(16)
	k := fpKey(1)
	c.claim(k, func() string { return "rendering A" })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on fingerprint collision")
		}
	}()
	c.claim(k, func() string { return "rendering B" })
}
