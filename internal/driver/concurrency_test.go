package driver

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/problems"
	"repro/internal/synth"
)

// manyLoops is the shared workload: ≥16 sibling loops at mixed depths
// (every third top-level loop is a tight two-level nest).
func manyLoops() *synth.MultiParams {
	return &synth.MultiParams{Seed: 7, Loops: 18, StmtsPer: 8, NestEvery: 3}
}

// TestParallelDeterminism runs the driver 50× across every scheduling mode
// (serial, bounded, GOMAXPROCS workers; cache on and off) and asserts the
// rendered result is byte-identical each time. This is the contract the
// wave schedule and the deterministic merge exist to keep.
func TestParallelDeterminism(t *testing.T) {
	prog := synth.MultiLoopProgram(*manyLoops())
	specs := []*dataflow.Spec{problems.MustReachingDefs(), problems.BusyStores()}
	var want string
	for run := 0; run < 50; run++ {
		opts := &Options{
			Specs:        specs,
			NestVectors:  true,
			Parallelism:  []int{1, 2, 3, 4, 0}[run%5],
			DisableCache: run%2 == 0,
		}
		pa, err := Analyze(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := pa.Report()
		if run == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d (parallelism %d, cache disabled %v) diverged:\n got: %q\nwant: %q",
				run, opts.Parallelism, opts.DisableCache, got, want)
		}
	}
}

// TestCacheHitsOnRepeatedBodies checks the content-addressed memoization:
// 16 sibling loops drawn from 4 distinct bodies must yield exactly 4 misses
// and 12 hits (the singleflight cells make the split deterministic even
// under the parallel schedule), and a second identical Analyze must hit on
// every loop.
func TestCacheHitsOnRepeatedBodies(t *testing.T) {
	ResetCache()
	prog := synth.MultiLoopProgram(synth.MultiParams{Seed: 3, Loops: 16, StmtsPer: 6, DistinctBodies: 4})
	pa, err := Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := pa.Metrics
	if m.CacheMisses != 4 || m.CacheHits != 12 {
		t.Fatalf("first run: hits=%d misses=%d, want 12/4", m.CacheHits, m.CacheMisses)
	}
	pa2, err := Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pa2.Metrics.CacheHits != 16 || pa2.Metrics.CacheMisses != 0 {
		t.Fatalf("second run: hits=%d misses=%d, want 16/0",
			pa2.Metrics.CacheHits, pa2.Metrics.CacheMisses)
	}
	if pa2.Report() != pa.Report() {
		t.Fatal("memoized rerun diverged from first run")
	}

	// The escape hatch: identical results, no cache traffic.
	pa3, err := Analyze(prog, &Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if pa3.Metrics.CacheHits != 0 || pa3.Metrics.CacheMisses != 0 {
		t.Fatalf("disabled cache still counted: %d/%d",
			pa3.Metrics.CacheHits, pa3.Metrics.CacheMisses)
	}
	if pa3.Report() != pa.Report() {
		t.Fatal("uncached run diverged from cached run")
	}
}

// TestMetricsPopulated checks the instrumentation surface: per-loop rows in
// analysis order, the paper's pass bound, and a renderable report.
func TestMetricsPopulated(t *testing.T) {
	ResetCache()
	prog := synth.MultiLoopProgram(*manyLoops())
	pa, err := Analyze(prog, &Options{NestVectors: true})
	if err != nil {
		t.Fatal(err)
	}
	m := pa.Metrics
	if m == nil {
		t.Fatal("metrics missing")
	}
	if m.Loops != len(pa.Loops) || len(m.PerLoop) != len(pa.Loops) {
		t.Fatalf("loops=%d perloop=%d, want %d", m.Loops, len(m.PerLoop), len(pa.Loops))
	}
	if m.Solves < m.Loops {
		t.Fatalf("solves=%d < loops=%d", m.Solves, m.Loops)
	}
	if m.MaxChangedPasses > 2 {
		t.Fatalf("max changing passes %d violates the paper bound", m.MaxChangedPasses)
	}
	if m.NodeVisits <= 0 || m.FlowApps <= 0 {
		t.Fatalf("work counters empty: visits=%d flowapps=%d", m.NodeVisits, m.FlowApps)
	}
	for i, lm := range m.PerLoop {
		if lm.Var != pa.Loops[i].Loop.Var || lm.Depth != pa.Loops[i].Depth {
			t.Fatalf("per-loop row %d (%s/%d) out of order vs %s/%d",
				i, lm.Var, lm.Depth, pa.Loops[i].Loop.Var, pa.Loops[i].Depth)
		}
	}
	rep := m.Report()
	for _, want := range []string{"solver metrics", "max changing passes", "flowapps"} {
		if !strings.Contains(rep, want) {
			t.Errorf("metrics report missing %q:\n%s", want, rep)
		}
	}
}

// TestWRTSolvesCached checks that the §3.6 re-analyses participate in the
// memo cache: a program whose tight nests repeat bodies re-solves each
// synthetic with-respect-to loop once.
func TestWRTSolvesCached(t *testing.T) {
	ResetCache()
	prog := synth.MultiLoopProgram(synth.MultiParams{
		Seed: 11, Loops: 6, StmtsPer: 4, NestEvery: 1, DistinctBodies: 2})
	pa, err := Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := pa.Metrics
	wrt := 0
	for _, lm := range m.PerLoop {
		wrt += lm.WRTSolves
	}
	if wrt == 0 {
		t.Fatal("expected §3.6 re-analyses on tight nests")
	}
	// 6 nests from 2 distinct bodies: 2 misses for the inner loops, 2 for
	// the outer summaries, 2 for the WRT synthetics — everything else hits.
	if m.CacheHits == 0 {
		t.Fatalf("no cache hits across repeated nests: %+v", m)
	}
	if pa.Metrics.MaxChangedPasses > 2 {
		t.Fatalf("pass bound violated: %d", m.MaxChangedPasses)
	}
}
