package driver

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/problems"
	"repro/internal/rangefacts"
	"repro/internal/token"
)

// Incremental re-analysis between two versions of a program (or two sets of
// programs): fingerprint every loop of both versions with the same 128-bit
// content address the memo cache keys on, report which loops changed, and
// re-solve only those — the unchanged ones are served by the memo (and,
// with Options.CacheDir, the persistent) cache warmed by the old version's
// analysis. This is the fine-grained invalidation step the ROADMAP's
// incremental-analysis item asks for: an edit to one loop of an N-loop
// program costs one solve, not N.

// DiffLoop describes one loop of the *new* version.
type DiffLoop struct {
	// Prog indexes the program (version pair) the loop belongs to; Index its
	// position in that program's analysis order (innermost first, matching
	// ProgramAnalysis.Loops).
	Prog, Index int
	// Var, Depth, and Pos identify the loop in source terms.
	Var   string
	Depth int
	Pos   token.Pos
	// Changed reports that no loop of the old version has this loop's
	// fingerprint (the loop was edited or newly added); its solve could not
	// be served from the old version's analysis.
	Changed bool
}

// DiffResult is the outcome of DiffPrograms.
type DiffResult struct {
	// Loops lists the new version's loops in deterministic order: program
	// order, then analysis order within each program.
	Loops []DiffLoop
	// Changed and Unchanged partition Loops; Removed counts old-version
	// loops whose fingerprint no longer occurs in the new version.
	Changed, Unchanged, Removed int
	// New holds the new version's analyses, one per program, in order.
	New []*ProgramAnalysis
	// OldMetrics and NewMetrics aggregate the two analysis passes.
	// NewMetrics.CacheMisses is the number of solves the edit actually
	// cost — for a 1-of-N-changed program with the cache warm, exactly the
	// changed loop's own solves.
	OldMetrics, NewMetrics *Metrics
}

// merge folds another Analyze call's metrics into m (sums and maxima, same
// conventions as the per-loop aggregation).
func (m *Metrics) merge(o *Metrics) {
	m.Loops += o.Loops
	m.Solves += o.Solves
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
	m.DiskHits += o.DiskHits
	m.DiskLoadBytes += o.DiskLoadBytes
	m.DiskStoreBytes += o.DiskStoreBytes
	if o.MaxChangedPasses > m.MaxChangedPasses {
		m.MaxChangedPasses = o.MaxChangedPasses
	}
	m.NodeVisits += o.NodeVisits
	m.FlowApps += o.FlowApps
	m.FuelExhausted += o.FuelExhausted
	m.Elapsed += o.Elapsed
	if o.Parallelism > m.Parallelism {
		m.Parallelism = o.Parallelism
	}
	m.PerLoop = append(m.PerLoop, o.PerLoop...)
}

// DiffPrograms analyzes the old version, fingerprints both versions, and
// analyzes the new version over the warmed cache. The two slices pair
// programs positionally but the fingerprint match is global: a loop moved
// across programs (or across positions) still counts as unchanged. opts
// applies to both passes; Options.DisableCache is rejected because the
// memoization *is* the incremental step.
func DiffPrograms(oldProgs, newProgs []*ast.Program, opts *Options) (*DiffResult, error) {
	if opts == nil {
		opts = &Options{}
	}
	if opts.DisableCache {
		return nil, fmt.Errorf("driver: DiffPrograms requires the memo cache (Options.DisableCache is set)")
	}
	specs := opts.Specs
	if specs == nil {
		specs = []*dataflow.Spec{problems.MustReachingDefs()}
	}

	keysOf := func(pa *ProgramAnalysis) []memoKey {
		dims := declaredDims(pa.Info)
		entries := collectEntries(pa.Prog)
		keys := make([]memoKey, len(entries))
		for i, e := range entries {
			// Re-derive each loop's fact environment the way analyzeOne
			// did, so the diff keys match the memo keys exactly.
			sig := ""
			if o := factsOracle(rangefacts.Derive(pa.Prog, pa.Info, e.loop, opts.Assume, opts.Fuel)); o != nil {
				sig = o.Signature()
			}
			keys[i] = cacheKey(e.loop, specs, dims, opts.Engine, opts.Fuel, sig)
		}
		return keys
	}

	d := &DiffResult{OldMetrics: &Metrics{}, NewMetrics: &Metrics{}}

	// Pass 1: the old version. Its solves populate the memo (and, when
	// configured, the persistent) cache.
	oldCount := map[memoKey]int{}
	for i, prog := range oldProgs {
		pa, err := Analyze(prog, opts)
		if err != nil {
			return nil, fmt.Errorf("old version, program %d: %w", i, err)
		}
		d.OldMetrics.merge(pa.Metrics)
		for _, k := range keysOf(pa) {
			oldCount[k]++
		}
	}

	// Pass 2: the new version. Unchanged loops are cache hits by
	// construction (same fingerprint resolution); the multiset match below
	// just names them.
	for pi, prog := range newProgs {
		pa, err := Analyze(prog, opts)
		if err != nil {
			return nil, fmt.Errorf("new version, program %d: %w", pi, err)
		}
		d.New = append(d.New, pa)
		d.NewMetrics.merge(pa.Metrics)
		keys := keysOf(pa)
		entries := collectEntries(prog)
		for i, e := range entries {
			dl := DiffLoop{Prog: pi, Index: i, Var: e.loop.Var, Depth: e.depth, Pos: e.loop.DoPos}
			if oldCount[keys[i]] > 0 {
				oldCount[keys[i]]--
				d.Unchanged++
			} else {
				dl.Changed = true
				d.Changed++
			}
			d.Loops = append(d.Loops, dl)
		}
	}
	for _, n := range oldCount {
		d.Removed += n
	}
	return d, nil
}
