package driver

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// diffSource builds an N-loop program where loop k's body is editable.
func diffSource(n int, edited int, editedBody string) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		v := string(rune('a' + i))
		b.WriteString("do " + v + " = 1, 100\n")
		if i == edited {
			b.WriteString("  " + editedBody + "\n")
		} else {
			b.WriteString("  A" + v + "[" + v + "+1] := A" + v + "[" + v + "] + " + v + "\n")
		}
		b.WriteString("enddo\n")
	}
	return b.String()
}

func TestDiffOneOfNChanged(t *testing.T) {
	const n = 8
	oldProg := parser.MustParse(diffSource(n, -1, ""))
	newProg := parser.MustParse(diffSource(n, 3, "Ad[d+2] := Ad[d] + Ad[d-1]"))

	ResetCache()
	d, err := DiffPrograms([]*ast.Program{oldProg}, []*ast.Program{newProg}, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Changed != 1 || d.Unchanged != n-1 || d.Removed != 1 {
		t.Fatalf("changed/unchanged/removed = %d/%d/%d, want 1/%d/1", d.Changed, d.Unchanged, d.Removed, n-1)
	}
	// The core incremental claim, asserted on the driver's own metrics: the
	// new version's analysis re-solved exactly the edited loop; every other
	// solve came out of the cache warmed by the old version.
	if d.NewMetrics.CacheMisses != 1 {
		t.Errorf("new-version CacheMisses = %d, want 1 (only the edited loop re-solved)", d.NewMetrics.CacheMisses)
	}
	if d.NewMetrics.CacheHits != n-1 {
		t.Errorf("new-version CacheHits = %d, want %d", d.NewMetrics.CacheHits, n-1)
	}
	// Per-loop statuses line up with the edit site (loops of equal depth
	// keep source order in analysis order).
	for _, dl := range d.Loops {
		wantChanged := dl.Var == "d"
		if dl.Changed != wantChanged {
			t.Errorf("loop %s: Changed = %v, want %v", dl.Var, dl.Changed, wantChanged)
		}
	}
}

func TestDiffNoChanges(t *testing.T) {
	src := diffSource(5, -1, "")
	ResetCache()
	d, err := DiffPrograms(
		[]*ast.Program{parser.MustParse(src)},
		[]*ast.Program{parser.MustParse(src)},
		&Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Changed != 0 || d.Removed != 0 || d.Unchanged != 5 {
		t.Errorf("changed/unchanged/removed = %d/%d/%d, want 0/5/0", d.Changed, d.Unchanged, d.Removed)
	}
	if d.NewMetrics.CacheMisses != 0 {
		t.Errorf("identical versions re-solved %d loops, want 0", d.NewMetrics.CacheMisses)
	}
}

func TestDiffLoopMovedAcrossPrograms(t *testing.T) {
	// A loop moved from one program to another (same fingerprint) counts as
	// unchanged: the match is global, not positional.
	loopA := "do i = 1, 50\n  P[i+1] := P[i]\nenddo\n"
	loopB := "do j = 1, 60\n  Q[j+1] := Q[j] + 1\nenddo\n"
	ResetCache()
	d, err := DiffPrograms(
		[]*ast.Program{parser.MustParse(loopA), parser.MustParse(loopB)},
		[]*ast.Program{parser.MustParse(loopB), parser.MustParse(loopA)},
		&Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Changed != 0 || d.Unchanged != 2 || d.Removed != 0 {
		t.Errorf("changed/unchanged/removed = %d/%d/%d, want 0/2/0", d.Changed, d.Unchanged, d.Removed)
	}
}

func TestDiffWithPersistentCache(t *testing.T) {
	// Old analyzed in one "process" (memory dropped afterwards), new in the
	// next: the persistent cache carries the unchanged solves across.
	dir := t.TempDir()
	const n = 6
	oldProg := parser.MustParse(diffSource(n, -1, ""))
	newProg := parser.MustParse(diffSource(n, 2, "Ac[c+3] := Ac[c]"))
	opts := &Options{Parallelism: 1, CacheDir: dir}

	ResetCache()
	if _, err := Analyze(oldProg, opts); err != nil {
		t.Fatal(err)
	}
	ResetCache() // restart
	d, err := DiffPrograms([]*ast.Program{oldProg}, []*ast.Program{newProg}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Changed != 1 {
		t.Fatalf("Changed = %d, want 1", d.Changed)
	}
	// The old pass warm-started from disk instead of re-solving.
	if d.OldMetrics.DiskHits != n {
		t.Errorf("old pass DiskHits = %d, want %d", d.OldMetrics.DiskHits, n)
	}
	if d.NewMetrics.CacheMisses != 1 {
		t.Errorf("new pass CacheMisses = %d, want 1", d.NewMetrics.CacheMisses)
	}
}

func TestDiffRejectsDisableCache(t *testing.T) {
	_, err := DiffPrograms(nil, nil, &Options{DisableCache: true})
	if err == nil {
		t.Fatal("DiffPrograms with DisableCache succeeded, want error")
	}
}
