package driver

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/cachefile"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/poly"
	"repro/internal/problems"
)

// The persistent solve cache: a directory of content-addressed entries that
// lets a cold process warm-start at memo-hit speed. Entries are keyed by the
// same 128-bit fingerprint as the in-memory memo table (which already folds
// the canonical loop text, spec names, engine, fuel, and dim declarations),
// and grouped under a schema subdirectory derived from the file-format
// generation, the result payload version, the engine, and the spec-name
// set — so any change to what a payload means abandons old files wholesale
// instead of risking a misparse.
//
// Only the solver's fixed points, init snapshots, and counters are stored
// (see dataflow.EncodeRows/ResultMeta); the flow graph, class tables, pr
// bitsets, and reuse facts are deterministic functions of the loop AST. A
// load eagerly decodes just the checksummed container and the per-spec
// counters — enough for whole-program metrics — and defers the graph
// rebuild and row decode until a consumer first reads the loop's facts, at
// which point the materialized value is byte-identical to a fresh solve.
//
// Failure policy: the disk cache never makes an Analyze call fail. Unusable
// roots disable it for the call; unreadable, truncated, corrupted, stale, or
// shape-mismatched entries degrade to a cold solve (counted in
// DiskCacheStats().Errors when the bytes were there but wrong).

// diskFormatGeneration versions everything about the container that the
// payload version does not cover. Bump on any incompatible change.
const diskFormatGeneration = "afdisk-v1"

// diskCache is one (root, schema) binding: entries for one engine + spec
// set + format generation, in one subdirectory of the user's cache root.
type diskCache struct {
	dir    string
	schema uint64
}

// diskCaches memoizes openDiskCacheFor: one MkdirAll per (root, schema) per
// process, and a failed root stays disabled (nil) instead of retrying on
// every solve.
var diskCaches sync.Map // map[string]*diskCache (nil entry = unusable)

// schemaParts renders the schema-hash components for a spec set + engine.
func schemaParts(specs []*dataflow.Spec, engine dataflow.Engine) []string {
	parts := []string{diskFormatGeneration, dataflow.PersistVersion, string(engine)}
	for _, s := range specs {
		parts = append(parts, s.Name)
	}
	return parts
}

// openDiskCacheFor returns the disk cache for root + spec set + engine,
// creating its schema subdirectory on first use. Returns nil (disk caching
// disabled) when the directory cannot be created.
func openDiskCacheFor(root string, specs []*dataflow.Spec, engine dataflow.Engine) *diskCache {
	schema := cachefile.SchemaHash(schemaParts(specs, engine)...)
	key := fmt.Sprintf("%s\x00%016x", root, schema)
	if v, ok := diskCaches.Load(key); ok {
		dc, _ := v.(*diskCache)
		return dc
	}
	dir := filepath.Join(root, fmt.Sprintf("%016x", schema))
	var dc *diskCache
	if err := os.MkdirAll(dir, 0o755); err == nil {
		dc = &diskCache{dir: dir, schema: schema}
	}
	diskCaches.Store(key, dc)
	return dc
}

// entryPath is the file holding one fingerprint's entry.
func (dc *diskCache) entryPath(key memoKey) string {
	return filepath.Join(dc.dir, fmt.Sprintf("%016x%016x", key.fp.Hi, key.fp.Lo))
}

// diskStats are the process-wide persistent-cache counters, exposed through
// DiskCacheStats for the service stats endpoint and operator tooling.
var diskStats struct {
	hits, misses, errors  atomic.Int64
	loadNS, storeNS       atomic.Int64
	loadBytes, storeBytes atomic.Int64
	stores                atomic.Int64
}

// DiskStats is a snapshot of the process-wide persistent-cache counters.
type DiskStats struct {
	// Hits counts solves answered from disk; Misses lookups that found no
	// usable entry (no file, stale schema, corruption — the last also counts
	// in Errors); Stores entries written.
	Hits, Misses, Stores int64
	// Errors counts entries that existed but could not be used (truncated,
	// bit-flipped, stale format, shape mismatch) plus failed writes. Every
	// one degraded to a cold solve, never a failure.
	Errors int64
	// LoadNS / StoreNS are cumulative wall nanoseconds spent reading /
	// writing entries; LoadBytes / StoreBytes the payload volumes.
	LoadNS, StoreNS       int64
	LoadBytes, StoreBytes int64
}

// DiskCacheStats reports the process-wide persistent-cache counters.
func DiskCacheStats() DiskStats {
	return DiskStats{
		Hits:       diskStats.hits.Load(),
		Misses:     diskStats.misses.Load(),
		Stores:     diskStats.stores.Load(),
		Errors:     diskStats.errors.Load(),
		LoadNS:     diskStats.loadNS.Load(),
		StoreNS:    diskStats.storeNS.Load(),
		LoadBytes:  diskStats.loadBytes.Load(),
		StoreBytes: diskStats.storeBytes.Load(),
	}
}

// ResetDiskCacheStats zeroes the process-wide counters (tests).
func ResetDiskCacheStats() {
	diskStats.hits.Store(0)
	diskStats.misses.Store(0)
	diskStats.stores.Store(0)
	diskStats.errors.Store(0)
	diskStats.loadNS.Store(0)
	diskStats.storeNS.Store(0)
	diskStats.loadBytes.Store(0)
	diskStats.storeBytes.Store(0)
}

// load reads and validates the entry for key and returns a lazily-restored
// solved value. The eager half is cheap — container checksum, per-spec
// counters, row-blob framing — which is all whole-program analysis needs;
// the graph rebuild, class-table derivation, row decode, and reuse
// extraction are deferred into the value's fill hook and run at most once,
// the first time a consumer reads the loop's facts. The loop and env must
// be the ones the key was computed from. Any eager failure returns
// ok=false and the caller solves cold; a deferred failure (impossible
// without a content-address collision — the blobs are checksummed) falls
// back to a fresh solve inside fill.
func (dc *diskCache) load(key memoKey, loop *ast.DoLoop, oracle dataflow.RangeOracle, env *solveEnv) (sv *solved, nbytes int64, ok bool) {
	start := time.Now()
	data, err := os.ReadFile(dc.entryPath(key))
	if err != nil {
		diskStats.misses.Add(1)
		return nil, 0, false
	}
	defer func() {
		if ok {
			diskStats.hits.Add(1)
			diskStats.loadBytes.Add(nbytes)
			diskStats.loadNS.Add(time.Since(start).Nanoseconds())
		} else {
			diskStats.misses.Add(1)
			diskStats.errors.Add(1)
		}
	}()
	payload, err := cachefile.Decode(data, dc.schema, key.fp.Hi, key.fp.Lo)
	if err != nil {
		return nil, 0, false
	}
	specs := env.specs
	r := cachefile.NewReader(payload)
	if n := r.Uint(); n != uint64(len(specs)) {
		return nil, 0, false
	}
	sv = &solved{meta: make([]specMeta, 0, len(specs))}
	blobs := make([][]byte, 0, len(specs))
	for _, spec := range specs {
		if name := r.String(); name != spec.Name {
			return nil, 0, false
		}
		meta := dataflow.DecodeResultMeta(r)
		blobs = append(blobs, r.Blob())
		if r.Err() != nil {
			return nil, 0, false
		}
		sv.meta = append(sv.meta, specMeta{name: spec.Name, meta: meta})
	}
	if !r.Done() {
		return nil, 0, false
	}
	dims, engine, fuel := env.dims, env.engine, env.fuel
	metas := sv.meta
	sv.fill = func() *solvedParts {
		t0 := time.Now()
		parts, err := restoreParts(loop, specs, dims, oracle, metas, blobs)
		if err != nil {
			// The payload passed its checksum but does not match the
			// rebuilt graph: stale semantics behind an aliased content
			// address. Count it and solve fresh — the disk cache never
			// fails an analysis.
			diskStats.errors.Add(1)
			parts, err = solvePartsFresh(loop, specs, dims, engine, fuel, oracle, dataflow.NewScratch())
			if err != nil {
				// Unreachable without a fingerprint collision: the loop's
				// canonical content built a graph in the process that
				// stored the entry. Degrade to an empty analysis rather
				// than poisoning the cache with a nil.
				parts = &solvedParts{graph: &ir.Graph{Loop: loop},
					results: map[string]*dataflow.Result{}}
			}
		}
		// Materialization is part of the cost of serving from disk; fold it
		// into the load-time counter so the stats stay honest.
		diskStats.loadNS.Add(time.Since(t0).Nanoseconds())
		return parts
	}
	return sv, int64(len(data)), true
}

// restoreParts rebuilds the graph-entangled artifacts of a disk entry: the
// flow graph and class tables from the loop AST, the fixed points from the
// persisted rows, the reuse facts from the restored must-solution.
func restoreParts(loop *ast.DoLoop, specs []*dataflow.Spec, dims map[string][]poly.Poly, oracle dataflow.RangeOracle, metas []specMeta, blobs [][]byte) (*solvedParts, error) {
	g, err := ir.Build(loop, &ir.Options{Dims: dims})
	if err != nil {
		return nil, err
	}
	parts := &solvedParts{graph: g, results: make(map[string]*dataflow.Result, len(specs))}
	for i, spec := range specs {
		res, err := dataflow.RestoreResult(g, spec, metas[i].meta, blobs[i])
		if err != nil {
			return nil, err
		}
		// The cache key folds the fact signature, so the restored rows were
		// computed under exactly this oracle; re-attach it before anything
		// can trigger ApplyFlow's lazy flow-function recompilation.
		res.SetOracle(oracle)
		parts.results[spec.Name] = res
		if spec.Name == "must-reaching-defs" {
			parts.reuses = problems.FindReuses(res)
		}
	}
	// Same publication contract as a fresh solve: force the lazy dominator
	// relation before the value can be shared across goroutines.
	g.Precompute()
	return parts, nil
}

// store writes the solved value for key, atomically. Returns the bytes
// written (0 on failure; failures only surface in DiskCacheStats().Errors).
func (dc *diskCache) store(key memoKey, specs []*dataflow.Spec, sv *solved) int64 {
	start := time.Now()
	parts := sv.materialize()
	var w cachefile.Writer
	var rw cachefile.Writer
	w.Uint(uint64(len(specs)))
	for _, spec := range specs {
		res := parts.results[spec.Name]
		if res == nil {
			return 0
		}
		w.String(spec.Name)
		res.PersistMeta().Encode(&w)
		rw = cachefile.Writer{}
		res.EncodeRows(&rw)
		w.Blob(rw.Bytes())
	}
	img := cachefile.Encode(dc.schema, key.fp.Hi, key.fp.Lo, w.Bytes())
	if err := cachefile.WriteAtomic(dc.entryPath(key), img); err != nil {
		diskStats.errors.Add(1)
		return 0
	}
	n := int64(len(img))
	diskStats.stores.Add(1)
	diskStats.storeBytes.Add(n)
	diskStats.storeNS.Add(time.Since(start).Nanoseconds())
	return n
}
