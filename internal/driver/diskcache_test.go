package driver

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/synth"
)

// diskTestProgram returns a distinct-per-seed multi-loop program so tests
// that share the process-global memo cache cannot serve each other hits.
func diskTestProgram(seed int64) *ast.Program {
	return synth.MultiLoopProgram(synth.MultiParams{Seed: seed, Loops: 6, StmtsPer: 12, NestEvery: 3})
}

// entryFiles lists the cache entry files under a cache root (any schema).
func entryFiles(t *testing.T, root string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDiskCacheWarmStart(t *testing.T) {
	ResetCache()
	dir := t.TempDir()
	prog := diskTestProgram(9001)
	opts := &Options{CacheDir: dir, Parallelism: 1}

	cold, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Metrics.DiskHits != 0 {
		t.Errorf("cold run DiskHits = %d, want 0", cold.Metrics.DiskHits)
	}
	if cold.Metrics.DiskStoreBytes == 0 {
		t.Error("cold run DiskStoreBytes = 0, want > 0 (write-behind missing)")
	}
	if files := entryFiles(t, dir); len(files) != cold.Metrics.CacheMisses {
		t.Errorf("entry files = %d, want one per miss (%d)", len(files), cold.Metrics.CacheMisses)
	}

	// Simulate a process restart: drop the in-memory memo, keep the disk.
	ResetCache()
	warm, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics.DiskHits != cold.Metrics.CacheMisses {
		t.Errorf("warm run DiskHits = %d, want every memory miss served from disk (%d)",
			warm.Metrics.DiskHits, cold.Metrics.CacheMisses)
	}
	if warm.Metrics.DiskLoadBytes == 0 {
		t.Error("warm run DiskLoadBytes = 0, want > 0")
	}
	if warm.Metrics.DiskStoreBytes != 0 {
		t.Errorf("warm run DiskStoreBytes = %d, want 0 (nothing re-stored)", warm.Metrics.DiskStoreBytes)
	}
	if got, want := warm.Report(), cold.Report(); got != want {
		t.Errorf("warm report differs from cold:\n--- cold ---\n%s--- warm ---\n%s", want, got)
	}
}

// TestDiskCacheRobustness damages every stored entry in a different way and
// checks each damaged cache degrades to a cold solve with a byte-identical
// report — never a crash or a wrong answer.
func TestDiskCacheRobustness(t *testing.T) {
	prog := diskTestProgram(9002)
	ResetCache()
	pristine, err := Analyze(prog, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := pristine.Report()

	damage := map[string]func(data []byte) []byte{
		"truncated":    func(d []byte) []byte { return d[:len(d)/2] },
		"empty":        func(d []byte) []byte { return nil },
		"flipped-byte": func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d },
		"wrong-schema": func(d []byte) []byte { d[5] ^= 0xff; return d }, // schema field at offset 4..12
		"bad-magic":    func(d []byte) []byte { copy(d, "ZZZZ"); return d },
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			opts := &Options{CacheDir: dir, Parallelism: 1}
			ResetCache()
			if _, err := Analyze(prog, opts); err != nil {
				t.Fatal(err)
			}
			files := entryFiles(t, dir)
			if len(files) == 0 {
				t.Fatal("no entries stored")
			}
			for _, f := range files {
				data, err := os.ReadFile(f)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(f, corrupt(data), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			ResetCache()
			before := DiskCacheStats()
			pa, err := Analyze(prog, opts)
			if err != nil {
				t.Fatalf("Analyze over damaged cache: %v", err)
			}
			if got := pa.Report(); got != want {
				t.Errorf("report over damaged cache differs from pristine:\n%s", got)
			}
			if pa.Metrics.DiskHits != 0 {
				t.Errorf("DiskHits = %d over damaged cache, want 0", pa.Metrics.DiskHits)
			}
			after := DiskCacheStats()
			if name != "empty" && after.Errors <= before.Errors {
				t.Errorf("Errors did not increase over damaged cache (%d -> %d)", before.Errors, after.Errors)
			}
			// The damaged entries were re-solved and re-stored; a second
			// warm start must now hit again.
			ResetCache()
			rewarm, err := Analyze(prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			if rewarm.Metrics.DiskHits == 0 {
				t.Error("no disk hits after damaged entries were rewritten")
			}
			if got := rewarm.Report(); got != want {
				t.Errorf("re-warmed report differs from pristine")
			}
		})
	}
}

// TestDiskCacheConcurrentSharedDir runs many Analyze calls over one shared
// cache directory from concurrent goroutines with the memory memo dropped
// between rounds — the interleaving two processes sharing a directory
// produce (concurrent stores of the same entry, loads racing stores) — and
// checks every run reports identically.
func TestDiskCacheConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	prog := diskTestProgram(9003)
	ResetCache()
	base, err := Analyze(prog, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := base.Report()

	for round := 0; round < 4; round++ {
		ResetCache() // cold memory, possibly-warm disk, every round
		var wg sync.WaitGroup
		reports := make([]string, 8)
		errs := make([]error, 8)
		for i := range reports {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				pa, err := Analyze(prog, &Options{CacheDir: dir, Parallelism: 2})
				if err != nil {
					errs[i] = err
					return
				}
				reports[i] = pa.Report()
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d goroutine %d: %v", round, i, err)
			}
			if reports[i] != want {
				t.Fatalf("round %d goroutine %d report differs", round, i)
			}
		}
	}
}

// TestDiskCacheDeterministicWarmStarts is the cross-process determinism
// check: 50 simulated restarts (memory dropped, disk kept) must each produce
// byte-identical output to the cold run.
func TestDiskCacheDeterministicWarmStarts(t *testing.T) {
	dir := t.TempDir()
	prog := diskTestProgram(9004)
	opts := &Options{CacheDir: dir, Parallelism: 1}
	ResetCache()
	cold, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Report()
	for i := 0; i < 50; i++ {
		ResetCache()
		pa, err := Analyze(prog, opts)
		if err != nil {
			t.Fatalf("warm start %d: %v", i, err)
		}
		if pa.Metrics.DiskHits == 0 {
			t.Fatalf("warm start %d: no disk hits", i)
		}
		if got := pa.Report(); got != want {
			t.Fatalf("warm start %d: report differs from cold run:\n%s", i, got)
		}
	}
}

// TestDiskCacheUnusableRoot checks a root that cannot be a directory
// disables the persistent cache without failing the analysis.
func TestDiskCacheUnusableRoot(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ResetCache()
	pa, err := Analyze(diskTestProgram(9005), &Options{CacheDir: file, Parallelism: 1})
	if err != nil {
		t.Fatalf("Analyze with unusable cache root: %v", err)
	}
	if pa.Metrics.DiskHits != 0 || pa.Metrics.DiskStoreBytes != 0 {
		t.Errorf("unusable root still produced disk traffic: %+v", pa.Metrics)
	}
}

// TestDiskCacheDisabledWithCache checks CacheDir is ignored under
// DisableCache (the fingerprint keys only exist on the cached path).
func TestDiskCacheDisabledWithCache(t *testing.T) {
	dir := t.TempDir()
	ResetCache()
	pa, err := Analyze(diskTestProgram(9006), &Options{CacheDir: dir, DisableCache: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Metrics.DiskStoreBytes != 0 {
		t.Errorf("DisableCache run stored %d bytes, want 0", pa.Metrics.DiskStoreBytes)
	}
	if files := entryFiles(t, dir); len(files) != 0 {
		t.Errorf("DisableCache run left %d entry files", len(files))
	}
}

// TestDiskCacheEngineAndFuelSeparation checks runs under a different engine
// or fuel budget never read each other's entries.
func TestDiskCacheEngineAndFuelSeparation(t *testing.T) {
	dir := t.TempDir()
	prog := diskTestProgram(9007)
	ResetCache()
	if _, err := Analyze(prog, &Options{CacheDir: dir, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	ResetCache()
	pa, err := Analyze(prog, &Options{CacheDir: dir, Parallelism: 1, Fuel: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Metrics.DiskHits != 0 {
		t.Errorf("fuel-budgeted run got %d disk hits from default-fuel entries", pa.Metrics.DiskHits)
	}
	ResetCache()
	pa, err = Analyze(prog, &Options{CacheDir: dir, Parallelism: 1, Engine: "reference"})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Metrics.DiskHits != 0 {
		t.Errorf("reference-engine run got %d disk hits from packed entries", pa.Metrics.DiskHits)
	}
}

// TestDiskCacheReferenceEngineRoundTrip checks the reference engine's
// results also persist and restore byte-identically (the restore path
// rebuilds flow functions lazily; both engines share it).
func TestDiskCacheReferenceEngineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	prog := parser.MustParse(`
do i = 1, 100
  A[i+1] := A[i] + B[i]
  B[i+2] := A[i-1]
  C[i] := C[i-1] + 1
enddo
`)
	opts := &Options{CacheDir: dir, Engine: "reference", Parallelism: 1}
	ResetCache()
	cold, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	warm, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics.DiskHits == 0 {
		t.Fatal("no disk hits on reference-engine warm start")
	}
	if warm.Report() != cold.Report() {
		t.Error("reference-engine warm report differs from cold")
	}
	// The restored result must still answer fixed-point queries: compare
	// the rendered tuple tables, which read In/Out and the init snapshot.
	coldRes := cold.Loops[0].Result("must-reaching-defs")
	warmRes := warm.Loops[0].Result("must-reaching-defs")
	if got, want := warmRes.TupleTable(-1), coldRes.TupleTable(-1); got != want {
		t.Errorf("restored fixed point differs:\n%s\nwant:\n%s", got, want)
	}
	if got, want := warmRes.TupleTable(0), coldRes.TupleTable(0); got != want {
		t.Errorf("restored init snapshot differs:\n%s\nwant:\n%s", got, want)
	}
	if !strings.Contains(warmRes.TupleTable(-1), "A[i + 1]") {
		t.Error("restored table lost class headers")
	}
}
