// Package driver runs the paper's whole-program analysis protocol (§3.2):
// loops are analyzed hierarchically starting with the innermost, each loop
// on its own flow graph with nested loops summarized; for tight nests the
// §3.6 move of re-analyzing the innermost body with respect to each
// enclosing induction variable is applied, and the §6 distance-vector
// extension runs on two-level tight nests.
//
// Scheduling and memoization live in this layer; the solver core in
// internal/dataflow stays pure. Because every loop is solved on its own
// flow graph with nested loops represented by summary nodes, the loops of
// one nesting depth never read each other's solutions — the driver
// therefore schedules them wave by wave (innermost depth first, matching
// the paper's protocol) across a bounded worker pool, and merges the
// results back in the original innermost-first order so output is
// byte-for-byte identical to the serial schedule. Identical loop bodies
// (ubiquitous after unrolling or load-elimination re-analysis) are
// memoized in a process-global content-addressed cache; see cache.go.
package driver

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/nest"
	"repro/internal/poly"
	"repro/internal/problems"
	"repro/internal/rangefacts"
	"repro/internal/sema"
)

// LoopAnalysis is the per-loop bundle of solutions.
//
// The graph, fixed points, and reuse facts are reached through accessor
// methods rather than fields: a loop answered from the persistent solve
// cache holds only its decoded counters until something actually reads the
// facts, at which point the deferred restore (graph rebuild + row decode)
// runs exactly once. Loops solved in-process materialize eagerly, so the
// accessors cost a nil check. All accessors are safe for concurrent use.
type LoopAnalysis struct {
	Loop  *ast.DoLoop
	Depth int // 1 = outermost
	// own is this loop's solve; wrt holds the §3.6 re-analyses of the body
	// with respect to each enclosing induction variable.
	own *solved
	wrt map[string]*solved
	// facts is the loop's solved range-fact environment, derived before the
	// solve and folded into its memo fingerprint.
	facts *rangefacts.Facts
}

// Facts returns the loop's range-fact environment: loop bounds, dominating
// guards, symbolic dims, and Options.Assume, solved to per-symbol
// intervals. Nil only for hand-built LoopAnalysis values.
func (la *LoopAnalysis) Facts() *rangefacts.Facts { return la.facts }

// Graph returns the loop's flow graph.
func (la *LoopAnalysis) Graph() *ir.Graph { return la.own.materialize().graph }

// Results maps spec name → fixed point for the analyses requested.
func (la *LoopAnalysis) Results() map[string]*dataflow.Result {
	return la.own.materialize().results
}

// Result returns the fixed point of one named problem instance (nil when
// the analysis was not requested).
func (la *LoopAnalysis) Result(name string) *dataflow.Result {
	return la.own.materialize().results[name]
}

// Reuses are the guaranteed reuses with respect to this loop's own
// induction variable (from must-reaching definitions when requested).
func (la *LoopAnalysis) Reuses() []problems.Reuse { return la.own.materialize().reuses }

// WRT returns, for a loop that is the innermost of a tight nest, the §3.6
// re-analyses of its body with respect to each *enclosing* induction
// variable: reuse facts keyed by that variable's name. The map is built
// per call; mutating it does not affect the analysis.
func (la *LoopAnalysis) WRT() map[string][]problems.Reuse {
	out := make(map[string][]problems.Reuse, len(la.wrt))
	for iv, sv := range la.wrt {
		out[iv] = sv.materialize().reuses
	}
	return out
}

// ProgramAnalysis is the result of analyzing every loop of a program.
type ProgramAnalysis struct {
	Prog *ast.Program
	Info *sema.Info
	// Loops in analysis order: innermost first (§3.2).
	Loops []*LoopAnalysis
	// Vectors holds the §6 distance-vector recurrences per tight two-level
	// nest, keyed by the outer loop.
	Vectors map[*ast.DoLoop][]nest.Recurrence
	// Metrics instruments the call: solver work per loop, cache hit/miss
	// tallies, and wall times (see Metrics).
	Metrics *Metrics

	// vectorOrder remembers the deterministic (analysis-order) sequence of
	// Vectors keys so Report does not depend on map iteration order.
	vectorOrder []*ast.DoLoop
}

// Options selects the analyses to run per loop and tunes the scheduler.
type Options struct {
	// Specs lists the problem instances to solve on every loop graph.
	// Nil runs must-reaching definitions only.
	Specs []*dataflow.Spec
	// NestVectors enables the §6 extension on tight two-level nests.
	NestVectors bool
	// MaxVectorDist bounds the vector search (default 8).
	MaxVectorDist int64
	// Parallelism caps the worker goroutines per scheduling wave.
	// 0 uses runtime.GOMAXPROCS(0); 1 forces the serial schedule.
	// Results are byte-for-byte identical at every setting.
	Parallelism int
	// DisableCache bypasses the process-global memo cache, forcing every
	// loop to be solved fresh. Needed when passing hand-built Specs whose
	// Name does not uniquely identify their semantics; also useful for
	// benchmarking the raw solver.
	DisableCache bool
	// CacheCap bounds the process-global memo cache. 0 keeps the current
	// bound (default 4096 entries); a positive value sets it; a negative
	// value removes the bound. When the table fills, the oldest half of
	// the entries is evicted. The bound is process-global state: the most
	// recent Analyze call to set it wins.
	CacheCap int
	// Engine selects the solver implementation (zero value = packed). The
	// engine participates in the memo-cache key, so mixed-engine processes
	// never share entries across engines.
	Engine dataflow.Engine
	// Fuel bounds each per-loop solve's flow-function applications
	// (dataflow.Options.Fuel). Zero derives the solver's never-binding
	// default. A bound solve that runs out degrades its tuples to the
	// claim-nothing value and is counted in Metrics.FuelExhausted; the fuel
	// participates in the memo-cache key, so runs under different budgets
	// never share entries.
	Fuel int64
	// Assume seeds every loop's range-fact derivation with caller-supplied
	// facts (rangefacts): front ends inject invariants the mini language
	// cannot express, e.g. the Go importer's len()-derived `n ≥ 0`. The
	// facts join loop bounds, dominating guards, and dim bounds in the
	// per-loop environment, and fold into the memo fingerprint through the
	// fact signature.
	Assume []rangefacts.Fact
	// CacheDir, when non-empty, persists solved loops to disk under this
	// directory (content-addressed by the same fingerprint as the in-memory
	// memo, grouped by a format/engine/spec-set schema hash), and answers
	// memory misses from disk before solving. Unusable directories and
	// damaged entries degrade to cold solves; the disk cache never fails an
	// Analyze call. Ignored when DisableCache is set (the fingerprints the
	// entries are keyed by only exist on the cached path).
	CacheDir string
}

// entry is one loop to analyze, with its nesting context.
type entry struct {
	loop      *ast.DoLoop
	depth     int
	enclosing []*ast.DoLoop // outermost first
}

// Analyze runs the protocol over a checked, normalized program.
func Analyze(prog *ast.Program, opts *Options) (*ProgramAnalysis, error) {
	return analyze(prog, opts, nil)
}

// analyze is Analyze with an optional caller-owned scratch free list used
// by the serial schedule; AnalyzeBatch passes one per batch worker so
// solver transients are reused across programs.
func analyze(prog *ast.Program, opts *Options, sc *dataflow.Scratch) (*ProgramAnalysis, error) {
	if opts == nil {
		opts = &Options{}
	}
	specs := opts.Specs
	if specs == nil {
		specs = []*dataflow.Spec{problems.MustReachingDefs()}
	}
	maxVec := opts.MaxVectorDist
	if maxVec <= 0 {
		maxVec = 8
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheCap != 0 {
		globalCache.setCap(opts.CacheCap)
	}
	start := time.Now()

	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	pa := &ProgramAnalysis{Prog: prog, Info: info, Vectors: map[*ast.DoLoop][]nest.Recurrence{}}
	dims := declaredDims(info)

	env := &solveEnv{specs: specs, dims: dims, useCache: !opts.DisableCache,
		engine: opts.Engine, fuel: opts.Fuel,
		prog: prog, info: info, assume: opts.Assume}
	if opts.CacheDir != "" && env.useCache {
		env.cacheRoot = opts.CacheDir
		env.disk = openDiskCacheFor(opts.CacheDir, specs, opts.Engine)
	}

	entries := collectEntries(prog)

	// Wave schedule: loops grouped by nesting depth, deepest wave first.
	// Within a wave every loop is independent (each is solved on its own
	// graph; inner loops appear only as summary nodes built from their own
	// AST), so the wave fans out across the worker pool. Workers write
	// into per-entry slots, which keeps the merge deterministic: slot order
	// is the innermost-first entry order regardless of completion order.
	byDepth := map[int][]int{}
	maxDepth := 0
	for i, e := range entries {
		byDepth[e.depth] = append(byDepth[e.depth], i)
		if e.depth > maxDepth {
			maxDepth = e.depth
		}
	}
	results := make([]*LoopAnalysis, len(entries))
	loopMetrics := make([]LoopMetrics, len(entries))
	errs := make([]error, len(entries))
	serialScratch := sc
	if serialScratch == nil {
		serialScratch = dataflow.NewScratch()
	}
	for d := maxDepth; d >= 1; d-- {
		idxs := byDepth[d]
		if len(idxs) == 0 {
			continue
		}
		w := workers
		if w > len(idxs) {
			w = len(idxs)
		}
		if w <= 1 {
			for _, i := range idxs {
				results[i], loopMetrics[i], errs[i] = analyzeOne(entries[i], env, serialScratch)
			}
			continue
		}
		work := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Per-worker free list: every loop this worker solves
				// reuses one scratch bundle, so the wave's transient
				// allocations are bounded by the worker count.
				sc := dataflow.NewScratch()
				for i := range work {
					results[i], loopMetrics[i], errs[i] = analyzeOne(entries[i], env, sc)
				}
			}()
		}
		for _, i := range idxs {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	// First error in entry order — deterministic no matter which worker
	// failed first on the wall clock.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	pa.Loops = results

	if opts.NestVectors {
		for _, e := range entries {
			if inner, ok := tightInnerOf(e.loop); ok && !containsLoop(inner.Body) {
				recs, err := nest.FindRecurrences(e.loop, maxVec)
				if err == nil && len(recs) > 0 {
					pa.Vectors[e.loop] = recs
					pa.vectorOrder = append(pa.vectorOrder, e.loop)
				}
			}
		}
	}

	m := &Metrics{Loops: len(entries), Parallelism: workers, PerLoop: loopMetrics}
	for _, lm := range loopMetrics {
		m.Solves += 1 + lm.WRTSolves
		m.CacheHits += lm.CacheHits
		m.CacheMisses += lm.CacheMisses
		m.DiskHits += lm.DiskHits
		m.DiskLoadBytes += lm.DiskLoadBytes
		m.DiskStoreBytes += lm.DiskStoreBytes
		if lm.Solver.ChangedPasses > m.MaxChangedPasses {
			m.MaxChangedPasses = lm.Solver.ChangedPasses
		}
		m.NodeVisits += lm.Solver.NodeVisits
		m.FlowApps += lm.Solver.FlowApps
		if lm.Solver.FuelExhausted {
			m.FuelExhausted++
		}
	}
	m.Elapsed = time.Since(start)
	pa.Metrics = m
	return pa, nil
}

// ForEachLoop invokes fn once per analyzed loop, fanning the calls out
// across at most parallelism goroutines (0 = GOMAXPROCS, 1 = serial). fn
// receives the loop's index in pa.Loops; callers that collect output should
// write into index-aligned slots so results stay deterministic regardless of
// completion order. fn must not mutate shared state without its own
// synchronization.
func (pa *ProgramAnalysis) ForEachLoop(parallelism int, fn func(i int, la *LoopAnalysis)) {
	n := len(pa.Loops)
	if n == 0 {
		return
	}
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i, la := range pa.Loops {
			fn(i, la)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i, pa.Loops[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// collectEntries gathers every loop with depth and enclosing chain, in the
// innermost-first order of the §3.2 protocol (stable within one depth).
func collectEntries(prog *ast.Program) []entry {
	var entries []entry
	var walk func(stmts []ast.Stmt, depth int, chain []*ast.DoLoop)
	walk = func(stmts []ast.Stmt, depth int, chain []*ast.DoLoop) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.DoLoop:
				entries = append(entries, entry{loop: st, depth: depth + 1,
					enclosing: append([]*ast.DoLoop{}, chain...)})
				walk(st.Body, depth+1, append(chain, st))
			case *ast.If:
				walk(st.Then, depth, chain)
				walk(st.Else, depth, chain)
			}
		}
	}
	walk(prog.Body, 0, nil)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].depth > entries[j].depth })
	return entries
}

// declaredDims converts the checked program's constant dim declarations
// into the polynomial dimension sizes the linearizer consumes, so declared
// multi-dimensional arrays get concrete strides instead of the symbolic
// sema.DefaultDims fallback (which undeclared arrays keep).
func declaredDims(info *sema.Info) map[string][]poly.Poly {
	if len(info.Bounds) == 0 {
		return nil
	}
	out := make(map[string][]poly.Poly, len(info.Bounds))
	for name, sizes := range info.Bounds {
		ps := make([]poly.Poly, len(sizes))
		for k, v := range sizes {
			ps[k] = poly.Const(v)
		}
		out[name] = ps
	}
	return out
}

// analyzeOne runs one loop's own analysis plus its §3.6 re-analyses. It is
// called from worker goroutines: everything it touches is either private to
// the entry or behind the cache's synchronization.
func analyzeOne(e entry, env *solveEnv, sc *dataflow.Scratch) (*LoopAnalysis, LoopMetrics, error) {
	t0 := time.Now()
	lm := LoopMetrics{Var: e.loop.Var, Depth: e.depth}
	countLookup := func(oc solveOutcome) {
		if !env.useCache {
			return
		}
		if oc.hit {
			lm.CacheHits++
		} else {
			lm.CacheMisses++
		}
		if oc.diskHit {
			lm.DiskHits++
		}
		lm.DiskLoadBytes += oc.loadBytes
		lm.DiskStoreBytes += oc.storeBytes
	}
	// Derive the loop's fact environment first: it participates in the
	// solve (preserve constants) and therefore in the memo fingerprint.
	facts := rangefacts.Derive(env.prog, env.info, e.loop, env.assume, env.fuel)
	sv, oc, err := solveLoop(e.loop, facts, env, sc)
	if err != nil {
		return nil, lm, fmt.Errorf("loop %s: %w", e.loop.Var, err)
	}
	countLookup(oc)
	for _, sm := range sv.meta {
		lm.Solver.Add(sm.meta.Metrics())
	}
	la := &LoopAnalysis{Loop: e.loop, Depth: e.depth, own: sv, wrt: map[string]*solved{}, facts: facts}

	// §3.6: for the innermost loop of a tight chain, re-analyze its
	// body with respect to each enclosing induction variable.
	if len(e.loop.Body) > 0 && !containsLoop(e.loop.Body) {
		var wrtEnv *solveEnv
		for _, enc := range e.enclosing {
			if !tightChain(enc, e.loop) {
				continue
			}
			if wrtEnv == nil {
				wrtEnv = env.withSpecs([]*dataflow.Spec{problems.MustReachingDefs()})
			}
			synthetic := &ast.DoLoop{
				DoPos: e.loop.DoPos, Var: enc.Var, Label: enc.Label,
				Lo: ast.CloneExpr(enc.Lo), Hi: ast.CloneExpr(enc.Hi),
				Body: e.loop.Body,
			}
			// §3.6 synthetic loops are not part of the program AST, so no
			// guard context can be located for them; they solve fact-free.
			svw, ocw, err := solveLoop(synthetic, nil, wrtEnv, sc)
			if err != nil {
				continue
			}
			countLookup(ocw)
			lm.WRTSolves++
			for _, sm := range svw.meta {
				lm.Solver.Add(sm.meta.Metrics())
			}
			la.wrt[enc.Var] = svw
			if !env.useCache {
				// Only the reuse records survive this solve; with the
				// memo cache off nothing else references the results, so
				// their slabs and op arenas go back to the solver pools.
				for _, r := range svw.materialize().results {
					r.Release()
				}
			}
		}
	}
	lm.Elapsed = time.Since(t0)
	return la, lm, nil
}

// containsLoop reports whether a statement list contains a nested loop.
func containsLoop(stmts []ast.Stmt) bool {
	found := false
	ast.Inspect(stmts, func(n ast.Node) bool {
		if _, ok := n.(*ast.DoLoop); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// tightChain reports whether outer's body consists of a straight chain of
// single nested loops reaching inner.
func tightChain(outer, inner *ast.DoLoop) bool {
	cur := outer
	for cur != inner {
		if len(cur.Body) != 1 {
			return false
		}
		next, ok := cur.Body[0].(*ast.DoLoop)
		if !ok {
			return false
		}
		cur = next
	}
	return true
}

func tightInnerOf(outer *ast.DoLoop) (*ast.DoLoop, bool) {
	if len(outer.Body) != 1 {
		return nil, false
	}
	inner, ok := outer.Body[0].(*ast.DoLoop)
	return inner, ok
}

// Report renders the whole-program findings.
func (pa *ProgramAnalysis) Report() string {
	var b strings.Builder
	// Pre-size for the common shape: one header line per loop plus ~56
	// bytes per reuse line. Underestimates only cost a regrow.
	size := 48
	for _, la := range pa.Loops {
		size += 40 + 56*len(la.Reuses())
		for _, rs := range la.wrt {
			size += 64 * len(rs.materialize().reuses)
		}
	}
	b.Grow(size)
	fmt.Fprintf(&b, "program analysis: %d loops (innermost first)\n", len(pa.Loops))
	for _, la := range pa.Loops {
		fmt.Fprintf(&b, "loop %s (depth %d, %d nodes):\n", la.Loop.Var, la.Depth, len(la.Graph().Nodes))
		for _, r := range la.Reuses() {
			fmt.Fprintf(&b, "  reuse: %s\n", r)
		}
		wrt := la.WRT()
		ivs := make([]string, 0, len(wrt))
		for iv := range wrt {
			ivs = append(ivs, iv)
		}
		sort.Strings(ivs)
		for _, iv := range ivs {
			for _, r := range wrt[iv] {
				fmt.Fprintf(&b, "  reuse wrt %s: %s\n", iv, r)
			}
		}
	}
	for _, outer := range pa.vectorLoops() {
		fmt.Fprintf(&b, "tight nest at %s: distance vectors:\n", outer.Var)
		for _, r := range pa.Vectors[outer] {
			fmt.Fprintf(&b, "  %s\n", r)
		}
	}
	return b.String()
}

// vectorLoops returns the Vectors keys in a deterministic order: analysis
// order when this ProgramAnalysis came from Analyze, induction-variable
// order as a fallback for hand-built values.
func (pa *ProgramAnalysis) vectorLoops() []*ast.DoLoop {
	if len(pa.vectorOrder) == len(pa.Vectors) {
		return pa.vectorOrder
	}
	loops := make([]*ast.DoLoop, 0, len(pa.Vectors))
	for l := range pa.Vectors {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Var < loops[j].Var })
	return loops
}
