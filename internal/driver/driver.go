// Package driver runs the paper's whole-program analysis protocol (§3.2):
// loops are analyzed hierarchically starting with the innermost, each loop
// on its own flow graph with nested loops summarized; for tight nests the
// §3.6 move of re-analyzing the innermost body with respect to each
// enclosing induction variable is applied, and the §6 distance-vector
// extension runs on two-level tight nests.
package driver

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/nest"
	"repro/internal/problems"
	"repro/internal/sema"
)

// LoopAnalysis is the per-loop bundle of solutions.
type LoopAnalysis struct {
	Loop  *ast.DoLoop
	Depth int // 1 = outermost
	Graph *ir.Graph
	// Results maps spec name → fixed point for the analyses requested.
	Results map[string]*dataflow.Result
	// Reuses are the guaranteed reuses with respect to this loop's own
	// induction variable (from must-reaching definitions when requested).
	Reuses []problems.Reuse
	// WRT holds, for a loop that is the innermost of a tight nest, the
	// §3.6 re-analyses of its body with respect to each *enclosing*
	// induction variable: reuse facts keyed by that variable's name.
	WRT map[string][]problems.Reuse
}

// ProgramAnalysis is the result of analyzing every loop of a program.
type ProgramAnalysis struct {
	Prog *ast.Program
	Info *sema.Info
	// Loops in analysis order: innermost first (§3.2).
	Loops []*LoopAnalysis
	// Vectors holds the §6 distance-vector recurrences per tight two-level
	// nest, keyed by the outer loop.
	Vectors map[*ast.DoLoop][]nest.Recurrence
}

// Options selects the analyses to run per loop.
type Options struct {
	// Specs lists the problem instances to solve on every loop graph.
	// Nil runs must-reaching definitions only.
	Specs []*dataflow.Spec
	// NestVectors enables the §6 extension on tight two-level nests.
	NestVectors bool
	// MaxVectorDist bounds the vector search (default 8).
	MaxVectorDist int64
}

// Analyze runs the protocol over a checked, normalized program.
func Analyze(prog *ast.Program, opts *Options) (*ProgramAnalysis, error) {
	if opts == nil {
		opts = &Options{}
	}
	specs := opts.Specs
	if specs == nil {
		specs = []*dataflow.Spec{problems.MustReachingDefs()}
	}
	maxVec := opts.MaxVectorDist
	if maxVec <= 0 {
		maxVec = 8
	}

	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	pa := &ProgramAnalysis{Prog: prog, Info: info, Vectors: map[*ast.DoLoop][]nest.Recurrence{}}

	// Collect loops with depth and enclosing chain, innermost-first order.
	type entry struct {
		loop      *ast.DoLoop
		depth     int
		enclosing []*ast.DoLoop // outermost first
	}
	var entries []entry
	var walk func(stmts []ast.Stmt, depth int, chain []*ast.DoLoop)
	walk = func(stmts []ast.Stmt, depth int, chain []*ast.DoLoop) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.DoLoop:
				entries = append(entries, entry{loop: st, depth: depth + 1,
					enclosing: append([]*ast.DoLoop{}, chain...)})
				walk(st.Body, depth+1, append(chain, st))
			case *ast.If:
				walk(st.Then, depth, chain)
				walk(st.Else, depth, chain)
			}
		}
	}
	walk(prog.Body, 0, nil)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].depth > entries[j].depth })

	for _, e := range entries {
		g, err := ir.Build(e.loop, nil)
		if err != nil {
			return nil, fmt.Errorf("loop %s: %w", e.loop.Var, err)
		}
		la := &LoopAnalysis{Loop: e.loop, Depth: e.depth, Graph: g,
			Results: map[string]*dataflow.Result{}, WRT: map[string][]problems.Reuse{}}
		for _, spec := range specs {
			res := dataflow.Solve(g, spec, nil)
			la.Results[spec.Name] = res
			if spec.Name == "must-reaching-defs" {
				la.Reuses = problems.FindReuses(res)
			}
		}

		// §3.6: for the innermost loop of a tight chain, re-analyze its
		// body with respect to each enclosing induction variable.
		if len(e.loop.Body) > 0 && !containsLoop(e.loop.Body) {
			for _, enc := range e.enclosing {
				if !tightChain(enc, e.loop) {
					continue
				}
				synthetic := &ast.DoLoop{
					DoPos: e.loop.DoPos, Var: enc.Var, Label: enc.Label,
					Lo: ast.CloneExpr(enc.Lo), Hi: ast.CloneExpr(enc.Hi),
					Body: e.loop.Body,
				}
				gw, err := ir.Build(synthetic, nil)
				if err != nil {
					continue
				}
				res := dataflow.Solve(gw, problems.MustReachingDefs(), nil)
				la.WRT[enc.Var] = problems.FindReuses(res)
			}
		}
		pa.Loops = append(pa.Loops, la)
	}

	if opts.NestVectors {
		for _, e := range entries {
			if inner, ok := tightInnerOf(e.loop); ok && !containsLoop(inner.Body) {
				recs, err := nest.FindRecurrences(e.loop, maxVec)
				if err == nil && len(recs) > 0 {
					pa.Vectors[e.loop] = recs
				}
			}
		}
	}
	return pa, nil
}

// containsLoop reports whether a statement list contains a nested loop.
func containsLoop(stmts []ast.Stmt) bool {
	found := false
	ast.Inspect(stmts, func(n ast.Node) bool {
		if _, ok := n.(*ast.DoLoop); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// tightChain reports whether outer's body consists of a straight chain of
// single nested loops reaching inner.
func tightChain(outer, inner *ast.DoLoop) bool {
	cur := outer
	for cur != inner {
		if len(cur.Body) != 1 {
			return false
		}
		next, ok := cur.Body[0].(*ast.DoLoop)
		if !ok {
			return false
		}
		cur = next
	}
	return true
}

func tightInnerOf(outer *ast.DoLoop) (*ast.DoLoop, bool) {
	if len(outer.Body) != 1 {
		return nil, false
	}
	inner, ok := outer.Body[0].(*ast.DoLoop)
	return inner, ok
}

// Report renders the whole-program findings.
func (pa *ProgramAnalysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program analysis: %d loops (innermost first)\n", len(pa.Loops))
	for _, la := range pa.Loops {
		fmt.Fprintf(&b, "loop %s (depth %d, %d nodes):\n", la.Loop.Var, la.Depth, len(la.Graph.Nodes))
		for _, r := range la.Reuses {
			fmt.Fprintf(&b, "  reuse: %s\n", r)
		}
		ivs := make([]string, 0, len(la.WRT))
		for iv := range la.WRT {
			ivs = append(ivs, iv)
		}
		sort.Strings(ivs)
		for _, iv := range ivs {
			for _, r := range la.WRT[iv] {
				fmt.Fprintf(&b, "  reuse wrt %s: %s\n", iv, r)
			}
		}
	}
	for outer, recs := range pa.Vectors {
		fmt.Fprintf(&b, "tight nest at %s: distance vectors:\n", outer.Var)
		for _, r := range recs {
			fmt.Fprintf(&b, "  %s\n", r)
		}
	}
	return b.String()
}
