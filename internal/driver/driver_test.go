package driver

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/parser"
	"repro/internal/problems"
)

func TestInnermostFirstOrder(t *testing.T) {
	prog := parser.MustParse(`
do k = 1, K
  do j = 1, M
    do i = 1, N
      A[i] := A[i] + 1
    enddo
  enddo
enddo
do z = 1, Z
  B[z+1] := B[z]
enddo
`)
	pa, err := Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pa.Loops) != 4 {
		t.Fatalf("loops = %d, want 4", len(pa.Loops))
	}
	// Innermost (depth 3) first; outermost loops last.
	if pa.Loops[0].Depth != 3 || pa.Loops[0].Loop.Var != "i" {
		t.Errorf("first analyzed = %s depth %d, want i depth 3", pa.Loops[0].Loop.Var, pa.Loops[0].Depth)
	}
	last := pa.Loops[len(pa.Loops)-1]
	if last.Depth != 1 {
		t.Errorf("last analyzed depth = %d, want 1", last.Depth)
	}
}

func TestFig4SeparateAnalyses(t *testing.T) {
	prog := parser.MustParse(`
do j = 1, UB
  do i = 1, UB1
    X[i+1, j] := X[i, j]
    Y[i, j+1] := Y[i, j-1]
    Z[i+1, j] := Z[i, j-1]
  enddo
enddo
`)
	pa, err := Analyze(prog, &Options{NestVectors: true})
	if err != nil {
		t.Fatal(err)
	}
	var innerLA *LoopAnalysis
	for _, la := range pa.Loops {
		if la.Loop.Var == "i" {
			innerLA = la
		}
	}
	if innerLA == nil {
		t.Fatal("inner loop missing")
	}
	// Own-IV analysis finds the X recurrence.
	foundX := false
	for _, r := range innerLA.Reuses() {
		if r.From.Array == "X" && r.Distance == 1 {
			foundX = true
		}
	}
	if !foundX {
		t.Errorf("X recurrence wrt i missing: %v", innerLA.Reuses())
	}
	// §3.6 re-analysis wrt j finds the Y recurrence at distance 2.
	wrtJ := innerLA.WRT()["j"]
	foundY := false
	for _, r := range wrtJ {
		if r.From.Array == "Y" && r.Distance == 2 {
			foundY = true
		}
	}
	if !foundY {
		t.Errorf("Y recurrence wrt j missing: %v", wrtJ)
	}
	// The nest vectors include Z (1,1).
	foundZ := false
	for _, recs := range pa.Vectors {
		for _, r := range recs {
			if r.Array == "Z" && r.Vec.Outer == 1 && r.Vec.Inner == 1 {
				foundZ = true
			}
		}
	}
	if !foundZ {
		t.Errorf("Z vector missing: %v", pa.Vectors)
	}
}

func TestMultipleSpecs(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 100
  A[i+1] := A[i] + x
enddo
`)
	pa, err := Analyze(prog, &Options{Specs: []*dataflow.Spec{
		problems.MustReachingDefs(),
		problems.AvailableValues(),
		problems.BusyStores(),
		problems.ReachingRefs(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	la := pa.Loops[0]
	for _, name := range []string{"must-reaching-defs", "delta-available-values",
		"delta-busy-stores", "delta-reaching-refs"} {
		if la.Result(name) == nil {
			t.Errorf("missing result %s", name)
		}
	}
}

func TestSummaryInteraction(t *testing.T) {
	// The outer loop's analysis must see the inner loop as a summary that
	// kills X facts.
	prog := parser.MustParse(`
do j = 1, M
  X[j+1] := X[j]
  do i = 1, N
    X[i] := 0
  enddo
enddo
`)
	pa, err := Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	var outer *LoopAnalysis
	for _, la := range pa.Loops {
		if la.Loop.Var == "j" {
			outer = la
		}
	}
	if outer == nil {
		t.Fatal("outer loop missing")
	}
	// X[j] cannot reuse X[j+1]'s value: the inner loop clobbers X.
	for _, r := range outer.Reuses() {
		if r.From.Array == "X" {
			t.Errorf("false reuse across summarized inner loop: %v", r)
		}
	}
}

func TestNonTightNestSkipsWRT(t *testing.T) {
	prog := parser.MustParse(`
do j = 1, M
  A[j] := 0
  do i = 1, N
    B[i] := B[i] + 1
  enddo
enddo
`)
	pa, err := Analyze(prog, &Options{NestVectors: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, la := range pa.Loops {
		if la.Loop.Var == "i" && len(la.WRT()) != 0 {
			t.Errorf("non-tight nest must not get WRT analyses: %v", la.WRT())
		}
	}
	if len(pa.Vectors) != 0 {
		t.Errorf("non-tight nest must not get vectors: %v", pa.Vectors)
	}
}

func TestRejectsInvalidProgram(t *testing.T) {
	prog := parser.MustParse("do i = 1, 10\n i := 0\nenddo")
	if _, err := Analyze(prog, nil); err == nil {
		t.Fatal("expected semantic error")
	}
}

func TestReportMentionsEverything(t *testing.T) {
	prog := parser.MustParse(`
do j = 1, UB
  do i = 1, UB1
    Z[i+1, j] := Z[i, j-1]
  enddo
enddo
`)
	pa, err := Analyze(prog, &Options{NestVectors: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := pa.Report()
	for _, want := range []string{"loop i", "loop j", "distance vectors", "(1, 1)"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
