package driver

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dataflow"
)

// LoopMetrics is the instrumentation record of one analyzed loop.
type LoopMetrics struct {
	// Var and Depth identify the loop (Depth 1 = outermost).
	Var   string
	Depth int
	// Solver aggregates the per-spec solver counters of this loop's own
	// analysis (node/class sizes and passes are maxima across specs; visits,
	// applications and wall time are sums).
	Solver dataflow.Metrics
	// WRTSolves counts the §3.6 re-analyses performed with respect to
	// enclosing induction variables; their counters fold into Solver.
	WRTSolves int
	// CacheHits / CacheMisses tally this loop's solves (its own analysis
	// plus the §3.6 re-analyses) served memoized vs. computed fresh. Both
	// stay zero when the cache is disabled. A hit's solver counters
	// describe the original, memoized solve.
	CacheHits   int
	CacheMisses int
	// DiskHits counts the memory misses among this loop's solves that were
	// answered from the persistent cache instead of solving (a disk hit is
	// also a CacheMisses entry — it missed memory); DiskLoadBytes and
	// DiskStoreBytes the persistent-cache volume this loop read and wrote.
	// All zero unless Options.CacheDir is set.
	DiskHits       int
	DiskLoadBytes  int64
	DiskStoreBytes int64
	// Elapsed is the wall time this loop spent in its worker, cache lookup
	// included.
	Elapsed time.Duration
}

// Metrics aggregates solver work across one Analyze call. All counters are
// deterministic for a given program and option set except the wall times.
type Metrics struct {
	// Loops is the number of loops analyzed; Solves the number of loop
	// solves requested (own analyses plus §3.6 re-analyses, hits included).
	Loops  int
	Solves int
	// CacheHits / CacheMisses tally how many of those solves were served
	// memoized vs. computed. Both stay zero with Options.DisableCache.
	CacheHits   int
	CacheMisses int
	// DiskHits counts the memory misses served from the persistent cache
	// (Options.CacheDir); DiskLoadBytes / DiskStoreBytes the entry volume
	// this call read and wrote. Solver counters of a disk hit describe the
	// original solve, exactly like a memory hit's.
	DiskHits       int
	DiskLoadBytes  int64
	DiskStoreBytes int64
	// MaxChangedPasses is the largest changing-pass count any single solve
	// needed — the empirical check of the paper's ≤ 2 changing-pass claim
	// (≤ 3 passes total with the confirmation pass).
	MaxChangedPasses int
	// NodeVisits and FlowApps total the solver work of the call (memoized
	// solves contribute their original counters).
	NodeVisits int
	FlowApps   int
	// FuelExhausted counts the loops whose solves ran out of fuel and were
	// degraded to the claim-nothing value (see Options.Fuel). Zero on every
	// run with the derived default budget.
	FuelExhausted int
	// Elapsed is the wall time of the whole Analyze call; Parallelism the
	// worker count it ran with.
	Elapsed     time.Duration
	Parallelism int
	// PerLoop holds one record per analyzed loop, in analysis order
	// (innermost first, same order as ProgramAnalysis.Loops).
	PerLoop []LoopMetrics
}

// HitRate is CacheHits / Solves (0 when nothing was solved).
func (m *Metrics) HitRate() float64 {
	if m.Solves == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(m.Solves)
}

// Report renders the metrics as a human-readable table (the -metrics output
// of cmd/arrayflow). Wall-clock columns vary run to run; every other column
// is deterministic.
func (m *Metrics) Report() string {
	var b strings.Builder
	// Two header lines, one column-header line, one ~80-byte row per loop.
	b.Grow(256 + 80*len(m.PerLoop))
	fmt.Fprintf(&b, "solver metrics: %d loops, %d solves (%d cache hits, %d misses, hit rate %.2f), workers %d\n",
		m.Loops, m.Solves, m.CacheHits, m.CacheMisses, m.HitRate(), m.Parallelism)
	fmt.Fprintf(&b, "  max changing passes: %d (paper bound: 2)   node visits: %d   flow applications: %d   fuel-exhausted loops: %d   wall: %s\n",
		m.MaxChangedPasses, m.NodeVisits, m.FlowApps, m.FuelExhausted, m.Elapsed.Round(time.Microsecond))
	fmt.Fprintf(&b, "  %-8s %5s %6s %8s %7s %8s %9s %5s %12s\n",
		"loop", "depth", "nodes", "classes", "passes", "visits", "flowapps", "hits", "wall")
	for _, lm := range m.PerLoop {
		fmt.Fprintf(&b, "  %-8s %5d %6d %8d %7d %8d %9d %5d %12s\n",
			lm.Var, lm.Depth, lm.Solver.Nodes, lm.Solver.Classes, lm.Solver.ChangedPasses,
			lm.Solver.NodeVisits, lm.Solver.FlowApps, lm.CacheHits,
			lm.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}
