package driver

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

// TestReportAllocsBounded pins that the pre-sized builders keep rendering
// costs linear and small: allocations per Report call stay within a
// constant factor of the line count (formatting boxes its operands; what
// this test rules out is per-call builder regrowth, which scales with
// output size, not line count).
func TestReportAllocsBounded(t *testing.T) {
	ResetCache()
	prog := synth.MultiLoopProgram(synth.MultiParams{
		Seed: 13, Loops: 32, StmtsPer: 24, NestEvery: 4})
	pa, err := Analyze(prog, &Options{NestVectors: true})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name, out string, allocs float64) {
		lines := strings.Count(out, "\n") + 1
		// ~13 allocs/line is the current cost (operand boxing plus the
		// Sprintf calls inside Reuse.String); 16 leaves headroom while
		// still catching per-line string materialization regressions.
		cap := float64(16*lines + 16)
		if allocs > cap {
			t.Errorf("%s: %.0f allocs for %d lines, want ≤ %.0f", name, allocs, lines, cap)
		}
	}
	check("ProgramAnalysis.Report", pa.Report(),
		testing.AllocsPerRun(20, func() { pa.Report() }))
	check("Metrics.Report", pa.Metrics.Report(),
		testing.AllocsPerRun(20, func() { pa.Metrics.Report() }))
}
