package driver

import (
	"sync"
	"testing"

	"repro/internal/ast"
)

// shardKey builds a memo key whose routing bits are i, so tests can steer
// keys to specific shards.
func shardKey(i int) memoKey {
	return memoKey{fp: ast.FP128{Hi: uint64(i), Lo: 0}}
}

// TestShardRoutingIsStable pins that a key always lands on the same shard
// and that distinct routing bits spread across distinct shards.
func TestShardRoutingIsStable(t *testing.T) {
	c := newShardedCache(defaultCacheCap)
	seen := map[*solveCache]bool{}
	for i := 0; i < cacheShards; i++ {
		k := shardKey(i)
		s := c.shardFor(k)
		if s != c.shardFor(k) {
			t.Fatalf("key %d: shard choice not stable", i)
		}
		seen[s] = true
	}
	if len(seen) != cacheShards {
		t.Fatalf("keys 0..%d spread over %d shards, want %d", cacheShards-1, len(seen), cacheShards)
	}
}

// TestShardedCapBound fills the table far past its bound and checks the
// total entry count never exceeds the requested cap, in both the split and
// the single-shard (small cap) modes.
func TestShardedCapBound(t *testing.T) {
	noRender := func() string { return "" }
	for _, cap := range []int{8, 16, 64, 200} {
		c := newShardedCache(cap)
		for i := 0; i < 4*cap; i++ {
			c.claim(shardKey(i*7+1), noRender)
			if entries, _, _ := c.stats(); entries > cap {
				t.Fatalf("cap %d: table grew to %d entries at insert %d", cap, entries, i)
			}
		}
	}
}

// TestShardedUnlimited removes the bound and checks nothing is evicted.
func TestShardedUnlimited(t *testing.T) {
	c := newShardedCache(-1)
	noRender := func() string { return "" }
	const n = 10_000
	for i := 0; i < n; i++ {
		c.claim(shardKey(i), noRender)
	}
	if entries, _, misses := c.stats(); entries != n || misses != n {
		t.Fatalf("unbounded cache: %d entries / %d misses, want %d/%d", entries, misses, n, n)
	}
}

// TestShardedDeterministicMissCount claims k distinct keys from many
// goroutines concurrently: exactly k misses must be tallied no matter how
// claims interleave, because each shard counts under its own lock and the
// singleflight cell is created exactly once per key.
func TestShardedDeterministicMissCount(t *testing.T) {
	const keys, claimers = 64, 8
	c := newShardedCache(-1)
	noRender := func() string { return "" }
	var wg sync.WaitGroup
	for g := 0; g < claimers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				c.claim(shardKey(i), noRender)
			}
		}()
	}
	wg.Wait()
	entries, hits, misses := c.stats()
	if entries != keys || misses != keys || hits != keys*(claimers-1) {
		t.Fatalf("entries/hits/misses = %d/%d/%d, want %d/%d/%d",
			entries, hits, misses, keys, keys*(claimers-1), keys)
	}
}

// TestCacheShardStatsSumsToCacheStats checks the per-shard breakdown adds
// up to the global tallies after real driver traffic.
func TestCacheShardStatsSumsToCacheStats(t *testing.T) {
	ResetCache()
	defer ResetCache()
	for _, p := range corpusPrograms(t)[:8] {
		if _, err := Analyze(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	entries, hits, misses := CacheStats()
	var se, sh, sm int
	shards := CacheShardStats()
	if len(shards) != cacheShards {
		t.Fatalf("CacheShardStats returned %d shards, want %d", len(shards), cacheShards)
	}
	for _, s := range shards {
		se += s.Entries
		sh += s.Hits
		sm += s.Misses
	}
	if se != entries || sh != hits || sm != misses {
		t.Fatalf("shard sums %d/%d/%d != global stats %d/%d/%d", se, sh, sm, entries, hits, misses)
	}
	if entries == 0 || misses == 0 {
		t.Fatal("corpus traffic left no cache footprint")
	}
}
