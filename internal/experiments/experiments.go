// Package experiments regenerates every table and figure of the paper's
// exposition (there is no separate machine-measured evaluation section in
// the 1993 paper; Table 1 and Figures 1–7 plus the complexity claims are
// the reproducible artifacts). Each experiment returns structured results
// used three ways: asserted in tests, benchmarked in bench_test.go, and
// printed by cmd/benchrepro. The experiment IDs follow DESIGN.md.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/dataflow"
	"repro/internal/depend"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/nest"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/problems"
	"repro/internal/regalloc"
	"repro/internal/sema"
	"repro/internal/synth"
	"repro/internal/tac"
	"repro/internal/tacopt"
)

// Fig1Source is the loop of the paper's Figure 1.
const Fig1Source = `
do i = 1, UB
  C[i+2] := C[i] * 2
  B[2*i] := C[i] + X
  if C[i] == 0 then C[i] := B[i-1]
  B[i] := C[i+1]
enddo
`

// Fig4Source is the nest of the paper's Figure 4.
const Fig4Source = `
do j = 1, UB
  do i = 1, UB1
    X[i+1, j] := X[i, j]
    Y[i, j+1] := Y[i, j-1]
    Z[i+1, j] := Z[i, j-1]
  enddo
enddo
`

// Fig5Source is the loop of the paper's Figure 5.
const Fig5Source = `
do i = 1, 1000
  A[i+2] := A[i] + X
enddo
`

// Fig6Source is the loop of the paper's Figure 6 (the condition is made
// concrete; the paper writes "if cond").
const Fig6Source = `
do i = 1, 1000
  A[i] := c + i
  if c > 0 then
    A[i+1] := c * 2
  endif
enddo
`

// Fig7Source is the loop of the paper's Figure 7.
const Fig7Source = `
do i = 1, 1000
  if c > i / 2 then
    y := A[i]
    B[i] := y
  endif
  A[i+1] := c + i
enddo
`

func mustGraph(src string) *ir.Graph {
	prog := parser.MustParse(src)
	loop := prog.Body[0].(*ast.DoLoop)
	g, err := ir.Build(loop, nil)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return g
}

// ---------------------------------------------------------------------------
// E1/E2 — Table 1

// Table1Result carries the traced must-reaching-definitions run on Fig. 1.
type Table1Result struct {
	Graph  *ir.Graph
	Res    *dataflow.Result
	Init   string // Table 1 (i)
	Pass1  string // Table 1 (ii), first pass
	Pass2  string // Table 1 (ii), second pass — the fixed point
	Passes int
}

// Table1 reproduces Table 1.
func Table1() *Table1Result {
	g := mustGraph(Fig1Source)
	res := dataflow.Solve(g, problems.MustReachingDefs(), &dataflow.Options{CollectTrace: true})
	return &Table1Result{
		Graph: g, Res: res,
		Init:   res.TupleTable(0),
		Pass1:  res.TupleTable(1),
		Pass2:  res.TupleTable(2),
		Passes: res.Passes,
	}
}

// Report renders the tables side by side.
func (t *Table1Result) Report() string {
	var b strings.Builder
	b.WriteString("== E1: Table 1 (i) — initialization pass ==\n")
	b.WriteString(t.Init)
	b.WriteString("\n== E2: Table 1 (ii) — iteration pass 1 ==\n")
	b.WriteString(t.Pass1)
	b.WriteString("\n== E2: Table 1 (ii) — iteration pass 2 (fixed point) ==\n")
	b.WriteString(t.Pass2)
	fmt.Fprintf(&b, "\npasses until stable: %d (init + 2 changing + 1 confirming)\n", t.Passes+1)
	return b.String()
}

// ---------------------------------------------------------------------------
// E3 — Figure 3 reuse conclusions

// Fig3Result carries the reuse conclusions of §3.5.
type Fig3Result struct {
	Graph  *ir.Graph
	Reuses []problems.Reuse
}

// Fig3 reproduces the graph of Figure 3 and the §3.5 conclusions.
func Fig3() *Fig3Result {
	g := mustGraph(Fig1Source)
	res := dataflow.Solve(g, problems.MustReachingDefs(), nil)
	return &Fig3Result{Graph: g, Reuses: problems.FindReuses(res)}
}

// Report renders the graph and reuses.
func (r *Fig3Result) Report() string {
	var b strings.Builder
	b.WriteString("== E3: Figure 3 loop flow graph ==\n")
	b.WriteString(r.Graph.Dump())
	b.WriteString("guaranteed reuses (§3.5 conclusions):\n")
	for _, ru := range r.Reuses {
		fmt.Fprintf(&b, "  %s\n", ru)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E5 — Figure 4 multi-dimensional recurrences

// Fig4Result carries the §3.6 findings.
type Fig4Result struct {
	Recurrences []nest.Recurrence
}

// Fig4 analyzes the Figure 4 nest with the distance-vector extension.
func Fig4() (*Fig4Result, error) {
	prog := parser.MustParse(Fig4Source)
	outer := prog.Body[0].(*ast.DoLoop)
	rs, err := nest.FindRecurrences(outer, 8)
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Recurrences: rs}, nil
}

// Report renders the recurrences with their discoverability.
func (r *Fig4Result) Report() string {
	var b strings.Builder
	b.WriteString("== E5: Figure 4 recurrences (distance vectors) ==\n")
	for _, rec := range r.Recurrences {
		by := "vector extension ONLY (paper §3.6: single-loop analysis misses it)"
		if rec.FoundBySingleLoop {
			by = "single-loop analysis (§3.6)"
		}
		fmt.Fprintf(&b, "  %-44s found by %s\n", rec.String(), by)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E6 — Figure 5 register pipelining

// Fig5Result compares naive conventional code, locally optimized
// conventional code (constant folding / copy propagation / local redundant
// load elimination — everything a flow-insensitive scalar compiler gets),
// and register-pipelined code. The middle row isolates the paper's
// contribution: local cleanup cannot remove the cross-iteration reload.
type Fig5Result struct {
	Allocation   *regalloc.Allocation
	Conventional *machine.Result
	LocalOpt     *machine.Result
	Pipelined    *machine.Result
	Equal        bool
}

// Fig5 compiles the Figure 5 loop both ways and executes both on the
// abstract machine.
func Fig5() (*Fig5Result, error) {
	prog := parser.MustParse(Fig5Source)
	// The graph must be built from the same AST the code generator walks:
	// pipeline hooks are keyed by reference identity.
	loop := prog.Body[0].(*ast.DoLoop)
	g, err := ir.Build(loop, nil)
	if err != nil {
		return nil, err
	}
	alloc := regalloc.Allocate(g, &regalloc.Options{K: 16})
	hooks, err := alloc.GenOptions()
	if err != nil {
		return nil, err
	}
	conv, err := tac.Gen(prog, nil)
	if err != nil {
		return nil, err
	}
	localOpt, _ := tacopt.Optimize(conv)
	pipe, err := tac.Gen(prog, hooks)
	if err != nil {
		return nil, err
	}
	memA, memL, memB := machine.NewMemory(), machine.NewMemory(), machine.NewMemory()
	for i := int64(-3); i <= 5; i++ {
		memA.Set("A", i, i*3+1)
		memL.Set("A", i, i*3+1)
		memB.Set("A", i, i*3+1)
	}
	init := map[string]int64{"X": 7}
	resA, err := machine.Run(conv, memA, &machine.Options{InitRegs: init})
	if err != nil {
		return nil, err
	}
	resL, err := machine.Run(localOpt, memL, &machine.Options{InitRegs: init})
	if err != nil {
		return nil, err
	}
	resB, err := machine.Run(pipe, memB, &machine.Options{InitRegs: init})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{
		Allocation:   alloc,
		Conventional: resA,
		LocalOpt:     resL,
		Pipelined:    resB,
		Equal:        memA.Equal(memB) && memA.Equal(memL),
	}, nil
}

// Report renders the comparison.
func (r *Fig5Result) Report() string {
	var b strings.Builder
	b.WriteString("== E6: Figure 5 register pipelining (UB = 1000) ==\n")
	b.WriteString(r.Allocation.Report())
	fmt.Fprintf(&b, "  %-18s %8s %8s %10s\n", "", "loads A", "stores A", "cycles")
	fmt.Fprintf(&b, "  %-18s %8d %8d %10d\n", "conventional",
		r.Conventional.Loads["A"], r.Conventional.Stores["A"], r.Conventional.Cycles)
	fmt.Fprintf(&b, "  %-18s %8d %8d %10d\n", "locally optimized",
		r.LocalOpt.Loads["A"], r.LocalOpt.Stores["A"], r.LocalOpt.Cycles)
	fmt.Fprintf(&b, "  %-18s %8d %8d %10d\n", "pipelined",
		r.Pipelined.Loads["A"], r.Pipelined.Stores["A"], r.Pipelined.Cycles)
	fmt.Fprintf(&b, "  semantics equal: %v\n", r.Equal)
	return b.String()
}

// ---------------------------------------------------------------------------
// E6b — §4.1.4: unrolling by the pipeline depth removes the shift moves

// Fig5UnrolledResult compares the register-move overhead of the plain
// pipeline against the unroll-by-depth variant the paper describes: "Note
// that physically moving values among the stages of the pipeline is not
// necessary if the loop is unrolled depth(l) times."
type Fig5UnrolledResult struct {
	// Pipelined is the §4.1 pipeline on the original loop.
	Pipelined *machine.Result
	// Unrolled is the loop unrolled by the pipeline depth (3), normalized,
	// and scalar-replaced: same zero in-loop loads, fewer shift moves.
	Unrolled *machine.Result
	// MovesPerIterPipelined / MovesPerIterUnrolled are executed register
	// moves divided by the original iteration count.
	MovesPerIterPipelined float64
	MovesPerIterUnrolled  float64
	Equal                 bool
}

// Fig5Unrolled runs the E6b comparison on the Figure 5 loop (UB = 999 so
// the unroll factor divides the trip count evenly).
func Fig5Unrolled() (*Fig5UnrolledResult, error) {
	const src = `
do i = 1, 999
  A[i+2] := A[i] + X
enddo
`
	const iters = 999

	// Variant 1: §4.1 pipeline with shift moves.
	prog1 := parser.MustParse(src)
	loop1 := prog1.Body[0].(*ast.DoLoop)
	g1, err := ir.Build(loop1, nil)
	if err != nil {
		return nil, err
	}
	alloc := regalloc.Allocate(g1, &regalloc.Options{K: 16})
	hooks, err := alloc.GenOptions()
	if err != nil {
		return nil, err
	}
	code1, err := tac.Gen(prog1, hooks)
	if err != nil {
		return nil, err
	}

	// Variant 2: unroll by the pipeline depth, normalize, scalar-replace.
	prog2 := parser.MustParse(src)
	unrolled, err := opt.Unroll(prog2, 0, 3)
	if err != nil {
		return nil, err
	}
	normalized, err := sema.Normalize(unrolled)
	if err != nil {
		return nil, err
	}
	le, err := opt.EliminateLoads(normalized, 0)
	if err != nil {
		return nil, err
	}
	code2raw, err := tac.Gen(le.Prog, nil)
	if err != nil {
		return nil, err
	}
	code2, _ := tacopt.Optimize(code2raw)

	run := func(code *tac.Prog) (*machine.Result, *machine.Memory, error) {
		mem := machine.NewMemory()
		for i := int64(-3); i <= 5; i++ {
			mem.Set("A", i, i*3+1)
		}
		res, err := machine.Run(code, mem, &machine.Options{InitRegs: map[string]int64{"X": 7}})
		return res, mem, err
	}
	res1, mem1, err := run(code1)
	if err != nil {
		return nil, err
	}
	res2, mem2, err := run(code2)
	if err != nil {
		return nil, err
	}
	return &Fig5UnrolledResult{
		Pipelined:             res1,
		Unrolled:              res2,
		MovesPerIterPipelined: float64(res1.OpCounts[tac.Mov]) / iters,
		MovesPerIterUnrolled:  float64(res2.OpCounts[tac.Mov]) / iters,
		Equal:                 mem1.Equal(mem2),
	}, nil
}

// Report renders E6b.
func (r *Fig5UnrolledResult) Report() string {
	var b strings.Builder
	b.WriteString("== E6b: §4.1.4 — unrolling by depth removes pipeline shifts ==\n")
	fmt.Fprintf(&b, "  %-22s %8s %12s %10s\n", "", "loads A", "moves/iter", "cycles")
	fmt.Fprintf(&b, "  %-22s %8d %12.2f %10d\n", "pipelined",
		r.Pipelined.Loads["A"], r.MovesPerIterPipelined, r.Pipelined.Cycles)
	fmt.Fprintf(&b, "  %-22s %8d %12.2f %10d\n", "unrolled ×3 + temps",
		r.Unrolled.Loads["A"], r.MovesPerIterUnrolled, r.Unrolled.Cycles)
	fmt.Fprintf(&b, "  semantics equal: %v\n", r.Equal)
	return b.String()
}

// ---------------------------------------------------------------------------
// E7 — Figure 6 redundant store elimination

// Fig6Result compares store counts before and after elimination.
type Fig6Result struct {
	Removed       int
	Peeled        int64
	StoresBefore  int64
	StoresAfter   int64
	SemanticsOK   bool
	ProgramBefore *ast.Program
	ProgramAfter  *ast.Program
}

// Fig6 runs redundant-store elimination on the Figure 6 loop and measures
// dynamic stores with the interpreter (condition always true — the worst
// case for the original program).
func Fig6() (*Fig6Result, error) {
	prog := parser.MustParse(Fig6Source)
	res, err := opt.EliminateStores(prog, 0)
	if err != nil {
		return nil, err
	}
	init := interp.NewState()
	init.Scalars["c"] = 5
	_, before, err := interp.Run(prog, init, nil)
	if err != nil {
		return nil, err
	}
	s1, _, err := interp.Run(prog, init, nil)
	if err != nil {
		return nil, err
	}
	s2, after, err := interp.Run(res.Prog, init, nil)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{
		Removed:       len(res.Removed),
		Peeled:        res.PeeledIterations,
		StoresBefore:  before.ArrayStores["A"],
		StoresAfter:   after.ArrayStores["A"],
		SemanticsOK:   interp.ArraysEqual(s1, s2),
		ProgramBefore: prog,
		ProgramAfter:  res.Prog,
	}, nil
}

// Report renders the comparison.
func (r *Fig6Result) Report() string {
	var b strings.Builder
	b.WriteString("== E7: Figure 6 redundant store elimination (UB = 1000) ==\n")
	fmt.Fprintf(&b, "  removed stores: %d, peeled iterations: %d\n", r.Removed, r.Peeled)
	fmt.Fprintf(&b, "  dynamic stores to A: %d -> %d\n", r.StoresBefore, r.StoresAfter)
	fmt.Fprintf(&b, "  semantics equal: %v\n", r.SemanticsOK)
	return b.String()
}

// ---------------------------------------------------------------------------
// E8 — Figure 7 redundant load elimination

// Fig7Result compares load counts before and after elimination.
type Fig7Result struct {
	Replaced    int
	LoadsBefore int64
	LoadsAfter  int64
	SemanticsOK bool
}

// Fig7 runs redundant-load elimination on the Figure 7 loop.
func Fig7() (*Fig7Result, error) {
	prog := parser.MustParse(Fig7Source)
	res, err := opt.EliminateLoads(prog, 0)
	if err != nil {
		return nil, err
	}
	init := interp.NewState()
	init.Scalars["c"] = 1 << 30 // condition always true
	s1, before, err := interp.Run(prog, init, nil)
	if err != nil {
		return nil, err
	}
	s2, after, err := interp.Run(res.Prog, init, nil)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{
		Replaced:    len(res.Replaced),
		LoadsBefore: before.ArrayLoads["A"],
		LoadsAfter:  after.ArrayLoads["A"],
		SemanticsOK: interp.ArraysEqual(s1, s2),
	}, nil
}

// Report renders the comparison.
func (r *Fig7Result) Report() string {
	var b strings.Builder
	b.WriteString("== E8: Figure 7 redundant load elimination (UB = 1000) ==\n")
	fmt.Fprintf(&b, "  replaced reuse points: %d\n", r.Replaced)
	fmt.Fprintf(&b, "  dynamic loads of A: %d -> %d\n", r.LoadsBefore, r.LoadsAfter)
	fmt.Fprintf(&b, "  semantics equal: %v\n", r.SemanticsOK)
	return b.String()
}

// ---------------------------------------------------------------------------
// E9 — convergence passes across synthetic loops

// ConvergenceRow is one sweep point of E9.
type ConvergenceRow struct {
	Stmts       int
	Nodes       int
	MustChanged int // changing passes, must-problem
	MustVisits  int
	MayChanged  int // changing passes, may-problem
	MayVisits   int
}

// Convergence sweeps loop sizes and records pass counts, checking the ≤ 2
// changing-passes claim for must- and ≤ 1 for may-problems.
func Convergence(sizes []int) []ConvergenceRow {
	var rows []ConvergenceRow
	for _, n := range sizes {
		prog := synth.Loop(synth.Params{Seed: int64(n), Stmts: n, Arrays: 4, MaxDist: 5, CondProb: 0.3})
		loop := prog.Body[0].(*ast.DoLoop)
		g, err := ir.Build(loop, nil)
		if err != nil {
			panic(err)
		}
		must := dataflow.Solve(g, problems.MustReachingDefs(), nil)
		may := dataflow.Solve(g, problems.ReachingRefs(), nil)
		rows = append(rows, ConvergenceRow{
			Stmts: n, Nodes: len(g.Nodes),
			MustChanged: must.ChangedPasses, MustVisits: must.NodeVisits,
			MayChanged: may.ChangedPasses, MayVisits: may.NodeVisits,
		})
	}
	return rows
}

// ConvergenceReport renders E9.
func ConvergenceReport(rows []ConvergenceRow) string {
	var b strings.Builder
	b.WriteString("== E9: fixed point convergence (claim: must ≤ 3·N visits, may ≤ 2·N) ==\n")
	fmt.Fprintf(&b, "  %6s %6s %12s %12s %12s %12s\n",
		"stmts", "nodes", "must-passes", "must-visits", "may-passes", "may-visits")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %6d %6d %12d %12d %12d %12d\n",
			r.Stmts, r.Nodes, r.MustChanged, r.MustVisits, r.MayChanged, r.MayVisits)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E10 — framework vs. Rau-style baseline

// BaselineRow is one sweep point of E10.
type BaselineRow struct {
	Distance        int64
	FrameworkPasses int // changing passes (constant)
	BaselinePasses  int // traversals until convergence (grows)
	BaselineMissed  bool
}

// VsBaseline sweeps recurrence distances; the baseline's limit is set to
// 2·d (it must exceed d to find the recurrence at all).
func VsBaseline(dists []int64) []BaselineRow {
	var rows []BaselineRow
	for _, d := range dists {
		prog := synth.KilledRecurrenceLoop(d, 0)
		loop := prog.Body[0].(*ast.DoLoop)
		g, err := ir.Build(loop, nil)
		if err != nil {
			panic(err)
		}
		fw := dataflow.Solve(g, problems.MustReachingDefs(), nil)
		bl := baseline.MustReachingDefs(g, &baseline.Options{Limit: 2 * d})
		short := baseline.MustReachingDefs(g, &baseline.Options{Limit: d - 1})
		missed := true
		for ci := range short.Classes {
			for _, nd := range g.Nodes {
				if short.ReachesWithDistance(nd, ci, d) {
					missed = false
				}
			}
		}
		rows = append(rows, BaselineRow{
			Distance:        d,
			FrameworkPasses: fw.ChangedPasses,
			BaselinePasses:  bl.Passes,
			BaselineMissed:  missed,
		})
	}
	return rows
}

// VsBaselineReport renders E10.
func VsBaselineReport(rows []BaselineRow) string {
	var b strings.Builder
	b.WriteString("== E10: framework vs. Rau-style name propagation (§5) ==\n")
	fmt.Fprintf(&b, "  %8s %18s %18s %26s\n",
		"distance", "framework passes", "baseline passes", "truncated baseline misses")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %8d %18d %18d %26v\n",
			r.Distance, r.FrameworkPasses, r.BaselinePasses, r.BaselineMissed)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E12 — controlled unrolling predictions

// UnrollRow is one sweep point of E12.
type UnrollRow struct {
	Name       string
	L          int64   // critical path of one iteration
	L2, L4     int64   // predicted for 2 and 4 copies
	Factor     int     // decision at threshold 1.2
	SpeedShape float64 // L4 / (4·L): 1.0 = serial, 0.25 = fully parallel
}

// Unrolling evaluates the §4.3 predictions on characteristic loop shapes.
func Unrolling() []UnrollRow {
	cases := []struct {
		name string
		prog *ast.Program
	}{
		{"parallel (dist 2)", parser.MustParse("do i = 1, 100\n A[i+2] := A[i] + x\nenddo")},
		{"serial (dist 1)", parser.MustParse("do i = 1, 100\n A[i+1] := A[i] + x\nenddo")},
		{"chain of 4, carried", synth.ChainLoop(4, 1, 100)},
		{"wide independent", synth.WideLoop(6, 100)},
	}
	var rows []UnrollRow
	for _, c := range cases {
		res, err := opt.ControlledUnroll(c.prog, 0, &opt.UnrollOptions{Threshold: 1.2, MaxFactor: 4})
		if err != nil {
			panic(err)
		}
		loop := c.prog.Body[0].(*ast.DoLoop)
		g, err := ir.Build(loop, nil)
		if err != nil {
			panic(err)
		}
		dg := problemsDependence(g)
		l := dg.CriticalPath()
		rows = append(rows, UnrollRow{
			Name: c.name, L: l,
			L2: dg.UnrolledCriticalPath(2), L4: dg.UnrolledCriticalPath(4),
			Factor:     res.Factor,
			SpeedShape: float64(dg.UnrolledCriticalPath(4)) / float64(4*l),
		})
	}
	return rows
}

// UnrollingReport renders E12.
func UnrollingReport(rows []UnrollRow) string {
	var b strings.Builder
	b.WriteString("== E12: controlled unrolling predictions (§4.3, threshold 1.2) ==\n")
	fmt.Fprintf(&b, "  %-22s %4s %4s %4s %8s %12s\n", "loop", "l", "l2", "l4", "factor", "l4/(4·l)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %4d %4d %4d %8d %12.2f\n",
			r.Name, r.L, r.L2, r.L4, r.Factor, r.SpeedShape)
	}
	return b.String()
}

func problemsDependence(g *ir.Graph) *depend.Graph {
	return depend.BuildFromLoop(g, 8)
}

// ---------------------------------------------------------------------------
// E13 — driver scheduling and memoization

// ReanalysisRow is one sweep point of the E13a memoization experiment: the
// optimization-pipeline pattern of analyzing a loop, transforming it, and
// re-analyzing. The re-analysis of any unchanged loop body is served from
// the driver's content-addressed cache.
type ReanalysisRow struct {
	Factor           int // unroll factor of the variant
	Loops            int // loops analyzed across the three driver calls
	Solves           int
	CacheHits        int
	CacheMisses      int
	HitRate          float64
	MaxChangedPasses int
}

// UnrollingReanalysis runs the E13a sweep: for each unroll factor of the
// Figure 5 loop, the pipeline (1) analyzes the normalized variant,
// (2) applies redundant-load elimination and analyzes the rewrite, and
// (3) re-analyzes the original variant — step 3 always hits the memo cache,
// and across factors the misses stay proportional to the distinct bodies.
func UnrollingReanalysis() ([]ReanalysisRow, error) {
	driver.ResetCache()
	var rows []ReanalysisRow
	for _, f := range []int{1, 2, 4} {
		prog := parser.MustParse(Fig5Source)
		unrolled, err := opt.Unroll(prog, 0, f)
		if err != nil {
			return nil, err
		}
		norm, err := sema.Normalize(unrolled)
		if err != nil {
			return nil, err
		}
		pa1, err := driver.Analyze(norm, nil)
		if err != nil {
			return nil, err
		}
		le, err := opt.EliminateLoads(norm, 0)
		if err != nil {
			return nil, err
		}
		pa2, err := driver.Analyze(le.Prog, nil)
		if err != nil {
			return nil, err
		}
		pa3, err := driver.Analyze(norm, nil)
		if err != nil {
			return nil, err
		}
		row := ReanalysisRow{Factor: f}
		for _, pa := range []*driver.ProgramAnalysis{pa1, pa2, pa3} {
			m := pa.Metrics
			row.Loops += m.Loops
			row.Solves += m.Solves
			row.CacheHits += m.CacheHits
			row.CacheMisses += m.CacheMisses
			if m.MaxChangedPasses > row.MaxChangedPasses {
				row.MaxChangedPasses = m.MaxChangedPasses
			}
		}
		if row.Solves > 0 {
			row.HitRate = float64(row.CacheHits) / float64(row.Solves)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReanalysisReport renders E13a.
func ReanalysisReport(rows []ReanalysisRow) string {
	var b strings.Builder
	b.WriteString("== E13a: memoized re-analysis across the unrolling pipeline ==\n")
	fmt.Fprintf(&b, "  %6s %6s %7s %6s %7s %9s %12s\n",
		"factor", "loops", "solves", "hits", "misses", "hit-rate", "max-passes")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %6d %6d %7d %6d %7d %9.2f %12d\n",
			r.Factor, r.Loops, r.Solves, r.CacheHits, r.CacheMisses, r.HitRate, r.MaxChangedPasses)
	}
	return b.String()
}

// ScheduleResult is the E13b comparison of the serial and parallel driver
// schedules on a many-loop program.
type ScheduleResult struct {
	Loops            int
	Workers          int // GOMAXPROCS-derived pool width of the parallel run
	SerialWall       time.Duration
	ParallelWall     time.Duration
	Identical        bool // rendered reports byte-identical
	MaxChangedPasses int
}

// DriverSchedule runs E13b: a 32-loop mixed-depth program analyzed with the
// serial schedule and with the wave-parallel schedule (both uncached, so
// the comparison isolates scheduling), asserting the outputs match.
func DriverSchedule() (*ScheduleResult, error) {
	prog := synth.MultiLoopProgram(synth.MultiParams{Seed: 13, Loops: 32, StmtsPer: 24, NestEvery: 4})
	serial, err := driver.Analyze(prog, &driver.Options{Parallelism: 1, DisableCache: true})
	if err != nil {
		return nil, err
	}
	parallel, err := driver.Analyze(prog, &driver.Options{DisableCache: true})
	if err != nil {
		return nil, err
	}
	return &ScheduleResult{
		Loops:            len(parallel.Loops),
		Workers:          parallel.Metrics.Parallelism,
		SerialWall:       serial.Metrics.Elapsed,
		ParallelWall:     parallel.Metrics.Elapsed,
		Identical:        serial.Report() == parallel.Report(),
		MaxChangedPasses: parallel.Metrics.MaxChangedPasses,
	}, nil
}

// Report renders E13b.
func (r *ScheduleResult) Report() string {
	var b strings.Builder
	b.WriteString("== E13b: serial vs. wave-parallel driver schedule ==\n")
	fmt.Fprintf(&b, "  loops: %d   workers: %d   max changing passes: %d (bound: 2)\n",
		r.Loops, r.Workers, r.MaxChangedPasses)
	fmt.Fprintf(&b, "  wall: serial %s, parallel %s\n",
		r.SerialWall.Round(time.Microsecond), r.ParallelWall.Round(time.Microsecond))
	fmt.Fprintf(&b, "  outputs byte-identical: %v\n", r.Identical)
	return b.String()
}

// ---------------------------------------------------------------------------
// Full report

// FullReport runs every experiment and concatenates the reports.
func FullReport() (string, error) {
	var b strings.Builder
	t1 := Table1()
	b.WriteString(t1.Report())
	b.WriteString("\n")
	b.WriteString(Fig3().Report())
	b.WriteString("\n")
	f4, err := Fig4()
	if err != nil {
		return "", err
	}
	b.WriteString(f4.Report())
	b.WriteString("\n")
	f5, err := Fig5()
	if err != nil {
		return "", err
	}
	b.WriteString(f5.Report())
	b.WriteString("\n")
	f5u, err := Fig5Unrolled()
	if err != nil {
		return "", err
	}
	b.WriteString(f5u.Report())
	b.WriteString("\n")
	f6, err := Fig6()
	if err != nil {
		return "", err
	}
	b.WriteString(f6.Report())
	b.WriteString("\n")
	f7, err := Fig7()
	if err != nil {
		return "", err
	}
	b.WriteString(f7.Report())
	b.WriteString("\n")
	b.WriteString(ConvergenceReport(Convergence([]int{5, 20, 80, 320})))
	b.WriteString("\n")
	b.WriteString(VsBaselineReport(VsBaseline([]int64{2, 4, 8, 16, 32})))
	b.WriteString("\n")
	b.WriteString(UnrollingReport(Unrolling()))
	b.WriteString("\n")
	rows, err := UnrollingReanalysis()
	if err != nil {
		return "", err
	}
	b.WriteString(ReanalysisReport(rows))
	b.WriteString("\n")
	sched, err := DriverSchedule()
	if err != nil {
		return "", err
	}
	b.WriteString(sched.Report())
	return b.String(), nil
}
