package experiments

import (
	"strings"
	"testing"
)

// TestTable1Shape: the traced run reproduces Table 1's structure and the
// 3-pass bound.
func TestTable1Shape(t *testing.T) {
	r := Table1()
	if len(r.Res.Classes) != 4 {
		t.Fatalf("classes = %d, want 4", len(r.Res.Classes))
	}
	if r.Res.ChangedPasses > 2 {
		t.Errorf("changed passes = %d, want ≤ 2", r.Res.ChangedPasses)
	}
	for _, want := range []string{"IN [1]", "OUT[5]"} {
		if !strings.Contains(r.Init, want) || !strings.Contains(r.Pass2, want) {
			t.Errorf("table rendering missing %q", want)
		}
	}
	// Pass 2's fixed point rows from the paper.
	if !strings.Contains(r.Pass2, "(2,1,_,T)") {
		t.Errorf("pass-2 fixed point rows missing (2,1,_,T):\n%s", r.Pass2)
	}
}

// TestFig3Conclusions pins the §3.5 reuse set.
func TestFig3Conclusions(t *testing.T) {
	r := Fig3()
	if len(r.Graph.Nodes) != 5 {
		t.Fatalf("graph nodes = %d, want 5", len(r.Graph.Nodes))
	}
	if len(r.Reuses) != 5 {
		t.Fatalf("reuses = %d, want 5: %v", len(r.Reuses), r.Reuses)
	}
	rep := r.Report()
	for _, want := range []string{"distance 2", "distance 1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestFig4Findings: X (0,1), Y (2,0), Z (1,1) with Z exclusive to the
// extension.
func TestFig4Findings(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	var sawZ bool
	for _, rec := range r.Recurrences {
		if rec.Array == "Z" && rec.Kind == "flow" {
			sawZ = true
			if rec.FoundBySingleLoop {
				t.Error("Z must be exclusive to the vector extension")
			}
			if rec.Vec.Outer != 1 || rec.Vec.Inner != 1 {
				t.Errorf("Z vector = %v, want (1,1)", rec.Vec)
			}
		}
	}
	if !sawZ {
		t.Fatalf("Z recurrence missing: %v", r.Recurrences)
	}
}

// TestFig5Shape: zero in-loop loads, equal semantics, cycle win.
func TestFig5Shape(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal {
		t.Fatal("pipelined semantics diverge")
	}
	if r.Conventional.Loads["A"] != 1000 {
		t.Errorf("conventional loads = %d, want 1000", r.Conventional.Loads["A"])
	}
	// Local optimization cannot remove the cross-iteration reload: exactly
	// one load of A per iteration survives.
	if r.LocalOpt.Loads["A"] != 1000 {
		t.Errorf("locally optimized loads = %d, want 1000", r.LocalOpt.Loads["A"])
	}
	if r.LocalOpt.Cycles > r.Conventional.Cycles {
		t.Errorf("local optimization made things worse: %d vs %d",
			r.LocalOpt.Cycles, r.Conventional.Cycles)
	}
	if r.Pipelined.Loads["A"] != 2 {
		t.Errorf("pipelined loads = %d, want 2", r.Pipelined.Loads["A"])
	}
	if r.Pipelined.Cycles >= r.LocalOpt.Cycles {
		t.Errorf("pipelining must beat even locally optimized code: %d vs %d",
			r.Pipelined.Cycles, r.LocalOpt.Cycles)
	}
	if r.Pipelined.Cycles >= r.Conventional.Cycles {
		t.Errorf("no cycle win: %d vs %d", r.Pipelined.Cycles, r.Conventional.Cycles)
	}
}

// TestFig5UnrolledShape: §4.1.4 — unrolling by the pipeline depth removes
// most shift moves while keeping zero steady-state loads.
func TestFig5UnrolledShape(t *testing.T) {
	r, err := Fig5Unrolled()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal {
		t.Fatal("unrolled pipeline semantics diverge")
	}
	if r.Unrolled.Loads["A"] > 2 {
		t.Errorf("unrolled loads = %d, want ≤ 2", r.Unrolled.Loads["A"])
	}
	if r.MovesPerIterUnrolled >= r.MovesPerIterPipelined/2 {
		t.Errorf("unrolling should cut moves substantially: %.2f vs %.2f",
			r.MovesPerIterUnrolled, r.MovesPerIterPipelined)
	}
}

// TestFig6Shape: ~2000 stores → 1001, semantics preserved.
func TestFig6Shape(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if !r.SemanticsOK {
		t.Fatal("semantics diverge")
	}
	if r.StoresBefore != 2000 {
		t.Errorf("stores before = %d, want 2000", r.StoresBefore)
	}
	if r.StoresAfter != 1001 {
		t.Errorf("stores after = %d, want 1001", r.StoresAfter)
	}
}

// TestFig7Shape: the conditional load disappears from the loop.
func TestFig7Shape(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if !r.SemanticsOK {
		t.Fatal("semantics diverge")
	}
	if r.LoadsAfter >= r.LoadsBefore {
		t.Errorf("loads not reduced: %d -> %d", r.LoadsBefore, r.LoadsAfter)
	}
	// Steady state: ~1000 loads before, ≤ a couple after (preheader).
	if r.LoadsBefore < 900 {
		t.Errorf("loads before = %d, want ≈1000", r.LoadsBefore)
	}
	if r.LoadsAfter > 2 {
		t.Errorf("loads after = %d, want ≤ 2", r.LoadsAfter)
	}
}

// TestConvergenceClaim: E9 across sizes.
func TestConvergenceClaim(t *testing.T) {
	rows := Convergence([]int{5, 20, 80})
	for _, r := range rows {
		if r.MustChanged > 2 {
			t.Errorf("stmts=%d: must changing passes = %d, want ≤ 2", r.Stmts, r.MustChanged)
		}
		if r.MayChanged > 2 {
			t.Errorf("stmts=%d: may changing passes = %d, want ≤ 2", r.Stmts, r.MayChanged)
		}
		// Visit bounds: init + changing + confirming passes.
		if r.MustVisits > 4*r.Nodes {
			t.Errorf("stmts=%d: must visits = %d > 4·N", r.Stmts, r.MustVisits)
		}
		if r.MayVisits > 3*r.Nodes {
			t.Errorf("stmts=%d: may visits = %d > 3·N", r.Stmts, r.MayVisits)
		}
	}
}

// TestBaselineComparisonShape: framework flat, baseline growing, truncation
// loses the fact.
func TestBaselineComparisonShape(t *testing.T) {
	rows := VsBaseline([]int64{2, 8, 32})
	for i, r := range rows {
		if r.FrameworkPasses > 2 {
			t.Errorf("d=%d: framework passes = %d", r.Distance, r.FrameworkPasses)
		}
		if !r.BaselineMissed {
			t.Errorf("d=%d: truncated baseline should miss the recurrence", r.Distance)
		}
		if i > 0 && r.BaselinePasses <= rows[i-1].BaselinePasses {
			t.Errorf("baseline passes must grow: %v", rows)
		}
	}
}

// TestUnrollingShapes: the four characteristic loops behave as predicted.
func TestUnrollingShapes(t *testing.T) {
	rows := Unrolling()
	byName := map[string]UnrollRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["parallel (dist 2)"]; r.Factor < 2 || r.L2 != r.L {
		t.Errorf("parallel loop: %+v", r)
	}
	if r := byName["serial (dist 1)"]; r.Factor != 1 || r.L4 != 4*r.L {
		t.Errorf("serial loop: %+v", r)
	}
	if r := byName["wide independent"]; r.SpeedShape > 0.3 {
		t.Errorf("wide loop should be near fully parallel: %+v", r)
	}
	if r := byName["chain of 4, carried"]; r.L4 != 4*r.L {
		t.Errorf("carried chain must serialize: %+v", r)
	}
}

// TestFullReportRuns: the aggregate report mentions every experiment.
func TestFullReportRuns(t *testing.T) {
	rep, err := FullReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1", "E2", "E3", "E5", "E6", "E7", "E8", "E9", "E10", "E12"} {
		if !strings.Contains(rep, "== "+want) {
			t.Errorf("report missing section %s", want)
		}
	}
}

// TestUnrollingReanalysisHitsCache: the acceptance check that the memoizing
// driver reports a positive cache hit rate on the unrolling pipeline, with
// the paper's pass bound intact.
func TestUnrollingReanalysisHitsCache(t *testing.T) {
	rows, err := UnrollingReanalysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.HitRate <= 0 {
			t.Errorf("factor %d: hit rate %.2f, want > 0 (%+v)", r.Factor, r.HitRate, r)
		}
		if r.MaxChangedPasses > 2 {
			t.Errorf("factor %d: %d changing passes violates the bound", r.Factor, r.MaxChangedPasses)
		}
	}
	if !strings.Contains(ReanalysisReport(rows), "hit-rate") {
		t.Error("report missing hit-rate column")
	}
}

// TestDriverScheduleIdentical: the parallel schedule must render the same
// bytes as the serial one.
func TestDriverScheduleIdentical(t *testing.T) {
	r, err := DriverSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatal("serial and parallel outputs diverged")
	}
	if r.Loops != 40 {
		t.Errorf("loops = %d, want 40 (32 top-level + 8 nest inners)", r.Loops)
	}
	if r.MaxChangedPasses > 2 {
		t.Errorf("pass bound violated: %d", r.MaxChangedPasses)
	}
}
