package goimport

import (
	goast "go/ast"
	gotoken "go/token"
	"go/types"
)

// aliasSets is a union-find over the slice-typed objects of one function.
// Two slices land in the same class when an assignment, declaration, or
// append inside the function derives one from the other (b := a,
// b := a[lo:hi], b = append(a, x)); such pairs provably may share a
// backing array, which violates the front end's Fortran-style distinct-
// names-don't-alias lowering. Slices with no derivation link (e.g. two
// formal parameters) stay in distinct classes — that residual no-alias
// assumption is documented, not checked, exactly as the paper treats
// formal array parameters.
type aliasSets struct {
	parent map[types.Object]types.Object
}

func (a *aliasSets) find(o types.Object) types.Object {
	p, ok := a.parent[o]
	if !ok {
		a.parent[o] = o
		return o
	}
	if p == o {
		return o
	}
	root := a.find(p)
	a.parent[o] = root
	return root
}

func (a *aliasSets) union(x, y types.Object) {
	rx, ry := a.find(x), a.find(y)
	if rx != ry {
		a.parent[rx] = ry
	}
}

// same reports whether two objects were linked by a derivation chain.
func (a *aliasSets) same(x, y types.Object) bool {
	if _, ok := a.parent[x]; !ok {
		return false
	}
	if _, ok := a.parent[y]; !ok {
		return false
	}
	return a.find(x) == a.find(y)
}

// buildAliasSets scans a function body once and links every slice-typed
// assignment target with the slice-typed identifiers its right-hand side
// mentions.
func buildAliasSets(fn *goast.FuncDecl, info *types.Info) *aliasSets {
	a := &aliasSets{parent: map[types.Object]types.Object{}}
	sliceObjs := func(e goast.Expr) []types.Object {
		var out []types.Object
		goast.Inspect(e, func(n goast.Node) bool {
			id, ok := n.(*goast.Ident)
			if !ok || info == nil {
				return true
			}
			obj := info.ObjectOf(id)
			if obj == nil || obj.Type() == nil {
				return true
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				out = append(out, obj)
			}
			return true
		})
		return out
	}
	link := func(lhs goast.Expr, rhs goast.Expr) {
		// Only an assignment whose target is itself slice-typed copies a
		// slice header; element assignments (a[i] = b[j]) move values, not
		// backing arrays.
		if info == nil {
			return
		}
		lt := info.TypeOf(lhs)
		if lt == nil {
			return
		}
		if _, isSlice := lt.Underlying().(*types.Slice); !isSlice {
			return
		}
		targets := sliceObjs(lhs)
		if len(targets) == 0 {
			return
		}
		sources := sliceObjs(rhs)
		for _, t := range targets {
			for _, s := range sources {
				if t != s {
					a.union(t, s)
				}
			}
		}
	}
	goast.Inspect(fn.Body, func(n goast.Node) bool {
		switch st := n.(type) {
		case *goast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					link(st.Lhs[i], st.Rhs[i])
				}
			} else {
				// n := m form (multi-value rhs): link every target with
				// every source, conservatively.
				for _, lhs := range st.Lhs {
					for _, rhs := range st.Rhs {
						link(lhs, rhs)
					}
				}
			}
		case *goast.GenDecl:
			if st.Tok != gotoken.VAR {
				return true
			}
			for _, spec := range st.Specs {
				vs, ok := spec.(*goast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						link(name, vs.Values[i])
					} else if len(vs.Values) == 1 {
						link(name, vs.Values[0])
					}
				}
			}
		}
		return true
	})
	return a
}
