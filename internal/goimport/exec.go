// Differential testing of the lowering: every lowered unit retains its
// original go/ast loop, so the same seeded initial memory can be run both
// through the mini-language interpreter (on the lowered program) and
// through a direct Go-subset evaluator (on the original loop). Agreement
// of the final memories — modulo the +1 subscript shift — is the lowering
// correctness oracle cmd/corpus and the tests sample.
package goimport

import (
	"fmt"
	goast "go/ast"
	"go/constant"
	gotoken "go/token"
	"go/types"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/interp"
)

// DiffStatus classifies one differential run.
type DiffStatus string

const (
	// DiffMatch: both executions ran to completion with identical final
	// memories.
	DiffMatch DiffStatus = "match"
	// DiffMismatch: both ran, memories differ — a lowering bug.
	DiffMismatch DiffStatus = "mismatch"
	// DiffError: one side failed to run (division by zero, step cap).
	DiffError DiffStatus = "error"
	// DiffSkipped: the unit uses integer types narrower than 64 bits,
	// whose overflow semantics the mini-language does not model.
	DiffSkipped DiffStatus = "skipped"
)

// DiffResult reports one seeded differential execution.
type DiffResult struct {
	Status DiffStatus
	// Detail explains mismatches, errors, and skips.
	Detail string
}

// diffMaxSteps bounds both executions. Lowered loops have constant
// nonzero steps, so they terminate; the cap only bounds pathological
// iteration counts from large synthesized bounds.
const diffMaxSteps = 500_000

// Differential executes u's lowered program and its original Go loop from
// the same seeded initial memory and compares the final memories.
func Differential(u *Unit, seed int64) DiffResult {
	if reason := ineligible(u); reason != "" {
		return DiffResult{Status: DiffSkipped, Detail: reason}
	}
	rng := rand.New(rand.NewSource(seed))

	// Synthesize per-array shapes (slice lengths drawn small), then the
	// initial memories: the mini side keys elements 1-based, the Go side
	// 0-based, with identical values.
	lens := map[string]int64{}
	init := interp.NewState()
	ge := &goEval{
		u:       u,
		scalars: map[string]int64{},
		arrays:  map[string]map[string]int64{},
		lens:    lens,
		max:     diffMaxSteps,
	}
	for _, name := range sortedKeys(u.Arrays) {
		ai := u.Arrays[name]
		shape := ai.Shape
		if len(shape) == 0 {
			// len-only slice: rank unknown, elements never touched.
			shape = []int64{-1}
		}
		concrete := make([]int64, len(shape))
		for k, d := range shape {
			if d < 0 {
				concrete[k] = 4 + rng.Int63n(6)
			} else {
				concrete[k] = d
			}
		}
		lens[name] = concrete[0]
		mini := map[string]int64{}
		gom := map[string]int64{}
		fillCells(concrete, nil, func(idx []int64) {
			v := rng.Int63n(21) - 10
			mini[cellKey(idx, 1)] = v
			gom[cellKey(idx, 0)] = v
		})
		init.Arrays[name] = mini
		ge.arrays[name] = gom
	}
	for _, name := range sortedKeys(u.Scalars) {
		si := u.Scalars[name]
		var v int64
		if si.LenOf != "" {
			v = lens[si.LenOf]
		} else {
			v = rng.Int63n(8)
		}
		init.Scalars[name] = v
		ge.scalars[name] = v
	}

	final, _, err := interp.Run(u.Program, init, &interp.Options{MaxSteps: diffMaxSteps})
	goErr := ge.stmt(u.GoLoop)
	if err != nil || goErr != nil {
		return DiffResult{Status: DiffError, Detail: fmt.Sprintf("interp: %v; go: %v", err, goErr)}
	}

	// Compare scalars the unit knows about (the evaluator scopes loop
	// variables exactly as the interpreter restores them).
	for _, name := range sortedKeys(u.Scalars) {
		if final.Scalars[name] != ge.scalars[name] {
			return DiffResult{Status: DiffMismatch,
				Detail: fmt.Sprintf("scalar %s: interp %d, go %d", name, final.Scalars[name], ge.scalars[name])}
		}
	}
	// Compare arrays under the inverse shift: mini cell (i1,...,in) holds
	// Go cell (i1-1,...,in-1).
	for _, name := range sortedKeys(u.Arrays) {
		miniArr := final.Arrays[name]
		goArr := ge.arrays[name]
		shifted := map[string]int64{}
		for k, v := range goArr {
			shifted[shiftKey(k, +1)] = v
		}
		keys := map[string]bool{}
		for k := range miniArr {
			keys[k] = true
		}
		for k := range shifted {
			keys[k] = true
		}
		for k := range keys {
			if miniArr[k] != shifted[k] {
				return DiffResult{Status: DiffMismatch,
					Detail: fmt.Sprintf("array %s[%s]: interp %d, go %d", name, k, miniArr[k], shifted[k])}
			}
		}
	}
	return DiffResult{Status: DiffMatch}
}

// ineligible reports why a unit cannot be differentially executed: the
// mini-language computes in int64, so any narrower (or unsigned 64-bit)
// Go integer type could diverge on overflow.
func ineligible(u *Unit) string {
	reason := ""
	wide := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		if !ok {
			return false
		}
		switch b.Kind() {
		case types.Int, types.Int64, types.UntypedInt:
			return true
		}
		return false
	}
	goast.Inspect(u.GoLoop, func(n goast.Node) bool {
		if reason != "" {
			return false
		}
		id, ok := n.(*goast.Ident)
		if !ok || u.info == nil {
			return true
		}
		obj := u.info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, tracked := u.names[obj]; !tracked {
			return true
		}
		t := obj.Type()
		if isInteger(t) && !wide(t) {
			reason = fmt.Sprintf("variable %s has %s-bit semantics the mini-language does not model", id.Name, t)
			return false
		}
		if dims, elem, ok := elemStructure(t, rankOf(u, obj)); ok && len(dims) > 0 {
			if isInteger(elem) && !wide(elem) {
				reason = fmt.Sprintf("array %s has %s elements", id.Name, elem)
				return false
			}
		}
		return true
	})
	return reason
}

func rankOf(u *Unit, obj types.Object) int {
	name, ok := u.names[obj]
	if !ok {
		return 0
	}
	if ai, ok := u.Arrays[name]; ok {
		return ai.Rank
	}
	return 0
}

// fillCells enumerates every cell of a concrete shape.
func fillCells(shape []int64, prefix []int64, f func(idx []int64)) {
	if len(shape) == 0 {
		f(prefix)
		return
	}
	for i := int64(0); i < shape[0]; i++ {
		fillCells(shape[1:], append(prefix, i), f)
	}
}

// cellKey renders a 0-based index tuple in the interpreter's element-key
// format, shifted by base.
func cellKey(idx []int64, base int64) string {
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = strconv.FormatInt(v+base, 10)
	}
	return strings.Join(parts, ",")
}

// shiftKey shifts every component of an element key by delta.
func shiftKey(key string, delta int64) string {
	parts := strings.Split(key, ",")
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return key
		}
		parts[i] = strconv.FormatInt(v+delta, 10)
	}
	return strings.Join(parts, ",")
}

// goEval is a direct evaluator for the lowered Go subset. State is keyed
// by the unit's mini names so the final memories compare directly.
type goEval struct {
	u       *Unit
	scalars map[string]int64
	arrays  map[string]map[string]int64
	lens    map[string]int64
	steps   int64
	max     int64
}

func (g *goEval) tick() error {
	g.steps++
	if g.steps > g.max {
		return fmt.Errorf("go evaluation exceeded %d steps", g.max)
	}
	return nil
}

func (g *goEval) nameOf(id *goast.Ident) (string, error) {
	obj := g.u.info.ObjectOf(id)
	if obj == nil {
		return "", fmt.Errorf("unresolved identifier %s", id.Name)
	}
	name, ok := g.u.names[obj]
	if !ok {
		return "", fmt.Errorf("identifier %s not tracked by the lowering", id.Name)
	}
	return name, nil
}

func (g *goEval) stmt(s goast.Stmt) error {
	if err := g.tick(); err != nil {
		return err
	}
	switch st := s.(type) {
	case *goast.BlockStmt:
		return g.block(st.List)
	case *goast.ForStmt:
		return g.forStmt(st)
	case *goast.RangeStmt:
		return g.rangeStmt(st)
	case *goast.AssignStmt:
		return g.assign(st)
	case *goast.IncDecStmt:
		delta := int64(1)
		if st.Tok == gotoken.DEC {
			delta = -1
		}
		v, err := g.expr(st.X)
		if err != nil {
			return err
		}
		return g.store(st.X, v+delta)
	case *goast.IfStmt:
		cond, err := g.cond(st.Cond)
		if err != nil {
			return err
		}
		if cond {
			return g.block(st.Body.List)
		}
		if st.Else != nil {
			return g.stmt(st.Else)
		}
		return nil
	case *goast.DeclStmt:
		gd := st.Decl.(*goast.GenDecl)
		for _, spec := range gd.Specs {
			vs := spec.(*goast.ValueSpec)
			for i, name := range vs.Names {
				var v int64
				if i < len(vs.Values) {
					var err error
					v, err = g.expr(vs.Values[i])
					if err != nil {
						return err
					}
				}
				mini, err := g.nameOf(name)
				if err != nil {
					return err
				}
				g.scalars[mini] = v
			}
		}
		return nil
	case *goast.EmptyStmt:
		return nil
	}
	return fmt.Errorf("unexpected statement %T in lowered loop", s)
}

func (g *goEval) block(stmts []goast.Stmt) error {
	for _, s := range stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

// scoped runs body with the loop variable's scalar slot saved and
// restored, matching both Go scoping and the interpreter's restoration of
// induction variables.
func (g *goEval) scoped(mini string, body func() error) error {
	saved, had := g.scalars[mini]
	err := body()
	if had {
		g.scalars[mini] = saved
	} else {
		delete(g.scalars, mini)
	}
	return err
}

func (g *goEval) forStmt(st *goast.ForStmt) error {
	init := st.Init.(*goast.AssignStmt)
	ivIdent := init.Lhs[0].(*goast.Ident)
	mini, err := g.nameOf(ivIdent)
	if err != nil {
		return err
	}
	return g.scoped(mini, func() error {
		v, err := g.expr(init.Rhs[0])
		if err != nil {
			return err
		}
		g.scalars[mini] = v
		for {
			if err := g.tick(); err != nil {
				return err
			}
			cont, err := g.cond(st.Cond)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
			if err := g.block(st.Body.List); err != nil {
				return err
			}
			switch p := st.Post.(type) {
			case *goast.IncDecStmt:
				if p.Tok == gotoken.INC {
					g.scalars[mini]++
				} else {
					g.scalars[mini]--
				}
			case *goast.AssignStmt:
				c, err := g.expr(p.Rhs[0])
				if err != nil {
					return err
				}
				if p.Tok == gotoken.ADD_ASSIGN {
					g.scalars[mini] += c
				} else {
					g.scalars[mini] -= c
				}
			}
		}
	})
}

func (g *goEval) rangeStmt(st *goast.RangeStmt) error {
	ivIdent := st.Key.(*goast.Ident)
	ivMini := ""
	if ivIdent.Name != "_" {
		var err error
		ivMini, err = g.nameOf(ivIdent)
		if err != nil {
			return err
		}
	}
	var n int64
	var err error
	var arrMini string
	rt := typeOf(g.u.info, st.X)
	if isInteger(rt) {
		n, err = g.expr(st.X)
		if err != nil {
			return err
		}
	} else {
		id := goast.Unparen(st.X).(*goast.Ident)
		n, err = g.lenOf(id)
		if err != nil {
			return err
		}
		arrMini, err = g.nameOf(id)
		if err != nil {
			return err
		}
	}
	// The element copy of `for i, v := range s`: v is assigned at each
	// iteration start and keeps its last value after the loop, exactly
	// like the lowered body-leading `v := s[i+1]`.
	vMini := ""
	if st.Value != nil {
		if vIdent, ok := st.Value.(*goast.Ident); ok && vIdent.Name != "_" {
			vMini, err = g.nameOf(vIdent)
			if err != nil {
				return err
			}
		}
	}
	run := func() error {
		for i := int64(0); i < n; i++ {
			if err := g.tick(); err != nil {
				return err
			}
			if ivMini != "" {
				g.scalars[ivMini] = i
			}
			if vMini != "" {
				g.scalars[vMini] = g.arrays[arrMini][cellKey([]int64{i}, 0)]
			}
			if err := g.block(st.Body.List); err != nil {
				return err
			}
		}
		return nil
	}
	if ivMini == "" {
		return run()
	}
	return g.scoped(ivMini, run)
}

func (g *goEval) assign(st *goast.AssignStmt) error {
	rhs, err := g.expr(st.Rhs[0])
	if err != nil {
		return err
	}
	switch st.Tok {
	case gotoken.ASSIGN, gotoken.DEFINE:
		return g.store(st.Lhs[0], rhs)
	}
	cur, err := g.expr(st.Lhs[0])
	if err != nil {
		return err
	}
	var v int64
	switch st.Tok {
	case gotoken.ADD_ASSIGN:
		v = cur + rhs
	case gotoken.SUB_ASSIGN:
		v = cur - rhs
	case gotoken.MUL_ASSIGN:
		v = cur * rhs
	case gotoken.QUO_ASSIGN:
		if rhs == 0 {
			return fmt.Errorf("division by zero")
		}
		v = cur / rhs
	case gotoken.REM_ASSIGN:
		if rhs == 0 {
			return fmt.Errorf("division by zero")
		}
		v = cur % rhs
	default:
		return fmt.Errorf("unexpected assignment operator %s", st.Tok)
	}
	return g.store(st.Lhs[0], v)
}

func (g *goEval) store(lhs goast.Expr, v int64) error {
	switch x := goast.Unparen(lhs).(type) {
	case *goast.Ident:
		mini, err := g.nameOf(x)
		if err != nil {
			return err
		}
		g.scalars[mini] = v
		return nil
	case *goast.IndexExpr:
		name, key, err := g.ref(x)
		if err != nil {
			return err
		}
		arr := g.arrays[name]
		if arr == nil {
			arr = map[string]int64{}
			g.arrays[name] = arr
		}
		arr[key] = v
		return nil
	}
	return fmt.Errorf("unexpected assignment target %T", lhs)
}

// ref resolves a (nested) index expression to (mini array name, 0-based
// element key).
func (g *goEval) ref(e *goast.IndexExpr) (string, string, error) {
	var subs []goast.Expr
	base := goast.Expr(e)
	for {
		ix, ok := goast.Unparen(base).(*goast.IndexExpr)
		if !ok {
			break
		}
		subs = append([]goast.Expr{ix.Index}, subs...)
		base = ix.X
	}
	id, ok := goast.Unparen(base).(*goast.Ident)
	if !ok {
		return "", "", fmt.Errorf("unexpected index base %T", base)
	}
	name, err := g.nameOf(id)
	if err != nil {
		return "", "", err
	}
	idx := make([]int64, len(subs))
	for i, sub := range subs {
		v, err := g.expr(sub)
		if err != nil {
			return "", "", err
		}
		idx[i] = v
	}
	return name, cellKey(idx, 0), nil
}

func (g *goEval) expr(e goast.Expr) (int64, error) {
	e = goast.Unparen(e)
	if g.u.info != nil {
		if tv, ok := g.u.info.Types[e]; ok && tv.Value != nil {
			if v, exact := constIntValue(tv); exact {
				return v, nil
			}
		}
	}
	switch x := e.(type) {
	case *goast.Ident:
		mini, err := g.nameOf(x)
		if err != nil {
			return 0, err
		}
		return g.scalars[mini], nil
	case *goast.BinaryExpr:
		l, err := g.expr(x.X)
		if err != nil {
			return 0, err
		}
		r, err := g.expr(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case gotoken.ADD:
			return l + r, nil
		case gotoken.SUB:
			return l - r, nil
		case gotoken.MUL:
			return l * r, nil
		case gotoken.QUO:
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return l / r, nil
		case gotoken.REM:
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return l % r, nil
		}
		return 0, fmt.Errorf("unexpected operator %s", x.Op)
	case *goast.UnaryExpr:
		v, err := g.expr(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case gotoken.SUB:
			return -v, nil
		case gotoken.ADD:
			return v, nil
		}
		return 0, fmt.Errorf("unexpected unary operator %s", x.Op)
	case *goast.IndexExpr:
		name, key, err := g.ref(x)
		if err != nil {
			return 0, err
		}
		return g.arrays[name][key], nil
	case *goast.CallExpr:
		id, ok := goast.Unparen(x.Args[0]).(*goast.Ident)
		if !ok {
			return 0, fmt.Errorf("unexpected len operand")
		}
		return g.lenOf(id)
	}
	return 0, fmt.Errorf("unexpected expression %T", e)
}

// lenOf yields len(id): the constant for arrays, the synthesized length
// for slices.
func (g *goEval) lenOf(id *goast.Ident) (int64, error) {
	obj := g.u.info.ObjectOf(id)
	if obj == nil {
		return 0, fmt.Errorf("unresolved len operand %s", id.Name)
	}
	t := obj.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return arr.Len(), nil
	}
	name, err := g.nameOf(id)
	if err != nil {
		return 0, err
	}
	n, ok := g.lens[name]
	if !ok {
		return 0, fmt.Errorf("no synthesized length for %s", id.Name)
	}
	return n, nil
}

func (g *goEval) cond(e goast.Expr) (bool, error) {
	switch x := goast.Unparen(e).(type) {
	case *goast.BinaryExpr:
		switch x.Op {
		case gotoken.LAND:
			l, err := g.cond(x.X)
			if err != nil || !l {
				return false, err
			}
			return g.cond(x.Y)
		case gotoken.LOR:
			l, err := g.cond(x.X)
			if err != nil || l {
				return l, err
			}
			return g.cond(x.Y)
		}
		l, err := g.expr(x.X)
		if err != nil {
			return false, err
		}
		r, err := g.expr(x.Y)
		if err != nil {
			return false, err
		}
		switch x.Op {
		case gotoken.EQL:
			return l == r, nil
		case gotoken.NEQ:
			return l != r, nil
		case gotoken.LSS:
			return l < r, nil
		case gotoken.LEQ:
			return l <= r, nil
		case gotoken.GTR:
			return l > r, nil
		case gotoken.GEQ:
			return l >= r, nil
		}
		return false, fmt.Errorf("unexpected comparison %s", x.Op)
	case *goast.UnaryExpr:
		if x.Op == gotoken.NOT {
			v, err := g.cond(x.X)
			return !v, err
		}
	}
	return false, fmt.Errorf("unexpected condition %T", e)
}

// constIntValue extracts an exact int64 from a constant TypeAndValue.
func constIntValue(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
