package goimport

import (
	"testing"
)

// TestDifferentialKernels runs seeded differential execution over every
// unit lowered from the checked-in examples/go corpus: the mini program
// interpreted by internal/interp must compute the same final state as the
// original Go loop on identical random inputs. This is the acceptance
// gate that the lowering (bounds, +1 subscript shift, value bindings,
// negative steps) is semantics-preserving.
func TestDifferentialKernels(t *testing.T) {
	res, err := ImportTree("../../examples/go", false)
	if err != nil {
		t.Fatal(err)
	}
	units := res.Units()
	if len(units) < 10 {
		t.Fatalf("only %d units in the kernels corpus", len(units))
	}
	match := 0
	for i, u := range units {
		for _, seed := range []int64{1, 42} {
			d := Differential(u, seed+int64(i))
			switch d.Status {
			case DiffMatch:
				match++
			case DiffMismatch, DiffError:
				t.Errorf("%s:%d (%s) seed %d: %s: %s", u.File, u.Pos.Line, u.Func, seed+int64(i), d.Status, d.Detail)
			}
		}
	}
	if match < 10 {
		t.Errorf("only %d differential matches, want >= 10", match)
	}
}

// TestDifferentialDeterminism checks the same (unit, seed) pair always
// synthesizes the same inputs and reaches the same outcome.
func TestDifferentialDeterminism(t *testing.T) {
	res := importSrc(t, `package p
func F(a, b []int, n int) {
	for i := 1; i < n; i++ {
		a[i] = a[i-1] + b[i]
	}
}`)
	units := res.Units()
	if len(units) != 1 {
		t.Fatalf("got %d units", len(units))
	}
	first := Differential(units[0], 7)
	if first.Status != DiffMatch {
		t.Fatalf("differential: %s: %s", first.Status, first.Detail)
	}
	for run := 0; run < 5; run++ {
		if d := Differential(units[0], 7); d != first {
			t.Fatalf("run %d: %+v != %+v", run, d, first)
		}
	}
}

// TestDifferentialSkipsNarrowInts checks units over integer types with
// overflow semantics the mini interpreter does not model (int8, uint8, …)
// are skipped, not falsely matched or mismatched.
func TestDifferentialSkipsNarrowInts(t *testing.T) {
	res := importSrc(t, `package p
func F(a []int8, n int) {
	for i := 0; i < n; i++ {
		a[i] = a[i] + 1
	}
}`)
	units := res.Units()
	if len(units) != 1 {
		t.Fatalf("got %d units (int8 elements should lower; verdicts are width-independent)", len(units))
	}
	if d := Differential(units[0], 1); d.Status != DiffSkipped {
		t.Fatalf("differential over int8: %s, want skipped", d.Status)
	}
}

// TestDifferentialCoversForms spot-checks the trickiest lowering shapes
// one by one so a regression names the failing form directly.
func TestDifferentialCoversForms(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"downward", `package p
func F(a []int, n int) {
	for i := n - 1; i >= 0; i-- {
		a[i] = a[i] + i
	}
}`},
		{"strided", `package p
func F(a []int, n int) {
	for i := 0; i < n; i += 2 {
		a[i] = 2 * a[i]
	}
}`},
		{"range value binding", `package p
func F(a []int) int {
	s := 0
	for _, v := range a {
		s = s + v
	}
	return s
}`},
		{"nested 2d", `package p
func F(m *[5][5]int) {
	for i := 1; i < 5; i++ {
		for j := 1; j < 5; j++ {
			m[i][j] = m[i-1][j] + m[i][j-1]
		}
	}
}`},
		{"triangular", `package p
func F(m *[6][6]int) {
	for i := 0; i < 6; i++ {
		for j := 0; j <= i; j++ {
			m[i][j] = i + j
		}
	}
}`},
		{"len bound", `package p
func F(a, b []int) {
	for i := 0; i < len(a); i++ {
		a[i] = b[i] + 1
	}
}`},
		{"conditional", `package p
func F(a, b []int, n, t int) {
	for i := 0; i < n; i++ {
		if b[i] > t {
			a[i] = b[i]
		} else {
			a[i] = t
		}
	}
}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := importSrc(t, tc.src)
			units := res.Units()
			if len(units) != 1 {
				t.Fatalf("got %d units; findings: %v", len(units), res.Findings())
			}
			for seed := int64(1); seed <= 8; seed++ {
				if d := Differential(units[0], seed); d.Status != DiffMatch {
					t.Fatalf("seed %d: %s: %s", seed, d.Status, d.Detail)
				}
			}
		})
	}
}
