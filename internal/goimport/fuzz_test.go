package goimport

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// FuzzGoImportLower feeds arbitrary Go source through the importer and
// enforces the front-end contract: it never panics, every lowered unit
// renders to mini-language text that re-parses, and every loop that does
// not lower is accounted for by a positioned finding — no loop is silently
// dropped.
func FuzzGoImportLower(f *testing.F) {
	seeds := []string{
		`package p
func Saxpy(a, b []int, s int) {
	for i := 0; i < len(a); i++ {
		a[i] = a[i] + s*b[i]
	}
}`,
		`package p
func Down(a []int, n int) {
	for i := n - 1; i >= 0; i-- {
		a[i] = 0
	}
}`,
		`package p
func Nest(m *[4][4]int) {
	for i := 0; i < 4; i++ {
		for j := 0; j <= i; j++ {
			m[i][j] = i + j
		}
	}
}`,
		`package p
func Range(a []int) int {
	s := 0
	for _, v := range a {
		s = s + v
	}
	return s
}`,
		`package p
func Blocked(a []int, n int) {
	for i := 0; i < n; i++ {
		if a[i] > 0 {
			break
		}
	}
}`,
		`package p
func ShiftBound(a []int) {
	for i := 0; i+1 < len(a); i++ {
		a[i] = a[i+1]
	}
}`,
		`package p
func NegShift(a []int, n int) {
	for i := 1; i-1 < n; i++ {
		a[i-1] = a[i-1] + 1
	}
}`,
		`package p
func Headless() {
	for {
	}
}`,
		`package p
func Map(m map[int]int) {
	for k := range m {
		_ = k
	}
}`,
		`package p; func F(do []int) { for i := range do { do[i] = i } }`,
		`package p; func F(a []int, n int) { for i := 0; i < n; i += 0 { a[i] = 0 } }`,
		`package p; func F() { x := unresolved; _ = x }`,
		`package p; var x = `,
		`not go at all`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := ImportSource("fuzz.go", []byte(src))
		if err != nil {
			// Unparseable input: the only error path, and it must carry a
			// renderable message.
			if err.Error() == "" {
				t.Fatal("parse error with empty message")
			}
			return
		}
		for _, fr := range res.Files {
			for _, f := range fr.Findings {
				if f.Message == "" {
					t.Fatalf("finding with empty message: %+v", f)
				}
				if f.Pos.Line < 0 || f.Pos.Col < 0 {
					t.Fatalf("finding with negative position: %+v", f)
				}
			}
		}
		for _, u := range res.Units() {
			if u.Loops < 1 {
				t.Fatalf("unit %s reports %d loops", u.Func, u.Loops)
			}
			text := ast.ProgramString(u.Program)
			prog, err := parser.Parse(text)
			if err != nil {
				t.Fatalf("lowered unit %s does not re-parse: %v\n%s", u.Func, err, text)
			}
			// The re-parsed program must contain the same loop count.
			loops := 0
			var walk func(ss []ast.Stmt)
			walk = func(ss []ast.Stmt) {
				for _, s := range ss {
					if dl, ok := s.(*ast.DoLoop); ok {
						loops++
						walk(dl.Body)
					} else if ifs, ok := s.(*ast.If); ok {
						walk(ifs.Then)
						walk(ifs.Else)
					}
				}
			}
			walk(prog.Body)
			if loops != u.Loops {
				t.Fatalf("unit %s: %d loops lowered, %d after round-trip\n%s", u.Func, u.Loops, loops, text)
			}
		}
	})
}

// TestFuzzSeedsDirect replays the seed corpus as a plain test so the
// contract is exercised on every `go test` run, not just under -fuzz.
func TestFuzzSeedsDirect(t *testing.T) {
	srcs := []string{
		"package p\nfunc F(a []int) {\n\tfor i := range a {\n\t\ta[i] = i\n\t}\n}\n",
		"package p\nfunc F() {\n\tfor {\n\t}\n}\n",
		"package p\nvar broken = \n",
		strings.Repeat("for", 100),
	}
	for _, src := range srcs {
		res, err := ImportSource("t.go", []byte(src))
		if err != nil {
			continue
		}
		for _, u := range res.Units() {
			if _, err := parser.Parse(ast.ProgramString(u.Program)); err != nil {
				t.Errorf("unit does not re-parse: %v", err)
			}
		}
	}
}
