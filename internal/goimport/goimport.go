// Package goimport is the Go front end of the framework: it walks real Go
// source with go/ast and go/types, recognizes canonical counted loops
//
//	for i := lo; i < hi; i++ { ... a[i+k] ... }
//
// (including <=, >, >=, constant += / -= steps, index-only range loops, and
// nested canonical loops), and lowers each loop nest into the mini-language
// AST the PLDI'93 solver consumes. Dim declarations come from constant
// go/types array lengths; slices stay undeclared (unknown bounds). Every
// lowered node carries the original go/token position translated to the
// mini token.Pos, so diagnostics and SARIF output point at the real .go
// file and line.
//
// The importer is deliberately partial, and loudly so: a loop it cannot
// lower — calls with side effects, subslice aliasing, non-affine
// subscripts, break/continue/goto, shadowed identifiers, and the rest of
// the table in ARCHITECTURE.md — is never silently dropped. It yields a
// positioned "goimport" finding naming the first blocking construct, which
// makes the extraction rate itself a measurable quantity (cmd/corpus
// reports the blocker histogram next to the verdict distribution).
//
// Go slices are lowered under the paper's Fortran-style no-alias
// assumption for distinct names; the importer refutes the easy violations
// (a subslice or slice-header copy of another slice used in the same loop
// is a blocker) and documents the rest as an assumption, matching how the
// original framework treats formal array parameters.
//
// Index mapping: the mini-language is 1-based (dim A[n] declares 1..n)
// while Go is 0-based, so every lowered subscript is shifted by +1. The
// shift is affine, so distances, dependence classes, and verdicts are
// unaffected; the differential harness (exec.go) applies the inverse shift
// when comparing interpreter memories against direct Go-side evaluation.
package goimport

import (
	"fmt"
	goast "go/ast"
	gotoken "go/token"
	"go/types"
	"sort"

	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/token"
)

// Analyzer is the reserved diagnostic ID for importer findings (blocked
// loops, unreadable files).
const Analyzer = "goimport"

// Unit is one successfully lowered loop nest: a self-contained
// mini-language program (dim declarations followed by a single top-level
// DO loop) plus the bookkeeping needed to point back at — and re-execute —
// the original Go code.
type Unit struct {
	// File is the module-root-relative path of the source file.
	File string
	// Func is the enclosing function (or method) name.
	Func string
	// Pos is the mini-language position of the loop header, i.e. the real
	// go/token line and column of the `for`.
	Pos token.Pos
	// Program is the lowered program: dims, then the loop nest. It has
	// passed sema.CheckAll but is NOT normalized (callers normalize before
	// analysis so positions survive the canonical pipeline).
	Program *ast.Program
	// Loop is the top-level lowered loop inside Program.
	Loop *ast.DoLoop
	// Loops counts the DO loops in the nest (1 for a flat loop).
	Loops int
	// GoLoop is the original Go loop statement, retained for the
	// differential evaluator.
	GoLoop goast.Stmt
	// Arrays maps mini array names to their lowering facts; Scalars maps
	// mini scalar names (bound lengths included) to theirs.
	Arrays  map[string]*ArrayInfo
	Scalars map[string]*ScalarInfo
	// fset resolves go positions for the evaluator's error messages.
	fset *gotoken.FileSet
	// info and names let the differential evaluator (exec.go) resolve the
	// original Go identifiers to the same mini names the lowering chose.
	info  *types.Info
	names map[types.Object]string
}

// ArrayInfo records how one Go slice/array lowered.
type ArrayInfo struct {
	// GoName is the original identifier spelling.
	GoName string
	// Dims holds the constant per-dimension lengths for true arrays
	// ([4][8]int and friends); nil for slices (unknown bounds).
	Dims []int64
	// Shape is the full per-dimension structure: the constant length for
	// array levels, -1 for the (outermost) slice level. Equal to Dims for
	// true arrays; present even when Dims is nil.
	Shape []int64
	// Rank is the subscript count used in the loop.
	Rank int
}

// ScalarInfo records how one Go integer scalar lowered.
type ScalarInfo struct {
	GoName string
	// LenOf, when non-empty, marks a synthesized loop-bound scalar standing
	// for len(<mini array name>) of a slice; the differential harness binds
	// it to the synthesized slice length.
	LenOf string
}

// Blocked is the structured "why this loop did not lower" error. It
// converts to a positioned goimport finding.
type Blocked struct {
	Pos       token.Pos
	Construct string // short machine-usable name, e.g. "call", "range-over-map"
	Detail    string // human sentence naming the construct
}

func (b *Blocked) Error() string { return fmt.Sprintf("%s: %s", b.Construct, b.Detail) }

// FileResult is the import outcome for one source file.
type FileResult struct {
	// File is the module-root-relative path.
	File string
	// Units are the lowered loop nests in source order.
	Units []*Unit
	// Findings are the positioned blocker findings (analyzer "goimport"),
	// one per unextractable top-level loop, in source order.
	Findings []diag.Finding
	// Funcs counts the function declarations visited; LoopsSeen counts the
	// candidate loop statements considered (top-level loops plus the inner
	// loops of blocked ones).
	Funcs     int
	LoopsSeen int
}

// Result aggregates FileResults across an import tree.
type Result struct {
	// Root is the directory the import started from; Module is the module
	// root every File path is relative to.
	Root   string
	Module string
	Files  []*FileResult
}

// Units flattens the per-file units in deterministic (file, position)
// order.
func (r *Result) Units() []*Unit {
	var out []*Unit
	for _, f := range r.Files {
		out = append(out, f.Units...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Col < out[j].Pos.Col
	})
	return out
}

// Findings flattens the per-file blocker findings, sorted.
func (r *Result) Findings() []diag.Finding {
	var out []diag.Finding
	for _, f := range r.Files {
		out = append(out, f.Findings...)
	}
	diag.Sort(out)
	return out
}

// miniPos converts a resolved go/token position to the mini-language Pos.
func miniPos(fset *gotoken.FileSet, p gotoken.Pos) token.Pos {
	if !p.IsValid() {
		return token.Pos{}
	}
	pp := fset.Position(p)
	return token.Pos{Line: pp.Line, Col: pp.Column}
}

// blockf builds a Blocked error at a go position.
func blockf(fset *gotoken.FileSet, p gotoken.Pos, construct, format string, args ...any) *Blocked {
	return &Blocked{Pos: miniPos(fset, p), Construct: construct, Detail: fmt.Sprintf(format, args...)}
}

// typeOf is info.TypeOf with a nil guard (lenient type checking can leave
// gaps for expressions mentioning unresolved imports).
func typeOf(info *types.Info, e goast.Expr) types.Type {
	if info == nil {
		return nil
	}
	return info.TypeOf(e)
}

// isInteger reports whether t is (an alias of) a basic integer type.
func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// elemStructure decomposes an indexable type into the constant dimension
// lengths of its array prefix and the scalar element reached after rank
// subscripts. dims[k] < 0 marks a slice level (unknown bound).
func elemStructure(t types.Type, rank int) (dims []int64, elem types.Type, ok bool) {
	cur := t
	for k := 0; k < rank; k++ {
		switch u := cur.Underlying().(type) {
		case *types.Array:
			dims = append(dims, u.Len())
			cur = u.Elem()
		case *types.Slice:
			dims = append(dims, -1)
			cur = u.Elem()
		case *types.Pointer:
			// *[N]T indexes like the array it points at.
			if arr, isArr := u.Elem().Underlying().(*types.Array); isArr {
				dims = append(dims, arr.Len())
				cur = arr.Elem()
				continue
			}
			return nil, nil, false
		default:
			return nil, nil, false
		}
	}
	return dims, cur, true
}
