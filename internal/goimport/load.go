package goimport

import (
	"fmt"
	goast "go/ast"
	"go/parser"
	"go/scanner"
	gotoken "go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/diag"
	"repro/internal/token"
)

// stubImporter satisfies go/types without resolving anything: every import
// fails softly, so type checking stays lenient — identifiers rooted in
// unresolved imports simply have no type and block the loops that touch
// them, instead of aborting the whole file. This keeps the front end free
// of build-system dependencies (no go list, no export data).
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("goimport: imports are not resolved (%s)", path)
}

// checkFiles runs the lenient type check over one package's files and
// returns the populated Info. Type errors are expected and swallowed; the
// lowering works from whatever resolved.
func checkFiles(fset *gotoken.FileSet, dir string, files []*goast.File) *types.Info {
	info := &types.Info{
		Types: map[goast.Expr]types.TypeAndValue{},
		Defs:  map[*goast.Ident]types.Object{},
		Uses:  map[*goast.Ident]types.Object{},
	}
	conf := types.Config{
		Error:            func(error) {},
		Importer:         stubImporter{},
		FakeImportC:      true,
		IgnoreFuncBodies: false,
	}
	// The returned error only repeats what conf.Error swallowed.
	_, _ = conf.Check(dir, fset, files, info)
	return info
}

// ImportTree imports every Go file under pattern. pattern is a directory,
// a `dir/...` recursive pattern (`./...` covers the whole module), or a
// single .go file. includeTests controls whether _test.go files are
// considered.
func ImportTree(pattern string, includeTests bool) (*Result, error) {
	root, recursive := splitPattern(pattern)
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(abs)
	if err != nil {
		return nil, err
	}

	var goFiles []string
	switch {
	case !st.IsDir():
		if !strings.HasSuffix(abs, ".go") {
			return nil, fmt.Errorf("goimport: %s is not a .go file", root)
		}
		goFiles = []string{abs}
		abs = filepath.Dir(abs)
	case recursive:
		err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if wantGoFile(d.Name(), includeTests) {
				goFiles = append(goFiles, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	default:
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() && wantGoFile(e.Name(), includeTests) {
				goFiles = append(goFiles, filepath.Join(abs, e.Name()))
			}
		}
	}
	sort.Strings(goFiles)

	module := findModuleRoot(abs)
	res := &Result{Root: abs, Module: module}

	// Group parsed files by (directory, package clause) so each package is
	// type-checked as a unit; parse failures become Error-severity findings
	// on a synthetic per-file result rather than aborting the tree.
	fset := gotoken.NewFileSet()
	type pkgKey struct{ dir, name string }
	pkgs := map[pkgKey][]*goast.File{}
	fileOf := map[*goast.File]string{}
	var keys []pkgKey
	for _, path := range goFiles {
		display := displayPath(module, path)
		src, err := os.ReadFile(path)
		if err != nil {
			res.Files = append(res.Files, readFailure(display, err))
			continue
		}
		f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
		if err != nil {
			res.Files = append(res.Files, parseFailure(display, err))
			continue
		}
		key := pkgKey{dir: filepath.Dir(path), name: f.Name.Name}
		if _, ok := pkgs[key]; !ok {
			keys = append(keys, key)
		}
		pkgs[key] = append(pkgs[key], f)
		fileOf[f] = display
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dir != keys[j].dir {
			return keys[i].dir < keys[j].dir
		}
		return keys[i].name < keys[j].name
	})
	for _, key := range keys {
		files := pkgs[key]
		info := checkFiles(fset, key.dir, files)
		for _, f := range files {
			res.Files = append(res.Files, LowerFile(fset, f, info, fileOf[f]))
		}
	}
	sort.SliceStable(res.Files, func(i, j int) bool { return res.Files[i].File < res.Files[j].File })
	return res, nil
}

// ImportSource imports one in-memory Go file (the HTTP service path). name
// is the display name stamped on units and findings.
func ImportSource(name string, src []byte) (*Result, error) {
	fset := gotoken.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := checkFiles(fset, ".", []*goast.File{f})
	return &Result{Files: []*FileResult{LowerFile(fset, f, info, name)}}, nil
}

func wantGoFile(name string, includeTests bool) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return false
	}
	if !includeTests && strings.HasSuffix(name, "_test.go") {
		return false
	}
	return true
}

// splitPattern peels a trailing /... recursive marker.
func splitPattern(pattern string) (root string, recursive bool) {
	if pattern == "..." {
		return ".", true
	}
	if strings.HasSuffix(pattern, "/...") {
		root = strings.TrimSuffix(pattern, "/...")
		if root == "" {
			root = "/"
		}
		return root, true
	}
	return pattern, false
}

// findModuleRoot walks up from dir to the nearest go.mod; dir itself is the
// fallback, so display paths are always relative to something sensible.
func findModuleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// displayPath renders path relative to the module root with forward
// slashes (the form SARIF artifact URIs want).
func displayPath(module, path string) string {
	rel, err := filepath.Rel(module, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}

func readFailure(display string, err error) *FileResult {
	return &FileResult{File: display, Findings: []diag.Finding{{
		Analyzer: Analyzer,
		File:     display,
		Pos:      token.Pos{Line: 1, Col: 1},
		Severity: diag.Error,
		Message:  fmt.Sprintf("cannot read file: %v", err),
		Detail:   map[string]string{"construct": "read-error"},
	}}}
}

func parseFailure(display string, err error) *FileResult {
	pos := token.Pos{Line: 1, Col: 1}
	if list, ok := err.(scanner.ErrorList); ok && len(list) > 0 {
		pos = token.Pos{Line: list[0].Pos.Line, Col: list[0].Pos.Column}
		err = fmt.Errorf("%s", list[0].Msg)
	}
	return &FileResult{File: display, Findings: []diag.Finding{{
		Analyzer: Analyzer,
		File:     display,
		Pos:      pos,
		Severity: diag.Error,
		Message:  fmt.Sprintf("cannot parse file: %v", err),
		Detail:   map[string]string{"construct": "goparse"},
	}}}
}
