package goimport

import (
	"fmt"
	goast "go/ast"
	"go/constant"
	gotoken "go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/sema"
	"repro/internal/token"
)

// LowerFile lowers every candidate loop of one parsed, (leniently)
// type-checked file. display is the module-root-relative path stamped on
// units and findings.
func LowerFile(fset *gotoken.FileSet, file *goast.File, info *types.Info, display string) *FileResult {
	fr := &FileResult{File: display}
	for _, decl := range file.Decls {
		fn, ok := decl.(*goast.FuncDecl)
		if ok && fn.Body != nil {
			fr.Funcs++
			lowerFunc(fset, fn, info, display, fr)
		}
	}
	return fr
}

// lowerFunc walks one function body, attempting to lower every outermost
// loop statement. A blocked loop contributes a finding and is then
// re-entered so its inner loops still get their chance.
func lowerFunc(fset *gotoken.FileSet, fn *goast.FuncDecl, info *types.Info, display string, fr *FileResult) {
	aliases := buildAliasSets(fn, info)
	var visit func(stmts []goast.Stmt)
	visitLoop := func(s goast.Stmt, body *goast.BlockStmt) {
		fr.LoopsSeen++
		l := newLowerer(fset, info, aliases)
		unit, blocked := l.lowerNest(s)
		if blocked == nil {
			unit.File = display
			unit.Func = fn.Name.Name
			fr.Units = append(fr.Units, unit)
			return
		}
		fr.Findings = append(fr.Findings, blockedFinding(display, fn.Name.Name, miniPos(fset, s.Pos()), blocked))
		if body != nil {
			visit(body.List)
		}
	}
	visit = func(stmts []goast.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *goast.ForStmt:
				visitLoop(st, st.Body)
			case *goast.RangeStmt:
				visitLoop(st, st.Body)
			case *goast.BlockStmt:
				visit(st.List)
			case *goast.IfStmt:
				visit(st.Body.List)
				if st.Else != nil {
					visit([]goast.Stmt{st.Else})
				}
			case *goast.SwitchStmt:
				for _, c := range st.Body.List {
					if cc, ok := c.(*goast.CaseClause); ok {
						visit(cc.Body)
					}
				}
			case *goast.TypeSwitchStmt:
				for _, c := range st.Body.List {
					if cc, ok := c.(*goast.CaseClause); ok {
						visit(cc.Body)
					}
				}
			case *goast.SelectStmt:
				for _, c := range st.Body.List {
					if cc, ok := c.(*goast.CommClause); ok {
						visit(cc.Body)
					}
				}
			case *goast.LabeledStmt:
				visit([]goast.Stmt{st.Stmt})
			case *goast.GoStmt, *goast.DeferStmt:
				if fl, ok := funcLitOf(st); ok {
					visit(fl.Body.List)
				}
			case *goast.ExprStmt:
				if fl, ok := funcLitOf(st); ok {
					visit(fl.Body.List)
				}
			case *goast.AssignStmt:
				for _, rhs := range st.Rhs {
					if fl, ok := rhs.(*goast.FuncLit); ok {
						visit(fl.Body.List)
					}
				}
			}
		}
	}
	visit(fn.Body.List)
}

// funcLitOf digs a function literal out of go/defer/expression statements
// so loops inside closures are still visited.
func funcLitOf(s goast.Stmt) (*goast.FuncLit, bool) {
	var call *goast.CallExpr
	switch st := s.(type) {
	case *goast.GoStmt:
		call = st.Call
	case *goast.DeferStmt:
		call = st.Call
	case *goast.ExprStmt:
		c, ok := st.X.(*goast.CallExpr)
		if !ok {
			return nil, false
		}
		call = c
	}
	if call == nil {
		return nil, false
	}
	fl, ok := call.Fun.(*goast.FuncLit)
	return fl, ok
}

// blockedFinding renders a Blocked error as the positioned goimport
// finding the corpus histograms consume.
func blockedFinding(display, fn string, loopPos token.Pos, b *Blocked) diag.Finding {
	pos := b.Pos
	if !pos.IsValid() {
		pos = loopPos
	}
	f := diag.Finding{
		Analyzer: Analyzer,
		File:     display,
		Pos:      loopPos,
		Severity: diag.Info,
		Message:  fmt.Sprintf("loop in %s not lowered: %s", fn, b.Detail),
		Detail: map[string]string{
			"construct": b.Construct,
			"func":      fn,
		},
	}
	if pos != loopPos {
		f.Related = []diag.Related{{File: display, Pos: pos, Message: "blocking construct"}}
	}
	return f
}

// miniKeywords are the mini-language spellings an imported identifier must
// not collide with (the lexer matches keywords case-insensitively).
var miniKeywords = map[string]bool{
	"do": true, "enddo": true, "endo": true, "if": true, "then": true,
	"else": true, "endif": true, "and": true, "or": true, "not": true,
	"dim": true,
}

// lowerer lowers one loop nest. It owns the per-unit name tables; the
// alias sets are shared across the function.
type lowerer struct {
	fset    *gotoken.FileSet
	info    *types.Info
	aliases *aliasSets

	names   map[types.Object]string // go object -> mini name
	taken   map[string]bool         // mini names in use (incl. mangled)
	arrays  map[string]*ArrayInfo
	arrObj  map[string]types.Object // mini array name -> object
	arrPos  map[string]token.Pos    // first use, for the dim position
	scalars map[string]*ScalarInfo
	lenOf   map[string]string // mini array name -> its len scalar name

	ivs      map[types.Object]bool
	boundIDs map[string]bool // mini scalar names used in loop bounds
	assigned map[string]bool // mini scalar names assigned in the nest
}

func newLowerer(fset *gotoken.FileSet, info *types.Info, aliases *aliasSets) *lowerer {
	return &lowerer{
		fset: fset, info: info, aliases: aliases,
		names: map[types.Object]string{}, taken: map[string]bool{},
		arrays: map[string]*ArrayInfo{}, arrObj: map[string]types.Object{},
		arrPos: map[string]token.Pos{}, scalars: map[string]*ScalarInfo{},
		lenOf: map[string]string{}, ivs: map[types.Object]bool{},
		boundIDs: map[string]bool{}, assigned: map[string]bool{},
	}
}

// lowerNest lowers a whole loop statement into a Unit, or explains why it
// cannot.
func (l *lowerer) lowerNest(s goast.Stmt) (*Unit, *Blocked) {
	dl, blocked := l.lowerLoop(s)
	if blocked != nil {
		return nil, blocked
	}
	// Loop bounds must be invariant in the nest: Go re-evaluates the
	// condition every iteration, the mini-language evaluates Lo/Hi once at
	// loop entry. Induction variables are not "assigned" (they advance by
	// the loop construct itself), so triangular nests pass.
	for name := range l.boundIDs {
		if l.assigned[name] {
			return nil, &Blocked{Pos: dl.Pos(), Construct: "bound-modified",
				Detail: fmt.Sprintf("loop bound scalar %s is assigned inside the loop", name)}
		}
	}
	// Distinct slices that provably share a backing array (subslice or
	// slice-header copy in this function) violate the front end's no-alias
	// lowering; true arrays are values and cannot alias by name.
	if b := l.checkAliases(dl.Pos()); b != nil {
		return nil, b
	}

	prog := &ast.Program{}
	for _, name := range sortedKeys(l.arrays) {
		ai := l.arrays[name]
		if ai.Dims == nil {
			continue
		}
		d := &ast.Dim{DimPos: l.arrPos[name], Name: name, NamePos: l.arrPos[name]}
		for _, sz := range ai.Dims {
			d.Sizes = append(d.Sizes, &ast.IntLit{LitPos: l.arrPos[name], Value: sz})
		}
		prog.Body = append(prog.Body, d)
	}
	prog.Body = append(prog.Body, dl)

	// Semantic backstop: anything structurally lowered that still violates
	// the framework's restrictions (subscript shape, mixed scalar/array
	// use) becomes a positioned blocker instead of a unit.
	if _, errs := sema.CheckAll(prog); len(errs) > 0 {
		first := errs[0]
		pos := dl.Pos()
		msg := first.Error()
		var se *sema.Error
		if ok := asSemaError(first, &se); ok {
			pos, msg = se.Pos, se.Msg
		}
		return nil, &Blocked{Pos: pos, Construct: "sema", Detail: "lowered form rejected: " + msg}
	}

	loops := 0
	ast.Inspect(prog.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DoLoop); ok {
			loops++
		}
		return true
	})
	return &Unit{
		Pos: dl.Pos(), Program: prog, Loop: dl, Loops: loops, GoLoop: s,
		Arrays: l.arrays, Scalars: l.scalars,
		fset: l.fset, info: l.info, names: l.names,
	}, nil
}

func asSemaError(err error, out **sema.Error) bool {
	se, ok := err.(*sema.Error)
	if ok {
		*out = se
	}
	return ok
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// checkAliases blocks the nest when two distinct slice-backed arrays fall
// into one derivation class (b := a, b := a[1:], b = append(a, ...)).
func (l *lowerer) checkAliases(pos token.Pos) *Blocked {
	names := sortedKeys(l.arrays)
	for i, a := range names {
		oa := l.arrObj[a]
		if oa == nil || l.arrays[a].Dims != nil {
			continue
		}
		for _, b := range names[i+1:] {
			ob := l.arrObj[b]
			if ob == nil || l.arrays[b].Dims != nil {
				continue
			}
			if l.aliases != nil && l.aliases.same(oa, ob) {
				return &Blocked{Pos: pos, Construct: "subslice-alias",
					Detail: fmt.Sprintf("slices %s and %s may share a backing array (subslice or copy in this function)", a, b)}
			}
		}
	}
	return nil
}

// lowerLoop lowers one for/range statement (and, recursively, the loops in
// its body) to a DO loop.
func (l *lowerer) lowerLoop(s goast.Stmt) (*ast.DoLoop, *Blocked) {
	switch st := s.(type) {
	case *goast.ForStmt:
		return l.lowerForStmt(st)
	case *goast.RangeStmt:
		return l.lowerRangeStmt(st)
	}
	return nil, blockf(l.fset, s.Pos(), "not-a-loop", "statement is not a for loop")
}

func (l *lowerer) lowerForStmt(st *goast.ForStmt) (*ast.DoLoop, *Blocked) {
	if st.Init == nil || st.Cond == nil || st.Post == nil {
		return nil, blockf(l.fset, st.For, "headless-for", "for loop without init/cond/post (not a counted loop)")
	}
	init, ok := st.Init.(*goast.AssignStmt)
	if !ok || init.Tok != gotoken.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil, blockf(l.fset, st.Init.Pos(), "init-form", "loop init is not a single `i := lo` declaration")
	}
	ivIdent, ok := init.Lhs[0].(*goast.Ident)
	if !ok || ivIdent.Name == "_" {
		return nil, blockf(l.fset, init.Lhs[0].Pos(), "init-form", "loop variable is not a plain identifier")
	}
	ivObj := l.objectOf(ivIdent)
	if ivObj == nil || !isInteger(ivObj.Type()) {
		return nil, blockf(l.fset, ivIdent.Pos(), "iv-type", "loop variable %s is not an integer (or its type did not resolve)", ivIdent.Name)
	}
	ivName, b := l.nameFor(ivObj, ivIdent)
	if b != nil {
		return nil, b
	}
	l.noteScalar(ivName, ivIdent.Name)
	l.ivs[ivObj] = true
	defer delete(l.ivs, ivObj)

	lo, b := l.lowerBoundExpr(init.Rhs[0])
	if b != nil {
		return nil, b
	}

	// Step before condition: the comparison direction must match it.
	step, b := l.lowerPost(st.Post, ivObj)
	if b != nil {
		return nil, b
	}

	cond, ok := st.Cond.(*goast.BinaryExpr)
	if !ok {
		return nil, blockf(l.fset, st.Cond.Pos(), "cond-form", "loop condition is not a comparison")
	}
	// The compared expression may be the loop variable itself or a
	// constant shift of it: `i+c < n` bounds i exactly as `i < n-c` would,
	// so the shift folds into the DO bound instead of blocking the loop.
	shift, okX := l.ivShiftOf(cond.X, ivObj)
	if !okX {
		return nil, blockf(l.fset, cond.X.Pos(), "cond-form", "loop condition does not compare the loop variable %s (or a constant shift of it)", ivIdent.Name)
	}
	bound, b := l.lowerBoundExpr(cond.Y)
	if b != nil {
		return nil, b
	}
	// The bound adjustment folds two constants into one term: the
	// exclusive comparisons tighten by one, and `i+shift OP bound` ⟺
	// `i OP bound−shift` moves the shift to the bound with its sign
	// flipped, in every comparison direction.
	var adjust int64
	switch {
	case cond.Op == gotoken.LSS && step > 0:
		adjust = -1
	case cond.Op == gotoken.LEQ && step > 0:
	case cond.Op == gotoken.GTR && step < 0:
		adjust = 1
	case cond.Op == gotoken.GEQ && step < 0:
	default:
		return nil, blockf(l.fset, cond.OpPos,
			"cond-direction",
			"loop condition %s does not advance toward the bound with step %d", cond.Op, step)
	}
	adjust -= shift
	hi := bound
	if adjust > 0 {
		hi = sema.Simplify(&ast.Binary{Op: token.PLUS, L: bound, R: intLit(adjust, bound.Pos())})
	} else if adjust < 0 {
		hi = sema.Simplify(&ast.Binary{Op: token.MINUS, L: bound, R: intLit(-adjust, bound.Pos())})
	}
	// Go re-evaluates the condition each iteration; a DO loop evaluates its
	// bound once. A bound that reads its own induction variable diverges.
	selfRef := false
	ast.InspectExpr(hi, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == ivName {
			selfRef = true
		}
		return !selfRef
	})
	if selfRef {
		return nil, blockf(l.fset, cond.Y.Pos(), "bound-uses-iv", "loop bound reads the loop variable %s", ivIdent.Name)
	}

	body, b := l.lowerBlock(st.Body.List)
	if b != nil {
		return nil, b
	}
	dl := &ast.DoLoop{
		DoPos: miniPos(l.fset, st.For),
		Var:   ivName,
		Lo:    lo, Hi: hi,
		Body: body,
	}
	if step != 1 {
		dl.Step = intLit(step, dl.DoPos)
	}
	return dl, nil
}

// ivShiftOf matches the condition's compared expression against the loop
// variable or a constant shift of it — i, i+c, c+i, i-c — returning the
// signed shift.
func (l *lowerer) ivShiftOf(e goast.Expr, ivObj types.Object) (int64, bool) {
	if id, ok := e.(*goast.Ident); ok {
		return 0, l.objectOf(id) == ivObj
	}
	be, ok := e.(*goast.BinaryExpr)
	if !ok || (be.Op != gotoken.ADD && be.Op != gotoken.SUB) {
		return 0, false
	}
	if id, ok := be.X.(*goast.Ident); ok && l.objectOf(id) == ivObj {
		if c, ok := l.constIntOf(be.Y); ok {
			if be.Op == gotoken.SUB {
				c = -c
			}
			return c, true
		}
	}
	if be.Op == gotoken.ADD {
		if id, ok := be.Y.(*goast.Ident); ok && l.objectOf(id) == ivObj {
			if c, ok := l.constIntOf(be.X); ok {
				return c, true
			}
		}
	}
	return 0, false
}

// lowerPost extracts the constant step from the loop post statement.
func (l *lowerer) lowerPost(post goast.Stmt, ivObj types.Object) (int64, *Blocked) {
	switch p := post.(type) {
	case *goast.IncDecStmt:
		id, ok := p.X.(*goast.Ident)
		if !ok || l.objectOf(id) != ivObj {
			return 0, blockf(l.fset, p.Pos(), "post-form", "loop post does not advance the loop variable")
		}
		if p.Tok == gotoken.INC {
			return 1, nil
		}
		return -1, nil
	case *goast.AssignStmt:
		if len(p.Lhs) != 1 || len(p.Rhs) != 1 {
			return 0, blockf(l.fset, p.Pos(), "post-form", "loop post is not a single step assignment")
		}
		id, ok := p.Lhs[0].(*goast.Ident)
		if !ok || l.objectOf(id) != ivObj {
			return 0, blockf(l.fset, p.Pos(), "post-form", "loop post does not advance the loop variable")
		}
		c, ok := l.constIntOf(p.Rhs[0])
		if !ok || c == 0 {
			return 0, blockf(l.fset, p.Rhs[0].Pos(), "post-step", "loop step is not a nonzero integer constant")
		}
		switch p.Tok {
		case gotoken.ADD_ASSIGN:
			return c, nil
		case gotoken.SUB_ASSIGN:
			return -c, nil
		}
		return 0, blockf(l.fset, p.Pos(), "post-form", "loop post operator %s is not += or -=", p.Tok)
	}
	return 0, blockf(l.fset, post.Pos(), "post-form", "loop post is not i++/i--/i+=c/i-=c")
}

// lowerRangeStmt lowers range loops over slices, arrays, and (Go 1.22)
// integers: `for i := range s`, and for slices also `for i, v := range s`
// — the per-iteration element copy v lowers exactly as a body-leading
// `v := s[i+1]` assignment. Value binding over a true array is blocked
// (Go copies the whole array operand once at range entry, so v would see
// pre-loop values if the body writes the array); so are ranges over maps
// (unordered), strings, channels, and iterator functions.
func (l *lowerer) lowerRangeStmt(st *goast.RangeStmt) (*ast.DoLoop, *Blocked) {
	if st.Key == nil {
		return nil, blockf(l.fset, st.For, "range-form", "range loop without an index variable")
	}
	if st.Tok != gotoken.DEFINE {
		return nil, blockf(l.fset, st.TokPos, "range-form", "range loop does not declare its index with :=")
	}
	// Classify the operand before touching the variables so the blocker
	// names the real obstacle (range over a map is not an "index" problem).
	rt := typeOf(l.info, st.X)
	if rt == nil {
		return nil, blockf(l.fset, st.X.Pos(), "unresolved-type", "type of the range operand did not resolve")
	}
	overInt := isInteger(rt)
	if !overInt {
		switch rt.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer:
		case *types.Map:
			return nil, blockf(l.fset, st.X.Pos(), "range-over-map", "range over a map (iteration order is unspecified)")
		case *types.Chan:
			return nil, blockf(l.fset, st.X.Pos(), "range-over-chan", "range over a channel")
		case *types.Signature:
			return nil, blockf(l.fset, st.X.Pos(), "range-over-func", "range over an iterator function")
		case *types.Basic:
			return nil, blockf(l.fset, st.X.Pos(), "range-over-string", "range over a string (rune decoding)")
		default:
			return nil, blockf(l.fset, st.X.Pos(), "range-operand", "range over unsupported type %s", rt)
		}
	}

	ivIdent, ok := st.Key.(*goast.Ident)
	if !ok {
		return nil, blockf(l.fset, st.Key.Pos(), "range-form", "range index is not a plain identifier")
	}
	var ivName string
	if ivIdent.Name == "_" {
		// `for _, v := range s`: the mini DO still needs an induction
		// variable; synthesize one no body expression can mention.
		ivName = l.freshName("i_range")
		l.scalars[ivName] = &ScalarInfo{GoName: "_"}
	} else {
		ivObj := l.objectOf(ivIdent)
		if ivObj == nil || !isInteger(ivObj.Type()) {
			return nil, blockf(l.fset, ivIdent.Pos(), "iv-type", "range index %s is not an integer (or its type did not resolve)", ivIdent.Name)
		}
		var b *Blocked
		ivName, b = l.nameFor(ivObj, ivIdent)
		if b != nil {
			return nil, b
		}
		l.noteScalar(ivName, ivIdent.Name)
		l.ivs[ivObj] = true
		defer delete(l.ivs, ivObj)
	}

	// The element copy: only over slices, and only integer elements.
	var valueInit *ast.Assign
	if st.Value != nil {
		vIdent, ok := st.Value.(*goast.Ident)
		if !ok {
			return nil, blockf(l.fset, st.Value.Pos(), "range-form", "range value is not a plain identifier")
		}
		if overInt {
			return nil, blockf(l.fset, st.Value.Pos(), "range-form", "two-variable range over an integer")
		}
		if vIdent.Name != "_" {
			if _, isSlice := rt.Underlying().(*types.Slice); !isSlice {
				return nil, blockf(l.fset, st.Value.Pos(), "range-value-array",
					"value-binding range over a true array (Go copies the operand at range entry)")
			}
			opIdent, ok := goast.Unparen(st.X).(*goast.Ident)
			if !ok {
				return nil, blockf(l.fset, st.X.Pos(), "range-operand", "range operand %s is not a plain identifier", renderGo(st.X))
			}
			vObj := l.objectOf(vIdent)
			if vObj == nil || !isInteger(vObj.Type()) {
				return nil, blockf(l.fset, vIdent.Pos(), "range-value",
					"range value %s is not an integer element (or did not resolve)", vIdent.Name)
			}
			vName, b := l.nameFor(vObj, vIdent)
			if b != nil {
				return nil, b
			}
			l.noteScalar(vName, vIdent.Name)
			l.assigned[vName] = true
			opObj := l.objectOf(opIdent)
			if opObj == nil {
				return nil, blockf(l.fset, opIdent.Pos(), "unresolved-type", "range operand %s did not resolve", opIdent.Name)
			}
			arrName, b := l.registerArray(opIdent, opObj, 1)
			if b != nil {
				return nil, b
			}
			vPos := miniPos(l.fset, vIdent.Pos())
			ivRead := &ast.Ident{NamePos: vPos, Name: ivName}
			valueInit = &ast.Assign{
				LHS: &ast.Ident{NamePos: vPos, Name: vName},
				RHS: &ast.ArrayRef{NamePos: vPos, Name: arrName,
					Subs: []ast.Expr{&ast.Binary{Op: token.PLUS, L: ivRead, R: intLit(1, vPos)}}},
			}
		}
	}

	var hi ast.Expr
	if overInt {
		bound, blk := l.lowerBoundExpr(st.X)
		if blk != nil {
			return nil, blk
		}
		hi = sema.Simplify(&ast.Binary{Op: token.MINUS, L: bound, R: intLit(1, bound.Pos())})
	} else {
		ln, blk := l.lowerLen(st.X)
		if blk != nil {
			return nil, blk
		}
		hi = sema.Simplify(&ast.Binary{Op: token.MINUS, L: ln, R: intLit(1, ln.Pos())})
	}

	body, b := l.lowerBlock(st.Body.List)
	if b != nil {
		return nil, b
	}
	if valueInit != nil {
		body = append([]ast.Stmt{valueInit}, body...)
	}
	return &ast.DoLoop{
		DoPos: miniPos(l.fset, st.For),
		Var:   ivName,
		Lo:    intLit(0, miniPos(l.fset, st.For)),
		Hi:    hi,
		Body:  body,
	}, nil
}

// lowerBlock lowers a statement list.
func (l *lowerer) lowerBlock(stmts []goast.Stmt) ([]ast.Stmt, *Blocked) {
	var out []ast.Stmt
	for _, s := range stmts {
		lowered, b := l.lowerStmt(s)
		if b != nil {
			return nil, b
		}
		out = append(out, lowered...)
	}
	return out, nil
}

func (l *lowerer) lowerStmt(s goast.Stmt) ([]ast.Stmt, *Blocked) {
	switch st := s.(type) {
	case *goast.BlockStmt:
		return l.lowerBlock(st.List)

	case *goast.AssignStmt:
		return l.lowerAssign(st)

	case *goast.IncDecStmt:
		lhs, b := l.lowerLValue(st.X)
		if b != nil {
			return nil, b
		}
		rhsRead, b := l.lowerValueExpr(st.X)
		if b != nil {
			return nil, b
		}
		op := token.PLUS
		if st.Tok == gotoken.DEC {
			op = token.MINUS
		}
		return []ast.Stmt{&ast.Assign{LHS: lhs, RHS: &ast.Binary{Op: op, L: rhsRead, R: intLit(1, miniPos(l.fset, st.TokPos))}}}, nil

	case *goast.IfStmt:
		if st.Init != nil {
			return nil, blockf(l.fset, st.Init.Pos(), "if-init", "if statement with an init clause")
		}
		cond, b := l.lowerCond(st.Cond)
		if b != nil {
			return nil, b
		}
		thenB, b := l.lowerBlock(st.Body.List)
		if b != nil {
			return nil, b
		}
		var elseB []ast.Stmt
		if st.Else != nil {
			elseB, b = l.lowerStmt(st.Else)
			if b != nil {
				return nil, b
			}
		}
		return []ast.Stmt{&ast.If{IfPos: miniPos(l.fset, st.If), Cond: cond, Then: thenB, Else: elseB}}, nil

	case *goast.ForStmt, *goast.RangeStmt:
		dl, b := l.lowerLoop(st)
		if b != nil {
			return nil, b
		}
		return []ast.Stmt{dl}, nil

	case *goast.DeclStmt:
		return l.lowerDecl(st)

	case *goast.BranchStmt:
		return nil, blockf(l.fset, st.Pos(), "branch", "%s statement", st.Tok)
	case *goast.ReturnStmt:
		return nil, blockf(l.fset, st.Pos(), "return", "return statement")
	case *goast.ExprStmt:
		return nil, blockf(l.fset, st.Pos(), "call", "expression statement (call with possible side effects)")
	case *goast.GoStmt:
		return nil, blockf(l.fset, st.Pos(), "go", "go statement")
	case *goast.DeferStmt:
		return nil, blockf(l.fset, st.Pos(), "defer", "defer statement")
	case *goast.SwitchStmt, *goast.TypeSwitchStmt:
		return nil, blockf(l.fset, st.Pos(), "switch", "switch statement")
	case *goast.SelectStmt:
		return nil, blockf(l.fset, st.Pos(), "select", "select statement")
	case *goast.SendStmt:
		return nil, blockf(l.fset, st.Pos(), "channel", "channel send")
	case *goast.LabeledStmt:
		return nil, blockf(l.fset, st.Pos(), "label", "labeled statement")
	case *goast.EmptyStmt:
		return nil, nil
	}
	return nil, blockf(l.fset, s.Pos(), "statement", "unsupported statement %T", s)
}

func (l *lowerer) lowerAssign(st *goast.AssignStmt) ([]ast.Stmt, *Blocked) {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return nil, blockf(l.fset, st.Pos(), "multi-assign", "multiple assignment")
	}
	switch st.Tok {
	case gotoken.ASSIGN, gotoken.DEFINE:
		lhs, b := l.lowerLValue(st.Lhs[0])
		if b != nil {
			return nil, b
		}
		rhs, b := l.lowerValueExpr(st.Rhs[0])
		if b != nil {
			return nil, b
		}
		return []ast.Stmt{&ast.Assign{LHS: lhs, RHS: rhs}}, nil
	case gotoken.ADD_ASSIGN, gotoken.SUB_ASSIGN, gotoken.MUL_ASSIGN, gotoken.QUO_ASSIGN, gotoken.REM_ASSIGN:
		lhs, b := l.lowerLValue(st.Lhs[0])
		if b != nil {
			return nil, b
		}
		read, b := l.lowerValueExpr(st.Lhs[0])
		if b != nil {
			return nil, b
		}
		rhs, b := l.lowerValueExpr(st.Rhs[0])
		if b != nil {
			return nil, b
		}
		var op token.Kind
		switch st.Tok {
		case gotoken.ADD_ASSIGN:
			op = token.PLUS
		case gotoken.SUB_ASSIGN:
			op = token.MINUS
		case gotoken.MUL_ASSIGN:
			op = token.STAR
		case gotoken.QUO_ASSIGN:
			op = token.SLASH
		default:
			op = token.MOD
		}
		return []ast.Stmt{&ast.Assign{LHS: lhs, RHS: &ast.Binary{Op: op, L: read, R: rhs}}}, nil
	}
	return nil, blockf(l.fset, st.TokPos, "assign-op", "unsupported assignment operator %s", st.Tok)
}

// lowerDecl lowers `var x int = e` / `var x int` declarations of a single
// integer scalar.
func (l *lowerer) lowerDecl(st *goast.DeclStmt) ([]ast.Stmt, *Blocked) {
	gd, ok := st.Decl.(*goast.GenDecl)
	if !ok || gd.Tok != gotoken.VAR {
		return nil, blockf(l.fset, st.Pos(), "decl", "non-var declaration")
	}
	var out []ast.Stmt
	for _, spec := range gd.Specs {
		vs, ok := spec.(*goast.ValueSpec)
		if !ok || len(vs.Names) != 1 || len(vs.Values) > 1 {
			return nil, blockf(l.fset, spec.Pos(), "decl", "multi-name var declaration")
		}
		id := vs.Names[0]
		obj := l.objectOf(id)
		if obj == nil || !isInteger(obj.Type()) {
			return nil, blockf(l.fset, id.Pos(), "decl-type", "declared variable %s is not an integer", id.Name)
		}
		name, b := l.nameFor(obj, id)
		if b != nil {
			return nil, b
		}
		l.noteScalar(name, id.Name)
		l.assigned[name] = true
		lhs := &ast.Ident{NamePos: miniPos(l.fset, id.Pos()), Name: name}
		var rhs ast.Expr = intLit(0, lhs.NamePos)
		if len(vs.Values) == 1 {
			var blk *Blocked
			rhs, blk = l.lowerValueExpr(vs.Values[0])
			if blk != nil {
				return nil, blk
			}
		}
		out = append(out, &ast.Assign{LHS: lhs, RHS: rhs})
	}
	return out, nil
}

// lowerLValue lowers an assignment target: an integer scalar identifier or
// an element reference.
func (l *lowerer) lowerLValue(e goast.Expr) (ast.Expr, *Blocked) {
	switch x := goast.Unparen(e).(type) {
	case *goast.Ident:
		obj := l.objectOf(x)
		if obj == nil {
			return nil, blockf(l.fset, x.Pos(), "unresolved-type", "assignment target %s did not resolve", x.Name)
		}
		if l.ivs[obj] {
			return nil, blockf(l.fset, x.Pos(), "iv-assign", "loop variable %s is assigned inside the loop", x.Name)
		}
		if !isInteger(obj.Type()) {
			return nil, blockf(l.fset, x.Pos(), "lhs-type", "assignment target %s is not an integer scalar", x.Name)
		}
		name, b := l.nameFor(obj, x)
		if b != nil {
			return nil, b
		}
		l.noteScalar(name, x.Name)
		l.assigned[name] = true
		return &ast.Ident{NamePos: miniPos(l.fset, x.Pos()), Name: name}, nil
	case *goast.IndexExpr:
		return l.lowerRef(x)
	}
	return nil, blockf(l.fset, e.Pos(), "lhs-form", "unsupported assignment target %T", e)
}

// lowerValueExpr lowers an integer-valued expression.
func (l *lowerer) lowerValueExpr(e goast.Expr) (ast.Expr, *Blocked) {
	e = goast.Unparen(e)
	// Compile-time constants (literals, named constants, constant folds)
	// lower directly to literals when they fit.
	if v, ok := l.constIntOf(e); ok {
		return intLit(v, miniPos(l.fset, e.Pos())), nil
	}
	switch x := e.(type) {
	case *goast.Ident:
		obj := l.objectOf(x)
		if obj == nil || !isInteger(obj.Type()) {
			return nil, blockf(l.fset, x.Pos(), "scalar-type", "identifier %s is not an integer scalar (or did not resolve)", x.Name)
		}
		name, b := l.nameFor(obj, x)
		if b != nil {
			return nil, b
		}
		l.noteScalar(name, x.Name)
		return &ast.Ident{NamePos: miniPos(l.fset, x.Pos()), Name: name}, nil
	case *goast.BinaryExpr:
		var op token.Kind
		switch x.Op {
		case gotoken.ADD:
			op = token.PLUS
		case gotoken.SUB:
			op = token.MINUS
		case gotoken.MUL:
			op = token.STAR
		case gotoken.QUO:
			op = token.SLASH
		case gotoken.REM:
			op = token.MOD
		default:
			return nil, blockf(l.fset, x.OpPos, "operator", "unsupported operator %s", x.Op)
		}
		lo, b := l.lowerValueExpr(x.X)
		if b != nil {
			return nil, b
		}
		ro, b := l.lowerValueExpr(x.Y)
		if b != nil {
			return nil, b
		}
		return &ast.Binary{Op: op, L: lo, R: ro}, nil
	case *goast.UnaryExpr:
		switch x.Op {
		case gotoken.SUB:
			in, b := l.lowerValueExpr(x.X)
			if b != nil {
				return nil, b
			}
			return &ast.Unary{OpPos: miniPos(l.fset, x.OpPos), Op: token.MINUS, X: in}, nil
		case gotoken.ADD:
			return l.lowerValueExpr(x.X)
		}
		return nil, blockf(l.fset, x.OpPos, "operator", "unsupported unary operator %s", x.Op)
	case *goast.IndexExpr:
		return l.lowerRef(x)
	case *goast.CallExpr:
		return l.lowerCall(x)
	case *goast.SelectorExpr:
		return nil, blockf(l.fset, x.Pos(), "selector", "selector expression %s", renderGo(x))
	case *goast.StarExpr:
		return nil, blockf(l.fset, x.Pos(), "pointer", "pointer dereference")
	case *goast.TypeAssertExpr:
		return nil, blockf(l.fset, x.Pos(), "type-assert", "type assertion")
	case *goast.SliceExpr:
		return nil, blockf(l.fset, x.Pos(), "subslice", "slice expression %s", renderGo(x))
	}
	return nil, blockf(l.fset, e.Pos(), "expression", "unsupported expression %T", e)
}

// lowerBoundExpr lowers a loop bound and records every scalar it reads so
// the invariance check can veto bodies that write them.
func (l *lowerer) lowerBoundExpr(e goast.Expr) (ast.Expr, *Blocked) {
	// len(s) is the canonical Go upper bound; it lowers to a synthesized
	// invariant scalar for slices and a constant for arrays.
	if call, ok := goast.Unparen(e).(*goast.CallExpr); ok {
		ln, b := l.lowerLenCall(call)
		if b == nil {
			return ln, nil
		}
		return nil, b
	}
	ex, b := l.lowerValueExpr(e)
	if b != nil {
		return nil, b
	}
	ast.InspectExpr(ex, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			l.boundIDs[id.Name] = true
		}
		if _, ok := n.(*ast.ArrayRef); ok {
			b = blockf(l.fset, e.Pos(), "bound-form", "loop bound reads an array element")
			return false
		}
		return true
	})
	return ex, b
}

// lowerLen lowers len(X) semantics for a range operand X (an identifier
// naming a slice or array).
func (l *lowerer) lowerLen(x goast.Expr) (ast.Expr, *Blocked) {
	id, ok := goast.Unparen(x).(*goast.Ident)
	if !ok {
		return nil, blockf(l.fset, x.Pos(), "range-operand", "range operand %s is not a plain identifier", renderGo(x))
	}
	return l.lenExprFor(id)
}

// lowerCall lowers the one permitted call form: len(ident).
func (l *lowerer) lowerCall(call *goast.CallExpr) (ast.Expr, *Blocked) {
	return l.lowerLenCall(call)
}

func (l *lowerer) lowerLenCall(call *goast.CallExpr) (ast.Expr, *Blocked) {
	fn, ok := goast.Unparen(call.Fun).(*goast.Ident)
	if !ok || fn.Name != "len" || len(call.Args) != 1 {
		return nil, blockf(l.fset, call.Pos(), "call", "call %s (only len(slice) is lowered)", renderGo(call.Fun))
	}
	if obj := l.objectOf(fn); obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return nil, blockf(l.fset, call.Pos(), "call", "call to shadowed len")
		}
	}
	id, ok := goast.Unparen(call.Args[0]).(*goast.Ident)
	if !ok {
		return nil, blockf(l.fset, call.Args[0].Pos(), "call", "len of a non-identifier operand")
	}
	return l.lenExprFor(id)
}

// lenExprFor yields the mini expression for len(id): a constant for true
// arrays, a synthesized invariant scalar for slices.
func (l *lowerer) lenExprFor(id *goast.Ident) (ast.Expr, *Blocked) {
	obj := l.objectOf(id)
	if obj == nil {
		return nil, blockf(l.fset, id.Pos(), "unresolved-type", "len operand %s did not resolve", id.Name)
	}
	t := obj.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return intLit(u.Len(), miniPos(l.fset, id.Pos())), nil
	case *types.Slice:
		arrName, b := l.registerArray(id, obj, 0)
		if b != nil {
			return nil, b
		}
		lenName := l.lenOf[arrName]
		if lenName == "" {
			lenName = l.freshName(arrName + "_len")
			l.lenOf[arrName] = lenName
			l.scalars[lenName] = &ScalarInfo{GoName: "len(" + id.Name + ")", LenOf: arrName}
		}
		l.boundIDs[lenName] = true
		return &ast.Ident{NamePos: miniPos(l.fset, id.Pos()), Name: lenName}, nil
	}
	return nil, blockf(l.fset, id.Pos(), "len-operand", "len of %s (not a slice or array)", id.Name)
}

// lowerCond lowers a boolean condition: comparisons of integer
// expressions combined with &&, ||, !.
func (l *lowerer) lowerCond(e goast.Expr) (ast.Expr, *Blocked) {
	switch x := goast.Unparen(e).(type) {
	case *goast.BinaryExpr:
		switch x.Op {
		case gotoken.LAND, gotoken.LOR:
			lo, b := l.lowerCond(x.X)
			if b != nil {
				return nil, b
			}
			ro, b := l.lowerCond(x.Y)
			if b != nil {
				return nil, b
			}
			op := token.AND
			if x.Op == gotoken.LOR {
				op = token.OR
			}
			return &ast.Binary{Op: op, L: lo, R: ro}, nil
		case gotoken.EQL, gotoken.NEQ, gotoken.LSS, gotoken.LEQ, gotoken.GTR, gotoken.GEQ:
			lo, b := l.lowerValueExpr(x.X)
			if b != nil {
				return nil, b
			}
			ro, b := l.lowerValueExpr(x.Y)
			if b != nil {
				return nil, b
			}
			var op token.Kind
			switch x.Op {
			case gotoken.EQL:
				op = token.EQ
			case gotoken.NEQ:
				op = token.NEQ
			case gotoken.LSS:
				op = token.LT
			case gotoken.LEQ:
				op = token.LEQ
			case gotoken.GTR:
				op = token.GT
			default:
				op = token.GEQ
			}
			return &ast.Binary{Op: op, L: lo, R: ro}, nil
		}
		return nil, blockf(l.fset, x.OpPos, "operator", "unsupported condition operator %s", x.Op)
	case *goast.UnaryExpr:
		if x.Op == gotoken.NOT {
			in, b := l.lowerCond(x.X)
			if b != nil {
				return nil, b
			}
			return &ast.Unary{OpPos: miniPos(l.fset, x.OpPos), Op: token.NOT, X: in}, nil
		}
	}
	return nil, blockf(l.fset, e.Pos(), "cond-form", "unsupported condition %s", renderGo(e))
}

// lowerRef lowers an (possibly nested) index expression to an ArrayRef,
// applying the 0-based → 1-based subscript shift.
func (l *lowerer) lowerRef(e *goast.IndexExpr) (ast.Expr, *Blocked) {
	var subs []goast.Expr
	base := goast.Expr(e)
	for {
		ix, ok := goast.Unparen(base).(*goast.IndexExpr)
		if !ok {
			break
		}
		subs = append([]goast.Expr{ix.Index}, subs...)
		base = ix.X
	}
	id, ok := goast.Unparen(base).(*goast.Ident)
	if !ok {
		return nil, blockf(l.fset, base.Pos(), "index-base", "indexed expression %s is not a plain identifier", renderGo(base))
	}
	obj := l.objectOf(id)
	if obj == nil {
		return nil, blockf(l.fset, id.Pos(), "unresolved-type", "array %s did not resolve", id.Name)
	}
	dims, elem, ok := elemStructure(obj.Type(), len(subs))
	if !ok {
		return nil, blockf(l.fset, id.Pos(), "index-base", "%s is not indexable at rank %d (map, string, or non-array type)", id.Name, len(subs))
	}
	for k, d := range dims {
		if k > 0 && d < 0 {
			return nil, blockf(l.fset, e.Pos(), "nested-slice", "nested slice indexing on %s (rows may alias)", id.Name)
		}
	}
	if !isInteger(elem) {
		return nil, blockf(l.fset, e.Pos(), "elem-type", "element type of %s is not an integer", id.Name)
	}
	name, b := l.registerArray(id, obj, len(subs))
	if b != nil {
		return nil, b
	}
	ref := &ast.ArrayRef{NamePos: miniPos(l.fset, id.Pos()), Name: name}
	for _, sub := range subs {
		se, b := l.lowerValueExpr(sub)
		if b != nil {
			return nil, b
		}
		// Shift: Go index k lives at mini subscript k+1 (dim A[n] is 1..n).
		ref.Subs = append(ref.Subs, sema.Simplify(&ast.Binary{Op: token.PLUS, L: se, R: intLit(1, se.Pos())}))
	}
	return ref, nil
}

// registerArray binds obj to a mini array name, recording rank, constant
// dims, and the first-use position. rank 0 marks a len-only use (no
// subscripts yet); the first indexed use fixes the real rank.
func (l *lowerer) registerArray(id *goast.Ident, obj types.Object, rank int) (string, *Blocked) {
	name, b := l.nameFor(obj, id)
	if b != nil {
		return "", b
	}
	ai, known := l.arrays[name]
	if known && (rank == 0 || ai.Rank == rank) {
		return name, nil
	}
	if known && ai.Rank != 0 {
		return "", blockf(l.fset, id.Pos(), "rank-mismatch", "%s indexed with %d subscript(s), previously %d", id.Name, rank, ai.Rank)
	}
	if !known {
		ai = &ArrayInfo{GoName: id.Name}
		l.arrays[name] = ai
		l.arrObj[name] = obj
		l.arrPos[name] = miniPos(l.fset, id.Pos())
	}
	ai.Rank = rank
	if rank > 0 {
		if dims, _, ok := elemStructure(obj.Type(), rank); ok {
			ai.Shape = dims
			allConst := true
			for _, d := range dims {
				if d < 0 {
					allConst = false
					break
				}
			}
			if allConst && len(dims) > 0 {
				ai.Dims = dims
			}
		}
	}
	return name, nil
}

// objectOf resolves an identifier to its types.Object (Uses then Defs).
func (l *lowerer) objectOf(id *goast.Ident) types.Object {
	if l.info == nil {
		return nil
	}
	if o := l.info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// constIntOf extracts a compile-time integer constant value (literals,
// named constants, constant folds) when it fits in int64 exactly.
func (l *lowerer) constIntOf(e goast.Expr) (int64, bool) {
	if l.info == nil {
		return 0, false
	}
	tv, ok := l.info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// nameFor maps a Go object to its mini-language name, mangling
// keyword-colliding spellings and keeping distinct objects distinct (Go
// shadowing becomes renaming, which preserves semantics).
func (l *lowerer) nameFor(obj types.Object, id *goast.Ident) (string, *Blocked) {
	if name, ok := l.names[obj]; ok {
		return name, nil
	}
	base := obj.Name()
	if !asciiIdent(base) {
		return "", blockf(l.fset, id.Pos(), "non-ascii-ident", "identifier %s is not ASCII", base)
	}
	if base == "_" {
		return "", blockf(l.fset, id.Pos(), "blank-ident", "blank identifier")
	}
	name := l.freshName(base)
	l.names[obj] = name
	return name, nil
}

// noteScalar records a scalar use (induction variables included) for the
// unit's bookkeeping tables.
func (l *lowerer) noteScalar(name, goName string) {
	if _, ok := l.scalars[name]; !ok {
		l.scalars[name] = &ScalarInfo{GoName: goName}
	}
}

// freshName returns base, keyword-mangled and uniquified against every
// name already taken in this unit.
func (l *lowerer) freshName(base string) string {
	name := base
	for miniKeywords[strings.ToLower(name)] || l.taken[name] {
		name += "_"
	}
	l.taken[name] = true
	return name
}

func asciiIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || (i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func intLit(v int64, pos token.Pos) ast.Expr {
	if v < 0 {
		return &ast.Unary{OpPos: pos, Op: token.MINUS, X: &ast.IntLit{LitPos: pos, Value: -v}}
	}
	return &ast.IntLit{LitPos: pos, Value: v}
}

// renderGo renders a go expression compactly for messages.
func renderGo(e goast.Expr) string {
	switch x := e.(type) {
	case *goast.Ident:
		return x.Name
	case *goast.SelectorExpr:
		return renderGo(x.X) + "." + x.Sel.Name
	case *goast.CallExpr:
		return renderGo(x.Fun) + "(...)"
	case *goast.IndexExpr:
		return renderGo(x.X) + "[...]"
	case *goast.SliceExpr:
		return renderGo(x.X) + "[:]"
	case *goast.ParenExpr:
		return "(" + renderGo(x.X) + ")"
	}
	return fmt.Sprintf("%T", e)
}
