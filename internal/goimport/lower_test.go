package goimport

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/lint"
	"repro/internal/parser"
	"repro/internal/sema"
)

// importSrc lowers one in-memory Go file and fails the test on resolver
// errors (the pattern itself can't fail for in-memory sources).
func importSrc(t *testing.T, src string) *Result {
	t.Helper()
	res, err := ImportSource("t.go", []byte(src))
	if err != nil {
		t.Fatalf("ImportSource: %v", err)
	}
	return res
}

// mini renders a unit's lowered program in mini-language source syntax.
func mini(u *Unit) string { return ast.ProgramString(u.Program) }

// TestCanonicalForms lowers each recognized loop shape and checks the
// rendered mini program against the expected header and subscript shift.
func TestCanonicalForms(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // substrings of the rendered mini program
	}{
		{
			name: "upward exclusive",
			src:  `package p; func F(a []int) { for i := 0; i < 10; i++ { a[i] = i } }`,
			want: []string{"do i = 0, 9", "a[i + 1] := i"},
		},
		{
			name: "upward inclusive",
			src:  `package p; func F(a []int, n int) { for i := 1; i <= n; i++ { a[i] = 0 } }`,
			want: []string{"do i = 1, n"},
		},
		{
			name: "downward",
			src:  `package p; func F(a []int, n int) { for i := n - 1; i >= 0; i-- { a[i] = 0 } }`,
			want: []string{"do i = n - 1, 0, -1"},
		},
		{
			name: "strided",
			src:  `package p; func F(a []int, n int) { for i := 0; i < n; i += 2 { a[i] = 0 } }`,
			want: []string{"do i = 0, n - 1, 2"},
		},
		{
			name: "len bound over slice",
			src:  `package p; func F(a []int) { for i := 0; i < len(a); i++ { a[i] = 0 } }`,
			want: []string{"do i = 0, a_len - 1"},
		},
		{
			name: "range over slice",
			src:  `package p; func F(a []int) { for i := range a { a[i] = 1 } }`,
			want: []string{"do i = 0, a_len - 1", "a[i + 1] := 1"},
		},
		{
			name: "range over int",
			src:  `package p; func F(a []int, n int) { for i := range n { a[i] = 0 } }`,
			want: []string{"do i = 0, n - 1"},
		},
		{
			name: "range with value binding",
			src:  `package p; func F(a []int) int { s := 0; for _, v := range a { s = s + v }; return s }`,
			want: []string{"do i_range = 0, a_len - 1", "v := a[i_range + 1]", "s := s + v"},
		},
		{
			name: "nested constant dims",
			src:  `package p; func F(m *[4][4]int) { for i := 0; i < 4; i++ { for j := 0; j < 4; j++ { m[i][j] = 0 } } }`,
			want: []string{"dim m[4, 4]", "do i = 0, 3", "do j = 0, 3", "m[i + 1, j + 1] := 0"},
		},
		{
			name: "triangular inner bound",
			src:  `package p; func F(m *[8][8]int) { for i := 0; i < 8; i++ { for j := 0; j <= i; j++ { m[i][j] = i } } }`,
			want: []string{"do j = 0, i"},
		},
		{
			name: "shifted condition",
			src:  `package p; func F(a []int, n int) { for i := 0; i+1 < n; i++ { a[i] = a[i+1] } }`,
			want: []string{"do i = 0, n - 2"},
		},
		{
			name: "shifted condition over len",
			src:  `package p; func F(a []int) { for i := 0; i+1 < len(a); i++ { a[i] = a[i+1] } }`,
			want: []string{"do i = 0, a_len - 2"},
		},
		{
			name: "negative shift inclusive",
			src:  `package p; func F(a []int, n int) { for i := 1; i-1 <= n; i++ { a[i-1] = 0 } }`,
			want: []string{"do i = 1, n + 1"},
		},
		{
			name: "constant-left shift",
			src:  `package p; func F(a []int, n int) { for i := 0; 2+i < n; i++ { a[i] = 0 } }`,
			want: []string{"do i = 0, n - 3"},
		},
		{
			name: "conditional body",
			src:  `package p; func F(a, b []int, n int) { for i := 0; i < n; i++ { if b[i] > 0 { a[i] = b[i] } else { a[i] = 0 } } }`,
			want: []string{"if b[i + 1] > 0 then", "else"},
		},
		{
			name: "keyword collision mangled",
			src:  `package p; func F(do []int, n int) { for i := 0; i < n; i++ { do[i] = 0 } }`,
			want: []string{"do_[i + 1] := 0"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := importSrc(t, tc.src)
			units := res.Units()
			if len(units) != 1 {
				t.Fatalf("got %d units, want 1; findings: %v", len(units), res.Findings())
			}
			got := mini(units[0])
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Errorf("lowered program missing %q:\n%s", w, got)
				}
			}
			// Every lowered program must round-trip through the mini parser
			// and pass semantic checking.
			prog, err := parser.Parse(got)
			if err != nil {
				t.Fatalf("rendered program does not re-parse: %v\n%s", err, got)
			}
			if _, err := sema.Normalize(prog); err != nil {
				t.Fatalf("re-parsed program does not normalize: %v\n%s", err, got)
			}
		})
	}
}

// TestBlockers feeds each unsupported construct and checks the loop is
// rejected with a finding naming the expected first blocking construct.
func TestBlockers(t *testing.T) {
	cases := []struct {
		construct string
		src       string
	}{
		{"headless-for", `package p; func F() { for { break } }`},
		{"cond-form", `package p; func F(a []int, ok bool, n int) { for i := 0; ok; i++ { a[i] = 0 } }`},
		{"cond-direction", `package p; func F(a []int, n int) { for i := 0; i != n; i++ { a[i] = 0 } }`},
		{"post-step", `package p; func F(a []int, n, k int) { for i := 0; i < n; i += k { a[i] = 0 } }`},
		{"cond-direction", `package p; func F(a []int, n int) { for i := 0; i > n; i++ { a[i] = 0 } }`},
		{"bound-uses-iv", `package p; func F(a []int, n int) { for i := 0; i < n-i; i++ { a[i] = 0 } }`},
		{"range-over-map", `package p; func F(m map[int]int) { for k := range m { _ = k } }`},
		{"range-over-string", `package p; func F(s string) { for i := range s { _ = i } }`},
		{"range-value-array", `package p; func F(a [4]int) int { s := 0; for _, v := range a { s += v }; return s }`},
		{"call", `package p; func g() {}; func F(a []int, n int) { for i := 0; i < n; i++ { g() } }`},
		{"branch", `package p; func F(a []int, n int) { for i := 0; i < n; i++ { if a[i] > 0 { break } } }`},
		{"return", `package p; func F(a []int, n int) int { for i := 0; i < n; i++ { return a[i] }; return 0 }`},
		{"multi-assign", `package p; func F(a []int, n int) { for i := 0; i < n; i++ { x, y := 1, 2; a[i] = x + y } }`},
		{"iv-assign", `package p; func F(a []int, n int) { for i := 0; i < n; i++ { i = i + 1 } }`},
		{"bound-modified", `package p; func F(a []int, n int) { for i := 0; i < n; i++ { n = n - 1; a[i] = 0 } }`},
		{"selector", `package p; type S struct{ x int }; func F(s S, a []int, n int) { for i := 0; i < n; i++ { a[i] = s.x } }`},
		{"index-base", `package p; func F(a, b []int, n int) { for i := 0; i < n; i++ { a[i] = b[1:][0] } }`},
		{"nested-slice", `package p; func F(a [][]int, n int) { for i := 0; i < n; i++ { a[i][0] = 0 } }`},
		{"elem-type", `package p; func F(a []string, n int) { for i := 0; i < n; i++ { a[i] = "" } }`},
		{"scalar-type", `package p; func F(a []int, n int, y float64) { for i := 0; i < n; i++ { a[i] = a[i] + y } }`},
		{"lhs-type", `package p; func F(a []int, n int) { for i := 0; i < n; i++ { x := 1.5; a[i] = int(x) } }`},
		{"defer", `package p; func F(a []int, n int) { for i := 0; i < n; i++ { defer func() {}() } }`},
		{"go", `package p; func F(a []int, n int) { for i := 0; i < n; i++ { go func() {}() } }`},
	}
	for _, tc := range cases {
		t.Run(tc.construct, func(t *testing.T) {
			res := importSrc(t, tc.src)
			if n := len(res.Units()); n != 0 {
				t.Fatalf("got %d units, want the loop blocked", n)
			}
			var got []string
			for _, f := range res.Findings() {
				if f.Analyzer != Analyzer {
					continue
				}
				got = append(got, f.Detail["construct"])
				if f.Detail["construct"] == tc.construct {
					if f.Pos.Line <= 0 {
						t.Errorf("blocker finding has no position: %+v", f)
					}
					return
				}
			}
			t.Errorf("no finding with construct %q; got %v", tc.construct, got)
		})
	}
}

// TestAliasBlocking checks that a slice-header copy inside the function
// blocks the nest (two mini arrays may share a backing array, which the
// framework's no-alias model cannot express) while ordinary disjoint
// parameters lower fine.
func TestAliasBlocking(t *testing.T) {
	blocked := importSrc(t, `package p
func F(a []int, n int) {
	b := a
	for i := 0; i < n; i++ {
		a[i] = b[i]
	}
}`)
	if len(blocked.Units()) != 0 {
		t.Fatalf("aliased slices lowered; want blocked")
	}
	found := false
	for _, f := range blocked.Findings() {
		if strings.Contains(f.Message, "backing array") {
			found = true
		}
	}
	if !found {
		t.Errorf("no aliasing finding; got %v", blocked.Findings())
	}

	ok := importSrc(t, `package p
func F(a, b []int, n int) {
	for i := 0; i < n; i++ {
		a[i] = b[i]
	}
}`)
	if len(ok.Units()) != 1 {
		t.Fatalf("distinct parameters blocked: %v", ok.Findings())
	}
}

// TestBlockedOuterRecoversInner checks a blocked outer loop still yields
// its canonical inner loop as a unit plus a positioned blocker finding —
// unsupported loops are never silently dropped.
func TestBlockedOuterRecoversInner(t *testing.T) {
	res := importSrc(t, `package p
func g() bool { return false }
func F(a []int, n int) {
	for g() {
		for i := 0; i < n; i++ {
			a[i] = i
		}
	}
}`)
	units := res.Units()
	if len(units) != 1 {
		t.Fatalf("got %d units, want the inner loop recovered", len(units))
	}
	if units[0].Pos.Line != 5 {
		t.Errorf("inner unit at line %d, want 5", units[0].Pos.Line)
	}
	var blockers int
	for _, f := range res.Findings() {
		if f.Analyzer == Analyzer && f.Severity == diag.Info {
			blockers++
			if f.Pos.Line != 4 {
				t.Errorf("blocker at line %d, want 4 (the outer for)", f.Pos.Line)
			}
		}
	}
	if blockers != 1 {
		t.Errorf("got %d blocker findings, want 1", blockers)
	}
}

// TestFindingsCarryGoPositions is the acceptance golden test: vetting a Go
// source produces analyzer findings whose File is the .go display name and
// whose line numbers point at the real Go statements.
func TestFindingsCarryGoPositions(t *testing.T) {
	src := `package p

func Recurrence(a, b []int, n int) {
	for i := 1; i < n; i++ {
		a[i] = a[i-1] + b[i]
	}
}

func Saxpy(a, b []int, s, n int) {
	for i := 0; i < n; i++ {
		a[i] = a[i] + s*b[i]
	}
}
`
	res := VetSource("kern.go", []byte(src), &lint.Options{Parallelism: 1})
	if res.FrontEndFailed {
		t.Fatalf("front end failed: %v", res.Findings)
	}
	if len(res.Findings) == 0 {
		t.Fatal("no findings")
	}
	// Every finding must cite the Go file and a line inside it.
	lines := strings.Count(src, "\n")
	for _, f := range res.Findings {
		if f.File != "kern.go" {
			t.Errorf("finding File = %q, want kern.go: %+v", f.File, f)
		}
		if f.Pos.Line < 1 || f.Pos.Line > lines {
			t.Errorf("finding line %d outside the file: %+v", f.Pos.Line, f)
		}
	}
	// The race verdicts anchor at the loop headers: line 4 (racy flow
	// dependence) and line 10 (parallel).
	verdictAt := map[int]string{}
	for _, f := range res.Findings {
		if v := f.Detail["verdict"]; v != "" {
			verdictAt[f.Pos.Line] = v
		}
	}
	if verdictAt[4] != "racy" {
		t.Errorf("line 4 verdict = %q, want racy (flow dependence)", verdictAt[4])
	}
	if verdictAt[10] != "parallel" {
		t.Errorf("line 10 verdict = %q, want parallel", verdictAt[10])
	}
}

// TestKernelsGolden lowers the checked-in examples/go corpus and pins the
// extraction profile: every kernel lowers (no blockers), and the unit set
// is stable by (file, line).
func TestKernelsGolden(t *testing.T) {
	res, err := ImportTree("../../examples/go", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings() {
		if f.Analyzer == Analyzer {
			t.Errorf("unexpected blocker in kernels corpus: %s:%d %s", f.File, f.Pos.Line, f.Message)
		}
	}
	units := res.Units()
	if len(units) < 25 {
		t.Fatalf("kernels corpus yields %d units, want >= 25", len(units))
	}
	for _, u := range units {
		if u.File != "examples/go/kernels.go" {
			t.Errorf("unit File = %q, want module-relative examples/go/kernels.go", u.File)
		}
		if u.Pos.Line <= 0 {
			t.Errorf("unit %s has no line", u.Func)
		}
		if _, err := parser.Parse(mini(u)); err != nil {
			t.Errorf("%s does not re-parse: %v", u.Func, err)
		}
	}
}
