package goimport

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/lint"
	"repro/internal/rangefacts"
	"repro/internal/sema"
)

// RuleMetas extends the standard analyzer rules table with the importer's
// blocker rule, so -lang go SARIF logs document every analyzer they cite.
func RuleMetas() []diag.RuleMeta {
	return append(lint.RuleMetas(), diag.RuleMeta{
		ID:      Analyzer,
		Doc:     "Go loop the importer could not lower into the framework (the finding names the first blocking construct)",
		Default: diag.Info,
	})
}

// Vet runs the full Go-front-end pipeline over pattern: import every file,
// lower every canonical loop nest, normalize and analyze each lowered unit
// with the standard analyzer set, and merge the analyzer findings with the
// importer's blocker findings. Every finding carries its module-root-
// relative File, so text, JSON, and SARIF output all point at real .go
// lines.
//
// The pattern itself failing to resolve is the only hard error; per-file
// parse failures become Error findings and mark the front end failed
// (exit 2), matching the mini-language contract that findings from a
// partially analyzed input are never silently presented as complete.
func Vet(pattern string, includeTests bool, opts *lint.Options) (*lint.VetResult, error) {
	res, err := ImportTree(pattern, includeTests)
	if err != nil {
		return nil, err
	}
	return vetResult(pattern, res, opts), nil
}

// VetSource is the single-file in-memory variant (the HTTP service path).
func VetSource(name string, src []byte, opts *lint.Options) *lint.VetResult {
	res, err := ImportSource(name, src)
	if err != nil {
		vr := &lint.VetResult{File: name, Src: string(src), FrontEndFailed: true}
		if opts != nil {
			vr.Werror = opts.Werror
		}
		fr := parseFailure(name, err)
		vr.Findings = fr.Findings
		diag.Sort(vr.Findings)
		return vr
	}
	return vetResult(name, res, opts)
}

// LenFacts builds the range facts Go's semantics guarantee for one
// lowered unit: every synthesized len(s) bound scalar is nonnegative. The
// mini language cannot state this invariant itself, so the front end
// seeds it into each unit's range-fact derivation; it is what lets the
// analyzers resolve symbolic comparisons against slice-length bounds.
func LenFacts(u *Unit) []rangefacts.Fact {
	var out []rangefacts.Fact
	for _, name := range sortedKeys(u.Scalars) {
		if si := u.Scalars[name]; si.LenOf != "" {
			out = append(out, rangefacts.AtLeast(name, 0, fmt.Sprintf("Go len(%s) >= 0", si.LenOf)))
		}
	}
	return out
}

// vetResult analyzes every lowered unit and folds the results into one
// lint.VetResult.
func vetResult(display string, res *Result, opts *lint.Options) *lint.VetResult {
	if opts == nil {
		opts = &lint.Options{}
	}
	o := *opts
	// Suggested fixes splice source text; the text the analyzers see is the
	// lowered mini form, not the .go file, so fixes must stay off.
	o.Src = ""
	vr := &lint.VetResult{File: display, Werror: o.Werror}

	findings := res.Findings()
	for _, f := range findings {
		if f.Severity == diag.Error {
			// Unreadable or unparseable file: the import is incomplete.
			vr.FrontEndFailed = true
		}
	}
	for _, u := range res.Units() {
		norm, err := sema.Normalize(u.Program)
		if err != nil {
			findings = append(findings, diag.Finding{
				Analyzer: Analyzer,
				File:     u.File,
				Pos:      u.Pos,
				Severity: diag.Error,
				Message:  "lowered loop failed to normalize: " + err.Error(),
				Detail:   map[string]string{"construct": "normalize", "func": u.Func},
			})
			vr.FrontEndFailed = true
			continue
		}
		uo := o
		uo.Assume = append(append([]rangefacts.Fact(nil), o.Assume...), LenFacts(u)...)
		unitFindings, _, err := lint.Run(u.File, norm, &uo)
		if err != nil {
			findings = append(findings, diag.Finding{
				Analyzer: Analyzer,
				File:     u.File,
				Pos:      u.Pos,
				Severity: diag.Error,
				Message:  "analysis failed: " + err.Error(),
				Detail:   map[string]string{"construct": "analysis", "func": u.Func},
			})
			vr.FrontEndFailed = true
			continue
		}
		for i := range unitFindings {
			unitFindings[i].File = u.File
		}
		findings = append(findings, unitFindings...)
	}
	diag.Sort(findings)
	findings = diag.Dedup(findings)
	vr.Baselined = o.Baseline.Apply(findings)
	vr.Findings = findings
	return vr
}
