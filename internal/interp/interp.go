// Package interp is a reference interpreter for the loop mini-language.
//
// It serves as the semantic oracle of this reproduction: every optimization
// (register pipelining, load/store elimination, unrolling, peeling) is
// validated by running the original and the transformed program on the same
// inputs and comparing final memory states. The interpreter also counts
// source-level array loads and stores, giving an architecture-independent
// measure of the memory traffic the optimizations remove.
package interp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/token"
)

// Elem identifies one array element by name and subscript values.
type Elem struct {
	Array string
	// Key encodes the subscript tuple; one-dimensional elements use the
	// subscript value directly.
	Key string
}

func elemKey(subs []int64) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ",")
}

// State is the mutable program state.
type State struct {
	Scalars map[string]int64
	Arrays  map[string]map[string]int64
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Scalars: map[string]int64{}, Arrays: map[string]map[string]int64{}}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := NewState()
	for k, v := range s.Scalars {
		out.Scalars[k] = v
	}
	for a, m := range s.Arrays {
		cm := make(map[string]int64, len(m))
		for k, v := range m {
			cm[k] = v
		}
		out.Arrays[a] = cm
	}
	return out
}

// SetArray sets one element of a one-dimensional array.
func (s *State) SetArray(name string, idx int64, v int64) {
	m := s.Arrays[name]
	if m == nil {
		m = map[string]int64{}
		s.Arrays[name] = m
	}
	m[elemKey([]int64{idx})] = v
}

// GetArray reads one element of a one-dimensional array (default 0).
func (s *State) GetArray(name string, idx int64) int64 {
	return s.Arrays[name][elemKey([]int64{idx})]
}

// SetArrayN sets a multi-dimensional element.
func (s *State) SetArrayN(name string, idx []int64, v int64) {
	m := s.Arrays[name]
	if m == nil {
		m = map[string]int64{}
		s.Arrays[name] = m
	}
	m[elemKey(idx)] = v
}

// GetArrayN reads a multi-dimensional element.
func (s *State) GetArrayN(name string, idx []int64) int64 {
	return s.Arrays[name][elemKey(idx)]
}

// ArraysEqual compares the array portions of two states, treating missing
// entries as zero.
func ArraysEqual(a, b *State) bool { return DiffArrays(a, b) == "" }

// DiffArrays describes the first few differences between the array states,
// or "" when equal (missing entries are zero).
func DiffArrays(a, b *State) string {
	var diffs []string
	names := map[string]bool{}
	for n := range a.Arrays {
		names[n] = true
	}
	for n := range b.Arrays {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		keys := map[string]bool{}
		for k := range a.Arrays[n] {
			keys[k] = true
		}
		for k := range b.Arrays[n] {
			keys[k] = true
		}
		sk := make([]string, 0, len(keys))
		for k := range keys {
			sk = append(sk, k)
		}
		sort.Strings(sk)
		for _, k := range sk {
			av, bv := a.Arrays[n][k], b.Arrays[n][k]
			if av != bv {
				diffs = append(diffs, fmt.Sprintf("%s[%s]: %d vs %d", n, k, av, bv))
				if len(diffs) >= 8 {
					return strings.Join(diffs, "; ") + "; ..."
				}
			}
		}
	}
	return strings.Join(diffs, "; ")
}

// Stats counts dynamic events during execution.
type Stats struct {
	// ArrayLoads / ArrayStores count element reads and writes per array.
	ArrayLoads  map[string]int64
	ArrayStores map[string]int64
	// Stmts counts executed assignments; Iterations counts loop-iteration
	// entries across all loops.
	Stmts      int64
	Iterations int64
}

// TotalLoads sums loads across arrays.
func (st *Stats) TotalLoads() int64 {
	var n int64
	for _, v := range st.ArrayLoads {
		n += v
	}
	return n
}

// TotalStores sums stores across arrays.
func (st *Stats) TotalStores() int64 {
	var n int64
	for _, v := range st.ArrayStores {
		n += v
	}
	return n
}

// RuntimeError is an execution error with position.
type RuntimeError struct {
	Pos token.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: runtime: %s", e.Pos, e.Msg) }

// Options bounds execution and exposes the instrumentation hooks the
// certifying analyzers use (witness replay and parallel permutation checks
// in internal/lint).
type Options struct {
	// MaxSteps caps executed assignments+iterations (default 50 million).
	MaxSteps int64
	// TraceRef, when set, observes every array element access: the
	// syntactic reference being executed, whether it is a store, and the
	// concrete subscript tuple. The callback must not mutate idx.
	TraceRef func(ref *ast.ArrayRef, isStore bool, idx []int64)
	// LoopIter, when set, observes the start of every loop iteration with
	// the loop being run and the induction value for the iteration.
	LoopIter func(loop *ast.DoLoop, iter int64)
	// LoopDone, when set, observes a loop finishing (after its last
	// iteration, before the induction variable is restored).
	LoopDone func(loop *ast.DoLoop)
	// LoopOrder, when set, may permute a loop's iteration schedule: it
	// receives the loop and the natural induction-value sequence and
	// returns the order to execute (nil keeps the natural order). The
	// parallel permutation check runs provably-parallel loops through a
	// shuffled order and compares final memories.
	LoopOrder func(loop *ast.DoLoop, iters []int64) []int64
}

type machine struct {
	st    *State
	stats *Stats
	steps int64
	max   int64
	opts  Options
}

// Run executes the program on a copy of init (nil = empty) and returns the
// final state and statistics.
func Run(prog *ast.Program, init *State, opts *Options) (*State, *Stats, error) {
	if init == nil {
		init = NewState()
	}
	maxSteps := int64(50_000_000)
	if opts != nil && opts.MaxSteps > 0 {
		maxSteps = opts.MaxSteps
	}
	m := &machine{
		st:    init.Clone(),
		stats: &Stats{ArrayLoads: map[string]int64{}, ArrayStores: map[string]int64{}},
		max:   maxSteps,
	}
	if opts != nil {
		m.opts = *opts
	}
	if err := m.execBlock(prog.Body); err != nil {
		return m.st, m.stats, err
	}
	return m.st, m.stats, nil
}

func (m *machine) step(pos token.Pos) error {
	m.steps++
	if m.steps > m.max {
		return &RuntimeError{Pos: pos, Msg: "step limit exceeded"}
	}
	return nil
}

func (m *machine) execBlock(body []ast.Stmt) error {
	for _, s := range body {
		if err := m.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (m *machine) execStmt(s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.Assign:
		if err := m.step(st.Pos()); err != nil {
			return err
		}
		m.stats.Stmts++
		v, err := m.eval(st.RHS)
		if err != nil {
			return err
		}
		switch lhs := st.LHS.(type) {
		case *ast.Ident:
			m.st.Scalars[lhs.Name] = v
		case *ast.ArrayRef:
			idx, err := m.evalSubs(lhs)
			if err != nil {
				return err
			}
			if m.opts.TraceRef != nil {
				m.opts.TraceRef(lhs, true, idx)
			}
			m.st.SetArrayN(lhs.Name, idx, v)
			m.stats.ArrayStores[lhs.Name]++
		default:
			return &RuntimeError{Pos: st.Pos(), Msg: "invalid assignment target"}
		}
		return nil

	case *ast.If:
		c, err := m.eval(st.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return m.execBlock(st.Then)
		}
		return m.execBlock(st.Else)

	case *ast.DoLoop:
		lo, err := m.eval(st.Lo)
		if err != nil {
			return err
		}
		hi, err := m.eval(st.Hi)
		if err != nil {
			return err
		}
		step := int64(1)
		if st.Step != nil {
			step, err = m.eval(st.Step)
			if err != nil {
				return err
			}
			if step == 0 {
				return &RuntimeError{Pos: st.Pos(), Msg: "zero loop step"}
			}
		}
		saved, had := m.st.Scalars[st.Var]
		runIter := func(i int64) error {
			if err := m.step(st.Pos()); err != nil {
				return err
			}
			m.stats.Iterations++
			if m.opts.LoopIter != nil {
				m.opts.LoopIter(st, i)
			}
			m.st.Scalars[st.Var] = i
			return m.execBlock(st.Body)
		}
		if m.opts.LoopOrder != nil {
			// Materialize the natural schedule and let the hook permute it.
			// The schedule length is already bounded by the step budget.
			var iters []int64
			for i := lo; (step > 0 && i <= hi) || (step < 0 && i >= hi); i += step {
				iters = append(iters, i)
				if int64(len(iters)) > m.max {
					return &RuntimeError{Pos: st.Pos(), Msg: "step limit exceeded"}
				}
			}
			if order := m.opts.LoopOrder(st, iters); order != nil {
				iters = order
			}
			for _, i := range iters {
				if err := runIter(i); err != nil {
					return err
				}
			}
		} else {
			for i := lo; (step > 0 && i <= hi) || (step < 0 && i >= hi); i += step {
				if err := runIter(i); err != nil {
					return err
				}
			}
		}
		if m.opts.LoopDone != nil {
			m.opts.LoopDone(st)
		}
		// Restore the induction variable so programs after the loop see the
		// pre-loop binding (the language gives it loop-local scope).
		if had {
			m.st.Scalars[st.Var] = saved
		} else {
			delete(m.st.Scalars, st.Var)
		}
		return nil

	case *ast.Dim:
		// Declarations have no runtime effect; the interpreter's arrays
		// grow on demand.
		return nil
	}
	return &RuntimeError{Msg: "unknown statement"}
}

func (m *machine) evalSubs(ref *ast.ArrayRef) ([]int64, error) {
	idx := make([]int64, len(ref.Subs))
	for k, sub := range ref.Subs {
		v, err := m.eval(sub)
		if err != nil {
			return nil, err
		}
		idx[k] = v
	}
	return idx, nil
}

func (m *machine) eval(e ast.Expr) (int64, error) {
	switch ex := e.(type) {
	case *ast.IntLit:
		return ex.Value, nil
	case *ast.Ident:
		return m.st.Scalars[ex.Name], nil
	case *ast.ArrayRef:
		idx, err := m.evalSubs(ex)
		if err != nil {
			return 0, err
		}
		if m.opts.TraceRef != nil {
			m.opts.TraceRef(ex, false, idx)
		}
		m.stats.ArrayLoads[ex.Name]++
		return m.st.GetArrayN(ex.Name, idx), nil
	case *ast.Unary:
		v, err := m.eval(ex.X)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case token.MINUS:
			return -v, nil
		case token.NOT:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, &RuntimeError{Pos: ex.Pos(), Msg: "bad unary operator"}
	case *ast.Binary:
		// Short-circuit boolean operators.
		switch ex.Op {
		case token.AND:
			l, err := m.eval(ex.L)
			if err != nil || l == 0 {
				return 0, err
			}
			r, err := m.eval(ex.R)
			if err != nil {
				return 0, err
			}
			return boolToInt(r != 0), nil
		case token.OR:
			l, err := m.eval(ex.L)
			if err != nil {
				return 0, err
			}
			if l != 0 {
				return 1, nil
			}
			r, err := m.eval(ex.R)
			if err != nil {
				return 0, err
			}
			return boolToInt(r != 0), nil
		}
		l, err := m.eval(ex.L)
		if err != nil {
			return 0, err
		}
		r, err := m.eval(ex.R)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case token.PLUS:
			return l + r, nil
		case token.MINUS:
			return l - r, nil
		case token.STAR:
			return l * r, nil
		case token.SLASH:
			if r == 0 {
				return 0, &RuntimeError{Pos: ex.Pos(), Msg: "division by zero"}
			}
			return l / r, nil
		case token.MOD:
			if r == 0 {
				return 0, &RuntimeError{Pos: ex.Pos(), Msg: "modulo by zero"}
			}
			return l % r, nil
		case token.EQ:
			return boolToInt(l == r), nil
		case token.NEQ:
			return boolToInt(l != r), nil
		case token.LT:
			return boolToInt(l < r), nil
		case token.LEQ:
			return boolToInt(l <= r), nil
		case token.GT:
			return boolToInt(l > r), nil
		case token.GEQ:
			return boolToInt(l >= r), nil
		}
		return 0, &RuntimeError{Pos: ex.Pos(), Msg: "bad binary operator"}
	}
	return 0, &RuntimeError{Msg: "unknown expression"}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
