package interp

import (
	"testing"

	"repro/internal/parser"
)

func TestSimpleAssignments(t *testing.T) {
	prog := parser.MustParse("a := 2 + 3 * 4\nb := a - 1")
	st, _, err := Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scalars["a"] != 14 || st.Scalars["b"] != 13 {
		t.Fatalf("a=%d b=%d", st.Scalars["a"], st.Scalars["b"])
	}
}

func TestLoopSum(t *testing.T) {
	prog := parser.MustParse(`
s := 0
do i = 1, 10
  s := s + i
enddo
`)
	st, stats, err := Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scalars["s"] != 55 {
		t.Fatalf("s = %d, want 55", st.Scalars["s"])
	}
	if stats.Iterations != 10 {
		t.Errorf("iterations = %d, want 10", stats.Iterations)
	}
}

func TestArrayReadWrite(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 5
  A[i] := i * i
enddo
x := A[3]
`)
	st, stats, err := Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scalars["x"] != 9 {
		t.Fatalf("x = %d, want 9", st.Scalars["x"])
	}
	if st.GetArray("A", 5) != 25 {
		t.Fatalf("A[5] = %d, want 25", st.GetArray("A", 5))
	}
	if stats.ArrayStores["A"] != 5 || stats.ArrayLoads["A"] != 1 {
		t.Errorf("stores=%d loads=%d, want 5/1", stats.ArrayStores["A"], stats.ArrayLoads["A"])
	}
}

func TestFig5Semantics(t *testing.T) {
	// A[i+2] := A[i] + X with A[1]=A[2]=1, X=0 produces a shifted Fibonacci
	// flavor: every element copies its grandparent.
	prog := parser.MustParse(`
do i = 1, 10
  A[i+2] := A[i] + X
enddo
`)
	init := NewState()
	init.SetArray("A", 1, 7)
	init.SetArray("A", 2, 9)
	init.Scalars["X"] = 1
	st, stats, err := Run(prog, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A[3] = A[1]+1 = 8; A[5] = A[3]+1 = 9; A[7] = 10 …
	if got := st.GetArray("A", 7); got != 10 {
		t.Fatalf("A[7] = %d, want 10", got)
	}
	if got := st.GetArray("A", 12); got != 9+5 {
		t.Fatalf("A[12] = %d, want 14", got)
	}
	if stats.ArrayLoads["A"] != 10 || stats.ArrayStores["A"] != 10 {
		t.Errorf("loads/stores = %d/%d, want 10/10", stats.ArrayLoads["A"], stats.ArrayStores["A"])
	}
}

func TestConditional(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 10
  if i % 2 == 0 then
    A[i] := 1
  else
    A[i] := 2
  endif
enddo
`)
	st, _, err := Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.GetArray("A", 4) != 1 || st.GetArray("A", 7) != 2 {
		t.Fatalf("A[4]=%d A[7]=%d", st.GetArray("A", 4), st.GetArray("A", 7))
	}
}

func TestMultiDim(t *testing.T) {
	prog := parser.MustParse(`
do j = 1, 3
  do i = 1, 3
    X[i, j] := i * 10 + j
  enddo
enddo
y := X[2, 3]
`)
	st, _, err := Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scalars["y"] != 23 {
		t.Fatalf("y = %d, want 23", st.Scalars["y"])
	}
}

func TestIVScopedToLoop(t *testing.T) {
	prog := parser.MustParse(`
i := 99
do i = 1, 5
  A[i] := i
enddo
x := i
`)
	st, _, err := Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scalars["x"] != 99 {
		t.Fatalf("induction variable leaked: x = %d, want 99", st.Scalars["x"])
	}
}

func TestNegativeStepLoop(t *testing.T) {
	prog := parser.MustParse(`
do i = 5, 1, -1
  A[i] := 6 - i
enddo
`)
	st, _, err := Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.GetArray("A", 5) != 1 || st.GetArray("A", 1) != 5 {
		t.Fatal("negative step wrong")
	}
}

func TestZeroTripLoop(t *testing.T) {
	prog := parser.MustParse("do i = 5, 4\n A[i] := 1\nenddo")
	st, stats, err := Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Arrays["A"]) != 0 || stats.Iterations != 0 {
		t.Fatal("zero-trip loop executed")
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of `and` must not evaluate when the left is false:
	// otherwise the division would trap.
	prog := parser.MustParse(`
z := 0
if z != 0 and 10 / z > 1 then
  a := 1
endif
a := a + 2
`)
	st, _, err := Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scalars["a"] != 2 {
		t.Fatalf("a = %d, want 2", st.Scalars["a"])
	}
}

func TestDivisionByZeroError(t *testing.T) {
	prog := parser.MustParse("a := 1 / z")
	if _, _, err := Run(prog, nil, nil); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestStepLimit(t *testing.T) {
	prog := parser.MustParse("do i = 1, 1000000\n A[1] := i\nenddo")
	_, _, err := Run(prog, nil, &Options{MaxSteps: 1000})
	if err == nil {
		t.Fatal("expected step limit error")
	}
}

func TestDiffArrays(t *testing.T) {
	a, b := NewState(), NewState()
	a.SetArray("A", 1, 5)
	b.SetArray("A", 1, 5)
	if !ArraysEqual(a, b) {
		t.Fatal("equal states reported different")
	}
	b.SetArray("A", 2, 1)
	if ArraysEqual(a, b) {
		t.Fatal("different states reported equal")
	}
	// Zero-valued entries count as absent.
	c, d := NewState(), NewState()
	c.SetArray("A", 3, 0)
	if !ArraysEqual(c, d) {
		t.Fatal("explicit zero must equal missing")
	}
}

func TestCloneIsolation(t *testing.T) {
	a := NewState()
	a.SetArray("A", 1, 5)
	a.Scalars["x"] = 1
	b := a.Clone()
	b.SetArray("A", 1, 9)
	b.Scalars["x"] = 2
	if a.GetArray("A", 1) != 5 || a.Scalars["x"] != 1 {
		t.Fatal("clone not isolated")
	}
}
