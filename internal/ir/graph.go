// Package ir builds the loop flow graph FG = (N, E) of paper §3.
//
// Nodes denote statements in the loop body or summary nodes standing for
// nested loops; a distinguished exit node carries the induction-variable
// increment i := i+1 and closes the single cycle exit → entry. Graphs are
// built hierarchically: the innermost loops are analyzed on their own
// graphs, and appear as summary nodes in the graph of each enclosing loop,
// so no graph ever contains nested cyclic control flow.
//
// Node granularity follows the paper's Figure 3: each assignment or nested
// loop is one node, and the test of an IF is folded into the immediately
// preceding node of the same block when one exists (the paper's node 2 holds
// both "B[2i] := C[i]+X" and the branch "if C[i]"); an IF that begins a
// block gets a dedicated condition node.
package ir

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/poly"
	"repro/internal/sema"
	"repro/internal/token"
)

// NodeKind classifies graph nodes.
type NodeKind int

const (
	// KindStmt is an assignment node (possibly carrying a folded branch
	// condition).
	KindStmt NodeKind = iota
	// KindCond is a pure condition node (an IF that begins a block).
	KindCond
	// KindSummary stands for a nested loop.
	KindSummary
	// KindExit is the unique increment node i := i+1.
	KindExit
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindStmt:
		return "stmt"
	case KindCond:
		return "cond"
	case KindSummary:
		return "summary"
	case KindExit:
		return "exit"
	}
	return "?"
}

// RefKind distinguishes definitions (stores) from uses (loads).
type RefKind int

const (
	// Def is a definition: the reference appears as an assignment target.
	Def RefKind = iota
	// Use is a use: the reference appears in an expression.
	Use
)

// String names the reference kind.
func (k RefKind) String() string {
	if k == Def {
		return "def"
	}
	return "use"
}

// Ref is one textual subscripted reference occurring in a node.
type Ref struct {
	// ID is the 1-based index of the reference within the graph, assigned
	// in source order (defs and uses interleaved as encountered).
	ID   int
	Node *Node
	Kind RefKind
	// Array is the referenced array's name.
	Array string
	// Expr is the syntactic reference.
	Expr *ast.ArrayRef
	// Form is the linearized affine subscript with respect to the graph's
	// induction variable; valid only when Affine is true.
	Form   sema.AffineForm
	Affine bool
	// FromInner is set on references collected out of a summarized inner
	// loop whose subscripts involve that loop's induction variable. Such
	// references cannot generate in the enclosing analysis but kill
	// conservatively (paper §3.2).
	FromInner bool
	// InnerAffine preserves, for FromInner references, whether the
	// linearized Form (over the ENCLOSING loop's induction variable, with
	// inner induction variables left as free symbols of B) was computed
	// successfully before Affine was cleared. The race certifier's nest
	// footprint analysis consumes the Form only under this flag — Affine
	// alone is not enough, because a failed linearization leaves a
	// zero-value Form that would silently read as "constant subscript 0".
	InnerAffine bool
	// HasRegion marks FromInner references whose touched address range is
	// a compile-time constant interval [RegionLo, RegionHi] — computable
	// when the subscript is affine in an inner induction variable with
	// constant coefficients and the inner loop bound is constant. The
	// paper lists exploiting inner bounds for "more accurate killing
	// information in an enclosing loop" as under investigation (§3.2);
	// this implements the constant-bounds case.
	HasRegion          bool
	RegionLo, RegionHi int64
}

// String renders the reference for diagnostics, e.g. "def C[i+2]@n3".
func (r *Ref) String() string {
	return fmt.Sprintf("%s %s@n%d", r.Kind, ast.ExprString(r.Expr), r.Node.ID)
}

// Node is a loop flow graph node.
type Node struct {
	ID   int // 1-based; the exit node is always the highest ID
	Kind NodeKind

	// SrcPos is the source position of the statement (or condition) the
	// node stands for; the exit node carries its loop's position. Zero for
	// synthesized nodes.
	SrcPos token.Pos

	// Assign is set for KindStmt nodes.
	Assign *ast.Assign
	// Cond is the branch condition attached to this node (KindStmt with a
	// folded IF, or KindCond). Nil when the node does not branch.
	Cond ast.Expr
	// Loop is set for KindSummary nodes.
	Loop *ast.DoLoop

	Succs []*Node
	Preds []*Node

	// Refs are the subscripted references occurring in this node, in
	// evaluation order (RHS uses, LHS subscript uses, LHS def, then
	// condition uses).
	Refs []*Ref
}

// Label renders the node's content for display.
func (n *Node) Label() string {
	var parts []string
	switch n.Kind {
	case KindStmt:
		s := strings.TrimRight(ast.StmtString(n.Assign, 0), "\n")
		parts = append(parts, s)
	case KindSummary:
		parts = append(parts, fmt.Sprintf("do %s ... enddo", n.Loop.Var))
	case KindExit:
		parts = append(parts, "i := i+1 (exit)")
	}
	if n.Cond != nil {
		parts = append(parts, "if "+ast.ExprString(n.Cond))
	}
	if len(parts) == 0 {
		parts = append(parts, "<empty>")
	}
	return strings.Join(parts, "; ")
}

// Defs returns the definition references of the node.
func (n *Node) Defs() []*Ref {
	var out []*Ref
	for _, r := range n.Refs {
		if r.Kind == Def {
			out = append(out, r)
		}
	}
	return out
}

// Uses returns the use references of the node.
func (n *Node) Uses() []*Ref {
	var out []*Ref
	for _, r := range n.Refs {
		if r.Kind == Use {
			out = append(out, r)
		}
	}
	return out
}

// Graph is the loop flow graph of a single loop.
type Graph struct {
	// Loop is the analyzed DO loop.
	Loop *ast.DoLoop
	// IV is the loop's induction variable name.
	IV string
	// UB is the loop's upper-bound expression; UBConst holds its value when
	// it is a compile-time constant (HasUB reports that).
	UB      ast.Expr
	UBConst int64
	HasUB   bool

	// Nodes in construction order; Nodes[0] is the entry, the last node is
	// the exit node. IDs are 1-based positions in this slice.
	Nodes []*Node
	// Entry is the first node of the body; Exit is the increment node.
	Entry *Node
	Exit  *Node
	// Refs are all subscripted references in ID order.
	Refs []*Ref
	// InnerIVs is the set of induction variables of summarized inner loops.
	InnerIVs map[string]bool

	// reach and reachT are the body-edge reachability relation (excluding
	// the exit→entry back edge) as packed bit matrices: bit j of row i in
	// reach is set when node ID i strictly precedes node ID j; reachT is the
	// transpose (bit i of row j). Rows are bitWords words long. The packed
	// form lets the dataflow solver build per-class predecessor bitsets with
	// word-wide ORs instead of per-member Precedes calls.
	reach    []uint64
	reachT   []uint64
	bitWords int
	// doms is the dominance relation over body edges as a packed bit
	// matrix (computed lazily): bit a of row b is set when node ID a
	// dominates node ID b. Rows are domWords words long and live in one
	// backing array.
	doms     []uint64
	domWords int
	// rpo caches the reverse postorder (computed lazily; solvers request it
	// once per problem instance).
	rpo []*Node
}

// Options configures graph construction.
type Options struct {
	// Dims supplies dimension-size polynomials per array for
	// multi-dimensional linearization; missing arrays get
	// sema.DefaultDims symbols.
	Dims map[string][]poly.Poly
}

// Build constructs the loop flow graph for loop. Nested loops become summary
// nodes. The error reports structural problems only; non-affine subscripts
// are recorded on the Ref (Affine=false), not rejected, because the
// analyses treat them conservatively.
func Build(loop *ast.DoLoop, opts *Options) (*Graph, error) {
	if opts == nil {
		opts = &Options{}
	}
	g := &Graph{Loop: loop, IV: loop.Var, UB: loop.Hi, InnerIVs: map[string]bool{}}
	if v, ok := sema.ConstValue(loop.Hi); ok {
		g.UBConst, g.HasUB = v, true
	}
	b := &builder{g: g, opts: opts}

	heads, tails := b.buildBlock(loop.Body)

	// Exit node.
	exit := b.newNode(KindExit)
	exit.SrcPos = loop.Pos()
	g.Exit = exit
	if len(g.Nodes) == 1 {
		// Empty body: the exit node is also the entry.
		g.Entry = exit
	} else {
		g.Entry = g.Nodes[0]
	}
	_ = heads // heads[0], when present, is Nodes[0] by construction order
	for _, t := range tails {
		b.edge(t, exit)
	}
	// Back edge: exit → entry (when the body is non-empty; a self-loop on
	// the exit node otherwise).
	b.edge(exit, g.Entry)

	g.computeReach()
	return g, b.err
}

type builder struct {
	g    *Graph
	opts *Options
	err  error
	// dims memoizes sema.DefaultDims per array so multi-dimensional
	// references don't rebuild the symbolic dimension polynomials per ref.
	dims map[string][]poly.Poly
}

func (b *builder) newNode(kind NodeKind) *Node {
	n := &Node{ID: len(b.g.Nodes) + 1, Kind: kind}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) edge(from, to *Node) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// buildBlock lays out a statement list. It returns the heads (nodes that
// receive control entering the block; at most one for non-empty blocks) and
// the tails (nodes whose control falls out of the block).
func (b *builder) buildBlock(stmts []ast.Stmt) (heads, tails []*Node) {
	var frontier []*Node // dangling tails awaiting the next node
	link := func(n *Node) {
		if frontier == nil && heads == nil {
			heads = []*Node{n}
		}
		for _, f := range frontier {
			b.edge(f, n)
		}
		frontier = []*Node{n}
	}

	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.Assign:
			n := b.newNode(KindStmt)
			n.Assign = st
			n.SrcPos = st.Pos()
			b.collectAssignRefs(n, st)
			link(n)

		case *ast.DoLoop:
			n := b.newNode(KindSummary)
			n.Loop = st
			n.SrcPos = st.Pos()
			b.g.InnerIVs[st.Var] = true
			b.collectSummaryRefs(n, st)
			link(n)

		case *ast.Dim:
			// Declarations carry no control flow or references.

		case *ast.If:
			// Fold the test into the current frontier node when it is a
			// single plain node of this block; otherwise make a cond node.
			var site *Node
			if len(frontier) == 1 && frontier[0].Kind == KindStmt && frontier[0].Cond == nil {
				site = frontier[0]
			} else {
				site = b.newNode(KindCond)
				site.SrcPos = st.Pos()
				link(site)
			}
			site.Cond = st.Cond
			b.collectExprRefs(site, st.Cond)

			thenHeads, thenTails := b.buildBlock(st.Then)
			for _, h := range thenHeads {
				b.edge(site, h)
			}
			next := thenTails
			if len(st.Then) == 0 {
				next = append(next, site)
			}
			if st.Else != nil && len(st.Else) > 0 {
				elseHeads, elseTails := b.buildBlock(st.Else)
				for _, h := range elseHeads {
					b.edge(site, h)
				}
				next = append(next, elseTails...)
			} else {
				// No else: control can bypass the then-branch.
				next = append(next, site)
			}
			frontier = dedupNodes(next)
		}
	}
	return heads, frontier
}

func dedupNodes(ns []*Node) []*Node {
	seen := map[*Node]bool{}
	out := ns[:0]
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// collectAssignRefs records the subscripted references of an assignment in
// evaluation order: RHS uses first, then the LHS definition.
func (b *builder) collectAssignRefs(n *Node, st *ast.Assign) {
	b.collectExprRefs(n, st.RHS)
	if lhs, ok := st.LHS.(*ast.ArrayRef); ok {
		b.addRef(n, Def, lhs, false)
	}
}

// collectExprRefs records every array reference in e as a use of node n.
func (b *builder) collectExprRefs(n *Node, e ast.Expr) {
	ast.InspectExpr(e, func(nd ast.Node) bool {
		if ref, ok := nd.(*ast.ArrayRef); ok {
			b.addRef(n, Use, ref, false)
			return false // subscripts of a subscripted ref are not refs of i
		}
		return true
	})
}

// collectSummaryRefs records every array reference inside a nested loop on
// its summary node. References whose subscripts involve the inner loop's
// induction variables are marked FromInner, and get a constant touched
// region when the inner bounds allow it.
func (b *builder) collectSummaryRefs(n *Node, loop *ast.DoLoop) {
	inner := map[string]bool{loop.Var: true}
	// Constant iteration ranges of the inner loops: var → upper bound
	// (normalized loops run from 1).
	bounds := map[string]int64{}
	noteLoop := func(dl *ast.DoLoop) {
		inner[dl.Var] = true
		lo, okLo := sema.ConstValue(dl.Lo)
		hi, okHi := sema.ConstValue(dl.Hi)
		if okLo && okHi && lo == 1 && dl.Step == nil {
			bounds[dl.Var] = hi
		}
	}
	noteLoop(loop)
	ast.Inspect(loop.Body, func(nd ast.Node) bool {
		if dl, ok := nd.(*ast.DoLoop); ok {
			noteLoop(dl)
		}
		return true
	})
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.Assign:
				b.collectSummaryExpr(n, st.RHS, inner, bounds)
				if lhs, ok := st.LHS.(*ast.ArrayRef); ok {
					b.addSummaryRef(n, Def, lhs, inner, bounds)
				}
			case *ast.If:
				b.collectSummaryExpr(n, st.Cond, inner, bounds)
				walk(st.Then)
				walk(st.Else)
			case *ast.DoLoop:
				walk(st.Body)
			}
		}
	}
	walk(loop.Body)
}

func (b *builder) collectSummaryExpr(n *Node, e ast.Expr, inner map[string]bool, bounds map[string]int64) {
	ast.InspectExpr(e, func(nd ast.Node) bool {
		if ref, ok := nd.(*ast.ArrayRef); ok {
			b.addSummaryRef(n, Use, ref, inner, bounds)
			return false
		}
		return true
	})
}

func (b *builder) addSummaryRef(n *Node, kind RefKind, expr *ast.ArrayRef, inner map[string]bool, bounds map[string]int64) {
	r := b.addRef(n, kind, expr, false)
	fromInner := false
	for _, s := range refSymbols(expr) {
		if inner[s] {
			fromInner = true
			break
		}
	}
	if !fromInner {
		return
	}
	r.FromInner = true
	r.InnerAffine = r.Affine
	r.Affine = false
	// Constant touched region (§3.2 refinement): 1-D subscript a·v + c
	// over a single inner variable v ∈ [1, bounds[v]].
	if len(expr.Subs) != 1 {
		return
	}
	p, err := sema.ExprToPoly(expr.Subs[0])
	if err != nil {
		return
	}
	syms := p.Symbols()
	if len(syms) != 1 {
		return
	}
	v := syms[0]
	hiBound, ok := bounds[v]
	if !ok || hiBound < 1 {
		return
	}
	coeff, rest, ok := p.CoeffOf(v)
	if !ok {
		return
	}
	a, okA := coeff.IsConst()
	c, okC := rest.IsConst()
	if !okA || !okC {
		return
	}
	first, last := a*1+c, a*hiBound+c
	if first > last {
		first, last = last, first
	}
	r.HasRegion = true
	r.RegionLo, r.RegionHi = first, last
}

func refSymbols(ref *ast.ArrayRef) []string {
	set := map[string]bool{}
	for _, sub := range ref.Subs {
		if p, err := sema.ExprToPoly(sub); err == nil {
			for _, s := range p.Symbols() {
				set[s] = true
			}
		} else {
			// Non-polynomial subscript: record every identifier mentioned.
			ast.InspectExpr(sub, func(nd ast.Node) bool {
				if id, ok := nd.(*ast.Ident); ok && id.Name != "_" {
					set[id.Name] = true
				}
				return true
			})
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (b *builder) addRef(n *Node, kind RefKind, expr *ast.ArrayRef, fromInner bool) *Ref {
	r := &Ref{
		ID:        len(b.g.Refs) + 1,
		Node:      n,
		Kind:      kind,
		Array:     expr.Name,
		Expr:      expr,
		FromInner: fromInner,
	}
	dims := b.opts.Dims[expr.Name]
	if dims == nil && len(expr.Subs) > 1 {
		if d, ok := b.dims[expr.Name]; ok && len(d) == len(expr.Subs) {
			dims = d
		} else {
			dims = sema.DefaultDims(expr.Name, len(expr.Subs))
			if b.dims == nil {
				b.dims = make(map[string][]poly.Poly, 4)
			}
			b.dims[expr.Name] = dims
		}
	}
	form, err := sema.LinearAffine(expr, b.g.IV, dims)
	if err == nil {
		// The form must not mention the IV in its coefficients (guaranteed
		// by LinearAffine) — but B may mention inner IVs; the caller marks
		// those separately.
		r.Form, r.Affine = form, true
	}
	n.Refs = append(n.Refs, r)
	b.g.Refs = append(b.g.Refs, r)
	return r
}

// computeReach fills the body-edge reachability relation used by the pr
// predicate. The exit→entry back edge is excluded, so the relation is a DAG
// reachability: bit j of row i ⇔ node i strictly precedes node j on some
// path. Both the forward matrix and its transpose are built, packed 64 node
// IDs per word.
func (g *Graph) computeReach() {
	n := len(g.Nodes)
	g.bitWords = (n + 1 + 63) / 64
	g.reach = make([]uint64, (n+1)*g.bitWords)
	// DFS from each node over body edges.
	stack := make([]*Node, 0, n)
	for _, src := range g.Nodes {
		row := g.reach[src.ID*g.bitWords : (src.ID+1)*g.bitWords]
		stack = append(stack[:0], src)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == g.Exit {
				continue // skip back edge
			}
			for _, s := range cur.Succs {
				if row[s.ID>>6]&(1<<(uint(s.ID)&63)) == 0 {
					row[s.ID>>6] |= 1 << (uint(s.ID) & 63)
					stack = append(stack, s)
				}
			}
		}
	}
	// Transpose.
	g.reachT = make([]uint64, (n+1)*g.bitWords)
	for i := 1; i <= n; i++ {
		row := g.reach[i*g.bitWords : (i+1)*g.bitWords]
		for w, word := range row {
			for word != 0 {
				j := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				g.reachT[j*g.bitWords+(i>>6)] |= 1 << (uint(i) & 63)
			}
		}
	}
}

// Precedes reports whether node a strictly precedes node b along body edges
// (the pr predicate's "occurs in a predecessor node": pr(d,n)=0 iff
// Precedes(d.Node, n)).
func (g *Graph) Precedes(a, b *Node) bool {
	return g.reach[a.ID*g.bitWords+(b.ID>>6)]&(1<<(uint(b.ID)&63)) != 0
}

// BitWords returns the word length of the per-node bitset rows returned by
// PrecedesRow and PrecededByRow (bit index = node ID).
func (g *Graph) BitWords() int { return g.bitWords }

// PrecedesRow returns the bitset of node IDs that node id strictly precedes
// along body edges. The returned slice aliases the graph's matrix: callers
// must treat it as read-only.
func (g *Graph) PrecedesRow(id int) []uint64 {
	return g.reach[id*g.bitWords : (id+1)*g.bitWords]
}

// PrecededByRow returns the bitset of node IDs that strictly precede node
// id along body edges (the transpose row). Read-only, like PrecedesRow.
func (g *Graph) PrecededByRow(id int) []uint64 {
	return g.reachT[id*g.bitWords : (id+1)*g.bitWords]
}

// Dominates reports whether every body path from the loop entry to b passes
// through a, with a ≠ b (strict dominance over body edges). Distance-0
// reuse queries need dominance rather than some-path precedence: a
// generator on only one branch does not guarantee the current iteration's
// instance.
func (g *Graph) Dominates(a, b *Node) bool {
	if g.doms == nil {
		g.computeDominators()
	}
	if a == b {
		return false
	}
	w := g.domWords
	return g.doms[b.ID*w+a.ID>>6]&(1<<(uint(a.ID)&63)) != 0
}

// Precompute forces every lazily-built relation (currently the dominator
// sets; body reachability is already built eagerly). A graph that has been
// precomputed is never mutated by queries again, so it can be shared
// read-only across goroutines — the memoizing driver publishes graphs to
// its cache only after calling this.
func (g *Graph) Precompute() {
	if g.doms == nil {
		g.computeDominators()
	}
	g.RPO()
}

// computeDominators runs the standard iterative dominator computation over
// the acyclic body (back edge excluded), seeding Dom(entry) = {entry}.
func (g *Graph) computeDominators() {
	n := len(g.Nodes)
	w := (n + 64) / 64 // room for bits 0..n
	g.domWords = w
	doms := make([]uint64, (n+1)*w)
	g.doms = doms
	row := func(id int) []uint64 { return doms[id*w : (id+1)*w] }
	setBit := func(r []uint64, id int) { r[id>>6] |= 1 << (uint(id) & 63) }
	full := make([]uint64, w)
	for i := 1; i <= n; i++ {
		setBit(full, i)
	}
	for _, nd := range g.Nodes {
		if nd == g.Entry {
			setBit(row(nd.ID), nd.ID)
		} else {
			copy(row(nd.ID), full)
		}
	}
	scratch := make([]uint64, w)
	order := g.RPO()
	for changed := true; changed; {
		changed = false
		for _, nd := range order {
			if nd == g.Entry {
				continue
			}
			first := true
			for _, p := range nd.Preds {
				if p == g.Exit {
					continue // back edge source never reaches body nodes forward
				}
				pr := row(p.ID)
				if first {
					copy(scratch, pr)
					first = false
				} else {
					for i := range scratch {
						scratch[i] &= pr[i]
					}
				}
			}
			if first {
				// No body predecessors (only reachable via back edge):
				// dominated by entry alone.
				for i := range scratch {
					scratch[i] = 0
				}
				setBit(scratch, g.Entry.ID)
			}
			setBit(scratch, nd.ID)
			dst := row(nd.ID)
			same := true
			for i := range scratch {
				if scratch[i] != dst[i] {
					same = false
					break
				}
			}
			if !same {
				copy(dst, scratch)
				changed = true
			}
		}
	}
}

// Pr is the paper's predecessor predicate: 0 when ref's node strictly
// precedes n in the loop body, 1 otherwise.
func (g *Graph) Pr(ref *Ref, n *Node) int64 {
	if g.Precedes(ref.Node, n) {
		return 0
	}
	return 1
}

// RPO returns the nodes in reverse postorder of the body DAG starting at the
// entry, with the exit node last. Construction order already satisfies this
// for structured programs, but RPO recomputes it from the edges to stay
// correct under transformation.
func (g *Graph) RPO() []*Node {
	if g.rpo != nil {
		return g.rpo
	}
	seen := make([]bool, len(g.Nodes)+1)
	post := make([]*Node, 0, len(g.Nodes))
	var dfs func(n *Node)
	dfs = func(n *Node) {
		seen[n.ID] = true
		for _, s := range n.Succs {
			if n == g.Exit {
				continue
			}
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, n)
	}
	dfs(g.Entry)
	// Unreachable nodes (should not happen) are appended at the end.
	for _, n := range g.Nodes {
		if !seen[n.ID] {
			post = append([]*Node{n}, post...)
		}
	}
	out := make([]*Node, len(post))
	for i, n := range post {
		out[len(post)-1-i] = n
	}
	// Cache: the order is a pure function of the (immutable) edge lists,
	// and every solver pass requests it. Callers must not mutate it.
	g.rpo = out
	return out
}

// DefsOf returns all definition refs of the named array.
func (g *Graph) DefsOf(array string) []*Ref {
	var out []*Ref
	for _, r := range g.Refs {
		if r.Kind == Def && r.Array == array {
			out = append(out, r)
		}
	}
	return out
}

// Dump renders the graph in a compact human-readable form.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %s = 1..%s (%d nodes, %d refs)\n", g.IV, ast.ExprString(g.UB), len(g.Nodes), len(g.Refs))
	for _, n := range g.Nodes {
		succ := make([]string, len(n.Succs))
		for i, s := range n.Succs {
			succ[i] = fmt.Sprintf("n%d", s.ID)
		}
		fmt.Fprintf(&b, "  n%d [%s] %s -> %s\n", n.ID, n.Kind, n.Label(), strings.Join(succ, ","))
		for _, r := range n.Refs {
			aff := ""
			if r.Affine {
				aff = " " + r.Form.String()
			} else {
				aff = " (non-affine)"
			}
			fmt.Fprintf(&b, "      r%d %s %s%s\n", r.ID, r.Kind, ast.ExprString(r.Expr), aff)
		}
	}
	return b.String()
}
