package ir

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

const fig1 = `
do i = 1, UB
  C[i+2] := C[i] * 2
  B[2*i] := C[i] + X
  if C[i] == 0 then C[i] := B[i-1]
  B[i] := C[i+1]
enddo
`

func buildLoop(t *testing.T, src string) *Graph {
	t.Helper()
	prog := parser.MustParse(src)
	loop, ok := prog.Body[0].(*ast.DoLoop)
	if !ok {
		t.Fatalf("first stmt is %T, want DoLoop", prog.Body[0])
	}
	g, err := Build(loop, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func hasEdge(a, b *Node) bool {
	for _, s := range a.Succs {
		if s == b {
			return true
		}
	}
	return false
}

// TestFig3Shape checks that the Figure 1 loop produces exactly the flow
// graph of Figure 3: five nodes with 1→2, 2→3, 2→4, 3→4, 4→5, 5→1.
func TestFig3Shape(t *testing.T) {
	g := buildLoop(t, fig1)
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5\n%s", len(g.Nodes), g.Dump())
	}
	n := g.Nodes
	wantEdges := [][2]int{{1, 2}, {2, 3}, {2, 4}, {3, 4}, {4, 5}, {5, 1}}
	var total int
	for _, nd := range n {
		total += len(nd.Succs)
	}
	if total != len(wantEdges) {
		t.Fatalf("edge count = %d, want %d\n%s", total, len(wantEdges), g.Dump())
	}
	for _, e := range wantEdges {
		if !hasEdge(n[e[0]-1], n[e[1]-1]) {
			t.Errorf("missing edge n%d→n%d\n%s", e[0], e[1], g.Dump())
		}
	}
	if g.Exit != n[4] || g.Exit.Kind != KindExit {
		t.Errorf("exit node wrong: %v", g.Exit)
	}
	if g.Entry != n[0] {
		t.Errorf("entry node wrong: %v", g.Entry)
	}
	// The branch condition is folded into node 2 (paper's Figure 3).
	if n[1].Cond == nil {
		t.Errorf("condition not folded into node 2\n%s", g.Dump())
	}
	if n[1].Kind != KindStmt {
		t.Errorf("node 2 kind = %v, want stmt", n[1].Kind)
	}
}

// TestFig3Defs checks the paper's definition numbering: the four defs are
// C[i+2]@n1, B[2i]@n2, C[i]@n3, B[i]@n4.
func TestFig3Defs(t *testing.T) {
	g := buildLoop(t, fig1)
	var defs []*Ref
	for _, r := range g.Refs {
		if r.Kind == Def {
			defs = append(defs, r)
		}
	}
	if len(defs) != 4 {
		t.Fatalf("defs = %d, want 4", len(defs))
	}
	wantArrays := []string{"C", "B", "C", "B"}
	wantNodes := []int{1, 2, 3, 4}
	wantA := []int64{1, 2, 1, 1}
	wantB := []int64{2, 0, 0, 0}
	for k, d := range defs {
		if d.Array != wantArrays[k] || d.Node.ID != wantNodes[k] {
			t.Errorf("def %d = %s, want %s@n%d", k, d, wantArrays[k], wantNodes[k])
		}
		a, b, ok := d.Form.ConstCoeffs()
		if !ok || a != wantA[k] || b != wantB[k] {
			t.Errorf("def %d form = %s, want %d*i+%d", k, d.Form, wantA[k], wantB[k])
		}
	}
}

func TestUsesCollected(t *testing.T) {
	g := buildLoop(t, fig1)
	var uses []*Ref
	for _, r := range g.Refs {
		if r.Kind == Use {
			uses = append(uses, r)
		}
	}
	// C[i]@n1, C[i]@n2, C[i]@n2(cond), B[i-1]@n3, C[i+1]@n4.
	if len(uses) != 5 {
		t.Fatalf("uses = %d, want 5\n%s", len(uses), g.Dump())
	}
}

func TestPrPredicate(t *testing.T) {
	g := buildLoop(t, fig1)
	defs := g.DefsOf("C")
	d1 := defs[0] // C[i+2]@n1
	n3, n4 := g.Nodes[2], g.Nodes[3]
	if got := g.Pr(d1, n3); got != 0 {
		t.Errorf("pr(C[i+2], n3) = %d, want 0 (n1 precedes n3)", got)
	}
	if got := g.Pr(d1, n4); got != 0 {
		t.Errorf("pr(C[i+2], n4) = %d, want 0", got)
	}
	if got := g.Pr(d1, g.Nodes[0]); got != 1 {
		t.Errorf("pr(C[i+2], n1) = %d, want 1 (a node does not precede itself)", got)
	}
	// def C[i]@n3 does not precede n2.
	d3 := defs[1]
	if d3.Node.ID != 3 {
		t.Fatalf("unexpected def ordering")
	}
	if got := g.Pr(d3, g.Nodes[1]); got != 1 {
		t.Errorf("pr(C[i]@n3, n2) = %d, want 1", got)
	}
}

func TestRPO(t *testing.T) {
	g := buildLoop(t, fig1)
	rpo := g.RPO()
	if len(rpo) != 5 {
		t.Fatalf("rpo size = %d", len(rpo))
	}
	pos := map[int]int{}
	for i, n := range rpo {
		pos[n.ID] = i
	}
	// Topological order over body edges: 1 < 2 < {3} < 4 < 5.
	checks := [][2]int{{1, 2}, {2, 3}, {2, 4}, {3, 4}, {4, 5}}
	for _, c := range checks {
		if pos[c[0]] >= pos[c[1]] {
			t.Errorf("RPO violates n%d < n%d: %v", c[0], c[1], pos)
		}
	}
}

func TestIfElseDiamond(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  A[i] := 0
  if x > 0 then
    A[i+1] := 1
  else
    A[i+2] := 2
  endif
  A[i+3] := 3
enddo
`)
	// Nodes: 1 A[i] (+cond), 2 then, 3 else, 4 join, 5 exit.
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5\n%s", len(g.Nodes), g.Dump())
	}
	n := g.Nodes
	for _, e := range [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}, {5, 1}} {
		if !hasEdge(n[e[0]-1], n[e[1]-1]) {
			t.Errorf("missing edge n%d→n%d\n%s", e[0], e[1], g.Dump())
		}
	}
	if hasEdge(n[0], n[3]) {
		t.Errorf("if-else must not have a bypass edge\n%s", g.Dump())
	}
}

func TestIfAtBlockStart(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  if x > 0 then
    A[i] := 1
  endif
enddo
`)
	// Nodes: 1 cond, 2 then, 3 exit.
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3\n%s", len(g.Nodes), g.Dump())
	}
	if g.Nodes[0].Kind != KindCond {
		t.Errorf("node 1 kind = %v, want cond", g.Nodes[0].Kind)
	}
	n := g.Nodes
	for _, e := range [][2]int{{1, 2}, {1, 3}, {2, 3}, {3, 1}} {
		if !hasEdge(n[e[0]-1], n[e[1]-1]) {
			t.Errorf("missing edge n%d→n%d\n%s", e[0], e[1], g.Dump())
		}
	}
}

func TestNestedIf(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  A[i] := 0
  if x > 0 then
    if y > 0 then
      A[i+1] := 1
    endif
  endif
  A[i+2] := 2
enddo
`)
	// Nodes: 1 A[i](+cond x), 2 cond y, 3 A[i+1], 4 A[i+2], 5 exit.
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5\n%s", len(g.Nodes), g.Dump())
	}
	if g.Nodes[1].Kind != KindCond {
		t.Errorf("inner if should be its own cond node (outer then-branch starts a block)\n%s", g.Dump())
	}
}

func TestEmptyBody(t *testing.T) {
	g := buildLoop(t, "do i = 1, N\nenddo")
	if len(g.Nodes) != 1 || g.Entry != g.Exit {
		t.Fatalf("empty loop graph wrong\n%s", g.Dump())
	}
}

func TestSummaryNode(t *testing.T) {
	g := buildLoop(t, `
do j = 1, M
  X[j] := 0
  do i = 1, N
    X[i] := Y[j+1]
    Y[2*j] := 1
  enddo
  Z[j] := X[j]
enddo
`)
	// Nodes: 1 X[j]:=0, 2 summary, 3 Z[j]:=X[j], 4 exit.
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4\n%s", len(g.Nodes), g.Dump())
	}
	sum := g.Nodes[1]
	if sum.Kind != KindSummary {
		t.Fatalf("node 2 kind = %v, want summary", sum.Kind)
	}
	// Summary refs: def X[i] (FromInner), use Y[j+1], def Y[2j].
	if len(sum.Refs) != 3 {
		t.Fatalf("summary refs = %d, want 3\n%s", len(sum.Refs), g.Dump())
	}
	var sawInnerDef, sawOuterUse, sawOuterDef bool
	for _, r := range sum.Refs {
		switch {
		case r.Array == "X" && r.Kind == Def:
			sawInnerDef = true
			if !r.FromInner {
				t.Errorf("X[i] inside inner loop must be FromInner")
			}
			if r.Affine {
				t.Errorf("X[i] must not be affine wrt j")
			}
		case r.Array == "Y" && r.Kind == Use:
			sawOuterUse = true
			if r.FromInner || !r.Affine {
				t.Errorf("Y[j+1] should be an affine outer-IV ref: %v", r)
			}
		case r.Array == "Y" && r.Kind == Def:
			sawOuterDef = true
			a, b, ok := r.Form.ConstCoeffs()
			if !ok || a != 2 || b != 0 {
				t.Errorf("Y[2j] form = %s", r.Form)
			}
		}
	}
	if !sawInnerDef || !sawOuterUse || !sawOuterDef {
		t.Errorf("summary refs incomplete\n%s", g.Dump())
	}
	if !g.InnerIVs["i"] {
		t.Errorf("inner IV i not recorded")
	}
}

func TestUBConst(t *testing.T) {
	g := buildLoop(t, "do i = 1, 1000\n A[i] := 0\nenddo")
	if !g.HasUB || g.UBConst != 1000 {
		t.Fatalf("UB = (%d,%v), want (1000,true)", g.UBConst, g.HasUB)
	}
	g2 := buildLoop(t, "do i = 1, N\n A[i] := 0\nenddo")
	if g2.HasUB {
		t.Fatal("symbolic UB must not be constant")
	}
}

func TestDumpMentionsEverything(t *testing.T) {
	g := buildLoop(t, fig1)
	d := g.Dump()
	for _, want := range []string{"C[i + 2]", "B[2 * i]", "exit", "n5"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestDominators(t *testing.T) {
	g := buildLoop(t, `
do i = 1, N
  A[i] := 0
  if x > 0 then
    A[i+1] := 1
  else
    A[i+2] := 2
  endif
  A[i+3] := 3
enddo
`)
	// Nodes: 1 head(+cond), 2 then, 3 else, 4 join, 5 exit.
	n := g.Nodes
	if !g.Dominates(n[0], n[3]) {
		t.Error("head must dominate the join")
	}
	if g.Dominates(n[1], n[3]) || g.Dominates(n[2], n[3]) {
		t.Error("branch arms must not dominate the join")
	}
	if !g.Dominates(n[0], n[1]) || !g.Dominates(n[0], n[2]) {
		t.Error("head must dominate both arms")
	}
	if !g.Dominates(n[3], n[4]) {
		t.Error("join must dominate the exit")
	}
	if g.Dominates(n[0], n[0]) {
		t.Error("dominance is strict")
	}
	if g.Dominates(n[3], n[0]) {
		t.Error("no backwards dominance over body edges")
	}
}

func TestDominatorsStraightLine(t *testing.T) {
	g := buildLoop(t, fig1)
	n := g.Nodes
	// n2 dominates n3 and n4; n3 does not dominate n4 (bypass edge 2→4).
	if !g.Dominates(n[1], n[2]) || !g.Dominates(n[1], n[3]) {
		t.Error("n2 must dominate n3 and n4")
	}
	if g.Dominates(n[2], n[3]) {
		t.Error("n3 must not dominate n4 (conditional)")
	}
	if !g.Dominates(n[0], n[4]) {
		t.Error("entry dominates exit")
	}
}

func TestMultiDimRefNonAffineMarking(t *testing.T) {
	g := buildLoop(t, "do i = 1, N\n A[B[i]] := A[i*i]\nenddo")
	for _, r := range g.Refs {
		if r.Array == "A" && r.Affine {
			t.Errorf("ref %s should be non-affine", r)
		}
	}
}
