// Package lattice implements the chain lattice L of maximal iteration
// distances (paper §3, Figure 2).
//
// A lattice value for a subscripted reference r denotes the range of the
// latest x instances of r:
//
//	⊤  = all instances
//	x  = instances up to maximal distance x (x ≥ 0)
//	⊥  = no instance
//
// The meet of the must-framework is min; may-problems use the reverse
// lattice whose meet is the dual max (paper §3.3). Both are provided here
// on a single representation: None (⊥ of the must lattice) < 0 < 1 < … <
// All (⊤ of the must lattice). In a may-problem the same values are used
// with the roles of top and bottom exchanged, which only affects which
// operator a solver picks as its meet and how results are initialized.
package lattice

import (
	"strconv"
	"strings"
)

// Dist is an element of the iteration-distance chain lattice.
//
// The zero value is None ("no instance"), which is ⊥ for must-problems.
type Dist struct {
	// kind: 0 = none, 1 = finite (val holds distance ≥ 0), 2 = all.
	kind int8
	val  int64
}

// None returns ⊥ of the must lattice: no instance.
func None() Dist { return Dist{kind: 0} }

// All returns ⊤ of the must lattice: all instances.
func All() Dist { return Dist{kind: 2} }

// D returns the finite lattice value for distance n (n ≥ 0; negative n
// collapses to None, mirroring that a negative maximal distance denotes an
// empty instance range).
func D(n int64) Dist {
	if n < 0 {
		return None()
	}
	return Dist{kind: 1, val: n}
}

// IsNone reports x = ⊥ (no instance).
func (x Dist) IsNone() bool { return x.kind == 0 }

// IsAll reports x = ⊤ (all instances).
func (x Dist) IsAll() bool { return x.kind == 2 }

// Finite returns the finite distance and true, or 0 and false for ⊥/⊤.
func (x Dist) Finite() (int64, bool) {
	if x.kind == 1 {
		return x.val, true
	}
	return 0, false
}

// Cmp returns -1, 0, +1 comparing x and y in the chain order
// None < 0 < 1 < … < All.
func (x Dist) Cmp(y Dist) int {
	if x.kind != y.kind {
		if x.kind < y.kind {
			return -1
		}
		return 1
	}
	switch {
	case x.kind != 1 || x.val == y.val:
		return 0
	case x.val < y.val:
		return -1
	default:
		return 1
	}
}

// Eq reports x == y.
func (x Dist) Eq(y Dist) bool { return x.Cmp(y) == 0 }

// Min returns the smaller of x and y: the meet of the must lattice, where
// min(x,⊥)=⊥ and min(x,⊤)=x.
func Min(x, y Dist) Dist {
	if x.Cmp(y) <= 0 {
		return x
	}
	return y
}

// Max returns the larger of x and y: the dual join (and the meet of the
// reverse lattice used by may-problems), where max(x,⊥)=x and max(x,⊤)=⊤.
func Max(x, y Dist) Dist {
	if x.Cmp(y) >= 0 {
		return x
	}
	return y
}

// Inc is the exit-node increment x++: ⊤++ = ⊤, ⊥++ = ⊥, x++ = x+1.
func (x Dist) Inc() Dist {
	if x.kind == 1 {
		return Dist{kind: 1, val: x.val + 1}
	}
	return x
}

// Clamp collapses finite distances ≥ ub−1 to ⊤ when the loop bound ub is
// known: in a loop of UB iterations the maximal meaningful distance is UB−1,
// which denotes the complete range of instances (paper §2).
func (x Dist) Clamp(ub int64) Dist {
	if x.kind == 1 && ub > 0 && x.val >= ub-1 {
		return All()
	}
	return x
}

// SymTop is the chain lattice's symbolic-top element: the value of a
// distance proven to reach (or exceed) a *symbolic* trip count. With a
// constant bound, Clamp collapses distances ≥ UB−1 to ⊤ because they
// denote the complete instance range; when the bound is a symbolic
// expression the same collapse is justified by a range-fact proof
// (rangefacts: distance ≥ UB) instead of integer comparison. The element
// is represented as ⊤ — "all instances" is exactly what a ≥-trip-count
// distance denotes, so the chain order, meets, and the packed SWAR
// encoding are unchanged — but callers that resolve a comparison through
// range facts construct it through SymTop so the provenance is explicit;
// a comparison that does NOT resolve must fall back to the polarity's
// conservative value, never to SymTop.
func SymTop() Dist { return All() }

// Covers reports whether the fact "instances up to distance x" includes
// distance d (with d ≥ 0): d ≤ x.
func (x Dist) Covers(d int64) bool {
	switch x.kind {
	case 2:
		return true
	case 1:
		return d <= x.val
	}
	return false
}

// String renders ⊥ as "_", ⊤ as "T" and finite values as digits, matching
// the compact tuples of the paper's Table 1.
func (x Dist) String() string {
	switch x.kind {
	case 0:
		return "_"
	case 2:
		return "T"
	}
	return strconv.FormatInt(x.val, 10)
}

// writeTo appends the rendering of x to b without allocating intermediates.
func (x Dist) writeTo(b *strings.Builder) {
	switch x.kind {
	case 0:
		b.WriteByte('_')
	case 2:
		b.WriteByte('T')
	default:
		var buf [20]byte
		b.Write(strconv.AppendInt(buf[:0], x.val, 10))
	}
}

// Tuple is a vector of lattice values, one per tracked reference.
type Tuple []Dist

// MeetInto applies the pointwise meet of src into dst using min (must) or
// max (may).
func (dst Tuple) MeetInto(src Tuple, may bool) {
	for i := range dst {
		if may {
			dst[i] = Max(dst[i], src[i])
		} else {
			dst[i] = Min(dst[i], src[i])
		}
	}
}

// Eq reports pointwise equality.
func (dst Tuple) Eq(other Tuple) bool {
	if len(dst) != len(other) {
		return false
	}
	for i := range dst {
		if !dst[i].Eq(other[i]) {
			return false
		}
	}
	return true
}

// Clone copies the tuple.
func (dst Tuple) Clone() Tuple {
	out := make(Tuple, len(dst))
	copy(out, dst)
	return out
}

// Fill sets every component to v and returns dst.
func (dst Tuple) Fill(v Dist) Tuple {
	for i := range dst {
		dst[i] = v
	}
	return dst
}

// String renders the tuple as "(a,b,c)". Rendering goes through one
// strings.Builder sized up front: the naive += concatenation it replaces was
// quadratic in the tuple width, which dominated table rendering on wide
// (many-class) problems.
func (dst Tuple) String() string {
	var b strings.Builder
	b.Grow(2 + 2*len(dst))
	dst.WriteTo(&b)
	return b.String()
}

// WriteTo appends the "(a,b,c)" rendering of the tuple to b; table renderers
// use it to build whole rows in a single builder.
func (dst Tuple) WriteTo(b *strings.Builder) {
	b.WriteByte('(')
	for i, d := range dst {
		if i > 0 {
			b.WriteByte(',')
		}
		d.writeTo(b)
	}
	b.WriteByte(')')
}

// --- Slabs ------------------------------------------------------------------
//
// A slab is a dense rows×m matrix of lattice values held in ONE flat backing
// array, with per-row Tuple views aliasing it. Solvers keep their per-node
// IN/OUT state in slabs so a whole solve costs two backing allocations
// instead of one tuple allocation per node, and so the iteration passes walk
// memory sequentially in node order.

// Slab allocates an n-row, m-column matrix in one flat backing array and
// returns 1-based row views: rows[0] is nil (node IDs are 1-based) and
// rows[i] for 1 ≤ i ≤ n aliases backing[(i−1)·m : i·m]. Every value starts
// at the zero Dist (⊥ of the must lattice). The row views are full-capacity
// slices of disjoint regions, so writes through one row never bleed into a
// neighbor.
func Slab(n, m int) []Tuple {
	backing := make(Tuple, n*m)
	rows := make([]Tuple, n+1)
	for i := 1; i <= n; i++ {
		rows[i] = backing[(i-1)*m : i*m : i*m]
	}
	return rows
}

// CloneSlab snapshots a 1-based row set (as returned by Slab, or any
// []Tuple whose rows share one width) into a freshly allocated slab. Nil
// rows stay nil.
func CloneSlab(rows []Tuple) []Tuple {
	out := make([]Tuple, len(rows))
	var m, n int
	for _, r := range rows {
		if r != nil {
			m = len(r)
			n++
		}
	}
	backing := make(Tuple, n*m)
	next := 0
	for i, r := range rows {
		if r == nil {
			continue
		}
		dst := backing[next*m : (next+1)*m : (next+1)*m]
		copy(dst, r)
		out[i] = dst
		next++
	}
	return out
}
