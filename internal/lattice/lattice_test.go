package lattice

import (
	"testing"
	"testing/quick"
)

// elems is a representative sample of the chain for exhaustive law checks.
func elems() []Dist {
	return []Dist{None(), D(0), D(1), D(2), D(7), D(100), All()}
}

func TestChainOrder(t *testing.T) {
	es := elems()
	for i := range es {
		for j := range es {
			got := es[i].Cmp(es[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Cmp(%s,%s) = %d, want %d", es[i], es[j], got, want)
			}
		}
	}
}

func TestMeetLaws(t *testing.T) {
	es := elems()
	for _, x := range es {
		if !Min(x, x).Eq(x) {
			t.Errorf("min not idempotent at %s", x)
		}
		if !Min(x, None()).Eq(None()) {
			t.Errorf("min(x,⊥) != ⊥ at %s", x)
		}
		if !Min(x, All()).Eq(x) {
			t.Errorf("min(x,⊤) != x at %s", x)
		}
		if !Max(x, None()).Eq(x) {
			t.Errorf("max(x,⊥) != x at %s", x)
		}
		if !Max(x, All()).Eq(All()) {
			t.Errorf("max(x,⊤) != ⊤ at %s", x)
		}
		for _, y := range es {
			if !Min(x, y).Eq(Min(y, x)) {
				t.Errorf("min not commutative at %s,%s", x, y)
			}
			if !Max(x, y).Eq(Max(y, x)) {
				t.Errorf("max not commutative at %s,%s", x, y)
			}
			for _, z := range es {
				if !Min(Min(x, y), z).Eq(Min(x, Min(y, z))) {
					t.Errorf("min not associative at %s,%s,%s", x, y, z)
				}
				// Absorption: max(x, min(x,y)) = x.
				if !Max(x, Min(x, y)).Eq(x) {
					t.Errorf("absorption fails at %s,%s", x, y)
				}
			}
		}
	}
}

func TestInc(t *testing.T) {
	if !None().Inc().Eq(None()) {
		t.Error("⊥++ != ⊥")
	}
	if !All().Inc().Eq(All()) {
		t.Error("⊤++ != ⊤")
	}
	if !D(0).Inc().Eq(D(1)) || !D(41).Inc().Eq(D(42)) {
		t.Error("x++ != x+1")
	}
}

func TestIncMonotone(t *testing.T) {
	es := elems()
	for _, x := range es {
		for _, y := range es {
			if x.Cmp(y) <= 0 && x.Inc().Cmp(y.Inc()) > 0 {
				t.Errorf("Inc not monotone at %s,%s", x, y)
			}
		}
	}
}

func TestClamp(t *testing.T) {
	if !D(999).Clamp(1000).Eq(All()) {
		t.Error("D(UB-1) must clamp to ⊤")
	}
	if !D(998).Clamp(1000).Eq(D(998)) {
		t.Error("D(UB-2) must not clamp")
	}
	if !All().Clamp(10).Eq(All()) || !None().Clamp(10).Eq(None()) {
		t.Error("⊤/⊥ unchanged by clamp")
	}
	if !D(5).Clamp(0).Eq(D(5)) {
		t.Error("clamp with unknown bound must be identity")
	}
}

func TestCovers(t *testing.T) {
	if !All().Covers(1 << 40) {
		t.Error("⊤ covers everything")
	}
	if None().Covers(0) {
		t.Error("⊥ covers nothing")
	}
	if !D(3).Covers(3) || !D(3).Covers(0) || D(3).Covers(4) {
		t.Error("finite covers wrong")
	}
}

func TestNegativeDCollapses(t *testing.T) {
	if !D(-1).Eq(None()) {
		t.Error("D(-1) must be ⊥")
	}
}

func TestString(t *testing.T) {
	if None().String() != "_" || All().String() != "T" || D(7).String() != "7" {
		t.Errorf("rendering wrong: %s %s %s", None(), All(), D(7))
	}
}

func TestTupleOps(t *testing.T) {
	a := Tuple{D(1), All(), None()}
	b := Tuple{D(2), D(0), D(5)}
	m := a.Clone()
	m.MeetInto(b, false)
	if !m.Eq(Tuple{D(1), D(0), None()}) {
		t.Errorf("must meet = %s", m)
	}
	j := a.Clone()
	j.MeetInto(b, true)
	if !j.Eq(Tuple{D(2), All(), D(5)}) {
		t.Errorf("may meet = %s", j)
	}
	if a.Eq(b) {
		t.Error("Eq false positive")
	}
	if got := a.String(); got != "(1,T,_)" {
		t.Errorf("tuple string = %q", got)
	}
}

// fromInt maps an arbitrary int into a lattice element for quick checks.
func fromInt(n int16) Dist {
	switch {
	case n%7 == 0:
		return None()
	case n%11 == 0:
		return All()
	default:
		v := int64(n)
		if v < 0 {
			v = -v
		}
		return D(v % 1000)
	}
}

func TestQuickFlowFunctionsMonotone(t *testing.T) {
	// Both f(x)=max(x,0) and f(x)=min(x,p) and Inc must be monotone — the
	// framework's convergence argument rests on it.
	f := func(xi, yi, pi int16) bool {
		x, y, p := fromInt(xi), fromInt(yi), fromInt(pi)
		if x.Cmp(y) > 0 {
			x, y = y, x
		}
		gen := Max(x, D(0)).Cmp(Max(y, D(0))) <= 0
		pres := Min(x, p).Cmp(Min(y, p)) <= 0
		inc := x.Inc().Cmp(y.Inc()) <= 0
		return gen && pres && inc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStatementFunctionsIdempotent(t *testing.T) {
	// Paper §3.2: statement node flow functions are idempotent (f∘f = f).
	f := func(xi, pi int16) bool {
		x, p := fromInt(xi), fromInt(pi)
		g := func(v Dist) Dist { return Max(v, D(0)) }
		h := func(v Dist) Dist { return Min(v, p) }
		return g(g(x)).Eq(g(x)) && h(h(x)).Eq(h(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExitWeaklyIdempotent(t *testing.T) {
	// Paper §3.2: f∘f_exit ⊒ f for statement functions f — one traversal of
	// the cycle suffices. Check min(x++ , p) ≥ min(min(x,p)++, p) form:
	// specifically f(f_exit(f(x))) ⊒ f(f_exit(x)) fails in general, the
	// property used is f_exit∘f ∘ f_exit∘f (x) ⊒ f_exit∘f (x) for the
	// composed cycle function on the must lattice when x starts at the
	// overestimate ⊤. Verify the concrete convergence consequence instead:
	// iterating the cycle function from ⊤ stabilizes within 2 steps.
	f := func(pi int16) bool {
		p := fromInt(pi)
		cycle := func(v Dist) Dist { return Min(v, p).Inc() }
		v1 := cycle(All())
		v2 := cycle(v1)
		v3 := cycle(v2)
		return v3.Eq(v2) || v2.Eq(v1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
