package lattice

// Word-packed rows: m chain-lattice cells stored in ⌈m/lanes⌉ uint64 words,
// one fixed-width lane per cell, so meets, flow applications, and equality
// checks run whole words at a time (SWAR). The packing exploits that the
// chain order None < 0 < 1 < … < All becomes plain unsigned integer order
// under the encoding
//
//	None → 0,   finite d → d+1,   All → laneMax (all lane bits set)
//
// which is injective as long as every finite distance d satisfies
// d ≤ laneMax−2. Solvers pick the lane width (8 or 16 bits) from a bound on
// the finite values a solve can produce and fall back to scalar tuples when
// even 16-bit lanes cannot hold them.
//
// Lanes past m in the last word are kept zero by every kernel ("tail
// invariant"), so two rows are equal iff their words are equal.

// Lane widths supported by Packing.
const (
	Lane8  = 8
	Lane16 = 16
)

// MaxFiniteForLane returns the largest finite distance representable in a
// lane of the given width: laneMax−2 (laneMax encodes All, and the encoding
// adds 1 to finite values).
func MaxFiniteForLane(lane uint) int64 {
	return int64(1)<<lane - 3
}

// Packing is the layout descriptor for word-packed rows of m cells at a
// fixed lane width. The zero value is not usable; construct with NewPacking.
type Packing struct {
	M     int    // cells per row
	Words int    // uint64 words per row
	Lane  uint   // bits per lane: Lane8 or Lane16
	All   uint64 // lane value encoding ⊤ (all lane bits set)

	hmask uint64 // per-lane MSB
	lmask uint64 // per-lane LSB
	tail  uint64 // mask of the in-use lanes of the last word
}

// NewPacking builds the layout for m cells at the given lane width.
func NewPacking(m int, lane uint) Packing {
	if lane != Lane8 && lane != Lane16 {
		panic("lattice: unsupported lane width")
	}
	perWord := 64 / int(lane)
	words := (m + perWord - 1) / perWord
	laneMax := uint64(1)<<lane - 1
	var h, l uint64
	for i := 0; i < perWord; i++ {
		h |= 1 << (uint(i)*lane + lane - 1)
		l |= 1 << (uint(i) * lane)
	}
	tailLanes := m - (words-1)*perWord
	var tail uint64
	if m == 0 {
		tailLanes = 0
	}
	for i := 0; i < tailLanes; i++ {
		tail |= laneMax << (uint(i) * lane)
	}
	return Packing{M: m, Words: words, Lane: lane, All: laneMax, hmask: h, lmask: l, tail: tail}
}

// Encode maps a lattice value to its lane encoding. Finite distances beyond
// the lane capacity are a caller bug (the solver's lane-width selection must
// prevent them) and panic rather than silently aliasing All.
func (p *Packing) Encode(d Dist) uint64 {
	switch d.kind {
	case 0:
		return 0
	case 2:
		return p.All
	}
	e := uint64(d.val) + 1
	if e >= p.All {
		panic("lattice: finite distance exceeds lane capacity")
	}
	return e
}

// Decode maps a lane encoding back to the lattice value.
func (p *Packing) Decode(e uint64) Dist {
	switch e {
	case 0:
		return Dist{}
	case p.All:
		return Dist{kind: 2}
	}
	return Dist{kind: 1, val: int64(e) - 1}
}

// Broadcast replicates a lane value across every lane of one word (including
// tail lanes; mask with Fill when storing into a row).
func (p *Packing) Broadcast(e uint64) uint64 {
	// lmask has a 1 at each lane's LSB, so multiplying spreads e into every
	// lane; lanes are wide enough that the partial products cannot carry.
	return e * p.lmask
}

// Fill sets every cell of the row to the lane value e, keeping tail lanes
// zero.
func (p *Packing) Fill(row []uint64, e uint64) {
	w := p.Broadcast(e)
	for i := range row {
		row[i] = w
	}
	if p.Words > 0 {
		row[p.Words-1] &= p.tail
	}
}

// Cell returns cell i of the row as a lane value.
func (p *Packing) Cell(row []uint64, i int) uint64 {
	per := 64 / int(p.Lane)
	return (row[i/per] >> (uint(i%per) * p.Lane)) & p.All
}

// SetCell stores lane value e into cell i of the row.
func (p *Packing) SetCell(row []uint64, i int, e uint64) {
	per := 64 / int(p.Lane)
	sh := uint(i%per) * p.Lane
	row[i/per] = row[i/per]&^(p.All<<sh) | e<<sh
}

// EncodeRow packs src (length p.M) into row (length p.Words).
func (p *Packing) EncodeRow(row []uint64, src Tuple) {
	for i := range row {
		row[i] = 0
	}
	for i, d := range src {
		p.SetCell(row, i, p.Encode(d))
	}
}

// DecodeRow unpacks row into dst (length p.M). Lanes are peeled word by
// word with shifts; no per-cell index arithmetic.
func (p *Packing) DecodeRow(dst Tuple, row []uint64) {
	per := 64 / int(p.Lane)
	i := 0
	for _, w := range row {
		for k := 0; k < per && i < len(dst); k++ {
			dst[i] = p.Decode(w & p.All)
			w >>= p.Lane
			i++
		}
	}
}

// sub computes the per-lane difference x−y with borrows blocked at lane
// boundaries (Hacker's Delight §2-18): the minuend's lane MSB is forced to 1
// and the subtrahend's to 0, so no lane borrows from its neighbor, then the
// true MSB of each difference is restored by the xor term.
func (p *Packing) sub(x, y uint64) uint64 {
	return ((x | p.hmask) - (y &^ p.hmask)) ^ ((x ^ ^y) & p.hmask)
}

// LtMask returns a full-lane mask (all lane bits set) for every lane where
// x < y as unsigned integers, and zero lanes elsewhere.
func (p *Packing) LtMask(x, y uint64) uint64 {
	d := p.sub(x, y)
	// Per-lane borrow-out of x−y, collected at each lane's MSB.
	b := ((^x & y) | ((^x | y) & d)) & p.hmask
	// Spread each borrow bit across its lane: shift to the lane LSB, then
	// multiply by the all-ones lane value (lane-disjoint, no carries).
	return (b >> (p.Lane - 1)) * p.All
}

// MinInto sets dst = min(dst, src) per lane: the meet of the must lattice.
func (p *Packing) MinInto(dst, src []uint64) {
	for i := range dst {
		x, y := dst[i], src[i]
		m := p.LtMask(x, y)
		dst[i] = x&m | y&^m
	}
}

// MaxInto sets dst = max(dst, src) per lane: the meet of the reverse (may)
// lattice.
func (p *Packing) MaxInto(dst, src []uint64) {
	for i := range dst {
		x, y := dst[i], src[i]
		m := p.LtMask(x, y)
		dst[i] = y&m | x&^m
	}
}

// ApplyBounds computes dst = min(max(in, lo), hi) per lane: the collapsed
// form of a compiled flow function (every gen/preserve op sequence over the
// chain lattice reduces to one such clamp; see internal/dataflow).
func (p *Packing) ApplyBounds(dst, in, lo, hi []uint64) {
	for i := range dst {
		v, l, h := in[i], lo[i], hi[i]
		m := p.LtMask(v, l)
		v = l&m | v&^m // max(v, lo)
		m = p.LtMask(h, v)
		dst[i] = h&m | v&^m // min(v, hi)
	}
}

// IncClamp applies the exit-node transfer in place: every lane with
// 0 < v < All is incremented by one, then (when clamp is set) lanes ≥ ubE
// are saturated to All. ubE must be the encoded clamp threshold ≥ 1, so
// zero (None and tail) lanes are never saturated.
func (p *Packing) IncClamp(row []uint64, ubE uint64, clamp bool) {
	allW := p.Broadcast(p.All)
	var ubW uint64
	if clamp {
		ubW = p.Broadcast(ubE)
	}
	for i := range row {
		v := row[i]
		nz := p.LtMask(0, v)
		notAll := p.LtMask(v, allW)
		// Incremented lanes are < All, so adding the lane LSB cannot carry
		// across a lane boundary.
		v += nz & notAll & p.lmask
		if clamp {
			// Lanes ≥ ubE saturate to All. Zero (None and tail) lanes stay
			// zero because ubE ≥ 1.
			v |= ^p.LtMask(v, ubW)
		}
		row[i] = v
	}
}
