package lattice

import "testing"

// laneSamples returns a set of lattice values spanning the encodable range
// for the lane width, including both chain extremes and the largest legal
// finite distance.
func laneSamples(lane uint) []Dist {
	maxFin := MaxFiniteForLane(lane)
	return []Dist{
		None(), D(0), D(1), D(2), D(3), D(7),
		D(maxFin - 1), D(maxFin), All(),
	}
}

func TestPackingEncodeOrderIsomorphism(t *testing.T) {
	for _, lane := range []uint{Lane8, Lane16} {
		p := NewPacking(1, lane)
		samples := laneSamples(lane)
		for _, x := range samples {
			if got := p.Decode(p.Encode(x)); !got.Eq(x) {
				t.Fatalf("lane %d: decode(encode(%s)) = %s", lane, x, got)
			}
			for _, y := range samples {
				ex, ey := p.Encode(x), p.Encode(y)
				if (x.Cmp(y) < 0) != (ex < ey) {
					t.Fatalf("lane %d: order broken: %s vs %s -> %d vs %d", lane, x, y, ex, ey)
				}
			}
		}
	}
}

// TestPackingKernelsMatchScalar cross-checks every SWAR kernel against the
// scalar Dist operations over all sample pairs placed in every lane
// position, so lane-boundary bleed (carries, borrows) cannot hide.
func TestPackingKernelsMatchScalar(t *testing.T) {
	for _, lane := range []uint{Lane8, Lane16} {
		perWord := 64 / int(lane)
		// A row wider than one word, with a tail: m = perWord + 3.
		m := perWord + 3
		p := NewPacking(m, lane)
		if p.Words != 2 {
			t.Fatalf("lane %d: words = %d, want 2", lane, p.Words)
		}
		samples := laneSamples(lane)
		xs := make(Tuple, m)
		ys := make(Tuple, m)
		for si, x := range samples {
			for sj, y := range samples {
				for i := 0; i < m; i++ {
					xs[i] = samples[(si+i)%len(samples)]
					ys[i] = samples[(sj+i*3)%len(samples)]
				}
				xs[0], ys[0] = x, y // ensure the exact pair appears
				xr := make([]uint64, p.Words)
				yr := make([]uint64, p.Words)
				p.EncodeRow(xr, xs)
				p.EncodeRow(yr, ys)

				// Round trip.
				got := make(Tuple, m)
				p.DecodeRow(got, xr)
				if !got.Eq(xs) {
					t.Fatalf("lane %d: row round trip: got %s want %s", lane, got, xs)
				}

				// MinInto / MaxInto.
				minr := append([]uint64(nil), xr...)
				p.MinInto(minr, yr)
				maxr := append([]uint64(nil), xr...)
				p.MaxInto(maxr, yr)
				for i := 0; i < m; i++ {
					if got, want := p.Decode(p.Cell(minr, i)), Min(xs[i], ys[i]); !got.Eq(want) {
						t.Fatalf("lane %d: min[%d](%s,%s) = %s, want %s", lane, i, xs[i], ys[i], got, want)
					}
					if got, want := p.Decode(p.Cell(maxr, i)), Max(xs[i], ys[i]); !got.Eq(want) {
						t.Fatalf("lane %d: max[%d](%s,%s) = %s, want %s", lane, i, xs[i], ys[i], got, want)
					}
				}

				// ApplyBounds with lo = min(x,y), hi = max(x,y) per lane.
				dst := make([]uint64, p.Words)
				in := make([]uint64, p.Words)
				ins := make(Tuple, m)
				for i := 0; i < m; i++ {
					ins[i] = samples[(si+sj+i)%len(samples)]
				}
				p.EncodeRow(in, ins)
				p.ApplyBounds(dst, in, minr, maxr)
				for i := 0; i < m; i++ {
					lo, hi := Min(xs[i], ys[i]), Max(xs[i], ys[i])
					want := Min(Max(ins[i], lo), hi)
					if got := p.Decode(p.Cell(dst, i)); !got.Eq(want) {
						t.Fatalf("lane %d: bounds[%d] min(max(%s,%s),%s) = %s, want %s",
							lane, i, ins[i], lo, hi, got, want)
					}
				}

				// Tail invariant: lanes past m stay zero everywhere.
				tailStart := uint((m - perWord) * int(lane))
				for name, row := range map[string][]uint64{"min": minr, "max": maxr, "bounds": dst} {
					if hi := row[1] >> tailStart; hi != 0 {
						t.Fatalf("lane %d: %s tail lanes nonzero: %#x", lane, name, hi)
					}
				}
			}
		}
	}
}

func TestPackingIncClampMatchesScalar(t *testing.T) {
	for _, lane := range []uint{Lane8, Lane16} {
		perWord := 64 / int(lane)
		m := perWord + 2
		p := NewPacking(m, lane)
		// Keep increments inside the encodable range: use finite samples with
		// headroom of 1 for the +1.
		maxFin := MaxFiniteForLane(lane)
		samples := []Dist{None(), D(0), D(1), D(2), D(5), D(maxFin - 1), All()}
		ubs := []int64{0, 1, 2, 3, 6, maxFin} // 0 = no clamp
		row := make([]uint64, p.Words)
		vals := make(Tuple, m)
		for shift := range samples {
			for _, ub := range ubs {
				for i := 0; i < m; i++ {
					vals[i] = samples[(shift+i)%len(samples)]
				}
				p.EncodeRow(row, vals)
				clamp := ub > 0 && uint64(ub) < p.All
				p.IncClamp(row, uint64(ub), clamp)
				for i := 0; i < m; i++ {
					want := vals[i].Inc()
					if ub > 0 {
						want = want.Clamp(ub)
					}
					if got := p.Decode(p.Cell(row, i)); !got.Eq(want) {
						t.Fatalf("lane %d: incclamp[%d](%s, ub=%d) = %s, want %s",
							lane, i, vals[i], ub, got, want)
					}
				}
				if tail := row[p.Words-1] >> uint((m-perWord)*int(lane)); tail != 0 {
					t.Fatalf("lane %d: incclamp tail nonzero: %#x", lane, tail)
				}
			}
		}
	}
}

func TestPackingFillAndBroadcast(t *testing.T) {
	for _, lane := range []uint{Lane8, Lane16} {
		perWord := 64 / int(lane)
		for _, m := range []int{1, perWord - 1, perWord, perWord + 1, 3*perWord - 2} {
			p := NewPacking(m, lane)
			row := make([]uint64, p.Words)
			for _, v := range []Dist{None(), D(0), D(4), All()} {
				p.Fill(row, p.Encode(v))
				for i := 0; i < m; i++ {
					if got := p.Decode(p.Cell(row, i)); !got.Eq(v) {
						t.Fatalf("lane %d m %d: fill lane %d = %s, want %s", lane, m, i, got, v)
					}
				}
				if rem := m % perWord; rem != 0 {
					if tail := row[p.Words-1] >> uint(rem*int(lane)); tail != 0 {
						t.Fatalf("lane %d m %d: fill tail nonzero: %#x", lane, m, tail)
					}
				}
			}
		}
	}
}
