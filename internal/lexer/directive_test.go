package lexer

import (
	"strings"
	"testing"

	"repro/internal/token"
)

// scanDirectives lexes src to EOF and returns the collected directives and
// lexical errors.
func scanDirectives(src string) ([]token.Directive, []*Error) {
	l := New(src)
	l.All()
	return l.Directives(), l.Errors()
}

func TestDirectiveWellFormed(t *testing.T) {
	dirs, errs := scanDirectives("a := 1\n//lint:ignore race single-threaded driver\nb := 2\n")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(dirs) != 1 {
		t.Fatalf("directives = %d, want 1", len(dirs))
	}
	d := dirs[0]
	if d.Pos.Line != 2 || d.Pos.Col != 1 {
		t.Errorf("pos = %v, want 2:1", d.Pos)
	}
	if len(d.IDs) != 1 || d.IDs[0] != "race" {
		t.Errorf("IDs = %v, want [race]", d.IDs)
	}
	if d.Reason != "single-threaded driver" {
		t.Errorf("reason = %q", d.Reason)
	}
}

func TestDirectiveBangMarker(t *testing.T) {
	dirs, errs := scanDirectives("!lint:ignore uninit seeded by caller\nA[i] := 1\n")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(dirs) != 1 || dirs[0].IDs[0] != "uninit" {
		t.Fatalf("directives = %v", dirs)
	}
}

func TestDirectiveMultipleIDs(t *testing.T) {
	// The ID list is space-free; the first space separates it from the
	// reason (//lint:ignore analyzer[,analyzer...] reason).
	dirs, errs := scanDirectives("//lint:ignore race,uninit,deadstore all vetted manually\n")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(dirs) != 1 {
		t.Fatalf("directives = %d, want 1", len(dirs))
	}
	got := strings.Join(dirs[0].IDs, ",")
	if got != "race,uninit,deadstore" {
		t.Errorf("IDs = %q, want race,uninit,deadstore", got)
	}
	if dirs[0].Reason != "all vetted manually" {
		t.Errorf("reason = %q", dirs[0].Reason)
	}
}

func TestDirectiveTrailing(t *testing.T) {
	dirs, errs := scanDirectives("A[i] := B[i] //lint:ignore uninit B seeded above\n")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(dirs) != 1 || dirs[0].Pos.Line != 1 {
		t.Fatalf("trailing directive not anchored to its line: %v", dirs)
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown_verb", "//lint:fixme race later\n", "unknown lint directive"},
		{"no_args", "//lint:ignore\n", "malformed lint:ignore"},
		{"ids_only", "//lint:ignore race\n", "malformed lint:ignore"},
		{"blank_reason", "//lint:ignore race    \n", "malformed lint:ignore"},
		{"empty_id", "//lint:ignore race,,uninit because\n", "empty analyzer ID"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dirs, errs := scanDirectives(tc.src)
			if len(dirs) != 0 {
				t.Errorf("malformed directive recorded: %v", dirs)
			}
			if len(errs) != 1 || !strings.Contains(errs[0].Msg, tc.wantErr) {
				t.Errorf("errors = %v, want one containing %q", errs, tc.wantErr)
			}
		})
	}
}

func TestOrdinaryCommentsNotDirectives(t *testing.T) {
	src := "a := 1 ! lintish prose comment\n// lint with a space is prose\n//linting is fun\nb := 2\n"
	dirs, errs := scanDirectives(src)
	if len(errs) != 0 {
		t.Fatalf("prose comments reported errors: %v", errs)
	}
	if len(dirs) != 0 {
		t.Errorf("prose comments recorded as directives: %v", dirs)
	}
}
