// Package lexer implements the scanner for the loop mini-language.
//
// The scanner is a straightforward hand-written state machine over a byte
// slice. It folds consecutive newlines and semicolons into a single NEWLINE
// token, strips comments introduced by '!' or "//" through end of line, and
// accepts both ":=" and "=" as the assignment operator (the parser decides
// from context whether '=' means assignment or is part of a DO header).
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans an input buffer and produces tokens one at a time. It is
// zero-copy: the buffer is never re-sliced into fresh strings on the hot
// path — identifiers go through a program-scoped intern table (one canonical
// string per distinct spelling) and integer literals are parsed in place
// into Token.Val.
type Lexer struct {
	src         []byte
	off         int // byte offset of the next unread byte
	line        int
	col         int
	errs        []*Error
	atLineStart bool
	in          *token.Interner
	directives  []token.Directive
}

// New returns a lexer over src.
func New(src string) *Lexer { return NewBytes([]byte(src), nil) }

// NewBytes returns a lexer over a raw byte buffer, which must not be
// mutated while the lexer (or any AST derived from it) is in use. If in is
// nil a fresh intern table is created; passing a shared table lets callers
// amortize identifier interning across many programs (see driver.AnalyzeBatch).
func NewBytes(src []byte, in *token.Interner) *Lexer {
	if in == nil {
		in = token.NewInterner()
	}
	return &Lexer{src: src, line: 1, col: 1, atLineStart: true, in: in}
}

// Interner returns the identifier intern table the lexer populates.
func (l *Lexer) Interner() *token.Interner { return l.in }

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

// Directives returns the lint control comments seen so far, in source
// order (see token.Directive).
func (l *Lexer) Directives() []token.Directive { return l.directives }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }
func isDigit(c byte) bool { return '0' <= c && c <= '9' }
func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}
func isIdentPart(c byte) bool { return isLetter(c) || isDigit(c) }

// skipSpaceAndComments consumes blanks and comments but not newlines.
// Comments whose body begins with "lint:" are control directives: they are
// parsed and recorded (or reported as lexical errors when malformed)
// instead of being discarded silently.
func (l *Lexer) skipSpaceAndComments() {
	for {
		for isSpace(l.peek()) {
			l.advance()
		}
		if (l.peek() == '!' && l.peekAt(1) != '=') || (l.peek() == '/' && l.peekAt(1) == '/') {
			pos := l.pos()
			if l.peek() == '/' {
				l.advance() // second '/' consumed below
			}
			l.advance()
			body := l.off
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
			l.scanDirective(pos, string(l.src[body:l.off]))
			continue
		}
		return
	}
}

// scanDirective recognizes lint control comments. body is the comment text
// after the marker; anything not starting with "lint:" is an ordinary
// comment and ignored.
func (l *Lexer) scanDirective(pos token.Pos, body string) {
	trimmed := strings.TrimLeft(body, " \t")
	if !strings.HasPrefix(trimmed, "lint:") {
		return
	}
	const verb = "lint:ignore"
	if !strings.HasPrefix(trimmed, verb) {
		l.errorf(pos, "unknown lint directive %q (only lint:ignore is defined)",
			strings.Fields(trimmed)[0])
		return
	}
	rest := strings.TrimLeft(trimmed[len(verb):], " \t")
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) < 2 || fields[0] == "" || strings.TrimSpace(fields[1]) == "" {
		l.errorf(pos, "malformed lint:ignore directive (want //lint:ignore analyzer[,analyzer...] reason)")
		return
	}
	var ids []string
	for _, id := range strings.Split(fields[0], ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			l.errorf(pos, "malformed lint:ignore directive: empty analyzer ID in %q", fields[0])
			return
		}
		ids = append(ids, id)
	}
	l.directives = append(l.directives, token.Directive{
		Pos: pos, IDs: ids, Reason: strings.TrimSpace(fields[1]),
	})
}

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	c := l.peek()

	switch {
	case c == 0:
		return token.Token{Kind: token.EOF, Pos: pos}

	case c == '\n' || c == ';':
		// Fold a run of separators (and interleaved blanks/comments) into one.
		for {
			if l.peek() == '\n' || l.peek() == ';' {
				l.advance()
				l.skipSpaceAndComments()
				continue
			}
			break
		}
		return token.Token{Kind: token.NEWLINE, Text: "\\n", Pos: pos}

	case isDigit(c):
		start := l.off
		var val int64
		overflow := false
		for isDigit(l.peek()) {
			d := int64(l.advance() - '0')
			if val > (1<<63-1-d)/10 {
				overflow = true
			} else {
				val = val*10 + d
			}
		}
		if isLetter(l.peek()) {
			bad := l.pos()
			for isIdentPart(l.peek()) {
				l.advance()
			}
			l.errorf(bad, "identifier may not start with a digit")
			return token.Token{Kind: token.ILLEGAL, Text: string(l.src[start:l.off]), Pos: pos}
		}
		if overflow {
			l.errorf(pos, "integer literal %s overflows int64", string(l.src[start:l.off]))
			return token.Token{Kind: token.INT, Val: 1<<63 - 1, Pos: pos}
		}
		return token.Token{Kind: token.INT, Val: val, Pos: pos}

	case isLetter(c):
		start := l.off
		for isIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		kind := token.LookupBytes(word)
		if kind != token.IDENT {
			return token.Token{Kind: kind, Text: kind.String(), Pos: pos}
		}
		sym := l.in.Intern(word)
		return token.Token{Kind: token.IDENT, Text: l.in.Name(sym), Sym: sym, Pos: pos}
	}

	// Operators and punctuation.
	l.advance()
	two := func(next byte, yes, no token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: yes, Text: yes.String(), Pos: pos}
		}
		return token.Token{Kind: no, Text: no.String(), Pos: pos}
	}

	switch c {
	case ':':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.ASSIGN, Text: ":=", Pos: pos}
		}
		l.errorf(pos, "unexpected ':' (did you mean ':='?)")
		return token.Token{Kind: token.ILLEGAL, Text: ":", Pos: pos}
	case '=':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.EQ, Text: "==", Pos: pos}
		}
		// Bare '=' doubles as assignment (Fortran style) — the parser
		// normalizes it. Report it as ASSIGN.
		return token.Token{Kind: token.ASSIGN, Text: "=", Pos: pos}
	case '!':
		// '!' not followed by '=' starts a comment; that case is consumed by
		// skipSpaceAndComments, so reaching here means "!=".
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.NEQ, Text: "!=", Pos: pos}
		}
		return token.Token{Kind: token.ILLEGAL, Text: "!", Pos: pos}
	case '<':
		return two('=', token.LEQ, token.LT)
	case '>':
		return two('=', token.GEQ, token.GT)
	case '+':
		return token.Token{Kind: token.PLUS, Text: "+", Pos: pos}
	case '-':
		return token.Token{Kind: token.MINUS, Text: "-", Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Text: "*", Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Text: "/", Pos: pos}
	case '%':
		return token.Token{Kind: token.MOD, Text: "%", Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Text: "(", Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Text: ")", Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Text: "[", Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Text: "]", Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Text: ",", Pos: pos}
	}

	l.errorf(pos, "illegal character %q", c)
	return token.Token{Kind: token.ILLEGAL, Text: string(c), Pos: pos}
}

// All scans the entire input and returns every token including the final EOF.
func (l *Lexer) All() []token.Token {
	// Dense loop sources run just under 2 bytes per token, so len/2 lands
	// within one growth step of the final size instead of doubling a
	// multi-megabyte slice ~15 times from nil.
	out := make([]token.Token, 0, len(l.src)/2+16)
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
