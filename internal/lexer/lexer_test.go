package lexer

import (
	"testing"

	"repro/internal/token"
)

func kinds(src string) []token.Kind {
	l := New(src)
	var out []token.Kind
	for _, t := range l.All() {
		out = append(out, t.Kind)
	}
	return out
}

func eqKinds(t *testing.T, got []token.Kind, want ...token.Kind) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v\ngot:  %v\nwant: %v", i, got[i], want[i], got, want)
		}
	}
}

func TestScanDoHeader(t *testing.T) {
	eqKinds(t, kinds("do i = 1, UB"),
		token.DO, token.IDENT, token.ASSIGN, token.INT, token.COMMA, token.IDENT, token.EOF)
}

func TestScanAssignBothForms(t *testing.T) {
	eqKinds(t, kinds("A[i] := 1"),
		token.IDENT, token.LBRACKET, token.IDENT, token.RBRACKET, token.ASSIGN, token.INT, token.EOF)
	eqKinds(t, kinds("A(i) = 1"),
		token.IDENT, token.LPAREN, token.IDENT, token.RPAREN, token.ASSIGN, token.INT, token.EOF)
}

func TestScanOperators(t *testing.T) {
	eqKinds(t, kinds("a == b != c <= d >= e < f > g"),
		token.IDENT, token.EQ, token.IDENT, token.NEQ, token.IDENT, token.LEQ,
		token.IDENT, token.GEQ, token.IDENT, token.LT, token.IDENT, token.GT, token.IDENT, token.EOF)
	eqKinds(t, kinds("a + b - c * d / e % f"),
		token.IDENT, token.PLUS, token.IDENT, token.MINUS, token.IDENT, token.STAR,
		token.IDENT, token.SLASH, token.IDENT, token.MOD, token.IDENT, token.EOF)
}

func TestNewlinesFold(t *testing.T) {
	eqKinds(t, kinds("a := 1\n\n\n;;\nb := 2"),
		token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.IDENT, token.ASSIGN, token.INT, token.EOF)
}

func TestCommentsStripped(t *testing.T) {
	eqKinds(t, kinds("a := 1 ! trailing comment\nb := 2 // slash comment\nc := 3"),
		token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.IDENT, token.ASSIGN, token.INT, token.EOF)
}

func TestCommentOnlyLine(t *testing.T) {
	// A comment-only line leaves its newline behind as a separator token;
	// the parser skips leading separators.
	eqKinds(t, kinds("! whole line\na := 1"),
		token.NEWLINE, token.IDENT, token.ASSIGN, token.INT, token.EOF)
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	eqKinds(t, kinds("DO Enddo If THEN Else ENDIF and OR noT"),
		token.DO, token.ENDDO, token.IF, token.THEN, token.ELSE, token.ENDIF,
		token.AND, token.OR, token.NOT, token.EOF)
}

func TestIdentifiersKeepCase(t *testing.T) {
	l := New("Alpha beta_2 C")
	toks := l.All()
	if toks[0].Text != "Alpha" || toks[1].Text != "beta_2" || toks[2].Text != "C" {
		t.Fatalf("identifier texts wrong: %v", toks)
	}
}

func TestPositions(t *testing.T) {
	l := New("a := 1\n  b := 2")
	toks := l.All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	// after NEWLINE: b is on line 2, col 3
	var bTok token.Token
	for _, tk := range toks {
		if tk.Kind == token.IDENT && tk.Text == "b" {
			bTok = tk
		}
	}
	if bTok.Pos.Line != 2 || bTok.Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", bTok.Pos)
	}
}

func TestIllegalColon(t *testing.T) {
	l := New("a : b")
	toks := l.All()
	found := false
	for _, tk := range toks {
		if tk.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected ILLEGAL token for bare ':', got %v", toks)
	}
	if len(l.Errors()) == 0 {
		t.Fatal("expected a recorded lexical error")
	}
}

func TestIllegalDigitIdent(t *testing.T) {
	l := New("1abc := 2")
	toks := l.All()
	if toks[0].Kind != token.ILLEGAL {
		t.Fatalf("expected ILLEGAL for 1abc, got %v", toks[0])
	}
}

func TestNotEqualAfterSpace(t *testing.T) {
	// "!=" must scan as NEQ, while "! =" begins a comment.
	eqKinds(t, kinds("a != b"), token.IDENT, token.NEQ, token.IDENT, token.EOF)
	eqKinds(t, kinds("a ! = b"), token.IDENT, token.EOF)
}

func TestEOFIsSticky(t *testing.T) {
	l := New("")
	for range 3 {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("expected EOF, got %v", tk)
		}
	}
}

func TestSemicolonSeparator(t *testing.T) {
	eqKinds(t, kinds("a := 1; b := 2"),
		token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.IDENT, token.ASSIGN, token.INT, token.EOF)
}
