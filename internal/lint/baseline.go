package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/diag"
)

// BaselineEntry is one accepted pre-existing finding class in a baseline
// file: the position-independent identity (owning file for multi-file
// front ends, analyzer, severity, message) plus how many occurrences are
// accepted. Positions are deliberately absent — baselines must survive
// unrelated edits that shift lines. File is empty for single-source runs
// (the mini-language), keeping their baseline files byte-compatible.
type BaselineEntry struct {
	File     string `json:"file,omitempty"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is a set of accepted findings. New runs suppress up to Count
// occurrences of each entry; anything beyond the baseline stays loud.
type Baseline struct {
	Entries []BaselineEntry `json:"findings"`
}

// NewBaseline captures the current findings (excluding already-suppressed
// ones and front-end errors, which a baseline must never hide) as a
// baseline, with entries sorted for stable files.
func NewBaseline(fs []diag.Finding) *Baseline {
	counts := map[string]*BaselineEntry{}
	for _, f := range fs {
		if f.Suppressed || f.Analyzer == "parse" || f.Analyzer == "sema" {
			continue
		}
		key := diag.BaselineKey(f)
		if e, ok := counts[key]; ok {
			e.Count++
			continue
		}
		counts[key] = &BaselineEntry{
			File:     f.File,
			Analyzer: f.Analyzer,
			Severity: f.Severity.String(),
			Message:  f.Message,
			Count:    1,
		}
	}
	b := &Baseline{}
	for _, e := range counts {
		b.Entries = append(b.Entries, *e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.Severity != c.Severity {
			return a.Severity < c.Severity
		}
		return a.Message < c.Message
	})
	return b
}

// Apply marks up to Count occurrences of each baseline entry as
// suppressed (in the findings' deterministic sorted order) and returns the
// number it silenced. Front-end findings are never baselined.
func (b *Baseline) Apply(fs []diag.Finding) int {
	if b == nil || len(b.Entries) == 0 {
		return 0
	}
	budget := make(map[string]int, len(b.Entries))
	for _, e := range b.Entries {
		key := e.Analyzer + "\x00" + e.Severity + "\x00" + e.Message
		if e.File != "" {
			// Mirrors diag.BaselineKey: multi-file entries are scoped to
			// their artifact.
			key = e.File + "\x00" + key
		}
		budget[key] = e.Count
	}
	n := 0
	for i := range fs {
		f := &fs[i]
		if f.Suppressed || f.Analyzer == "parse" || f.Analyzer == "sema" {
			continue
		}
		key := diag.BaselineKey(*f)
		if budget[key] <= 0 {
			continue
		}
		budget[key]--
		f.Suppressed = true
		if f.Detail == nil {
			f.Detail = map[string]string{}
		}
		f.Detail["suppressedBy"] = "baseline"
		f.Detail["suppressionKind"] = "external"
		n++
	}
	return n
}

// ReadBaselineFile loads a baseline written by WriteBaselineFile.
func ReadBaselineFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: malformed baseline: %v", path, err)
	}
	return &b, nil
}

// WriteBaselineFile writes the baseline as indented JSON with a trailing
// newline.
func (b *Baseline) WriteBaselineFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
