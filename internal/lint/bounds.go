package lint

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/sema"
	"repro/internal/token"
)

// boundsAnalyzer compares the extreme values of each affine subscript over
// the loop's iteration space against the array's dim-declared bounds.
// Arrays without a dim declaration are never reported (their extent is
// unknown), and extremes that depend on a symbolic loop bound are skipped —
// only provable violations fire.
var boundsAnalyzer = &Analyzer{
	ID:      "bounds",
	Doc:     "affine subscript provably outside the dim-declared bounds",
	Problem: "affine subscript forms over the normalized iteration space",
	Default: diag.Error,
	Run:     runBounds,
}

func runBounds(c *Context) []diag.Finding {
	g := c.Loop.Graph()
	var out []diag.Finding
	for _, ref := range g.Refs {
		if ref.FromInner {
			// Inner-loop references are checked by the inner loop's own run.
			continue
		}
		sizes, declared := c.Info.Bounds[ref.Array]
		if !declared || len(sizes) != len(ref.Expr.Subs) {
			continue
		}
		for k, sub := range ref.Expr.Subs {
			f, err := sema.AffineOf(sub, g.IV)
			if err != nil {
				continue
			}
			a, b, ok := f.ConstCoeffs()
			if !ok {
				continue
			}
			// Normalized loops run iv = 1..UB, so a·iv+b is monotone in iv:
			// one extreme sits at iv=1, the other at iv=UB (known only for
			// constant bounds).
			lo, hi, loKnown, hiKnown := subscriptRange(a, b, g.HasUB, g.UBConst)
			if loKnown && lo < 1 {
				out = append(out, c.boundsFinding(ref.Expr, sub, k, sizes[k], lo, a, b, g.HasUB, g.UBConst, true))
			}
			if hiKnown && hi > sizes[k] {
				out = append(out, c.boundsFinding(ref.Expr, sub, k, sizes[k], hi, a, b, g.HasUB, g.UBConst, false))
			}
		}
	}
	return out
}

// subscriptRange evaluates the extremes of a·iv+b for iv in [1, UB].
func subscriptRange(a, b int64, hasUB bool, ub int64) (lo, hi int64, loKnown, hiKnown bool) {
	atOne := a + b
	switch {
	case a == 0:
		return b, b, true, true
	case a > 0:
		lo, loKnown = atOne, true
		if hasUB {
			hi, hiKnown = a*ub+b, true
		}
	default:
		hi, hiKnown = atOne, true
		if hasUB {
			lo, loKnown = a*ub+b, true
		}
	}
	return lo, hi, loKnown, hiKnown
}

func (c *Context) boundsFinding(ref *ast.ArrayRef, sub ast.Expr, dim int, size, value, a, b int64,
	hasUB bool, ub int64, below bool) diag.Finding {
	// The violating iteration: the minimum of a·iv+b sits at iv=1 for a>0
	// and at iv=UB for a<0 (and vice versa for the maximum).
	atIter := int64(1)
	if (a > 0) != below && hasUB {
		atIter = ub
	}
	side := "above"
	if below {
		side = "below"
	}
	pos := sub.Pos()
	if !pos.IsValid() {
		pos = ref.Pos()
	}
	f := diag.Finding{
		Analyzer: "bounds",
		Pos:      pos,
		Severity: diag.Error,
		Message: fmt.Sprintf("subscript %d of %s reaches %d, %s the declared range 1..%d",
			dim+1, ast.ExprString(ref), value, side, size),
		Detail: map[string]string{
			"array":     ref.Name,
			"dimension": fmt.Sprintf("%d", dim+1),
			"value":     fmt.Sprintf("%d", value),
			"range":     fmt.Sprintf("1..%d", size),
			"at":        fmt.Sprintf("%s = %d", c.Loop.Graph().IV, atIter),
		},
	}
	if a == 0 {
		delete(f.Detail, "at") // constant subscript: every iteration violates
	}
	if d := c.Info.Dims[ref.Name]; d != nil {
		f.Related = append(f.Related, diag.Related{Pos: d.Pos(), Message: "bounds declared here"})
		if !below {
			if fix, ok := growDimFix(c.Src, d, dim, value); ok {
				f.SuggestedFixes = append(f.SuggestedFixes, fix)
			}
		}
	}
	return f
}

// growDimFix suggests widening the dim declaration's size literal to cover
// the subscript's proven maximum. Only literal sizes are editable, and the
// source text is verified before the edit is offered. Underflow (below 1)
// has no declaration-side fix — arrays are 1-based.
func growDimFix(src string, d *ast.Dim, dim int, value int64) (diag.SuggestedFix, bool) {
	if src == "" || dim >= len(d.Sizes) {
		return diag.SuggestedFix{}, false
	}
	lit, ok := d.Sizes[dim].(*ast.IntLit)
	if !ok {
		return diag.SuggestedFix{}, false
	}
	old := fmt.Sprintf("%d", lit.Value)
	pos := lit.Pos()
	text, ok := diag.LineAt(src, pos.Line)
	if !ok || pos.Col < 1 || pos.Col-1+len(old) > len(text) || text[pos.Col-1:pos.Col-1+len(old)] != old {
		return diag.SuggestedFix{}, false
	}
	return diag.SuggestedFix{
		Message: fmt.Sprintf("grow dimension %d of %s to %d", dim+1, d.Name, value),
		Edits: []diag.TextEdit{{
			Pos:     pos,
			End:     token.Pos{Line: pos.Line, Col: pos.Col + len(old)},
			NewText: fmt.Sprintf("%d", value),
		}},
	}, true
}
