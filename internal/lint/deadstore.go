package lint

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/problems"
)

// deadStoreAnalyzer reports δ-redundant stores (paper §4.2.1): a store
// whose element is overwritten δ iterations later on every path with no
// intervening use, read off the δ-busy-stores solution.
var deadStoreAnalyzer = &Analyzer{
	ID:      "deadstore",
	Doc:     "store overwritten on every path with no intervening read",
	Problem: "δ-busy stores (§4.2.1)",
	Default: diag.Warning,
	Run:     runDeadStore,
}

func runDeadStore(c *Context) []diag.Finding {
	res := c.result("delta-busy-stores")
	if res == nil {
		return nil
	}
	var out []diag.Finding
	for _, rs := range problems.FindRedundantStores(res) {
		when := "later in the same iteration"
		if rs.Distance > 0 {
			when = iterations(rs.Distance) + " later"
		}
		f := diag.Finding{
			Analyzer: "deadstore",
			Pos:      rs.Store.Expr.Pos(),
			Severity: diag.Warning,
			Message: fmt.Sprintf("store to %s is dead: %s overwrites the element %s with no intervening read",
				ast.ExprString(rs.Store.Expr), rs.By, when),
			Detail: map[string]string{
				"array":         rs.Store.Array,
				"distance":      fmt.Sprintf("%d", rs.Distance),
				"overwrittenBy": rs.By.String(),
			},
		}
		if len(rs.By.Members) > 0 {
			f.Related = append(f.Related, diag.Related{
				Pos:     rs.By.Members[0].Expr.Pos(),
				Message: fmt.Sprintf("overwritten by this store (%s)", rs.By),
			})
		}
		out = append(out, f)
	}
	return out
}
