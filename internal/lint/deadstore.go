package lint

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/problems"
)

// deadStoreAnalyzer reports δ-redundant stores (paper §4.2.1): a store
// whose element is overwritten δ iterations later on every path with no
// intervening use, read off the δ-busy-stores solution.
var deadStoreAnalyzer = &Analyzer{
	ID:      "deadstore",
	Doc:     "store overwritten on every path with no intervening read",
	Problem: "δ-busy stores (§4.2.1)",
	Default: diag.Warning,
	Run:     runDeadStore,
}

func runDeadStore(c *Context) []diag.Finding {
	res := c.result("delta-busy-stores")
	if res == nil {
		return nil
	}
	var out []diag.Finding
	for _, rs := range problems.FindRedundantStores(res) {
		when := "later in the same iteration"
		if rs.Distance > 0 {
			when = iterations(rs.Distance) + " later"
		}
		f := diag.Finding{
			Analyzer: "deadstore",
			Pos:      rs.Store.Expr.Pos(),
			Severity: diag.Warning,
			Message: fmt.Sprintf("store to %s is dead: %s overwrites the element %s with no intervening read",
				ast.ExprString(rs.Store.Expr), rs.By, when),
			Detail: map[string]string{
				"array":         rs.Store.Array,
				"distance":      fmt.Sprintf("%d", rs.Distance),
				"overwrittenBy": rs.By.String(),
			},
		}
		if len(rs.By.Members) > 0 {
			f.Related = append(f.Related, diag.Related{
				Pos:     rs.By.Members[0].Expr.Pos(),
				Message: fmt.Sprintf("overwritten by this store (%s)", rs.By),
			})
		}
		if fix, ok := deadStoreFix(c.Src, rs.Store); ok {
			f.SuggestedFixes = append(f.SuggestedFixes, fix)
		}
		out = append(out, f)
	}
	return out
}

// deadStoreFix suggests deleting the dead store's source line. The fix is
// only offered when the line provably holds exactly one assignment to the
// store's array (the mini-language puts one statement per line), so the
// deletion removes the dead statement and nothing else.
func deadStoreFix(src string, store *ir.Ref) (diag.SuggestedFix, bool) {
	if src == "" {
		return diag.SuggestedFix{}, false
	}
	line := store.Expr.Pos().Line
	text, ok := diag.LineAt(src, line)
	if !ok {
		return diag.SuggestedFix{}, false
	}
	trimmed := strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(trimmed, store.Array)
	if !ok || !strings.Contains(rest, ":=") {
		return diag.SuggestedFix{}, false
	}
	if r := strings.TrimLeft(rest, " \t"); len(r) == 0 || (r[0] != '[' && r[0] != '(') {
		return diag.SuggestedFix{}, false
	}
	edit, ok := diag.DeleteLineEdit(src, line)
	if !ok {
		return diag.SuggestedFix{}, false
	}
	return diag.SuggestedFix{
		Message: fmt.Sprintf("delete the dead store to %s", ast.ExprString(store.Expr)),
		Edits:   []diag.TextEdit{edit},
	}, true
}
