package lint_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/lint"
	"repro/internal/synth"
)

// TestFuelDegradeToUnknown pins the end-to-end degradation contract on the
// paper's Figure 1 program: under a one-unit fuel budget every solve
// exhausts, and vet must (a) classify the loop's parallelism as unknown
// with the budget named in the blocker, (b) claim nothing from the degraded
// solutions — no reuse, deadstore, or uninit findings — and (c) report no
// selfcheck errors, because a truncated solve is exempt from the two-pass
// bound and both engines degrade identically.
func TestFuelDegradeToUnknown(t *testing.T) {
	res := vetExample(t, "../../examples/fig1.loop", &lint.Options{Parallelism: 1, Fuel: 1})
	if res.FrontEndFailed {
		t.Fatal("front end failed")
	}
	var race, banned, selfErr int
	for _, f := range res.Findings {
		switch f.Analyzer {
		case "race":
			race++
			if f.Detail["verdict"] != "unknown" {
				t.Errorf("race verdict = %q, want unknown: %s", f.Detail["verdict"], f.Message)
			}
			if !strings.Contains(f.Message, "fuel budget (1) was exhausted") {
				t.Errorf("race finding does not name the budget: %s", f.Message)
			}
		case "reuse", "deadstore", "uninit":
			banned++
			t.Errorf("degraded solve produced a %s claim: %s", f.Analyzer, f.Message)
		case "selfcheck":
			if f.Severity == diag.Error {
				selfErr++
				t.Errorf("selfcheck error under exhaustion: %s", f.Message)
			}
		}
	}
	if race == 0 {
		t.Error("no race finding — expected an unknown verdict with the fuel blocker")
	}
}

// TestFuelDegradeDeterministic is the 50-run determinism sweep of satellite
// acceptance: with a tiny budget, the rendered vet output over a multi-loop
// program must be byte-identical across solver engines, parallelism
// settings, and cache on/off — exhaustion is part of the deterministic
// semantics, not a race against the scheduler.
func TestFuelDegradeDeterministic(t *testing.T) {
	src := ast.ProgramString(synth.MultiLoopProgram(synth.MultiParams{
		Seed: 11, Loops: 8, StmtsPer: 6, NestEvery: 3, DistinctBodies: 4, UB: 32}))
	engines := []dataflow.Engine{dataflow.EnginePacked, dataflow.EngineReference}
	parallelisms := []int{1, 0, 4}
	caches := []bool{false, true}

	driver.ResetCache()
	defer driver.ResetCache()
	var want string
	for run := 0; run < 50; run++ {
		opts := &lint.Options{
			Fuel:         3,
			Engine:       engines[run%len(engines)],
			Parallelism:  parallelisms[(run/2)%len(parallelisms)],
			DisableCache: caches[(run/6)%len(caches)],
		}
		res := lint.Vet("fuel.loop", src, opts)
		if res.FrontEndFailed {
			t.Fatal("front end failed")
		}
		var buf bytes.Buffer
		if err := diag.WriteText(&buf, res.File, res.Findings); err != nil {
			t.Fatal(err)
		}
		got := buf.String()
		if run == 0 {
			want = got
			if !strings.Contains(want, "fuel budget (3) was exhausted") {
				t.Fatalf("budget never exhausted — sweep is not exercising degradation:\n%s", want)
			}
			continue
		}
		if got != want {
			t.Fatalf("run %d (%s engine, parallelism %d, nocache=%v) diverged:\n--- first run ---\n%s\n--- this run ---\n%s",
				run, opts.Engine, opts.Parallelism, opts.DisableCache, want, got)
		}
	}
}
