// Package lint turns the framework's data flow solutions into source-level
// diagnostics. Each Analyzer consumes the per-loop results computed by
// internal/driver — the paper's four array data flow problems — and reports
// diag.Findings anchored to token positions: dead stores from δ-busy
// stores, guaranteed reuses from δ-available values, loop-carried
// dependence blockers from δ-reaching references, uninitialized-read gaps
// from must-reaching definitions, subscript bounds violations from the
// affine forms, and a self-check of the framework's own convergence
// guarantees.
//
// Analyzers run per loop through the driver's deterministic fan-out
// (ProgramAnalysis.ForEachLoop); findings are merged, sorted, and deduped
// so output is byte-for-byte identical at every parallelism setting.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/problems"
	"repro/internal/rangefacts"
	"repro/internal/sema"
)

// Analyzer is one diagnostic pass over a single analyzed loop.
type Analyzer struct {
	// ID is the stable identifier stamped on findings (and the selector
	// accepted by Options.Analyzers).
	ID string
	// Doc is a one-line description of what the analyzer reports.
	Doc string
	// Problem names the paper data flow problem the analyzer consumes.
	Problem string
	// Default is the severity of the analyzer's ordinary findings.
	Default diag.Severity
	// Run produces the findings for the loop in ctx. It must be safe to
	// call concurrently for different contexts and must not mutate the
	// analysis results.
	Run func(ctx *Context) []diag.Finding
}

// Context bundles everything an analyzer may inspect for one loop.
type Context struct {
	// File is the display name of the source file.
	File string
	// Program and Info describe the whole (checked, normalized) program.
	Program *ast.Program
	Info    *sema.Info
	// Loop is the analyzed loop: flow graph plus the solved problems.
	Loop *driver.LoopAnalysis
	// Metrics are the driver's solver metrics for this loop.
	Metrics driver.LoopMetrics
	// DefinedBefore is the set of arrays stored to at some pre-order
	// position before the loop; reads of those arrays are assumed
	// initialized by the earlier code.
	DefinedBefore map[string]bool
	// Src is the original source text when known ("" otherwise); analyzers
	// use it to build suggested fixes that splice real lines.
	Src string
	// Engine is the solver engine the analysis ran under; the self-check
	// analyzer re-solves with the opposite engine and compares.
	Engine dataflow.Engine
	// Fuel is the per-solve budget the analysis ran under (0 = derived
	// default); the self-check analyzer forwards it to its re-solves so the
	// cross-engine comparison sees the same degradation.
	Fuel int64
}

// Facts returns the loop's range-fact environment (never-nil-safe: every
// query on a nil environment answers "unknown").
func (c *Context) Facts() *rangefacts.Facts { return c.Loop.Facts() }

// result returns the named problem's solution, or nil when it was not
// requested.
func (c *Context) result(name string) *dataflow.Result { return c.Loop.Result(name) }

// fuelExhaustedResult returns the first (by problem name) solved result of
// the loop that ran out of fuel, or ("", nil) when every solve finished
// within budget. Name order keeps the reported blocker deterministic.
func fuelExhaustedResult(c *Context) (string, *dataflow.Result) {
	names := make([]string, 0, len(c.Loop.Results()))
	for name := range c.Loop.Results() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if res := c.Loop.Result(name); res.FuelExhausted {
			return name, res
		}
	}
	return "", nil
}

// registry lists the analyzers in ID order (the order findings tie-break
// by, and the order documentation tables render in).
var registry = []*Analyzer{
	boundsAnalyzer,
	deadStoreAnalyzer,
	raceAnalyzer,
	reuseAnalyzer,
	selfCheckAnalyzer,
	uninitAnalyzer,
}

// Analyzers returns the full analyzer registry in ID order.
func Analyzers() []*Analyzer { return registry }

// RuleMetas builds the SARIF rules table for vet output: the reserved
// front-end IDs ("parse", "sema") followed by every registered analyzer.
func RuleMetas() []diag.RuleMeta {
	rules := []diag.RuleMeta{
		{ID: "parse", Doc: "syntax error reported by the parser", Default: diag.Error},
		{ID: "sema", Doc: "semantic error reported by the checker or normalizer", Default: diag.Error},
	}
	for _, a := range registry {
		m := diag.RuleMeta{ID: a.ID, Doc: a.Doc, Default: a.Default}
		if a.ID == "race" {
			// The closed blocker taxonomy, so SARIF consumers can bucket
			// unknown verdicts by the blocker.slug result property without
			// parsing prose.
			m.Properties = map[string]string{
				"blockerSlugs": strings.Join(BlockerSlugs(), ","),
			}
		}
		rules = append(rules, m)
	}
	return rules
}

// Specs returns the data flow problem instances the analyzers consume —
// the paper's four array problems.
func Specs() []*dataflow.Spec { return problems.StandardSpecs() }

// Options tunes a lint run.
type Options struct {
	// Parallelism caps worker goroutines, both in the underlying driver
	// and in the per-loop analyzer fan-out (0 = GOMAXPROCS, 1 = serial).
	// Output is identical at every setting.
	Parallelism int
	// DisableCache bypasses the driver's memo cache.
	DisableCache bool
	// CacheDir points the driver at a persistent solve cache directory
	// (see driver.Options.CacheDir); "" keeps the cache memory-only.
	CacheDir string
	// Analyzers restricts the run to the given IDs (nil = all).
	Analyzers []string
	// Engine selects the solver implementation (zero value = packed),
	// forwarded to the driver.
	Engine dataflow.Engine
	// Src is the source text being analyzed; Vet fills it so analyzers can
	// suggest concrete text edits. Callers of Run/RunOn may leave it empty
	// (fixes are then omitted).
	Src string
	// Werror makes warning findings fail the exit code like errors.
	Werror bool
	// Baseline, when non-nil, suppresses the findings it accepts.
	Baseline *Baseline
	// Fuel bounds each per-loop solve (driver.Options.Fuel). Exhausted
	// solves degrade to "unknown" findings rather than wrong ones: every
	// analyzer consuming a degraded result reports the fuel blocker or
	// stays silent.
	Fuel int64
	// Assume seeds every loop's range-fact derivation
	// (driver.Options.Assume); front ends inject invariants the mini
	// language cannot state, e.g. `s_len ≥ 0` for Go len() bounds.
	Assume []rangefacts.Fact
}

// Run solves the four problems on every loop of a checked, normalized
// program and applies the analyzers, returning the deterministic, sorted
// finding list together with the underlying analysis (for metrics).
func Run(file string, prog *ast.Program, opts *Options) ([]diag.Finding, *driver.ProgramAnalysis, error) {
	if opts == nil {
		opts = &Options{}
	}
	pa, err := driver.Analyze(prog, &driver.Options{
		Specs:        Specs(),
		Parallelism:  opts.Parallelism,
		DisableCache: opts.DisableCache,
		CacheDir:     opts.CacheDir,
		Engine:       opts.Engine,
		Fuel:         opts.Fuel,
		Assume:       opts.Assume,
	})
	if err != nil {
		return nil, nil, err
	}
	return RunOn(file, pa, opts), pa, nil
}

// RunOn applies the analyzers to an existing whole-program analysis. The
// analysis must have been produced with (at least) the Specs() problems.
func RunOn(file string, pa *driver.ProgramAnalysis, opts *Options) []diag.Finding {
	if opts == nil {
		opts = &Options{}
	}
	selected := selectAnalyzers(opts.Analyzers)
	before := definedBefore(pa.Prog)
	slots := make([][]diag.Finding, len(pa.Loops))
	pa.ForEachLoop(opts.Parallelism, func(i int, la *driver.LoopAnalysis) {
		ctx := &Context{
			File:          file,
			Program:       pa.Prog,
			Info:          pa.Info,
			Loop:          la,
			DefinedBefore: before[la.Loop],
			Src:           opts.Src,
			Engine:        opts.Engine,
			Fuel:          opts.Fuel,
		}
		if pa.Metrics != nil && i < len(pa.Metrics.PerLoop) {
			ctx.Metrics = pa.Metrics.PerLoop[i]
		}
		for _, a := range selected {
			slots[i] = append(slots[i], a.Run(ctx)...)
		}
	})
	var out []diag.Finding
	for _, fs := range slots {
		out = append(out, fs...)
	}
	diag.Sort(out)
	return diag.Dedup(out)
}

func selectAnalyzers(ids []string) []*Analyzer {
	if ids == nil {
		return registry
	}
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	var out []*Analyzer
	for _, a := range registry {
		if want[a.ID] {
			out = append(out, a)
		}
	}
	return out
}

// definedBefore computes, for every loop, the set of arrays some statement
// stores to at an earlier pre-order position. The uninitialized-read
// analyzer treats those arrays as initialized: the approximation errs
// toward silence (a conditional earlier store still suppresses), never
// toward false positives.
func definedBefore(prog *ast.Program) map[*ast.DoLoop]map[string]bool {
	out := map[*ast.DoLoop]map[string]bool{}
	seen := map[string]bool{}
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.DoLoop:
				snap := make(map[string]bool, len(seen))
				for k := range seen {
					snap[k] = true
				}
				out[st] = snap
				walk(st.Body)
			case *ast.If:
				walk(st.Then)
				walk(st.Else)
			case *ast.Assign:
				if ar, ok := st.LHS.(*ast.ArrayRef); ok {
					seen[ar.Name] = true
				}
			}
		}
	}
	walk(prog.Body)
	return out
}

// iterations renders "1 iteration" / "n iterations".
func iterations(n int64) string {
	if n == 1 {
		return "1 iteration"
	}
	return fmt.Sprintf("%d iterations", n)
}
