package lint_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/lint"
)

// -update regenerates the golden files from current analyzer output:
//
//	go test ./internal/lint -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func examplePaths(t testing.TB) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.loop"))
	if err != nil {
		t.Fatalf("globbing examples: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("no example .loop programs found")
	}
	return paths
}

func vetExample(t testing.TB, path string, opts *lint.Options) *lint.VetResult {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	// The display name is fixed so golden output does not depend on the
	// working directory.
	return lint.Vet("examples/"+filepath.Base(path), string(b), opts)
}

// TestGoldenText pins the exact text findings (content and ordering) for
// every example program.
func TestGoldenText(t *testing.T) {
	for _, path := range examplePaths(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".loop")
		t.Run(name, func(t *testing.T) {
			res := vetExample(t, path, &lint.Options{Parallelism: 1})
			var buf bytes.Buffer
			if err := diag.WriteText(&buf, res.File, res.Findings); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", name+".golden"), buf.Bytes())
		})
	}
}

// TestGoldenJSON pins the JSON rendering for the paper's Figure 1 program.
func TestGoldenJSON(t *testing.T) {
	res := vetExample(t, filepath.Join("..", "..", "examples", "fig1.loop"), &lint.Options{Parallelism: 1})
	var buf bytes.Buffer
	if err := diag.WriteJSON(&buf, res.File, res.Findings); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "fig1.json.golden"), buf.Bytes())
}

// TestGoldenSARIF pins the SARIF 2.1.0 log for every example program —
// the exact artifact `arrayflow vet -format sarif` uploads to code
// scanning, including rule metadata, fingerprints, fixes, and details.
func TestGoldenSARIF(t *testing.T) {
	for _, path := range examplePaths(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".loop")
		t.Run(name, func(t *testing.T) {
			res := vetExample(t, path, &lint.Options{Parallelism: 1})
			var buf bytes.Buffer
			if err := diag.WriteSARIF(&buf, res.File, lint.RuleMetas(), res.Findings); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", name+".sarif.golden"), buf.Bytes())
		})
	}
}

// TestFixIdempotence runs the fix engine on every example and asserts the
// fixed point: a second Fix over the already-fixed source applies nothing
// and returns byte-identical text, and the fixed source still analyzes.
func TestFixIdempotence(t *testing.T) {
	for _, path := range examplePaths(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".loop")
		t.Run(name, func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			file := "examples/" + filepath.Base(path)
			first, err := lint.Fix(file, string(b), nil)
			if err != nil {
				t.Fatalf("first fix pass: %v", err)
			}
			if first.Result.FrontEndFailed {
				t.Fatalf("fixed source does not analyze: %v", first.Result.Findings)
			}
			second, err := lint.Fix(file, first.Src, nil)
			if err != nil {
				t.Fatalf("second fix pass: %v", err)
			}
			if second.Applied != 0 {
				t.Errorf("second pass applied %d fixes; -fix is not idempotent", second.Applied)
			}
			if second.Src != first.Src {
				t.Errorf("second pass changed the source\n-- first --\n%s-- second --\n%s", first.Src, second.Src)
			}
		})
	}
}

// TestFixesEliminateFindings asserts each applied fix removes the finding
// that suggested it: no finding in the fixed source carries the same
// baseline identity as a fixed one from the original run.
func TestFixesEliminateFindings(t *testing.T) {
	for _, path := range examplePaths(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".loop")
		t.Run(name, func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			file := "examples/" + filepath.Base(path)
			before := lint.Vet(file, string(b), nil)
			fixable := map[string]bool{}
			for _, f := range before.Findings {
				if len(f.SuggestedFixes) > 0 && !f.Suppressed {
					fixable[diag.BaselineKey(f)] = true
				}
			}
			out, err := lint.Fix(file, string(b), nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(fixable) > 0 && out.Applied == 0 {
				t.Fatalf("%d fixable findings but no fix applied", len(fixable))
			}
			for _, f := range out.Result.Findings {
				if fixable[diag.BaselineKey(f)] {
					t.Errorf("finding survived its own fix: %s", f)
				}
			}
		})
	}
}

func compareGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s\n-- got --\n%s-- want --\n%s", golden, got, want)
	}
}

// TestFig1Findings asserts the headline facts of the Figure 1 run without
// relying on exact formatting: at least five distinct analyzer IDs fire,
// every finding carries a valid position, and the known key findings are
// present.
func TestFig1Findings(t *testing.T) {
	res := vetExample(t, filepath.Join("..", "..", "examples", "fig1.loop"), nil)
	if res.Analysis == nil {
		t.Fatal("front end rejected fig1.loop")
	}
	ids := map[string]bool{}
	for _, f := range res.Findings {
		ids[f.Analyzer] = true
		if !f.Pos.IsValid() {
			t.Errorf("finding without position: %s", f)
		}
	}
	for _, want := range []string{"bounds", "race", "reuse", "selfcheck", "uninit"} {
		if !ids[want] {
			t.Errorf("analyzer %s produced no finding on fig1; got IDs %v", want, ids)
		}
	}
	if len(ids) < 5 {
		t.Errorf("want >= 5 distinct analyzer IDs, got %d (%v)", len(ids), ids)
	}
	if res.ExitCode() != 1 {
		t.Errorf("fig1 has a bounds error; want exit code 1, got %d", res.ExitCode())
	}
}

// TestSelfCheckAllExamples asserts the framework self-check passes (one
// info finding per loop, no error-severity selfcheck findings) on every
// example program.
func TestSelfCheckAllExamples(t *testing.T) {
	for _, path := range examplePaths(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".loop")
		t.Run(name, func(t *testing.T) {
			res := vetExample(t, path, nil)
			if res.Analysis == nil {
				t.Fatalf("front end rejected %s: %v", path, res.Findings)
			}
			passes := 0
			for _, f := range res.Findings {
				if f.Analyzer != "selfcheck" {
					continue
				}
				if f.Severity == diag.Error {
					t.Errorf("self-check violation: %s", f)
				} else {
					passes++
				}
			}
			if want := len(res.Analysis.Loops); passes != want {
				t.Errorf("want %d self-check passes (one per loop), got %d", want, passes)
			}
		})
	}
}

// TestVetDeterminism renders the Figure 1 JSON output 50 times under
// parallel analysis and asserts every run is byte-for-byte identical,
// with and without the memo cache.
func TestVetDeterminism(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "fig1.loop")
	render := func(opts *lint.Options) []byte {
		res := vetExample(t, path, opts)
		var buf bytes.Buffer
		if err := diag.WriteJSON(&buf, res.File, res.Findings); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(&lint.Options{Parallelism: 1, DisableCache: true})
	for run := 0; run < 50; run++ {
		opts := &lint.Options{Parallelism: 8, DisableCache: run%2 == 0}
		if got := render(opts); !bytes.Equal(got, want) {
			t.Fatalf("run %d (%+v) diverged\n-- got --\n%s-- want --\n%s", run, opts, got, want)
		}
	}
}

// TestVetFrontEndFindings verifies parse and semantic failures surface as
// positioned error findings with the dedicated analyzer IDs and exit code
// 2 — the "could not analyze" status of the documented contract, distinct
// from exit 1 (analysis ran, findings exist).
func TestVetFrontEndFindings(t *testing.T) {
	cases := []struct {
		name, src, analyzer string
	}{
		{"parse", "do i = 1,\nenddo", "parse"},
		{"parse_multiple", "A[ := 1\nB] := 2", "parse"},
		{"sema", "do i = 1, 10\n  i := 3\nenddo", "sema"},
		{"sema_dim_mismatch", "dim A[10]\nA[1, 2] := 0", "sema"},
		{"sema_dim_size", "dim A[0]", "sema"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := lint.Vet("<test>", tc.src, nil)
			if res.ExitCode() != 2 {
				t.Fatalf("want exit code 2, got %d (findings: %v)", res.ExitCode(), res.Findings)
			}
			if !res.FrontEndFailed {
				t.Error("FrontEndFailed not set")
			}
			if len(res.Findings) == 0 {
				t.Fatal("no findings")
			}
			for _, f := range res.Findings {
				if f.Analyzer != tc.analyzer {
					t.Errorf("finding %s: want analyzer %q", f, tc.analyzer)
				}
				if f.Severity != diag.Error {
					t.Errorf("finding %s: want error severity", f)
				}
				if !f.Pos.IsValid() {
					t.Errorf("finding %s: invalid position", f)
				}
			}
		})
	}
}

// TestAnalyzerRegistry pins the registry's IDs and ordering (documentation
// tables and the -analyzers selector depend on both).
func TestAnalyzerRegistry(t *testing.T) {
	var ids []string
	for _, a := range lint.Analyzers() {
		ids = append(ids, a.ID)
		if a.Doc == "" || a.Problem == "" || a.Run == nil {
			t.Errorf("analyzer %s is missing Doc, Problem, or Run", a.ID)
		}
	}
	want := []string{"bounds", "deadstore", "race", "reuse", "selfcheck", "uninit"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Errorf("registry IDs = %v, want %v", ids, want)
	}
}

// TestAnalyzerSelection verifies Options.Analyzers restricts the run.
func TestAnalyzerSelection(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "fig1.loop")
	res := vetExample(t, path, &lint.Options{Analyzers: []string{"bounds"}})
	if len(res.Findings) == 0 {
		t.Fatal("bounds-only run produced no findings")
	}
	for _, f := range res.Findings {
		if f.Analyzer != "bounds" {
			t.Errorf("unexpected analyzer %s in bounds-only run", f.Analyzer)
		}
	}
}
