// Nest certification: the race analyzer's treatment of loops containing
// summarized inner loops. The flow graph of an outer loop collapses each
// nested loop into a summary node whose references carry linearized affine
// forms a·I + B over the OUTER induction variable, with the inner
// induction variables left as free symbols of B (ir.Ref.InnerAffine). Two
// executions of the loop body at outer iterations i1 and i2 = i1 + δ
// touch a common element of the same array exactly when
//
//	a·δ = B1(v) − B2(v′)
//
// for some feasible inner values v, v′ — the primes mark that the two
// executions choose their inner iterations independently, while
// loop-invariant symbols (enclosing induction variables, scalars, symbolic
// dimensions) are shared and cancel. The certifier bounds the right-hand
// side with the loop's range facts (inner bounds, guards, dims), refutes
// candidate distances with a gcd congruence, and either proves the pair
// collision-free, constructs a concrete replayable witness, or emits a
// why-certificate blocker naming the comparison it could not resolve.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/poly"
	"repro/internal/rangefacts"
	"repro/internal/sema"
)

const (
	// nestDistanceScan bounds the candidate-distance enumeration when the
	// outer trip count is symbolic but the footprint distance is bounded.
	nestDistanceScan = 4096
	// nestWitnessAssignments caps the inner-value tuples tried per
	// candidate distance when constructing a witness.
	nestWitnessAssignments = 4096
)

// nestPrime renames an inner induction variable for the second execution
// of the pair comparison. The apostrophe cannot occur in a source
// identifier, so primed names never collide with program symbols.
const nestPrime = "'"

func primedName(v string) string { return v + nestPrime }

// nestBase strips the prime, mapping a renamed symbol back to its source
// symbol (identity for unprimed symbols).
func nestBase(s string) string { return strings.TrimSuffix(s, nestPrime) }

// nestRefCtx is the AST context of one reference inside the analyzed
// loop's body: whether any If guards it, and the chain of inner loops
// enclosing it (outermost first).
type nestRefCtx struct {
	conditional bool
	chain       []string
}

// nestInfo is the AST-side picture of the loop nest, built by walking the
// graph's own loop AST (g.Loop — the memo cache may hand a loop the graph
// of a structurally identical twin, so ref Exprs must be resolved against
// the AST they actually point into).
type nestInfo struct {
	refs  map[*ast.ArrayRef]nestRefCtx
	inner map[string]bool
	// constHi maps inner induction variables of constant-bound loops
	// (normalized lo = 1, no step) to their trip counts; witnesses draw
	// concrete inner iterations only from these.
	constHi  map[string]int64
	blockers []Blocker
}

// collectNestInfo walks the loop body mirroring the ir builder's reference
// collection (subscripts of a subscripted reference are not references),
// recording per-reference context and flagging the one reference site the
// summarization skips entirely: array reads inside an inner loop's bound
// expressions.
func collectNestInfo(loop *ast.DoLoop) *nestInfo {
	ni := &nestInfo{
		refs:    map[*ast.ArrayRef]nestRefCtx{},
		inner:   map[string]bool{},
		constHi: map[string]int64{},
	}
	record := func(e ast.Expr, cond bool, chain []string) {
		ast.InspectExpr(e, func(n ast.Node) bool {
			if ar, ok := n.(*ast.ArrayRef); ok {
				ni.refs[ar] = nestRefCtx{conditional: cond, chain: chain}
				return false
			}
			return true
		})
	}
	boundRefs := func(e ast.Expr, iv string) {
		ast.InspectExpr(e, func(n ast.Node) bool {
			if ar, ok := n.(*ast.ArrayRef); ok {
				ni.blockers = append(ni.blockers, Blocker{
					Pos:  ar.Pos(),
					Slug: "inner-bound-ref",
					Reason: fmt.Sprintf("the bound of the inner loop over %s reads %s, which the summarized body does not model",
						iv, ast.ExprString(ar)),
					Comparison: fmt.Sprintf("footprint of %s across iterations", ast.ExprString(ar)),
					Missing:    "an inner loop bound free of array reads",
				})
				return false
			}
			return true
		})
	}
	var walk func(stmts []ast.Stmt, cond bool, chain []string)
	walk = func(stmts []ast.Stmt, cond bool, chain []string) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.Assign:
				record(st.RHS, cond, chain)
				if lhs, ok := st.LHS.(*ast.ArrayRef); ok {
					ni.refs[lhs] = nestRefCtx{conditional: cond, chain: chain}
				}
			case *ast.If:
				record(st.Cond, cond, chain)
				walk(st.Then, true, chain)
				walk(st.Else, true, chain)
			case *ast.DoLoop:
				ni.inner[st.Var] = true
				boundRefs(st.Lo, st.Var)
				boundRefs(st.Hi, st.Var)
				lo, okLo := sema.ConstValue(st.Lo)
				hi, okHi := sema.ConstValue(st.Hi)
				if okLo && okHi && lo == 1 && st.Step == nil {
					ni.constHi[st.Var] = hi
				}
				walk(st.Body, cond, append(append([]string(nil), chain...), st.Var))
			}
		}
	}
	walk(loop.Body, false, nil)
	return ni
}

// certifyNest resolves every conflicting reference pair that involves a
// summarized inner loop. Pairs of plain body references are resolvePair's
// job; this covers (inner, inner) and (outer, inner) pairs, which the
// analyzer previously wrote off with a blanket "nested loop is summarized"
// blocker.
func certifyNest(c *Context, g *ir.Graph) (evidence []PairEvidence, racy []*Witness, blockers []Blocker) {
	ni := collectNestInfo(g.Loop)
	blockers = append(blockers, ni.blockers...)
	facts := c.Facts()

	var refs []*ir.Ref
	for _, r := range g.Refs {
		switch {
		case r.FromInner && r.InnerAffine:
			refs = append(refs, r)
		case r.FromInner:
			blockers = append(blockers, Blocker{
				Pos:  r.Expr.Pos(),
				Slug: "nonaffine-nest-subscript",
				Reason: fmt.Sprintf("subscript of %s inside a nested loop is not affine in %s and its inner induction variables",
					refText(r), g.IV),
				Comparison: fmt.Sprintf("footprint of %s across iterations of %s", refText(r), g.IV),
				Missing:    "an affine subscript",
			})
		case r.Affine:
			refs = append(refs, r)
		}
	}
	for i, r1 := range refs {
		for _, r2 := range refs[i:] {
			if r1.Array != r2.Array || (r1.Kind != ir.Def && r2.Kind != ir.Def) {
				continue
			}
			if !r1.FromInner && !r2.FromInner {
				continue // plain pair: the exact pairwise solver owns it
			}
			o := resolveNestPair(r1, r2, g, ni, facts)
			switch o.kind {
			case pairNone, pairIndependent:
				evidence = append(evidence, PairEvidence{
					FromText: refText(r1), ToText: refText(r2), Reason: o.reason,
				})
			case pairConflict:
				racy = append(racy, o.witness)
			case pairUnknown:
				b := o.blocker
				if !b.Pos.IsValid() {
					b.Pos = r1.Expr.Pos()
				}
				blockers = append(blockers, b)
			}
		}
	}
	return evidence, racy, blockers
}

// resolveNestPair decides one pair with at least one summarized-loop
// reference: collision-free, a concrete witness, or a certified unknown.
func resolveNestPair(r1, r2 *ir.Ref, g *ir.Graph, ni *nestInfo, facts *rangefacts.Facts) pairOutcome {
	a1, okA1 := r1.Form.A.IsConst()
	a2, okA2 := r2.Form.A.IsConst()
	if !okA1 || !okA2 {
		sym := r1.Form.A
		if okA1 {
			sym = r2.Form.A
		}
		return pairOutcome{kind: pairUnknown, blocker: Blocker{
			Slug: "nest-symbolic-stride",
			Reason: fmt.Sprintf("stride of %s or %s over %s is symbolic (%s)",
				refText(r1), refText(r2), g.IV, sym),
			Comparison: fmt.Sprintf("%s·δ = %s − %s", sym, r1.Form.B, r2.Form.B),
			Missing:    fmt.Sprintf("a constant value for %s", sym),
		}}
	}
	if a1 != a2 {
		return pairOutcome{kind: pairUnknown, blocker: Blocker{
			Slug: "nest-stride-mismatch",
			Reason: fmt.Sprintf("%s and %s advance with different strides (%d and %d) through a summarized loop",
				refText(r1), refText(r2), a1, a2),
			Comparison: fmt.Sprintf("%d·i1 + %s = %d·i2 + %s", a1, r1.Form.B, a2, r2.Form.B),
			Missing:    "equal strides (mixed-stride nest pairs are not solved)",
		}}
	}
	a := a1

	// Rename r2's inner induction variables: the two sides choose inner
	// iterations independently, while shared invariants cancel in D.
	b2 := r2.Form.B
	for _, s := range r2.Form.B.Symbols() {
		if !ni.inner[s] {
			continue
		}
		var ok bool
		b2, ok = b2.Substitute(s, poly.Sym(primedName(s)))
		if !ok {
			return pairOutcome{kind: pairUnknown, blocker: Blocker{
				Pos:  r2.Expr.Pos(),
				Slug: "nest-nonlinear-subscript",
				Reason: fmt.Sprintf("subscript of %s is nonlinear in the inner induction variable %s",
					refText(r2), s),
				Comparison: fmt.Sprintf("footprint of %s across iterations of %s", refText(r2), g.IV),
				Missing:    fmt.Sprintf("a subscript linear in %s", s),
			}}
		}
	}
	d := r1.Form.B.Sub(b2)
	rng := facts.BoundsUnder(d, nestBase)
	g0, c0 := congruenceOf(d)

	// The largest iteration distance two real iterations can be apart.
	maxAbs := int64(nestDistanceScan)
	if g.HasUB {
		maxAbs = g.UBConst - 1
	}
	if maxAbs <= 0 {
		return pairOutcome{kind: pairNone, reason: "single-iteration loop"}
	}

	if a == 0 {
		return resolveNestZeroStride(r1, r2, g, ni, d, rng, g0, c0)
	}

	if !rng.Bounded() {
		// Footprint distance unbounded under the known facts: only the gcd
		// congruence can still refute every candidate distance.
		if g0 > 0 && !congruenceSolvable(a, c0, g0, maxAbs) {
			return pairOutcome{kind: pairNone, reason: fmt.Sprintf(
				"no carried collision: %d·δ ≡ %d (mod %d) has no solution within %d iteration(s)",
				a, c0, g0, maxAbs)}
		}
		if g0 == 0 {
			// D is constant: the collision distance is exactly c0/a.
			return resolveNestConstDistance(r1, r2, g, ni, a, c0, maxAbs)
		}
		return pairOutcome{kind: pairUnknown, blocker: Blocker{
			Slug: "nest-symbolic-range",
			Reason: fmt.Sprintf("footprint distance of %s and %s is %s, unbounded under the known facts",
				refText(r1), refText(r2), d),
			Comparison: fmt.Sprintf("%d·δ = %s with δ ≠ 0", a, d),
			Missing:    fmt.Sprintf("bounds for %s", strings.Join(unboundedSymbols(d, facts), ", ")),
		}}
	}

	// Bounded distance range: enumerate every candidate δ and keep the ones
	// the interval and the congruence both admit.
	var candidates []int64
	for dist := int64(1); dist <= maxAbs && dist <= nestDistanceScan; dist++ {
		if m := abs64(a) * dist; m > rng.Hi && -m < rng.Lo {
			break // |a·δ| only grows; nothing further can land in range
		}
		for _, sd := range []int64{dist, -dist} {
			x := a * sd
			if x < rng.Lo || x > rng.Hi {
				continue
			}
			if g0 > 0 && !congruent(x, c0, g0) {
				continue
			}
			candidates = append(candidates, sd)
		}
	}
	if len(candidates) == 0 {
		reason := fmt.Sprintf("no carried collision: %d·δ stays outside the footprint distance range %s for 1 ≤ |δ| ≤ %d",
			a, rng, maxAbs)
		if g0 > 1 {
			reason = fmt.Sprintf("no carried collision: %d·δ ∈ %s with %d·δ ≡ %d (mod %d) has no solution for 1 ≤ |δ| ≤ %d",
				a, rng, a, c0, g0, maxAbs)
		}
		return pairOutcome{kind: pairNone, reason: reason}
	}
	for _, sd := range candidates {
		if w, ok := buildNestWitness(r1, r2, sd, a, d, g, ni); ok {
			return pairOutcome{kind: pairConflict, witness: w}
		}
	}
	return pairOutcome{kind: pairUnknown, blocker: Blocker{
		Slug: "nest-witness",
		Reason: fmt.Sprintf("%s and %s may collide at iteration distance %d, but no replayable witness is constructible (guarded references or symbolic inner bounds)",
			refText(r1), refText(r2), abs64(candidates[0])),
		Comparison: fmt.Sprintf("%d·δ = %s at δ = %d", a, d, candidates[0]),
		Missing:    "constant inner loop bounds and unguarded references for a concrete witness",
	}}
}

// resolveNestZeroStride handles a = 0: the outer iteration number drops
// out, so the pair collides across iterations exactly when D = B1 − B2′
// can reach zero.
func resolveNestZeroStride(r1, r2 *ir.Ref, g *ir.Graph, ni *nestInfo, d poly.Poly, rng rangefacts.Interval, g0, c0 int64) pairOutcome {
	if (rng.HasLo && rng.Lo >= 1) || (rng.HasHi && rng.Hi <= -1) {
		return pairOutcome{kind: pairNone, reason: fmt.Sprintf(
			"footprints never meet: %s ∈ %s excludes 0", d, rng)}
	}
	if g0 > 0 && !congruent(0, c0, g0) {
		return pairOutcome{kind: pairNone, reason: fmt.Sprintf(
			"footprints never meet: %s ≡ %d (mod %d) excludes 0", d, mod(c0, g0), g0)}
	}
	if d.IsZero() {
		// Identical footprint every outer iteration; any element collides at
		// distance 1.
		if w, ok := buildNestWitness(r1, r2, 1, 0, d, g, ni); ok {
			return pairOutcome{kind: pairConflict, witness: w}
		}
		return pairOutcome{kind: pairUnknown, blocker: Blocker{
			Slug: "nest-witness",
			Reason: fmt.Sprintf("%s and %s touch the same elements in every iteration of %s, but no replayable witness is constructible (guarded references or symbolic inner bounds)",
				refText(r1), refText(r2), g.IV),
			Comparison: fmt.Sprintf("%s − %s = 0", refText(r1), refText(r2)),
			Missing:    "constant inner loop bounds and unguarded references for a concrete witness",
		}}
	}
	if w, ok := solveNestZero(r1, r2, d, g, ni); ok {
		return pairOutcome{kind: pairConflict, witness: w}
	}
	return pairOutcome{kind: pairUnknown, blocker: Blocker{
		Slug: "nest-symbolic-range",
		Reason: fmt.Sprintf("whether the footprints of %s and %s overlap depends on %s",
			refText(r1), refText(r2), d),
		Comparison: fmt.Sprintf("%s = 0 for independent inner iterations", d),
		Missing:    fmt.Sprintf("a bound excluding 0 for %s", d),
	}}
}

// resolveNestConstDistance handles a constant D with a nonzero stride: the
// unique candidate distance is c0/a.
func resolveNestConstDistance(r1, r2 *ir.Ref, g *ir.Graph, ni *nestInfo, a, c0, maxAbs int64) pairOutcome {
	if c0%a != 0 {
		return pairOutcome{kind: pairNone, reason: fmt.Sprintf(
			"offset %d is not divisible by stride %d", c0, a)}
	}
	delta := c0 / a
	if delta == 0 {
		return pairOutcome{kind: pairIndependent, reason: "collide only within one iteration (δ = 0)"}
	}
	if abs64(delta) > maxAbs {
		return pairOutcome{kind: pairNone, reason: fmt.Sprintf(
			"collision distance %d exceeds the trip count", abs64(delta))}
	}
	if w, ok := buildNestWitness(r1, r2, delta, a, poly.Const(c0), g, ni); ok {
		return pairOutcome{kind: pairConflict, witness: w}
	}
	return pairOutcome{kind: pairUnknown, blocker: Blocker{
		Slug: "nest-witness",
		Reason: fmt.Sprintf("%s and %s may collide at iteration distance %d, but no replayable witness is constructible (guarded references or symbolic inner bounds)",
			refText(r1), refText(r2), abs64(delta)),
		Comparison: fmt.Sprintf("%d·δ = %d at δ = %d", a, c0, delta),
		Missing:    "constant inner loop bounds and unguarded references for a concrete witness",
	}}
}

// solveNestZero searches for inner values making D = 0 with a = 0 — the
// footprints of any two outer iterations then share that element, so the
// witness uses distance 1.
func solveNestZero(r1, r2 *ir.Ref, d poly.Poly, g *ir.Graph, ni *nestInfo) (*Witness, bool) {
	return solveNestCollision(r1, r2, 1, 0, d, g, ni)
}

// buildNestWitness constructs a replayable witness for the signed
// iteration distance sd (sd = i2 − i1; positive means r1 executes first).
func buildNestWitness(r1, r2 *ir.Ref, sd, a int64, d poly.Poly, g *ir.Graph, ni *nestInfo) (*Witness, bool) {
	return solveNestCollision(r1, r2, sd, a, d, g, ni)
}

// solveNestCollision enumerates feasible inner-iteration tuples solving
// a·sd = D and, on success, packages the collision as a witness with
// concrete outer iterations 1 and 1+|sd|. Requirements for replayability:
// both references execute unconditionally, every enclosing inner loop has
// a constant normalized bound, and D mentions only inner induction
// variables (primed or not).
func solveNestCollision(r1, r2 *ir.Ref, sd, a int64, d poly.Poly, g *ir.Graph, ni *nestInfo) (*Witness, bool) {
	ctx1, ok1 := ni.refs[r1.Expr]
	ctx2, ok2 := ni.refs[r2.Expr]
	if !ok1 || !ok2 || ctx1.conditional || ctx2.conditional {
		return nil, false
	}
	for _, chain := range [][]string{ctx1.chain, ctx2.chain} {
		for _, v := range chain {
			if hi, ok := ni.constHi[v]; !ok || hi < 1 {
				return nil, false
			}
		}
	}
	vars := d.Symbols()
	his := make([]int64, len(vars))
	for i, v := range vars {
		hi, ok := ni.constHi[nestBase(v)]
		if !ok {
			return nil, false // non-inner symbol or symbolic inner bound
		}
		his[i] = hi
	}
	target := a * sd
	env := map[string]int64{}
	idx := make([]int64, len(vars))
	tried := int64(0)
	for {
		for i, v := range vars {
			env[v] = idx[i] + 1
		}
		if d.Eval(env) == target {
			return packageNestWitness(r1, r2, sd, env, g, ni), true
		}
		tried++
		if tried >= nestWitnessAssignments {
			return nil, false
		}
		// Odometer increment, deterministic enumeration order.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < his[i] {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			return nil, false // odometer wrapped (or constant D missed the target)
		}
	}
}

// packageNestWitness builds the Witness for a solved collision: env binds
// r1's inner variables by source name and r2's by primed name.
func packageNestWitness(r1, r2 *ir.Ref, sd int64, env map[string]int64, g *ir.Graph, ni *nestInfo) *Witness {
	early, late := r1, r2
	dist := sd
	earlyEnv, lateEnv := splitNestEnv(env)
	if sd < 0 {
		early, late, dist = r2, r1, -sd
		earlyEnv, lateEnv = lateEnv, earlyEnv
	}
	w := &Witness{
		IV:        g.IV,
		IterEarly: 1,
		IterLate:  1 + dist,
		Distance:  dist,
		Kind:      dependenceKind(early, late),
		Array:     early.Array,
		FromText:  refText(early),
		ToText:    refText(late),
		FromStore: early.Kind == ir.Def,
		ToStore:   late.Kind == ir.Def,
		FromPos:   early.Expr.Pos(),
		ToPos:     late.Expr.Pos(),
	}
	earlyEnv[g.IV] = w.IterEarly
	if cell, ok := nestCell(early.Expr, earlyEnv); ok {
		w.Cell, w.HasCell = cell, true
	}
	return w
}

// splitNestEnv separates a solved assignment into the unprimed (r1) and
// primed (r2, renamed back) halves.
func splitNestEnv(env map[string]int64) (unprimed, primed map[string]int64) {
	unprimed = map[string]int64{}
	primed = map[string]int64{}
	for k, v := range env {
		if b := nestBase(k); b != k {
			primed[b] = v
		} else {
			unprimed[k] = v
		}
	}
	return unprimed, primed
}

// nestCell evaluates a reference's subscript tuple under env, succeeding
// only when every subscript mentions only bound symbols.
func nestCell(ref *ast.ArrayRef, env map[string]int64) ([]int64, bool) {
	out := make([]int64, len(ref.Subs))
	for k, sub := range ref.Subs {
		p, err := sema.ExprToPoly(sub)
		if err != nil {
			return nil, false
		}
		for _, s := range p.Symbols() {
			if _, ok := env[s]; !ok {
				return nil, false
			}
		}
		out[k] = p.Eval(env)
	}
	return out, true
}

// congruenceOf extracts the gcd congruence of a distance polynomial: over
// integer symbol values, D ≡ c0 (mod g0) where c0 is the constant term
// and g0 the gcd of the non-constant monomial coefficients (g0 = 0 for a
// constant D).
func congruenceOf(d poly.Poly) (g0, c0 int64) {
	c0 = d.ConstPart()
	for _, m := range d.Monomials() {
		if len(m.Symbols) == 0 {
			continue
		}
		g0 = gcd(g0, abs64(m.Coeff))
	}
	return g0, c0
}

// congruent reports x ≡ c0 (mod g0).
func congruent(x, c0, g0 int64) bool { return mod(x-c0, g0) == 0 }

// congruenceSolvable reports whether some δ with 1 ≤ |δ| ≤ maxAbs has
// a·δ ≡ c0 (mod g0). a·δ mod g0 cycles with period dividing g0, so
// scanning min(maxAbs, g0) distances is exhaustive.
func congruenceSolvable(a, c0, g0, maxAbs int64) bool {
	limit := g0
	if maxAbs < limit {
		limit = maxAbs
	}
	for d := int64(1); d <= limit; d++ {
		if congruent(a*d, c0, g0) || congruent(-a*d, c0, g0) {
			return true
		}
	}
	return false
}

// mod is the nonnegative remainder.
func mod(x, m int64) int64 {
	if m == 0 {
		return x
	}
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}

// unboundedSymbols names the symbols of d lacking a bounded interval, for
// the "missing fact" line of a why-certificate.
func unboundedSymbols(d poly.Poly, facts *rangefacts.Facts) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range d.Symbols() {
		b := nestBase(s)
		if seen[b] {
			continue
		}
		seen[b] = true
		if !facts.SymbolRange(b).Bounded() {
			out = append(out, b)
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		return []string{"the footprint distance"}
	}
	return out
}
