package lint

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/depend"
	"repro/internal/diag"
)

// maxBlockingDist bounds the dependence-distance search; a loop whose only
// carried dependences exceed it is still reported via the closest pair
// found within the bound.
const maxBlockingDist = 8

// noParallelAnalyzer reports loops that cannot be run in parallel as
// written: any loop-carried dependence (distance ≥ 1) in the dependence
// graph derived from the δ-reaching-references solution (paper §4.3)
// orders iterations. One finding per loop names a deterministic minimal
// blocking pair.
var noParallelAnalyzer = &Analyzer{
	ID:      "noparallel",
	Doc:     "loop-carried dependence prevents parallel execution",
	Problem: "δ-reaching references (§4.3)",
	Default: diag.Info,
	Run:     runNoParallel,
}

func runNoParallel(c *Context) []diag.Finding {
	res := c.result("delta-reaching-refs")
	if res == nil {
		return nil
	}
	dg := depend.Build(c.Loop.Graph, res, maxBlockingDist)
	var carried []depend.Edge
	for _, e := range dg.Edges {
		if e.Distance >= 1 {
			carried = append(carried, e)
		}
	}
	if len(carried) == 0 {
		return nil
	}
	best := carried[0]
	for _, e := range carried[1:] {
		if blockingLess(e, best) {
			best = e
		}
	}
	f := diag.Finding{
		Analyzer: "noparallel",
		Pos:      c.Loop.Loop.Pos(),
		Severity: diag.Info,
		Message: fmt.Sprintf("loop over %s is not parallelizable: %s dependence from %s to %s carried over %s (%d carried dependence(s) within distance %d)",
			c.Loop.Loop.Var, best.Kind,
			ast.ExprString(best.FromRef.Expr), ast.ExprString(best.ToRef.Expr),
			iterations(best.Distance), len(carried), maxBlockingDist),
		Detail: map[string]string{
			"iv":       c.Loop.Loop.Var,
			"kind":     best.Kind,
			"distance": fmt.Sprintf("%d", best.Distance),
			"carried":  fmt.Sprintf("%d", len(carried)),
		},
	}
	f.Related = append(f.Related,
		diag.Related{Pos: best.FromRef.Expr.Pos(),
			Message: fmt.Sprintf("dependence source %s", ast.ExprString(best.FromRef.Expr))},
		diag.Related{Pos: best.ToRef.Expr.Pos(),
			Message: fmt.Sprintf("dependence sink %s (%s later)", ast.ExprString(best.ToRef.Expr), iterations(best.Distance))},
	)
	return []diag.Finding{f}
}

// blockingLess orders carried edges deterministically: smallest distance
// first, then source position, sink position, and kind.
func blockingLess(a, b depend.Edge) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	ap, bp := a.FromRef.Expr.Pos(), b.FromRef.Expr.Pos()
	if ap != bp {
		return ap.Line < bp.Line || (ap.Line == bp.Line && ap.Col < bp.Col)
	}
	ap, bp = a.ToRef.Expr.Pos(), b.ToRef.Expr.Pos()
	if ap != bp {
		return ap.Line < bp.Line || (ap.Line == bp.Line && ap.Col < bp.Col)
	}
	return a.Kind < b.Kind
}
