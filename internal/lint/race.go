package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/depend"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/poly"
	"repro/internal/rangefacts"
	"repro/internal/sema"
	"repro/internal/token"
)

// raceAnalyzer is the certifying parallelism analyzer: every loop gets one
// of three verdicts, each carrying checkable evidence.
//
//   - provably parallel: no pair of references can touch the same array
//     element in two different iterations (per-pair δ evidence attached),
//     confirmed by running the loop's iterations in a shuffled order on the
//     interpreter and comparing final memories.
//   - provably racy: a concrete witness — two iteration numbers, the
//     conflicting references, and the colliding element — derived from the
//     cross-iteration dependence distance and validated by replaying the
//     witness iterations on the interpreter.
//   - unknown: the blocking construct is named (non-affine subscript,
//     symbolic distance, scalar assignment, summarized inner loop, or a
//     potential conflict guarded by a branch).
//
// The static side consumes the δ-reaching-references solution through
// internal/depend plus an exact pairwise subscript solver; the dynamic
// side lives in replay.go. A disagreement between the two (a witness that
// does not replay, a "parallel" loop whose permuted execution diverges, or
// a carried dependence the certifier missed) is itself reported as an
// error finding — the analyzer checks its own claims.
var raceAnalyzer = &Analyzer{
	ID:      "race",
	Doc:     "certifying loop parallelism: provably parallel, provably racy (with replayed witness), or unknown",
	Problem: "δ-reaching references (§4.3) + exact subscript collision solving",
	Default: diag.Warning,
	Run:     runRace,
}

// VerdictClass is the three-way parallelism classification.
type VerdictClass int

// The verdict classes.
const (
	VerdictUnknown VerdictClass = iota
	VerdictParallel
	VerdictRacy
)

// String names the verdict class.
func (v VerdictClass) String() string {
	switch v {
	case VerdictParallel:
		return "parallel"
	case VerdictRacy:
		return "racy"
	}
	return "unknown"
}

// Witness is the concrete evidence behind a provably-racy verdict: in the
// normalized iteration space, the reference FromText executed at iteration
// IterEarly and the reference ToText executed at iteration IterLate touch
// the same element of Array, and at least one of them is a store.
type Witness struct {
	IV        string
	IterEarly int64
	IterLate  int64
	// Distance is IterLate − IterEarly (≥ 1).
	Distance int64
	// Kind classifies the dependence: flow, anti, or output.
	Kind  string
	Array string
	// FromText / ToText are the rendered source references (early one
	// first); FromStore / ToStore their access kinds.
	FromText, ToText   string
	FromStore, ToStore bool
	// FromPos / ToPos are the reference positions for diagnostics.
	FromPos, ToPos token.Pos
	// Cell is the colliding subscript tuple when it is compile-time
	// computable (HasCell); symbolic programs leave it to the replay.
	Cell    []int64
	HasCell bool
}

// CellString renders the colliding element, e.g. "A[3]" or "A[2, 7]".
func (w *Witness) CellString() string {
	if !w.HasCell {
		return w.Array + "[?]"
	}
	parts := make([]string, len(w.Cell))
	for i, c := range w.Cell {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return w.Array + "[" + strings.Join(parts, ", ") + "]"
}

// Blocker names one construct preventing certification. Beyond the prose
// Reason, a blocker is a structured why-certificate: the taxonomy slug,
// the exact comparison the certifier could not resolve, the range facts
// that were available when it tried, and the single missing fact that
// would settle it.
type Blocker struct {
	Pos    token.Pos
	Reason string
	// Slug is the stable taxonomy identifier (one of BlockerSlugs).
	Slug string
	// Comparison renders the failed comparison, e.g. "n·δ = j − j' + 6".
	Comparison string
	// Facts lists the range facts in scope when the comparison failed.
	Facts string
	// Missing names the single fact that would resolve the comparison.
	Missing string
}

// BlockerSlugs is the closed taxonomy of certification blockers, exported
// so output consumers (SARIF rule metadata, the corpus harness) can
// bucket unknown verdicts without parsing prose.
func BlockerSlugs() []string {
	return []string{
		"fuel-exhausted",
		"guarded-conflict",
		"inner-bound-ref",
		"nest-nonlinear-subscript",
		"nest-stride-mismatch",
		"nest-symbolic-range",
		"nest-symbolic-stride",
		"nest-witness",
		"nonaffine-nest-subscript",
		"nonaffine-subscript",
		"scalar-carried",
		"symbolic-bound-scan",
		"symbolic-coeffs",
		"symbolic-distance",
		"symbolic-stride",
	}
}

// PairEvidence records why one conflicting reference pair cannot carry a
// dependence — the per-reference δ evidence attached to parallel verdicts.
type PairEvidence struct {
	FromText, ToText string
	Reason           string
}

// Verdict is the certified classification of one loop.
type Verdict struct {
	Class VerdictClass
	// IV is the loop's induction variable.
	IV string
	// Witness backs a racy verdict.
	Witness *Witness
	// Blockers back an unknown verdict (sorted by position then reason).
	Blockers []Blocker
	// Evidence backs a parallel verdict: one entry per conflicting
	// reference pair, stating why no carried collision exists.
	Evidence []PairEvidence
	// CarriedDeps counts the loop-carried edges of the dependence graph
	// (internal/depend) within maxBlockingDist, for cross-checking.
	CarriedDeps int
}

// pairOutcome is the result of resolving one reference pair.
type pairOutcome struct {
	kind    pairKind
	witness *Witness // kind == pairConflict
	reason  string   // evidence (pairNone/pairIndependent)
	blocker Blocker  // why-certificate (pairUnknown)
}

type pairKind int

const (
	pairNone        pairKind = iota // provably never collide across iterations
	pairIndependent                 // collide only within one iteration (δ = 0)
	pairConflict                    // collide at a concrete iteration pair
	pairUnknown                     // not decidable statically
)

// differentStrideScan bounds the collision-distance search when the loop
// bound is symbolic and the strides differ.
const differentStrideScan = 4096

// maxBlockingDist bounds the dependence-distance search in the carried
// dependence cross-check (small distances are the ones unrolling and the
// paper's framework reason about).
const maxBlockingDist = 8

// runRace certifies the loop and renders the verdict as findings,
// bridging to the dynamic checks in replay.go.
func runRace(c *Context) []diag.Finding {
	v := CertifyLoop(c)
	loop := c.Loop.Loop
	pos := loop.Pos()
	var out []diag.Finding

	switch v.Class {
	case VerdictRacy:
		w := v.Witness
		f := diag.Finding{
			Analyzer: "race",
			Pos:      pos,
			Severity: diag.Warning,
			Message: fmt.Sprintf("loop over %s is provably racy: %s (iteration %d) and %s (iteration %d) touch %s — %s dependence at distance %d",
				v.IV, accessText(w.FromText, w.FromStore), w.IterEarly,
				accessText(w.ToText, w.ToStore), w.IterLate, w.CellString(), w.Kind, w.Distance),
			Related: []diag.Related{
				{Pos: w.FromPos, Message: fmt.Sprintf("%s at iteration %d", accessText(w.FromText, w.FromStore), w.IterEarly)},
				{Pos: w.ToPos, Message: fmt.Sprintf("%s at iteration %d", accessText(w.ToText, w.ToStore), w.IterLate)},
			},
			Detail: map[string]string{
				"verdict":   "racy",
				"iv":        v.IV,
				"iterEarly": fmt.Sprintf("%d", w.IterEarly),
				"iterLate":  fmt.Sprintf("%d", w.IterLate),
				"distance":  fmt.Sprintf("%d", w.Distance),
				"kind":      w.Kind,
				"cell":      w.CellString(),
				"carried":   fmt.Sprintf("%d", v.CarriedDeps),
			},
		}
		if c.Program != nil {
			if err := ReplayWitness(c.Program, loop, w); err != nil {
				out = append(out, diag.Finding{
					Analyzer: "race",
					Pos:      pos,
					Severity: diag.Error,
					Message: fmt.Sprintf("certification bridge failure: racy witness for the loop over %s did not replay on the interpreter: %v",
						v.IV, err),
					Detail: map[string]string{"verdict": "racy", "replay": "failed"},
				})
				f.Detail["replay"] = "failed"
			} else {
				f.Detail["replay"] = "confirmed"
			}
		}
		out = append(out, f)

	case VerdictParallel:
		f := diag.Finding{
			Analyzer: "race",
			Pos:      pos,
			Severity: diag.Info,
			Message: fmt.Sprintf("loop over %s is provably parallel: no loop-carried dependence across %d conflicting reference pair(s)",
				v.IV, len(v.Evidence)),
			Detail: map[string]string{
				"verdict": "parallel",
				"iv":      v.IV,
				"pairs":   fmt.Sprintf("%d", len(v.Evidence)),
			},
		}
		if ev := evidenceSummary(v.Evidence); ev != "" {
			f.Detail["evidence"] = ev
		}
		if v.CarriedDeps > 0 {
			// The dependence graph disagrees with the certification — one of
			// the two is wrong; surface it loudly instead of guessing.
			out = append(out, diag.Finding{
				Analyzer: "race",
				Pos:      pos,
				Severity: diag.Error,
				Message: fmt.Sprintf("certification inconsistency: loop over %s certified parallel but the dependence graph carries %d edge(s)",
					v.IV, v.CarriedDeps),
				Detail: map[string]string{"verdict": "parallel", "carried": fmt.Sprintf("%d", v.CarriedDeps)},
			})
		}
		if c.Program != nil {
			if err := PermutationCheck(c.Program, loop, permutationSeed); err != nil {
				out = append(out, diag.Finding{
					Analyzer: "race",
					Pos:      pos,
					Severity: diag.Error,
					Message: fmt.Sprintf("certification bridge failure: loop over %s certified parallel but a shuffled iteration order diverged: %v",
						v.IV, err),
					Detail: map[string]string{"verdict": "parallel", "permutation": "diverged"},
				})
				f.Detail["permutation"] = "diverged"
			} else {
				f.Detail["permutation"] = "verified"
			}
		}
		out = append(out, f)

	default: // VerdictUnknown
		b := v.Blockers[0]
		f := diag.Finding{
			Analyzer: "race",
			Pos:      pos,
			Severity: diag.Info,
			Message:  fmt.Sprintf("parallelism of the loop over %s is unknown: %s", v.IV, b.Reason),
			Detail: map[string]string{
				"verdict":  "unknown",
				"iv":       v.IV,
				"blockers": fmt.Sprintf("%d", len(v.Blockers)),
			},
		}
		// The leading blocker's why-certificate, machine-readable: the
		// failed comparison, the facts that were in scope, and the one
		// missing fact that would settle it.
		if b.Slug != "" {
			f.Detail["blocker.slug"] = b.Slug
		}
		if b.Comparison != "" {
			f.Detail["why.comparison"] = b.Comparison
		}
		if b.Facts != "" {
			f.Detail["why.facts"] = b.Facts
		}
		if b.Missing != "" {
			f.Detail["why.missing"] = b.Missing
		}
		for i, bl := range v.Blockers {
			if i >= 4 {
				break
			}
			rp := bl.Pos
			if !rp.IsValid() {
				rp = pos
			}
			f.Related = append(f.Related, diag.Related{Pos: rp, Message: bl.Reason})
		}
		out = append(out, f)
	}
	diag.Sort(out)
	return out
}

func accessText(text string, store bool) string {
	if store {
		return "store " + text
	}
	return "load " + text
}

// evidenceSummary folds per-pair evidence into one bounded detail string.
func evidenceSummary(evs []PairEvidence) string {
	var parts []string
	for i, e := range evs {
		if i >= 6 {
			parts = append(parts, fmt.Sprintf("(+%d more)", len(evs)-i))
			break
		}
		parts = append(parts, fmt.Sprintf("%s vs %s: %s", e.FromText, e.ToText, e.Reason))
	}
	return strings.Join(parts, "; ")
}

// CertifyLoop runs the static side of the certification for one analyzed
// loop. The dynamic bridge (witness replay, permutation check) is separate
// so tests can exercise both halves independently.
func CertifyLoop(c *Context) *Verdict {
	g := c.Loop.Graph()
	v := &Verdict{IV: g.IV}

	// A fuel-exhausted solve degraded its facts to the claim-nothing value:
	// nothing downstream of it (the dependence graph included) is evidence
	// any more, so the loop is unknown with the budget as the blocker. This
	// must come before the carried-edge count so a degraded δ-reaching
	// solution cannot masquerade as a parallel loop.
	if name, res := fuelExhaustedResult(c); res != nil {
		v.Class = VerdictUnknown
		v.Blockers = []Blocker{{
			Pos:  c.Loop.Loop.Pos(),
			Slug: "fuel-exhausted",
			Reason: fmt.Sprintf("the solver's fuel budget (%d) was exhausted on problem %s — data flow facts degraded to claim nothing",
				res.FuelBudget, name),
			Comparison: fmt.Sprintf("fixed point of problem %s within %d solver steps", name, res.FuelBudget),
			Facts:      "none (solve degraded before facts stabilized)",
			Missing:    "a larger fuel budget (-fuel)",
		}}
		return v
	}

	// The dependence graph's carried edges, for cross-checking the verdict
	// against the paper's §4.3 machinery. Edges whose distance cannot fit in
	// the trip count are dropped: the dependence graph has no trip-count
	// feasibility pruning, and the certifier correctly classifies a loop as
	// parallel when every candidate collision lies beyond the last iteration.
	if res := c.result("delta-reaching-refs"); res != nil {
		for _, e := range depend.Build(g, res, maxBlockingDist).Carried() {
			if g.HasUB && e.Distance+1 > g.UBConst {
				continue
			}
			v.CarriedDeps++
		}
	}

	// Structural blockers.
	blockers := structuralBlockers(c)

	// The loop's range facts and, when the bound is symbolic, its bound
	// polynomial — both feed the facts-assisted cases of resolvePair.
	facts := c.Facts()
	var ubPoly poly.Poly
	hasUBPoly := false
	if !g.HasUB && g.UB != nil {
		if p, err := sema.ExprToPoly(g.UB); err == nil {
			ubPoly, hasUBPoly = p, true
		}
	}

	// Pairwise exact resolution over the loop's own affine references.
	exit := exitNode(g)
	var racy []*Witness
	var refs []*ir.Ref
	for _, r := range g.Refs {
		if !r.FromInner && r.Affine {
			refs = append(refs, r)
		}
	}
	for i, r1 := range refs {
		for _, r2 := range refs[i:] {
			if r1.Array != r2.Array || (r1.Kind != ir.Def && r2.Kind != ir.Def) {
				continue
			}
			o := resolvePair(r1, r2, g, facts, ubPoly, hasUBPoly)
			switch o.kind {
			case pairNone, pairIndependent:
				v.Evidence = append(v.Evidence, PairEvidence{
					FromText: refText(r1), ToText: refText(r2), Reason: o.reason,
				})
			case pairConflict:
				if exit != nil && g.Dominates(r1.Node, exit) && g.Dominates(r2.Node, exit) {
					racy = append(racy, o.witness)
				} else {
					blockers = append(blockers, Blocker{
						Pos:  r1.Expr.Pos(),
						Slug: "guarded-conflict",
						Reason: fmt.Sprintf("potential race between %s and %s at distance %d is guarded by a branch — not provable either way",
							refText(r1), refText(r2), o.witness.Distance),
						Comparison: fmt.Sprintf("%s and %s collide at distance %d only when the guard holds",
							refText(r1), refText(r2), o.witness.Distance),
						Missing: "guard conditions are not modeled as constraints on the collision",
					})
				}
			case pairUnknown:
				b := o.blocker
				if !b.Pos.IsValid() {
					b.Pos = r1.Expr.Pos()
				}
				blockers = append(blockers, b)
			}
		}
	}

	// Pairs involving a summarized inner loop, which the pairwise solver
	// above skips (their subscripts range over inner induction variables).
	nestEv, nestRacy, nestBlockers := certifyNest(c, g)
	v.Evidence = append(v.Evidence, nestEv...)
	racy = append(racy, nestRacy...)
	blockers = append(blockers, nestBlockers...)

	// Every certificate records the facts that were in scope; fill the ones
	// the resolvers left empty, then collapse duplicates (distinct pairs
	// often fail on the same construct at the same position).
	factsDesc := facts.Describe()
	for i := range blockers {
		if blockers[i].Facts == "" {
			blockers[i].Facts = factsDesc
		}
	}
	blockers = dedupeBlockers(blockers)

	switch {
	case len(racy) > 0:
		sort.Slice(racy, func(i, j int) bool { return witnessLess(racy[i], racy[j]) })
		v.Class = VerdictRacy
		v.Witness = racy[0]
	case len(blockers) > 0:
		sort.Slice(blockers, func(i, j int) bool {
			a, b := blockers[i], blockers[j]
			if a.Pos != b.Pos {
				return a.Pos.Line < b.Pos.Line || (a.Pos.Line == b.Pos.Line && a.Pos.Col < b.Pos.Col)
			}
			return a.Reason < b.Reason
		})
		v.Class = VerdictUnknown
		v.Blockers = blockers
	default:
		v.Class = VerdictParallel
		sort.Slice(v.Evidence, func(i, j int) bool {
			a, b := v.Evidence[i], v.Evidence[j]
			if a.FromText != b.FromText {
				return a.FromText < b.FromText
			}
			if a.ToText != b.ToText {
				return a.ToText < b.ToText
			}
			return a.Reason < b.Reason
		})
	}
	return v
}

// structuralBlockers collects the constructs that keep a loop out of the
// provably-parallel class regardless of subscript arithmetic. Summarized
// inner loops are NOT blockers by themselves any more — certifyNest
// resolves their reference pairs exactly and reports its own certificates
// when it cannot.
func structuralBlockers(c *Context) []Blocker {
	var out []Blocker
	g := c.Loop.Graph()
	for _, r := range g.Refs {
		if !r.FromInner && !r.Affine {
			out = append(out, Blocker{
				Pos:        r.Expr.Pos(),
				Slug:       "nonaffine-subscript",
				Reason:     fmt.Sprintf("subscript of %s is not affine in %s", refText(r), g.IV),
				Comparison: fmt.Sprintf("footprint of %s across iterations of %s", refText(r), g.IV),
				Missing:    fmt.Sprintf("a subscript of the form a·%s + b", g.IV),
			})
		}
	}
	// Scalar assignments carry values between iterations through a single
	// memory cell the array framework does not model.
	ast.Inspect(c.Loop.Loop.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.Assign); ok {
			if id, ok := as.LHS.(*ast.Ident); ok {
				out = append(out, Blocker{
					Pos:        id.Pos(),
					Slug:       "scalar-carried",
					Reason:     fmt.Sprintf("scalar assignment to %s may carry a dependence between iterations", id.Name),
					Comparison: fmt.Sprintf("cross-iteration flow through the single cell %s", id.Name),
					Missing:    fmt.Sprintf("a privatization or reduction proof for %s", id.Name),
				})
			}
		}
		return true
	})
	return out
}

// dedupeBlockers collapses blockers sharing position and reason — distinct
// reference pairs frequently trip over the same construct — keeping the
// first occurrence (which carries the same certificate by construction).
func dedupeBlockers(bs []Blocker) []Blocker {
	type key struct {
		pos    token.Pos
		reason string
	}
	seen := map[key]bool{}
	out := bs[:0]
	for _, b := range bs {
		k := key{b.Pos, b.Reason}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, b)
	}
	return out
}

func refText(r *ir.Ref) string { return ast.ExprString(r.Expr) }

func exitNode(g *ir.Graph) *ir.Node {
	for _, nd := range g.Nodes {
		if nd.Kind == ir.KindExit {
			return nd
		}
	}
	return nil
}

// witnessLess orders witnesses deterministically: smallest distance first,
// then earliest source positions.
func witnessLess(a, b *Witness) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	if a.FromPos != b.FromPos {
		return a.FromPos.Line < b.FromPos.Line || (a.FromPos.Line == b.FromPos.Line && a.FromPos.Col < b.FromPos.Col)
	}
	if a.ToPos != b.ToPos {
		return a.ToPos.Line < b.ToPos.Line || (a.ToPos.Line == b.ToPos.Line && a.ToPos.Col < b.ToPos.Col)
	}
	return a.Kind < b.Kind
}

// resolvePair decides whether two references can touch the same element in
// two different iterations of the loop, exactly where possible. The loop's
// range facts settle symbolic comparisons the constant arithmetic cannot:
// a symbolic collision distance proved to reach past the trip count, a
// symbolic element difference proved nonzero, a stride proved larger than
// a constant offset. Every statically undecidable pair yields a blocker
// carrying the exact comparison that failed.
func resolvePair(r1, r2 *ir.Ref, g *ir.Graph, facts *rangefacts.Facts, ubPoly poly.Poly, hasUBPoly bool) pairOutcome {
	hasUB, ub, iv := g.HasUB, g.UBConst, g.IV
	// tripAtMost reports whether the trip count provably fits within k
	// iterations — from the constant bound, or from the facts when the
	// bound is a symbolic expression with a known upper bound.
	tripAtMost := func(k int64) bool {
		if hasUB {
			return ub <= k
		}
		if hasUBPoly {
			if hi, ok := facts.UpperBound(ubPoly); ok {
				return hi <= k
			}
		}
		return false
	}
	// beyondTrip reports whether a collision at (signed) distance delta
	// lies past the last iteration.
	beyondTrip := func(delta int64) bool {
		if hasUB {
			return abs64(delta)+1 > ub
		}
		return tripAtMost(abs64(delta))
	}
	constDelta := func(delta int64) pairOutcome {
		if delta == 0 {
			return pairOutcome{kind: pairIndependent, reason: "collide only within one iteration (δ = 0)"}
		}
		if beyondTrip(delta) {
			return pairOutcome{kind: pairNone,
				reason: fmt.Sprintf("collision distance %d exceeds the trip count", abs64(delta))}
		}
		early, late := r1, r2
		if delta < 0 {
			early, late, delta = r2, r1, -delta
		}
		return conflict(early, late, 1, 1+delta, iv)
	}

	a1, b1, ok1 := r1.Form.ConstCoeffs()
	a2, b2, ok2 := r2.Form.ConstCoeffs()
	switch {
	case ok1 && ok2 && a1 == a2 && a1 == 0:
		if b1 != b2 {
			return pairOutcome{kind: pairNone, reason: "distinct constant elements"}
		}
		if tripAtMost(1) {
			return pairOutcome{kind: pairNone, reason: "single-iteration loop"}
		}
		return conflict(r1, r2, 1, 2, iv)
	case ok1 && ok2 && a1 == a2:
		diff := b1 - b2
		if diff%a1 != 0 {
			return pairOutcome{kind: pairNone,
				reason: fmt.Sprintf("offset %d is not divisible by stride %d", diff, a1)}
		}
		return constDelta(diff / a1)
	case ok1 && ok2: // different constant strides
		return resolveDifferentStrides(r1, r2, a1, b1, a2, b2, hasUB, ub, iv)
	case r1.Form.A.Equal(r2.Form.A) && r1.Form.A.IsZero():
		// Both subscripts are invariant in iv (common for the innermost loop
		// of a nest, where the subscript ranges over the outer variables):
		// they collide across iterations exactly when the symbolic elements
		// coincide.
		diff := r1.Form.B.Sub(r2.Form.B)
		if diff.IsZero() {
			if tripAtMost(1) {
				return pairOutcome{kind: pairNone, reason: "single-iteration loop"}
			}
			return conflict(r1, r2, 1, 2, iv)
		}
		if facts.ProveNonZero(diff) {
			return pairOutcome{kind: pairNone,
				reason: fmt.Sprintf("distinct elements: %s ≠ 0 by the loop's range facts", diff)}
		}
		return pairOutcome{kind: pairUnknown, blocker: Blocker{
			Slug: "symbolic-distance",
			Reason: fmt.Sprintf("whether %s and %s name the same element depends on %s",
				refText(r1), refText(r2), diff),
			Comparison: fmt.Sprintf("%s = 0?", diff),
			Missing:    fmt.Sprintf("a fact excluding 0 for %s", diff),
		}}
	case r1.Form.A.Equal(r2.Form.A):
		// Symbolic but equal linear parts: the collision distance is
		// (b1−b2)/a when that quotient is exact.
		diff := r1.Form.B.Sub(r2.Form.B)
		if q, ok := diff.DivExact(r1.Form.A); ok {
			if delta, isConst := q.IsConst(); isConst {
				return constDelta(delta)
			}
			// Symbolic distance. The facts may pin it to a constant, or
			// prove it reaches past the trip count in either direction
			// (distance ≥ trip ⟹ the colliding iteration pair does not fit).
			lo, okLo := facts.LowerBound(q)
			hi, okHi := facts.UpperBound(q)
			if okLo && okHi && lo == hi {
				return constDelta(lo)
			}
			// A collision at distance δ pairs iterations (i, i+|δ|), which
			// fits a trip count of ub only when |δ| < ub: a proven one-sided
			// bound past that excludes every pair.
			if hasUB && ((okLo && lo >= ub) || (okHi && hi <= -ub)) {
				return pairOutcome{kind: pairNone,
					reason: fmt.Sprintf("collision distance %s provably reaches past the trip count %d", q, ub)}
			}
			if hasUBPoly && (facts.ProveGE(q, ubPoly) || facts.ProveGE(q.Neg(), ubPoly)) {
				return pairOutcome{kind: pairNone,
					reason: fmt.Sprintf("collision distance %s provably reaches past the trip count %s", q, ubPoly)}
			}
			return pairOutcome{kind: pairUnknown, blocker: Blocker{
				Slug: "symbolic-distance",
				Reason: fmt.Sprintf("collision distance of %s and %s is symbolic (%s)",
					refText(r1), refText(r2), q),
				Comparison: fmt.Sprintf("δ = %s with 1 ≤ |δ| < trip count?", q),
				Missing:    fmt.Sprintf("a constant value for %s, or a proof it reaches the trip count", q),
			}}
		}
		if diffC, isConst := diff.IsConst(); isConst {
			// a·δ = diffC with a symbolic: impossible for δ ≠ 0 once |a| is
			// proved to exceed |diffC|.
			if diffC != 0 && (facts.ProveGT(r1.Form.A, poly.Const(abs64(diffC))) ||
				facts.ProveGT(r1.Form.A.Neg(), poly.Const(abs64(diffC)))) {
				return pairOutcome{kind: pairNone,
					reason: fmt.Sprintf("stride magnitude |%s| provably exceeds the offset %d", r1.Form.A, abs64(diffC))}
			}
			return pairOutcome{kind: pairUnknown, blocker: Blocker{
				Slug: "symbolic-stride",
				Reason: fmt.Sprintf("collision of %s and %s depends on the symbolic stride (%s)",
					refText(r1), refText(r2), r1.Form.A),
				Comparison: fmt.Sprintf("%s·δ = %d for some integer δ ≠ 0?", r1.Form.A, diffC),
				Missing:    fmt.Sprintf("a fact proving |%s| > %d, or a constant value for it", r1.Form.A, abs64(diffC)),
			}}
		}
		return pairOutcome{kind: pairUnknown, blocker: Blocker{
			Slug: "symbolic-distance",
			Reason: fmt.Sprintf("collision distance of %s and %s is symbolic (%s)",
				refText(r1), refText(r2), diff),
			Comparison: fmt.Sprintf("%s·δ = %s for some integer δ ≠ 0?", r1.Form.A, diff),
			Missing:    fmt.Sprintf("bounds resolving %s against %s", diff, r1.Form.A),
		}}
	default:
		return pairOutcome{kind: pairUnknown, blocker: Blocker{
			Slug:   "symbolic-coeffs",
			Reason: fmt.Sprintf("subscripts of %s and %s have symbolic coefficients", refText(r1), refText(r2)),
			Comparison: fmt.Sprintf("(%s)·i + %s = (%s)·i' + %s?",
				r1.Form.A, r1.Form.B, r2.Form.A, r2.Form.B),
			Missing: "constant or matching strides",
		}}
	}
}

// resolveDifferentStrides searches for the smallest iteration distance at
// which a1·i + b1 and a2·j + b2 coincide with i ≠ j, both in range.
func resolveDifferentStrides(r1, r2 *ir.Ref, a1, b1, a2, b2 int64, hasUB bool, ub int64, iv string) pairOutcome {
	da := a1 - a2
	bound := int64(differentStrideScan)
	if hasUB {
		bound = ub - 1
	}
	for d := int64(1); d <= bound; d++ {
		// Direction A: r1 runs d iterations before r2 (i2 − i1 = d).
		if num := a1*d + b2 - b1; num%da == 0 {
			i2 := num / da
			i1 := i2 - d
			if i1 >= 1 && (!hasUB || i2 <= ub) {
				return conflict(r1, r2, i1, i2, iv)
			}
		}
		// Direction B: r2 runs d iterations before r1 (i1 − i2 = d).
		if num := b2 - b1 - a2*d; num%da == 0 {
			i1 := num / da
			i2 := i1 - d
			if i2 >= 1 && (!hasUB || i1 <= ub) {
				return conflict(r2, r1, i2, i1, iv)
			}
		}
	}
	if hasUB {
		return pairOutcome{kind: pairNone,
			reason: fmt.Sprintf("strides %d and %d admit no colliding iteration pair within the trip count %d", a1, a2, ub)}
	}
	// Symbolic bound: the scan is a heuristic. When neither direction's
	// Diophantine equation (da·i − a·d = b2−b1) has integer solutions at
	// all, the pair provably never collides; otherwise stay conservative.
	diff := b2 - b1
	if diff%gcd(abs64(da), abs64(a1)) != 0 && diff%gcd(abs64(da), abs64(a2)) != 0 {
		return pairOutcome{kind: pairNone,
			reason: fmt.Sprintf("strides %d and %d never produce the same element (no integer solution)", a1, a2)}
	}
	return pairOutcome{kind: pairUnknown, blocker: Blocker{
		Slug: "symbolic-bound-scan",
		Reason: fmt.Sprintf("no collision of %s and %s within %d iterations, but the loop bound is symbolic",
			refText(r1), refText(r2), differentStrideScan),
		Comparison: fmt.Sprintf("%d·i + %d = %d·i' + %d for some i' − i > %d?", a1, b1, a2, b2, differentStrideScan),
		Missing:    "a constant trip count (the scan is exhaustive only under one)",
	}}
}

// conflict builds the pairConflict outcome with a fully-populated witness:
// early executes at iteration iterEarly, late at iterLate, touching the
// same element.
func conflict(early, late *ir.Ref, iterEarly, iterLate int64, iv string) pairOutcome {
	w := &Witness{
		IV:        iv,
		IterEarly: iterEarly,
		IterLate:  iterLate,
		Distance:  iterLate - iterEarly,
		Kind:      dependenceKind(early, late),
		Array:     early.Array,
		FromText:  refText(early),
		ToText:    refText(late),
		FromStore: early.Kind == ir.Def,
		ToStore:   late.Kind == ir.Def,
		FromPos:   early.Expr.Pos(),
		ToPos:     late.Expr.Pos(),
	}
	if cell, ok := evalCell(early.Expr, iv, iterEarly); ok {
		w.Cell = cell
		w.HasCell = true
	}
	return pairOutcome{kind: pairConflict, witness: w}
}

func dependenceKind(early, late *ir.Ref) string {
	switch {
	case early.Kind == ir.Def && late.Kind == ir.Def:
		return "output"
	case early.Kind == ir.Def:
		return "flow"
	default:
		return "anti"
	}
}

// evalCell evaluates a reference's subscript tuple at a concrete iteration
// (iv = iter), succeeding only when every subscript is constant under that
// single binding.
func evalCell(ref *ast.ArrayRef, iv string, iter int64) ([]int64, bool) {
	env := map[string]int64{iv: iter}
	out := make([]int64, len(ref.Subs))
	for k, sub := range ref.Subs {
		v, ok := evalConstExpr(sub, env)
		if !ok {
			return nil, false
		}
		out[k] = v
	}
	return out, true
}

// evalConstExpr evaluates an expression under env, failing on any symbol
// outside env, array reference, or division/modulo edge case.
func evalConstExpr(e ast.Expr, env map[string]int64) (int64, bool) {
	switch ex := e.(type) {
	case *ast.IntLit:
		return ex.Value, true
	case *ast.Ident:
		v, ok := env[ex.Name]
		return v, ok
	case *ast.Unary:
		v, ok := evalConstExpr(ex.X, env)
		if !ok {
			return 0, false
		}
		switch ex.Op {
		case token.MINUS:
			return -v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.Binary:
		l, ok := evalConstExpr(ex.L, env)
		if !ok {
			return 0, false
		}
		r, ok := evalConstExpr(ex.R, env)
		if !ok {
			return 0, false
		}
		switch ex.Op {
		case token.PLUS:
			return l + r, true
		case token.MINUS:
			return l - r, true
		case token.STAR:
			return l * r, true
		case token.SLASH:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case token.MOD:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		}
		return 0, false
	}
	return 0, false
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
