package lint_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/lint"
	"repro/internal/parser"
	"repro/internal/poly"
	"repro/internal/rangefacts"
	"repro/internal/sema"
)

// raceVerdicts extracts the non-error race findings of a vet result in
// sorted order as (verdict, bridge) pairs, where bridge is the replay or
// permutation detail ("" for unknown verdicts). Error-severity race
// findings (certification bridge failures) fail the test immediately.
func raceVerdicts(t *testing.T, res *lint.VetResult) [][2]string {
	t.Helper()
	var out [][2]string
	for _, f := range res.Findings {
		if f.Analyzer != "race" {
			continue
		}
		if f.Severity == diag.Error {
			t.Fatalf("certification bridge failure: %s", f)
		}
		v := f.Detail["verdict"]
		bridge := f.Detail["replay"] + f.Detail["permutation"]
		out = append(out, [2]string{v, bridge})
	}
	return out
}

// TestRaceVerdictsPerExample pins the three-way classification of every
// example program and requires each verdict's dynamic certification to
// succeed: racy loops must carry a replay-confirmed witness, parallel
// loops must survive the shuffled-schedule permutation check.
func TestRaceVerdictsPerExample(t *testing.T) {
	want := map[string][][2]string{
		"bounds":           {{"parallel", "verified"}},
		"deadstore":        {{"racy", "confirmed"}},
		"fig1":             {{"racy", "confirmed"}},
		"guarded_parallel": {{"parallel", "verified"}},
		"nest":             {{"parallel", "verified"}, {"racy", "confirmed"}},
		"symbolic_dist":    {{"unknown", ""}},
		"parallel":         {{"parallel", "verified"}, {"racy", "confirmed"}},
		"race_multidim":    {{"racy", "confirmed"}, {"parallel", "verified"}},
		"race_negstride":   {{"racy", "confirmed"}},
		"uninit":           {{"racy", "confirmed"}, {"parallel", "verified"}},
		"unknown":          {{"unknown", ""}, {"unknown", ""}},
	}
	for _, path := range examplePaths(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".loop")
		t.Run(name, func(t *testing.T) {
			exp, ok := want[name]
			if !ok {
				t.Fatalf("example %s has no expected race verdicts; update the table", name)
			}
			res := vetExample(t, path, nil)
			if got := raceVerdicts(t, res); fmt.Sprint(got) != fmt.Sprint(exp) {
				t.Errorf("race verdicts = %v, want %v", got, exp)
			}
		})
	}
}

// TestRaceSyntheticSweep sweeps stride/offset/trip-count combinations of
// the loop  A[a*i + b] := A[a*i] + 1  and checks the certifier against the
// arithmetic ground truth: the pair collides across iterations exactly
// when a divides b with 1 ≤ b/a ≤ ub−1. Every racy verdict must
// replay-confirm its witness and every parallel verdict must pass the
// permutation check (raceVerdicts fails the test on any bridge failure).
func TestRaceSyntheticSweep(t *testing.T) {
	for _, a := range []int64{1, 2, 3} {
		for b := int64(0); b <= 6; b++ {
			for _, ub := range []int64{4, 10} {
				name := fmt.Sprintf("a%d_b%d_ub%d", a, b, ub)
				t.Run(name, func(t *testing.T) {
					src := fmt.Sprintf("dim A[100]\ndo i = 1, %d\n  A[%d*i + %d] := A[%d*i] + 1\nenddo\n", ub, a, b, a)
					res := lint.Vet("<sweep>", src, nil)
					if res.FrontEndFailed {
						t.Fatalf("front end rejected sweep program: %v", res.Findings)
					}
					racy := b%a == 0 && b/a >= 1 && b/a+1 <= ub
					wantClass := "parallel"
					if racy {
						wantClass = "racy"
					}
					got := raceVerdicts(t, res)
					if len(got) != 1 || got[0][0] != wantClass {
						t.Fatalf("verdicts = %v, want one %s", got, wantClass)
					}
					if racy && got[0][1] != "confirmed" {
						t.Errorf("racy witness not replay-confirmed: %v", got[0])
					}
					if !racy && got[0][1] != "verified" {
						t.Errorf("parallel verdict not permutation-verified: %v", got[0])
					}
					if racy {
						// The minimal witness distance is exactly b/a.
						for _, f := range res.Findings {
							if f.Analyzer == "race" && f.Detail["verdict"] == "racy" {
								if want := fmt.Sprintf("%d", b/a); f.Detail["distance"] != want {
									t.Errorf("witness distance = %s, want %s", f.Detail["distance"], want)
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestRangefactsVerdictDeterminism renders the race findings of the two
// examples whose verdicts depend on derived range facts — the certified
// nest and the guard-resolved symbolic offset — 50 times across
// parallelism, cache, solver-engine, and fuel settings, and requires
// byte-for-byte identical output: a facts-assisted proof must not depend
// on scheduling, memoization, the engine, or a (sufficient) budget.
func TestRangefactsVerdictDeterminism(t *testing.T) {
	fuels := []int64{0, 1 << 16, 1 << 20}
	engines := []dataflow.Engine{"", dataflow.EnginePacked, dataflow.EngineReference}
	for _, base := range []string{"nest", "guarded_parallel"} {
		t.Run(base, func(t *testing.T) {
			path := filepath.Join("..", "..", "examples", base+".loop")
			render := func(opts *lint.Options) []byte {
				res := vetExample(t, path, opts)
				var buf bytes.Buffer
				for _, f := range res.Findings {
					if f.Analyzer == "race" {
						fmt.Fprintf(&buf, "%s detail=%v related=%v\n", f, f.Detail, f.Related)
					}
				}
				return buf.Bytes()
			}
			want := render(&lint.Options{Parallelism: 1, DisableCache: true})
			if len(want) == 0 {
				t.Fatal("no race findings rendered")
			}
			if !bytes.Contains(want, []byte("provably parallel")) {
				t.Fatalf("facts-assisted example lost its parallel proof:\n%s", want)
			}
			for run := 0; run < 50; run++ {
				opts := &lint.Options{
					Parallelism:  1 + run%8,
					DisableCache: run%2 == 0,
					Engine:       engines[run%3],
					Fuel:         fuels[run%len(fuels)],
				}
				if got := render(opts); !bytes.Equal(got, want) {
					t.Fatalf("run %d (%+v) diverged\n-- got --\n%s-- want --\n%s", run, opts, got, want)
				}
			}
		})
	}
}

// TestFabricatedFactFailsPermutation is the negative control of the
// facts-assisted certification: an assumed fact that is false on the probe
// inputs (k ≥ n, while the loop actually runs with k < n) makes the static
// side claim a parallel loop that really races, and the shuffled-schedule
// check must catch the lie as a bridge-failure error finding.
func TestFabricatedFactFailsPermutation(t *testing.T) {
	src := "dim X[100]\ndo i = 1, n\n  X[i] := X[i+k] + 1\nenddo\n"
	fabricated := []rangefacts.Fact{
		rangefacts.NonNeg(poly.Sym("k").Sub(poly.Sym("n")), "fabricated"),
	}
	res := lint.Vet("<fabricated>", src, &lint.Options{
		Analyzers: []string{"race"}, Parallelism: 1, Assume: fabricated,
	})
	var bridgeFailure, parallel bool
	for _, f := range res.Findings {
		if f.Analyzer != "race" {
			continue
		}
		if f.Severity == diag.Error && f.Detail["permutation"] == "diverged" {
			bridgeFailure = true
		}
		if f.Detail["verdict"] == "parallel" {
			parallel = true
		}
	}
	if !parallel {
		t.Fatal("fabricated fact did not produce the parallel claim the control needs")
	}
	if !bridgeFailure {
		t.Fatal("permutation check accepted a verdict built on a false assumption")
	}

	// The sound counterpart: the same comparison supplied by a real guard
	// is vacuously true on any input that reaches the loop, so the verdict
	// survives the dynamic bridge.
	guarded := "dim X[100]\nif k >= n then\n" + "do i = 1, n\n  X[i] := X[i+k] + 1\nenddo\nendif\n"
	res = lint.Vet("<guarded>", guarded, &lint.Options{Analyzers: []string{"race"}, Parallelism: 1})
	for _, f := range res.Findings {
		if f.Analyzer == "race" && f.Severity == diag.Error {
			t.Fatalf("guard-derived fact failed the dynamic bridge: %s", f)
		}
	}
}

// certContext builds a lint.Context for the first loop of src, the same
// way the analyzer pipeline does, so the static and dynamic halves of the
// certification can be exercised directly.
func certContext(t *testing.T, src string) *lint.Context {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	norm, err := sema.Normalize(prog)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	pa, err := driver.Analyze(norm, &driver.Options{Specs: lint.Specs(), Parallelism: 1})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(pa.Loops) == 0 {
		t.Fatal("no loops analyzed")
	}
	return &lint.Context{
		File:    "<cert>",
		Program: norm,
		Info:    pa.Info,
		Loop:    pa.Loops[0],
	}
}

// TestReplayRejectsBogusWitness is the negative control of the dynamic
// bridge: corrupting a genuine witness (shifting the late iteration off
// the colliding distance) must make the interpreter replay fail. Without
// this, a replay that vacuously "confirms" everything would pass every
// positive test.
func TestReplayRejectsBogusWitness(t *testing.T) {
	c := certContext(t, "dim A[64]\ndo i = 1, 20\n  A[i+2] := A[i] * 2\nenddo\n")
	v := lint.CertifyLoop(c)
	if v.Class != lint.VerdictRacy || v.Witness == nil {
		t.Fatalf("verdict = %v, want racy with witness", v.Class)
	}
	if err := lint.ReplayWitness(c.Program, c.Loop.Loop, v.Witness); err != nil {
		t.Fatalf("genuine witness must replay: %v", err)
	}
	bogus := *v.Witness
	bogus.IterLate++ // off the collision distance: cells no longer touch
	bogus.Distance++
	if err := lint.ReplayWitness(c.Program, c.Loop.Loop, &bogus); err == nil {
		t.Error("corrupted witness replayed without error")
	}
}

// TestPermutationCheckCatchesRacyLoop is the negative control of the
// parallel certification: running a provably racy loop through the
// shuffled-schedule check must report a divergence.
func TestPermutationCheckCatchesRacyLoop(t *testing.T) {
	c := certContext(t, "dim A[64]\ndo i = 1, 20\n  A[i+1] := A[i] + A[i+1]\nenddo\n")
	if err := lint.PermutationCheck(c.Program, c.Loop.Loop, 0x5eed); err == nil {
		t.Error("permutation check passed on a racy loop")
	}
}

// TestRaceWitnessDeterminism renders the race findings of the witness
// examples 50 times across parallelism, cache, and solver-engine settings
// and requires byte-for-byte identical output: witnesses must not depend
// on scheduling, memoization, or the engine.
func TestRaceWitnessDeterminism(t *testing.T) {
	for _, base := range []string{"race_multidim", "race_negstride", "fig1"} {
		t.Run(base, func(t *testing.T) {
			path := filepath.Join("..", "..", "examples", base+".loop")
			render := func(opts *lint.Options) []byte {
				res := vetExample(t, path, opts)
				var buf bytes.Buffer
				for _, f := range res.Findings {
					if f.Analyzer == "race" {
						fmt.Fprintf(&buf, "%s detail=%v related=%v\n", f, f.Detail, f.Related)
					}
				}
				return buf.Bytes()
			}
			want := render(&lint.Options{Parallelism: 1, DisableCache: true})
			if len(want) == 0 {
				t.Fatal("no race findings rendered")
			}
			engines := []dataflow.Engine{"", dataflow.EnginePacked, dataflow.EngineReference}
			for run := 0; run < 50; run++ {
				opts := &lint.Options{
					Parallelism:  1 + run%8,
					DisableCache: run%2 == 0,
					Engine:       engines[run%3],
				}
				if got := render(opts); !bytes.Equal(got, want) {
					t.Fatalf("run %d (%+v) diverged\n-- got --\n%s-- want --\n%s", run, opts, got, want)
				}
			}
		})
	}
}
