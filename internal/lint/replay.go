// Dynamic certification bridge: the race analyzer's static verdicts are
// validated on the reference interpreter. Racy witnesses replay concretely
// (the two claimed iterations must touch the same element), and
// provably-parallel loops run once in natural order and once under a
// shuffled iteration schedule with the final array states compared.
//
// Executed references are matched to witness references by rendered source
// text, not pointer identity: the driver's content-addressed memo cache
// may hand a loop the graph of a structurally identical twin, so the ref
// Exprs in a LoopAnalysis can alias a different loop's AST. The rendered
// text of a normalized reference is identical across such twins.
package lint

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/interp"
)

// permutationSeed fixes the shuffled schedule of the parallel permutation
// check; a constant keeps vet output byte-identical across runs.
const permutationSeed = 0x5eed

// dynamicMaxSteps bounds the dynamic certification checks so a
// pathological program cannot hang vet.
const dynamicMaxSteps = 4_000_000

// ReplayWitness executes the (checked, normalized) program and confirms
// that the witness's two references touch the same array element at the
// claimed iterations of loop. Free scalars — including a symbolic loop
// bound — are bound to deterministic values that drive the loop to at
// least IterLate iterations. A nil return means the race was observed.
func ReplayWitness(prog *ast.Program, loop *ast.DoLoop, w *Witness) error {
	env, err := realizeTrip(prog, loop, w.IterLate)
	if err != nil {
		return err
	}
	var expected string
	if w.HasCell {
		expected = cellKey(w.Cell)
	}
	var (
		active    bool
		cur       int64
		fromCells map[string]bool
		sawEarly  bool
		sawLate   bool
		confirmed bool
	)
	opts := &interp.Options{
		MaxSteps: dynamicMaxSteps,
		LoopIter: func(l *ast.DoLoop, i int64) {
			if l != loop {
				return
			}
			if i == 1 && !confirmed {
				// Normalized loops start at 1, so this is a new dynamic
				// instance; collisions must not span instances.
				fromCells = map[string]bool{}
			}
			active, cur = true, i
		},
		LoopDone: func(l *ast.DoLoop) {
			if l == loop {
				active = false
			}
		},
		TraceRef: func(ref *ast.ArrayRef, isStore bool, idx []int64) {
			if !active || confirmed || ref.Name != w.Array {
				return
			}
			key := cellKey(idx)
			text := ast.ExprString(ref)
			if cur == w.IterEarly && isStore == w.FromStore && text == w.FromText {
				sawEarly = true
				if !w.HasCell || key == expected {
					fromCells[key] = true
				}
			}
			if cur == w.IterLate && isStore == w.ToStore && text == w.ToText {
				sawLate = true
				if fromCells[key] {
					confirmed = true
				}
			}
		},
	}
	_, _, runErr := interp.Run(prog, seededState(prog, env), opts)
	if confirmed {
		return nil
	}
	if runErr != nil {
		return fmt.Errorf("interpreter run failed before the witness was reached: %v", runErr)
	}
	switch {
	case !sawEarly:
		return fmt.Errorf("%s did not execute at iteration %d of the loop over %s",
			accessText(w.FromText, w.FromStore), w.IterEarly, w.IV)
	case !sawLate:
		return fmt.Errorf("%s did not execute at iteration %d of the loop over %s",
			accessText(w.ToText, w.ToStore), w.IterLate, w.IV)
	default:
		return fmt.Errorf("%s (iteration %d) and %s (iteration %d) touched different elements of %s, expected %s",
			accessText(w.FromText, w.FromStore), w.IterEarly,
			accessText(w.ToText, w.ToStore), w.IterLate, w.Array, w.CellString())
	}
}

// PermutationCheck runs the program twice on identical seeded inputs —
// once with loop's natural iteration order, once with a deterministically
// shuffled schedule — and reports an error when the final array states
// differ. A certified-parallel loop must pass for any seed.
func PermutationCheck(prog *ast.Program, loop *ast.DoLoop, seed int64) error {
	env, err := realizeTrip(prog, loop, 3)
	if err != nil {
		// A shorter schedule still permutes when the loop runs at all;
		// a loop that cannot be driven has nothing to falsify.
		env, err = realizeTrip(prog, loop, 2)
		if err != nil {
			return nil
		}
	}
	init := seededState(prog, env)
	natural, _, errA := interp.Run(prog, init, &interp.Options{MaxSteps: dynamicMaxSteps})
	if errA != nil {
		// The probe inputs do not execute cleanly (e.g. division by zero in
		// unrelated code); there is no baseline to compare against.
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	shuffled, _, errB := interp.Run(prog, init, &interp.Options{
		MaxSteps: dynamicMaxSteps,
		LoopOrder: func(l *ast.DoLoop, iters []int64) []int64 {
			if l != loop {
				return nil
			}
			out := make([]int64, len(iters))
			copy(out, iters)
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		},
	})
	if errB != nil {
		return fmt.Errorf("shuffled run failed where the natural order succeeded: %v", errB)
	}
	if d := interp.DiffArrays(natural, shuffled); d != "" {
		return fmt.Errorf("final array states diverged: %s", d)
	}
	return nil
}

// realizeTrip binds every free scalar of the program to a deterministic
// value such that the given loop executes at least need iterations,
// growing the free scalars of the loop bound geometrically until the trip
// count (observed by actually running the program) suffices.
func realizeTrip(prog *ast.Program, loop *ast.DoLoop, need int64) (map[string]int64, error) {
	free := freeScalars(prog)
	env := make(map[string]int64, len(free))
	for k, name := range free {
		env[name] = int64(5 + 2*k)
	}
	hiIDs := freeIdentsIn(loop.Hi, free)
	for attempt := 0; ; attempt++ {
		trip, err := probeTrip(prog, loop, env)
		if trip >= need {
			return env, nil
		}
		if attempt >= 20 || len(hiIDs) == 0 {
			if err != nil {
				return nil, fmt.Errorf("cannot drive the loop to iteration %d: %v", need, err)
			}
			return nil, fmt.Errorf("cannot drive the loop to iteration %d (reached %d)", need, trip)
		}
		for k, id := range hiIDs {
			env[id] = env[id]*2 + need + int64(k)
		}
	}
}

// probeTrip runs the program under env and reports the largest induction
// value the target loop reached.
func probeTrip(prog *ast.Program, loop *ast.DoLoop, env map[string]int64) (int64, error) {
	st := interp.NewState()
	for k, v := range env {
		st.Scalars[k] = v
	}
	var max int64
	_, _, err := interp.Run(prog, st, &interp.Options{
		MaxSteps: dynamicMaxSteps,
		LoopIter: func(l *ast.DoLoop, i int64) {
			if l == loop && i > max {
				max = i
			}
		},
	})
	return max, err
}

// freeScalars returns the scalar names the program reads but never
// assigns (induction variables count as assigned), sorted.
func freeScalars(prog *ast.Program) []string {
	assigned := map[string]bool{}
	used := map[string]bool{}
	ast.Inspect(prog.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DoLoop:
			assigned[x.Var] = true
		case *ast.Assign:
			if id, ok := x.LHS.(*ast.Ident); ok {
				assigned[id.Name] = true
			}
		case *ast.Ident:
			used[x.Name] = true
		}
		return true
	})
	var out []string
	for name := range used {
		if !assigned[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// freeIdentsIn returns the subset of free that occurs in e, sorted.
func freeIdentsIn(e ast.Expr, free []string) []string {
	set := make(map[string]bool, len(free))
	for _, f := range free {
		set[f] = true
	}
	seen := map[string]bool{}
	var out []string
	ast.InspectExpr(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && set[id.Name] && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// seededState builds the initial interpreter state: env for the scalars,
// and every array pre-filled with distinct deterministic values over a
// bounded index box (declared bounds when present). Distinct values make
// order-dependent overwrites visible to the permutation check.
func seededState(prog *ast.Program, env map[string]int64) *interp.State {
	st := interp.NewState()
	for k, v := range env {
		st.Scalars[k] = v
	}
	ndims := map[string]int{}
	declared := map[string][]int64{}
	ast.Inspect(prog.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ArrayRef:
			if len(x.Subs) > ndims[x.Name] {
				ndims[x.Name] = len(x.Subs)
			}
		case *ast.Dim:
			var sizes []int64
			for _, sz := range x.Sizes {
				if lit, ok := sz.(*ast.IntLit); ok {
					sizes = append(sizes, lit.Value)
				} else {
					sizes = append(sizes, 0)
				}
			}
			declared[x.Name] = sizes
			if len(x.Sizes) > ndims[x.Name] {
				ndims[x.Name] = len(x.Sizes)
			}
		}
		return true
	})
	names := make([]string, 0, len(ndims))
	for n := range ndims {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		nd := ndims[name]
		if nd == 0 {
			continue
		}
		lo, hi := seedRanges(nd, declared[name])
		seedArray(st, name, make([]int64, 0, nd), lo, hi)
	}
	return st
}

// seedRanges picks the per-dimension index box to pre-fill: declared
// arrays seed their 1-based range (capped), undeclared arrays a small box
// around the origin including negative indices.
func seedRanges(nd int, sizes []int64) (lo, hi []int64) {
	lo = make([]int64, nd)
	hi = make([]int64, nd)
	var limit int64
	switch {
	case nd == 1:
		limit = 96
	case nd == 2:
		limit = 20
	default:
		limit = 8
	}
	for d := 0; d < nd; d++ {
		if d < len(sizes) && sizes[d] > 0 {
			lo[d] = 1
			hi[d] = sizes[d]
			if hi[d] > limit {
				hi[d] = limit
			}
		} else {
			lo[d] = -4
			hi[d] = limit
		}
	}
	return lo, hi
}

func seedArray(st *interp.State, name string, idx []int64, lo, hi []int64) {
	d := len(idx)
	if d == len(lo) {
		st.SetArrayN(name, idx, seedValue(name, cellKey(idx)))
		return
	}
	for v := lo[d]; v <= hi[d]; v++ {
		seedArray(st, name, append(idx, v), lo, hi)
	}
}

// seedValue derives a nonzero deterministic element value from the array
// name and element key.
func seedValue(name, key string) int64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return int64(h.Sum32()%997) + 1
}

// cellKey matches the interpreter's element-key encoding.
func cellKey(idx []int64) string {
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}
