package lint

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/problems"
)

// reuseAnalyzer reports guaranteed value reuses (paper §4.1): a load whose
// value is provably available from an earlier reference, read off the
// δ-available-values solution. These are optimization opportunities, so
// the severity is informational.
var reuseAnalyzer = &Analyzer{
	ID:      "reuse",
	Doc:     "load whose value is provably available from an earlier reference",
	Problem: "δ-available values (§4.1)",
	Default: diag.Info,
	Run:     runReuse,
}

func runReuse(c *Context) []diag.Finding {
	res := c.result("delta-available-values")
	if res == nil {
		return nil
	}
	var out []diag.Finding
	for _, r := range problems.FindReuses(res) {
		when := "earlier in the same iteration"
		if r.Distance > 0 {
			when = iterations(r.Distance) + " earlier"
		}
		f := diag.Finding{
			Analyzer: "reuse",
			Pos:      r.At.Expr.Pos(),
			Severity: diag.Info,
			Message: fmt.Sprintf("load of %s reuses the value of %s from %s",
				ast.ExprString(r.At.Expr), r.From, when),
			Detail: map[string]string{
				"array":    r.At.Array,
				"distance": fmt.Sprintf("%d", r.Distance),
				"source":   r.From.String(),
			},
		}
		if len(r.From.Members) > 0 {
			f.Related = append(f.Related, diag.Related{
				Pos:     r.From.Members[0].Expr.Pos(),
				Message: fmt.Sprintf("value available from here (%s)", r.From),
			})
		}
		out = append(out, f)
	}
	return out
}
