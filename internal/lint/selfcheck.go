package lint

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/lattice"
)

// selfCheckAnalyzer validates the framework's own guarantees on every
// solved problem of the loop: each compiled flow function must be monotone
// over the distance lattice and idempotent (f∘f = f) on body nodes — the
// properties behind the paper's rapid-convergence argument — and the solve
// must have stabilized within two changing passes (§3.4). Violations are
// errors; a clean loop yields one informational finding so the check's
// coverage is visible in the output.
var selfCheckAnalyzer = &Analyzer{
	ID:      "selfcheck",
	Doc:     "framework invariants: monotone, idempotent flow functions and 2-pass convergence",
	Problem: "all solved problems (§3.4 convergence bound)",
	Default: diag.Info,
	Run:     runSelfCheck,
}

// selfCheckSamples spans the lattice's shape: bottom, several finite
// distances (including non-adjacent ones), and top.
var selfCheckSamples = []lattice.Dist{
	lattice.None(), lattice.D(0), lattice.D(1), lattice.D(2),
	lattice.D(3), lattice.D(7), lattice.All(),
}

func runSelfCheck(c *Context) []diag.Finding {
	names := make([]string, 0, len(c.Loop.Results()))
	for name := range c.Loop.Results() {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []diag.Finding
	checked := 0
	maxChanged := 0
	for _, name := range names {
		res := c.Loop.Result(name)
		for _, nd := range c.Loop.Graph().Nodes {
			for ci := range res.Classes {
				checked++
				fx := make([]lattice.Dist, len(selfCheckSamples))
				for i, x := range selfCheckSamples {
					fx[i] = res.ApplyFlow(nd, ci, x)
				}
				for i, x := range selfCheckSamples {
					for j, y := range selfCheckSamples {
						if x.Cmp(y) <= 0 && fx[i].Cmp(fx[j]) > 0 {
							out = append(out, selfCheckViolation(c, nd, fmt.Sprintf(
								"flow function of node n%d (problem %s, class %s) is not monotone: f(%s)=%s exceeds f(%s)=%s",
								nd.ID, name, res.Classes[ci], x, fx[i], y, fx[j])))
						}
					}
					// The exit node's function is the iteration increment and
					// is intentionally not idempotent; body nodes must be.
					if nd.Kind != ir.KindExit {
						if ffx := res.ApplyFlow(nd, ci, fx[i]); !ffx.Eq(fx[i]) {
							out = append(out, selfCheckViolation(c, nd, fmt.Sprintf(
								"flow function of node n%d (problem %s, class %s) is not idempotent: f(f(%s))=%s but f(%s)=%s",
								nd.ID, name, res.Classes[ci], x, ffx, x, fx[i])))
						}
					}
				}
			}
		}
		if res.ChangedPasses > maxChanged {
			maxChanged = res.ChangedPasses
		}
		// A fuel-exhausted solve stopped before its fixed point, so the
		// paper's convergence bound does not apply to its pass count.
		if res.ChangedPasses > 2 && !res.FuelExhausted {
			out = append(out, diag.Finding{
				Analyzer: "selfcheck",
				Pos:      c.Loop.Loop.Pos(),
				Severity: diag.Error,
				Message: fmt.Sprintf("problem %s needed %d changing passes on the loop over %s, exceeding the framework's bound of 2",
					name, res.ChangedPasses, c.Loop.Loop.Var),
				Detail: map[string]string{"problem": name, "changedPasses": fmt.Sprintf("%d", res.ChangedPasses)},
			})
		}
		out = append(out, crossEngineCheck(c, name, res)...)
	}
	if len(out) == 0 {
		out = append(out, diag.Finding{
			Analyzer: "selfcheck",
			Pos:      c.Loop.Loop.Pos(),
			Severity: diag.Info,
			Message: fmt.Sprintf("framework self-check passed for the loop over %s: %d flow functions monotone and idempotent over %d lattice samples, %d problem(s) converged within %d changing pass(es), both solver engines agree",
				c.Loop.Loop.Var, checked, len(selfCheckSamples), len(names), maxChanged),
			Detail: map[string]string{
				"flowFunctions": fmt.Sprintf("%d", checked),
				"samples":       fmt.Sprintf("%d", len(selfCheckSamples)),
				"problems":      fmt.Sprintf("%d", len(names)),
				"changedPasses": fmt.Sprintf("%d", maxChanged),
				"engines":       "agree",
			},
		})
	}
	return out
}

// crossEngineCheck re-solves the problem with the engine that did NOT
// produce res and compares the fixed-point tuple tables. The two
// implementations (packed slabs vs the per-node reference solver) share
// nothing but the spec, so byte-identical tables are strong evidence
// neither has drifted. A divergence is an error finding: one of the
// engines is wrong and every analyzer downstream of it is suspect.
func crossEngineCheck(c *Context, name string, res *dataflow.Result) []diag.Finding {
	other := dataflow.EngineReference
	if c.Engine == dataflow.EngineReference {
		other = dataflow.EnginePacked
	}
	// The re-solve runs under the same fuel budget and the same range-fact
	// oracle so a degraded (or fact-strengthened) solution is compared
	// against an identically parameterized one, not a different problem.
	var oracle dataflow.RangeOracle
	if f := c.Facts(); !f.Empty() && !f.Exhausted() {
		oracle = f
	}
	res2 := dataflow.Solve(c.Loop.Graph(), res.Spec, &dataflow.Options{Engine: other, Fuel: c.Fuel, Facts: oracle})
	want := res.TupleTable(-1)
	got := res2.TupleTable(-1)
	if want == got {
		return nil
	}
	return []diag.Finding{{
		Analyzer: "selfcheck",
		Pos:      c.Loop.Loop.Pos(),
		Severity: diag.Error,
		Message: fmt.Sprintf("solver engines diverge on problem %s for the loop over %s: the %s engine's fixed point differs from the %s engine's",
			name, c.Loop.Loop.Var, engineName(c.Engine), string(other)),
		Detail: map[string]string{
			"problem":      name,
			"engine":       engineName(c.Engine),
			"crossChecked": string(other),
		},
	}}
}

// engineName renders the engine, mapping the zero value to its default.
func engineName(e dataflow.Engine) string {
	if e == "" {
		return string(dataflow.EnginePacked)
	}
	return string(e)
}

func selfCheckViolation(c *Context, nd *ir.Node, msg string) diag.Finding {
	pos := nd.SrcPos
	if !pos.IsValid() {
		pos = c.Loop.Loop.Pos()
	}
	return diag.Finding{Analyzer: "selfcheck", Pos: pos, Severity: diag.Error, Message: msg}
}
