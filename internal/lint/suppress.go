package lint

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/token"
)

// ApplySuppressions marks findings matched by //lint:ignore directives as
// suppressed. A directive suppresses findings of the named analyzers that
// are anchored on the directive's own line (trailing comment) or on the
// line immediately below it (comment above the statement). Front-end
// findings ("parse", "sema") cannot be suppressed — broken source must
// stay loud. Suppressed findings are kept, flagged, and annotated with the
// directive's reason so SARIF output can carry an inSource suppression.
func ApplySuppressions(fs []diag.Finding, dirs []token.Directive) []diag.Finding {
	if len(dirs) == 0 {
		return fs
	}
	for i := range fs {
		f := &fs[i]
		if f.Analyzer == "parse" || f.Analyzer == "sema" {
			continue
		}
		for _, d := range dirs {
			if !directiveMatches(d, f.Analyzer, f.Pos.Line) {
				continue
			}
			f.Suppressed = true
			if f.Detail == nil {
				f.Detail = map[string]string{}
			}
			f.Detail["suppressedBy"] = fmt.Sprintf("//lint:ignore at line %d: %s", d.Pos.Line, d.Reason)
			f.Detail["suppressionKind"] = "inSource"
			break
		}
	}
	return fs
}

// directiveMatches reports whether directive d silences analyzer findings
// on the given source line. The ID "*" matches every analyzer.
func directiveMatches(d token.Directive, analyzer string, line int) bool {
	if line != d.Pos.Line && line != d.Pos.Line+1 {
		return false
	}
	for _, id := range d.IDs {
		if id == analyzer || id == "*" {
			return true
		}
	}
	return false
}
