package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/lint"
)

// racyLoop is a loop with one race warning (anchored on the loop line) and
// one uninit warning (anchored on the load line).
const racyLoop = "dim A[10]\ndo i = 1, 5\n  A[i+1] := A[i]\nenddo\n"

func findingsByAnalyzer(res *lint.VetResult) map[string][]diag.Finding {
	out := map[string][]diag.Finding{}
	for _, f := range res.Findings {
		out[f.Analyzer] = append(out[f.Analyzer], f)
	}
	return out
}

// TestSuppressDirectiveAboveLine verifies a //lint:ignore comment on the
// line above a finding suppresses it: the finding stays in the result,
// flagged, annotated, excluded from the exit code and from text output.
func TestSuppressDirectiveAboveLine(t *testing.T) {
	src := "dim A[10]\n//lint:ignore race,uninit single-threaded by construction\ndo i = 1, 5\n  A[i+1] := A[i]\nenddo\n"
	res := lint.Vet("<test>", src, &lint.Options{Werror: true})
	if res.FrontEndFailed {
		t.Fatalf("front end failed: %v", res.Findings)
	}
	by := findingsByAnalyzer(res)
	if len(by["race"]) == 0 || !by["race"][0].Suppressed {
		t.Errorf("race finding not suppressed: %v", by["race"])
	}
	for _, f := range by["race"] {
		if f.Suppressed {
			if got := f.Detail["suppressionKind"]; got != "inSource" {
				t.Errorf("suppressionKind = %q, want inSource", got)
			}
			if !strings.Contains(f.Detail["suppressedBy"], "single-threaded by construction") {
				t.Errorf("suppressedBy lacks the reason: %q", f.Detail["suppressedBy"])
			}
		}
	}
	if res.Suppressed == 0 {
		t.Error("Suppressed count is zero")
	}
	// uninit anchors on line 4, two below the directive: must stay loud,
	// and under -werror an unsuppressed warning fails the run.
	if got := res.ExitCode(); got != 1 {
		t.Errorf("exit code = %d, want 1 (uninit warning on line 4 is out of directive range)", got)
	}
}

// TestSuppressTrailingDirective verifies a trailing //lint:ignore on the
// finding's own line suppresses it, and that with every warning silenced
// the -werror exit code drops to 0.
func TestSuppressTrailingDirective(t *testing.T) {
	src := "dim A[10]\n//lint:ignore race,uninit benchmark kernel\ndo i = 1, 5\n  A[i+1] := A[i] //lint:ignore uninit first element seeded elsewhere\nenddo\n"
	res := lint.Vet("<test>", src, &lint.Options{Werror: true})
	if res.FrontEndFailed {
		t.Fatalf("front end failed: %v", res.Findings)
	}
	for _, f := range res.Findings {
		if f.Severity >= diag.Warning && !f.Suppressed {
			t.Errorf("unsuppressed warning remains: %s", f)
		}
	}
	if got := res.ExitCode(); got != 0 {
		t.Errorf("exit code = %d, want 0 with all warnings suppressed", got)
	}
}

// TestSuppressWildcard verifies the "*" analyzer ID silences every
// analyzer in the directive's line range.
func TestSuppressWildcard(t *testing.T) {
	src := "dim A[10]\n//lint:ignore * vendored example\ndo i = 1, 5\n  A[i+1] := A[i]\nenddo\n"
	res := lint.Vet("<test>", src, nil)
	by := findingsByAnalyzer(res)
	for _, f := range by["race"] {
		if !f.Suppressed {
			t.Errorf("wildcard directive did not suppress %s", f)
		}
	}
	for _, f := range by["selfcheck"] {
		if !f.Suppressed {
			t.Errorf("wildcard directive did not suppress %s", f)
		}
	}
}

// TestSuppressedExcludedFromText verifies text output omits suppressed
// findings while JSON-bound results keep them.
func TestSuppressedExcludedFromText(t *testing.T) {
	src := "dim A[10]\n//lint:ignore * vendored\ndo i = 1, 5\n  A[i+1] := A[i]\nenddo\n"
	res := lint.Vet("<test>", src, nil)
	var b strings.Builder
	if err := diag.WriteText(&b, res.File, res.Findings); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "provably racy") {
		t.Errorf("suppressed race finding leaked into text output:\n%s", b.String())
	}
	kept := false
	for _, f := range res.Findings {
		if f.Analyzer == "race" && f.Suppressed {
			kept = true
		}
	}
	if !kept {
		t.Error("suppressed race finding dropped from the result entirely")
	}
}

// TestFrontEndFindingsNotSuppressible verifies parse findings stay loud
// under a wildcard directive: broken source must never be silenced.
func TestFrontEndFindingsNotSuppressible(t *testing.T) {
	src := "//lint:ignore * hush\ndo i = 1,\nenddo\n"
	res := lint.Vet("<test>", src, nil)
	if res.ExitCode() != 2 {
		t.Fatalf("exit code = %d, want 2", res.ExitCode())
	}
	for _, f := range res.Findings {
		if f.Suppressed {
			t.Errorf("front-end finding was suppressed: %s", f)
		}
	}
}

// TestMalformedDirectivesAreParseErrors verifies malformed and unknown
// lint control comments surface as front-end errors (exit 2) rather than
// being dropped silently.
func TestMalformedDirectivesAreParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown_verb", "//lint:nonsense x\ndo i = 1, 5\n  A[i] := 0\nenddo\n"},
		{"missing_reason", "//lint:ignore race\ndo i = 1, 5\n  A[i] := 0\nenddo\n"},
		{"empty_id", "//lint:ignore ,race reason here\ndo i = 1, 5\n  A[i] := 0\nenddo\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := lint.Vet("<test>", tc.src, nil)
			if res.ExitCode() != 2 {
				t.Fatalf("exit code = %d, want 2 (findings: %v)", res.ExitCode(), res.Findings)
			}
		})
	}
}

// TestBaselineRoundTrip captures a baseline from one run, applies it to a
// fresh identical run, and verifies every baselined finding is suppressed
// (externally) with exit code 0 even under -werror.
func TestBaselineRoundTrip(t *testing.T) {
	res := lint.Vet("<test>", racyLoop, nil)
	if res.ExitCode() != 0 {
		t.Fatalf("setup: exit = %d, findings %v", res.ExitCode(), res.Findings)
	}
	b := lint.NewBaseline(res.Findings)
	if len(b.Entries) == 0 {
		t.Fatal("empty baseline from a finding-bearing run")
	}
	res2 := lint.Vet("<test>", racyLoop, &lint.Options{Werror: true, Baseline: b})
	if res2.Baselined == 0 {
		t.Fatal("baseline suppressed nothing")
	}
	for _, f := range res2.Findings {
		if !f.Suppressed {
			t.Errorf("finding outside baseline: %s", f)
			continue
		}
		if got := f.Detail["suppressionKind"]; got != "external" {
			t.Errorf("suppressionKind = %q, want external", got)
		}
	}
	if got := res2.ExitCode(); got != 0 {
		t.Errorf("exit code = %d, want 0 under a full baseline", got)
	}
}

// TestBaselineCountBudget verifies occurrence budgets: a baseline
// accepting one occurrence of a twice-occurring finding suppresses
// exactly one (the first in deterministic order) and leaves the second
// loud.
func TestBaselineCountBudget(t *testing.T) {
	// Two structurally identical loops produce two findings with identical
	// messages at different positions.
	src := racyLoop + racyLoop
	res := lint.Vet("<test>", src, nil)
	b := lint.NewBaseline(res.Findings)
	var raceCount int
	for i := range b.Entries {
		if b.Entries[i].Analyzer == "race" {
			raceCount = b.Entries[i].Count
			b.Entries[i].Count = 1
		}
	}
	if raceCount != 2 {
		t.Fatalf("baseline race count = %d, want 2 (identical loops)", raceCount)
	}
	res2 := lint.Vet("<test>", src, &lint.Options{Baseline: b})
	var suppressed, loud int
	for _, f := range res2.Findings {
		if f.Analyzer != "race" {
			continue
		}
		if f.Suppressed {
			suppressed++
		} else {
			loud++
		}
	}
	if suppressed != 1 || loud != 1 {
		t.Errorf("race findings suppressed/loud = %d/%d, want 1/1", suppressed, loud)
	}
}

// TestBaselineNeverHidesFrontEnd verifies parse findings pass through a
// baseline untouched.
func TestBaselineNeverHidesFrontEnd(t *testing.T) {
	b := &lint.Baseline{Entries: []lint.BaselineEntry{{
		Analyzer: "parse", Severity: "error", Message: "anything", Count: 99,
	}}}
	res := lint.Vet("<test>", "do i = 1,\nenddo", &lint.Options{Baseline: b})
	if res.ExitCode() != 2 {
		t.Errorf("exit code = %d, want 2", res.ExitCode())
	}
	for _, f := range res.Findings {
		if f.Suppressed {
			t.Errorf("front-end finding baselined: %s", f)
		}
	}
}

// TestBaselineFileRoundTrip writes a baseline to disk and reads it back.
func TestBaselineFileRoundTrip(t *testing.T) {
	res := lint.Vet("<test>", racyLoop, nil)
	b := lint.NewBaseline(res.Findings)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.WriteBaselineFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := lint.ReadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(b.Entries) {
		t.Fatalf("round trip lost entries: %d != %d", len(got.Entries), len(b.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i] != b.Entries[i] {
			t.Errorf("entry %d differs: %+v != %+v", i, got.Entries[i], b.Entries[i])
		}
	}
}

// TestReadBaselineFileErrors verifies missing and malformed baseline files
// report errors instead of silently yielding an empty baseline.
func TestReadBaselineFileErrors(t *testing.T) {
	if _, err := lint.ReadBaselineFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file: want error")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.ReadBaselineFile(path); err == nil {
		t.Error("malformed file: want error")
	}
}
