package lint

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/problems"
)

// uninitAnalyzer reports array reads that may see never-written elements.
// The framework's facts describe the loop's steady state; the analyzer
// detects the boundary gap arithmetically: when the earliest guaranteed
// producer of a read's element lags δ* ≥ 1 iterations (must-reaching
// definitions), the first δ* iterations read elements no statement has
// written. Reads with no guaranteed producer at all are reported when a
// same-shape store exists but is conditional or mis-ordered; arrays stored
// to before the loop, and reads with no matching store anywhere (loop
// inputs), stay silent.
var uninitAnalyzer = &Analyzer{
	ID:      "uninit",
	Doc:     "array read that may see a never-written element",
	Problem: "must-reaching definitions (§3.5)",
	Default: diag.Warning,
	Run:     runUninit,
}

func runUninit(c *Context) []diag.Finding {
	res := c.result("must-reaching-defs")
	if res == nil {
		return nil
	}
	if res.FuelExhausted {
		// The degraded solution guarantees nothing, which would make every
		// read look unprotected. Stay silent; the race analyzer carries the
		// fuel blocker for the loop.
		return nil
	}
	// Earliest guaranteed producer per use.
	guaranteed := map[*ir.Ref]problems.Reuse{}
	for _, r := range problems.FindReuses(res) {
		if prev, ok := guaranteed[r.At]; !ok || r.Distance < prev.Distance {
			guaranteed[r.At] = r
		}
	}
	var out []diag.Finding
	for _, u := range c.Loop.Graph().Refs {
		if u.Kind != ir.Use || !u.Affine || u.FromInner {
			continue
		}
		if c.DefinedBefore[u.Array] {
			continue
		}
		if r, ok := guaranteed[u]; ok {
			if r.Distance >= 1 {
				f := uninitGapFinding(u, r)
				if fix, ok := uninitFix(c, u, fmt.Sprintf("%d", r.Distance)); ok {
					f.SuggestedFixes = append(f.SuggestedFixes, fix)
				}
				out = append(out, f)
			}
			continue // distance 0: written earlier in the same iteration on every path
		}
		if f, ok := uninitMayFinding(u, res); ok {
			if fix, ok := uninitFix(c, u, ast.ExprString(c.Loop.Loop.Hi)); ok {
				f.SuggestedFixes = append(f.SuggestedFixes, fix)
			}
			out = append(out, f)
		}
	}
	return out
}

// uninitGapFinding reports the boundary gap of a use whose earliest
// guaranteed producer lags r.Distance iterations: that many leading
// iterations read elements nothing in the loop has written yet.
func uninitGapFinding(u *ir.Ref, r problems.Reuse) diag.Finding {
	f := diag.Finding{
		Analyzer: "uninit",
		Pos:      u.Expr.Pos(),
		Severity: diag.Warning,
		Message: fmt.Sprintf("%s reads a possibly uninitialized element during the first %s: the earliest guaranteed store (%s) lags %s",
			ast.ExprString(u.Expr), iterations(r.Distance), r.From, iterations(r.Distance)),
		Detail: map[string]string{
			"array":    u.Array,
			"gap":      fmt.Sprintf("%d", r.Distance),
			"producer": r.From.String(),
		},
	}
	if len(r.From.Members) > 0 {
		f.Related = append(f.Related, diag.Related{
			Pos:     r.From.Members[0].Expr.Pos(),
			Message: fmt.Sprintf("earliest guaranteed store (%s)", r.From),
		})
	}
	return f
}

// uninitMayFinding handles uses with no guaranteed producer: when some
// definition class writes the same elements at a computable distance, the
// read may still see uninitialized data — the store is conditional, or
// follows the read. With no computable candidate the analyzer stays
// silent (the array is a loop input or subscripts are symbolic).
func uninitMayFinding(u *ir.Ref, res *dataflow.Result) (diag.Finding, bool) {
	var best *dataflow.Class
	bestDist := int64(-1)
	for _, cl := range res.Classes {
		if cl.Array != u.Array {
			continue
		}
		d, ok := problems.ClassDistance(cl, u)
		if !ok {
			continue
		}
		if bestDist < 0 || d < bestDist {
			bestDist, best = d, cl
		}
	}
	if best == nil {
		return diag.Finding{}, false
	}
	f := diag.Finding{
		Analyzer: "uninit",
		Pos:      u.Expr.Pos(),
		Severity: diag.Warning,
		Message: fmt.Sprintf("%s may read an uninitialized element: the matching store %s is not guaranteed to precede the read on every path",
			ast.ExprString(u.Expr), best),
		Detail: map[string]string{
			"array":             u.Array,
			"candidate":         best.String(),
			"candidateDistance": fmt.Sprintf("%d", bestDist),
		},
	}
	if len(best.Members) > 0 {
		f.Related = append(f.Related, diag.Related{
			Pos:     best.Members[0].Expr.Pos(),
			Message: fmt.Sprintf("candidate store (%s)", best),
		})
	}
	return f, true
}

// uninitFix suggests a mechanical initialization prologue: a loop inserted
// immediately above the analyzed loop that zeroes exactly the elements the
// read touches during the first `bound` iterations (the boundary gap), or
// over the full trip count for conditional-store reads. The prologue
// stores to the array before the loop, which is precisely the condition
// (DefinedBefore) under which the analyzer accepts the read — so the fix
// provably eliminates its finding and `vet -fix` converges.
func uninitFix(c *Context, u *ir.Ref, bound string) (diag.SuggestedFix, bool) {
	if c.Src == "" {
		return diag.SuggestedFix{}, false
	}
	loop := c.Loop.Loop
	line := loop.Pos().Line
	text, ok := diag.LineAt(c.Src, line)
	if !ok || !strings.HasPrefix(strings.TrimLeft(text, " \t"), "do") {
		return diag.SuggestedFix{}, false
	}
	iv := freshName(c.Program, "ii")
	subs := make([]string, len(u.Expr.Subs))
	for k, sub := range u.Expr.Subs {
		subs[k] = ast.ExprString(ast.SubstituteIdent(sub, c.Loop.Graph().IV, &ast.Ident{Name: iv}))
	}
	lines := []string{
		fmt.Sprintf("do %s = 1, %s", iv, bound),
		fmt.Sprintf("    %s[%s] := 0", u.Array, strings.Join(subs, ", ")),
		"enddo",
	}
	edit, ok := diag.InsertLinesEdit(c.Src, line, lines)
	if !ok {
		return diag.SuggestedFix{}, false
	}
	return diag.SuggestedFix{
		Message: fmt.Sprintf("initialize the elements %s reads before the loop", ast.ExprString(u.Expr)),
		Edits:   []diag.TextEdit{edit},
	}, true
}

// freshName returns base, or base with a numeric suffix, such that the
// name collides with no identifier in the program.
func freshName(prog *ast.Program, base string) string {
	used := map[string]bool{}
	ast.Inspect(prog.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			used[x.Name] = true
		case *ast.ArrayRef:
			used[x.Name] = true
		case *ast.DoLoop:
			used[x.Var] = true
		case *ast.Dim:
			used[x.Name] = true
		}
		return true
	})
	if !used[base] {
		return base
	}
	for k := 2; ; k++ {
		cand := fmt.Sprintf("%s%d", base, k)
		if !used[cand] {
			return cand
		}
	}
}
