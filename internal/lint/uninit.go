package lint

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/problems"
)

// uninitAnalyzer reports array reads that may see never-written elements.
// The framework's facts describe the loop's steady state; the analyzer
// detects the boundary gap arithmetically: when the earliest guaranteed
// producer of a read's element lags δ* ≥ 1 iterations (must-reaching
// definitions), the first δ* iterations read elements no statement has
// written. Reads with no guaranteed producer at all are reported when a
// same-shape store exists but is conditional or mis-ordered; arrays stored
// to before the loop, and reads with no matching store anywhere (loop
// inputs), stay silent.
var uninitAnalyzer = &Analyzer{
	ID:      "uninit",
	Doc:     "array read that may see a never-written element",
	Problem: "must-reaching definitions (§3.5)",
	Default: diag.Warning,
	Run:     runUninit,
}

func runUninit(c *Context) []diag.Finding {
	res := c.result("must-reaching-defs")
	if res == nil {
		return nil
	}
	// Earliest guaranteed producer per use.
	guaranteed := map[*ir.Ref]problems.Reuse{}
	for _, r := range problems.FindReuses(res) {
		if prev, ok := guaranteed[r.At]; !ok || r.Distance < prev.Distance {
			guaranteed[r.At] = r
		}
	}
	var out []diag.Finding
	for _, u := range c.Loop.Graph.Refs {
		if u.Kind != ir.Use || !u.Affine || u.FromInner {
			continue
		}
		if c.DefinedBefore[u.Array] {
			continue
		}
		if r, ok := guaranteed[u]; ok {
			if r.Distance >= 1 {
				out = append(out, uninitGapFinding(u, r))
			}
			continue // distance 0: written earlier in the same iteration on every path
		}
		if f, ok := uninitMayFinding(u, res); ok {
			out = append(out, f)
		}
	}
	return out
}

// uninitGapFinding reports the boundary gap of a use whose earliest
// guaranteed producer lags r.Distance iterations: that many leading
// iterations read elements nothing in the loop has written yet.
func uninitGapFinding(u *ir.Ref, r problems.Reuse) diag.Finding {
	f := diag.Finding{
		Analyzer: "uninit",
		Pos:      u.Expr.Pos(),
		Severity: diag.Warning,
		Message: fmt.Sprintf("%s reads a possibly uninitialized element during the first %s: the earliest guaranteed store (%s) lags %s",
			ast.ExprString(u.Expr), iterations(r.Distance), r.From, iterations(r.Distance)),
		Detail: map[string]string{
			"array":    u.Array,
			"gap":      fmt.Sprintf("%d", r.Distance),
			"producer": r.From.String(),
		},
	}
	if len(r.From.Members) > 0 {
		f.Related = append(f.Related, diag.Related{
			Pos:     r.From.Members[0].Expr.Pos(),
			Message: fmt.Sprintf("earliest guaranteed store (%s)", r.From),
		})
	}
	return f
}

// uninitMayFinding handles uses with no guaranteed producer: when some
// definition class writes the same elements at a computable distance, the
// read may still see uninitialized data — the store is conditional, or
// follows the read. With no computable candidate the analyzer stays
// silent (the array is a loop input or subscripts are symbolic).
func uninitMayFinding(u *ir.Ref, res *dataflow.Result) (diag.Finding, bool) {
	var best *dataflow.Class
	bestDist := int64(-1)
	for _, cl := range res.Classes {
		if cl.Array != u.Array {
			continue
		}
		d, ok := problems.ClassDistance(cl, u)
		if !ok {
			continue
		}
		if bestDist < 0 || d < bestDist {
			bestDist, best = d, cl
		}
	}
	if best == nil {
		return diag.Finding{}, false
	}
	f := diag.Finding{
		Analyzer: "uninit",
		Pos:      u.Expr.Pos(),
		Severity: diag.Warning,
		Message: fmt.Sprintf("%s may read an uninitialized element: the matching store %s is not guaranteed to precede the read on every path",
			ast.ExprString(u.Expr), best),
		Detail: map[string]string{
			"array":             u.Array,
			"candidate":         best.String(),
			"candidateDistance": fmt.Sprintf("%d", bestDist),
		},
	}
	if len(best.Members) > 0 {
		f.Related = append(f.Related, diag.Related{
			Pos:     best.Members[0].Expr.Pos(),
			Message: fmt.Sprintf("candidate store (%s)", best),
		})
	}
	return f, true
}
