package lint

import (
	"errors"
	"fmt"

	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/token"
)

// VetResult is the outcome of a full source-to-findings pipeline run.
type VetResult struct {
	File string
	// Src is the source text the findings refer to.
	Src      string
	Findings []diag.Finding
	// Analysis is the underlying whole-program analysis; nil when the
	// front end rejected the source.
	Analysis *driver.ProgramAnalysis
	// FrontEndFailed marks a parse, semantic, or internal analysis failure
	// — the source could not be fully analyzed.
	FrontEndFailed bool
	// Suppressed counts findings silenced by //lint:ignore directives;
	// Baselined counts findings silenced by the baseline.
	Suppressed int
	Baselined  int
	// Werror records whether warnings count as errors for ExitCode.
	Werror bool
}

// ExitCode returns the process status under the documented contract:
//
//	0 — the analysis ran and reported no (unsuppressed) error findings
//	1 — the analysis ran and reported error findings (warnings too under
//	    -werror)
//	2 — the front end or the analysis itself failed; findings are
//	    incomplete
//
// Suppressed and baselined findings never affect the exit code.
func (r *VetResult) ExitCode() int {
	if r.FrontEndFailed {
		return 2
	}
	threshold := diag.Error
	if r.Werror {
		threshold = diag.Warning
	}
	for _, f := range r.Findings {
		if !f.Suppressed && f.Severity >= threshold {
			return 1
		}
	}
	return 0
}

// Vet runs the complete pipeline — parse, semantic check, normalization,
// data flow analysis, analyzers, suppressions, baseline — over source
// text. Front-end failures become error findings with analyzer IDs
// "parse" and "sema" (every error is reported, each with its source
// position) and set FrontEndFailed; the analyzers run only on a clean
// front end.
func Vet(file, src string, opts *Options) *VetResult {
	if opts == nil {
		opts = &Options{}
	}
	o := *opts
	o.Src = src
	res := &VetResult{File: file, Src: src, Werror: o.Werror}
	fail := func(analyzer string, err error) *VetResult {
		res.Findings = frontEndFindings(analyzer, err)
		res.FrontEndFailed = true
		diag.Sort(res.Findings)
		return res
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return fail("parse", err)
	}
	if _, errs := sema.CheckAll(prog); len(errs) > 0 {
		for _, err := range errs {
			res.Findings = append(res.Findings, frontEndFindings("sema", err)...)
		}
		res.FrontEndFailed = true
		diag.Sort(res.Findings)
		return res
	}
	norm, err := sema.Normalize(prog)
	if err != nil {
		return fail("sema", err)
	}
	findings, pa, err := Run(file, norm, &o)
	if err != nil {
		return fail("sema", err)
	}
	findings = ApplySuppressions(findings, norm.Directives)
	for _, f := range findings {
		if f.Suppressed {
			res.Suppressed++
		}
	}
	res.Baselined = o.Baseline.Apply(findings)
	res.Findings = findings
	res.Analysis = pa
	return res
}

// maxFixRounds bounds the apply/re-analyze loop in Fix. Each round applies
// at least one fix, and every suggested fix eliminates its finding, so the
// loop ordinarily terminates well before the bound.
const maxFixRounds = 8

// FixOutcome summarizes a Fix run.
type FixOutcome struct {
	// Src is the source after all applied fixes.
	Src string
	// Applied is the total number of fixes applied across rounds; Rounds
	// counts the apply/re-analyze iterations that applied at least one.
	Applied int
	Rounds  int
	// Result is the vet result of the final (fixed) source.
	Result *VetResult
}

// Fix repeatedly applies the suggested fixes of vet findings and
// re-analyzes until no applicable fix remains, so a subsequent `vet -fix`
// run is a no-op. Conflicting fixes deferred by one round are picked up by
// the next. The front end failing on the original source stops the run
// with an error; fixes never apply to unanalyzable source.
func Fix(file, src string, opts *Options) (*FixOutcome, error) {
	out := &FixOutcome{Src: src}
	for round := 0; ; round++ {
		res := Vet(file, out.Src, opts)
		out.Result = res
		if res.FrontEndFailed {
			if round == 0 {
				return nil, fmt.Errorf("%s: source does not analyze; not applying fixes", file)
			}
			return nil, fmt.Errorf("%s: applied fixes broke the front end (round %d) — this is a bug", file, round)
		}
		if round >= maxFixRounds {
			break
		}
		fr := diag.ApplyFixes(out.Src, res.Findings)
		if fr.Applied == 0 {
			break
		}
		out.Src = fr.Src
		out.Applied += fr.Applied
		out.Rounds++
	}
	return out, nil
}

// frontEndFindings converts parser/sema errors into findings, preserving
// each error's own position. Errors without one anchor at 1:1.
func frontEndFindings(analyzer string, err error) []diag.Finding {
	var out []diag.Finding
	add := func(pos token.Pos, msg string) {
		if !pos.IsValid() {
			pos = token.Pos{Line: 1, Col: 1}
		}
		out = append(out, diag.Finding{Analyzer: analyzer, Pos: pos, Severity: diag.Error, Message: msg})
	}
	var pl parser.ErrorList
	var pe *parser.Error
	var se *sema.Error
	switch {
	case errors.As(err, &pl):
		for _, e := range pl {
			add(e.Pos, e.Msg)
		}
	case errors.As(err, &pe):
		add(pe.Pos, pe.Msg)
	case errors.As(err, &se):
		add(se.Pos, se.Msg)
	default:
		add(token.Pos{}, err.Error())
	}
	return out
}
