package lint

import (
	"errors"

	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/token"
)

// VetResult is the outcome of a full source-to-findings pipeline run.
type VetResult struct {
	File     string
	Findings []diag.Finding
	// Analysis is the underlying whole-program analysis; nil when the
	// front end rejected the source.
	Analysis *driver.ProgramAnalysis
}

// ExitCode returns the conventional process status for the findings:
// 1 when any error-severity finding is present, 0 otherwise.
func (r *VetResult) ExitCode() int {
	if sev, ok := diag.MaxSeverity(r.Findings); ok && sev >= diag.Error {
		return 1
	}
	return 0
}

// Vet runs the complete pipeline — parse, semantic check, normalization,
// data flow analysis, analyzers — over source text. Front-end failures
// become error findings with analyzer IDs "parse" and "sema" (every error
// is reported, each with its source position); the analyzers run only on a
// clean front end.
func Vet(file, src string, opts *Options) *VetResult {
	res := &VetResult{File: file}
	prog, err := parser.Parse(src)
	if err != nil {
		res.Findings = frontEndFindings("parse", err)
		diag.Sort(res.Findings)
		return res
	}
	if _, errs := sema.CheckAll(prog); len(errs) > 0 {
		for _, err := range errs {
			res.Findings = append(res.Findings, frontEndFindings("sema", err)...)
		}
		diag.Sort(res.Findings)
		return res
	}
	norm, err := sema.Normalize(prog)
	if err != nil {
		res.Findings = frontEndFindings("sema", err)
		diag.Sort(res.Findings)
		return res
	}
	findings, pa, err := Run(file, norm, opts)
	if err != nil {
		res.Findings = frontEndFindings("sema", err)
		diag.Sort(res.Findings)
		return res
	}
	res.Findings = findings
	res.Analysis = pa
	return res
}

// frontEndFindings converts parser/sema errors into findings, preserving
// each error's own position. Errors without one anchor at 1:1.
func frontEndFindings(analyzer string, err error) []diag.Finding {
	var out []diag.Finding
	add := func(pos token.Pos, msg string) {
		if !pos.IsValid() {
			pos = token.Pos{Line: 1, Col: 1}
		}
		out = append(out, diag.Finding{Analyzer: analyzer, Pos: pos, Severity: diag.Error, Message: msg})
	}
	var pl parser.ErrorList
	var pe *parser.Error
	var se *sema.Error
	switch {
	case errors.As(err, &pl):
		for _, e := range pl {
			add(e.Pos, e.Msg)
		}
	case errors.As(err, &pe):
		add(pe.Pos, pe.Msg)
	case errors.As(err, &se):
		add(se.Pos, se.Msg)
	default:
		add(token.Pos{}, err.Error())
	}
	return out
}
