// Package machine executes three-address code from internal/tac on an
// abstract load/store architecture and reports a detailed cost breakdown.
//
// The paper motivates its optimizations with the memory traffic of array
// references on sequential and fine-grained parallel machines of its era
// (pipelined/superscalar/VLIW, e.g. the Cydra 5 of §4.1.4). Absent that
// hardware, this machine is the measurement substrate: loads and stores
// carry a configurable latency, everything else a unit cost, so "who wins
// and by how much" is directly comparable to the paper's claims about
// avoided loads/stores.
package machine

import (
	"fmt"

	"repro/internal/tac"
)

// Costs assigns cycle costs per instruction category.
type Costs struct {
	Load   int64
	Store  int64
	ALU    int64
	Mul    int64 // multiply/divide/modulo (multi-cycle on era hardware)
	Move   int64
	Branch int64
}

// DefaultCosts reflects an early-90s RISC with a small cache: memory ops
// and integer multiplies cost several cycles, simple register ops one.
func DefaultCosts() Costs {
	return Costs{Load: 4, Store: 4, ALU: 1, Mul: 4, Move: 1, Branch: 1}
}

// Memory is the array storage: per array, a sparse map from linearized
// address to value.
type Memory struct {
	Arrays map[string]map[int64]int64
}

// NewMemory returns empty memory.
func NewMemory() *Memory { return &Memory{Arrays: map[string]map[int64]int64{}} }

// Set writes one element.
func (m *Memory) Set(array string, addr, v int64) {
	a := m.Arrays[array]
	if a == nil {
		a = map[int64]int64{}
		m.Arrays[array] = a
	}
	a[addr] = v
}

// Get reads one element (default 0).
func (m *Memory) Get(array string, addr int64) int64 { return m.Arrays[array][addr] }

// Clone deep-copies memory.
func (m *Memory) Clone() *Memory {
	out := NewMemory()
	for a, mm := range m.Arrays {
		ca := make(map[int64]int64, len(mm))
		for k, v := range mm {
			ca[k] = v
		}
		out.Arrays[a] = ca
	}
	return out
}

// Equal compares two memories treating absent elements as zero.
func (m *Memory) Equal(o *Memory) bool {
	names := map[string]bool{}
	for a := range m.Arrays {
		names[a] = true
	}
	for a := range o.Arrays {
		names[a] = true
	}
	for a := range names {
		keys := map[int64]bool{}
		for k := range m.Arrays[a] {
			keys[k] = true
		}
		for k := range o.Arrays[a] {
			keys[k] = true
		}
		for k := range keys {
			if m.Get(a, k) != o.Get(a, k) {
				return false
			}
		}
	}
	return true
}

// Result reports execution statistics.
type Result struct {
	// Loads and Stores count memory operations per array.
	Loads  map[string]int64
	Stores map[string]int64
	// OpCounts counts executed instructions per opcode.
	OpCounts map[tac.Op]int64
	// Cycles is the total cost under the configured Costs.
	Cycles int64
	// Steps is the number of executed instructions.
	Steps int64
	// Regs holds the final register file, indexed like Prog.RegNames.
	Regs []int64
}

// TotalLoads sums loads over arrays.
func (r *Result) TotalLoads() int64 {
	var n int64
	for _, v := range r.Loads {
		n += v
	}
	return n
}

// TotalStores sums stores over arrays.
func (r *Result) TotalStores() int64 {
	var n int64
	for _, v := range r.Stores {
		n += v
	}
	return n
}

// Options configures a run.
type Options struct {
	Costs Costs
	// MaxSteps caps execution (default 200 million).
	MaxSteps int64
	// InitRegs sets named registers before execution (loop bounds, scalar
	// parameters).
	InitRegs map[string]int64
}

// Run executes the program against memory (mutated in place).
func Run(p *tac.Prog, mem *Memory, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{Costs: DefaultCosts()}
	}
	costs := opts.Costs
	if costs == (Costs{}) {
		costs = DefaultCosts()
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200_000_000
	}
	if mem == nil {
		mem = NewMemory()
	}

	res := &Result{
		Loads:    map[string]int64{},
		Stores:   map[string]int64{},
		OpCounts: map[tac.Op]int64{},
		Regs:     make([]int64, p.NumRegs()),
	}
	for name, v := range opts.InitRegs {
		found := false
		for i, rn := range p.RegNames {
			if rn == name {
				res.Regs[i] = v
				found = true
				break
			}
		}
		if !found {
			// A register the program never mentions is not an error — the
			// caller initializes a superset of parameters.
			continue
		}
	}

	regs := res.Regs
	pc := 0
	for {
		if pc < 0 || pc >= len(p.Instrs) {
			return res, fmt.Errorf("machine: pc out of range: %d", pc)
		}
		in := p.Instrs[pc]
		res.Steps++
		if res.Steps > maxSteps {
			return res, fmt.Errorf("machine: step limit exceeded at pc %d", pc)
		}
		res.OpCounts[in.Op]++

		switch in.Op {
		case tac.Nop:
			res.Cycles += costs.ALU
		case tac.Li:
			regs[in.Dst] = in.Imm
			res.Cycles += costs.ALU
		case tac.Mov:
			regs[in.Dst] = regs[in.Src1]
			res.Cycles += costs.Move
		case tac.Add:
			regs[in.Dst] = regs[in.Src1] + regs[in.Src2]
			res.Cycles += costs.ALU
		case tac.Sub:
			regs[in.Dst] = regs[in.Src1] - regs[in.Src2]
			res.Cycles += costs.ALU
		case tac.Mul:
			regs[in.Dst] = regs[in.Src1] * regs[in.Src2]
			res.Cycles += mulCost(costs)
		case tac.Div:
			if regs[in.Src2] == 0 {
				return res, fmt.Errorf("machine: division by zero at pc %d", pc)
			}
			regs[in.Dst] = regs[in.Src1] / regs[in.Src2]
			res.Cycles += mulCost(costs)
		case tac.Mod:
			if regs[in.Src2] == 0 {
				return res, fmt.Errorf("machine: modulo by zero at pc %d", pc)
			}
			regs[in.Dst] = regs[in.Src1] % regs[in.Src2]
			res.Cycles += mulCost(costs)
		case tac.Neg:
			regs[in.Dst] = -regs[in.Src1]
			res.Cycles += costs.ALU
		case tac.Not:
			if regs[in.Src1] == 0 {
				regs[in.Dst] = 1
			} else {
				regs[in.Dst] = 0
			}
			res.Cycles += costs.ALU
		case tac.CmpEQ:
			regs[in.Dst] = b2i(regs[in.Src1] == regs[in.Src2])
			res.Cycles += costs.ALU
		case tac.CmpNE:
			regs[in.Dst] = b2i(regs[in.Src1] != regs[in.Src2])
			res.Cycles += costs.ALU
		case tac.CmpLT:
			regs[in.Dst] = b2i(regs[in.Src1] < regs[in.Src2])
			res.Cycles += costs.ALU
		case tac.CmpLE:
			regs[in.Dst] = b2i(regs[in.Src1] <= regs[in.Src2])
			res.Cycles += costs.ALU
		case tac.CmpGT:
			regs[in.Dst] = b2i(regs[in.Src1] > regs[in.Src2])
			res.Cycles += costs.ALU
		case tac.CmpGE:
			regs[in.Dst] = b2i(regs[in.Src1] >= regs[in.Src2])
			res.Cycles += costs.ALU
		case tac.Load:
			regs[in.Dst] = mem.Get(in.Array, regs[in.Src1])
			res.Loads[in.Array]++
			res.Cycles += costs.Load
		case tac.Store:
			mem.Set(in.Array, regs[in.Src1], regs[in.Src2])
			res.Stores[in.Array]++
			res.Cycles += costs.Store
		case tac.Beqz:
			res.Cycles += costs.Branch
			if regs[in.Src1] == 0 {
				pc = in.Target
				continue
			}
		case tac.Bnez:
			res.Cycles += costs.Branch
			if regs[in.Src1] != 0 {
				pc = in.Target
				continue
			}
		case tac.Jmp:
			res.Cycles += costs.Branch
			pc = in.Target
			continue
		case tac.Halt:
			return res, nil
		default:
			return res, fmt.Errorf("machine: bad opcode %v at pc %d", in.Op, pc)
		}
		pc++
	}
}

// mulCost falls back to the ALU cost when Mul is unset, keeping older
// custom cost structs meaningful.
func mulCost(c Costs) int64 {
	if c.Mul > 0 {
		return c.Mul
	}
	return c.ALU
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
