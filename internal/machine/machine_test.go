package machine

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/tac"
)

func compile(t *testing.T, src string, opts *tac.GenOptions) *tac.Prog {
	t.Helper()
	prog := parser.MustParse(src)
	p, err := tac.Gen(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStraightLine(t *testing.T) {
	p := compile(t, "a := 2 + 3 * 4", nil)
	res, err := Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range p.RegNames {
		if name == "a" && res.Regs[i] != 14 {
			t.Fatalf("a = %d, want 14", res.Regs[i])
		}
	}
}

func regValue(t *testing.T, p *tac.Prog, res *Result, name string) int64 {
	t.Helper()
	for i, rn := range p.RegNames {
		if rn == name {
			return res.Regs[i]
		}
	}
	t.Fatalf("register %q not found", name)
	return 0
}

func TestLoopAndMemory(t *testing.T) {
	p := compile(t, `
do i = 1, 10
  A[i] := i * 2
enddo
s := A[7]
`, nil)
	mem := NewMemory()
	res, err := Run(p, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.Get("A", 7); got != 14 {
		t.Fatalf("A[7] = %d, want 14", got)
	}
	if got := regValue(t, p, res, "s"); got != 14 {
		t.Fatalf("s = %d, want 14", got)
	}
	if res.Stores["A"] != 10 || res.Loads["A"] != 1 {
		t.Fatalf("stores/loads = %d/%d, want 10/1", res.Stores["A"], res.Loads["A"])
	}
}

func TestInitRegs(t *testing.T) {
	p := compile(t, `
do i = 1, N
  A[i] := X
enddo
`, nil)
	mem := NewMemory()
	res, err := Run(p, mem, &Options{InitRegs: map[string]int64{"N": 5, "X": 42}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stores["A"] != 5 || mem.Get("A", 3) != 42 {
		t.Fatalf("stores=%d A[3]=%d", res.Stores["A"], mem.Get("A", 3))
	}
}

func TestConditionalBranches(t *testing.T) {
	p := compile(t, `
do i = 1, 10
  if i % 2 == 0 then
    A[i] := 1
  else
    A[i] := 2
  endif
enddo
`, nil)
	mem := NewMemory()
	if _, err := Run(p, mem, nil); err != nil {
		t.Fatal(err)
	}
	if mem.Get("A", 4) != 1 || mem.Get("A", 5) != 2 {
		t.Fatalf("A[4]=%d A[5]=%d", mem.Get("A", 4), mem.Get("A", 5))
	}
}

func TestCyclesAccounting(t *testing.T) {
	p := compile(t, `
do i = 1, 100
  A[i] := A[i] + 1
enddo
`, nil)
	res, err := Run(p, NewMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	costs := DefaultCosts()
	memCycles := (res.TotalLoads() + res.TotalStores()) * costs.Load
	if res.Cycles <= memCycles {
		t.Fatalf("cycles = %d, must exceed pure memory cost %d", res.Cycles, memCycles)
	}
	if res.Loads["A"] != 100 || res.Stores["A"] != 100 {
		t.Fatalf("loads/stores = %d/%d", res.Loads["A"], res.Stores["A"])
	}
}

func TestCostModelAffectsCycles(t *testing.T) {
	p := compile(t, `
do i = 1, 50
  A[i] := A[i] + 1
enddo
`, nil)
	cheap, err := Run(p, NewMemory(), &Options{Costs: Costs{Load: 1, Store: 1, ALU: 1, Move: 1, Branch: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dear, err := Run(p, NewMemory(), &Options{Costs: Costs{Load: 20, Store: 20, ALU: 1, Move: 1, Branch: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if dear.Cycles <= cheap.Cycles {
		t.Fatal("expensive memory model must cost more")
	}
}

func TestMultiDimAddressing(t *testing.T) {
	p := compile(t, `
do j = 1, 3
  do i = 1, 3
    X[i, j] := i * 10 + j
  enddo
enddo
y := X[2, 3]
`, &tac.GenOptions{Dims: map[string][]int64{"X": {8, 8}}})
	mem := NewMemory()
	res, err := Run(p, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := regValue(t, p, res, "y"); got != 23 {
		t.Fatalf("y = %d, want 23", got)
	}
	// Row-major: X[2,3] at address 2*8+3 = 19.
	if got := mem.Get("X", 19); got != 23 {
		t.Fatalf("X@19 = %d, want 23", got)
	}
}

func TestPipelineHooks(t *testing.T) {
	// Hand-built pipeline for  A[i+2] := A[i] + X  (paper Fig. 5 (iii)):
	// three stages pipe0..pipe2; the use A[i] reads pipe2; the def enters
	// pipe0; shifts at end of body; preheader loads A[2] and A[1].
	prog := parser.MustParse(`
do i = 1, 1000
  A[i+2] := A[i] + X
enddo
`)
	loop := prog.Body[0].(*ast.DoLoop)
	assign := loop.Body[0].(*ast.Assign)
	def := assign.LHS.(*ast.ArrayRef)
	use := assign.RHS.(*ast.Binary).L.(*ast.ArrayRef)

	opts := &tac.GenOptions{
		LoadFrom: map[*ast.ArrayRef]string{use: "pipe2"},
		CopyTo:   map[*ast.ArrayRef]string{def: "pipe0"},
		Shifts: map[int][]tac.RegMove{loop.Label: {
			{Dst: "pipe2", Src: "pipe1"},
			{Dst: "pipe1", Src: "pipe0"},
		}},
		Preheader: map[int][]tac.Preload{loop.Label: {
			{Reg: "pipe1", Array: "A", Index: &ast.IntLit{Value: 2}},
			{Reg: "pipe2", Array: "A", Index: &ast.IntLit{Value: 1}},
		}},
	}
	p, err := tac.Gen(prog, opts)
	if err != nil {
		t.Fatal(err)
	}

	mem := NewMemory()
	mem.Set("A", 1, 100)
	mem.Set("A", 2, 200)
	res, err := Run(p, mem, &Options{InitRegs: map[string]int64{"X": 1}})
	if err != nil {
		t.Fatal(err)
	}
	// No loads of A inside the loop: only the 2 preheader loads.
	if res.Loads["A"] != 2 {
		t.Fatalf("A loads = %d, want 2 (preheader only)\n%s", res.Loads["A"], p)
	}
	if res.Stores["A"] != 1000 {
		t.Fatalf("A stores = %d, want 1000", res.Stores["A"])
	}

	// Semantics must match the unoptimized run.
	plain, err := tac.Gen(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	memPlain := NewMemory()
	memPlain.Set("A", 1, 100)
	memPlain.Set("A", 2, 200)
	if _, err := Run(plain, memPlain, &Options{InitRegs: map[string]int64{"X": 1}}); err != nil {
		t.Fatal(err)
	}
	if !mem.Equal(memPlain) {
		t.Fatal("pipelined execution diverges from plain execution")
	}
}

func TestSkipStore(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 10
  A[i] := 1
  B[i] := 2
enddo
`)
	loop := prog.Body[0].(*ast.DoLoop)
	bDef := loop.Body[1].(*ast.Assign).LHS.(*ast.ArrayRef)
	p, err := tac.Gen(prog, &tac.GenOptions{SkipStore: map[*ast.ArrayRef]bool{bDef: true}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, NewMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stores["A"] != 10 || res.Stores["B"] != 0 {
		t.Fatalf("stores A=%d B=%d, want 10/0", res.Stores["A"], res.Stores["B"])
	}
}

func TestHaltRequired(t *testing.T) {
	p := &tac.Prog{Instrs: []tac.Instr{{Op: tac.Nop, Dst: -1, Src1: -1, Src2: -1}}}
	if _, err := Run(p, nil, nil); err == nil {
		t.Fatal("running off the end must error")
	}
}

func TestStepLimit(t *testing.T) {
	p := compile(t, "do i = 1, 100000\n A[1] := i\nenddo", nil)
	if _, err := Run(p, nil, &Options{MaxSteps: 500}); err == nil {
		t.Fatal("expected step limit error")
	}
}

func TestDisassembly(t *testing.T) {
	p := compile(t, "do i = 1, 3\n A[i] := A[i] + 1\nenddo", nil)
	s := p.String()
	for _, want := range []string{"load", "store", "jmp", "halt", "A("} {
		if !contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
