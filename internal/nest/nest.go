// Package nest extends the framework to tight loop nests, the paper's §6
// "currently investigating" item: recurrences that arise with respect to
// multiple induction variables simultaneously, expressed as distance
// vectors (δ_outer, δ_inner).
//
// The motivating example is Figure 4's statement (3),
// Z[i+1, j] := Z[i, j−1]: its linearized subscripts differ by N+1, which is
// divisible neither by the i-stride N (symbolically) nor equal to a
// constant multiple of the j-stride 1 without involving N — so both
// single-loop analyses miss it, while the vector (1, 1) solves
// δi·N + δj·1 = N+1 exactly.
package nest

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/poly"
	"repro/internal/sema"
)

// Vector is an iteration distance vector over a two-level nest.
type Vector struct {
	Outer, Inner int64
}

// String renders "(o, i)".
func (v Vector) String() string { return fmt.Sprintf("(%d, %d)", v.Outer, v.Inner) }

// LexPositive reports whether the vector is lexicographically positive —
// the condition for a loop-carried recurrence.
func (v Vector) LexPositive() bool {
	return v.Outer > 0 || (v.Outer == 0 && v.Inner > 0)
}

// IsZero reports the all-zero vector (loop-independent).
func (v Vector) IsZero() bool { return v.Outer == 0 && v.Inner == 0 }

// Recurrence is a cross-iteration value relation inside a tight nest.
type Recurrence struct {
	Array    string
	From, To *ast.ArrayRef
	Vec      Vector
	// Kind is flow, anti or output by the def/use pattern of (From, To).
	Kind string
	// FoundBySingleLoop records whether the single-loop analyses (wrt the
	// inner or the outer induction variable alone, per paper §3.6) would
	// also discover this recurrence.
	FoundBySingleLoop bool
}

// String renders the recurrence.
func (r Recurrence) String() string {
	return fmt.Sprintf("%s %s -> %s vector %s", r.Kind,
		ast.ExprString(r.From), ast.ExprString(r.To), r.Vec)
}

type refInfo struct {
	expr  *ast.ArrayRef
	isDef bool
	// aOuter, aInner, b: linearized subscript = aOuter·j + aInner·i + b.
	aOuter, aInner, b poly.Poly
}

// FindRecurrences analyzes a tight two-level nest: outer must contain
// exactly one statement, the inner loop. It returns every recurrence
// between subscripted references with a constant distance vector within
// the search bound (|δ| ≤ maxDist per component).
func FindRecurrences(outer *ast.DoLoop, maxDist int64) ([]Recurrence, error) {
	if maxDist <= 0 {
		maxDist = 8
	}
	inner, ok := tightInner(outer)
	if !ok {
		return nil, fmt.Errorf("nest: loop %s is not a tight two-level nest", outer.Var)
	}

	refs, err := collectRefs(inner.Body, outer.Var, inner.Var)
	if err != nil {
		return nil, err
	}

	var out []Recurrence
	for _, from := range refs {
		for _, to := range refs {
			if from.expr.Name != to.expr.Name {
				continue
			}
			if !from.isDef && !to.isDef {
				continue
			}
			if !from.aOuter.Equal(to.aOuter) || !from.aInner.Equal(to.aInner) {
				continue // different linear parts: no constant vector
			}
			db := from.b.Sub(to.b)
			vec, found := solveVector(from.aOuter, from.aInner, db, maxDist)
			if !found {
				continue
			}
			if !vec.LexPositive() {
				continue
			}
			r := Recurrence{
				Array: from.expr.Name,
				From:  from.expr, To: to.expr,
				Vec:  vec,
				Kind: kind(from.isDef, to.isDef),
			}
			r.FoundBySingleLoop = singleLoopFinds(from, to, outer.Var, inner.Var)
			out = append(out, r)
		}
	}
	return out, nil
}

func tightInner(outer *ast.DoLoop) (*ast.DoLoop, bool) {
	if len(outer.Body) != 1 {
		return nil, false
	}
	inner, ok := outer.Body[0].(*ast.DoLoop)
	return inner, ok
}

func collectRefs(body []ast.Stmt, outerIV, innerIV string) ([]refInfo, error) {
	var out []refInfo
	var err error
	add := func(expr *ast.ArrayRef, isDef bool) {
		lin, e := sema.Linearize(expr, sema.DefaultDims(expr.Name, len(expr.Subs)))
		if e != nil {
			return // non-affine references do not form constant vectors
		}
		aO, rest, ok1 := lin.CoeffOf(outerIV)
		if !ok1 {
			return
		}
		aI, b, ok2 := rest.CoeffOf(innerIV)
		if !ok2 {
			return
		}
		// The coefficient of the outer IV may itself mention the inner IV
		// (non-separable); skip those.
		for _, s := range aO.Symbols() {
			if s == innerIV {
				return
			}
		}
		out = append(out, refInfo{expr: expr, isDef: isDef, aOuter: aO, aInner: aI, b: b})
	}
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.Assign:
				collectUses(st.RHS, func(r *ast.ArrayRef) { add(r, false) })
				if lhs, ok := st.LHS.(*ast.ArrayRef); ok {
					add(lhs, true)
				}
			case *ast.If:
				collectUses(st.Cond, func(r *ast.ArrayRef) { add(r, false) })
				walk(st.Then)
				walk(st.Else)
			case *ast.DoLoop:
				err = fmt.Errorf("nest: deeper nesting not supported")
			}
		}
	}
	walk(body)
	return out, err
}

func collectUses(e ast.Expr, f func(*ast.ArrayRef)) {
	ast.InspectExpr(e, func(n ast.Node) bool {
		if r, ok := n.(*ast.ArrayRef); ok {
			f(r)
			return false
		}
		return true
	})
}

// solveVector finds integer (δo, δi) with δo·aOuter + δi·aInner = db,
// |δ| ≤ maxDist, preferring the lexicographically smallest nonnegative
// solution. Polynomials keep symbolic strides exact: candidate δi values
// are scanned and the residue checked for exact divisibility by aOuter.
func solveVector(aOuter, aInner, db poly.Poly, maxDist int64) (Vector, bool) {
	var best Vector
	found := false
	better := func(v Vector) bool {
		if !found {
			return true
		}
		if v.Outer != best.Outer {
			return v.Outer < best.Outer
		}
		return v.Inner < best.Inner
	}
	for di := -maxDist; di <= maxDist; di++ {
		rem := db.Sub(aInner.MulConst(di))
		if rem.IsZero() {
			v := Vector{Outer: 0, Inner: di}
			if (v.LexPositive() || v.IsZero()) && better(v) {
				best, found = v, true
			}
			continue
		}
		q, ok := rem.DivExact(aOuter)
		if !ok {
			continue
		}
		do, isConst := q.IsConst()
		if !isConst || do < -maxDist || do > maxDist {
			continue
		}
		v := Vector{Outer: do, Inner: di}
		if (v.LexPositive() || v.IsZero()) && better(v) {
			best, found = v, true
		}
	}
	return best, found
}

// singleLoopFinds reports whether one of the two §3.6 single-loop analyses
// would discover the recurrence: the distance must be a constant multiple
// of one stride with the other induction variable matching symbolically.
func singleLoopFinds(from, to refInfo, outerIV, innerIV string) bool {
	db := from.b.Sub(to.b)
	// With respect to the inner loop (outer IV symbolic): the whole
	// subscript difference including the outer term must divide by aInner.
	dbWithOuter := db // b already excludes both IV terms; outer terms equal ⇒ cancel
	if q, ok := dbWithOuter.DivExact(from.aInner); ok {
		if _, isC := q.IsConst(); isC {
			return true
		}
	}
	if q, ok := dbWithOuter.DivExact(from.aOuter); ok {
		if _, isC := q.IsConst(); isC {
			return true
		}
	}
	_ = outerIV
	_ = innerIV
	return false
}

func kind(fromDef, toDef bool) string {
	switch {
	case fromDef && toDef:
		return "output"
	case fromDef:
		return "flow"
	default:
		return "anti"
	}
}
