package nest

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// fig4 is the nest of the paper's Figure 4.
const fig4 = `
do j = 1, UB
  do i = 1, UB1
    X[i+1, j] := X[i, j]
    Y[i, j+1] := Y[i, j-1]
    Z[i+1, j] := Z[i, j-1]
  enddo
enddo
`

func parseNest(t *testing.T, src string) *ast.DoLoop {
	t.Helper()
	prog := parser.MustParse(src)
	return prog.Body[0].(*ast.DoLoop)
}

// findFlow returns the flow recurrence for the named array.
func findFlow(rs []Recurrence, array string) *Recurrence {
	for i := range rs {
		if rs[i].Array == array && rs[i].Kind == "flow" {
			return &rs[i]
		}
	}
	return nil
}

// TestFig4Vectors reproduces §3.6 completely:
//   - X carries (0, 1): found by the inner single-loop analysis;
//   - Y carries (2, 0): found by the outer single-loop analysis;
//   - Z carries (1, 1): found by NO single-loop analysis, only by the
//     distance-vector extension.
func TestFig4Vectors(t *testing.T) {
	outer := parseNest(t, fig4)
	rs, err := FindRecurrences(outer, 8)
	if err != nil {
		t.Fatal(err)
	}

	x := findFlow(rs, "X")
	if x == nil || x.Vec != (Vector{Outer: 0, Inner: 1}) {
		t.Errorf("X recurrence = %v, want (0, 1)", x)
	}
	if x != nil && !x.FoundBySingleLoop {
		t.Errorf("X recurrence must be discoverable by single-loop analysis")
	}

	y := findFlow(rs, "Y")
	if y == nil || y.Vec != (Vector{Outer: 2, Inner: 0}) {
		t.Errorf("Y recurrence = %v, want (2, 0)", y)
	}
	if y != nil && !y.FoundBySingleLoop {
		t.Errorf("Y recurrence must be discoverable by single-loop analysis (wrt j)")
	}

	z := findFlow(rs, "Z")
	if z == nil || z.Vec != (Vector{Outer: 1, Inner: 1}) {
		t.Errorf("Z recurrence = %v, want (1, 1)", z)
	}
	if z != nil && z.FoundBySingleLoop {
		t.Errorf("Z recurrence must NOT be discoverable by single-loop analysis (paper §3.6)")
	}
}

func TestVectorOrdering(t *testing.T) {
	if !(Vector{0, 1}).LexPositive() || !(Vector{1, -3}).LexPositive() {
		t.Error("lexicographic positivity wrong")
	}
	if (Vector{0, 0}).LexPositive() || (Vector{-1, 2}).LexPositive() {
		t.Error("non-positive vectors accepted")
	}
	if !(Vector{0, 0}).IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestAntiAndOutputKinds(t *testing.T) {
	outer := parseNest(t, `
do j = 1, M
  do i = 1, N
    W[i, j] := W[i+1, j] + 1
  enddo
enddo
`)
	rs, err := FindRecurrences(outer, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Use W[i+1,j] at (j,i) reads what def W[i,j] writes at (j, i+1):
	// def@(j,i') overlaps use@(j,i) when i' = i+1, i.e. the use precedes
	// the def by (0,1): an anti dependence with vector (0,1).
	foundAnti := false
	for _, r := range rs {
		if r.Kind == "anti" && r.Vec == (Vector{0, 1}) {
			foundAnti = true
		}
	}
	if !foundAnti {
		t.Errorf("anti recurrence (0,1) missing: %v", rs)
	}
}

func TestRejectsNonTightNest(t *testing.T) {
	outer := parseNest(t, `
do j = 1, M
  A[j] := 0
  do i = 1, N
    B[i] := 1
  enddo
enddo
`)
	if _, err := FindRecurrences(outer, 8); err == nil {
		t.Fatal("expected error for non-tight nest")
	}
}

func TestNoFalseVectors(t *testing.T) {
	outer := parseNest(t, `
do j = 1, M
  do i = 1, N
    P[2*i, j] := P[2*i+1, j] + 1
  enddo
enddo
`)
	rs, err := FindRecurrences(outer, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Array == "P" && !r.Vec.IsZero() {
			t.Errorf("parity-disjoint references must carry nothing: %v", r)
		}
	}
}

func TestSelfOutputVectors(t *testing.T) {
	outer := parseNest(t, `
do j = 1, M
  do i = 1, N
    Q[i, j] := 1
  enddo
enddo
`)
	rs, err := FindRecurrences(outer, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A def only ever overlaps itself at the zero vector: no loop-carried
	// output recurrence.
	for _, r := range rs {
		if r.Array == "Q" {
			t.Errorf("unexpected recurrence: %v", r)
		}
	}
}

func TestSearchBound(t *testing.T) {
	outer := parseNest(t, `
do j = 1, M
  do i = 1, N
    R[i, j+20] := R[i, j]
  enddo
enddo
`)
	rs, err := FindRecurrences(outer, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f := findFlow(rs, "R"); f != nil {
		t.Errorf("distance 20 exceeds bound 8, got %v", f)
	}
	rs, err = FindRecurrences(outer, 32)
	if err != nil {
		t.Fatal(err)
	}
	f := findFlow(rs, "R")
	if f == nil || f.Vec != (Vector{Outer: 20, Inner: 0}) {
		t.Errorf("R recurrence = %v, want (20, 0)", f)
	}
}
