package opt

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/synth"
)

// Differential fuzzing: every optimization must preserve the final array
// state on randomly generated structured loops for random inputs. The
// generator is seeded, so failures are reproducible from the logged seed.

func synthState(seed int64, nArrays int, ub int64) *interp.State {
	st := randomState(seed, arrayNames(nArrays), []string{"x0", "x1", "x2", "c0", "c1", "c2", "c3", "N"}, ub+8)
	st.Scalars["N"] = ub // symbolic bound value when the loop uses N
	return st
}

func arrayNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("A%d", i)
	}
	return out
}

func diffCheck(t *testing.T, seed int64, orig, optd *ast.Program, nArrays int, ub int64) {
	t.Helper()
	for inputSeed := int64(1); inputSeed <= 3; inputSeed++ {
		init := synthState(seed*100+inputSeed, nArrays, ub)
		s1, _, err := interp.Run(orig, init, nil)
		if err != nil {
			t.Fatalf("seed %d: original: %v", seed, err)
		}
		s2, _, err := interp.Run(optd, init, nil)
		if err != nil {
			t.Fatalf("seed %d: optimized: %v\n%s", seed, err, ast.ProgramString(optd))
		}
		if d := interp.DiffArrays(s1, s2); d != "" {
			t.Fatalf("seed %d input %d: diverged: %s\noriginal:\n%s\noptimized:\n%s",
				seed, inputSeed, d, ast.ProgramString(orig), ast.ProgramString(optd))
		}
	}
}

func TestDifferentialLoadElimination(t *testing.T) {
	const ub = 25
	applied := 0
	for seed := int64(1); seed <= 120; seed++ {
		prog := synth.Loop(synth.Params{
			Seed: seed, Stmts: 6, Arrays: 3, MaxDist: 3, CondProb: 0.35, UB: ub,
		})
		res, err := EliminateLoads(prog, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Replaced) == 0 {
			continue
		}
		applied++
		diffCheck(t, seed, prog, res.Prog, 3, ub)
	}
	if applied < 20 {
		t.Fatalf("only %d seeds exercised load elimination — generator too tame", applied)
	}
}

func TestDifferentialStoreElimination(t *testing.T) {
	const ub = 25
	applied := 0
	for seed := int64(1); seed <= 120; seed++ {
		prog := synth.Loop(synth.Params{
			Seed: seed + 1000, Stmts: 6, Arrays: 2, MaxDist: 3, CondProb: 0.35, UB: ub,
		})
		res, err := EliminateStores(prog, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Removed) == 0 {
			continue
		}
		applied++
		diffCheck(t, seed, prog, res.Prog, 2, ub)
	}
	if applied < 10 {
		t.Fatalf("only %d seeds exercised store elimination — generator too tame", applied)
	}
}

func TestDifferentialUnroll(t *testing.T) {
	const ub = 23 // deliberately not divisible by common factors
	for seed := int64(1); seed <= 60; seed++ {
		prog := synth.Loop(synth.Params{
			Seed: seed + 2000, Stmts: 5, Arrays: 2, MaxDist: 3, CondProb: 0.3, UB: ub,
		})
		for _, factor := range []int{2, 3, 5} {
			un, err := Unroll(prog, 0, factor)
			if err != nil {
				t.Fatalf("seed %d factor %d: %v", seed, factor, err)
			}
			diffCheck(t, seed, prog, un, 2, ub)
		}
	}
}

func TestDifferentialControlledUnroll(t *testing.T) {
	const ub = 19
	for seed := int64(1); seed <= 40; seed++ {
		prog := synth.Loop(synth.Params{
			Seed: seed + 3000, Stmts: 4, Arrays: 2, MaxDist: 2, CondProb: 0.25, UB: ub,
		})
		res, err := ControlledUnroll(prog, 0, &UnrollOptions{Threshold: 1.5, MaxFactor: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Factor == 1 {
			continue
		}
		diffCheck(t, seed, prog, res.Prog, 2, ub)
	}
}

// TestDifferentialStacked applies load elimination after store elimination
// — the §4 optimizations must compose.
func TestDifferentialStacked(t *testing.T) {
	const ub = 25
	for seed := int64(1); seed <= 60; seed++ {
		prog := synth.Loop(synth.Params{
			Seed: seed + 4000, Stmts: 6, Arrays: 2, MaxDist: 3, CondProb: 0.3, UB: ub,
		})
		st, err := EliminateStores(prog, 0)
		if err != nil {
			t.Fatalf("seed %d: stores: %v", seed, err)
		}
		// The store-eliminated program may have peeled statements after the
		// loop; the loop stays at index 0.
		ld, err := EliminateLoads(st.Prog, 0)
		if err != nil {
			t.Fatalf("seed %d: loads: %v\n%s", seed, err, ast.ProgramString(st.Prog))
		}
		diffCheck(t, seed, prog, ld.Prog, 2, ub)
	}
}

// TestDifferentialSymbolicBounds repeats load elimination with a symbolic
// bound across several runtime values, including the empty loop.
func TestDifferentialSymbolicBounds(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		prog := synth.Loop(synth.Params{
			Seed: seed + 5000, Stmts: 5, Arrays: 2, MaxDist: 3, CondProb: 0.3, UB: 0, // symbolic N
		})
		res, err := EliminateLoads(prog, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Replaced) == 0 {
			continue
		}
		for _, n := range []int64{0, 1, 2, 5, 17} {
			init := synthState(seed, 2, 20)
			init.Scalars["N"] = n
			s1, _, err := interp.Run(prog, init, nil)
			if err != nil {
				t.Fatal(err)
			}
			s2, _, err := interp.Run(res.Prog, init, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d := interp.DiffArrays(s1, s2); d != "" {
				t.Fatalf("seed %d N=%d: %s\n%s", seed, n, d, ast.ProgramString(res.Prog))
			}
		}
	}
}

// TestLoadEliminationReducesTraffic confirms the optimization is not
// vacuous across the fuzz corpus: aggregate loads must strictly drop.
func TestLoadEliminationReducesTraffic(t *testing.T) {
	const ub = 25
	var before, after int64
	for seed := int64(1); seed <= 60; seed++ {
		prog := synth.Loop(synth.Params{
			Seed: seed, Stmts: 6, Arrays: 3, MaxDist: 3, CondProb: 0.35, UB: ub,
		})
		res, err := EliminateLoads(prog, 0)
		if err != nil {
			t.Fatal(err)
		}
		init := synthState(seed, 3, ub)
		_, st1, err := interp.Run(prog, init, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, st2, err := interp.Run(res.Prog, init, nil)
		if err != nil {
			t.Fatal(err)
		}
		before += st1.TotalLoads()
		after += st2.TotalLoads()
	}
	if after >= before {
		t.Fatalf("aggregate loads did not drop: %d -> %d", before, after)
	}
	t.Logf("aggregate loads: %d -> %d (%.1f%% removed)", before, after,
		100*float64(before-after)/float64(before))
}
