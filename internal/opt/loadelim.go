package opt

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/problems"
	"repro/internal/sema"
)

// LoadElimResult reports a redundant-load elimination (scalar replacement).
type LoadElimResult struct {
	Prog *ast.Program
	// Replaced lists the reuse points whose loads were removed.
	Replaced []problems.Reuse
	// Temps is the number of scalar temporaries introduced.
	Temps int
}

// EliminateLoads performs the §4.2.2 transformation on the loop at
// prog.Body[idx]: every use that provably re-reads a δ-available value is
// replaced by a scalar temporary; the temporaries shift at the end of each
// iteration (a source-level register pipeline) and are initialized before
// the loop from X[f(1−k)] exactly as §4.1.4 prescribes.
func EliminateLoads(prog *ast.Program, idx int) (*LoadElimResult, error) {
	loop, ok := prog.Body[idx].(*ast.DoLoop)
	if !ok {
		return nil, fmt.Errorf("opt: statement %d is not a loop", idx)
	}
	g, err := ir.Build(loop, nil)
	if err != nil {
		return nil, err
	}
	res := problems.Solve(g, problems.AvailableValues())
	reuses := problems.FindReuses(res)
	if len(reuses) == 0 {
		return &LoadElimResult{Prog: prog}, nil
	}

	// Group reuses by class; only 1-D classes with materializable forms.
	type pipe struct {
		class  *dataflow.Class
		delta0 int64
		reuses []problems.Reuse
		temps  []string
	}
	byClass := map[*dataflow.Class]*pipe{}
	var pipes []*pipe
	for _, r := range reuses {
		c := r.From
		if len(c.Members[0].Expr.Subs) != 1 {
			continue
		}
		if _, ok := sema.PolyToExpr(c.Form.A); !ok {
			continue
		}
		if _, ok := sema.PolyToExpr(c.Form.B); !ok {
			continue
		}
		p := byClass[c]
		if p == nil {
			p = &pipe{class: c}
			byClass[c] = p
			pipes = append(pipes, p)
		}
		p.reuses = append(p.reuses, r)
		if r.Distance > p.delta0 {
			p.delta0 = r.Distance
		}
	}
	if len(pipes) == 0 {
		return &LoadElimResult{Prog: prog}, nil
	}

	out := &LoadElimResult{}
	// Temp naming: tmp.<array>.<classIndex>.<stage>.
	useRepl := map[*ast.ArrayRef]string{} // reuse point → temp name
	genDef := map[*ast.Assign]string{}    // def gen site → stage-0 temp
	genUse := map[*ast.ArrayRef]string{}  // use gen site → stage-0 temp
	for _, p := range pipes {
		p.temps = make([]string, p.delta0+1)
		for k := range p.temps {
			p.temps[k] = fmt.Sprintf("tmp.%s.%d.%d", p.class.Array, p.class.Index, k)
		}
		for _, r := range p.reuses {
			useRepl[r.At.Expr] = p.temps[r.Distance]
			out.Replaced = append(out.Replaced, r)
		}
		for _, mem := range p.class.Members {
			if mem.Kind == ir.Def && mem.Node.Assign != nil {
				genDef[mem.Node.Assign] = p.temps[0]
			} else if mem.Kind == ir.Use {
				genUse[mem.Expr] = p.temps[0]
			}
		}
		out.Temps += len(p.temps)
	}

	rw := &loadRewriter{useRepl: useRepl, genDef: genDef, genUse: genUse}
	newBody := rw.block(loop.Body)

	// End-of-iteration shifts tmp_k := tmp_{k−1}, deepest stage first.
	for _, p := range pipes {
		for k := int(p.delta0); k >= 1; k-- {
			newBody = append(newBody, &ast.Assign{
				LHS: &ast.Ident{Name: p.temps[k]},
				RHS: &ast.Ident{Name: p.temps[k-1]},
			})
		}
	}

	newLoop := &ast.DoLoop{
		DoPos: loop.DoPos, Var: loop.Var, Label: loop.Label,
		Lo: ast.CloneExpr(loop.Lo), Hi: ast.CloneExpr(loop.Hi), Body: newBody,
	}

	// Preheader initialization: tmp_k := X[f(1−k)], k = 1..δ0.
	var pre []ast.Stmt
	for _, p := range pipes {
		for k := int64(1); k <= p.delta0; k++ {
			at := &ast.IntLit{Value: 1 - k}
			idxExpr, ok := sema.AffineAtExpr(p.class.Form, at)
			if !ok {
				return nil, fmt.Errorf("opt: cannot materialize init index for %s", p.class)
			}
			pre = append(pre, &ast.Assign{
				LHS: &ast.Ident{Name: p.temps[k]},
				RHS: &ast.ArrayRef{Name: p.class.Array, Subs: []ast.Expr{idxExpr}},
			})
		}
	}

	outProg := &ast.Program{}
	for j, s := range prog.Body {
		if j == idx {
			outProg.Body = append(outProg.Body, pre...)
			outProg.Body = append(outProg.Body, newLoop)
		} else {
			outProg.Body = append(outProg.Body, ast.CloneStmt(s))
		}
	}
	out.Prog = outProg
	return out, nil
}

// loadRewriter rebuilds the loop body applying the three rewrites:
// reuse-point uses become temp reads; generating defs capture their value
// in the stage-0 temp; generating uses hoist their (single) load into the
// stage-0 temp.
type loadRewriter struct {
	useRepl map[*ast.ArrayRef]string
	genDef  map[*ast.Assign]string
	genUse  map[*ast.ArrayRef]string
}

func (rw *loadRewriter) block(body []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range body {
		switch st := s.(type) {
		case *ast.Assign:
			// Hoist generating-use loads of this statement first.
			out = append(out, rw.hoists(st.RHS)...)
			if lhsRef, ok := st.LHS.(*ast.ArrayRef); ok {
				out = append(out, rw.hoistsSubs(lhsRef)...)
			}
			rhs := rw.expr(st.RHS)
			if tmp, ok := rw.genDef[st]; ok {
				// X[f(i)] := rhs  ⇒  tmp0 := rhs; X[f(i)] := tmp0.
				out = append(out, &ast.Assign{LHS: &ast.Ident{Name: tmp}, RHS: rhs})
				lhs := rw.exprRefSubs(st.LHS)
				out = append(out, &ast.Assign{LHS: lhs, RHS: &ast.Ident{Name: tmp}})
			} else {
				out = append(out, &ast.Assign{LHS: rw.exprRefSubs(st.LHS), RHS: rhs})
			}
		case *ast.If:
			out = append(out, rw.hoists(st.Cond)...)
			nf := &ast.If{IfPos: st.IfPos, Cond: rw.expr(st.Cond), Then: rw.block(st.Then)}
			if st.Else != nil {
				nf.Else = rw.block(st.Else)
			}
			out = append(out, nf)
		case *ast.DoLoop:
			cl := &ast.DoLoop{DoPos: st.DoPos, Var: st.Var, Label: st.Label,
				Lo: ast.CloneExpr(st.Lo), Hi: ast.CloneExpr(st.Hi), Body: rw.block(st.Body)}
			if st.Step != nil {
				cl.Step = ast.CloneExpr(st.Step)
			}
			out = append(out, cl)
		default:
			out = append(out, ast.CloneStmt(s))
		}
	}
	return out
}

// hoists returns `tmp0 := X[f(i)]` statements for every generating use
// inside e that has not been hoisted yet (the rewrite of e then reads
// tmp0).
func (rw *loadRewriter) hoists(e ast.Expr) []ast.Stmt {
	var out []ast.Stmt
	var walk func(x ast.Expr)
	walk = func(x ast.Expr) {
		switch ex := x.(type) {
		case *ast.ArrayRef:
			if tmp, ok := rw.genUse[ex]; ok {
				if _, reused := rw.useRepl[ex]; !reused {
					out = append(out, &ast.Assign{
						LHS: &ast.Ident{Name: tmp},
						RHS: &ast.ArrayRef{Name: ex.Name, Subs: cloneExprs(ex.Subs)},
					})
					// The use itself now reads the temp.
					rw.useRepl[ex] = tmp
				} else {
					// A reuse point that also generates: it reads its source
					// temp and feeds stage 0 via an extra copy.
					out = append(out, &ast.Assign{
						LHS: &ast.Ident{Name: tmp},
						RHS: &ast.Ident{Name: rw.useRepl[ex]},
					})
				}
			}
			for _, sub := range ex.Subs {
				walk(sub)
			}
		case *ast.Binary:
			walk(ex.L)
			walk(ex.R)
		case *ast.Unary:
			walk(ex.X)
		}
	}
	walk(e)
	return out
}

func (rw *loadRewriter) hoistsSubs(ref *ast.ArrayRef) []ast.Stmt {
	var out []ast.Stmt
	for _, sub := range ref.Subs {
		out = append(out, rw.hoists(sub)...)
	}
	return out
}

// expr rewrites an expression, replacing reuse points by their temps.
func (rw *loadRewriter) expr(e ast.Expr) ast.Expr {
	switch ex := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		return ast.CloneExpr(ex)
	case *ast.IntLit:
		return ast.CloneExpr(ex)
	case *ast.ArrayRef:
		if tmp, ok := rw.useRepl[ex]; ok {
			return &ast.Ident{Name: tmp}
		}
		return &ast.ArrayRef{NamePos: ex.NamePos, Name: ex.Name, Subs: rw.exprs(ex.Subs)}
	case *ast.Binary:
		return &ast.Binary{Op: ex.Op, L: rw.expr(ex.L), R: rw.expr(ex.R)}
	case *ast.Unary:
		return &ast.Unary{OpPos: ex.OpPos, Op: ex.Op, X: rw.expr(ex.X)}
	}
	panic("opt: unknown expression")
}

func (rw *loadRewriter) exprs(list []ast.Expr) []ast.Expr {
	out := make([]ast.Expr, len(list))
	for i, e := range list {
		out[i] = rw.expr(e)
	}
	return out
}

// exprRefSubs rewrites an assignment target: subscripts are rewritten, the
// reference itself is preserved.
func (rw *loadRewriter) exprRefSubs(lhs ast.Expr) ast.Expr {
	if ref, ok := lhs.(*ast.ArrayRef); ok {
		return &ast.ArrayRef{NamePos: ref.NamePos, Name: ref.Name, Subs: rw.exprs(ref.Subs)}
	}
	return ast.CloneExpr(lhs)
}

func cloneExprs(list []ast.Expr) []ast.Expr {
	out := make([]ast.Expr, len(list))
	for i, e := range list {
		out[i] = ast.CloneExpr(e)
	}
	return out
}
