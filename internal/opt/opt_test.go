package opt

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/parser"
)

// randomState builds a deterministic pseudo-random initial state covering
// the arrays and scalars a test program touches.
func randomState(seed int64, arrays []string, scalars []string, n int64) *interp.State {
	rng := rand.New(rand.NewSource(seed))
	st := interp.NewState()
	for _, a := range arrays {
		for i := int64(-4); i <= n+4; i++ {
			st.SetArray(a, i, rng.Int63n(1000)-500)
		}
	}
	for _, s := range scalars {
		st.Scalars[s] = rng.Int63n(100) - 50
	}
	return st
}

// checkEquivalent runs both programs on several random states and compares
// final array contents.
func checkEquivalent(t *testing.T, orig, opt *ast.Program, arrays, scalars []string, n int64) {
	t.Helper()
	for seed := int64(1); seed <= 5; seed++ {
		init := randomState(seed, arrays, scalars, n)
		s1, _, err := interp.Run(orig, init, nil)
		if err != nil {
			t.Fatalf("original failed: %v", err)
		}
		s2, _, err := interp.Run(opt, init, nil)
		if err != nil {
			t.Fatalf("optimized failed: %v\n%s", err, ast.ProgramString(opt))
		}
		if d := interp.DiffArrays(s1, s2); d != "" {
			t.Fatalf("seed %d: states diverge: %s\noptimized:\n%s", seed, d, ast.ProgramString(opt))
		}
	}
}

// ---------------------------------------------------------------------------
// Store elimination (Fig. 6)

func TestFig6StoreElimination(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 1000
  A[i] := c + i
  if c > 0 then
    A[i+1] := c * 2
  endif
enddo
`)
	res, err := EliminateStores(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 {
		t.Fatalf("removed = %d, want 1 (the conditional A[i+1])\n%s",
			len(res.Removed), ast.ProgramString(res.Prog))
	}
	if res.PeeledIterations != 1 {
		t.Errorf("peeled = %d, want 1", res.PeeledIterations)
	}
	checkEquivalent(t, prog, res.Prog, []string{"A"}, []string{"c"}, 1005)

	// The transformed program must store fewer times: 2000-ish → 1001-ish.
	init := randomState(7, []string{"A"}, []string{"c"}, 1005)
	init.Scalars["c"] = 5 // condition true: worst case for the original
	_, st1, err := interp.Run(prog, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := interp.Run(res.Prog, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ArrayStores["A"] >= st1.ArrayStores["A"] {
		t.Errorf("stores not reduced: %d vs %d", st2.ArrayStores["A"], st1.ArrayStores["A"])
	}
	if want := int64(1001); st2.ArrayStores["A"] != want {
		t.Errorf("optimized stores = %d, want %d", st2.ArrayStores["A"], want)
	}
}

func TestStoreEliminationSymbolicBoundGuarded(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, N
  A[i] := c
  if c > 0 then
    A[i+1] := c * 2
  endif
enddo
`)
	res, err := EliminateStores(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 {
		t.Fatalf("removed = %d, want 1", len(res.Removed))
	}
	// Equivalence across several bounds including the degenerate N=0.
	for _, n := range []int64{0, 1, 2, 3, 50} {
		init := randomState(n+1, []string{"A"}, []string{"c"}, n+5)
		init.Scalars["N"] = n
		s1, _, err := interp.Run(prog, init, nil)
		if err != nil {
			t.Fatal(err)
		}
		s2, _, err := interp.Run(res.Prog, init, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := interp.DiffArrays(s1, s2); d != "" {
			t.Fatalf("N=%d diverges: %s\n%s", n, d, ast.ProgramString(res.Prog))
		}
	}
}

func TestStoreEliminationNoCandidates(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 100
  A[i] := i
enddo
`)
	res, err := EliminateStores(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 || res.Prog != prog {
		t.Fatal("nothing should change without redundancies")
	}
}

func TestStoreEliminationBlockedByUse(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 100
  y := A[i]
  A[i] := y + 1
  A[i+1] := y
enddo
`)
	res, err := EliminateStores(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Removed {
		if ast.ExprString(r.Store.Expr) == "A[i + 1]" {
			t.Fatal("A[i+1] is read before overwrite; not removable")
		}
	}
	checkEquivalent(t, prog, res.Prog, []string{"A"}, nil, 105)
}

// ---------------------------------------------------------------------------
// Load elimination (Fig. 7)

func TestFig7LoadElimination(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 1000
  if c > i / 2 then
    y := A[i]
    B[i] := y
  endif
  A[i+1] := c + i
enddo
`)
	res, err := EliminateLoads(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replaced) == 0 {
		t.Fatalf("no loads replaced\n%s", ast.ProgramString(res.Prog))
	}
	checkEquivalent(t, prog, res.Prog, []string{"A", "B"}, []string{"c"}, 1005)

	// Loads of A must drop: the conditional load disappears entirely.
	init := randomState(3, []string{"A", "B"}, nil, 1005)
	init.Scalars["c"] = 1000 // condition mostly true
	_, st1, err := interp.Run(prog, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := interp.Run(res.Prog, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ArrayLoads["A"] >= st1.ArrayLoads["A"] {
		t.Errorf("A loads not reduced: %d vs %d\n%s",
			st2.ArrayLoads["A"], st1.ArrayLoads["A"], ast.ProgramString(res.Prog))
	}
}

func TestLoadEliminationFig5Pattern(t *testing.T) {
	// A[i+2] := A[i] + X: the load of A[i] is replaced by a two-stage
	// temporary pipeline; in-loop loads of A drop to zero.
	prog := parser.MustParse(`
do i = 1, 1000
  A[i+2] := A[i] + X
enddo
`)
	res, err := EliminateLoads(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replaced) != 1 {
		t.Fatalf("replaced = %d, want 1\n%s", len(res.Replaced), ast.ProgramString(res.Prog))
	}
	if res.Temps != 3 {
		t.Errorf("temps = %d, want 3 (stages 0..2)", res.Temps)
	}
	checkEquivalent(t, prog, res.Prog, []string{"A"}, []string{"X"}, 1005)

	init := randomState(11, []string{"A"}, []string{"X"}, 1005)
	_, st2, err := interp.Run(res.Prog, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only the 2 preheader loads remain.
	if st2.ArrayLoads["A"] != 2 {
		t.Errorf("A loads = %d, want 2\n%s", st2.ArrayLoads["A"], ast.ProgramString(res.Prog))
	}
}

func TestLoadEliminationSameIteration(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 500
  A[i] := i * 3
  B[i] := A[i] + 1
enddo
`)
	res, err := EliminateLoads(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replaced) != 1 {
		t.Fatalf("replaced = %d, want 1", len(res.Replaced))
	}
	checkEquivalent(t, prog, res.Prog, []string{"A", "B"}, nil, 505)
	init := randomState(5, []string{"A", "B"}, nil, 505)
	_, st, err := interp.Run(res.Prog, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.ArrayLoads["A"] != 0 {
		t.Errorf("A loads = %d, want 0 (same-iteration forwarding)", st.ArrayLoads["A"])
	}
}

func TestLoadEliminationConditionalReuseStays(t *testing.T) {
	// The definition is conditional: no must-availability, nothing changes.
	prog := parser.MustParse(`
do i = 1, 100
  if c > 0 then
    A[i] := c
  endif
  B[i] := A[i]
enddo
`)
	res, err := EliminateLoads(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replaced) != 0 {
		t.Fatalf("conditional def must not enable replacement: %v\n%s",
			res.Replaced, ast.ProgramString(res.Prog))
	}
}

func TestLoadEliminationFig1(t *testing.T) {
	// The full Figure 1 loop: C[i] uses reuse C[i+2]@2, B[i-1] reuses
	// B[i]@1, C[i+1] reuses C[i+2]@1 — all loads of C and B become temps.
	prog := parser.MustParse(`
do i = 1, 200
  C[i+2] := C[i] * 2
  B[2*i] := C[i] + X
  if C[i] == 0 then C[i] := B[i-1]
  B[i] := C[i+1]
enddo
`)
	res, err := EliminateLoads(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replaced) < 4 {
		t.Fatalf("replaced = %d, want ≥ 4\n%s", len(res.Replaced), ast.ProgramString(res.Prog))
	}
	checkEquivalent(t, prog, res.Prog, []string{"B", "C"}, []string{"X"}, 410)
}

// ---------------------------------------------------------------------------
// Controlled unrolling (§4.3)

func TestUnrollMechanical(t *testing.T) {
	prog := parser.MustParse(`
do i = 1, 10
  A[i] := i * i
enddo
`)
	un, err := Unroll(prog, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, prog, un, []string{"A"}, nil, 12)
}

func TestUnrollOddRemainder(t *testing.T) {
	for _, ub := range []int64{1, 2, 3, 7, 8, 9, 100} {
		prog := parser.MustParse(`
do i = 1, N
  A[i] := A[i] + i
enddo
`)
		un, err := Unroll(prog, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		init := randomState(ub, []string{"A"}, nil, ub+5)
		init.Scalars["N"] = ub
		s1, _, err := interp.Run(prog, init, nil)
		if err != nil {
			t.Fatal(err)
		}
		s2, _, err := interp.Run(un, init, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := interp.DiffArrays(s1, s2); d != "" {
			t.Fatalf("UB=%d diverges: %s\n%s", ub, d, ast.ProgramString(un))
		}
	}
}

func TestUnrollCarriedDependence(t *testing.T) {
	// Recurrence A[i+1] := A[i]: unrolling must preserve the serial chain.
	prog := parser.MustParse(`
do i = 1, 50
  A[i+1] := A[i] + 1
enddo
`)
	un, err := Unroll(prog, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, prog, un, []string{"A"}, nil, 55)
}

func TestControlledUnrollParallelLoop(t *testing.T) {
	// Fig. 5-like loop: distance-2 dependence only — unrolling by 2 adds
	// no critical path length, so the controller unrolls.
	prog := parser.MustParse(`
do i = 1, 100
  A[i+2] := A[i] + x
enddo
`)
	res, err := ControlledUnroll(prog, 0, &UnrollOptions{Threshold: 1.2, MaxFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Factor < 2 {
		t.Fatalf("factor = %d, want ≥ 2 (no distance-1 deps)\npredictions: %v",
			res.Factor, res.Predicted)
	}
	checkEquivalent(t, prog, res.Prog, []string{"A"}, []string{"x"}, 110)
}

func TestControlledUnrollSerialLoop(t *testing.T) {
	// Tight recurrence: every copy extends the critical path by the full
	// body; a strict threshold refuses to unroll.
	prog := parser.MustParse(`
do i = 1, 100
  A[i+1] := A[i] + 1
enddo
`)
	res, err := ControlledUnroll(prog, 0, &UnrollOptions{Threshold: 1.0, MaxFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Factor != 1 {
		t.Fatalf("factor = %d, want 1 (serial recurrence)\npredictions: %v",
			res.Factor, res.Predicted)
	}
	if res.Prog != prog {
		t.Error("program must be unchanged when factor = 1")
	}
}

func TestControlledUnrollPredictionShape(t *testing.T) {
	// l ≤ l_unroll(2) ≤ 2·l must hold (paper's bound).
	prog := parser.MustParse(`
do i = 1, 100
  B[i] := A[i] + 1
  C[i] := B[i] * 2
  A[i+1] := C[i] - 1
enddo
`)
	res, err := ControlledUnroll(prog, 0, &UnrollOptions{Threshold: 1.9, MaxFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	l := res.CriticalPath
	if l != 3 {
		t.Errorf("critical path = %d, want 3 (B→C→A chain)", l)
	}
	if len(res.Predicted) >= 3 {
		l2 := res.Predicted[2]
		if l2 < l || l2 > 2*l {
			t.Errorf("l_unroll(2) = %d outside [l, 2l] = [%d, %d]", l2, l, 2*l)
		}
		// The chain is fully serial (distance-1 A feeds next B): l2 = 2l.
		if l2 != 2*l {
			t.Errorf("l_unroll(2) = %d, want %d for a serial chain", l2, 2*l)
		}
	}
}
