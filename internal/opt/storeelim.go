// Package opt implements the source-level optimizations of paper §4:
// redundant store elimination with final-iteration unpeeling (§4.2.1),
// redundant load elimination via scalar temporaries (§4.2.2), and
// controlled loop unrolling (§4.3). All transformations return a new
// program; the input is never mutated, so analysis references into the
// original AST stay valid.
package opt

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/problems"
	"repro/internal/sema"
	"repro/internal/token"
)

// StoreElimResult reports a redundant-store elimination.
type StoreElimResult struct {
	// Prog is the transformed program.
	Prog *ast.Program
	// Removed lists the eliminated stores.
	Removed []problems.RedundantStore
	// PeeledIterations is the number of final iterations unpeeled.
	PeeledIterations int64
}

// EliminateStores removes δ-redundant stores from the loop at prog.Body[idx]
// and unpeels the final δ iterations (Figure 6). When no store is
// redundant, it returns the original program and an empty result.
func EliminateStores(prog *ast.Program, idx int) (*StoreElimResult, error) {
	loop, ok := prog.Body[idx].(*ast.DoLoop)
	if !ok {
		return nil, fmt.Errorf("opt: statement %d is not a loop", idx)
	}
	g, err := ir.Build(loop, nil)
	if err != nil {
		return nil, err
	}
	res := problems.Solve(g, problems.BusyStores())
	cands := problems.FindRedundantStores(res)

	// Select eliminable candidates: 1-D references whose statements we can
	// locate and drop; one candidate per assignment statement.
	var chosen []problems.RedundantStore
	drop := map[*ast.Assign]bool{}
	var maxDelta int64
	for _, c := range cands {
		if len(c.Store.Expr.Subs) != 1 {
			continue
		}
		as := c.Store.Node.Assign
		if as == nil || drop[as] {
			continue
		}
		if lhs, isRef := as.LHS.(*ast.ArrayRef); !isRef || lhs != c.Store.Expr {
			continue
		}
		drop[as] = true
		chosen = append(chosen, c)
		if c.Distance > maxDelta {
			maxDelta = c.Distance
		}
	}
	if len(chosen) == 0 {
		return &StoreElimResult{Prog: prog}, nil
	}

	// New loop body without the dropped assignments.
	newBody := removeAssigns(loop.Body, drop)

	// New bound: UB − maxδ.
	newHi := sema.Simplify(&ast.Binary{Op: token.MINUS,
		L: ast.CloneExpr(loop.Hi), R: &ast.IntLit{Value: maxDelta}})

	newLoop := &ast.DoLoop{
		DoPos: loop.DoPos, Var: loop.Var, Label: loop.Label,
		Lo: ast.CloneExpr(loop.Lo), Hi: newHi, Body: newBody,
	}

	// Peeled final iterations with the full original body: iteration
	// UB−maxδ+k for k = 1..maxδ. With a symbolic bound each copy is guarded
	// against a short loop (UB < maxδ).
	_, ubConst := sema.ConstValue(loop.Hi)
	var peeled []ast.Stmt
	for k := int64(1); k <= maxDelta; k++ {
		iter := sema.Simplify(&ast.Binary{Op: token.PLUS,
			L: &ast.Binary{Op: token.MINUS, L: ast.CloneExpr(loop.Hi), R: &ast.IntLit{Value: maxDelta}},
			R: &ast.IntLit{Value: k}})
		copyBody := ast.SubstituteIdentStmts(loop.Body, loop.Var, iter)
		if ubConst {
			peeled = append(peeled, copyBody...)
		} else {
			guard := &ast.Binary{Op: token.GEQ, L: ast.CloneExpr(iter), R: &ast.IntLit{Value: 1}}
			peeled = append(peeled, &ast.If{Cond: guard, Then: copyBody})
		}
	}

	out := &ast.Program{}
	for j, s := range prog.Body {
		if j == idx {
			out.Body = append(out.Body, newLoop)
			out.Body = append(out.Body, peeled...)
		} else {
			out.Body = append(out.Body, ast.CloneStmt(s))
		}
	}
	return &StoreElimResult{Prog: out, Removed: chosen, PeeledIterations: maxDelta}, nil
}

// removeAssigns deep-copies a statement list, dropping the marked
// assignments and pruning conditionals left with no effect.
func removeAssigns(body []ast.Stmt, drop map[*ast.Assign]bool) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range body {
		switch st := s.(type) {
		case *ast.Assign:
			if drop[st] {
				continue
			}
			out = append(out, ast.CloneStmt(st))
		case *ast.If:
			thenB := removeAssigns(st.Then, drop)
			var elseB []ast.Stmt
			if st.Else != nil {
				elseB = removeAssigns(st.Else, drop)
			}
			if len(thenB) == 0 && len(elseB) == 0 {
				continue // the condition has no side effects in this language
			}
			out = append(out, &ast.If{IfPos: st.IfPos, Cond: ast.CloneExpr(st.Cond), Then: thenB, Else: elseB})
		case *ast.DoLoop:
			inner := removeAssigns(st.Body, drop)
			cl := &ast.DoLoop{DoPos: st.DoPos, Var: st.Var, Label: st.Label,
				Lo: ast.CloneExpr(st.Lo), Hi: ast.CloneExpr(st.Hi), Body: inner}
			if st.Step != nil {
				cl.Step = ast.CloneExpr(st.Step)
			}
			out = append(out, cl)
		default:
			out = append(out, ast.CloneStmt(s))
		}
	}
	return out
}
