package opt

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/depend"
	"repro/internal/ir"
	"repro/internal/sema"
	"repro/internal/token"
)

// UnrollResult reports a controlled loop unrolling decision (§4.3).
type UnrollResult struct {
	Prog *ast.Program
	// Factor is the chosen unroll factor (1 = not unrolled).
	Factor int
	// CriticalPath is l, the critical path of one iteration; Predicted[u]
	// is l_unroll for u copies (index 1 = l).
	CriticalPath int64
	Predicted    []int64
}

// UnrollOptions tunes the §4.3 strategy.
type UnrollOptions struct {
	// Threshold is the paper's τ expressed as the ratio τ/l ∈ [1, 2): an
	// unroll step that extends the critical path by at least (τ/l − 1)·l
	// (i.e. creates no usable parallelism) stops the process. Default 1.5.
	Threshold float64
	// MaxFactor bounds the unroll factor (default 8).
	MaxFactor int
}

// ControlledUnroll decides an unroll factor for the loop at prog.Body[idx]
// by the incremental prediction strategy of §4.3 — each step is taken only
// if the predicted critical path of the larger body stays below the
// threshold — and performs the unrolling.
func ControlledUnroll(prog *ast.Program, idx int, opts *UnrollOptions) (*UnrollResult, error) {
	if opts == nil {
		opts = &UnrollOptions{}
	}
	th := opts.Threshold
	if th <= 0 {
		th = 1.5
	}
	if th < 1 {
		th = 1
	}
	if th >= 2 {
		th = 1.999
	}
	maxF := opts.MaxFactor
	if maxF <= 0 {
		maxF = 8
	}

	loop, ok := prog.Body[idx].(*ast.DoLoop)
	if !ok {
		return nil, fmt.Errorf("opt: statement %d is not a loop", idx)
	}
	g, err := ir.Build(loop, nil)
	if err != nil {
		return nil, err
	}
	dg := depend.BuildFromLoop(g, int64(maxF))

	l := dg.CriticalPath()
	res := &UnrollResult{CriticalPath: l, Predicted: []int64{0, l}}
	// Step budget: an additional copy may add at most stepBudget to the
	// critical path; τ ∈ [l, 2l) ⇒ budget = τ − l ∈ [0, l).
	stepBudget := (th - 1) * float64(l)

	factor := 1
	for u := 2; u <= maxF; u++ {
		lu := dg.UnrolledCriticalPath(u)
		res.Predicted = append(res.Predicted, lu)
		prev := res.Predicted[u-1]
		if float64(lu-prev) > stepBudget {
			break
		}
		factor = u
	}
	res.Factor = factor
	if factor == 1 {
		res.Prog = prog
		return res, nil
	}
	res.Prog, err = Unroll(prog, idx, factor)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Unroll mechanically unrolls the (normalized) loop at prog.Body[idx] by
// the given factor:
//
//	do i = 1, UB            do i = 1, UB−(u−1), u
//	  body(i)          ⇒       body(i); body(i+1); …; body(i+u−1)
//	enddo                   enddo
//	                        do i = (UB/u)·u + 1, UB   // remainder
//	                          body(i)
//	                        enddo
func Unroll(prog *ast.Program, idx int, factor int) (*ast.Program, error) {
	loop, ok := prog.Body[idx].(*ast.DoLoop)
	if !ok {
		return nil, fmt.Errorf("opt: statement %d is not a loop", idx)
	}
	if factor < 2 {
		return prog, nil
	}
	if lo, isC := sema.ConstValue(loop.Lo); !isC || lo != 1 || loop.Step != nil {
		return nil, fmt.Errorf("opt: unrolling requires a normalized loop (1..UB step 1)")
	}
	u := int64(factor)
	iv := loop.Var

	var mainBody []ast.Stmt
	for k := int64(0); k < u; k++ {
		at := sema.Simplify(&ast.Binary{Op: token.PLUS,
			L: &ast.Ident{Name: iv}, R: &ast.IntLit{Value: k}})
		mainBody = append(mainBody, ast.SubstituteIdentStmts(loop.Body, iv, at)...)
	}
	mainHi := sema.Simplify(&ast.Binary{Op: token.MINUS,
		L: ast.CloneExpr(loop.Hi), R: &ast.IntLit{Value: u - 1}})
	mainLoop := &ast.DoLoop{
		DoPos: loop.DoPos, Var: iv, Label: loop.Label,
		Lo: &ast.IntLit{Value: 1}, Hi: mainHi, Step: &ast.IntLit{Value: u},
		Body: mainBody,
	}

	// Remainder: i = (UB/u)·u + 1 .. UB.
	remLo := sema.Simplify(&ast.Binary{Op: token.PLUS,
		L: &ast.Binary{Op: token.STAR,
			L: &ast.Binary{Op: token.SLASH, L: ast.CloneExpr(loop.Hi), R: &ast.IntLit{Value: u}},
			R: &ast.IntLit{Value: u}},
		R: &ast.IntLit{Value: 1}})
	remLoop := &ast.DoLoop{
		Var: iv, Label: loop.Label + 1000, // fresh label
		Lo: remLo, Hi: ast.CloneExpr(loop.Hi), Body: ast.CloneStmts(loop.Body),
	}

	out := &ast.Program{}
	for j, s := range prog.Body {
		if j == idx {
			out.Body = append(out.Body, mainLoop, remLoop)
		} else {
			out.Body = append(out.Body, ast.CloneStmt(s))
		}
	}
	// Collapse the substitution residue (i+0, i+1, …) in subscripts to
	// canonical affine form so later passes see clean strides.
	return sema.CanonicalizeSubscripts(out), nil
}
