package parser

import (
	"testing"

	"repro/internal/ast"
)

// FuzzParse is a native fuzz target: the parser must never panic, and
// whatever parses must print/reparse stably. Run with
// `go test -fuzz=FuzzParse ./internal/parser` for continuous fuzzing; the
// seed corpus runs as a normal test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"do i = 1, UB\n  C[i+2] := C[i] * 2\nenddo",
		"if a == 0 then b := 1",
		"do i = 1, 10, 2\n A(i) = A(i-1)\nenddo",
		"do j = 1, M\n do i = 1, N\n  X[i, j] := X[i-1, j+1]\n enddo\nenddo",
		"a := -(1 + 2) * x / 3 % 4",
		"do i = 1, N\n if x > 0 and y < 2 or not z == 1 then A[i] := 0\nenddo",
		"x := ((((1))))",
		"! comment only",
		"do i = 1, \n enddo",
		"A[B[i]] := A[i*i]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := ast.ProgramString(prog)
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed program does not reparse: %q: %v", printed, err)
		}
		if got := ast.ProgramString(prog2); got != printed {
			t.Fatalf("print unstable: %q vs %q", printed, got)
		}
	})
}
