package parser

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
)

// FuzzParse is a native fuzz target: the parser must never panic, every
// reported error must carry a valid source position, and whatever parses
// must print/reparse stably. The seed corpus mixes hand-picked pathological
// inputs with the example programs under examples/. Run with
// `go test -fuzz=FuzzParse ./internal/parser` for continuous fuzzing; the
// seed corpus runs as a normal test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"do i = 1, UB\n  C[i+2] := C[i] * 2\nenddo",
		"if a == 0 then b := 1",
		"do i = 1, 10, 2\n A(i) = A(i-1)\nenddo",
		"do j = 1, M\n do i = 1, N\n  X[i, j] := X[i-1, j+1]\n enddo\nenddo",
		"a := -(1 + 2) * x / 3 % 4",
		"do i = 1, N\n if x > 0 and y < 2 or not z == 1 then A[i] := 0\nenddo",
		"x := ((((1))))",
		"! comment only",
		"do i = 1, \n enddo",
		"A[B[i]] := A[i*i]",
		"dim A[100]\nA[1] := 0",
		"dim X[64, 64]\ndim X(64, 64)",
		"dim",
		"dim A",
		"dim A[",
		"dim A[]\ndim B[0]\ndim C[-1]",
		// Lint control directives: well-formed (line, trailing, bang, multi-ID,
		// wildcard) and malformed (unknown verb, missing reason, empty ID).
		"//lint:ignore race benchmark kernel\ndo i = 1, 8\n  A[i+1] := A[i]\nenddo",
		"A[i] := B[i] //lint:ignore uninit seeded by caller",
		"!lint:ignore race,uninit,deadstore vetted\ndo i = 1, 4\n A[i] := 0\nenddo",
		"//lint:ignore * vendored example",
		"//lint:fixme later",
		"//lint:ignore race",
		"//lint:ignore ,race why",
		"//lint:ignore",
		// Race-classification shapes: racy (carried flow dep), parallel
		// (disjoint strided cells), unknown (non-affine, scalar carry),
		// multi-dimensional and negative-stride variants.
		"dim A[64]\ndo i = 1, 20\n  A[i+2] := A[i] * 2\nenddo",
		"dim A[64]\ndo i = 1, 10\n  A[2*i] := A[2*i - 1]\nenddo",
		"do i = 1, 100\n  A[i*i] := B[i]\nenddo",
		"do i = 1, 50\n  s := C[i] + s\n  D[i] := s\nenddo",
		"dim M[64, 64]\ndo i = 1, 40\n  M[i+1, 5] := M[i, 5] * 2\nenddo",
		"dim A[32]\ndo i = 20, 2, -1\n  A[i-1] := A[i] + 1\nenddo",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, path := range exampleSeeds(f) {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatalf("reading seed %s: %v", path, err)
		}
		f.Add(string(b))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			var list ErrorList
			if !errors.As(err, &list) || len(list) == 0 {
				t.Fatalf("parse error is not a non-empty ErrorList: %v", err)
			}
			for _, e := range list {
				if !e.Pos.IsValid() {
					t.Fatalf("parse error without a valid position: %q: %v", src, e)
				}
			}
			return
		}
		printed := ast.ProgramString(prog)
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed program does not reparse: %q: %v", printed, err)
		}
		if got := ast.ProgramString(prog2); got != printed {
			t.Fatalf("print unstable: %q vs %q", printed, got)
		}
	})
}

// exampleSeeds lists the .loop programs under examples/ so the fuzzer
// starts from realistic inputs.
func exampleSeeds(f *testing.F) []string {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.loop"))
	if err != nil {
		f.Fatalf("globbing examples: %v", err)
	}
	if len(paths) == 0 {
		f.Fatal("no example .loop seeds found")
	}
	return paths
}
